#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"

namespace msn {

EventId EventQueue::Schedule(Time when, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const uint32_t gen = slots_[slot].gen;
  slots_[slot].cb = std::move(cb);
  const uint64_t seq = next_seq_++;
  if (lane_open_ && when == lane_time_) {
    // Fires during the wave currently being drained: FIFO lane, no sift.
    // Ordering vs heap items at the same time is preserved because those all
    // predate the drain and carry smaller sequence numbers (PopNext prefers
    // the heap on equal timestamps).
    lane_.push_back(Item{when, seq, slot, gen});
    ++lane_stats_.lane_scheduled;
  } else {
    heap_.push_back(Item{when, seq, slot, gen});
    std::push_heap(heap_.begin(), heap_.end(), After);
    ++lane_stats_.heap_scheduled;
  }
  ++live_count_;
  return EventId((static_cast<uint64_t>(gen) << 32) | (slot + 1));
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const uint32_t slot = static_cast<uint32_t>(id.handle_ & 0xffffffff) - 1;
  const uint32_t gen = static_cast<uint32_t>(id.handle_ >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // Already fired, already cancelled, or never existed.
  }
  ++slots_[slot].gen;
  slots_[slot].cb.Reset();
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void EventQueue::PopHeapItem() {
  std::pop_heap(heap_.begin(), heap_.end(), After);
  heap_.pop_back();
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && TopIsTombstone()) {
    PopHeapItem();
  }
}

void EventQueue::DropCancelledLaneFront() {
  while (lane_head_ < lane_.size() &&
         slots_[lane_[lane_head_].slot].gen != lane_[lane_head_].gen) {
    ++lane_head_;
  }
  if (lane_head_ == lane_.size()) {
    lane_.clear();
    lane_head_ = 0;
  }
}

Time EventQueue::NextTime() const {
  // Tombstone at the top can hide a later live event; peel lazily. Logically
  // const: live events and their order are unchanged.
  auto* self = const_cast<EventQueue*>(this);
  self->DropCancelledHead();
  self->DropCancelledLaneFront();
  const bool lane_live = lane_head_ < lane_.size();
  if (heap_.empty()) {
    return lane_live ? lane_[lane_head_].when : Time::Max();
  }
  if (lane_live && lane_[lane_head_].when < heap_.front().when) {
    return lane_[lane_head_].when;
  }
  return heap_.front().when;
}

EventQueue::Entry EventQueue::TakeItem(const Item& item) {
  const uint32_t slot = item.slot;
  Entry entry{item.when, std::move(slots_[slot].cb)};
  ++slots_[slot].gen;
  free_slots_.push_back(slot);
  --live_count_;
  lane_time_ = entry.when;
  lane_open_ = true;
  return entry;
}

EventQueue::Entry EventQueue::PopNext() {
  DropCancelledHead();
  DropCancelledLaneFront();
  const bool lane_live = lane_head_ < lane_.size();
  MSN_ASSERT(!heap_.empty() || lane_live) << "PopNext on an empty event queue";
  // On equal timestamps the heap wins: every live heap item at the lane time
  // was scheduled before the drain opened the lane, so its seq is smaller
  // than any lane item's.
  const bool from_heap =
      !heap_.empty() && (!lane_live || heap_.front().when <= lane_[lane_head_].when);
  if (from_heap) {
    Entry entry = TakeItem(heap_.front());
    PopHeapItem();
    return entry;
  }
  Entry entry = TakeItem(lane_[lane_head_]);
  ++lane_head_;
  if (lane_head_ == lane_.size()) {
    lane_.clear();
    lane_head_ = 0;
  }
  return entry;
}

}  // namespace msn
