// IPv4 fragmentation and reassembly (RFC 791).
//
// Relevant to mobile IP because IP-in-IP encapsulation adds 20 bytes: a
// datagram that fit the path MTU before tunneling may no longer fit after,
// so home agents and mobile hosts must fragment outer packets and endpoints
// must reassemble them (paper §3.2: encapsulation "adds 20 bytes or more to
// the packet length").
#ifndef MSN_SRC_NODE_REASSEMBLY_H_
#define MSN_SRC_NODE_REASSEMBLY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "src/net/headers.h"
#include "src/sim/simulator.h"

namespace msn {

// Splits a datagram into MTU-sized fragments (offsets in 8-byte multiples).
// Requires mtu >= 28 (header + one fragment unit). The input must not itself
// have DF set (callers check and signal ICMP fragmentation-needed instead).
[[nodiscard]] std::vector<Ipv4Datagram> FragmentDatagram(const Ipv4Datagram& dg, size_t mtu);

// Per-host reassembly queues keyed by (src, dst, id, protocol).
class ReassemblyService {
 public:
  explicit ReassemblyService(Simulator& sim) : sim_(sim) {}

  // Feeds a fragment. Returns the whole datagram once complete, nullopt
  // while fragments are missing. Non-fragments pass through unchanged.
  [[nodiscard]] std::optional<Ipv4Datagram> Add(const Ipv4Datagram& fragment);

  // Incomplete buffers are discarded this long after their first fragment.
  void set_timeout(Duration d) { timeout_ = d; }
  // Bound on concurrently tracked datagrams (DoS guard).
  void set_max_buffers(size_t n) { max_buffers_ = n; }

  size_t pending() const { return buffers_.size(); }

  struct Counters {
    uint64_t fragments_received = 0;
    uint64_t datagrams_reassembled = 0;
    uint64_t buffers_timed_out = 0;
    uint64_t buffers_evicted = 0;
    // Fragments whose offset+length claims bytes past the 16-bit datagram
    // bound ("ping of death"); dropped before buffering.
    uint64_t fragments_rejected_oversize = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  using Key = std::tuple<uint32_t, uint32_t, uint16_t, uint8_t>;
  struct Buffer {
    // Fragment payloads by byte offset.
    std::map<uint16_t, std::vector<uint8_t>> pieces;
    Ipv4Header first_header;
    bool have_first = false;
    // Total payload length, known once the last fragment (MF=0) arrives.
    std::optional<size_t> total_length;
    Time started;
  };

  void Expire();
  [[nodiscard]] std::optional<Ipv4Datagram> TryComplete(const Key& key, Buffer& buffer);

  Simulator& sim_;
  std::map<Key, Buffer> buffers_;
  Duration timeout_ = Seconds(30);
  size_t max_buffers_ = 64;
  Counters counters_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_REASSEMBLY_H_
