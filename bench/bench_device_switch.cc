// Experiment E2 (paper Figure 6): packet loss when the mobile host switches
// between different network devices — cold (tear down one interface, bring up
// the other) and hot (both interfaces alive), in both directions between the
// wired CS-department Ethernet (net 36.8) and the Metricom radio subnet
// (net 36.134).
//
// As in the paper, the correspondent sends a UDP probe every 250 ms (chosen
// to match the 200-250 ms radio round-trip) and each experiment runs ten
// iterations; we report the per-iteration loss histogram, mirroring the
// figure's bars.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/stats.h"

namespace msn {
namespace {

enum class SwitchKind { kColdWiredToWireless, kColdWirelessToWired,
                        kHotWiredToWireless, kHotWirelessToWired };

const char* KindName(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::kColdWiredToWireless:
      return "cold  wired -> wireless";
    case SwitchKind::kColdWirelessToWired:
      return "cold  wireless -> wired";
    case SwitchKind::kHotWiredToWireless:
      return "hot   wired -> wireless";
    case SwitchKind::kHotWirelessToWired:
      return "hot   wireless -> wired";
  }
  return "?";
}

// Runs one switching trial; returns probes lost (or -1 on failure).
int64_t RunTrial(SwitchKind kind, uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.StartMobileAtHome();

  const bool from_wired =
      kind == SwitchKind::kColdWiredToWireless || kind == SwitchKind::kHotWiredToWireless;
  const bool hot =
      kind == SwitchKind::kHotWiredToWireless || kind == SwitchKind::kHotWirelessToWired;

  if (from_wired) {
    tb.StartMobileOnWired(50);
  } else {
    tb.StartMobileOnWireless(60);
  }
  if (hot) {
    // Hot switch: the target interface is already up and configured.
    if (from_wired) {
      tb.ForceRadioUp();
      tb.mh->stack().ConfigureAddress(tb.mh_radio, Ipv4Address(36, 134, 0, 70),
                                      SubnetMask(16));
    } else {
      tb.MoveMhEthernetTo(tb.net8.get());
      tb.ForceEthUp();
      tb.mh->stack().ConfigureAddress(tb.mh_eth, Ipv4Address(36, 8, 0, 55), SubnetMask(16));
    }
  } else if (!from_wired) {
    // Cold switch to wired: move the cable first.
    tb.MoveMhEthernetTo(tb.net8.get());
  }

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();
  tb.RunFor(Seconds(2));

  bool ok = false;
  MobileHost::Attachment target = from_wired
                                      ? tb.WirelessAttachment(hot ? 70 : 60)
                                      : tb.WiredAttachment(hot ? 55 : 50);
  if (hot) {
    tb.mobile->HotSwitchTo(target, [&](bool r) { ok = r; });
  } else {
    tb.mobile->ColdSwitchTo(target, [&](bool r) { ok = r; });
  }
  tb.RunFor(Seconds(6));
  sender.Stop();
  tb.RunFor(Seconds(2));
  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }
  if (!ok || !tb.mobile->registered()) {
    return -1;
  }
  return static_cast<int64_t>(sender.TotalLost());
}

int Main() {
  const int kIterations = BenchIterations(10, 2);
  const uint64_t kBaseSeed = 3000;

  std::printf("==============================================================\n");
  std::printf("E2 / Figure 6: device switching overhead\n");
  std::printf("CH probes every 250 ms; %d iterations per configuration\n", kIterations);
  std::printf("==============================================================\n\n");

  BenchReport report("device_switch",
                     "E2 / Figure 6: packet loss across cold/hot device switches");
  report.set_seed(kBaseSeed);
  report.AddParam("iterations_per_config", kIterations);
  report.AddParam("probe_interval_ms", 250);

  const SwitchKind kinds[] = {SwitchKind::kColdWiredToWireless,
                              SwitchKind::kColdWirelessToWired,
                              SwitchKind::kHotWiredToWireless,
                              SwitchKind::kHotWirelessToWired};
  struct Row {
    SwitchKind kind;
    IntHistogram losses;
    RunningStats loss_stats;
    int failures = 0;
  };
  std::vector<Row> rows;
  bool metrics_captured = false;
  for (SwitchKind kind : kinds) {
    Row row{kind, {}, {}, 0};
    for (int i = 0; i < kIterations; ++i) {
      // Snapshot registry metrics from a single representative trial (the
      // first one) so the report carries per-component counters.
      const bool capture = !metrics_captured;
      metrics_captured = true;
      const int64_t lost = RunTrial(kind, kBaseSeed + static_cast<uint64_t>(i) * 17 +
                                              static_cast<uint64_t>(kind) * 1000,
                                    capture ? &report : nullptr);
      if (lost < 0) {
        std::printf("  %s iteration %d: switch failed\n", KindName(kind), i + 1);
        ++row.failures;
        continue;
      }
      row.losses.Add(lost);
      row.loss_stats.Add(static_cast<double>(lost));
    }
    rows.push_back(std::move(row));
  }

  for (const Row& row : rows) {
    std::printf("--- %s ---\n", KindName(row.kind));
    std::printf("%s", row.losses.Render("lost").c_str());
    std::printf("  mean lost: %s\n\n", row.loss_stats.Summary(1).c_str());
    report.AddRow(KindName(row.kind),
                  {{"lost_mean", row.loss_stats.mean()},
                   {"lost_min", row.losses.total() > 0 ? row.losses.min_value() : 0},
                   {"lost_max", row.losses.total() > 0 ? row.losses.max_value() : 0},
                   {"iterations", row.losses.total()},
                   {"failures", row.failures}});
  }

  std::printf("%-30s | %-30s | %s\n", "configuration", "paper (Figure 6)", "measured");
  std::printf("%.30s-+-%.30s-+-%.30s\n", "------------------------------",
              "------------------------------", "------------------------------");
  for (const Row& row : rows) {
    const bool hot = row.kind == SwitchKind::kHotWiredToWireless ||
                     row.kind == SwitchKind::kHotWirelessToWired;
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%lld-%lld lost (mean %.1f)",
                  static_cast<long long>(row.losses.min_value()),
                  static_cast<long long>(row.losses.max_value()),
                  row.loss_stats.mean());
    std::printf("%-30s | %-30s | %s\n", KindName(row.kind),
                hot ? "usually 0 lost" : "loss interval < ~1.25 s (2-5)", measured);
  }
  std::printf("\nShape check: cold switches lose a handful of probes (dominated by\n"
              "interface bring-up); hot switches lose essentially nothing.\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
