file(REMOVE_RECURSE
  "CMakeFiles/msn_util.dir/byte_buffer.cc.o"
  "CMakeFiles/msn_util.dir/byte_buffer.cc.o.d"
  "CMakeFiles/msn_util.dir/logging.cc.o"
  "CMakeFiles/msn_util.dir/logging.cc.o.d"
  "CMakeFiles/msn_util.dir/rng.cc.o"
  "CMakeFiles/msn_util.dir/rng.cc.o.d"
  "CMakeFiles/msn_util.dir/siphash.cc.o"
  "CMakeFiles/msn_util.dir/siphash.cc.o.d"
  "CMakeFiles/msn_util.dir/stats.cc.o"
  "CMakeFiles/msn_util.dir/stats.cc.o.d"
  "libmsn_util.a"
  "libmsn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
