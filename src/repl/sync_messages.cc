#include "src/repl/sync_messages.h"

#include <cstdio>

#include "src/util/byte_buffer.h"

namespace msn {

std::optional<SyncMessageType> PeekSyncMessageType(const std::vector<uint8_t>& bytes) {
  if (bytes.empty()) {
    return std::nullopt;
  }
  switch (bytes[0]) {
    case static_cast<uint8_t>(SyncMessageType::kHeartbeat):
    case static_cast<uint8_t>(SyncMessageType::kMutation):
    case static_cast<uint8_t>(SyncMessageType::kAck):
    case static_cast<uint8_t>(SyncMessageType::kSnapshotRequest):
    case static_cast<uint8_t>(SyncMessageType::kSnapshot):
      return static_cast<SyncMessageType>(bytes[0]);
    default:
      return std::nullopt;
  }
}

std::vector<uint8_t> SyncHeartbeat::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(SyncMessageType::kHeartbeat));
  w.WriteU64(epoch);
  w.WriteU8(role == HaRole::kPrimary ? 1 : 0);
  w.WriteU64(seq);
  return w.Take();
}

std::optional<SyncHeartbeat> SyncHeartbeat::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize ||
      r.ReadU8() != static_cast<uint8_t>(SyncMessageType::kHeartbeat)) {
    return std::nullopt;
  }
  SyncHeartbeat hb;
  hb.epoch = r.ReadU64();
  hb.role = r.ReadU8() != 0 ? HaRole::kPrimary : HaRole::kStandby;
  hb.seq = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return hb;
}

std::string SyncHeartbeat::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "SyncHeartbeat epoch=%llu role=%s seq=%llu",
                static_cast<unsigned long long>(epoch),
                role == HaRole::kPrimary ? "primary" : "standby",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::vector<uint8_t> SyncMutation::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(SyncMessageType::kMutation));
  w.WriteU64(epoch);
  w.WriteU64(seq);
  w.WriteU8(static_cast<uint8_t>(mutation.kind));
  w.WriteU32(mutation.home_address.value());
  w.WriteU32(mutation.care_of.value());
  w.WriteU16(mutation.lifetime_sec);
  w.WriteU64(mutation.identification);
  w.WriteU8(mutation.decapsulates_self ? kFlagDecapsulatesSelf : 0);
  return w.Take();
}

std::optional<SyncMutation> SyncMutation::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize ||
      r.ReadU8() != static_cast<uint8_t>(SyncMessageType::kMutation)) {
    return std::nullopt;
  }
  SyncMutation m;
  m.epoch = r.ReadU64();
  m.seq = r.ReadU64();
  const uint8_t kind = r.ReadU8();
  if (kind < static_cast<uint8_t>(BindingMutation::Kind::kInstall) ||
      kind > static_cast<uint8_t>(BindingMutation::Kind::kIdentification)) {
    return std::nullopt;
  }
  m.mutation.kind = static_cast<BindingMutation::Kind>(kind);
  m.mutation.home_address = Ipv4Address(r.ReadU32());
  m.mutation.care_of = Ipv4Address(r.ReadU32());
  m.mutation.lifetime_sec = r.ReadU16();
  m.mutation.identification = r.ReadU64();
  m.mutation.decapsulates_self = (r.ReadU8() & kFlagDecapsulatesSelf) != 0;
  if (!r.ok()) {
    return std::nullopt;
  }
  return m;
}

std::string SyncMutation::ToString() const {
  const char* kind = "?";
  switch (mutation.kind) {
    case BindingMutation::Kind::kInstall:
      kind = "install";
      break;
    case BindingMutation::Kind::kRemove:
      kind = "remove";
      break;
    case BindingMutation::Kind::kIdentification:
      kind = "ident";
      break;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "SyncMutation epoch=%llu seq=%llu %s home=%s careof=%s lifetime=%us id=%llu",
                static_cast<unsigned long long>(epoch), static_cast<unsigned long long>(seq),
                kind, mutation.home_address.ToString().c_str(),
                mutation.care_of.ToString().c_str(), mutation.lifetime_sec,
                static_cast<unsigned long long>(mutation.identification));
  return buf;
}

std::vector<uint8_t> SyncAck::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(SyncMessageType::kAck));
  w.WriteU64(epoch);
  w.WriteU64(seq);
  return w.Take();
}

std::optional<SyncAck> SyncAck::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize || r.ReadU8() != static_cast<uint8_t>(SyncMessageType::kAck)) {
    return std::nullopt;
  }
  SyncAck ack;
  ack.epoch = r.ReadU64();
  ack.seq = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return ack;
}

std::vector<uint8_t> SyncSnapshotRequest::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(SyncMessageType::kSnapshotRequest));
  w.WriteU64(epoch);
  return w.Take();
}

std::optional<SyncSnapshotRequest> SyncSnapshotRequest::Parse(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize ||
      r.ReadU8() != static_cast<uint8_t>(SyncMessageType::kSnapshotRequest)) {
    return std::nullopt;
  }
  SyncSnapshotRequest req;
  req.epoch = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return req;
}

std::vector<uint8_t> SyncSnapshot::Serialize() const {
  ByteWriter w(kMinSize + state.bindings.size() * kBindingEntrySize +
               state.identifications.size() * kIdentEntrySize);
  w.WriteU8(static_cast<uint8_t>(SyncMessageType::kSnapshot));
  w.WriteU64(epoch);
  w.WriteU64(seq);
  w.WriteU16(static_cast<uint16_t>(state.bindings.size()));
  for (const auto& entry : state.bindings) {
    w.WriteU32(entry.home_address.value());
    w.WriteU32(entry.care_of.value());
    w.WriteU16(entry.lifetime_sec);
    w.WriteU64(entry.identification);
    w.WriteU8(entry.decapsulates_self ? SyncMutation::kFlagDecapsulatesSelf : 0);
  }
  w.WriteU16(static_cast<uint16_t>(state.identifications.size()));
  for (const auto& [home, identification] : state.identifications) {
    w.WriteU32(home.value());
    w.WriteU64(identification);
  }
  return w.Take();
}

std::optional<SyncSnapshot> SyncSnapshot::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kMinSize ||
      r.ReadU8() != static_cast<uint8_t>(SyncMessageType::kSnapshot)) {
    return std::nullopt;
  }
  SyncSnapshot snap;
  snap.epoch = r.ReadU64();
  snap.seq = r.ReadU64();
  const uint16_t binding_count = r.ReadU16();
  if (!r.ok() || r.remaining() < binding_count * kBindingEntrySize) {
    return std::nullopt;
  }
  snap.state.bindings.reserve(binding_count);
  for (uint16_t i = 0; i < binding_count; ++i) {
    HaBindingState::Entry entry;
    entry.home_address = Ipv4Address(r.ReadU32());
    entry.care_of = Ipv4Address(r.ReadU32());
    entry.lifetime_sec = r.ReadU16();
    entry.identification = r.ReadU64();
    entry.decapsulates_self = (r.ReadU8() & SyncMutation::kFlagDecapsulatesSelf) != 0;
    snap.state.bindings.push_back(entry);
  }
  if (r.remaining() < 2) {
    return std::nullopt;
  }
  const uint16_t ident_count = r.ReadU16();
  if (!r.ok() || r.remaining() < ident_count * kIdentEntrySize) {
    return std::nullopt;
  }
  snap.state.identifications.reserve(ident_count);
  for (uint16_t i = 0; i < ident_count; ++i) {
    const Ipv4Address home(r.ReadU32());
    const uint64_t identification = r.ReadU64();
    snap.state.identifications.emplace_back(home, identification);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return snap;
}

std::string SyncSnapshot::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "SyncSnapshot epoch=%llu seq=%llu bindings=%zu idents=%zu",
                static_cast<unsigned long long>(epoch), static_cast<unsigned long long>(seq),
                state.bindings.size(), state.identifications.size());
  return buf;
}

}  // namespace msn
