// Shared transmission media.
//
// A BroadcastMedium joins any number of attached devices into one broadcast
// domain: an Ethernet segment or a Metricom radio cell, differing only in
// parameters (propagation latency, jitter, random frame loss). Delivery is by
// destination MAC; broadcast frames reach every attached device but the
// sender.
#ifndef MSN_SRC_LINK_MEDIUM_H_
#define MSN_SRC_LINK_MEDIUM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

class LinkDevice;

// Why a frame vanished between sender and receiver. Distinguishing the three
// keeps chaos runs debuggable: injected-fault drops must never be confused
// with the medium's own random loss or with misaddressed frames.
enum class FrameDropReason {
  kRandomLoss,     // MediumParams::drop_probability fired.
  kFaultInjected,  // The installed fault hook (src/fault/) vetoed delivery.
  kUnmatched,      // No attached device owns the destination MAC.
};

// Verdict a fault hook returns for one frame delivery. The hook may also
// mutate the frame in place (bit corruption); the medium delivers whatever
// the hook leaves behind.
struct FaultVerdict {
  bool drop = false;
  int duplicates = 0;      // Extra copies delivered alongside the original.
  Duration extra_latency;  // Added queueing delay (reordering).
};

struct MediumParams {
  // One-way propagation + medium access latency.
  Duration latency = Microseconds(50);
  // Absolute stddev of per-frame latency jitter.
  Duration latency_jitter = Duration();
  // Independent per-frame loss probability (radio frames do occasionally
  // vanish; the paper observed one such drop during the hot-switch runs).
  double drop_probability = 0.0;
};

class BroadcastMedium {
 public:
  // Per-medium accounting lands in `metrics` under "link.<name>.*"; with no
  // registry supplied the medium keeps a private one, so accounting (and the
  // counters() accessor) works identically either way.
  BroadcastMedium(Simulator& sim, std::string name, MediumParams params,
                  MetricsRegistry* metrics = nullptr);
  // Unlinks any still-attached devices so a device that outlives its medium
  // (tests routinely scope a medium tighter than the fixture's devices)
  // doesn't detach from freed memory later.
  ~BroadcastMedium();

  BroadcastMedium(const BroadcastMedium&) = delete;
  BroadcastMedium& operator=(const BroadcastMedium&) = delete;

  void Attach(LinkDevice* device);
  void Detach(LinkDevice* device);

  // Called by an attached device once its serialization delay has elapsed.
  void FrameFromDevice(LinkDevice* sender, const EthernetFrame& frame);

  const std::string& name() const { return name_; }
  const MediumParams& params() const { return params_; }
  void set_params(const MediumParams& p) { params_ = p; }

  // Consulted once per (frame, receiver) after the medium's own random-loss
  // draw. At most one hook; a FaultInjector installs itself here.
  using FaultHook = std::function<FaultVerdict(LinkDevice* target, EthernetFrame& frame)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }
  void ClearFaultHook() { fault_hook_ = nullptr; }

  // Observes every frame the medium fails to deliver, with the reason.
  // PacketCapture taps this so drops show up (tagged) in traces.
  using DropTap = std::function<void(const EthernetFrame& frame, FrameDropReason reason)>;
  void SetDropTap(DropTap tap) { drop_tap_ = std::move(tap); }
  void ClearDropTap() { drop_tap_ = nullptr; }

  // Snapshot of the per-drop-reason accounting, read back from the registry.
  struct Counters {
    uint64_t frames_carried = 0;
    uint64_t frames_dropped = 0;  // Random medium loss.
    uint64_t frames_fault_dropped = 0;  // Injected-fault loss (hook verdict).
    uint64_t frames_unmatched = 0;  // No attached device with that MAC.
  };
  Counters counters() const;

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef frames_carried;
    CounterRef frames_dropped;
    CounterRef frames_fault_dropped;
    CounterRef frames_unmatched;
  };

  void DeliverAfterLatency(LinkDevice* target, const EthernetFrame& frame);
  Duration DrawLatency();
  void NotifyDrop(const EthernetFrame& frame, FrameDropReason reason);

  Simulator& sim_;
  std::string name_;
  MediumParams params_;
  // Attachment-ordered vector, deliberately not a hash container: broadcast
  // delivery (and the per-receiver random-loss/fault draws it triggers)
  // walks this in order, so traversal order is part of the deterministic
  // replay contract. msn_analyze's determinism/unordered-iteration rule
  // exists to keep containers like this one insertion-ordered or sorted.
  std::vector<LinkDevice*> devices_;
  FaultHook fault_hook_;
  DropTap drop_tap_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
};

}  // namespace msn

#endif  // MSN_SRC_LINK_MEDIUM_H_
