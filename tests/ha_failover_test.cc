// End-to-end tests of the replicated home-agent pair (DESIGN.md §14):
// binding mutations mirror onto the standby, a fail-stop primary crash
// triggers backup takeover and MH failover, a rejoining primary demotes
// itself and resyncs from the replica instead of forcing an identification
// resync, and crashed agents account for every packet they black-hole.
#include <gtest/gtest.h>

#include <memory>

#include "src/fault/fault_schedule.h"
#include "src/node/icmp.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

class FailoverFixture : public ::testing::Test {
 protected:
  void Build(uint16_t lifetime_sec = 8) {
    TestbedConfig cfg;
    cfg.realistic_delays = false;
    cfg.with_backup_ha = true;
    cfg.mh_lifetime_sec = lifetime_sec;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    tb_->StartMobileOnWired(50);
    ASSERT_TRUE(tb_->mobile->registered());
  }

  bool PingCorrespondent() {
    Pinger pinger(tb_->mh->stack());
    bool ok = false;
    pinger.Ping(tb_->ch_address(), Seconds(2),
                [&](const Pinger::Result& result) { ok = result.success; });
    tb_->RunFor(Seconds(2) + Milliseconds(100));
    return ok;
  }

  double Metric(const char* name) { return tb_->metrics.ReadValue(name).value_or(0); }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(FailoverFixture, MutationsMirrorOntoStandby) {
  Build();
  tb_->RunFor(Seconds(1));

  // The registration reached the primary and streamed to the standby.
  ASSERT_TRUE(tb_->home_agent->serving());
  ASSERT_FALSE(tb_->backup_agent->serving());
  const auto mirrored = tb_->backup_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(mirrored->care_of, tb_->mobile->care_of());

  EXPECT_EQ(Metric("ha.role"), 1.0);
  EXPECT_EQ(Metric("ha.backup.role"), 0.0);
  EXPECT_EQ(Metric("ha.backup.bindings"), 1.0);
  EXPECT_GE(Metric("repl.mutations_sent"), 1.0);
  EXPECT_GE(Metric("repl.backup.mutations_applied"), 1.0);
  EXPECT_EQ(Metric("ha.sync_lag"), 0.0);  // Everything sent has been acked.
  EXPECT_EQ(tb_->ServingAgentCount(), 1);
}

TEST_F(FailoverFixture, PermanentCrashFailsOverToBackup) {
  Build();
  tb_->RunFor(Seconds(1));

  tb_->home_agent->BeginOutage(HaOutageKind::kFailStop);
  tb_->RunFor(Seconds(8));

  // Backup took over in a fresh epoch and is the only serving agent.
  EXPECT_FALSE(tb_->home_agent->serving());
  ASSERT_TRUE(tb_->backup_agent->serving());
  EXPECT_GE(tb_->backup_agent->epoch(), 2u);
  EXPECT_EQ(tb_->ServingAgentCount(), 1);
  EXPECT_EQ(Metric("repl.backup.takeovers"), 1.0);
  EXPECT_EQ(Metric("ha.backup.role"), 1.0);

  // The MH escalated its dying renewals into a failover to the backup.
  ASSERT_TRUE(tb_->mobile->registered());
  EXPECT_EQ(tb_->mobile->active_home_agent(), Testbed::BackupHaAddress());
  EXPECT_GE(tb_->mobile->counters().failover_count, 1u);
  EXPECT_GE(Metric("mh.failover_count"), 1.0);
  const auto binding = tb_->backup_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, tb_->mobile->care_of());

  // Renewals that raced the crash were dropped with reason accounting, and
  // no identification resync was needed: the replica already knew the MH.
  EXPECT_GE(tb_->home_agent->counters().requests_dropped_crashed, 1u);
  EXPECT_EQ(tb_->backup_agent->counters().resync_denials, 0u);
  EXPECT_EQ(tb_->mobile->counters().resyncs, 0u);

  // End-to-end traffic flows through the backup's tunnel.
  EXPECT_TRUE(PingCorrespondent());
  EXPECT_GE(tb_->backup_agent->counters().packets_tunneled +
                tb_->backup_agent->counters().reverse_decapsulated,
            1u);
}

TEST_F(FailoverFixture, RejoiningPrimaryResyncsFromReplica) {
  Build();

  FaultSchedule schedule;
  schedule.HaCrash(Seconds(1), *tb_->home_agent, /*rejoin_after=*/Seconds(4));
  schedule.Arm(tb_->sim);
  tb_->RunFor(Seconds(15));

  // The rejoined primary came back wiped, demoted itself to standby, and
  // rebuilt its table from the replica's snapshot — not from the MH.
  EXPECT_FALSE(tb_->home_agent->crashed());
  EXPECT_EQ(tb_->home_agent->role(), HaRole::kStandby);
  ASSERT_TRUE(tb_->backup_agent->serving());
  EXPECT_EQ(tb_->ServingAgentCount(), 1);
  EXPECT_EQ(tb_->home_agent->counters().bindings_wiped, 1u);
  EXPECT_GE(Metric("repl.snapshots_applied"), 1.0);
  const auto mirrored = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(mirrored->care_of, tb_->mobile->care_of());

  // No resync round trip was forced on the mobile host.
  EXPECT_EQ(tb_->home_agent->counters().resync_denials, 0u);
  EXPECT_EQ(tb_->backup_agent->counters().resync_denials, 0u);
  EXPECT_EQ(tb_->mobile->counters().resyncs, 0u);
  ASSERT_TRUE(tb_->mobile->registered());
  EXPECT_EQ(tb_->mobile->active_home_agent(), Testbed::BackupHaAddress());
}

TEST_F(FailoverFixture, ServiceOutageDemotesPrimaryOnHeal) {
  Build();

  // A muted-but-alive primary: the backup takes over on heartbeat silence;
  // when the primary's service returns it hears the higher epoch and steps
  // down rather than splitting the brain.
  FaultSchedule schedule;
  schedule.HaOutage(Milliseconds(500), *tb_->home_agent, Seconds(4), HaOutageKind::kService);
  schedule.Arm(tb_->sim);
  tb_->RunFor(Seconds(12));

  EXPECT_EQ(tb_->home_agent->role(), HaRole::kStandby);
  ASSERT_TRUE(tb_->backup_agent->serving());
  EXPECT_EQ(tb_->ServingAgentCount(), 1);
  EXPECT_GE(Metric("repl.backup.takeovers"), 1.0);
  EXPECT_GE(Metric("repl.stepdowns"), 1.0);
  ASSERT_TRUE(tb_->mobile->registered());
  EXPECT_EQ(tb_->mobile->active_home_agent(), Testbed::BackupHaAddress());
}

TEST_F(FailoverFixture, DeregistrationReplicates) {
  Build();
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(tb_->backup_agent->HasBinding(Testbed::HomeAddress()));

  tb_->MoveMhEthernetTo(tb_->net135.get());
  bool home = false;
  tb_->mobile->AttachHome([&](bool ok) { home = ok; });
  tb_->RunFor(Seconds(3));
  ASSERT_TRUE(home);

  // The deregistration removed the binding on the serving agent and the
  // kRemove mutation removed the mirror.
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_FALSE(tb_->backup_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_EQ(Metric("ha.backup.bindings"), 0.0);
}

// Fail-stop drop accounting without a replica: packets that arrive at a dead
// agent are counted by reason, not silently lost.
TEST(HaCrashAccountingTest, CrashedAgentCountsItsDrops) {
  TestbedConfig cfg;
  cfg.realistic_delays = false;
  cfg.mh_lifetime_sec = 10;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  ASSERT_TRUE(tb.mobile->registered());

  // Prime the path so the CH->home flow is established, then crash.
  UdpSocket probe(tb.ch->stack());
  ASSERT_TRUE(probe.Bind(5600));
  probe.SendTo(Testbed::HomeAddress(), 5601, {1, 2, 3});
  tb.RunFor(Seconds(1));

  tb.home_agent->BeginOutage(HaOutageKind::kFailStop);
  ASSERT_TRUE(tb.home_agent->crashed());
  for (int i = 0; i < 5; ++i) {
    probe.SendTo(Testbed::HomeAddress(), 5601, {1, 2, 3});
    tb.RunFor(Milliseconds(200));
  }
  tb.RunFor(Seconds(5));

  EXPECT_GE(tb.home_agent->counters().tunnel_drops_crashed, 5u);

  // Recovery from a crash-with-restart still works without a replica: the
  // wiped agent forces one identification resync, the classic path.
  tb.home_agent->EndOutage();
  tb.RunFor(Seconds(20));
  EXPECT_TRUE(tb.mobile->registered());
  EXPECT_GE(tb.home_agent->counters().bindings_wiped, 1u);
  EXPECT_GE(tb.home_agent->counters().resync_denials, 1u);
  EXPECT_GE(tb.mobile->counters().resyncs, 1u);
}

}  // namespace
}  // namespace msn
