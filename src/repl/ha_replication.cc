#include "src/repl/ha_replication.h"
#include "src/util/assert.h"

#include <algorithm>
#include <utility>

#include "src/node/node.h"
#include "src/util/logging.h"

namespace msn {

HaReplicationLink::HaReplicationLink(HomeAgent& ha, Config config)
    : ha_(ha), config_(std::move(config)) {
  MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string& p = config_.metric_prefix;
  counters_.heartbeats_sent = metrics->GetCounterRef(p + "heartbeats_sent");
  counters_.mutations_sent = metrics->GetCounterRef(p + "mutations_sent");
  counters_.mutations_applied = metrics->GetCounterRef(p + "mutations_applied");
  counters_.duplicate_mutations = metrics->GetCounterRef(p + "duplicate_mutations");
  counters_.out_of_order = metrics->GetCounterRef(p + "out_of_order");
  counters_.acks_received = metrics->GetCounterRef(p + "acks_received");
  counters_.snapshot_requests = metrics->GetCounterRef(p + "snapshot_requests");
  counters_.snapshots_sent = metrics->GetCounterRef(p + "snapshots_sent");
  counters_.snapshots_applied = metrics->GetCounterRef(p + "snapshots_applied");
  counters_.takeovers = metrics->GetCounterRef(p + "takeovers");
  counters_.stepdowns = metrics->GetCounterRef(p + "stepdowns");
  sync_lag_gauge_ = &metrics->GetGauge(ha_.config().metric_prefix + "sync_lag");
  UpdateLagGauge();

  socket_ = std::make_unique<UdpSocket>(ha_.node().stack());
  MSN_CHECK(socket_->Bind(config_.port)) << "sync port " << config_.port;
  socket_->BindSourceAddress(config_.self);
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        (void)meta;
        OnSyncDatagram(data);
      });

  ha_.SetReplicationSink(
      [this](const BindingMutation& mutation) { OnLocalMutation(mutation); });

  Simulator& sim = ha_.node().sim();
  last_primary_heard_ = sim.Now();
  next_snapshot_at_ = sim.Now() + config_.snapshot_interval;
  tick_ = std::make_unique<PeriodicTask>(sim, config_.heartbeat_interval,
                                         [this] { OnTick(); });
  tick_->Start();
}

HaReplicationLink::~HaReplicationLink() {
  ha_.SetReplicationSink(nullptr);
}

HaReplicationLink::Counters HaReplicationLink::counters() const {
  Counters c;
  c.heartbeats_sent = counters_.heartbeats_sent;
  c.mutations_sent = counters_.mutations_sent;
  c.mutations_applied = counters_.mutations_applied;
  c.duplicate_mutations = counters_.duplicate_mutations;
  c.out_of_order = counters_.out_of_order;
  c.acks_received = counters_.acks_received;
  c.snapshot_requests = counters_.snapshot_requests;
  c.snapshots_sent = counters_.snapshots_sent;
  c.snapshots_applied = counters_.snapshots_applied;
  c.takeovers = counters_.takeovers;
  c.stepdowns = counters_.stepdowns;
  return c;
}

void HaReplicationLink::UpdateLagGauge() {
  sync_lag_gauge_->Set(static_cast<double>(sync_lag()));
}

void HaReplicationLink::OnLocalMutation(const BindingMutation& mutation) {
  // Only a live primary streams; a standby's local binding changes (expiry of
  // a mirrored binding it never heard a refresh for) stay local.
  if (!ha_.serving() || !ha_.service_available()) {
    return;
  }
  SyncMutation m;
  m.epoch = ha_.epoch();
  m.seq = ++last_sent_seq_;
  m.mutation = mutation;
  ++counters_.mutations_sent;
  socket_->SendTo(config_.peer, config_.port, m.Serialize());
  UpdateLagGauge();
}

void HaReplicationLink::OnTick() {
  const bool available = ha_.service_available() && !ha_.crashed();
  if (!available) {
    was_available_ = false;
    return;
  }
  Simulator& sim = ha_.node().sim();
  if (!was_available_) {
    // Rejoin: forgive the silence accumulated while we were down, and as a
    // standby pull a snapshot so we resync from the replica.
    was_available_ = true;
    last_primary_heard_ = sim.Now();
    if (ha_.role() == HaRole::kStandby) {
      RequestSnapshot();
    }
  }
  if (ha_.serving()) {
    SendHeartbeat();
    if (sim.Now() >= next_snapshot_at_) {
      SendSnapshot();
      next_snapshot_at_ = sim.Now() + config_.snapshot_interval;
    }
    UpdateLagGauge();
    return;
  }
  if (ha_.role() == HaRole::kStandby &&
      sim.Now() - last_primary_heard_ > config_.takeover_timeout) {
    Takeover();
  }
}

void HaReplicationLink::Takeover() {
  ++counters_.takeovers;
  MSN_WARN("repl", "%s: primary silent for %.0f ms, taking over (epoch %llu -> %llu)",
           ha_.node().name().c_str(),
           (ha_.node().sim().Now() - last_primary_heard_).ToMillisF(),
           static_cast<unsigned long long>(ha_.epoch()),
           static_cast<unsigned long long>(ha_.epoch() + 1));
  ha_.Promote(ha_.epoch() + 1);
  // Sequences are per-epoch; the new reign starts its own stream.
  last_sent_seq_ = 0;
  last_acked_seq_ = 0;
  UpdateLagGauge();
  // Announce the new epoch immediately so a lingering old primary demotes
  // itself on the first packet rather than the next tick.
  SendHeartbeat();
}

void HaReplicationLink::StepDownInto(uint64_t epoch) {
  if (ha_.serving()) {
    ++counters_.stepdowns;
  }
  ha_.StepDown(epoch);
  last_primary_heard_ = ha_.node().sim().Now();
  RequestSnapshot();
}

void HaReplicationLink::SendHeartbeat() {
  SyncHeartbeat hb;
  hb.epoch = ha_.epoch();
  hb.role = ha_.role();
  hb.seq = last_sent_seq_;
  ++counters_.heartbeats_sent;
  socket_->SendTo(config_.peer, config_.port, hb.Serialize());
}

void HaReplicationLink::SendSnapshot() {
  SyncSnapshot snap;
  snap.epoch = ha_.epoch();
  snap.seq = last_sent_seq_;
  snap.state = ha_.SnapshotState();
  ++counters_.snapshots_sent;
  socket_->SendTo(config_.peer, config_.port, snap.Serialize());
}

void HaReplicationLink::SendAck() {
  SyncAck ack;
  ack.epoch = ha_.epoch();
  ack.seq = expected_seq_ - 1;
  socket_->SendTo(config_.peer, config_.port, ack.Serialize());
}

void HaReplicationLink::RequestSnapshot() {
  const Time now = ha_.node().sim().Now();
  if (snapshot_requested_ && now - last_snapshot_request_ < config_.heartbeat_interval) {
    return;
  }
  snapshot_requested_ = true;
  last_snapshot_request_ = now;
  SyncSnapshotRequest req;
  req.epoch = ha_.epoch();
  ++counters_.snapshot_requests;
  socket_->SendTo(config_.peer, config_.port, req.Serialize());
}

void HaReplicationLink::OnSyncDatagram(const std::vector<uint8_t>& data) {
  // A dead agent hears nothing; anything in flight is lost with it.
  if (!ha_.service_available() || ha_.crashed()) {
    return;
  }
  const auto type = PeekSyncMessageType(data);
  if (!type) {
    return;
  }
  switch (*type) {
    case SyncMessageType::kHeartbeat:
      if (auto hb = SyncHeartbeat::Parse(data)) {
        OnHeartbeat(*hb);
      }
      return;
    case SyncMessageType::kMutation:
      if (auto m = SyncMutation::Parse(data)) {
        OnMutation(*m);
      }
      return;
    case SyncMessageType::kAck:
      if (auto ack = SyncAck::Parse(data)) {
        if (ack->epoch == ha_.epoch()) {
          ++counters_.acks_received;
          last_acked_seq_ = std::max(last_acked_seq_, ack->seq);
          UpdateLagGauge();
        }
      }
      return;
    case SyncMessageType::kSnapshotRequest:
      if (auto req = SyncSnapshotRequest::Parse(data)) {
        if (ha_.serving()) {
          SendSnapshot();
        }
      }
      return;
    case SyncMessageType::kSnapshot:
      if (auto snap = SyncSnapshot::Parse(data)) {
        OnSnapshot(*snap);
      }
      return;
  }
}

void HaReplicationLink::OnHeartbeat(const SyncHeartbeat& hb) {
  if (hb.role != HaRole::kPrimary) {
    return;  // Standby beacons carry no authority.
  }
  if (hb.epoch > ha_.epoch()) {
    // A superior reign exists; fall in line whatever our role was.
    StepDownInto(hb.epoch);
    expected_seq_ = hb.seq + 1;
    return;
  }
  if (hb.epoch < ha_.epoch()) {
    return;  // Stale primary; our own heartbeats will demote it.
  }
  if (ha_.role() == HaRole::kPrimary) {
    // Dual primary in the same epoch (partition heal): lower address wins.
    if (config_.self.value() > config_.peer.value()) {
      StepDownInto(hb.epoch);
      expected_seq_ = hb.seq + 1;
    }
    return;
  }
  last_primary_heard_ = ha_.node().sim().Now();
  if (hb.seq >= expected_seq_) {
    // The primary has sent mutations we never saw.
    RequestSnapshot();
  }
}

void HaReplicationLink::OnMutation(const SyncMutation& m) {
  if (m.epoch > ha_.epoch()) {
    StepDownInto(m.epoch);
    // The gap from our epoch into theirs is unknowable; the snapshot
    // requested by StepDownInto resynchronizes, so just resume in-order
    // delivery after this mutation.
    expected_seq_ = m.seq + 1;
    ha_.ApplyMutation(m.mutation);
    ++counters_.mutations_applied;
    SendAck();
    return;
  }
  if (m.epoch < ha_.epoch() || ha_.role() == HaRole::kPrimary) {
    return;  // Stale reign, or we are the authority; drop.
  }
  last_primary_heard_ = ha_.node().sim().Now();
  if (m.seq == expected_seq_) {
    ha_.ApplyMutation(m.mutation);
    ++counters_.mutations_applied;
    ++expected_seq_;
    SendAck();
    return;
  }
  if (m.seq < expected_seq_) {
    // Duplicate of something already applied (or covered by a snapshot);
    // re-ack so the primary's lag gauge drains.
    ++counters_.duplicate_mutations;
    SendAck();
    return;
  }
  // Gap: never apply out of order — heal through anti-entropy.
  ++counters_.out_of_order;
  MSN_WARN("repl", "%s: sequence gap (expected %llu, got %llu), requesting snapshot",
           ha_.node().name().c_str(), static_cast<unsigned long long>(expected_seq_),
           static_cast<unsigned long long>(m.seq));
  RequestSnapshot();
}

void HaReplicationLink::OnSnapshot(const SyncSnapshot& snap) {
  if (snap.epoch < ha_.epoch()) {
    return;
  }
  if (ha_.role() == HaRole::kPrimary) {
    if (snap.epoch == ha_.epoch() && config_.self.value() <= config_.peer.value()) {
      return;  // Equal-epoch tiebreak says we stay primary.
    }
    StepDownInto(snap.epoch);
  } else if (snap.epoch > ha_.epoch()) {
    ha_.StepDown(snap.epoch);  // Adopt the newer epoch (already standby).
  }
  ha_.AdoptState(snap.state);
  expected_seq_ = snap.seq + 1;
  ++counters_.snapshots_applied;
  last_primary_heard_ = ha_.node().sim().Now();
  SendAck();
}

}  // namespace msn
