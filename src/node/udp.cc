#include "src/node/udp.h"

#include <utility>

#include "src/node/ip_stack.h"

namespace msn {

UdpSocket::UdpSocket(IpStack& stack) : stack_(stack) {}

UdpSocket::~UdpSocket() {
  if (local_port_ != 0) {
    stack_.UnbindUdpSocket(local_port_, this);
  }
}

bool UdpSocket::Bind(uint16_t port) {
  if (local_port_ != 0) {
    stack_.UnbindUdpSocket(local_port_, this);
    local_port_ = 0;
  }
  if (port == 0) {
    port = stack_.AllocateEphemeralPort();
    if (port == 0) {
      return false;
    }
  }
  if (!stack_.BindUdpSocket(port, this)) {
    return false;
  }
  local_port_ = port;
  return true;
}

void UdpSocket::SendTo(Ipv4Address dst, uint16_t dst_port, std::vector<uint8_t> payload) {
  SendToWithExtras(dst, dst_port, std::move(payload), SendExtras{});
}

void UdpSocket::SendToWithExtras(Ipv4Address dst, uint16_t dst_port,
                                 std::vector<uint8_t> payload, const SendExtras& extras) {
  if (local_port_ == 0 && !Bind(0)) {
    return;
  }
  // The UDP checksum covers a pseudo-header with the final source address.
  // When the socket is unbound the stack picks the source during routing, so
  // we must learn it before serializing. Run the route lookup here the same
  // way the kernel does for connected UDP sockets.
  Ipv4Address src = bound_src_;
  if (src.IsAny() && !extras.allow_unconfigured_source) {
    RouteQuery query{dst, Ipv4Address::Any(), /*forwarding=*/false, /*advisory=*/true};
    if (auto decision = stack_.RouteLookup(query)) {
      src = decision->src;
    }
  }
  UdpDatagram dg;
  dg.src_port = local_port_;
  dg.dst_port = dst_port;
  dg.payload = std::move(payload);

  IpStack::SendOptions opts;
  opts.force_device = extras.force_device;
  if (extras.force_broadcast_mac) {
    opts.force_dst_mac = MacAddress::Broadcast();
  } else if (extras.force_dst_mac.has_value()) {
    opts.force_dst_mac = extras.force_dst_mac;
  }
  opts.allow_unconfigured_source = extras.allow_unconfigured_source;
  ++datagrams_sent_;
  stack_.SendDatagram(src, dst, IpProto::kUdp, dg.Serialize(src, dst), opts);
}

void UdpSocket::Deliver(const std::vector<uint8_t>& data, const Metadata& meta) {
  ++datagrams_received_;
  if (handler_) {
    handler_(data, meta);
  }
}

}  // namespace msn
