# Empty compiler generated dependencies file for foreign_agent_test.
# This may be replaced when dependencies are built.
