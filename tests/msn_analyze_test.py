#!/usr/bin/env python3
"""Self-test for tools/msn_analyze.py.

Covers all four rule families with positive, negative, and suppressed
fixtures, on both backends:

  * Lexical-fallback cases always run (stdlib-only, like msn_lint).
  * AST cases run only where libclang + the python clang bindings are
    installed (CI's static-analysis job; locally they skip with a notice).
    These are the cases the lexical backend cannot express: typedef'd RNG
    engines, aliased time calls, non-header nodiscard declarations.

Registered in ctest as `msn_analyze_test`.
"""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import msn_analyze  # noqa: E402

CINDEX, _CINDEX_REASON = msn_analyze.load_cindex()
needs_ast = unittest.skipIf(
    CINDEX is None, f"AST backend unavailable: {_CINDEX_REASON}")


class FixtureTree:
    """Builds a throwaway repo-shaped tree to analyze."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="msn_analyze_test_")
        self.root = Path(self._tmp.name)

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return path

    def cleanup(self):
        self._tmp.cleanup()


def rules_of(findings):
    return sorted(f.rule for f in findings)


class LexicalBackendTest(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def run_lexical(self, paths=("src",)):
        return msn_analyze.run_lexical(self.tree.root, list(paths))

    # --- determinism/unordered-iteration -------------------------------------

    def test_range_for_over_unordered_member_flagged(self):
        self.tree.write("src/node/bad.h",
                        "#include <unordered_map>\n"
                        "struct T {\n"
                        "  void Walk() { for (auto& kv : table_) { (void)kv; } }\n"
                        "  std::unordered_map<int, int> table_;\n"
                        "};\n")
        self.assertEqual(rules_of(self.run_lexical()),
                         ["determinism/unordered-iteration"])

    def test_cross_file_unordered_iteration_flagged(self):
        # The member is declared in the header; the traversal lives in the
        # .cc. The lexical backend collects declarations across all scanned
        # files before flagging loops.
        self.tree.write("src/node/t.h",
                        "#include <unordered_map>\n"
                        "struct T { std::unordered_map<int, int> table_; };\n")
        self.tree.write("src/node/t.cc",
                        "void Walk(T& t) { for (auto& kv : t.table_) { (void)kv; } }\n")
        self.assertEqual(rules_of(self.run_lexical()),
                         ["determinism/unordered-iteration"])

    def test_begin_on_unordered_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "#include <unordered_set>\n"
                        "std::unordered_set<int> live_;\n"
                        "auto F() { return live_.begin(); }\n")
        self.assertEqual(rules_of(self.run_lexical()),
                         ["determinism/unordered-iteration"])

    def test_ordered_map_iteration_ok(self):
        self.tree.write("src/node/ok.cc",
                        "#include <map>\n"
                        "std::map<int, int> table_;\n"
                        "void Walk() { for (auto& kv : table_) { (void)kv; } }\n")
        self.assertEqual(self.run_lexical(), [])

    def test_unordered_point_queries_ok(self):
        self.tree.write("src/node/ok.cc",
                        "#include <unordered_map>\n"
                        "std::unordered_map<int, int> cache_;\n"
                        "bool Has(int k) { return cache_.find(k) != cache_.end(); }\n")
        self.assertEqual(self.run_lexical(), [])

    def test_unordered_iteration_allow_comment(self):
        self.tree.write("src/node/ok.cc",
                        "#include <unordered_map>\n"
                        "std::unordered_map<int, int> table_;\n"
                        "int Sum() {\n"
                        "  int s = 0;\n"
                        "  // Order-insensitive reduction.\n"
                        "  // msn-analyze: allow(determinism/unordered-iteration)\n"
                        "  for (auto& kv : table_) s += kv.second;\n"
                        "  return s;\n"
                        "}\n")
        self.assertEqual(self.run_lexical(), [])

    # --- determinism/wall-clock + ambient-rng (fallback reuses msn_lint) -----

    def test_wall_clock_flagged(self):
        self.tree.write("src/node/bad.cc", "long t = time(nullptr);\n")
        self.assertEqual(rules_of(self.run_lexical()), ["determinism/wall-clock"])

    def test_ambient_rng_flagged(self):
        self.tree.write("src/node/bad.cc", "std::mt19937 gen(42);\n")
        self.assertEqual(rules_of(self.run_lexical()), ["determinism/ambient-rng"])

    def test_sim_clock_and_msn_rng_ok(self):
        self.tree.write("src/node/ok.cc",
                        "auto now = sim_.Now();\n"
                        "double d = rng_.UniformDouble();\n")
        self.assertEqual(self.run_lexical(), [])

    def test_wall_clock_allow_comment(self):
        self.tree.write("src/node/ok.cc",
                        "long t = time(nullptr);  // msn-analyze: allow(determinism/wall-clock)\n")
        self.assertEqual(self.run_lexical(), [])

    # --- api/nodiscard (lexical: headers only) --------------------------------

    def test_fallible_bool_in_header_flagged(self):
        self.tree.write("src/net/bad.h", "struct P { bool ParseFrom(int x); };\n")
        self.assertEqual(rules_of(self.run_lexical()), ["api/nodiscard"])

    def test_optional_return_in_header_flagged(self):
        self.tree.write("src/net/bad.h",
                        "#include <optional>\n"
                        "std::optional<int> TryDecode(int x);\n")
        self.assertEqual(rules_of(self.run_lexical()), ["api/nodiscard"])

    def test_result_suffix_type_flagged(self):
        self.tree.write("src/net/bad.h", "ParseResult ParseHeader(int x);\n")
        self.assertEqual(rules_of(self.run_lexical()), ["api/nodiscard"])

    def test_nodiscard_present_ok(self):
        self.tree.write("src/net/ok.h",
                        "struct P {\n"
                        "  [[nodiscard]] bool ParseFrom(int x);\n"
                        "  [[nodiscard]]\n"
                        "  bool TrySend();\n"
                        "};\n")
        self.assertEqual(self.run_lexical(), [])

    def test_non_fallible_bool_name_ok(self):
        self.tree.write("src/net/ok.h", "struct P { bool empty() const; };\n")
        self.assertEqual(self.run_lexical(), [])

    def test_cc_definition_without_attribute_ok(self):
        # The attribute may legally live on the header declaration only, so
        # the lexical backend never judges .cc files.
        self.tree.write("src/net/ok.cc", "bool Parser::ParseFrom(int x) { return x > 0; }\n")
        self.assertEqual(self.run_lexical(), [])

    def test_nodiscard_allow_comment(self):
        self.tree.write("src/net/ok.h",
                        "// msn-analyze: allow(api/nodiscard)\n"
                        "bool SendBeacon(int x);\n")
        self.assertEqual(self.run_lexical(), [])

    # --- lifetime/packet-span -------------------------------------------------

    def test_byte_pointer_member_flagged(self):
        self.tree.write("src/node/bad.h",
                        "#include <cstdint>\n"
                        "struct View { const uint8_t* payload_; };\n")
        self.assertEqual(rules_of(self.run_lexical()), ["lifetime/packet-span"])

    def test_byte_span_member_flagged(self):
        self.tree.write("src/node/bad.h",
                        "#include <cstdint>\n#include <span>\n"
                        "struct View { std::span<const uint8_t> body_; };\n")
        self.assertEqual(rules_of(self.run_lexical()), ["lifetime/packet-span"])

    def test_owning_vector_member_ok(self):
        self.tree.write("src/node/ok.h",
                        "#include <cstdint>\n#include <vector>\n"
                        "struct Copy { std::vector<uint8_t> payload_; };\n")
        self.assertEqual(self.run_lexical(), [])

    def test_packet_span_allow_comment(self):
        self.tree.write("src/node/ok.h",
                        "#include <cstdint>\n"
                        "struct View {\n"
                        "  // Transient parsing view; caller outlives it.\n"
                        "  const uint8_t* data_;  // msn-analyze: allow(lifetime/packet-span)\n"
                        "};\n")
        self.assertEqual(self.run_lexical(), [])

    # --- scope ---------------------------------------------------------------

    def test_files_outside_src_not_flagged(self):
        self.tree.write("tests/bad.cc", "long t = time(nullptr);\n")
        self.assertEqual(self.run_lexical(["tests"]), [])


@needs_ast
class AstBackendTest(unittest.TestCase):
    """Cases only a real AST can get right: aliases, typedefs, canonical
    types, cross-declaration [[nodiscard]]."""

    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def run_ast(self, rel_paths):
        return msn_analyze.run_ast(CINDEX, self.tree.root, None,
                                   list(rel_paths), [], verbose=False)

    def test_typedefed_rng_engine_flagged(self):
        # std::mt19937 resolves to mersenne_twister_engine<...> only through
        # the canonical type — the regex fallback needs the literal spelling,
        # an alias-of-an-alias defeats it.
        self.tree.write("src/node/bad.cc",
                        "#include <random>\n"
                        "using Gen = std::mt19937;\n"
                        "using MyGen = Gen;\n"
                        "MyGen gen;\n")
        self.assertIn("determinism/ambient-rng",
                      rules_of(self.run_ast(["src/node/bad.cc"])))

    def test_aliased_time_call_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "#include <ctime>\n"
                        "namespace chron = std;\n"
                        "long F() { return chron::time(nullptr); }\n")
        self.assertIn("determinism/wall-clock",
                      rules_of(self.run_ast(["src/node/bad.cc"])))

    def test_chrono_clock_now_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "#include <chrono>\n"
                        "auto F() { return std::chrono::steady_clock::now(); }\n")
        self.assertIn("determinism/wall-clock",
                      rules_of(self.run_ast(["src/node/bad.cc"])))

    def test_range_for_over_aliased_unordered_flagged(self):
        # The container type hides behind an alias; the lexical backend's
        # declaration scan cannot see through it.
        self.tree.write("src/node/bad.cc",
                        "#include <unordered_map>\n"
                        "using Table = std::unordered_map<int, int>;\n"
                        "Table table;\n"
                        "int Sum() { int s = 0; for (auto& kv : table) s += kv.second; return s; }\n")
        self.assertIn("determinism/unordered-iteration",
                      rules_of(self.run_ast(["src/node/bad.cc"])))

    def test_sorted_map_behind_alias_ok(self):
        self.tree.write("src/node/ok.cc",
                        "#include <map>\n"
                        "using Table = std::map<int, int>;\n"
                        "Table table;\n"
                        "int Sum() { int s = 0; for (auto& kv : table) s += kv.second; return s; }\n")
        findings = self.run_ast(["src/node/ok.cc"])
        self.assertNotIn("determinism/unordered-iteration", rules_of(findings))

    def test_nodiscard_on_declaration_covers_definition(self):
        # Attribute on the header declaration; definition without it is fine
        # — the AST backend judges the canonical declaration.
        self.tree.write("src/net/p.h",
                        "#ifndef P_H\n#define P_H\n"
                        "struct P { [[nodiscard]] bool ParseFrom(int x); };\n"
                        "#endif\n")
        self.tree.write("src/net/p.cc",
                        '#include "src/net/p.h"\n'
                        "bool P::ParseFrom(int x) { return x > 0; }\n")
        findings = self.run_ast(["src/net/p.cc"])
        self.assertNotIn("api/nodiscard", rules_of(findings))

    def test_missing_nodiscard_found_via_definition_tu(self):
        self.tree.write("src/net/p.h",
                        "#ifndef P_H\n#define P_H\n"
                        "struct P { bool ParseFrom(int x); };\n"
                        "#endif\n")
        self.tree.write("src/net/p.cc",
                        '#include "src/net/p.h"\n'
                        "bool P::ParseFrom(int x) { return x > 0; }\n")
        findings = self.run_ast(["src/net/p.cc"])
        self.assertIn("api/nodiscard", rules_of(findings))
        # And the finding lands on the header declaration, not the .cc.
        f = next(x for x in findings if x.rule == "api/nodiscard")
        self.assertTrue(str(f.path).endswith("p.h"))

    def test_uint8_member_behind_typedef_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "#include <cstdint>\n"
                        "using byte_t = uint8_t;\n"
                        "struct View { const byte_t* payload_; };\n")
        self.assertIn("lifetime/packet-span",
                      rules_of(self.run_ast(["src/node/bad.cc"])))

    def test_allow_comment_respected_in_ast_mode(self):
        self.tree.write("src/node/ok.cc",
                        "#include <cstdint>\n"
                        "struct View {\n"
                        "  const uint8_t* data_;  // msn-analyze: allow(lifetime/packet-span)\n"
                        "};\n")
        findings = self.run_ast(["src/node/ok.cc"])
        self.assertNotIn("lifetime/packet-span", rules_of(findings))


class CliTest(unittest.TestCase):
    TOOL = REPO_ROOT / "tools" / "msn_analyze.py"

    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def run_cli(self, *args):
        return subprocess.run([sys.executable, str(self.TOOL), *args],
                              capture_output=True, text=True)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in msn_analyze.RULES:
            self.assertIn(rule, proc.stdout)

    def test_exit_codes(self):
        self.tree.write("src/node/bad.cc", "long t = time(nullptr);\n")
        dirty = self.run_cli("--root", str(self.tree.root),
                             "--backend", "lexical", "src")
        self.assertEqual(dirty.returncode, 1)
        self.assertIn("[determinism/wall-clock]", dirty.stdout)

        self.tree.write("src/node/bad.cc", "int f() { return 1; }\n")
        clean = self.run_cli("--root", str(self.tree.root),
                             "--backend", "lexical", "src")
        self.assertEqual(clean.returncode, 0)

        missing = self.run_cli("--root", str(self.tree.root), "nope/")
        self.assertEqual(missing.returncode, 2)

    @unittest.skipUnless(CINDEX is None, "libclang present; degrade path inert")
    def test_require_ast_fails_loudly_without_libclang(self):
        self.tree.write("src/node/ok.cc", "int f() { return 1; }\n")
        proc = self.run_cli("--root", str(self.tree.root), "--require-ast", "src")
        self.assertEqual(proc.returncode, 3)
        self.assertIn("AST backend unavailable", proc.stderr)

    def test_auto_degrades_with_notice(self):
        self.tree.write("src/node/ok.cc", "int f() { return 1; }\n")
        proc = self.run_cli("--root", str(self.tree.root), "src")
        self.assertEqual(proc.returncode, 0)
        if CINDEX is None:
            self.assertIn("lexical fallback", proc.stderr)

    def test_repo_src_is_clean(self):
        # The real tree must stay clean under whichever backend this
        # environment provides — the same gate ctest and CI run.
        proc = self.run_cli("src")
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


if __name__ == "__main__":
    unittest.main()
