#include "src/check/fuzzer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/check/traffic.h"
#include "src/fault/fault_schedule.h"
#include "src/mip/movement_detector.h"
#include "src/mip/reg_load.h"
#include "src/mobility/mobility_driver.h"
#include "src/topo/scenario.h"

namespace msn {
namespace {

// Cell reach of the fuzzer's corridor layout; the binding helpers in
// topo/testbed.cc use the same figures for the distance->loss mapping.
constexpr double kWiredCellRangeM = 60.0;
constexpr double kRadioCellRangeM = 120.0;

// The host's motion model, seeded from its own labeled substream so mobility
// draws never perturb the generator's. The walk starts at the first station
// so the scripted wired departure lands in coverage.
std::unique_ptr<MobilityModel> BuildMobilityModel(const CampusMap& map, const MobilitySpec& mob,
                                                  const Rng& rng) {
  const Vec2 bounds{mob.map_w_m, mob.map_h_m};
  const Vec2 start =
      map.base_stations().empty() ? Vec2{} : map.base_stations().front().position;
  RandomWaypointModel::Params wp;
  wp.min_speed_mps = std::max(0.5, mob.speed_mps / 2.0);
  wp.max_speed_mps = mob.speed_mps;
  wp.max_pause = mob.max_pause;
  auto waypoint = std::make_unique<RandomWaypointModel>(bounds, start, wp, rng.Fork("waypoint"));
  if (mob.model == MobilitySpec::Model::kTrace) {
    // Exercise the trace format in the production path: record the waypoint
    // walk, round-trip it through the text serialization, replay that.
    TraceReplayModel recorded =
        TraceReplayModel::Record(*waypoint, Seconds(70), Milliseconds(500));
    auto parsed = TraceReplayModel::Parse(recorded.ToText());
    return std::make_unique<TraceReplayModel>(parsed.has_value() ? std::move(*parsed)
                                                                 : std::move(recorded));
  }
  if (mob.model == MobilitySpec::Model::kGroup) {
    return std::make_unique<GroupMobilityModel>(bounds, std::move(waypoint),
                                                GroupMobilityModel::Params{}, rng.Fork("group"));
  }
  return waypoint;
}

FaultProfile ProfileFromSpec(const FaultEventSpec& f) {
  FaultProfile profile;
  GilbertElliottParams burst;
  burst.p_enter_burst = f.p_enter_burst;
  burst.p_exit_burst = f.p_exit_burst;
  profile.burst_loss = burst;
  profile.duplicate_probability = f.duplicate_probability;
  profile.reorder_probability = f.reorder_probability;
  profile.corrupt_probability = f.corrupt_probability;
  return profile;
}

}  // namespace

std::string RunResult::FailureReport() const {
  std::string out = "=== scenario run ===\n";
  out += report.ToString();
  out += "--- scenario ---\n";
  out += spec.ToString();
  if (!movement_summary.empty()) {
    out += "--- movement ---\n";
    out += movement_summary;
  }
  if (!fault_trace.empty()) {
    out += "--- faults ---\n";
    out += fault_trace;
  }
  return out;
}

RunResult RunScenario(const ScenarioSpec& spec, const RunOptions& options) {
  TestbedConfig cfg;
  cfg.seed = spec.seed;
  cfg.transit_filter = spec.transit_filter;
  cfg.ha_on_router = spec.ha_on_router;
  cfg.external_ch = spec.external_ch;
  cfg.with_backup_ha = spec.backup_ha;
  cfg.mh_lifetime_sec = spec.lifetime_sec;
  if (spec.overload.enabled) {
    // The overload stanza owns the HA's pipeline shape (DESIGN.md §17);
    // without it the classic serial daemon is under test.
    cfg.ha_shards = spec.overload.shards;
    cfg.ha_batch_max = spec.overload.batch_max;
    cfg.ha_admission_limit = spec.overload.queue_limit;
  }
  // Calibrated mid-90s kernel delays triple the event count without changing
  // any protocol decision the oracles check; run in the fast timing regime.
  cfg.realistic_delays = false;

  Testbed tb(cfg);
  FaultInjector inject_home(tb.sim, *tb.net135, &tb.metrics);
  FaultInjector inject_wired(tb.sim, *tb.net8, &tb.metrics);
  FaultInjector inject_radio(tb.sim, *tb.radio134, &tb.metrics);
  auto injector_for = [&](FaultMedium medium) -> FaultInjector& {
    switch (medium) {
      case FaultMedium::kHome:
        return inject_home;
      case FaultMedium::kRadio:
        return inject_radio;
      case FaultMedium::kWired:
        break;
    }
    return inject_wired;
  };

  tb.StartMobileAtHome();

  // Fleet overload: a burst of synthetic registration clients on the visited
  // wired net, with home addresses in a 36.135.7.x block well clear of the
  // testbed's scripted hosts. Shed clients back off and re-try until
  // accepted, so by the settling window the whole fleet has converged.
  std::unique_ptr<Node> fleet_node;
  std::unique_ptr<RegistrationLoadGenerator> fleet;
  if (spec.overload.enabled) {
    fleet_node = std::make_unique<Node>(tb.sim, "fleet", &tb.metrics);
    EthernetDevice* fleet_dev = fleet_node->AddEthernet("eth0", tb.net8.get());
    fleet_dev->ForceUp();
    fleet_node->ConfigureInterface(fleet_dev, "36.8.7.250/16");
    fleet_node->AddDefaultRoute(Testbed::RouterOn8(), fleet_dev);

    RegistrationLoadGenerator::Config lc;
    lc.home_agent = tb.home_agent_address();
    lc.first_home = Ipv4Address(36, 135, 7, 1);
    lc.count = spec.overload.clients;
    lc.first_care_of = Ipv4Address(36, 8, 7, 1);
    lc.care_of_span = 250;
    lc.lifetime_sec = 600;  // Outlives the run: fleet bindings never expire.
    lc.start_delay = spec.overload.start;
    lc.interarrival = Duration::FromNanos(spec.overload.window.nanos() /
                                          std::max<uint32_t>(spec.overload.clients, 1));
    // Generous budget: an HA outage or a burst-loss profile can swallow a few
    // timeouts in a row, and backoff grows toward the 8 s cap long before ten
    // tries run out — so only a real protocol bug leaves a client given up.
    lc.max_retransmits = 10;
    fleet = std::make_unique<RegistrationLoadGenerator>(*fleet_node, lc);
    fleet->Start();
  }

  TrafficHarness traffic(tb, spec);
  MovementScript script(tb);
  for (const MoveEventSpec& m : spec.moves) {
    script.Add(m.at, m.kind, m.host_index);
  }
  FaultSchedule faults;
  for (const FaultEventSpec& f : spec.faults) {
    switch (f.kind) {
      case FaultEventSpec::Kind::kBlackout:
        faults.Blackout(f.at, injector_for(f.medium), f.length);
        break;
      case FaultEventSpec::Kind::kProfile:
        faults.Profile(f.at, injector_for(f.medium), ProfileFromSpec(f));
        break;
      case FaultEventSpec::Kind::kClearProfile:
        faults.ClearProfile(f.at, injector_for(f.medium));
        break;
      case FaultEventSpec::Kind::kHaOutage:
        faults.HaOutage(f.at, *tb.home_agent, f.length, f.restart);
        break;
      case FaultEventSpec::Kind::kHaCrash:
        // length 0 = the primary never rejoins; the backup carries the run.
        faults.HaCrash(f.at, *tb.home_agent, f.length);
        break;
    }
  }
  script.WithFaults(faults);

  // Physical mobility: a corridor of alternating wired/radio cells, a motion
  // model, and the driver closing the position -> quality -> handoff loop via
  // a signal-aware movement detector. Started shortly after the scripted
  // departure at 2s, so the home attachment's Ethernet (the same device as
  // the visited wired one) is not torn down while still serving net 36.135.
  std::unique_ptr<MovementDetector> detector;
  std::unique_ptr<MobilityDriver> mobility;
  if (spec.mobility.enabled) {
    const MobilitySpec& mob = spec.mobility;
    const uint32_t host_index = spec.moves.empty() ? 50 : spec.moves.front().host_index;
    CampusMap map = CampusMap::Corridor(mob.map_w_m, mob.map_h_m, static_cast<int>(mob.cells),
                                        kWiredCellRangeM, kRadioCellRangeM);
    std::unique_ptr<MobilityModel> model =
        BuildMobilityModel(map, mob, Rng(spec.seed).Fork("mobility-model"));

    MovementDetector::Config det_cfg;
    det_cfg.use_signal = true;
    det_cfg.min_residency = Seconds(3);
    det_cfg.metrics = &tb.metrics;
    detector = std::make_unique<MovementDetector>(*tb.mobile, det_cfg);
    detector->AddCandidate({tb.WiredAttachment(host_index), /*preference=*/2});
    detector->AddCandidate({tb.WirelessAttachment(host_index), /*preference=*/1});

    MobilityDriver::Config drv_cfg;
    drv_cfg.detector = detector.get();
    drv_cfg.metrics = &tb.metrics;
    mobility = std::make_unique<MobilityDriver>(*tb.mobile, std::move(map), std::move(model),
                                                drv_cfg);
    mobility->AddBinding(tb.WiredMobilityBinding(&inject_wired, host_index));
    mobility->AddBinding(tb.RadioMobilityBinding(&inject_radio, host_index));
    tb.sim.Schedule(Milliseconds(2500), [&mobility] { mobility->Start(); });
    tb.sim.Schedule(Milliseconds(3500), [&detector] { detector->Start(); });
  }

  OracleSuite::Media media{&inject_home, &inject_wired, &inject_radio};
  OracleSuite oracles(tb, spec, traffic, media);
  if (mobility != nullptr) {
    oracles.AttachMobility(mobility.get());
  }
  if (fleet != nullptr) {
    oracles.AttachFleet(fleet.get());
  }
  PeriodicTask tick(tb.sim, OracleSuite::kTickInterval, [&oracles] { oracles.OnTick(); });
  tick.Start();

  traffic.Start();
  if (options.instrument) {
    options.instrument(tb);
  }
  oracles.Begin();
  script.Run(spec.duration);
  oracles.Finish();
  if (options.on_complete) {
    options.on_complete(tb);
  }

  RunResult result;
  result.spec = spec;
  result.report = oracles.report();
  for (const MovementScript::Outcome& o : script.outcomes()) {
    result.movement_summary += o.Description();
    result.movement_summary += '\n';
  }
  result.fault_trace = faults.Trace();
  if (spec.traffic.probes) {
    result.probes_sent = traffic.probes().sent();
    result.probes_lost = traffic.probes().TotalLost();
  }
  return result;
}

RunResult FuzzOne(uint64_t seed, const RunOptions& options) {
  return RunScenario(GenerateScenario(seed), options);
}

}  // namespace msn
