// Unit tests for the mobile host: registration state machine, retransmission,
// renewal, policy routing decisions, and the two-roles rule.
#include <gtest/gtest.h>

#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class MobileHostFixture : public ::testing::Test {
 protected:
  void Build(bool realistic = false, uint64_t seed = 6) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.realistic_delays = realistic;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(MobileHostFixture, StartsAtHomeWithoutMobilityMachinery) {
  Build();
  EXPECT_TRUE(tb_->mobile->at_home());
  EXPECT_FALSE(tb_->mobile->registered());
  // Home address lives on the physical device, not the VIF.
  EXPECT_EQ(tb_->mh->stack().GetInterfaceAddress(tb_->mh_eth), Testbed::HomeAddress());
  EXPECT_FALSE(tb_->mh->stack().GetInterfaceAddress(tb_->mobile->vif()).has_value());
}

TEST_F(MobileHostFixture, ForeignAttachMovesHomeAddressToVif) {
  Build();
  tb_->StartMobileOnWired(50);
  EXPECT_TRUE(tb_->mobile->registered());
  EXPECT_EQ(tb_->mh->stack().GetInterfaceAddress(tb_->mobile->vif()), Testbed::HomeAddress());
  EXPECT_EQ(tb_->mh->stack().GetInterfaceAddress(tb_->mh_eth), Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(tb_->mobile->care_of(), Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(tb_->mobile->counters().registrations_accepted, 1u);
}

TEST_F(MobileHostFixture, RegistrationRetransmitsWhenHomeAgentSilent) {
  Build();
  // Cut the home network off: detach the router's home device so requests die.
  static_cast<LinkDevice*>(tb_->router->FindDevice("eth8"))->AttachTo(nullptr);

  tb_->MoveMhEthernetTo(tb_->net8.get());
  bool completed = false;
  bool result = true;
  tb_->mobile->AttachForeign(tb_->WiredAttachment(50), [&](bool ok) {
    completed = true;
    result = ok;
  });
  tb_->RunFor(Seconds(30));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(result);
  EXPECT_EQ(tb_->mobile->state(), MobileHost::State::kDetached);
  EXPECT_EQ(tb_->mobile->counters().registrations_timed_out, 1u);
  // Initial send + max_retransmits.
  EXPECT_EQ(tb_->mobile->counters().registrations_sent,
            static_cast<uint64_t>(1 + tb_->mobile->config().max_retransmits));
  EXPECT_EQ(tb_->mobile->last_timeline().retransmissions,
            tb_->mobile->config().max_retransmits);
}

TEST_F(MobileHostFixture, SupersededAttachReportsFailure) {
  Build();
  tb_->MoveMhEthernetTo(tb_->net8.get());
  bool first_result = true;
  tb_->mobile->AttachForeign(tb_->WiredAttachment(50), [&](bool ok) { first_result = ok; });
  // Immediately supersede before the first completes.
  bool second_result = false;
  tb_->mobile->AttachForeign(tb_->WiredAttachment(51), [&](bool ok) { second_result = ok; });
  tb_->RunFor(Seconds(5));
  EXPECT_FALSE(first_result);
  EXPECT_TRUE(second_result);
  EXPECT_EQ(tb_->mobile->care_of(), Ipv4Address(36, 8, 0, 51));
}

TEST_F(MobileHostFixture, AutoRenewalKeepsBindingAlive) {
  TestbedConfig cfg;
  cfg.seed = 6;
  cfg.realistic_delays = false;
  cfg.mh_lifetime_sec = 10;
  tb_ = std::make_unique<Testbed>(cfg);
  tb_->StartMobileAtHome();
  tb_->StartMobileOnWired(50);
  ASSERT_TRUE(tb_->mobile->registered());

  // Run well past several lifetimes: renewals keep the binding.
  tb_->RunFor(Seconds(60));
  EXPECT_TRUE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_TRUE(tb_->mobile->registered());
  EXPECT_GE(tb_->mobile->counters().renewals, 5u);
  EXPECT_EQ(tb_->home_agent->counters().bindings_expired, 0u);
}

TEST_F(MobileHostFixture, BindingExpiresWithoutRenewal) {
  TestbedConfig cfg;
  cfg.seed = 6;
  cfg.realistic_delays = false;
  cfg.mh_lifetime_sec = 5;
  tb_ = std::make_unique<Testbed>(cfg);
  // Disable renewal through a fresh MobileHost config: rebuild the mobile
  // host with auto_renew off. (Destroy the old instance first so its
  // teardown does not unhook the new one's stack handlers.)
  MobileHost::Config mc = tb_->mobile->config();
  mc.auto_renew = false;
  tb_->mobile.reset();
  tb_->mobile = std::make_unique<MobileHost>(*tb_->mh, mc);
  tb_->StartMobileAtHome();
  // StartMobileOnWired itself runs 8 simulated seconds — past the 5 s
  // lifetime — so without renewal the binding has already expired when the
  // helper returns.
  tb_->StartMobileOnWired(50);
  EXPECT_GE(tb_->mobile->counters().registrations_accepted, 1u);
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_EQ(tb_->home_agent->counters().bindings_expired, 1u);
}

// --- Route policy decisions (the modified ip_rt_route()) ------------------------------

class PolicyRoutingFixture : public MobileHostFixture {
 protected:
  void SetUp() override {
    Build();
    tb_->StartMobileOnWired(50);
  }

  std::optional<RouteDecision> Query(Ipv4Address dst, Ipv4Address src_hint = Ipv4Address::Any(),
                                     bool forwarding = false) {
    return tb_->mh->stack().RouteLookup(RouteQuery{dst, src_hint, forwarding, true});
  }
};

TEST_F(PolicyRoutingFixture, DefaultPolicyTunnelsThroughVif) {
  auto d = Query(tb_->ch_address());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mobile->vif());
  EXPECT_EQ(d->src, Testbed::HomeAddress());
}

TEST_F(PolicyRoutingFixture, HomeSourceHintStillSubjectToMobileIp) {
  // Paper: "If the application has already set the source address to the
  // home IP address, this too means the packet is subject to mobile IP."
  auto d = Query(tb_->ch_address(), Testbed::HomeAddress());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mobile->vif());
}

TEST_F(PolicyRoutingFixture, LocalRoleSourceBypassesMobility) {
  auto d = Query(tb_->ch_address(), Ipv4Address(36, 8, 0, 50));
  ASSERT_TRUE(d.has_value());
  // Normal routing: out the physical device via the default route.
  EXPECT_EQ(d->device, tb_->mh_eth);
  EXPECT_EQ(d->src, Ipv4Address(36, 8, 0, 50));
}

TEST_F(PolicyRoutingFixture, TrianglePolicyGoesDirect) {
  tb_->mobile->policy_table().Set(Subnet(tb_->ch_address(), SubnetMask(32)),
                                  MobilePolicy::kTriangle);
  auto d = Query(tb_->ch_address());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mh_eth);
  EXPECT_EQ(d->src, Testbed::HomeAddress());
  // CH is on the visited subnet: on-link, no gateway.
  EXPECT_TRUE(d->next_hop.IsAny());
}

TEST_F(PolicyRoutingFixture, TriangleToRemoteDestinationUsesGateway) {
  const Ipv4Address remote(171, 64, 0, 20);
  tb_->mobile->policy_table().Set(Subnet(remote, SubnetMask(32)), MobilePolicy::kTriangle);
  auto d = Query(remote);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mh_eth);
  EXPECT_EQ(d->next_hop, Testbed::RouterOn8());
}

TEST_F(PolicyRoutingFixture, DirectPolicyUsesCareOfSource) {
  tb_->mobile->policy_table().Set(Subnet(tb_->ch_address(), SubnetMask(32)),
                                  MobilePolicy::kDirect);
  auto d = Query(tb_->ch_address());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mh_eth);
  EXPECT_EQ(d->src, Ipv4Address(36, 8, 0, 50));
}

TEST_F(PolicyRoutingFixture, ForwardingQueriesBypassPolicy) {
  auto d = Query(tb_->ch_address(), Ipv4Address::Any(), /*forwarding=*/true);
  // The MH is not a router; the normal table answers (default route).
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mh_eth);
}

TEST_F(PolicyRoutingFixture, AtHomeNoOverride) {
  tb_->MoveMhEthernetTo(tb_->net135.get());
  bool done = false;
  tb_->mobile->AttachHome([&](bool ok) { done = ok; });
  tb_->RunFor(Seconds(3));
  ASSERT_TRUE(done);
  auto d = Query(tb_->ch_address());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, tb_->mh_eth);
  EXPECT_EQ(d->src, Testbed::HomeAddress());
  EXPECT_EQ(d->next_hop, Testbed::RouterOn135());
}

TEST_F(PolicyRoutingFixture, EncapDirectWrapsToCorrespondent) {
  tb_->mobile->policy_table().Set(Subnet(tb_->ch_address(), SubnetMask(32)),
                                  MobilePolicy::kEncapDirect);
  // Send a UDP datagram and verify the CH received an IPIP packet addressed
  // straight to it (outer dst = CH, outer src = care-of).
  int ipip_at_ch = 0;
  Ipv4Address outer_src, inner_src;
  tb_->ch->stack().RegisterProtocolHandler(
      IpProto::kIpIp,
      [&](const Ipv4Header& h, const Packet& payload, NetDevice*) {
        ++ipip_at_ch;
        outer_src = h.src;
        auto inner = Ipv4Datagram::Parse(payload.span());
        ASSERT_TRUE(inner.has_value());
        inner_src = inner->header.src;
      });
  UdpSocket socket(tb_->mh->stack());
  socket.SendTo(tb_->ch_address(), 9999, {1, 2, 3});
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(ipip_at_ch, 1);
  EXPECT_EQ(outer_src, Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(inner_src, Testbed::HomeAddress());
  EXPECT_EQ(tb_->mobile->counters().packets_encap_direct_out, 1u);
}

// --- Timeline sanity under exact timing -------------------------------------------------

TEST_F(MobileHostFixture, TimelineStepsMatchCalibrationMeans) {
  // With zero kernel delays the timeline decomposes into exactly the
  // calibrated step costs plus wire time.
  Build(/*realistic=*/false);
  tb_->StartMobileOnWired(50);
  bool ok = false;
  tb_->mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, 51), [&](bool r) { ok = r; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(ok);
  const auto& tl = tb_->mobile->last_timeline();
  const auto& cal = tb_->mobile->config().calibration;
  // Each step cost is a clamped normal around its mean; verify loose bands.
  const double pre_ms = tl.PreRegistration().ToMillisF();
  EXPECT_GT(pre_ms, 1.0);
  EXPECT_LT(pre_ms, 3.0);
  const double reqrep_ms = tl.RequestReply().ToMillisF();
  // Only HA processing (1.48 ms) + wire remains without kernel delays.
  EXPECT_GT(reqrep_ms, 1.0);
  EXPECT_LT(reqrep_ms, 2.5);
  const double post_ms = tl.PostRegistration().ToMillisF();
  EXPECT_GT(post_ms, 0.4);
  EXPECT_LT(post_ms, 1.6);
  (void)cal;
}

}  // namespace
}  // namespace msn
