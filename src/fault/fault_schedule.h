// Declarative, reproducible chaos scripts.
//
// A FaultSchedule is a list of timed fault events — blackouts, loss-profile
// changes, home-agent outages, or arbitrary callbacks — built up fluently and
// then armed against a simulator. Offsets are relative to the arm time, so
// the same schedule object can drive scenario runs that start at different
// sim times. Each event records a human-readable line when it fires; the
// resulting Trace() is stable for a given seed, which is what the chaos tests
// assert to prove determinism.
#ifndef MSN_SRC_FAULT_FAULT_SCHEDULE_H_
#define MSN_SRC_FAULT_FAULT_SCHEDULE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/sim/simulator.h"

namespace msn {

class HomeAgent;
enum class HaOutageKind;

class FaultSchedule {
 public:
  FaultSchedule() = default;

  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;

  // Arbitrary event at `at` after arm time. The description lands in the
  // trace when the event fires.
  FaultSchedule& At(Duration at, std::string description, std::function<void()> fn);

  // Link blackout on `injector`'s medium for `length`.
  FaultSchedule& Blackout(Duration at, FaultInjector& injector, Duration length);

  // Swap in a fault profile (burst loss, duplication, ...) at `at`.
  FaultSchedule& Profile(Duration at, FaultInjector& injector, const FaultProfile& profile);
  FaultSchedule& ClearProfile(Duration at, FaultInjector& injector);

  // Home-agent outage window: UDP 434 requests are silently dropped from `at`
  // until `at + length`. With `restart_daemon`, the outage also wipes the
  // binding table and identification history, modeling a daemon restart; the
  // recovering HA then forces each mobile host to resynchronize.
  FaultSchedule& HaOutage(Duration at, HomeAgent& ha, Duration length,
                          bool restart_daemon = false);

  // Kind-aware variant (fail-stop crash, daemon restart, or plain service
  // outage — see HaOutageKind in src/mip/home_agent.h).
  FaultSchedule& HaOutage(Duration at, HomeAgent& ha, Duration length, HaOutageKind kind);

  // Fail-stop crash of the whole agent: nothing is served, arriving packets
  // are dropped with reason accounting, and RAM dies with the host. With a
  // positive `rejoin_after` the agent comes back that much later (wiped, and
  // demoting itself to standby when replicated); the default never rejoins.
  FaultSchedule& HaCrash(Duration at, HomeAgent& ha, Duration rejoin_after = Duration());

  // Schedules every event relative to sim.Now(). May be called once per run.
  void Arm(Simulator& sim);

  struct AppliedEvent {
    Time at;
    std::string description;
  };
  const std::vector<AppliedEvent>& log() const { return log_; }
  // One line per fired event ("3.000s blackout radio134 for 1.5s\n"...);
  // identical across same-seed runs.
  std::string Trace() const;

  size_t pending_events() const { return events_.size(); }

 private:
  struct Event {
    Duration at;
    std::string description;
    std::function<void()> fn;
  };

  std::vector<Event> events_;
  std::vector<AppliedEvent> log_;
};

}  // namespace msn

#endif  // MSN_SRC_FAULT_FAULT_SCHEDULE_H_
