#include "src/sim/simulator.h"

#include <utility>

#include "src/util/logging.h"

namespace msn {

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  // Stamp log lines with this simulator's virtual clock. Last-constructed
  // wins, which matches how tools run scenarios (one live sim at a time).
  SetLogClock(
      [](void* ctx) { return static_cast<Simulator*>(ctx)->Now().ToSecondsF(); },
      this);
}

Simulator::~Simulator() {
  if (GetLogClockContext() == this) {
    SetLogClock(nullptr, nullptr);
  }
}

EventId Simulator::Schedule(Duration delay, EventQueue::Callback cb) {
  if (delay < Duration()) {
    delay = Duration();
  }
  return queue_.Schedule(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(Time when, EventQueue::Callback cb) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Schedule(when, std::move(cb));
}

uint64_t Simulator::RunInternal(Time deadline) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.NextTime() <= deadline) {
    EventQueue::Entry entry = queue_.PopNext();
    now_ = entry.when;
    entry.cb();
    ++executed;
    ++events_executed_;
  }
  return executed;
}

uint64_t Simulator::Run() { return RunInternal(Time::Max()); }

uint64_t Simulator::RunUntil(Time deadline) {
  const uint64_t executed = RunInternal(deadline);
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

PeriodicTask::PeriodicTask(Simulator& sim, Duration interval, std::function<void()> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)), alive_(std::make_shared<bool>(true)) {}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  Stop();
}

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Fire();
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_.Cancel(pending_);
  pending_ = EventId();
}

void PeriodicTask::Fire() {
  std::weak_ptr<bool> alive = alive_;
  pending_ = sim_.Schedule(interval_, [this, alive] {
    auto guard = alive.lock();
    if (!guard || !*guard || !running_) {
      return;
    }
    fn_();
    // fn_ may have stopped or destroyed the task.
    guard = alive.lock();
    if (guard && *guard && running_) {
      Fire();
    }
  });
}

}  // namespace msn
