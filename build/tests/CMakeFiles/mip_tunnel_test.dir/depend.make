# Empty dependencies file for mip_tunnel_test.
# This may be replaced when dependencies are built.
