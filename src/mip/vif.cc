#include "src/mip/vif.h"

namespace msn {

VirtualInterface::VirtualInterface(Simulator& sim, std::string name)
    : NetDevice(sim, std::move(name), MacAddress::Zero()) {
  set_bring_up_time(Duration());
  set_mtu(65535);
  ForceUp();
}

bool VirtualInterface::Transmit(const EthernetFrame& frame) {
  if (frame.ethertype != EtherType::kIpv4 || !encap_handler_) {
    return false;
  }
  ByteReader r(frame.payload.data(), frame.payload.size());
  auto header = Ipv4Header::Parse(r);
  if (!header || header->total_length < Ipv4Header::kSize ||
      header->total_length > frame.payload.size()) {
    return false;
  }
  ++packets_encapsulated_;
  encap_handler_(*header, frame.payload.Slice(0, header->total_length));
  return true;
}

void VirtualInterface::SendToMedium(const EthernetFrame& frame) {
  (void)frame;  // Unreachable: Transmit never enqueues.
}

}  // namespace msn
