#include "src/mip/policy_table.h"

#include <algorithm>
#include <cstdio>

namespace msn {

const char* MobilePolicyName(MobilePolicy policy) {
  switch (policy) {
    case MobilePolicy::kTunnelHome:
      return "tunnel-home";
    case MobilePolicy::kTriangle:
      return "triangle";
    case MobilePolicy::kEncapDirect:
      return "encap-direct";
    case MobilePolicy::kDirect:
      return "direct";
  }
  return "?";
}

void MobilePolicyTable::Set(const Subnet& dest, MobilePolicy policy, bool verified) {
  for (Entry& e : entries_) {
    if (e.dest == dest) {
      e.policy = policy;
      e.verified = verified;
      NotifyChanged();
      return;
    }
  }
  entries_.push_back(Entry{dest, policy, verified, 0});
  NotifyChanged();
}

bool MobilePolicyTable::Remove(const Subnet& dest) {
  const size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&dest](const Entry& e) { return e.dest == dest; }),
                 entries_.end());
  const bool removed = entries_.size() != before;
  if (removed) {
    NotifyChanged();
  }
  return removed;
}

void MobilePolicyTable::Clear() {
  const bool changed = !entries_.empty();
  entries_.clear();
  if (changed) {
    NotifyChanged();
  }
}

const MobilePolicyTable::Entry* MobilePolicyTable::Match(Ipv4Address dst) const {
  const Entry* best = nullptr;
  for (const Entry& e : entries_) {
    if (e.dest.Contains(dst) &&
        (best == nullptr || e.dest.prefix_len() > best->dest.prefix_len())) {
      best = &e;
    }
  }
  return best;
}

MobilePolicyTable::Entry* MobilePolicyTable::MatchEntry(Ipv4Address dst) {
  return const_cast<Entry*>(Match(dst));
}

MobilePolicy MobilePolicyTable::Lookup(Ipv4Address dst) {
  const Entry* match = Match(dst);
  if (match == nullptr) {
    return default_policy_;
  }
  ++const_cast<Entry*>(match)->hits;
  return match->policy;
}

MobilePolicy MobilePolicyTable::LookupConst(Ipv4Address dst) const {
  const Entry* match = Match(dst);
  return match == nullptr ? default_policy_ : match->policy;
}

void MobilePolicyTable::RecordFallback(Ipv4Address dst) {
  Set(Subnet(dst, SubnetMask(32)), MobilePolicy::kTunnelHome, /*verified=*/true);
}

std::string MobilePolicyTable::ToString() const {
  std::string out = "default: ";
  out += MobilePolicyName(default_policy_);
  out += '\n';
  char line[128];
  for (const Entry& e : entries_) {
    std::snprintf(line, sizeof(line), "%-18s %-12s %s hits=%llu\n", e.dest.ToString().c_str(),
                  MobilePolicyName(e.policy), e.verified ? "verified" : "unverified",
                  static_cast<unsigned long long>(e.hits));
    out += line;
  }
  return out;
}

}  // namespace msn
