// The HA-to-HA replication link (DESIGN.md §14).
//
// One HaReplicationLink runs next to each HomeAgent of a replicated pair and
// owns that agent's half of the sync channel:
//
//  * On the primary it taps the agent's replication sink, streams each
//    binding mutation to the peer with an epoch-scoped sequence number,
//    heartbeats every heartbeat_interval, and pushes a full snapshot every
//    snapshot_interval (and immediately on request) as anti-entropy.
//  * On the standby it applies in-order mutations, acks cumulatively,
//    requests a snapshot when it detects a sequence gap, and watches the
//    primary's heartbeats — takeover_timeout of silence promotes the agent
//    into epoch+1.
//
// Epoch arbitration keeps exactly one primary: a primary that hears a
// primary-role message with a higher epoch steps down into it; in the
// equal-epoch dual-primary case (possible during a partition heal) the
// numerically lower agent address wins. A rejoining agent (service restored
// after an outage or crash) re-arms its watchdog and, as a standby, asks for
// a snapshot so it resyncs from the replica instead of forcing every mobile
// host through identification resync.
//
// Give the two links staggered takeover_timeouts so the designated backup
// always moves first when both ends are standby-capable.
#ifndef MSN_SRC_REPL_HA_REPLICATION_H_
#define MSN_SRC_REPL_HA_REPLICATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/mip/home_agent.h"
#include "src/node/udp.h"
#include "src/repl/sync_messages.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

class HaReplicationLink {
 public:
  struct Config {
    // This agent's address and the peer agent's address (sync datagrams flow
    // self:port <-> peer:port).
    Ipv4Address self;
    Ipv4Address peer;
    uint16_t port = kHaSyncPort;
    Duration heartbeat_interval = Milliseconds(500);
    // Standby silence threshold before promoting itself. Stagger across the
    // pair (backup shorter) so the designated backup takes over first.
    Duration takeover_timeout = Milliseconds(2000);
    // Periodic full-snapshot anti-entropy cadence while primary.
    Duration snapshot_interval = Seconds(5);
    // When given, link accounting lands here under "<metric_prefix>*";
    // otherwise in a private registry.
    MetricsRegistry* metrics = nullptr;
    std::string metric_prefix = "repl.";
  };

  // Snapshot of the link's accounting (registry-backed counters named
  // "<metric_prefix><field>").
  struct Counters {
    uint64_t heartbeats_sent = 0;
    uint64_t mutations_sent = 0;
    uint64_t mutations_applied = 0;
    // Mutations re-received below the expected sequence number (re-acked).
    uint64_t duplicate_mutations = 0;
    // Mutations above the expected sequence number: a gap, healed by
    // requesting a snapshot rather than applying out of order.
    uint64_t out_of_order = 0;
    uint64_t acks_received = 0;
    uint64_t snapshot_requests = 0;
    uint64_t snapshots_sent = 0;
    uint64_t snapshots_applied = 0;
    // Self-promotions after heartbeat silence.
    uint64_t takeovers = 0;
    // Demotions after hearing a superior primary.
    uint64_t stepdowns = 0;
  };

  HaReplicationLink(HomeAgent& ha, Config config);
  ~HaReplicationLink();

  HaReplicationLink(const HaReplicationLink&) = delete;
  HaReplicationLink& operator=(const HaReplicationLink&) = delete;

  Counters counters() const;
  const Config& config() const { return config_; }
  // Primary-side replication lag: mutations sent but not yet cumulatively
  // acked. Exported as the "<agent metric_prefix>sync_lag" gauge.
  uint64_t sync_lag() const { return last_sent_seq_ - last_acked_seq_; }

 private:
  struct LiveCounters {
    CounterRef heartbeats_sent;
    CounterRef mutations_sent;
    CounterRef mutations_applied;
    CounterRef duplicate_mutations;
    CounterRef out_of_order;
    CounterRef acks_received;
    CounterRef snapshot_requests;
    CounterRef snapshots_sent;
    CounterRef snapshots_applied;
    CounterRef takeovers;
    CounterRef stepdowns;
  };

  void OnLocalMutation(const BindingMutation& mutation);
  void OnTick();
  void OnSyncDatagram(const std::vector<uint8_t>& data);
  void OnHeartbeat(const SyncHeartbeat& hb);
  void OnMutation(const SyncMutation& m);
  void OnSnapshot(const SyncSnapshot& snap);
  // Demote our agent into `epoch` (counting a stepdown if it was primary)
  // and fall back to snapshot resync.
  void StepDownInto(uint64_t epoch);
  void Takeover();
  void SendHeartbeat();
  void SendSnapshot();
  void SendAck();
  // Gap/rejoin healing; at most one request per heartbeat interval.
  void RequestSnapshot();
  void UpdateLagGauge();

  HomeAgent& ha_;
  Config config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
  Gauge* sync_lag_gauge_ = nullptr;  // "<agent metric_prefix>sync_lag"
  std::unique_ptr<UdpSocket> socket_;
  std::unique_ptr<PeriodicTask> tick_;
  // Primary-side stream state, reset on promotion (sequences are per-epoch).
  uint64_t last_sent_seq_ = 0;
  uint64_t last_acked_seq_ = 0;
  // Standby-side: next mutation sequence number to apply.
  uint64_t expected_seq_ = 1;
  Time last_primary_heard_ = Time::Zero();
  Time last_snapshot_request_ = Time::Zero();
  bool snapshot_requested_ = false;  // Distinguishes "never" from t=0.
  Time next_snapshot_at_ = Time::Zero();
  // Service availability seen on the previous tick; a false->true edge is a
  // rejoin (reset watchdog, resync from replica).
  bool was_available_ = true;
};

}  // namespace msn

#endif  // MSN_SRC_REPL_HA_REPLICATION_H_
