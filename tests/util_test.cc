// Unit tests for src/util: byte buffers, RNG, statistics, contract macros.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/assert.h"
#include "src/util/byte_buffer.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace msn {
namespace {

// --- MSN_CHECK / MSN_ASSERT -------------------------------------------------

TEST(AssertTest, PassingChecksAreSilent) {
  MSN_CHECK(2 + 2 == 4);
  MSN_CHECK(true) << "never rendered";
  MSN_ASSERT(1 < 2);
}

TEST(AssertDeathTest, FailingCheckAbortsWithContext) {
  const int encap_depth = 9;
  EXPECT_DEATH(MSN_CHECK(encap_depth <= 4) << "depth=" << encap_depth,
               "MSN_CHECK failed: encap_depth <= 4 .*depth=9");
}

#if MSN_ASSERTS_ENABLED
TEST(AssertDeathTest, AssertsAreArmedInTestBuilds) {
  // The build defines MSN_ASSERTS_ENABLED=1 (CMake option MSN_ASSERTS,
  // default ON), so hot-path asserts fire under test like checks do.
  EXPECT_DEATH(MSN_ASSERT(false), "MSN_ASSERT failed: false");
}
#else
TEST(AssertTest, DisabledAssertDoesNotEvaluate) {
  int evaluations = 0;
  MSN_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- ByteWriter / ByteReader --------------------------------------------------

TEST(ByteBufferTest, RoundTripAllWidths) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteString("hi");
  ASSERT_EQ(w.size(), 1u + 2 + 4 + 8 + 2);

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefull);
  auto rest = r.ReadRemaining();
  EXPECT_EQ(std::string(rest.begin(), rest.end()), "hi");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteBufferTest, BigEndianLayout) {
  ByteWriter w;
  w.WriteU16(0x0102);
  w.WriteU32(0x03040506);
  const auto& b = w.data();
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[5], 0x06);
}

TEST(ByteBufferTest, ReaderBoundsChecking) {
  std::vector<uint8_t> three = {1, 2, 3};
  ByteReader r(three);
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
  // All subsequent reads stay failed and return zero.
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteBufferTest, ReadBytesExactAndOverrun) {
  std::vector<uint8_t> data = {9, 8, 7, 6};
  ByteReader r(data);
  auto two = r.ReadBytes(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], 9);
  auto over = r.ReadBytes(5);
  EXPECT_TRUE(over.empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteBufferTest, PatchU16) {
  ByteWriter w;
  w.WriteU16(0);
  w.WriteU8(0x55);
  w.PatchU16(0, 0xbeef);
  EXPECT_EQ(w.data()[0], 0xbe);
  EXPECT_EQ(w.data()[1], 0xef);
  EXPECT_EQ(w.data()[2], 0x55);
  // Out-of-range patch is ignored.
  w.PatchU16(2, 0xffff);
  EXPECT_EQ(w.data()[2], 0x55);
}

TEST(ByteBufferTest, SkipAndPosition) {
  std::vector<uint8_t> data(10, 0);
  ByteReader r(data);
  r.Skip(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  r.Skip(7);
  EXPECT_FALSE(r.ok());
}

TEST(ByteBufferTest, HexDump) {
  std::vector<uint8_t> data = {0xde, 0xad, 0x01};
  EXPECT_EQ(HexDump(data), "de ad 01");
  EXPECT_EQ(HexDump(nullptr, 0), "");
}

// --- Rng -------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10}, uint64_t{20});
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.UniformInt(uint64_t{5}, uint64_t{5}), 5u);
}

TEST(RngTest, UniformIntSigned) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-10}, int64_t{10});
    EXPECT_GE(v, -10);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, NormalZeroStddevReturnsMean) {
  Rng rng(11);
  EXPECT_EQ(rng.Normal(3.5, 0.0), 3.5);
  EXPECT_EQ(rng.Normal(3.5, -1.0), 3.5);
}

TEST(RngTest, NormalAtLeastClamps) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NormalAtLeast(1.0, 10.0, 0.5), 0.5);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
  EXPECT_EQ(rng.Exponential(0.0), 0.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.Fork();
  // Child and parent produce different streams.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(RngTest, LabeledForkIsDeterministic) {
  Rng a(16);
  Rng b(16);
  Rng fork_a = a.Fork("traffic");
  Rng fork_b = b.Fork("traffic");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fork_a.NextU64(), fork_b.NextU64()) << "draw " << i;
  }
}

TEST(RngTest, LabeledForksAreDecoupled) {
  Rng parent(17);
  Rng moves = parent.Fork("moves");
  Rng faults = parent.Fork("faults");
  EXPECT_NE(moves.NextU64(), faults.NextU64());
  // Distinct from the parent's own stream too.
  EXPECT_NE(parent.Fork("moves").NextU64(), Rng(17).NextU64());
}

TEST(RngTest, LabeledForkDoesNotAdvanceParent) {
  Rng witness(18);
  Rng parent(18);
  (void)parent.Fork("topo");
  (void)parent.Fork("faults");
  // Forking by label is const: the parent's stream is untouched, so adding
  // a substream to a generator cannot reshuffle its other draws.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parent.NextU64(), witness.NextU64()) << "draw " << i;
  }
}

// --- RunningStats ----------------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.Add(42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(RunningStatsTest, SummaryFormat) {
  RunningStats s;
  s.Add(7.0);
  s.Add(8.0);
  EXPECT_EQ(s.Summary(1), "7.5 (0.7)");
}

TEST(RunningStatsTest, Clear) {
  RunningStats s;
  s.Add(1.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

// --- IntHistogram ------------------------------------------------------------------

TEST(IntHistogramTest, CountsAndRange) {
  IntHistogram h;
  h.Add(0);
  h.Add(0);
  h.Add(2);
  h.Add(5);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.CountFor(0), 2);
  EXPECT_EQ(h.CountFor(1), 0);
  EXPECT_EQ(h.CountFor(2), 1);
  EXPECT_EQ(h.min_value(), 0);
  EXPECT_EQ(h.max_value(), 5);
}

TEST(IntHistogramTest, RenderIncludesEmptyBuckets) {
  IntHistogram h;
  h.Add(1);
  h.Add(3);
  const std::string rendered = h.Render("lost");
  // Rows for 1, 2, 3 (2 is an empty bucket between min and max).
  EXPECT_NE(rendered.find("lost   1"), std::string::npos);
  EXPECT_NE(rendered.find("lost   2"), std::string::npos);
  EXPECT_NE(rendered.find("lost   3"), std::string::npos);
}

TEST(IntHistogramTest, EmptyRender) {
  IntHistogram h;
  EXPECT_EQ(h.Render(), "  (no samples)\n");
}

// --- Percentile ----------------------------------------------------------------------

TEST(PercentileTest, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

}  // namespace
}  // namespace msn
