// The paper's measurement harness: a correspondent-side UDP probe stream and
// a mobile-host-side echo server. The correspondent sends a sequence-stamped
// datagram every `interval`; the mobile host echoes it back; unanswered
// sequence numbers are the lost packets plotted in Figure 6 and counted in
// the same-subnet switching experiment (§4).
#ifndef MSN_SRC_TRACING_PROBE_H_
#define MSN_SRC_TRACING_PROBE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/sim/simulator.h"

namespace msn {

// Echoes every received datagram back to its sender. Run on the mobile host:
// its replies are home-role traffic and exercise the full mobile-IP path.
class ProbeEchoServer {
 public:
  ProbeEchoServer(Node& node, uint16_t port);

  uint64_t echoes_sent() const { return echoes_sent_; }

 private:
  std::unique_ptr<UdpSocket> socket_;
  uint64_t echoes_sent_ = 0;
};

// Sends probes to a target and records which came back and when.
class ProbeSender {
 public:
  struct Config {
    Ipv4Address target;
    uint16_t port = 7;
    Duration interval = Milliseconds(10);
  };

  struct ProbeRecord {
    Time sent_at;
    std::optional<Time> echoed_at;
    Duration Rtt() const { return *echoed_at - sent_at; }
  };

  ProbeSender(Node& node, Config config);
  ~ProbeSender();

  void Start();
  void Stop();

  uint64_t sent() const { return next_seq_; }
  uint64_t received() const { return received_; }
  // Probes never echoed. Only meaningful once the simulation has run past
  // the last probe's round-trip.
  uint64_t TotalLost() const;
  // Lost probes among those *sent* in [from, to).
  uint64_t LostInWindow(Time from, Time to) const;
  // RTT of echoed probes sent in [from, to); empty if none.
  std::vector<Duration> RttsInWindow(Time from, Time to) const;
  const std::map<uint32_t, ProbeRecord>& records() const { return records_; }

 private:
  void SendProbe();
  void OnEcho(const std::vector<uint8_t>& data);

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  std::unique_ptr<PeriodicTask> task_;
  uint32_t next_seq_ = 0;
  uint64_t received_ = 0;
  std::map<uint32_t, ProbeRecord> records_;
};

}  // namespace msn

#endif  // MSN_SRC_TRACING_PROBE_H_
