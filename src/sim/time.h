// Simulated time: strong types for instants and durations, nanosecond
// resolution, stored as signed 64-bit counts (enough for ~292 years).
#ifndef MSN_SRC_SIM_TIME_H_
#define MSN_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace msn {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration FromNanos(int64_t ns) { return Duration(ns); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double ToMicrosF() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an adaptive unit, e.g. "7.39ms", "250us".
  std::string ToString() const;

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

constexpr Duration Nanoseconds(int64_t n) { return Duration::FromNanos(n); }
constexpr Duration Microseconds(int64_t n) { return Duration::FromNanos(n * 1000); }
constexpr Duration Milliseconds(int64_t n) { return Duration::FromNanos(n * 1000000); }
constexpr Duration Seconds(int64_t n) { return Duration::FromNanos(n * 1000000000); }
constexpr Duration SecondsF(double s) {
  return Duration::FromNanos(static_cast<int64_t>(s * 1e9));
}
constexpr Duration MillisecondsF(double ms) {
  return Duration::FromNanos(static_cast<int64_t>(ms * 1e6));
}

class Time {
 public:
  constexpr Time() = default;
  static constexpr Time FromNanos(int64_t ns) { return Time(ns); }
  static constexpr Time Zero() { return Time(0); }
  // A far-future sentinel that still leaves headroom for arithmetic.
  static constexpr Time Max() { return Time(INT64_MAX / 2); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.nanos()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.nanos()); }
  constexpr Duration operator-(Time other) const {
    return Duration::FromNanos(ns_ - other.ns_);
  }
  constexpr auto operator<=>(const Time&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit Time(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_SIM_TIME_H_
