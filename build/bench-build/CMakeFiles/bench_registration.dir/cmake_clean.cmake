file(REMOVE_RECURSE
  "../bench/bench_registration"
  "../bench/bench_registration.pdb"
  "CMakeFiles/bench_registration.dir/bench_registration.cc.o"
  "CMakeFiles/bench_registration.dir/bench_registration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
