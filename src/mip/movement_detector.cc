#include "src/mip/movement_detector.h"

#include "src/link/net_device.h"
#include "src/util/logging.h"

namespace msn {

MovementDetector::MovementDetector(MobileHost& mobile, Config config)
    : mobile_(mobile), config_(config) {
  task_ = std::make_unique<PeriodicTask>(mobile_.node().sim(), config_.probe_interval,
                                         [this] { ProbeRound(); });
}

MovementDetector::~MovementDetector() = default;

void MovementDetector::AddCandidate(const Candidate& candidate) {
  auto tracked = std::make_unique<Tracked>();
  tracked->candidate = candidate;
  tracked->pinger = std::make_unique<Pinger>(mobile_.node().stack());
  tracked_.push_back(std::move(tracked));
}

void MovementDetector::Start() {
  ProbeRound();
  task_->Start();
}

void MovementDetector::Stop() { task_->Stop(); }

double MovementDetector::LossEstimate(const std::string& device_name) const {
  for (const auto& t : tracked_) {
    if (t->candidate.attachment.device->name() == device_name) {
      return t->loss_ewma;
    }
  }
  return 1.0;
}

void MovementDetector::ReportSignal(const std::string& device_name, double rssi_dbm) {
  for (auto& t : tracked_) {
    if (t->candidate.attachment.device->name() != device_name) {
      continue;
    }
    t->rssi_dbm = rssi_dbm;
    t->have_rssi = true;
    if (config_.metrics != nullptr) {
      config_.metrics->GetGauge("mh.movedet.rssi_dbm." + device_name).Set(rssi_dbm);
    }
    return;
  }
}

LinkCharacteristics MovementDetector::Characterize(const Tracked& t) const {
  LinkCharacteristics c;
  c.device_name = t.candidate.attachment.device->name();
  c.bandwidth_bps = t.candidate.attachment.device->bandwidth_bps();
  c.last_probe_rtt = t.last_rtt;
  c.loss_estimate = t.loss_ewma;
  return c;
}

void MovementDetector::ProbeRound() {
  for (auto& tracked : tracked_) {
    Tracked& t = *tracked;
    NetDevice* device = t.candidate.attachment.device;
    const auto addr = mobile_.node().stack().GetInterfaceAddress(device);
    if (!device->IsUp() || !addr.has_value()) {
      // Unprobeable link: decays toward dead.
      t.loss_ewma = (1.0 - config_.ewma_alpha) * t.loss_ewma + config_.ewma_alpha;
      ++t.rounds_dead;
      t.rounds_usable = 0;
      continue;
    }
    if (t.probe_outstanding) {
      continue;
    }
    t.probe_outstanding = true;
    ++counters_.probes_sent;
    // Probe the candidate's gateway with the candidate's own (local-role)
    // source address so the packet leaves through the candidate's device.
    t.pinger->set_source(*addr);
    Tracked* tp = &t;
    t.pinger->Ping(t.candidate.attachment.gateway, config_.probe_timeout,
                   [this, tp](const Pinger::Result& result) {
                     tp->probe_outstanding = false;
                     tp->loss_ewma = (1.0 - config_.ewma_alpha) * tp->loss_ewma +
                                     config_.ewma_alpha * (result.success ? 0.0 : 1.0);
                     if (result.success) {
                       tp->last_rtt = result.rtt;
                     }
                     if (IsUsable(*tp)) {
                       ++tp->rounds_usable;
                       tp->rounds_dead = 0;
                     } else {
                       ++tp->rounds_dead;
                       tp->rounds_usable = 0;
                     }
                     if (config_.metrics != nullptr) {
                       const std::string& dev = tp->candidate.attachment.device->name();
                       config_.metrics->GetGauge("mh.movedet.loss." + dev).Set(tp->loss_ewma);
                       config_.metrics->GetGauge("mh.movedet.rtt_ms." + dev)
                           .Set(tp->last_rtt.ToMillisF());
                     }
                   });
  }
  Evaluate();
}

void MovementDetector::Evaluate() {
  if (switching_ || tracked_.empty()) {
    return;
  }
  // Which candidate are we currently using?
  Tracked* current = nullptr;
  for (auto& t : tracked_) {
    if (t->candidate.attachment.device == mobile_.attachment().device) {
      current = t.get();
      break;
    }
  }

  // Best settled-usable alternative.
  Tracked* best_usable = nullptr;
  for (auto& t : tracked_) {
    if (t.get() == current || t->rounds_usable < config_.hysteresis_rounds) {
      continue;
    }
    if (best_usable == nullptr ||
        t->candidate.preference > best_usable->candidate.preference) {
      best_usable = t.get();
    }
  }

  const bool current_dead =
      current == nullptr || current->rounds_dead >= config_.hysteresis_rounds;

  if (mobile_.node().sim().Now() < cooldown_until_) {
    if (current_dead) {
      ++counters_.suppressed_switches;
    }
    return;
  }

  // Registration-liveness recovery: a timed-out registration leaves the MH
  // detached, and the protocol never retries on its own (the attachment
  // stays usable in its local role). Once the current link has settled
  // usable again, re-attach through it.
  if (current != nullptr && mobile_.state() == MobileHost::State::kDetached &&
      current->rounds_usable >= config_.hysteresis_rounds) {
    ++counters_.reattaches;
    SwitchTo(*current, /*upgrade=*/false);
    return;
  }

  // Ping-pong guard: within min_residency of the last switch, only a
  // physically-down current device justifies moving again. A host parked at
  // a cell boundary (loss hovering at the usable threshold) otherwise
  // bounces between cells on every EWMA wiggle.
  const bool in_residency =
      config_.min_residency.nanos() > 0 &&
      mobile_.node().sim().Now() < attached_since_ + config_.min_residency;
  const bool current_device_up =
      current != nullptr && current->candidate.attachment.device->IsUp();
  if (in_residency && current_device_up) {
    if (current_dead || (config_.upgrade_when_available && best_usable != nullptr &&
                         best_usable->candidate.preference > current->candidate.preference)) {
      ++counters_.pingpong_suppressed;
    }
    return;
  }

  if (current_dead) {
    if (best_usable != nullptr) {
      ++counters_.failovers;
      SwitchTo(*best_usable, /*upgrade=*/false);
    } else {
      // Blind failover: highest-preference alternative, even unprobeable
      // (a cold switch will bring its device up). Under the signal-aware
      // policy a link known to be out of coverage is not worth a blind cold
      // switch — the registration would only burn its full retransmit
      // schedule; staying put lets coverage come back to a live candidate.
      Tracked* fallback = nullptr;
      for (auto& t : tracked_) {
        if (t.get() == current) {
          continue;
        }
        if (config_.use_signal && t->have_rssi && t->rssi_dbm < config_.rssi_floor_dbm) {
          continue;
        }
        if (fallback == nullptr ||
            t->candidate.preference > fallback->candidate.preference) {
          fallback = t.get();
        }
      }
      if (fallback != nullptr) {
        ++counters_.failovers;
        SwitchTo(*fallback, /*upgrade=*/false);
      }
    }
    return;
  }

  if (config_.upgrade_when_available && best_usable != nullptr && current != nullptr &&
      best_usable->candidate.preference > current->candidate.preference) {
    ++counters_.upgrades;
    SwitchTo(*best_usable, /*upgrade=*/true);
  }
}

void MovementDetector::SwitchTo(Tracked& target, bool upgrade) {
  switching_ = true;
  ++counters_.switches;
  MSN_INFO("movedet", "%s: switching to %s (%s)", mobile_.node().name().c_str(),
           target.candidate.attachment.device->name().c_str(),
           upgrade ? "upgrade" : "failover");
  Tracked* tp = &target;
  auto done = [this, tp](bool ok) {
    switching_ = false;
    cooldown_until_ = mobile_.node().sim().Now() + config_.switch_cooldown;
    attached_since_ = mobile_.node().sim().Now();
    if (change_handler_) {
      change_handler_(Characterize(*tp), ok);
    }
  };
  if (target.candidate.attachment.device->IsUp()) {
    mobile_.HotSwitchTo(target.candidate.attachment, std::move(done));
  } else {
    mobile_.ColdSwitchTo(target.candidate.attachment, std::move(done));
  }
}

}  // namespace msn
