// The home agent (paper §3.1, §3.4).
//
// Runs on a host in the mobile host's home network (often, but not
// necessarily, the router). For each registered away-from-home mobile host it
// keeps a *mobility binding* (care-of address, lifetime, identification) and:
//
//  * intercepts packets for the MH's home address by acting as its ARP proxy
//    and broadcasting a gratuitous ARP to void stale neighbor caches;
//  * installs a route-table override directing those packets to its VIF,
//    which encapsulates them IP-in-IP to the current care-of address;
//  * decapsulates reverse-tunneled packets from the MH and forwards them on
//    to their true destinations;
//  * answers registration requests on UDP port 434, including deregistration
//    when the mobile host returns home.
//
// Request processing is serialized through a single logical server (the
// paper's user-level daemon), which is what the HA-scalability benchmark
// measures.
#ifndef MSN_SRC_MIP_HOME_AGENT_H_
#define MSN_SRC_MIP_HOME_AGENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "src/mip/calibration.h"
#include "src/mip/ipip.h"
#include "src/mip/messages.h"
#include "src/mip/vif.h"
#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/telemetry/metrics.h"
#include "src/util/stats.h"

namespace msn {

class HomeAgent {
 public:
  struct Config {
    // The HA's own address on the home subnet.
    Ipv4Address address;
    // Device attached to the home subnet (where proxy ARP happens).
    NetDevice* home_device = nullptr;
    // Home addresses must fall inside this subnet to be served.
    Subnet home_subnet;
    // Upper bound on granted binding lifetimes.
    uint16_t max_lifetime_sec = 600;
    // Extension (paper §5.1): when a binding moves away from a foreign-agent
    // care-of address, tell that FA where the mobile host went so it can
    // forward in-flight tunnel packets instead of dropping them.
    bool notify_previous_foreign_agent = true;
    // Require every registration to carry a valid mobile-home authenticator
    // (paper §5.1: registrations "should be authenticated ... to protect
    // against denial-of-service attacks in the form of malicious fraudulent
    // registrations"). Keys are installed per mobile host via SetAuthKey.
    bool require_authentication = false;
    Calibration calibration = Calibration::Default();
    // When given, the agent's accounting lands here under "ha.*" (counters,
    // an "ha.bindings" gauge, and an "ha.processing_ms" histogram); otherwise
    // in a private registry, so counters() behaves identically either way.
    MetricsRegistry* metrics = nullptr;
  };

  struct Binding {
    Ipv4Address home_address;
    Ipv4Address care_of;
    Time expires;
    uint64_t identification = 0;
    Time registered_at;
    // True when the MH decapsulates itself (co-located care-of, the paper's
    // basic protocol); false when the care-of address is a foreign agent.
    bool decapsulates_self = true;
  };

  // Snapshot of the agent's accounting; the live values are registry-backed
  // counters named "ha.<field>".
  struct Counters {
    uint64_t requests_received = 0;
    uint64_t registrations_accepted = 0;
    uint64_t registrations_denied = 0;
    uint64_t deregistrations = 0;
    uint64_t packets_tunneled = 0;
    uint64_t reverse_decapsulated = 0;
    uint64_t bindings_expired = 0;
    uint64_t tunnel_drops_no_binding = 0;
    // Requests silently dropped while the agent was in an outage window.
    uint64_t requests_dropped_outage = 0;
    // Bindings discarded by a daemon restart (BeginOutage(restart=true)).
    uint64_t bindings_wiped = 0;
    // Post-restart registrations denied once with kDeniedIdentificationMismatch
    // to re-anchor the replay window.
    uint64_t resync_denials = 0;
  };

  // Observer for binding changes; `new_care_of` is Any() on removal.
  using BindingObserver = std::function<void(Ipv4Address home_address, Ipv4Address old_care_of,
                                             Ipv4Address new_care_of)>;

  HomeAgent(Node& node, Config config);
  ~HomeAgent();

  HomeAgent(const HomeAgent&) = delete;
  HomeAgent& operator=(const HomeAgent&) = delete;

  // Restricts service to explicitly authorized home addresses. With no calls,
  // any home address inside `home_subnet` is served.
  void AuthorizeMobileHost(Ipv4Address home_address);
  // Installs the shared secret for a mobile host. When a key is present the
  // MH's registrations are always verified (and replies authenticated), even
  // if require_authentication is off.
  void SetAuthKey(Ipv4Address home_address, const MipAuthKey& key);

  // Fault hooks (driven by FaultSchedule::HaOutage). During an outage every
  // UDP 434 request is dropped without a reply — from the MH's point of view
  // the agent is simply unreachable. With `restart_daemon` the outage also
  // wipes all bindings and the identification history, modeling a crashed
  // daemon losing its soft state: after recovery, each mobile host's first
  // registration is denied once with kDeniedIdentificationMismatch (which
  // re-anchors the replay window), forcing it through the resync path.
  void BeginOutage(bool restart_daemon = false);
  void EndOutage();
  bool service_available() const { return service_available_; }

  [[nodiscard]] bool HasBinding(Ipv4Address home_address) const;
  [[nodiscard]] std::optional<Binding> GetBinding(Ipv4Address home_address) const;
  size_t binding_count() const { return bindings_.size(); }
  Counters counters() const;
  const Config& config() const { return config_; }
  Node& node() { return node_; }

  void SetBindingObserver(BindingObserver observer) { observer_ = std::move(observer); }

  // Per-request processing latency (request arrival to reply send), in
  // milliseconds; includes queueing behind other requests. This is the HA
  // component of the paper's Figure 7 (1.48 ms) and the quantity the
  // HA-scalability benchmark sweeps.
  const RunningStats& processing_stats_ms() const { return processing_stats_ms_; }

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef requests_received;
    CounterRef registrations_accepted;
    CounterRef registrations_denied;
    CounterRef deregistrations;
    CounterRef packets_tunneled;
    CounterRef reverse_decapsulated;
    CounterRef bindings_expired;
    CounterRef tunnel_drops_no_binding;
    CounterRef requests_dropped_outage;
    CounterRef bindings_wiped;
    CounterRef resync_denials;
  };

  void OnRegistrationDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  void ProcessRequest(const RegistrationRequest& request, const UdpSocket::Metadata& meta,
                      Time reply_at);
  void SendReply(const RegistrationReply& reply, Ipv4Address dst, uint16_t port);
  void InstallBinding(const RegistrationRequest& request, uint16_t granted_lifetime_sec);
  void RemoveBinding(Ipv4Address home_address, bool expired);
  void ScheduleExpiry(Ipv4Address home_address, Time expires);
  void EncapsulateAndTunnel(const Ipv4Header& inner, const Packet& inner_wire);
  [[nodiscard]] std::optional<RouteDecision> RouteOverride(const RouteQuery& query);

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  VirtualInterface* vif_ = nullptr;  // Owned by the node.
  std::unique_ptr<IpIpTunnelEndpoint> tunnel_;
  std::map<Ipv4Address, Binding> bindings_;
  // Highest identification seen per home address; survives deregistration to
  // reject replays.
  std::map<Ipv4Address, uint64_t> last_identification_;
  std::set<Ipv4Address> authorized_;
  std::map<Ipv4Address, MipAuthKey> auth_keys_;
  BindingObserver observer_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
  Gauge* bindings_gauge_ = nullptr;        // "ha.bindings"
  Histogram* processing_histogram_ = nullptr;  // "ha.processing_ms"
  // False inside a scheduled outage window; requests are dropped unreplied.
  bool service_available_ = true;
  // Home addresses whose first post-restart registration must be denied once
  // to resynchronize identifications.
  std::set<Ipv4Address> resync_required_;
  // The registration daemon handles one request at a time.
  Time busy_until_ = Time::Zero();
  RunningStats processing_stats_ms_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_HOME_AGENT_H_
