file(REMOVE_RECURSE
  "CMakeFiles/mip_tunnel_test.dir/mip_tunnel_test.cc.o"
  "CMakeFiles/mip_tunnel_test.dir/mip_tunnel_test.cc.o.d"
  "mip_tunnel_test"
  "mip_tunnel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_tunnel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
