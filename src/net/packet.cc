#include "src/net/packet.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/net/packet_arena.h"
#include "src/util/assert.h"
#include "src/util/buffer_pool.h"

namespace msn {

Packet::Stats Packet::stats_;

void Packet::Unref() {
  PacketStorage* s = storage_;
  storage_ = nullptr;
  if (s == nullptr || --s->refs != 0) {
    return;
  }
  if (s->arena != nullptr) {
    s->arena->Recycle(s);
    return;
  }
  if (s->pool != nullptr) {
    s->pool->Release(std::move(s->bytes));
  }
  delete s;
}

Packet::Packet(const Packet& other)
    : storage_(other.storage_), offset_(other.offset_), len_(other.len_) {
  if (storage_ != nullptr) {
    ++storage_->refs;
  }
}

Packet& Packet::operator=(const Packet& other) {
  if (this == &other) {
    return *this;
  }
  if (other.storage_ != nullptr) {
    ++other.storage_->refs;
  }
  Unref();
  storage_ = other.storage_;
  offset_ = other.offset_;
  len_ = other.len_;
  return *this;
}

Packet::Packet(Packet&& other) noexcept
    : storage_(other.storage_), offset_(other.offset_), len_(other.len_) {
  other.storage_ = nullptr;
  other.offset_ = 0;
  other.len_ = 0;
}

Packet& Packet::operator=(Packet&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  Unref();
  storage_ = other.storage_;
  offset_ = other.offset_;
  len_ = other.len_;
  other.storage_ = nullptr;
  other.offset_ = 0;
  other.len_ = 0;
  return *this;
}

Packet::~Packet() { Unref(); }

Packet::Packet(std::vector<uint8_t> bytes) {
  len_ = bytes.size();
  auto* storage = new PacketStorage;
  storage->bytes = std::move(bytes);
  storage->refs = 1;
  storage_ = storage;
  ++stats_.allocations;
}

Packet::Packet(std::initializer_list<uint8_t> bytes)
    : Packet(std::vector<uint8_t>(bytes)) {}

Packet Packet::Allocate(size_t size, size_t headroom) {
  PacketStorage* storage = DefaultPacketArena().Acquire(headroom + size);
  ++stats_.allocations;
  return Packet(storage, headroom, size);
}

Packet Packet::Copy(std::span<const uint8_t> bytes, size_t headroom) {
  Packet p = Allocate(bytes.size(), headroom);
  if (!bytes.empty()) {
    std::memcpy(p.storage_->bytes.data() + p.offset_, bytes.data(), bytes.size());
  }
  ++stats_.copies;
  return p;
}

const uint8_t* Packet::Base() const {
  return storage_ != nullptr ? storage_->bytes.data() : nullptr;
}

long Packet::storage_use_count() const {
  return storage_ != nullptr ? static_cast<long>(storage_->refs) : 0;
}

Packet Packet::Slice(size_t pos, size_t count) const {
  MSN_ASSERT(pos <= len_ && count <= len_ - pos)
      << "slice [" << pos << ", +" << count << ") out of packet of " << len_ << " bytes";
  if (storage_ != nullptr) {
    ++storage_->refs;
  }
  return Packet(storage_, offset_ + pos, count);
}

std::vector<uint8_t> Packet::ToVector() const {
  return std::vector<uint8_t>(begin(), end());
}

uint8_t* Packet::MutableData() {
  if (storage_ == nullptr) {
    return nullptr;
  }
  if (storage_->refs > 1) {
    Isolate(offset_, /*shared=*/true);
  }
  return storage_->bytes.data() + offset_;
}

void Packet::Prepend(std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  const bool unique = storage_ != nullptr && storage_->refs == 1;
  if (!unique || offset_ < bytes.size()) {
    Isolate(bytes.size() + kDefaultHeadroom, storage_ != nullptr && !unique);
  }
  offset_ -= bytes.size();
  len_ += bytes.size();
  std::memcpy(storage_->bytes.data() + offset_, bytes.data(), bytes.size());
}

void Packet::StripFront(size_t n) {
  MSN_ASSERT(n <= len_) << "StripFront(" << n << ") on packet of " << len_ << " bytes";
  offset_ += n;
  len_ -= n;
}

void Packet::TrimTo(size_t n) {
  MSN_ASSERT(n <= len_) << "TrimTo(" << n << ") on packet of " << len_ << " bytes";
  len_ = n;
}

void Packet::Isolate(size_t headroom, bool shared) {
  PacketStorage* storage = DefaultPacketArena().Acquire(headroom + len_);
  ++stats_.allocations;
  if (len_ > 0) {
    std::memcpy(storage->bytes.data() + headroom, data(), len_);
  }
  ++stats_.copies;
  if (shared) {
    ++stats_.cow_breaks;
  }
  Unref();
  storage_ = storage;
  offset_ = headroom;
}

std::string Packet::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Packet(%zuB, hr=%zu, refs=%ld)", len_, offset_,
                storage_use_count());
  return buf;
}

}  // namespace msn
