// The discrete-event simulator driving every MosquitoNet experiment.
//
// Single-threaded: callbacks run to completion in timestamp order; each may
// schedule further events. All model randomness flows from the simulator's
// seeded Rng, so runs are reproducible bit-for-bit.
#ifndef MSN_SRC_SIM_SIMULATOR_H_
#define MSN_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"
#include "src/util/rng.h"

namespace msn {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `cb` to run `delay` after the current time (>= 0).
  EventId Schedule(Duration delay, EventQueue::Callback cb);
  EventId ScheduleAt(Time when, EventQueue::Callback cb);
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue drains or Stop() is called. Returns the number of
  // events executed.
  uint64_t Run();
  // Runs events with timestamp <= deadline; the clock advances to `deadline`
  // even if the queue drains earlier (so periodic sampling windows line up).
  uint64_t RunUntil(Time deadline);
  uint64_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Makes Run()/RunUntil() return after the current callback finishes.
  void Stop() { stopped_ = true; }

  bool HasPendingEvents() const { return !queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

  // Earliest pending event's timestamp; Time::Max() when idle. The inline
  // datapath dispatch (DESIGN.md §18) uses this to prove that running a
  // zero-delay continuation immediately cannot jump ahead of any other
  // pending same-time event.
  Time NextEventTime() const { return queue_.NextTime(); }

  // Scheduling-path split (immediate lane vs heap) for the burst.* probes.
  const EventQueue::LaneStats& queue_lane_stats() const { return queue_.lane_stats(); }

 private:
  uint64_t RunInternal(Time deadline);

  Time now_ = Time::Zero();
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
};

// Repeats a callback at a fixed interval until cancelled or its owner dies.
// Typical use: the probe traffic generators in the handoff experiments.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Duration interval, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

 private:
  void Fire();

  Simulator& sim_;
  Duration interval_;
  std::function<void()> fn_;
  EventId pending_;
  bool running_ = false;
  // Guards against use-after-free when the task is destroyed from within fn_.
  std::shared_ptr<bool> alive_;
};

}  // namespace msn

#endif  // MSN_SRC_SIM_SIMULATOR_H_
