# Empty compiler generated dependencies file for msn_tcplite.
# This may be replaced when dependencies are built.
