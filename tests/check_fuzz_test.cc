// Tests for the deterministic scenario fuzzer (DESIGN.md §13): generator
// determinism, scenario text round-trips, NormalizeSpec as a fixed point,
// clean seeds staying clean, byte-identical failure reports, and the full
// injected-bug pipeline — sabotage the home agent through RunOptions::
// instrument, watch an oracle catch it, and shrink the repro to a handful
// of events.
#include <gtest/gtest.h>

#include <string>

#include "src/check/fuzzer.h"
#include "src/check/scenario_gen.h"
#include "src/check/shrink.h"
#include "src/mip/home_agent.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

TEST(ScenarioGenTest, SameSeedSameScenario) {
  for (uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    EXPECT_EQ(GenerateScenario(seed).ToString(), GenerateScenario(seed).ToString())
        << "seed " << seed;
  }
  EXPECT_NE(GenerateScenario(3).ToString(), GenerateScenario(4).ToString());
}

TEST(ScenarioGenTest, ToStringParseRoundTrip) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const ScenarioSpec spec = GenerateScenario(seed);
    std::string error;
    const auto parsed = ScenarioSpec::Parse(spec.ToString(), &error);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << error;
    EXPECT_EQ(parsed->ToString(), spec.ToString()) << "seed " << seed;
  }
}

TEST(ScenarioGenTest, NormalizeIsFixedPointOnGeneratorOutput) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const ScenarioSpec spec = GenerateScenario(seed);
    EXPECT_EQ(NormalizeSpec(spec).ToString(), spec.ToString()) << "seed " << seed;
  }
}

TEST(ScenarioGenTest, SeedOnlyFileGenerates) {
  const auto parsed = ScenarioSpec::Parse("msn-fuzz-scenario-v1\nseed 42\nend\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToString(), GenerateScenario(42).ToString());
}

TEST(ScenarioGenTest, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse("", &error).has_value());
  EXPECT_FALSE(ScenarioSpec::Parse("seed 1\n", &error).has_value())
      << "header must come first";
  EXPECT_FALSE(
      ScenarioSpec::Parse("msn-fuzz-scenario-v1\nbogus 1\nend\n", &error).has_value());
}

TEST(CheckFuzzTest, CleanSeedsStayClean) {
  // A window of the seed space the fuzzer has been soaked on; a violation
  // here is a regression in the simulator or an over-eager oracle.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult result = FuzzOne(seed);
    EXPECT_FALSE(result.failed())
        << "seed " << seed << "\n"
        << result.FailureReport();
    EXPECT_GT(result.report.checks, 0u) << "seed " << seed;
  }
}

TEST(CheckFuzzTest, CleanRunIsDeterministic) {
  const RunResult a = FuzzOne(5);
  const RunResult b = FuzzOne(5);
  EXPECT_EQ(a.movement_summary, b.movement_summary);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.probes_lost, b.probes_lost);
  EXPECT_EQ(a.report.checks, b.report.checks);
  EXPECT_EQ(a.report.ToString(), b.report.ToString());
}

TEST(CheckFuzzTest, OverloadStanzaShedsAndConverges) {
  // The overload stanza draws its offered rate relative to the drawn
  // pipeline's knee, so among a window of generated overload seeds at least
  // one burst must genuinely exceed capacity and trip the admission filter —
  // while every such run still passes its oracles (the fleet converges).
  uint64_t overload_runs = 0;
  uint64_t shed_runs = 0;
  for (uint64_t seed = 1; seed <= 60 && shed_runs == 0; ++seed) {
    const ScenarioSpec spec = GenerateScenario(seed);
    if (!spec.overload.enabled) {
      continue;
    }
    ++overload_runs;
    uint64_t denied = 0;
    RunOptions options;
    options.instrument = [&](Testbed& tb) {
      tb.sim.Schedule(spec.duration - Milliseconds(1), [&denied, &tb] {
        denied = tb.home_agent->counters().admission_denied;
      });
    };
    const RunResult result = RunScenario(spec, options);
    EXPECT_FALSE(result.failed()) << "seed " << seed << "\n" << result.FailureReport();
    if (denied > 0) {
      shed_runs = 1;
    }
  }
  EXPECT_GT(overload_runs, 0u) << "no generated seed enabled the overload stanza";
  EXPECT_EQ(shed_runs, 1u) << "no overload burst ever tripped the admission filter";
}

// A hand-built scenario with deliberately more events than the failure
// needs, so the shrinker has something to earn. The host ends away from
// home on the visited wired net with a short registration lifetime.
ScenarioSpec BuggyHostScenario() {
  ScenarioSpec spec;
  spec.seed = 77;
  spec.lifetime_sec = 6;
  spec.traffic.probes = true;
  spec.duration = Seconds(45);
  spec.moves = {
      {Seconds(2), MovementScript::Kind::kWiredCold, 50},
      {Seconds(5), MovementScript::Kind::kAddressSwitch, 51},
      {Seconds(8), MovementScript::Kind::kWirelessCold, 60},
      {Seconds(11), MovementScript::Kind::kWirelessHot, 61},
      {Seconds(15), MovementScript::Kind::kWiredCold, 52},
  };
  FaultEventSpec blackout;
  blackout.at = Seconds(3);
  blackout.kind = FaultEventSpec::Kind::kBlackout;
  blackout.medium = FaultMedium::kHome;
  blackout.length = Milliseconds(800);
  FaultEventSpec profile;
  profile.at = Seconds(6);
  profile.kind = FaultEventSpec::Kind::kProfile;
  profile.medium = FaultMedium::kRadio;
  profile.p_enter_burst = 0.05;
  profile.p_exit_burst = 0.5;
  FaultEventSpec clear;
  clear.at = Seconds(9);
  clear.kind = FaultEventSpec::Kind::kClearProfile;
  clear.medium = FaultMedium::kRadio;
  FaultEventSpec late_blackout;
  late_blackout.at = Milliseconds(12500);
  late_blackout.kind = FaultEventSpec::Kind::kBlackout;
  late_blackout.medium = FaultMedium::kRadio;
  late_blackout.length = Milliseconds(500);
  spec.faults = {blackout, profile, clear, late_blackout};
  return NormalizeSpec(spec);
}

// The injected bug: 20 s in, the home agent dies and never comes back. The
// hook is not part of the scenario, so shrinking carries it into every
// candidate run.
RunOptions PermanentHaOutage() {
  RunOptions options;
  options.instrument = [](Testbed& tb) {
    HomeAgent* ha = tb.home_agent.get();
    tb.sim.Schedule(Seconds(20), [ha] { ha->BeginOutage(false); });
  };
  return options;
}

TEST(CheckFuzzTest, InjectedBugIsCaughtByAnOracle) {
  const ScenarioSpec spec = BuggyHostScenario();
  const RunResult result = RunScenario(spec, PermanentHaOutage());
  ASSERT_TRUE(result.failed()) << "permanent HA outage went unnoticed";
  // The renewal after the outage can never complete, so the settling run
  // misses its promised registered-away terminal state.
  EXPECT_TRUE(result.report.violations.count("registration-liveness") ||
              result.report.violations.count("binding-agreement"))
      << result.report.ToString();
}

TEST(CheckFuzzTest, FailureReportIsByteDeterministic) {
  const ScenarioSpec spec = BuggyHostScenario();
  const RunResult a = RunScenario(spec, PermanentHaOutage());
  const RunResult b = RunScenario(spec, PermanentHaOutage());
  ASSERT_TRUE(a.failed());
  EXPECT_EQ(a.FailureReport(), b.FailureReport());
}

TEST(CheckFuzzTest, ShrinkerMinimizesInjectedBug) {
  const ScenarioSpec spec = BuggyHostScenario();
  const RunOptions options = PermanentHaOutage();
  const ShrinkResult shrunk = ShrinkScenario(spec, options);
  EXPECT_FALSE(shrunk.oracle.empty()) << "original scenario did not fail";
  EXPECT_TRUE(shrunk.final_report.failed());
  EXPECT_TRUE(shrunk.final_report.violations.count(shrunk.oracle))
      << shrunk.final_report.ToString();
  EXPECT_LT(shrunk.minimized_events, shrunk.original_events);
  EXPECT_LE(shrunk.minimized_events, 10u);
  // The minimized scenario replays to the same verdict.
  const RunResult replay = RunScenario(shrunk.minimized, options);
  EXPECT_TRUE(replay.report.violations.count(shrunk.oracle))
      << replay.report.ToString();
}

TEST(CheckFuzzTest, ShrinkOfPassingScenarioIsIdentity) {
  const ScenarioSpec spec = GenerateScenario(1);
  const ShrinkResult shrunk = ShrinkScenario(spec);
  EXPECT_TRUE(shrunk.oracle.empty());
  EXPECT_EQ(shrunk.runs, 1);
  EXPECT_EQ(shrunk.minimized.ToString(), spec.ToString());
}

}  // namespace
}  // namespace msn
