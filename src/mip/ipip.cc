#include "src/mip/ipip.h"

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace msn {

// Deepest tunnel-in-tunnel nesting the endpoint will unwrap in one receive.
// Normal operation uses one level (HA -> care-of), two with a reverse tunnel
// inside an outage drill; anything deeper is a forwarding loop or a crafted
// packet, and unwrapping it would recurse once per layer.
inline constexpr int kMaxDecapDepth = 4;

Ipv4Datagram EncapsulateIpIp(const Ipv4Datagram& inner, Ipv4Address outer_src,
                             Ipv4Address outer_dst) {
  Ipv4Datagram outer;
  outer.header.protocol = IpProto::kIpIp;
  outer.header.src = outer_src;
  outer.header.dst = outer_dst;
  outer.header.ttl = Ipv4Header::kDefaultTtl;
  outer.payload = inner.Serialize();
  return outer;
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
Packet EncapsulateIpIpPacket(Ipv4Header& outer_header, Packet inner_wire,
                             Ipv4Address outer_src, Ipv4Address outer_dst) {
  outer_header = Ipv4Header{};
  outer_header.protocol = IpProto::kIpIp;
  outer_header.src = outer_src;
  outer_header.dst = outer_dst;
  outer_header.ttl = Ipv4Header::kDefaultTtl;
  outer_header.total_length =
      static_cast<uint16_t>(Ipv4Header::kSize + inner_wire.size());
  uint8_t hdr[Ipv4Header::kSize];
  outer_header.SerializeTo(hdr);
  inner_wire.Prepend(std::span<const uint8_t>(hdr, Ipv4Header::kSize));
  return inner_wire;
}

std::optional<Ipv4Datagram> DecapsulateIpIp(std::span<const uint8_t> outer_payload) {
  return Ipv4Datagram::Parse(outer_payload);
}

IpIpTunnelEndpoint::IpIpTunnelEndpoint(IpStack& stack) : stack_(stack) {
  stack_.RegisterProtocolHandler(
      IpProto::kIpIp, [this](const Ipv4Header& header, const Packet& payload,
                             NetDevice* ingress) { OnIpIp(header, payload, ingress); });
}

IpIpTunnelEndpoint::~IpIpTunnelEndpoint() { stack_.UnregisterProtocolHandler(IpProto::kIpIp); }

void IpIpTunnelEndpoint::OnIpIp(const Ipv4Header& header, const Packet& payload,
                                NetDevice* ingress) {
  // Parse the inner header in place; the inner wire image is a slice of the
  // outer payload, so decapsulation strips the outer header without copying.
  ByteReader r(payload.data(), payload.size());
  auto inner_header = Ipv4Header::Parse(r);
  if (!inner_header || inner_header->total_length < Ipv4Header::kSize ||
      inner_header->total_length > payload.size()) {
    ++decapsulation_errors_;
    return;
  }
  // A nested tunnel packet re-enters OnIpIp from InjectReceivedPacket below,
  // one stack frame per layer; bound that recursion.
  if (decap_depth_ >= kMaxDecapDepth) {
    ++decapsulation_errors_;
    MSN_WARN("ipip", "%s: dropping tunnel packet nested deeper than %d levels",
             stack_.node_name().c_str(), kMaxDecapDepth);
    return;
  }
  if (inspector_) {
    // Inspectors (agent policy hooks) want an owned datagram they can buffer
    // or re-tunnel; materialize one only when a hook is installed.
    Ipv4Datagram inner;
    inner.header = *inner_header;
    inner.payload.assign(payload.begin() + Ipv4Header::kSize,
                         payload.begin() + inner_header->total_length);
    if (!inspector_(header, inner)) {
      return;
    }
  }
  ++packets_decapsulated_;
  MSN_TRACE("ipip", "%s: decapsulated %s", stack_.node_name().c_str(),
            inner_header->ToString().c_str());
  // Re-inject with no ingress device: the inner packet logically originates
  // at the tunnel endpoint, so interface-level transit filters must not be
  // re-applied to it.
  (void)ingress;
  ++decap_depth_;
  stack_.InjectReceivedPacket(*inner_header, payload.Slice(0, inner_header->total_length),
                              nullptr);
  --decap_depth_;
  MSN_ASSERT(decap_depth_ >= 0);
}

}  // namespace msn
