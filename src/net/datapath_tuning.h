// Process-global switches for the burst datapath (DESIGN.md §18).
//
// Every knob here is a pure optimization: flipping one must never change a
// packet trace, a counter the models export, or a protocol decision — only
// how much work the engine does to produce them. That contract is enforced
// by tests/datapath_diff_test.cc, which replays fuzz-corpus scenarios with
// the whole block forced on vs off and diffs frame traces byte for byte.
//
// Globals (not per-node config) on purpose: the toggles exist for the
// differential harness and for bisecting perf regressions, not as a
// deployment surface, and a single switch point keeps the on/off sweep in
// benches and tests one assignment.
#ifndef MSN_SRC_NET_DATAPATH_TUNING_H_
#define MSN_SRC_NET_DATAPATH_TUNING_H_

#include <cstddef>

namespace msn {

struct DatapathTuning {
  // Per-node LPM/MPT result cache in front of IpStack::RouteLookup
  // (src/node/flow_cache.h). Invalidation contract: DESIGN.md §18.
  bool flow_cache = true;
  // Entries per node before the deterministic full clear.
  size_t flow_cache_capacity = 1024;

  // Drain further zero-serialization-delay frames inline from a device
  // queue after a transmit completes, instead of scheduling one completion
  // event per frame. Frames with a real serialization time never coalesce —
  // their completion timestamps differ by construction.
  bool device_burst = true;
  // Frames drained per completion event before yielding to the engine.
  size_t device_burst_max = 32;

  // Run a zero-delay pipeline continuation (forward -> send, rx deliver)
  // immediately when the event engine has nothing else pending at the
  // current timestamp — provably order-identical (Simulator::NextEventTime
  // guard), and skips even the immediate-lane push/pop.
  bool inline_pipeline = true;

  // Restore the defaults above (the differential harness toggles the whole
  // block off, runs, then calls this).
  void Reset() { *this = DatapathTuning{}; }
};

// The process-wide tuning block. Single-threaded simulator: mutate freely
// between runs, never from inside a callback mid-run.
DatapathTuning& GlobalDatapathTuning();

}  // namespace msn

#endif  // MSN_SRC_NET_DATAPATH_TUNING_H_
