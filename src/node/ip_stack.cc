#include "src/node/ip_stack.h"

#include <algorithm>
#include <utility>

#include "src/link/net_device.h"
#include "src/node/udp.h"
#include "src/util/byte_buffer.h"
#include "src/util/logging.h"

namespace msn {

IpStack::IpStack(Simulator& sim, std::string node_name, MetricsRegistry* metrics)
    : sim_(sim), node_name_(std::move(node_name)),
      arp_(std::make_unique<ArpService>(sim, *this)),
      reassembly_(std::make_unique<ReassemblyService>(sim)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string prefix = "ip." + node_name_ + ".";
  counters_.datagrams_sent = metrics->GetCounterRef(prefix + "datagrams_sent");
  counters_.datagrams_delivered = metrics->GetCounterRef(prefix + "datagrams_delivered");
  counters_.datagrams_forwarded = metrics->GetCounterRef(prefix + "datagrams_forwarded");
  counters_.drop_no_route = metrics->GetCounterRef(prefix + "drop_no_route");
  counters_.drop_arp_failure = metrics->GetCounterRef(prefix + "drop_arp_failure");
  counters_.drop_ttl = metrics->GetCounterRef(prefix + "drop_ttl");
  counters_.drop_filtered = metrics->GetCounterRef(prefix + "drop_filtered");
  counters_.drop_no_handler = metrics->GetCounterRef(prefix + "drop_no_handler");
  counters_.drop_bad_packet = metrics->GetCounterRef(prefix + "drop_bad_packet");
  counters_.drop_device = metrics->GetCounterRef(prefix + "drop_device");
  counters_.drop_not_for_us = metrics->GetCounterRef(prefix + "drop_not_for_us");
  counters_.icmp_echo_replies_sent = metrics->GetCounterRef(prefix + "icmp_echo_replies_sent");
  counters_.icmp_errors_sent = metrics->GetCounterRef(prefix + "icmp_errors_sent");
  counters_.icmp_redirects_sent = metrics->GetCounterRef(prefix + "icmp_redirects_sent");
  counters_.icmp_redirects_accepted =
      metrics->GetCounterRef(prefix + "icmp_redirects_accepted");
  counters_.fragments_sent = metrics->GetCounterRef(prefix + "fragments_sent");
  counters_.drop_fragmentation_needed =
      metrics->GetCounterRef(prefix + "drop_fragmentation_needed");
}

IpStack::~IpStack() = default;

IpStack::Counters IpStack::counters() const {
  Counters c;
  c.datagrams_sent = counters_.datagrams_sent;
  c.datagrams_delivered = counters_.datagrams_delivered;
  c.datagrams_forwarded = counters_.datagrams_forwarded;
  c.drop_no_route = counters_.drop_no_route;
  c.drop_arp_failure = counters_.drop_arp_failure;
  c.drop_ttl = counters_.drop_ttl;
  c.drop_filtered = counters_.drop_filtered;
  c.drop_no_handler = counters_.drop_no_handler;
  c.drop_bad_packet = counters_.drop_bad_packet;
  c.drop_device = counters_.drop_device;
  c.drop_not_for_us = counters_.drop_not_for_us;
  c.icmp_echo_replies_sent = counters_.icmp_echo_replies_sent;
  c.icmp_errors_sent = counters_.icmp_errors_sent;
  c.icmp_redirects_sent = counters_.icmp_redirects_sent;
  c.icmp_redirects_accepted = counters_.icmp_redirects_accepted;
  c.fragments_sent = counters_.fragments_sent;
  c.drop_fragmentation_needed = counters_.drop_fragmentation_needed;
  return c;
}

// --- Interfaces ---------------------------------------------------------------

void IpStack::AddInterface(NetDevice* device) {
  if (FindInterface(device) != nullptr) {
    return;
  }
  interfaces_.push_back(InterfaceEntry{device, Ipv4Address::Any(), SubnetMask(0), false});
  device->SetReceiveHandler(
      [this](NetDevice& dev, const EthernetFrame& frame) { ReceiveFrame(dev, frame); });
}

void IpStack::RemoveInterface(NetDevice* device) {
  UnconfigureAddress(device);
  routes_.RemoveForDevice(device);
  interfaces_.erase(std::remove_if(interfaces_.begin(), interfaces_.end(),
                                   [device](const InterfaceEntry& e) {
                                     return e.device == device;
                                   }),
                    interfaces_.end());
}

IpStack::InterfaceEntry* IpStack::FindInterface(NetDevice* device) {
  for (InterfaceEntry& e : interfaces_) {
    if (e.device == device) {
      return &e;
    }
  }
  return nullptr;
}

const IpStack::InterfaceEntry* IpStack::FindInterface(NetDevice* device) const {
  for (const InterfaceEntry& e : interfaces_) {
    if (e.device == device) {
      return &e;
    }
  }
  return nullptr;
}

void IpStack::ConfigureAddress(NetDevice* device, Ipv4Address addr, SubnetMask mask) {
  InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr) {
    AddInterface(device);
    entry = FindInterface(device);
  }
  if (entry->configured) {
    routes_.Remove(Subnet(entry->addr, entry->mask), device);
  }
  entry->addr = addr;
  entry->mask = mask;
  entry->configured = true;
  // The connected-subnet route, as ifconfig installs.
  routes_.Add(RouteEntry{Subnet(addr, mask), Ipv4Address::Any(), device, addr, 0});
  MSN_DEBUG("ip", "%s: %s configured %s/%d", node_name_.c_str(), device->name().c_str(),
            addr.ToString().c_str(), mask.prefix_len());
}

void IpStack::UnconfigureAddress(NetDevice* device) {
  InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return;
  }
  routes_.Remove(Subnet(entry->addr, entry->mask), device);
  entry->addr = Ipv4Address::Any();
  entry->mask = SubnetMask(0);
  entry->configured = false;
}

std::optional<Ipv4Address> IpStack::GetInterfaceAddress(NetDevice* device) const {
  const InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return std::nullopt;
  }
  return entry->addr;
}

std::optional<Subnet> IpStack::GetInterfaceSubnet(NetDevice* device) const {
  const InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return std::nullopt;
  }
  return Subnet(entry->addr, entry->mask);
}

bool IpStack::IsLocalAddress(Ipv4Address addr) const {
  for (const InterfaceEntry& e : interfaces_) {
    if (e.configured && e.addr == addr) {
      return true;
    }
  }
  return false;
}

std::vector<NetDevice*> IpStack::Interfaces() const {
  std::vector<NetDevice*> out;
  out.reserve(interfaces_.size());
  for (const InterfaceEntry& e : interfaces_) {
    out.push_back(e.device);
  }
  return out;
}

bool IpStack::IsBroadcastFor(Ipv4Address addr) const {
  if (addr.IsBroadcast()) {
    return true;
  }
  for (const InterfaceEntry& e : interfaces_) {
    if (e.configured && Subnet(e.addr, e.mask).BroadcastAddress() == addr &&
        e.mask.prefix_len() < 32) {
      return true;
    }
  }
  return false;
}

// --- Routing -------------------------------------------------------------------

std::optional<RouteDecision> IpStack::RouteLookup(const RouteQuery& query) {
  // The mobility hook: the paper's enhanced ip_rt_route() consults the Mobile
  // Policy Table first and falls through to the normal table.
  if (route_override_) {
    if (auto decision = route_override_(query)) {
      return decision;
    }
  }
  auto entry = routes_.Lookup(query.dst);
  if (!entry) {
    return std::nullopt;
  }
  RouteDecision decision;
  decision.device = entry->device;
  decision.next_hop = entry->gateway;
  if (!query.src_hint.IsAny()) {
    decision.src = query.src_hint;
  } else if (!entry->pref_src.IsAny()) {
    decision.src = entry->pref_src;
  } else {
    decision.src = GetInterfaceAddress(entry->device).value_or(Ipv4Address::Any());
  }
  return decision;
}

// --- Delay model ------------------------------------------------------------------

Duration IpStack::DrawDelay(Duration mean, Duration jitter) {
  if (mean.nanos() <= 0) {
    return Duration();
  }
  const double ns = sim_.rng().NormalAtLeast(static_cast<double>(mean.nanos()),
                                             static_cast<double>(jitter.nanos()),
                                             static_cast<double>(mean.nanos()) * 0.25);
  return Duration::FromNanos(static_cast<int64_t>(ns));
}

Time IpStack::PipelineDelay(Time& busy_until, Duration mean, Duration jitter) {
  const Time start = std::max(sim_.Now(), busy_until);
  const Time done = start + DrawDelay(mean, jitter);
  busy_until = done;
  return done;
}

// --- Send path -----------------------------------------------------------------

void IpStack::SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::vector<uint8_t> payload, SendOptions opts) {
  Ipv4Datagram dg;
  dg.header.src = src;
  dg.header.dst = dst;
  dg.header.protocol = proto;
  dg.header.ttl = opts.ttl;
  dg.header.identification = next_ip_id_++;
  dg.payload = std::move(payload);
  ++counters_.datagrams_sent;
  const Time fire = PipelineDelay(send_pipe_busy_, delays_.send_mean, delays_.send_jitter);
  sim_.ScheduleAt(fire, [this, dg = std::move(dg), opts = std::move(opts)]() mutable {
    DoSend(std::move(dg), /*forwarding=*/false, std::move(opts));
  });
}

void IpStack::SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::vector<uint8_t> payload) {
  SendDatagram(src, dst, proto, std::move(payload), SendOptions{});
}

void IpStack::SendPreformedDatagram(const Ipv4Datagram& dg, bool forwarding) {
  DoSend(dg, forwarding, SendOptions{});
}

void IpStack::DoSend(Ipv4Datagram dg, bool forwarding, SendOptions opts) {
  const Ipv4Address dst = dg.header.dst;

  if (opts.force_device != nullptr) {
    TransmitViaDevice(opts.force_device, std::move(dg), dst, opts.force_dst_mac);
    return;
  }

  // Packets to one of our own addresses short-circuit to local delivery.
  if (IsLocalAddress(dst) || dst.IsLoopback()) {
    const Time fire =
        PipelineDelay(deliver_pipe_busy_, delays_.deliver_mean, delays_.deliver_jitter);
    sim_.ScheduleAt(fire,
                    [this, dg = std::move(dg)] { Deliver(dg, nullptr, MacAddress::Zero()); });
    return;
  }

  RouteQuery query{dst, dg.header.src, forwarding};
  auto decision = RouteLookup(query);
  if (!decision || decision->device == nullptr) {
    ++counters_.drop_no_route;
    MSN_DEBUG("ip", "%s: no route to %s", node_name_.c_str(), dst.ToString().c_str());
    return;
  }
  if (!forwarding && dg.header.src.IsAny()) {
    dg.header.src = decision->src;
    if (dg.header.src.IsAny() && !opts.allow_unconfigured_source) {
      ++counters_.drop_no_route;
      return;
    }
  }
  TransmitViaDevice(decision->device, std::move(dg), decision->EffectiveNextHop(dst),
                    opts.force_dst_mac);
}

void IpStack::TransmitViaDevice(NetDevice* device, Ipv4Datagram dg, Ipv4Address next_hop,
                                std::optional<MacAddress> force_dst_mac) {
  if (device == nullptr) {
    ++counters_.drop_device;
    return;
  }

  // Fragment datagrams exceeding the egress MTU; with DF set, drop and
  // signal path-MTU discovery instead.
  std::vector<Ipv4Datagram> pieces;
  if (Ipv4Header::kSize + dg.payload.size() > device->mtu()) {
    if (dg.header.dont_fragment) {
      ++counters_.drop_fragmentation_needed;
      SendIcmpError(dg, IcmpUnreachableCode::kFragmentationNeeded);
      return;
    }
    pieces = FragmentDatagram(dg, device->mtu());
    counters_.fragments_sent += pieces.size();
  } else {
    pieces.push_back(std::move(dg));
  }

  auto transmit = [this, device, pieces = std::move(pieces)](MacAddress dst_mac) {
    for (const Ipv4Datagram& piece : pieces) {
      EthernetFrame frame;
      frame.dst = dst_mac;
      frame.src = device->mac();
      frame.ethertype = EtherType::kIpv4;
      frame.payload = piece.Serialize();
      if (!device->Transmit(frame)) {
        ++counters_.drop_device;
      }
    }
  };

  if (force_dst_mac.has_value()) {
    transmit(*force_dst_mac);
    return;
  }
  if (next_hop.IsBroadcast() || IsBroadcastFor(next_hop)) {
    transmit(MacAddress::Broadcast());
    return;
  }
  if (device->bandwidth_bps() == 0 && device->mac().IsZero()) {
    // Loopback-style device: no link addressing.
    transmit(MacAddress::Zero());
    return;
  }
  arp_->Resolve(device, next_hop,
                [this, transmit = std::move(transmit)](std::optional<MacAddress> mac) {
                  if (!mac) {
                    ++counters_.drop_arp_failure;
                    return;
                  }
                  transmit(*mac);
                });
}

// --- Receive path ---------------------------------------------------------------

void IpStack::ReceiveFrame(NetDevice& device, const EthernetFrame& frame) {
  switch (frame.ethertype) {
    case EtherType::kArp:
      arp_->HandleFrame(&device, frame);
      return;
    case EtherType::kIpv4:
      HandleIpv4Frame(device, frame);
      return;
  }
}

void IpStack::HandleIpv4Frame(NetDevice& device, const EthernetFrame& frame) {
  auto dg = Ipv4Datagram::Parse(frame.payload);
  if (!dg) {
    ++counters_.drop_bad_packet;
    return;
  }
  InjectReceivedDatagram(*dg, &device, frame.src);
}

void IpStack::InjectReceivedDatagram(const Ipv4Datagram& dg, NetDevice* ingress,
                                     MacAddress link_src) {
  const Ipv4Address dst = dg.header.dst;
  if (IsLocalAddress(dst) || dst.IsBroadcast() || IsBroadcastFor(dst) || dst.IsLoopback()) {
    // Reassemble fragments destined to us; forwarded fragments pass through
    // untouched (routers do not reassemble).
    std::optional<Ipv4Datagram> whole = reassembly_->Add(dg);
    if (!whole.has_value()) {
      return;  // Waiting for more fragments.
    }
    const Time fire =
        PipelineDelay(deliver_pipe_busy_, delays_.deliver_mean, delays_.deliver_jitter);
    sim_.ScheduleAt(fire, [this, dg = std::move(*whole), ingress, link_src] {
      Deliver(dg, ingress, link_src);
    });
    return;
  }
  if (forwarding_enabled_) {
    Forward(dg, ingress);
    return;
  }
  ++counters_.drop_not_for_us;
}

void IpStack::Forward(Ipv4Datagram dg, NetDevice* ingress) {
  if (dg.header.ttl <= 1) {
    ++counters_.drop_ttl;
    return;
  }
  dg.header.ttl -= 1;
  if (forward_filter_ && !forward_filter_(dg.header, ingress)) {
    // Transit-traffic filtering: the security-conscious-router behaviour that
    // breaks the triangle-route optimization (paper §3.2).
    ++counters_.drop_filtered;
    MSN_DEBUG("ip", "%s: filtered transit packet %s", node_name_.c_str(),
              dg.header.ToString().c_str());
    SendIcmpError(dg, IcmpUnreachableCode::kAdminProhibited);
    return;
  }
  // RFC 792 redirect: if we would forward this packet back out its arrival
  // interface toward a gateway on the sender's own subnet, tell the sender
  // about the shorter path (and still forward the packet).
  if (send_redirects_ && ingress != nullptr) {
    RouteQuery query{dg.header.dst, dg.header.src, /*forwarding=*/true, /*advisory=*/true};
    if (auto decision = RouteLookup(query)) {
      const auto ingress_subnet = GetInterfaceSubnet(ingress);
      if (decision->device == ingress && ingress_subnet &&
          ingress_subnet->Contains(dg.header.src)) {
        const Ipv4Address better_hop = decision->EffectiveNextHop(dg.header.dst);
        IcmpMessage redirect;
        redirect.type = IcmpType::kRedirect;
        redirect.code = 1;  // Redirect for host.
        redirect.rest = better_hop.value();
        ByteWriter w;
        dg.header.Serialize(w);
        const size_t copy = std::min<size_t>(8, dg.payload.size());
        w.WriteBytes(dg.payload.data(), copy);
        redirect.payload = w.Take();
        ++counters_.icmp_redirects_sent;
        SendIcmp(dg.header.src, redirect,
                 GetInterfaceAddress(ingress).value_or(Ipv4Address::Any()));
      }
    }
  }

  ++counters_.datagrams_forwarded;
  const Time fire =
      PipelineDelay(forward_pipe_busy_, delays_.forward_mean, delays_.forward_jitter);
  sim_.ScheduleAt(fire, [this, dg = std::move(dg)]() mutable {
    DoSend(std::move(dg), /*forwarding=*/true, SendOptions{});
  });
}

void IpStack::Deliver(const Ipv4Datagram& dg, NetDevice* ingress, MacAddress link_src) {
  ++counters_.datagrams_delivered;
  switch (dg.header.protocol) {
    case IpProto::kIcmp:
      HandleIcmp(dg.header, dg.payload, ingress);
      return;
    case IpProto::kUdp:
      HandleUdp(dg.header, dg.payload, ingress, link_src);
      return;
    default:
      break;
  }
  auto it = protocol_handlers_.find(dg.header.protocol);
  if (it != protocol_handlers_.end()) {
    it->second(dg.header, dg.payload, ingress);
    return;
  }
  ++counters_.drop_no_handler;
}

void IpStack::RegisterProtocolHandler(IpProto proto, ProtocolHandler handler) {
  protocol_handlers_[proto] = std::move(handler);
}

void IpStack::UnregisterProtocolHandler(IpProto proto) { protocol_handlers_.erase(proto); }

// --- ICMP -----------------------------------------------------------------------

void IpStack::HandleIcmp(const Ipv4Header& header, const std::vector<uint8_t>& payload,
                         NetDevice* ingress) {
  (void)ingress;
  auto msg = IcmpMessage::Parse(payload);
  if (!msg) {
    ++counters_.drop_bad_packet;
    return;
  }
  switch (msg->type) {
    case IcmpType::kEchoRequest: {
      // Answer with the address the request was sent to, so replies to the
      // home address remain subject to mobile-IP policy on a mobile host.
      IcmpMessage reply;
      reply.type = IcmpType::kEchoReply;
      reply.code = 0;
      reply.rest = msg->rest;
      reply.payload = msg->payload;
      ++counters_.icmp_echo_replies_sent;
      SendIcmp(header.src, reply, header.dst);
      return;
    }
    case IcmpType::kEchoReply: {
      auto it = echo_listeners_.find(msg->echo_id());
      if (it != echo_listeners_.end()) {
        it->second(header, *msg);
      }
      return;
    }
    case IcmpType::kRedirect: {
      if (!accept_redirects_) {
        return;
      }
      ByteReader r(msg->payload);
      auto offending = Ipv4Header::Parse(r);
      if (!offending) {
        return;
      }
      const Ipv4Address better_hop(msg->rest);
      // The redirect must come from the gateway we are currently using, and
      // the new hop must be on a directly connected subnet.
      RouteQuery query{offending->dst, Ipv4Address::Any(), /*forwarding=*/false,
                       /*advisory=*/true};
      auto current = RouteLookup(query);
      if (!current || current->EffectiveNextHop(offending->dst) != header.src) {
        return;
      }
      const auto subnet = GetInterfaceSubnet(current->device);
      if (!subnet || !subnet->Contains(better_hop)) {
        return;
      }
      routes_.Add(RouteEntry{Subnet(offending->dst, SubnetMask(32)), better_hop,
                             current->device, Ipv4Address::Any(), 0});
      ++counters_.icmp_redirects_accepted;
      MSN_DEBUG("ip", "%s: redirect %s via %s", node_name_.c_str(),
                offending->dst.ToString().c_str(), better_hop.ToString().c_str());
      return;
    }
    case IcmpType::kDestinationUnreachable: {
      // Extract the offending packet's header from the ICMP payload.
      ByteReader r(msg->payload);
      auto offending = Ipv4Header::Parse(r);
      if (offending) {
        if (icmp_error_handler_) {
          icmp_error_handler_(*msg, *offending);
        }
        // If the offending packet was one of our echo requests, tell the
        // pinger: this is how the mobile host learns a triangle-route probe
        // was administratively filtered.
        if (offending->protocol == IpProto::kIcmp && r.remaining() >= 8) {
          r.Skip(4);  // Inner ICMP type, code, checksum.
          const uint16_t echo_id = r.ReadU16();
          auto it = echo_listeners_.find(echo_id);
          if (it != echo_listeners_.end()) {
            it->second(header, *msg);
          }
        }
      }
      return;
    }
  }
}

void IpStack::SendIcmp(Ipv4Address dst, const IcmpMessage& msg, Ipv4Address src) {
  SendDatagram(src, dst, IpProto::kIcmp, msg.Serialize());
}

void IpStack::SendIcmpError(const Ipv4Datagram& offending, IcmpUnreachableCode code) {
  if (offending.header.protocol == IpProto::kIcmp) {
    // Avoid error storms: only report errors for echo requests, never for
    // other ICMP messages.
    auto inner = IcmpMessage::Parse(offending.payload);
    if (!inner || inner->type != IcmpType::kEchoRequest) {
      return;
    }
  }
  IcmpMessage err;
  err.type = IcmpType::kDestinationUnreachable;
  err.code = static_cast<uint8_t>(code);
  err.rest = 0;
  // RFC 792: the offending IP header plus the first 8 payload bytes.
  ByteWriter w;
  offending.header.Serialize(w);
  // Serialize() writes total_length as stored; re-patch to the true value.
  const size_t copy = std::min<size_t>(8, offending.payload.size());
  w.WriteBytes(offending.payload.data(), copy);
  err.payload = w.Take();
  ++counters_.icmp_errors_sent;
  SendIcmp(offending.header.src, err);
}

void IpStack::RegisterEchoListener(
    uint16_t id, std::function<void(const Ipv4Header&, const IcmpMessage&)> cb) {
  echo_listeners_[id] = std::move(cb);
}

void IpStack::UnregisterEchoListener(uint16_t id) { echo_listeners_.erase(id); }

// --- UDP ------------------------------------------------------------------------

void IpStack::HandleUdp(const Ipv4Header& header, const std::vector<uint8_t>& payload,
                        NetDevice* ingress, MacAddress link_src) {
  auto dg = UdpDatagram::Parse(payload, header.src, header.dst);
  if (!dg) {
    ++counters_.drop_bad_packet;
    return;
  }
  auto it = udp_sockets_.find(dg->dst_port);
  if (it == udp_sockets_.end() || it->second.empty()) {
    if (!header.dst.IsBroadcast() && !IsBroadcastFor(header.dst)) {
      Ipv4Datagram full;
      full.header = header;
      full.payload = payload;
      SendIcmpError(full, IcmpUnreachableCode::kPortUnreachable);
    }
    return;
  }
  DispatchUdp(it->second, header, *dg, ingress, link_src);
}

void IpStack::DispatchUdp(const std::vector<UdpSocket*>& sockets, const Ipv4Header& header,
                          const UdpDatagram& dg, NetDevice* ingress, MacAddress link_src) {
  UdpSocket::Metadata meta;
  meta.src = header.src;
  meta.src_port = dg.src_port;
  meta.dst = header.dst;
  meta.ingress = ingress;
  meta.link_src = link_src;

  const bool broadcast = header.dst.IsBroadcast() || IsBroadcastFor(header.dst);
  if (broadcast) {
    // Broadcasts reach every socket on the port (DHCP relies on this).
    for (UdpSocket* socket : sockets) {
      socket->Deliver(dg.payload, meta);
    }
    return;
  }
  // Unicast: prefer a socket bound to exactly this destination address, then
  // fall back to an unbound (wildcard) socket.
  UdpSocket* exact = nullptr;
  UdpSocket* wildcard = nullptr;
  for (UdpSocket* socket : sockets) {
    if (socket->bound_source() == header.dst) {
      exact = socket;
      break;
    }
    if (socket->bound_source().IsAny() && wildcard == nullptr) {
      wildcard = socket;
    }
  }
  UdpSocket* chosen = exact != nullptr ? exact : wildcard;
  if (chosen != nullptr) {
    chosen->Deliver(dg.payload, meta);
  }
}

bool IpStack::BindUdpSocket(uint16_t port, UdpSocket* socket) {
  auto& list = udp_sockets_[port];
  if (std::find(list.begin(), list.end(), socket) != list.end()) {
    return true;
  }
  list.push_back(socket);
  return true;
}

void IpStack::UnbindUdpSocket(uint16_t port, UdpSocket* socket) {
  auto it = udp_sockets_.find(port);
  if (it == udp_sockets_.end()) {
    return;
  }
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), socket), list.end());
  if (list.empty()) {
    udp_sockets_.erase(it);
  }
}

uint16_t IpStack::AllocateEphemeralPort() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const uint16_t port = next_ephemeral_port_;
    next_ephemeral_port_ = next_ephemeral_port_ == 65535 ? 49152 : next_ephemeral_port_ + 1;
    if (udp_sockets_.find(port) == udp_sockets_.end()) {
      return port;
    }
  }
  return 0;
}

}  // namespace msn
