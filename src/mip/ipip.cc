#include "src/mip/ipip.h"

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace msn {

// Deepest tunnel-in-tunnel nesting the endpoint will unwrap in one receive.
// Normal operation uses one level (HA -> care-of), two with a reverse tunnel
// inside an outage drill; anything deeper is a forwarding loop or a crafted
// packet, and unwrapping it would recurse once per layer.
inline constexpr int kMaxDecapDepth = 4;

Ipv4Datagram EncapsulateIpIp(const Ipv4Datagram& inner, Ipv4Address outer_src,
                             Ipv4Address outer_dst) {
  Ipv4Datagram outer;
  outer.header.protocol = IpProto::kIpIp;
  outer.header.src = outer_src;
  outer.header.dst = outer_dst;
  outer.header.ttl = Ipv4Header::kDefaultTtl;
  outer.payload = inner.Serialize();
  return outer;
}

std::optional<Ipv4Datagram> DecapsulateIpIp(const std::vector<uint8_t>& outer_payload) {
  return Ipv4Datagram::Parse(outer_payload);
}

IpIpTunnelEndpoint::IpIpTunnelEndpoint(IpStack& stack) : stack_(stack) {
  stack_.RegisterProtocolHandler(
      IpProto::kIpIp, [this](const Ipv4Header& header, const std::vector<uint8_t>& payload,
                             NetDevice* ingress) { OnIpIp(header, payload, ingress); });
}

IpIpTunnelEndpoint::~IpIpTunnelEndpoint() { stack_.UnregisterProtocolHandler(IpProto::kIpIp); }

void IpIpTunnelEndpoint::OnIpIp(const Ipv4Header& header, const std::vector<uint8_t>& payload,
                                NetDevice* ingress) {
  auto inner = DecapsulateIpIp(payload);
  if (!inner) {
    ++decapsulation_errors_;
    return;
  }
  // A nested tunnel packet re-enters OnIpIp from InjectReceivedDatagram
  // below, one stack frame per layer; bound that recursion.
  if (decap_depth_ >= kMaxDecapDepth) {
    ++decapsulation_errors_;
    MSN_WARN("ipip", "%s: dropping tunnel packet nested deeper than %d levels",
             stack_.node_name().c_str(), kMaxDecapDepth);
    return;
  }
  if (inspector_ && !inspector_(header, *inner)) {
    return;
  }
  ++packets_decapsulated_;
  MSN_TRACE("ipip", "%s: decapsulated %s", stack_.node_name().c_str(),
            inner->header.ToString().c_str());
  // Re-inject with no ingress device: the inner packet logically originates
  // at the tunnel endpoint, so interface-level transit filters must not be
  // re-applied to it.
  (void)ingress;
  ++decap_depth_;
  stack_.InjectReceivedDatagram(*inner, nullptr);
  --decap_depth_;
  MSN_ASSERT(decap_depth_ >= 0);
}

}  // namespace msn
