file(REMOVE_RECURSE
  "../bench/bench_tcp_handoff"
  "../bench/bench_tcp_handoff.pdb"
  "CMakeFiles/bench_tcp_handoff.dir/bench_tcp_handoff.cc.o"
  "CMakeFiles/bench_tcp_handoff.dir/bench_tcp_handoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
