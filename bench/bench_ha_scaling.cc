// Experiment E5 (paper §4, last paragraph): "the software overhead in the
// registration process is small, and the home agent should be able to deal
// with a large number of mobile hosts simultaneously."
//
// Fleet-scale version of that claim (DESIGN.md §17): a synthetic registrant
// fleet (RegistrationLoadGenerator — one node, one socket, ~40 bytes per
// client) offers registrations to one home agent at a controlled arrival
// rate. Three question sets:
//
//  * Sweep: with the sharded/batched pipeline, does per-request processing
//    latency stay flat as the registrant count N grows to 100k+, as long as
//    the offered rate stays below the saturation knee?
//  * Knee: where is that knee? Analytically, a shard drains batch_max
//    requests per (ha_batch_fixed + batch_max * ha_batch_item), so
//    knee = shards * batch_max / (fixed + batch_max * item); the overload
//    rows verify the agent actually sheds rather than collapses past it.
//  * Overload: at 2x the knee, the classic serial daemon's queue grows
//    without bound (completion latency is censored by client give-up), while
//    admission control sheds load statelessly and the shed clients converge
//    via backoff — bounded completion latency, high completion ratio.
//
// Censoring is reported honestly: every row carries registered / clients
// (the completion ratio) and a `censored` flag; latency stats cover only the
// clients that completed, so a censored row's latencies are a lower bound.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/link/link_device.h"
#include "src/mip/home_agent.h"
#include "src/mip/reg_load.h"
#include "src/node/node.h"
#include "src/telemetry/export.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct RunConfig {
  uint32_t clients = 1000;
  uint32_t shards = 1;
  uint32_t batch_max = 1;
  uint32_t admission_limit = 0;  // 0 = unbounded queues (classic daemon).
  double offered_per_sec = 1000;
  Duration horizon = Seconds(60);
  uint64_t seed = 8000;
};

struct RunResult {
  uint32_t clients = 0;
  uint64_t registered = 0;
  bool censored = false;
  double completion_ratio = 0;
  double achieved_per_sec = 0;
  double completion_mean_ms = 0;
  double completion_p95_ms = 0;
  double completion_p99_ms = 0;
  double completion_max_ms = 0;
  double ha_processing_mean_ms = 0;
  double ha_processing_p99_ms = 0;
  RegistrationLoadGenerator::Stats load;
  HomeAgent::Counters ha;
  RunningStats completion_stats;
  std::vector<double> completion_samples;
};

// The saturation knee in registrations/sec for a given pipeline shape,
// from the calibration means (see header comment).
double KneeRegsPerSec(const Calibration& cal, uint32_t shards, uint32_t batch_max) {
  const double fixed_ms = batch_max > 1 ? cal.ha_batch_fixed.mean.ToMillisF()
                                        : cal.ha_processing.mean.ToMillisF();
  const double item_ms = batch_max > 1 ? cal.ha_batch_item.mean.ToMillisF() : 0.0;
  const double batch_ms = fixed_ms + item_ms * static_cast<double>(batch_max);
  return static_cast<double>(shards) * static_cast<double>(batch_max) / batch_ms * 1000.0;
}

RunResult RunLoad(const RunConfig& rc, BenchReport* report) {
  // Declared before every component so it outlives them all.
  MetricsRegistry metrics;
  Simulator sim(rc.seed);
  BroadcastMedium net135(sim, "net135", EthernetMediumParams(), &metrics);
  BroadcastMedium net8(sim, "net8", EthernetMediumParams(), &metrics);

  // Router + home agent. Unlike the paper-faithful benches, the transport is
  // deliberately transparent — no kernel pipeline delays, gigabit links — so
  // the registration pipeline inside HomeAgent (whose costs are calibrated
  // internally: queueing, batching, ha_processing) is the only bottleneck
  // the rows can show. The classic 10 Mbps shared wire saturates at ~15k
  // small frames/sec, well below the sharded knee this bench must reach.
  Node router(sim, "router", &metrics);
  router.stack().set_forwarding_enabled(true);
  EthernetDevice* r135 = router.AddEthernet("eth135", &net135);
  EthernetDevice* r8 = router.AddEthernet("eth8", &net8);
  r135->set_bandwidth_bps(1'000'000'000);
  r8->set_bandwidth_bps(1'000'000'000);
  r135->ForceUp();
  r8->ForceUp();
  router.ConfigureInterface(r135, "36.135.0.1/16");
  router.ConfigureInterface(r8, "36.8.0.1/16");

  HomeAgent::Config ha_config;
  ha_config.address = Ipv4Address(36, 135, 0, 1);
  ha_config.home_device = r135;
  // A /8 home subnet: 100k+ distinct home addresses do not fit the classic
  // 36.135/16 (65534 hosts), so the fleet claims homes from 36.100.0.0 up.
  ha_config.home_subnet = Subnet::MustParse("36.0.0.0/8");
  ha_config.metrics = &metrics;
  ha_config.num_shards = rc.shards;
  ha_config.batch_max = rc.batch_max;
  ha_config.admission_queue_limit = rc.admission_limit;
  HomeAgent ha(router, ha_config);

  // The registrant fleet shares one host on the foreign segment; client-side
  // stack costs are deliberately zero so the rows isolate HA behavior.
  Node load_node(sim, "fleet", &metrics);
  EthernetDevice* eth = load_node.AddEthernet("eth0", &net8);
  eth->set_bandwidth_bps(1'000'000'000);
  eth->ForceUp();
  load_node.ConfigureInterface(eth, "36.8.0.2/16");
  load_node.AddDefaultRoute(Ipv4Address(36, 8, 0, 1), eth);

  RegistrationLoadGenerator::Config lc;
  lc.home_agent = Ipv4Address(36, 135, 0, 1);
  lc.first_home = Ipv4Address(36, 100, 0, 0);
  lc.count = rc.clients;
  lc.first_care_of = Ipv4Address(36, 8, 16, 1);
  lc.start_delay = Seconds(1);
  lc.interarrival = Duration::FromNanos(static_cast<int64_t>(1e9 / rc.offered_per_sec));
  RegistrationLoadGenerator load(load_node, lc);
  load.Start();

  sim.RunFor(rc.horizon);

  if (report != nullptr) {
    report->AddMetrics(metrics);
  }

  RunResult result;
  result.clients = rc.clients;
  result.registered = load.completed();
  result.censored = result.registered < rc.clients;
  result.completion_ratio =
      static_cast<double>(result.registered) / static_cast<double>(rc.clients);
  result.completion_stats = load.completion_stats_ms();
  result.completion_samples = load.completion_samples_ms();
  result.completion_mean_ms = result.completion_stats.mean();
  result.completion_max_ms = result.completion_stats.max();
  result.completion_p95_ms = Percentile(result.completion_samples, 95);
  result.completion_p99_ms = Percentile(result.completion_samples, 99);
  result.ha_processing_mean_ms = ha.processing_stats_ms().mean();
  result.ha_processing_p99_ms = metrics.GetHistogram("ha.processing_ms").Quantile(99);
  const double window_sec = (load.last_accept_time() - load.first_send_time()).ToSecondsF();
  result.achieved_per_sec =
      window_sec > 0 ? static_cast<double>(result.registered) / window_sec : 0;
  result.load = load.stats();
  result.ha = ha.counters();
  return result;
}

void PrintAndRecord(BenchReport& report, const std::string& label, const RunConfig& rc,
                    const RunResult& r) {
  std::printf("%-18s %8u %7u %5s %9.3f %12.1f %12.1f %10.2f %10.2f %10.2f %9.2f %9llu %9llu\n",
              label.c_str(), r.clients, rc.shards, r.censored ? "yes" : "no",
              r.completion_ratio, rc.offered_per_sec, r.achieved_per_sec,
              r.completion_mean_ms, r.completion_p99_ms, r.ha_processing_mean_ms,
              r.ha_processing_p99_ms, static_cast<unsigned long long>(r.ha.admission_denied),
              static_cast<unsigned long long>(r.load.gave_up));
  report.AddRow(label, {{"clients", static_cast<int64_t>(r.clients)},
                        {"shards", static_cast<int64_t>(rc.shards)},
                        {"batch_max", static_cast<int64_t>(rc.batch_max)},
                        {"admission_limit", static_cast<int64_t>(rc.admission_limit)},
                        {"registered", static_cast<int64_t>(r.registered)},
                        {"censored", static_cast<int64_t>(r.censored ? 1 : 0)},
                        {"completion_ratio", r.completion_ratio},
                        {"offered_per_sec", rc.offered_per_sec},
                        {"achieved_per_sec", r.achieved_per_sec},
                        {"completion_mean_ms", r.completion_mean_ms},
                        {"completion_p95_ms", r.completion_p95_ms},
                        {"completion_p99_ms", r.completion_p99_ms},
                        {"completion_max_ms", r.completion_max_ms},
                        {"ha_processing_mean_ms", r.ha_processing_mean_ms},
                        {"ha_processing_p99_ms", r.ha_processing_p99_ms},
                        {"admission_denied", static_cast<int64_t>(r.ha.admission_denied)},
                        {"admission_dropped", static_cast<int64_t>(r.ha.admission_dropped)},
                        {"admission_superseded",
                         static_cast<int64_t>(r.ha.admission_superseded)},
                        {"retransmissions", static_cast<int64_t>(r.load.retransmissions)},
                        {"gave_up", static_cast<int64_t>(r.load.gave_up)}});
}

int Main() {
  std::printf("==============================================================\n");
  std::printf("E5: home agent scalability at fleet scale (DESIGN.md S17)\n");
  std::printf("Synthetic registrants offer load to one HA at a fixed rate;\n");
  std::printf("sharded+batched+admission pipeline vs the classic serial daemon\n");
  std::printf("==============================================================\n\n");

  const bool smoke = BenchSmokeMode();
  BenchReport report("ha_scaling",
                     "E5: fleet-scale HA — sharded binding table, batched pipeline, "
                     "admission control");
  report.set_seed(8000);

  const Calibration cal = Calibration::Default();
  const uint32_t kShards = 16;
  const uint32_t kBatchMax = 32;
  const uint32_t kAdmissionLimit = 64;
  const double sharded_knee = KneeRegsPerSec(cal, kShards, kBatchMax);
  const double serial_knee = KneeRegsPerSec(cal, 1, 1);
  const double overload_rate = 2.0 * sharded_knee;
  // The sweep offers ~3/4 of the knee: below saturation, where the pipeline
  // promises flat per-request latency regardless of N.
  const double sweep_rate = smoke ? 4000.0 : 0.75 * sharded_knee;
  const double serial_sweep_rate = smoke ? 400.0 : 0.75 * serial_knee;

  report.AddParam("shards", static_cast<int64_t>(kShards));
  report.AddParam("batch_max", static_cast<int64_t>(kBatchMax));
  report.AddParam("admission_limit", static_cast<int64_t>(kAdmissionLimit));
  report.AddParam("serial_knee_per_sec", serial_knee);
  report.AddParam("sharded_knee_per_sec", sharded_knee);
  report.AddParam("overload_rate_per_sec", overload_rate);

  // Serial overload is truncated to fewer clients than the sharded row: at
  // ~676 regs/sec the full 50k-client backlog would take minutes of simulated
  // time to even enumerate, and the collapse is unambiguous well before that.
  const std::vector<uint32_t> serial_ns = smoke ? std::vector<uint32_t>{200}
                                                : std::vector<uint32_t>{1000, 5000};
  const std::vector<uint32_t> sharded_ns =
      smoke ? std::vector<uint32_t>{200, 1000}
            : std::vector<uint32_t>{1000, 5000, 20000, 50000, 100000};
  const uint32_t overload_serial_clients = smoke ? 2000 : 20000;
  const uint32_t overload_sharded_clients = smoke ? 4000 : 50000;
  const Duration horizon = smoke ? Seconds(40) : Seconds(90);
  report.AddParam("max_n", static_cast<int64_t>(sharded_ns.back()));

  std::printf("%-18s %8s %7s %5s %9s %12s %12s %10s %10s %10s %9s %9s %9s\n", "row",
              "clients", "shards", "cens", "ratio", "offered/s", "achieved/s", "comp ms",
              "comp p99", "proc ms", "proc p99", "adm_deny", "gave_up");

  // Serial daemon below its own knee: flat but forty-times-lower capacity.
  for (uint32_t n : serial_ns) {
    RunConfig rc;
    rc.clients = n;
    rc.shards = 1;
    rc.batch_max = 1;
    rc.admission_limit = 0;
    rc.offered_per_sec = serial_sweep_rate;
    rc.horizon = horizon;
    rc.seed = 8000 + n;
    const RunResult r = RunLoad(rc, nullptr);
    PrintAndRecord(report, "serial_n=" + std::to_string(n), rc, r);
  }

  // Sharded pipeline below the knee: N sweeps to 100k+ with flat latency.
  RunResult largest_sweep;
  for (size_t i = 0; i < sharded_ns.size(); ++i) {
    const uint32_t n = sharded_ns[i];
    RunConfig rc;
    rc.clients = n;
    rc.shards = kShards;
    rc.batch_max = kBatchMax;
    rc.admission_limit = kAdmissionLimit;
    rc.offered_per_sec = sweep_rate;
    rc.horizon = horizon;
    rc.seed = 8100 + n;
    const bool capture = i == sharded_ns.size() - 1;
    const RunResult r = RunLoad(rc, capture ? &report : nullptr);
    PrintAndRecord(report, "sharded_n=" + std::to_string(n), rc, r);
    if (capture) {
      largest_sweep = r;
    }
  }

  // Overload at 2x the sharded knee: serial collapses (queue and completion
  // latency unbounded, clients censored), admission control sheds and stays
  // bounded.
  RunConfig serial_overload;
  serial_overload.clients = overload_serial_clients;
  serial_overload.shards = 1;
  serial_overload.batch_max = 1;
  serial_overload.admission_limit = 0;
  serial_overload.offered_per_sec = overload_rate;
  serial_overload.horizon = horizon;
  serial_overload.seed = 8200;
  const RunResult serial_r = RunLoad(serial_overload, nullptr);
  PrintAndRecord(report, "overload_serial", serial_overload, serial_r);

  RunConfig sharded_overload;
  sharded_overload.clients = overload_sharded_clients;
  sharded_overload.shards = kShards;
  sharded_overload.batch_max = kBatchMax;
  sharded_overload.admission_limit = kAdmissionLimit;
  sharded_overload.offered_per_sec = overload_rate;
  sharded_overload.horizon = horizon;
  sharded_overload.seed = 8300;
  const RunResult sharded_r = RunLoad(sharded_overload, nullptr);
  PrintAndRecord(report, "overload_sharded", sharded_overload, sharded_r);

  report.AddSummary("completion_ms", "ms", largest_sweep.completion_samples);
  report.AddSummary("overload_completion_sharded_ms", "ms", sharded_r.completion_samples);

  std::printf("\nShape check: below the knee the sharded pipeline's processing p99\n"
              "stays flat while N sweeps to %u; at 2x the knee the serial daemon's\n"
              "completion latency is censored by client give-up while admission\n"
              "control keeps it bounded (shed clients converge via backoff).\n\n",
              sharded_ns.back());

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
