#include "src/net/frame.h"

#include <cstdio>

namespace msn {

std::string EthernetFrame::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s -> %s type=0x%04x len=%zu", src.ToString().c_str(),
                dst.ToString().c_str(), static_cast<uint16_t>(ethertype), payload.size());
  return buf;
}

}  // namespace msn
