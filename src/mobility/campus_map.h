// The 2D campus a mobile host physically roams (DESIGN.md §15).
//
// A CampusMap is a bounded rectangle (meters) with base stations placed on
// it. Each station serves one link medium — a wired drop zone (an office or
// lab with a live Ethernet jack) or a Metricom radio cell — and covers a
// disc of `range_m` around its position. Mobility models (mobility_model.h)
// produce positions inside the map; the mobility driver
// (mobility_driver.h) turns distance-to-nearest-station into link quality.
#ifndef MSN_SRC_MOBILITY_CAMPUS_MAP_H_
#define MSN_SRC_MOBILITY_CAMPUS_MAP_H_

#include <cmath>
#include <string>
#include <vector>

namespace msn {

// A point or displacement on the campus plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

inline double Distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Which testbed medium a base station fronts.
enum class CellMedium {
  kWired,  // Ethernet drop zone on net 36.8.
  kRadio,  // Metricom radio cell on net 36.134.
};
const char* CellMediumName(CellMedium medium);

struct BaseStation {
  std::string name;  // Lowercase [a-z0-9_]; doubles as a metric-name segment.
  CellMedium medium = CellMedium::kRadio;
  Vec2 position;
  double range_m = 120.0;  // Beyond this the station is out of coverage.
};

class CampusMap {
 public:
  CampusMap(double width_m, double height_m) : width_m_(width_m), height_m_(height_m) {}

  double width_m() const { return width_m_; }
  double height_m() const { return height_m_; }

  void AddBaseStation(const BaseStation& station) { stations_.push_back(station); }
  const std::vector<BaseStation>& base_stations() const { return stations_; }

  // Clamps a position into the map rectangle.
  [[nodiscard]] Vec2 Clamp(Vec2 p) const;

  // Nearest station serving `medium`; nullptr when none is placed.
  // `distance_m` (optional) receives the distance to the returned station.
  [[nodiscard]] const BaseStation* Nearest(CellMedium medium, const Vec2& p,
                                           double* distance_m = nullptr) const;

  // Canonical layout used by the fuzzer and the handoff bench: `cells`
  // stations spaced evenly along the horizontal midline of a width_m x
  // height_m rectangle, alternating wired drop zones (shorter range) and
  // radio cells. Station k is named "wired<k>" or "radio<k>".
  static CampusMap Corridor(double width_m, double height_m, int cells,
                            double wired_range_m, double radio_range_m);

 private:
  double width_m_;
  double height_m_;
  std::vector<BaseStation> stations_;
};

}  // namespace msn

#endif  // MSN_SRC_MOBILITY_CAMPUS_MAP_H_
