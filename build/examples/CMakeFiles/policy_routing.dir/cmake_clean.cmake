file(REMOVE_RECURSE
  "CMakeFiles/policy_routing.dir/policy_routing.cc.o"
  "CMakeFiles/policy_routing.dir/policy_routing.cc.o.d"
  "policy_routing"
  "policy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
