#include "src/mip/home_agent.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace msn {

HomeAgent::HomeAgent(Node& node, Config config)
    : node_(node), config_(std::move(config)), role_(config_.initial_role) {
  MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string& p = config_.metric_prefix;
  counters_.requests_received = metrics->GetCounterRef(p + "requests_received");
  counters_.registrations_accepted = metrics->GetCounterRef(p + "registrations_accepted");
  counters_.registrations_denied = metrics->GetCounterRef(p + "registrations_denied");
  counters_.deregistrations = metrics->GetCounterRef(p + "deregistrations");
  counters_.packets_tunneled = metrics->GetCounterRef(p + "packets_tunneled");
  counters_.reverse_decapsulated = metrics->GetCounterRef(p + "reverse_decapsulated");
  counters_.bindings_expired = metrics->GetCounterRef(p + "bindings_expired");
  counters_.tunnel_drops_no_binding = metrics->GetCounterRef(p + "tunnel_drops_no_binding");
  counters_.requests_dropped_outage = metrics->GetCounterRef(p + "requests_dropped_outage");
  counters_.requests_dropped_standby = metrics->GetCounterRef(p + "requests_dropped_standby");
  counters_.requests_dropped_crashed = metrics->GetCounterRef(p + "requests_dropped_crashed");
  counters_.tunnel_drops_crashed = metrics->GetCounterRef(p + "tunnel_drops_crashed");
  counters_.bindings_wiped = metrics->GetCounterRef(p + "bindings_wiped");
  counters_.resync_denials = metrics->GetCounterRef(p + "resync_denials");
  bindings_gauge_ = &metrics->GetGauge(p + "bindings");
  role_gauge_ = &metrics->GetGauge(p + "role");
  processing_histogram_ = &metrics->GetHistogram(p + "processing_ms");
  SetRoleGauge();

  // Registration service socket.
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(kMipRegistrationPort)) << "ha registration port";
  socket_->BindSourceAddress(config_.address);
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnRegistrationDatagram(data, meta);
      });

  // Encapsulating virtual interface (paper §3.4: the HA shares the MH's need
  // for a VIF).
  auto vif = std::make_unique<VirtualInterface>(node_.sim(), "ha-vif");
  vif->SetEncapHandler([this](const Ipv4Header& inner, const Packet& wire) {
    EncapsulateAndTunnel(inner, wire);
  });
  vif_ = static_cast<VirtualInterface*>(node_.AdoptDevice(std::move(vif)));

  // Reverse-tunnel decapsulation; inner packets are re-injected and forwarded
  // to the correspondent hosts (the node must have forwarding enabled).
  tunnel_ = std::make_unique<IpIpTunnelEndpoint>(node_.stack());
  tunnel_->SetInspector([this](const Ipv4Header& outer, const Ipv4Datagram& inner) {
    (void)outer;
    (void)inner;
    if (crashed_) {
      ++counters_.tunnel_drops_crashed;
      return false;
    }
    ++counters_.reverse_decapsulated;
    return true;
  });

  // The "special route table entry": packets for a bound home address are
  // redirected to the VIF. Installed as the route-lookup override so both
  // forwarded and locally originated packets are captured.
  node_.stack().SetRouteLookupOverride(
      [this](const RouteQuery& query) { return RouteOverride(query); });
}

HomeAgent::~HomeAgent() {
  node_.stack().ClearRouteLookupOverride();
  if (config_.home_device != nullptr) {
    for (const auto& [home, binding] : bindings_) {
      node_.stack().arp().RemoveProxyEntry(config_.home_device, home);
    }
  }
}

void HomeAgent::AuthorizeMobileHost(Ipv4Address home_address) {
  authorized_.insert(home_address);
}

void HomeAgent::SetAuthKey(Ipv4Address home_address, const MipAuthKey& key) {
  auth_keys_[home_address] = key;
}

HomeAgent::Counters HomeAgent::counters() const {
  Counters c;
  c.requests_received = counters_.requests_received;
  c.registrations_accepted = counters_.registrations_accepted;
  c.registrations_denied = counters_.registrations_denied;
  c.deregistrations = counters_.deregistrations;
  c.packets_tunneled = counters_.packets_tunneled;
  c.reverse_decapsulated = counters_.reverse_decapsulated;
  c.bindings_expired = counters_.bindings_expired;
  c.tunnel_drops_no_binding = counters_.tunnel_drops_no_binding;
  c.requests_dropped_outage = counters_.requests_dropped_outage;
  c.requests_dropped_standby = counters_.requests_dropped_standby;
  c.requests_dropped_crashed = counters_.requests_dropped_crashed;
  c.tunnel_drops_crashed = counters_.tunnel_drops_crashed;
  c.bindings_wiped = counters_.bindings_wiped;
  c.resync_denials = counters_.resync_denials;
  return c;
}

bool HomeAgent::HasBinding(Ipv4Address home_address) const {
  return bindings_.find(home_address) != bindings_.end();
}

std::optional<HomeAgent::Binding> HomeAgent::GetBinding(Ipv4Address home_address) const {
  auto it = bindings_.find(home_address);
  if (it == bindings_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<RouteDecision> HomeAgent::RouteOverride(const RouteQuery& query) {
  // A standby holds mirrored bindings but must not intercept traffic; a
  // crashed primary still captures so the drops can be counted — on a real
  // network those frames land on the dead host's MAC and die there.
  if (role_ != HaRole::kPrimary) {
    return std::nullopt;
  }
  auto it = bindings_.find(query.dst);
  if (it == bindings_.end()) {
    return std::nullopt;
  }
  RouteDecision decision;
  decision.device = vif_;
  decision.src = query.src_hint.IsAny() ? config_.address : query.src_hint;
  decision.next_hop = Ipv4Address::Any();
  return decision;
}

void HomeAgent::EncapsulateAndTunnel(const Ipv4Header& inner, const Packet& inner_wire) {
  auto it = bindings_.find(inner.dst);
  if (it == bindings_.end()) {
    ++counters_.tunnel_drops_no_binding;
    return;
  }
  if (crashed_) {
    ++counters_.tunnel_drops_crashed;
    return;
  }
  ++counters_.packets_tunneled;
  ++tunneled_by_epoch_[epoch_];
  Ipv4Header outer;
  Packet wire = EncapsulateIpIpPacket(outer, inner_wire, config_.address, it->second.care_of);
  MSN_TRACE("mip-ha", "%s: tunneling %s -> careof %s", node_.name().c_str(),
            inner.ToString().c_str(), it->second.care_of.ToString().c_str());
  node_.stack().SendPreformedPacket(outer, std::move(wire), /*forwarding=*/false);
}

void HomeAgent::BeginOutage(HaOutageKind kind) {
  service_available_ = false;
  switch (kind) {
    case HaOutageKind::kService:
      MSN_WARN("mip-ha", "%s: outage begins", node_.name().c_str());
      return;
    case HaOutageKind::kDaemonRestart:
      MSN_WARN("mip-ha", "%s: outage begins (daemon restart: soft state wiped)",
               node_.name().c_str());
      WipeSoftState();
      return;
    case HaOutageKind::kFailStop:
      MSN_WARN("mip-ha", "%s: outage begins (fail-stop crash)", node_.name().c_str());
      crashed_ = true;
      // The dead host answers no ARP; stale neighbor caches keep sending
      // frames its way for a while, and those show up as tunnel_drops_crashed
      // because the bindings themselves are kept until rejoin.
      for (const auto& [home, binding] : bindings_) {
        RemoveServingArpState(home);
      }
      return;
  }
}

void HomeAgent::BeginOutage(bool restart_daemon) {
  BeginOutage(restart_daemon ? HaOutageKind::kDaemonRestart : HaOutageKind::kService);
}

void HomeAgent::EndOutage() {
  service_available_ = true;
  if (crashed_) {
    // Rejoin after a fail-stop crash: RAM is gone, and if a replica exists it
    // now owns the bindings — come back as a standby and resync from it
    // (HaReplicationLink requests a snapshot on the down->up transition)
    // instead of forcing every mobile host through identification resync.
    crashed_ = false;
    WipeSoftState();
    if (replication_sink_ && role_ == HaRole::kPrimary) {
      StepDown(epoch_);
    }
  }
  MSN_INFO("mip-ha", "%s: outage ends", node_.name().c_str());
}

void HomeAgent::WipeSoftState() {
  applying_peer_state_ = true;
  // Snapshot the keys first — RemoveBinding mutates bindings_.
  std::vector<Ipv4Address> homes;
  homes.reserve(bindings_.size());
  for (const auto& [home, binding] : bindings_) {
    homes.push_back(home);
  }
  for (Ipv4Address home : homes) {
    resync_required_.insert(home);
    ++counters_.bindings_wiped;
    RemoveBinding(home, /*expired=*/false);
  }
  last_identification_.clear();
  applying_peer_state_ = false;
}

void HomeAgent::Promote(uint64_t epoch) {
  MSN_WARN("mip-ha", "%s: promoted to primary (epoch %llu -> %llu, %zu bindings)",
           node_.name().c_str(), static_cast<unsigned long long>(epoch_),
           static_cast<unsigned long long>(epoch), bindings_.size());
  role_ = HaRole::kPrimary;
  epoch_ = epoch;
  SetRoleGauge();
  // Pull home-subnet traffic here: proxy ARP plus a gratuitous announcement
  // for every mirrored binding.
  for (const auto& [home, binding] : bindings_) {
    InstallServingArpState(home);
  }
}

void HomeAgent::StepDown(uint64_t epoch) {
  MSN_WARN("mip-ha", "%s: stepping down to standby (epoch %llu -> %llu)",
           node_.name().c_str(), static_cast<unsigned long long>(epoch_),
           static_cast<unsigned long long>(epoch));
  role_ = HaRole::kStandby;
  epoch_ = epoch;
  SetRoleGauge();
  for (const auto& [home, binding] : bindings_) {
    RemoveServingArpState(home);
  }
}

void HomeAgent::SetReplicationSink(ReplicationSink sink) {
  replication_sink_ = std::move(sink);
}

void HomeAgent::EmitMutation(const BindingMutation& mutation) {
  if (replication_sink_ && !applying_peer_state_) {
    replication_sink_(mutation);
  }
}

void HomeAgent::SetRoleGauge() {
  role_gauge_->Set(role_ == HaRole::kPrimary ? 1.0 : 0.0);
}

void HomeAgent::ApplyMutation(const BindingMutation& mutation) {
  applying_peer_state_ = true;
  switch (mutation.kind) {
    case BindingMutation::Kind::kInstall: {
      Binding binding;
      binding.home_address = mutation.home_address;
      binding.care_of = mutation.care_of;
      binding.expires = node_.sim().Now() + Seconds(mutation.lifetime_sec);
      binding.identification = mutation.identification;
      binding.registered_at = node_.sim().Now();
      binding.decapsulates_self = mutation.decapsulates_self;
      bindings_[mutation.home_address] = binding;
      bindings_gauge_->Set(static_cast<double>(bindings_.size()));
      last_identification_[mutation.home_address] = mutation.identification;
      resync_required_.erase(mutation.home_address);
      ScheduleExpiry(mutation.home_address, binding.expires);
      if (serving()) {
        InstallServingArpState(mutation.home_address);
      }
      break;
    }
    case BindingMutation::Kind::kRemove:
      last_identification_[mutation.home_address] = mutation.identification;
      RemoveBinding(mutation.home_address, /*expired=*/false);
      break;
    case BindingMutation::Kind::kIdentification:
      last_identification_[mutation.home_address] = mutation.identification;
      resync_required_.erase(mutation.home_address);
      break;
  }
  applying_peer_state_ = false;
}

HaBindingState HomeAgent::SnapshotState() const {
  HaBindingState state;
  const Time now = node_.sim().Now();
  state.bindings.reserve(bindings_.size());
  for (const auto& [home, binding] : bindings_) {
    HaBindingState::Entry entry;
    entry.home_address = home;
    entry.care_of = binding.care_of;
    const double remaining_ms = (binding.expires - now).ToMillisF();
    const double remaining_sec = (remaining_ms + 999.0) / 1000.0;
    entry.lifetime_sec = static_cast<uint16_t>(
        std::clamp(remaining_sec, 1.0, 65535.0));
    entry.identification = binding.identification;
    entry.decapsulates_self = binding.decapsulates_self;
    state.bindings.push_back(entry);
  }
  state.identifications.reserve(last_identification_.size());
  for (const auto& [home, identification] : last_identification_) {
    state.identifications.emplace_back(home, identification);
  }
  return state;
}

void HomeAgent::AdoptState(const HaBindingState& state) {
  applying_peer_state_ = true;
  std::vector<Ipv4Address> homes;
  homes.reserve(bindings_.size());
  for (const auto& [home, binding] : bindings_) {
    homes.push_back(home);
  }
  for (Ipv4Address home : homes) {
    RemoveBinding(home, /*expired=*/false);
  }
  last_identification_.clear();
  for (const auto& [home, identification] : state.identifications) {
    last_identification_[home] = identification;
  }
  for (const auto& entry : state.bindings) {
    Binding binding;
    binding.home_address = entry.home_address;
    binding.care_of = entry.care_of;
    binding.expires = node_.sim().Now() + Seconds(entry.lifetime_sec);
    binding.identification = entry.identification;
    binding.registered_at = node_.sim().Now();
    binding.decapsulates_self = entry.decapsulates_self;
    bindings_[entry.home_address] = binding;
    ScheduleExpiry(entry.home_address, binding.expires);
    if (serving()) {
      InstallServingArpState(entry.home_address);
    }
  }
  bindings_gauge_->Set(static_cast<double>(bindings_.size()));
  // The replica's identification history supersedes the from-scratch resync:
  // a recovering agent that adopted a snapshot needs no one-shot denial.
  resync_required_.clear();
  applying_peer_state_ = false;
  MSN_INFO("mip-ha", "%s: adopted replica state (%zu bindings, %zu identifications)",
           node_.name().c_str(), state.bindings.size(), state.identifications.size());
}

void HomeAgent::InstallServingArpState(Ipv4Address home_address) {
  if (config_.home_device == nullptr) {
    return;
  }
  node_.stack().arp().AddProxyEntry(config_.home_device, home_address);
  node_.stack().arp().AddStaticEntry(home_address, config_.home_device->mac());
  node_.stack().arp().AnnounceGratuitousArp(config_.home_device, home_address);
}

void HomeAgent::RemoveServingArpState(Ipv4Address home_address) {
  if (config_.home_device == nullptr) {
    return;
  }
  node_.stack().arp().RemoveProxyEntry(config_.home_device, home_address);
  node_.stack().arp().RemoveEntry(home_address);
}

void HomeAgent::OnRegistrationDatagram(const std::vector<uint8_t>& data,
                                       const UdpSocket::Metadata& meta) {
  if (crashed_) {
    // Fail-stop: the whole host is gone; nothing answers on port 434.
    ++counters_.requests_dropped_crashed;
    return;
  }
  if (!service_available_) {
    // Down hard: no reply, no state change. The MH's retransmission and
    // backoff machinery is what recovers from this.
    ++counters_.requests_dropped_outage;
    return;
  }
  if (role_ != HaRole::kPrimary) {
    // A standby never answers registrations — doing so would let two agents
    // grant conflicting bindings (the split-brain the epoch rules forbid).
    ++counters_.requests_dropped_standby;
    return;
  }
  ++counters_.requests_received;
  auto request = RegistrationRequest::Parse(data);
  if (!request) {
    ++counters_.registrations_denied;
    return;  // Cannot even name the mobile host; drop silently.
  }
  // The registration daemon is a single server: requests queue behind the
  // one being processed. Processing takes the calibrated HA cost (the
  // paper's measured 1.48 ms).
  const Time arrival = node_.sim().Now();
  const Time start = std::max(arrival, busy_until_);
  const Duration cost = config_.calibration.ha_processing.Draw(node_.sim().rng());
  busy_until_ = start + cost;
  const double processing_ms = (busy_until_ - arrival).ToMillisF();
  processing_stats_ms_.Add(processing_ms);
  processing_histogram_->Record(processing_ms);
  // The daemon dequeues the request at `start`, updates kernel state
  // (binding, route, proxy ARP) promptly, and sends the reply once the full
  // processing cost has elapsed. Installing the binding early keeps the
  // packet-loss window short (paper: the loss interval ends when the HA
  // registers the new care-of address, not when the reply reaches the MH).
  const Time reply_at = busy_until_;
  node_.sim().ScheduleAt(start, [this, request = *request, meta, reply_at] {
    ProcessRequest(request, meta, reply_at);
  });
}

void HomeAgent::ProcessRequest(const RegistrationRequest& request,
                               const UdpSocket::Metadata& meta, Time reply_at) {
  MSN_DEBUG("mip-ha", "%s: %s", node_.name().c_str(), request.ToString().c_str());

  RegistrationReply reply;
  reply.home_address = request.home_address;
  reply.home_agent = config_.address;
  reply.identification = request.identification;
  reply.lifetime_sec = 0;

  // Validation. Explicit authorization narrows service within the home
  // subnet; it never extends it (Config: "Home addresses must fall inside
  // this subnet to be served").
  const bool known =
      config_.home_subnet.Contains(request.home_address) &&
      (authorized_.empty() || authorized_.find(request.home_address) != authorized_.end());
  const auto key = auth_keys_.find(request.home_address);
  const bool must_authenticate =
      config_.require_authentication || key != auth_keys_.end();
  if (!known) {
    reply.code = MipReplyCode::kDeniedUnknownHomeAddress;
  } else if (must_authenticate &&
             (key == auth_keys_.end() || !request.VerifyAuthenticator(key->second))) {
    reply.code = MipReplyCode::kDeniedBadAuthenticator;
  } else if (request.home_agent != config_.address) {
    reply.code = MipReplyCode::kDeniedMalformed;
  } else if (!request.IsDeregistration() &&
             (request.care_of_address.IsAny() ||
              request.care_of_address == request.home_address)) {
    // A registration must name somewhere to tunnel to; accepting an empty
    // care-of address would install a black-hole binding, and a care-of
    // equal to the home address would make the HA tunnel home-bound
    // packets back into its own intercept route forever.
    reply.code = MipReplyCode::kDeniedMalformed;
  } else if (resync_required_.erase(request.home_address) > 0) {
    // First registration after a daemon restart: deny once with a mismatch,
    // re-anchoring the replay window at this request's identification. The
    // MH's resync re-send carries a higher identification and is accepted.
    last_identification_[request.home_address] = request.identification;
    ++counters_.resync_denials;
    BindingMutation mutation;
    mutation.kind = BindingMutation::Kind::kIdentification;
    mutation.home_address = request.home_address;
    mutation.identification = request.identification;
    EmitMutation(mutation);
    reply.code = MipReplyCode::kDeniedIdentificationMismatch;
  } else {
    auto last = last_identification_.find(request.home_address);
    if (last != last_identification_.end() && request.identification <= last->second) {
      reply.code = MipReplyCode::kDeniedIdentificationMismatch;
    } else if ((request.flags & kMipFlagSimultaneous) != 0) {
      reply.code = MipReplyCode::kAcceptedNoSimultaneous;
    } else {
      reply.code = MipReplyCode::kAccepted;
    }
  }

  if (reply.accepted()) {
    last_identification_[request.home_address] = request.identification;
    if (request.IsDeregistration()) {
      ++counters_.deregistrations;
      RemoveBinding(request.home_address, /*expired=*/false);
      reply.lifetime_sec = 0;
    } else {
      const uint16_t granted =
          std::min<uint16_t>(request.lifetime_sec, config_.max_lifetime_sec);
      reply.lifetime_sec = granted;
      InstallBinding(request, granted);
    }
    ++counters_.registrations_accepted;
  } else {
    ++counters_.registrations_denied;
  }

  if (key != auth_keys_.end()) {
    reply.Authenticate(key->second);
  }
  node_.sim().ScheduleAt(reply_at, [this, reply, dst = meta.src, port = meta.src_port] {
    SendReply(reply, dst, port);
  });
}

void HomeAgent::InstallBinding(const RegistrationRequest& request,
                               uint16_t granted_lifetime_sec) {
  const Ipv4Address home = request.home_address;
  auto it = bindings_.find(home);
  const Ipv4Address old_care_of =
      it != bindings_.end() ? it->second.care_of : Ipv4Address::Any();

  const bool old_was_foreign_agent =
      it != bindings_.end() && !it->second.decapsulates_self;

  Binding binding;
  binding.home_address = home;
  binding.care_of = request.care_of_address;
  binding.expires = node_.sim().Now() + Seconds(granted_lifetime_sec);
  binding.identification = request.identification;
  binding.registered_at = node_.sim().Now();
  binding.decapsulates_self = (request.flags & kMipFlagDecapsulateSelf) != 0;
  // A binding serves exactly the home address it is keyed by, and only
  // addresses inside the served subnet ever reach this point (ProcessRequest
  // rejects the rest); a violation means tunnel traffic would be delivered
  // to the wrong mobile host.
  MSN_CHECK(binding.home_address == home);
  MSN_CHECK(config_.home_subnet.Contains(home))
      << home.ToString() << " outside " << config_.home_subnet.ToString();
  MSN_ASSERT(!binding.care_of.IsAny()) << "registration with an empty care-of address";
  bindings_[home] = binding;
  bindings_gauge_->Set(static_cast<double>(bindings_.size()));

  // Previous-FA notification: late tunnel packets still headed to the old
  // foreign agent can be forwarded to the new care-of address.
  if (config_.notify_previous_foreign_agent && old_was_foreign_agent &&
      !old_care_of.IsAny() && old_care_of != binding.care_of) {
    BindingUpdate update;
    update.home_address = home;
    update.new_care_of = binding.care_of;
    socket_->SendTo(old_care_of, kMipRegistrationPort, update.Serialize());
  }

  if (serving()) {
    // Become (or refresh as) the MH's ARP proxy and void stale neighbor
    // caches so traffic for the home address now lands on us.
    InstallServingArpState(home);
  }
  ScheduleExpiry(home, binding.expires);

  BindingMutation mutation;
  mutation.kind = BindingMutation::Kind::kInstall;
  mutation.home_address = home;
  mutation.care_of = binding.care_of;
  mutation.lifetime_sec = granted_lifetime_sec;
  mutation.identification = binding.identification;
  mutation.decapsulates_self = binding.decapsulates_self;
  EmitMutation(mutation);

  if (observer_) {
    observer_(home, old_care_of, binding.care_of);
  }
  MSN_INFO("mip-ha", "%s: binding %s -> %s (%us)", node_.name().c_str(),
           home.ToString().c_str(), binding.care_of.ToString().c_str(), granted_lifetime_sec);
}

void HomeAgent::RemoveBinding(Ipv4Address home_address, bool expired) {
  auto it = bindings_.find(home_address);
  if (it == bindings_.end()) {
    return;
  }
  const Ipv4Address old_care_of = it->second.care_of;
  bindings_.erase(it);
  bindings_gauge_->Set(static_cast<double>(bindings_.size()));
  RemoveServingArpState(home_address);
  if (expired) {
    ++counters_.bindings_expired;
  }
  BindingMutation mutation;
  mutation.kind = BindingMutation::Kind::kRemove;
  mutation.home_address = home_address;
  auto last = last_identification_.find(home_address);
  mutation.identification = last != last_identification_.end() ? last->second : 0;
  EmitMutation(mutation);
  if (observer_) {
    observer_(home_address, old_care_of, Ipv4Address::Any());
  }
  MSN_INFO("mip-ha", "%s: binding for %s removed%s", node_.name().c_str(),
           home_address.ToString().c_str(), expired ? " (expired)" : "");
}

void HomeAgent::ScheduleExpiry(Ipv4Address home_address, Time expires) {
  node_.sim().ScheduleAt(expires, [this, home_address, expires] {
    auto it = bindings_.find(home_address);
    if (it == bindings_.end() || it->second.expires > expires) {
      return;  // Removed or refreshed meanwhile.
    }
    RemoveBinding(home_address, /*expired=*/true);
  });
}

void HomeAgent::SendReply(const RegistrationReply& reply, Ipv4Address dst, uint16_t port) {
  MSN_DEBUG("mip-ha", "%s: %s -> %s:%u", node_.name().c_str(), reply.ToString().c_str(),
            dst.ToString().c_str(), port);
  socket_->SendTo(dst, port, reply.Serialize());
}

}  // namespace msn
