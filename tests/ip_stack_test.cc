// Unit tests for the host IP stack: send/receive pipelines, ARP, forwarding,
// transit filtering, ICMP, UDP sockets, and the route-lookup override hook.
#include <gtest/gtest.h>

#include "src/node/icmp.h"
#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/sim/simulator.h"

namespace msn {
namespace {

// Two hosts and a router on two segments:
//   a (10.0.0.2) --- seg0 --- router (10.0.0.1 / 10.0.1.1) --- seg1 --- b (10.0.1.2)
class StackFixture : public ::testing::Test {
 protected:
  StackFixture()
      : sim_(99),
        seg0_(sim_, "seg0", EthernetMediumParams()),
        seg1_(sim_, "seg1", EthernetMediumParams()),
        a_(sim_, "a"),
        b_(sim_, "b"),
        router_(sim_, "router") {
    a_dev_ = a_.AddEthernet("eth0", &seg0_);
    b_dev_ = b_.AddEthernet("eth0", &seg1_);
    r0_ = router_.AddEthernet("eth0", &seg0_);
    r1_ = router_.AddEthernet("eth1", &seg1_);
    for (NetDevice* dev :
         {static_cast<NetDevice*>(a_dev_), static_cast<NetDevice*>(b_dev_),
          static_cast<NetDevice*>(r0_), static_cast<NetDevice*>(r1_)}) {
      dev->ForceUp();
    }
    a_.ConfigureInterface(a_dev_, "10.0.0.2/24");
    b_.ConfigureInterface(b_dev_, "10.0.1.2/24");
    router_.ConfigureInterface(r0_, "10.0.0.1/24");
    router_.ConfigureInterface(r1_, "10.0.1.1/24");
    a_.AddDefaultRoute(Ipv4Address(10, 0, 0, 1), a_dev_);
    b_.AddDefaultRoute(Ipv4Address(10, 0, 1, 1), b_dev_);
    router_.stack().set_forwarding_enabled(true);
  }

  Simulator sim_;
  BroadcastMedium seg0_, seg1_;
  Node a_, b_, router_;
  EthernetDevice* a_dev_;
  EthernetDevice* b_dev_;
  EthernetDevice* r0_;
  EthernetDevice* r1_;
};

TEST_F(StackFixture, OnLinkDeliveryWithArp) {
  Node c(sim_, "c");
  EthernetDevice* c_dev = c.AddEthernet("eth0", &seg0_);
  c_dev->ForceUp();
  c.ConfigureInterface(c_dev, "10.0.0.3/24");

  std::vector<uint8_t> got;
  c.stack().RegisterProtocolHandler(
      IpProto::kTcp, [&](const Ipv4Header& h, const Packet& payload, NetDevice*) {
        EXPECT_EQ(h.src, Ipv4Address(10, 0, 0, 2));
        got = payload.ToVector();
      });
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 0, 3), IpProto::kTcp,
                          {1, 2, 3});
  sim_.Run();
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
  // ARP was exercised exactly once.
  EXPECT_EQ(a_.stack().arp().counters().requests_sent, 1u);
  EXPECT_TRUE(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 3)).has_value());
}

TEST_F(StackFixture, ForwardingAcrossRouter) {
  int delivered = 0;
  b_.stack().RegisterProtocolHandler(
      IpProto::kTcp, [&](const Ipv4Header& h, const Packet&, NetDevice*) {
        ++delivered;
        EXPECT_EQ(h.ttl, Ipv4Header::kDefaultTtl - 1);  // One hop.
      });
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 1, 2), IpProto::kTcp, {9});
  sim_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(router_.stack().counters().datagrams_forwarded, 1u);
}

TEST_F(StackFixture, ForwardingDisabledDrops) {
  router_.stack().set_forwarding_enabled(false);
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 1, 2), IpProto::kTcp, {9});
  sim_.Run();
  EXPECT_EQ(router_.stack().counters().drop_not_for_us, 1u);
  EXPECT_EQ(b_.stack().counters().datagrams_delivered, 0u);
}

TEST_F(StackFixture, TtlExpiryDropsPacket) {
  IpStack::SendOptions opts;
  opts.ttl = 1;
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 1, 2), IpProto::kTcp, {9},
                          opts);
  sim_.Run();
  EXPECT_EQ(router_.stack().counters().drop_ttl, 1u);
  EXPECT_EQ(b_.stack().counters().datagrams_delivered, 0u);
}

TEST_F(StackFixture, NoRouteCounted) {
  a_.stack().routes().Clear();
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(99, 9, 9, 9), IpProto::kTcp, {1});
  sim_.Run();
  EXPECT_EQ(a_.stack().counters().drop_no_route, 1u);
}

TEST_F(StackFixture, ArpFailureCounted) {
  // 10.0.0.77 does not exist: three requests then failure.
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 0, 77), IpProto::kTcp, {1});
  sim_.Run();
  EXPECT_EQ(a_.stack().counters().drop_arp_failure, 1u);
  EXPECT_EQ(a_.stack().arp().counters().requests_sent, 3u);
  EXPECT_EQ(a_.stack().arp().counters().resolutions_failed, 1u);
}

TEST_F(StackFixture, SelfAddressedDeliversLocally) {
  int delivered = 0;
  a_.stack().RegisterProtocolHandler(
      IpProto::kTcp,
      [&](const Ipv4Header&, const Packet&, NetDevice*) { ++delivered; });
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 0, 2), IpProto::kTcp, {1});
  sim_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(StackFixture, TransitFilterDropsAndSignalsAdminProhibited) {
  // Router refuses transit traffic from seg0 whose source is not 10.0.0.0/24.
  router_.stack().SetForwardFilter([&](const Ipv4Header& header, NetDevice* ingress) {
    if (ingress == r0_) {
      return Subnet::MustParse("10.0.0.0/24").Contains(header.src);
    }
    return true;
  });

  // Spoof a foreign source address from a.
  bool got_admin_prohibited = false;
  a_.stack().SetIcmpErrorHandler([&](const IcmpMessage& msg, const Ipv4Header& offending) {
    EXPECT_EQ(offending.dst, Ipv4Address(10, 0, 1, 2));
    got_admin_prohibited =
        msg.code == static_cast<uint8_t>(IcmpUnreachableCode::kAdminProhibited);
  });
  // The spoofed source must be routable back to a for the ICMP error to
  // arrive; use an address on a's own subnet... no: transit means non-local.
  // Configure an extra (home-like) address route back via seg0.
  router_.AddHostRoute(Ipv4Address(36, 135, 0, 10), Ipv4Address::Any(), r0_);
  a_.stack().ConfigureAddress(a_dev_, Ipv4Address(10, 0, 0, 2), SubnetMask(24));
  // Add the spoofed address as a second local address on a separate device so
  // the ICMP error can be delivered. Simpler: send with explicit source and
  // watch the router counter instead.
  a_.stack().SendDatagram(Ipv4Address(36, 135, 0, 10), Ipv4Address(10, 0, 1, 2), IpProto::kTcp,
                          {1});
  sim_.Run();
  EXPECT_EQ(router_.stack().counters().drop_filtered, 1u);
  EXPECT_EQ(router_.stack().counters().icmp_errors_sent, 1u);
  (void)got_admin_prohibited;  // Delivery of the error needs 36.135.0.10 local.
  EXPECT_EQ(b_.stack().counters().datagrams_delivered, 0u);
}

TEST_F(StackFixture, RouteOverrideRedirectsAndRewritesSource) {
  // An override that forces everything to b via the router with a fixed
  // source — a miniature of what mobile IP does.
  a_.stack().SetRouteLookupOverride(
      [&](const RouteQuery& query) -> std::optional<RouteDecision> {
        if (query.dst == Ipv4Address(10, 0, 1, 2) && query.src_hint.IsAny()) {
          RouteDecision d;
          d.device = a_dev_;
          d.src = Ipv4Address(10, 0, 0, 2);
          d.next_hop = Ipv4Address(10, 0, 0, 1);
          return d;
        }
        return std::nullopt;
      });
  int delivered = 0;
  b_.stack().RegisterProtocolHandler(
      IpProto::kTcp, [&](const Ipv4Header& h, const Packet&, NetDevice*) {
        EXPECT_EQ(h.src, Ipv4Address(10, 0, 0, 2));
        ++delivered;
      });
  a_.stack().routes().Clear();  // Only the override can route now.
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 1, 2), IpProto::kTcp, {1});
  sim_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(StackFixture, UnknownProtocolCounted) {
  a_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(10, 0, 0, 2),
                          static_cast<IpProto>(200), {1});
  sim_.Run();
  EXPECT_EQ(a_.stack().counters().drop_no_handler, 1u);
}

TEST_F(StackFixture, InterfaceAccessors) {
  EXPECT_TRUE(a_.stack().IsLocalAddress(Ipv4Address(10, 0, 0, 2)));
  EXPECT_FALSE(a_.stack().IsLocalAddress(Ipv4Address(10, 0, 0, 3)));
  EXPECT_EQ(a_.stack().GetInterfaceAddress(a_dev_), Ipv4Address(10, 0, 0, 2));
  auto subnet = a_.stack().GetInterfaceSubnet(a_dev_);
  ASSERT_TRUE(subnet.has_value());
  EXPECT_EQ(subnet->ToString(), "10.0.0.0/24");
  a_.stack().UnconfigureAddress(a_dev_);
  EXPECT_FALSE(a_.stack().GetInterfaceAddress(a_dev_).has_value());
  EXPECT_FALSE(a_.stack().IsLocalAddress(Ipv4Address(10, 0, 0, 2)));
}

TEST_F(StackFixture, ReconfigureReplacesConnectedRoute) {
  const size_t before = a_.stack().routes().size();
  a_.stack().ConfigureAddress(a_dev_, Ipv4Address(10, 0, 0, 9), SubnetMask(24));
  EXPECT_EQ(a_.stack().routes().size(), before);  // Replaced, not added.
  EXPECT_TRUE(a_.stack().IsLocalAddress(Ipv4Address(10, 0, 0, 9)));
  EXPECT_FALSE(a_.stack().IsLocalAddress(Ipv4Address(10, 0, 0, 2)));
}

// --- UDP socket behaviour ----------------------------------------------------------

TEST_F(StackFixture, UdpRoundTrip) {
  UdpSocket server(b_.stack());
  ASSERT_TRUE(server.Bind(5000));
  std::vector<uint8_t> got;
  Ipv4Address got_src;
  server.SetReceiveHandler([&](const std::vector<uint8_t>& data,
                               const UdpSocket::Metadata& meta) {
    got = data;
    got_src = meta.src;
    server.SendTo(meta.src, meta.src_port, {'o', 'k'});
  });

  UdpSocket client(a_.stack());
  std::vector<uint8_t> reply;
  client.SetReceiveHandler(
      [&](const std::vector<uint8_t>& data, const UdpSocket::Metadata&) { reply = data; });
  client.SendTo(Ipv4Address(10, 0, 1, 2), 5000, {'h', 'i'});
  sim_.Run();
  EXPECT_EQ(got, (std::vector<uint8_t>{'h', 'i'}));
  EXPECT_EQ(got_src, Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(reply, (std::vector<uint8_t>{'o', 'k'}));
}

TEST_F(StackFixture, UdpToClosedPortSignalsUnreachable) {
  bool port_unreachable = false;
  a_.stack().SetIcmpErrorHandler([&](const IcmpMessage& msg, const Ipv4Header&) {
    port_unreachable =
        msg.code == static_cast<uint8_t>(IcmpUnreachableCode::kPortUnreachable);
  });
  UdpSocket client(a_.stack());
  client.SendTo(Ipv4Address(10, 0, 1, 2), 4321, {1});
  sim_.Run();
  EXPECT_TRUE(port_unreachable);
}

TEST_F(StackFixture, UdpBoundSourceAddressSelectsSocket) {
  // Two sockets on the same port: one bound to the address, one wildcard.
  UdpSocket bound(b_.stack()), wildcard(b_.stack());
  ASSERT_TRUE(bound.Bind(6000));
  ASSERT_TRUE(wildcard.Bind(6000));
  bound.BindSourceAddress(Ipv4Address(10, 0, 1, 2));
  int bound_got = 0, wildcard_got = 0;
  bound.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++bound_got; });
  wildcard.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++wildcard_got; });

  UdpSocket client(a_.stack());
  client.SendTo(Ipv4Address(10, 0, 1, 2), 6000, {1});
  sim_.Run();
  EXPECT_EQ(bound_got, 1);
  EXPECT_EQ(wildcard_got, 0);
}

TEST_F(StackFixture, EphemeralPortsAreUnique) {
  UdpSocket s1(a_.stack()), s2(a_.stack());
  ASSERT_TRUE(s1.Bind(0));
  ASSERT_TRUE(s2.Bind(0));
  EXPECT_NE(s1.local_port(), 0);
  EXPECT_NE(s1.local_port(), s2.local_port());
}

// --- Pinger ------------------------------------------------------------------------

TEST_F(StackFixture, PingAcrossRouter) {
  Pinger pinger(a_.stack());
  bool replied = false;
  pinger.Ping(Ipv4Address(10, 0, 1, 2), Seconds(2), [&](const Pinger::Result& r) {
    replied = r.success;
    EXPECT_GT(r.rtt.nanos(), 0);
    EXPECT_EQ(r.responder, Ipv4Address(10, 0, 1, 2));
  });
  sim_.Run();
  EXPECT_TRUE(replied);
  EXPECT_EQ(b_.stack().counters().icmp_echo_replies_sent, 1u);
}

TEST_F(StackFixture, PingTimeoutFires) {
  Pinger pinger(a_.stack());
  bool completed = false;
  pinger.Ping(Ipv4Address(10, 0, 3, 99), Milliseconds(500), [&](const Pinger::Result& r) {
    completed = true;
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.admin_prohibited);
  });
  sim_.RunFor(Seconds(5));
  EXPECT_TRUE(completed);
  EXPECT_EQ(pinger.outstanding(), 0);
}

TEST_F(StackFixture, ConcurrentPingersDemultiplex) {
  Pinger p1(a_.stack()), p2(a_.stack());
  int done = 0;
  p1.Ping(Ipv4Address(10, 0, 1, 2), Seconds(2), [&](const Pinger::Result& r) {
    EXPECT_TRUE(r.success);
    ++done;
  });
  p2.Ping(Ipv4Address(10, 0, 0, 1), Seconds(2), [&](const Pinger::Result& r) {
    EXPECT_TRUE(r.success);
    ++done;
  });
  sim_.Run();
  EXPECT_EQ(done, 2);
}

// A destination-unreachable error whose embedded echo request names a seq the
// pinger no longer (or never) tracked falls back to the oldest outstanding
// probe, ties broken by lowest seq. Regression for an iteration-order leak:
// outstanding_ was an unordered_map, so with two probes sent in the same
// event the completed seq depended on hash-bucket order (found by
// msn_analyze's determinism/unordered-iteration rule).
TEST_F(StackFixture, StaleUnreachableFallsBackToOldestProbeLowestSeq) {
  Pinger pinger(a_.stack());
  std::vector<std::pair<uint16_t, bool>> completions;  // (seq, admin_prohibited)
  auto record = [&](const Pinger::Result& r) {
    completions.emplace_back(r.seq, r.admin_prohibited);
  };
  // Two probes to silent hosts, sent in the same event => identical sent_at.
  pinger.Ping(Ipv4Address(10, 0, 0, 80), Seconds(10), record);
  pinger.Ping(Ipv4Address(10, 0, 0, 81), Seconds(10), record);

  // A router-style unreachable that embeds one of our echo requests but a
  // stale sequence number (777): the pinger cannot match it and must fall
  // back deterministically.
  IcmpMessage err;
  err.type = IcmpType::kDestinationUnreachable;
  err.code = static_cast<uint8_t>(IcmpUnreachableCode::kAdminProhibited);
  Ipv4Header offending;
  offending.protocol = IpProto::kIcmp;
  offending.src = Ipv4Address(10, 0, 0, 2);
  offending.dst = Ipv4Address(10, 0, 0, 80);
  ByteWriter w;
  offending.Serialize(w);
  w.WriteU8(static_cast<uint8_t>(IcmpType::kEchoRequest));
  w.WriteU8(0);
  w.WriteU16(0);  // Inner checksum (not verified inside error payloads).
  w.WriteU16(pinger.echo_id());
  w.WriteU16(777);  // Stale seq: matches no outstanding probe.
  err.payload = w.Take();
  sim_.Schedule(Seconds(1), [&] { b_.stack().SendIcmp(Ipv4Address(10, 0, 0, 2), err); });

  sim_.RunFor(Seconds(2));
  // Exactly the first probe (oldest, lowest seq among the tie) completed.
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].first, 1);
  EXPECT_TRUE(completions[0].second);
  EXPECT_EQ(pinger.outstanding(), 1);

  sim_.RunFor(Seconds(10));  // The survivor times out normally.
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[1].first, 2);
  EXPECT_FALSE(completions[1].second);
}

// Same-seed byte-identical check for the scenario above: two independent runs
// must produce the same completion log, byte for byte. Guards the fuzzer's
// replay/shrinking contract (DESIGN.md §13) against probe-completion order
// regressing into a hash-order dependency.
TEST(PingerDeterminismTest, StaleErrorFallbackIsByteIdenticalAcrossRuns) {
  auto run_once = [] {
    Simulator sim(1234);
    BroadcastMedium seg(sim, "seg0", EthernetMediumParams());
    Node a(sim, "a"), b(sim, "b");
    EthernetDevice* a_dev = a.AddEthernet("eth0", &seg);
    EthernetDevice* b_dev = b.AddEthernet("eth0", &seg);
    a_dev->ForceUp();
    b_dev->ForceUp();
    a.ConfigureInterface(a_dev, "10.0.0.2/24");
    b.ConfigureInterface(b_dev, "10.0.0.3/24");

    Pinger pinger(a.stack());
    std::string log;
    auto record = [&](const Pinger::Result& r) {
      log += "t=" + std::to_string(sim.Now().nanos()) + " seq=" + std::to_string(r.seq) +
             " admin=" + std::to_string(r.admin_prohibited) + ";";
    };
    pinger.Ping(Ipv4Address(10, 0, 0, 80), Seconds(10), record);
    pinger.Ping(Ipv4Address(10, 0, 0, 81), Seconds(10), record);

    IcmpMessage err;
    err.type = IcmpType::kDestinationUnreachable;
    err.code = static_cast<uint8_t>(IcmpUnreachableCode::kAdminProhibited);
    Ipv4Header offending;
    offending.protocol = IpProto::kIcmp;
    offending.src = Ipv4Address(10, 0, 0, 2);
    offending.dst = Ipv4Address(10, 0, 0, 80);
    ByteWriter w;
    offending.Serialize(w);
    w.WriteU8(static_cast<uint8_t>(IcmpType::kEchoRequest));
    w.WriteU8(0);
    w.WriteU16(0);
    w.WriteU16(pinger.echo_id());
    w.WriteU16(777);
    err.payload = w.Take();
    sim.Schedule(Seconds(1), [&] { b.stack().SendIcmp(Ipv4Address(10, 0, 0, 2), err); });
    sim.RunFor(Seconds(15));
    return log;
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  // The stale error must complete seq 1 (oldest tie, lowest seq) first.
  EXPECT_EQ(first.find("seq=1 admin=1"), first.find("seq="));
}

// --- Broadcast ----------------------------------------------------------------------

TEST_F(StackFixture, LimitedBroadcastReachesSegment) {
  Node c(sim_, "c");
  EthernetDevice* c_dev = c.AddEthernet("eth0", &seg0_);
  c_dev->ForceUp();
  c.ConfigureInterface(c_dev, "10.0.0.3/24");

  UdpSocket listener(c.stack());
  ASSERT_TRUE(listener.Bind(999));
  int got = 0;
  listener.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++got; });

  UdpSocket sender(a_.stack());
  UdpSocket::SendExtras extras;
  extras.force_device = a_dev_;
  extras.force_broadcast_mac = true;
  sender.SendToWithExtras(Ipv4Address::Broadcast(), 999, {1}, extras);
  sim_.Run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace msn
