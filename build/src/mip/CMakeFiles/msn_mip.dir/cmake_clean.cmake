file(REMOVE_RECURSE
  "CMakeFiles/msn_mip.dir/foreign_agent.cc.o"
  "CMakeFiles/msn_mip.dir/foreign_agent.cc.o.d"
  "CMakeFiles/msn_mip.dir/home_agent.cc.o"
  "CMakeFiles/msn_mip.dir/home_agent.cc.o.d"
  "CMakeFiles/msn_mip.dir/ipip.cc.o"
  "CMakeFiles/msn_mip.dir/ipip.cc.o.d"
  "CMakeFiles/msn_mip.dir/messages.cc.o"
  "CMakeFiles/msn_mip.dir/messages.cc.o.d"
  "CMakeFiles/msn_mip.dir/mobile_host.cc.o"
  "CMakeFiles/msn_mip.dir/mobile_host.cc.o.d"
  "CMakeFiles/msn_mip.dir/movement_detector.cc.o"
  "CMakeFiles/msn_mip.dir/movement_detector.cc.o.d"
  "CMakeFiles/msn_mip.dir/policy_table.cc.o"
  "CMakeFiles/msn_mip.dir/policy_table.cc.o.d"
  "CMakeFiles/msn_mip.dir/vif.cc.o"
  "CMakeFiles/msn_mip.dir/vif.cc.o.d"
  "libmsn_mip.a"
  "libmsn_mip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
