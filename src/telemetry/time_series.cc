#include "src/telemetry/time_series.h"

#include <algorithm>
#include <cstdio>

namespace msn {

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, const MetricsRegistry& registry,
                                     Duration interval)
    : sim_(sim), registry_(registry), interval_(interval) {
  task_ = std::make_unique<PeriodicTask>(sim_, interval_, [this] { Sample(); });
}

TimeSeriesSampler::~TimeSeriesSampler() = default;

void TimeSeriesSampler::Watch(const std::string& metric_name) {
  for (const Series& s : series_) {
    if (s.metric == metric_name) {
      return;
    }
  }
  series_.push_back(Series{metric_name, {}});
}

void TimeSeriesSampler::WatchAll() {
  for (const std::string& name : registry_.Names()) {
    Watch(name);
  }
}

void TimeSeriesSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Sample();
  task_->Start();
}

void TimeSeriesSampler::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  task_->Stop();
}

void TimeSeriesSampler::Sample() {
  const Time now = sim_.Now();
  for (Series& s : series_) {
    const std::optional<double> v = registry_.ReadValue(s.metric);
    s.points.push_back(Point{now, v.value_or(0.0)});
  }
}

std::string TimeSeriesSampler::ToCsv() const {
  std::string out = "t_ms";
  for (const Series& s : series_) {
    out += ',';
    out += s.metric;
  }
  out += '\n';
  if (series_.empty()) {
    return out;
  }
  // All series sample together, so every series has the same tick count.
  const size_t rows = series_.front().points.size();
  char buf[32];
  for (size_t i = 0; i < rows; ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f", series_.front().points[i].t.ToMillisF());
    out += buf;
    for (const Series& s : series_) {
      out += ',';
      out += FormatMetricValue(i < s.points.size() ? s.points[i].value : 0.0);
    }
    out += '\n';
  }
  return out;
}

}  // namespace msn
