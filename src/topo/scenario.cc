#include "src/topo/scenario.h"

#include <cstdio>

namespace msn {

const char* MovementScript::KindName(Kind kind) {
  switch (kind) {
    case Kind::kGoHome:
      return "go-home";
    case Kind::kWiredCold:
      return "wired-cold";
    case Kind::kWiredHot:
      return "wired-hot";
    case Kind::kWirelessCold:
      return "wireless-cold";
    case Kind::kWirelessHot:
      return "wireless-hot";
    case Kind::kAddressSwitch:
      return "address-switch";
  }
  return "?";
}

std::string MovementScript::Outcome::Description() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%.2fs %-14s idx=%u -> %s (%.2f ms)",
                static_cast<double>(step.at.nanos()) * 1e-9, KindName(step.kind),
                step.host_index,
                !completed ? "pending" : (success ? "ok" : "FAILED"),
                timeline.Total().ToMillisF());
  return buf;
}

MovementScript& MovementScript::Add(Duration at, Kind kind, uint32_t host_index) {
  steps_.push_back(Step{at, kind, host_index});
  return *this;
}

void MovementScript::Execute(size_t index) {
  Outcome& outcome = outcomes_[index];
  outcome.fired_at = tb_.sim.Now();
  auto done = [this, index](bool ok) {
    Outcome& o = outcomes_[index];
    o.completed = true;
    o.success = ok;
    o.timeline = tb_.mobile->last_timeline();
  };

  const Step& step = outcome.step;
  switch (step.kind) {
    case Kind::kGoHome:
      tb_.MoveMhEthernetTo(tb_.net135.get());
      tb_.mobile->AttachHome(done);
      return;
    case Kind::kWiredCold:
      tb_.MoveMhEthernetTo(tb_.net8.get());
      tb_.mobile->ColdSwitchTo(tb_.WiredAttachment(step.host_index), done);
      return;
    case Kind::kWiredHot:
      tb_.MoveMhEthernetTo(tb_.net8.get());
      tb_.mobile->HotSwitchTo(tb_.WiredAttachment(step.host_index), done);
      return;
    case Kind::kWirelessCold:
      tb_.mobile->ColdSwitchTo(tb_.WirelessAttachment(step.host_index), done);
      return;
    case Kind::kWirelessHot:
      tb_.mobile->HotSwitchTo(tb_.WirelessAttachment(step.host_index), done);
      return;
    case Kind::kAddressSwitch: {
      // Stay on the current subnet, new host index.
      const auto& att = tb_.mobile->attachment();
      const Subnet subnet(att.care_of, att.mask);
      tb_.mobile->SwitchCareOfAddress(subnet.HostAt(step.host_index), done);
      return;
    }
  }
}

const std::vector<MovementScript::Outcome>& MovementScript::Run(Duration until) {
  outcomes_.clear();
  outcomes_.reserve(steps_.size());
  for (const Step& step : steps_) {
    Outcome outcome;
    outcome.step = step;
    outcomes_.push_back(outcome);
  }
  if (faults_ != nullptr) {
    faults_->Arm(tb_.sim);
  }
  for (size_t i = 0; i < steps_.size(); ++i) {
    tb_.sim.Schedule(steps_[i].at, [this, i] { Execute(i); });
  }
  tb_.RunFor(until);
  return outcomes_;
}

int MovementScript::successes() const {
  int n = 0;
  for (const Outcome& o : outcomes_) {
    n += (o.completed && o.success) ? 1 : 0;
  }
  return n;
}

int MovementScript::failures() const {
  int n = 0;
  for (const Outcome& o : outcomes_) {
    n += (o.completed && !o.success) ? 1 : 0;
  }
  return n;
}

}  // namespace msn
