#include "src/tracing/probe.h"
#include "src/util/assert.h"

#include "src/util/byte_buffer.h"

namespace msn {

ProbeEchoServer::ProbeEchoServer(Node& node, uint16_t port) {
  socket_ = std::make_unique<UdpSocket>(node.stack());
  MSN_CHECK(socket_->Bind(port)) << "probe sink port " << port;
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        ++echoes_sent_;
        socket_->SendTo(meta.src, meta.src_port, data);
      });
}

ProbeSender::ProbeSender(Node& node, Config config) : node_(node), config_(config) {
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(0)) << "probe source ephemeral port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        (void)meta;
        OnEcho(data);
      });
  task_ = std::make_unique<PeriodicTask>(node_.sim(), config_.interval, [this] { SendProbe(); });
}

ProbeSender::~ProbeSender() = default;

void ProbeSender::Start() {
  SendProbe();  // First probe immediately; then one per interval.
  task_->Start();
}

void ProbeSender::Stop() { task_->Stop(); }

void ProbeSender::SendProbe() {
  const uint32_t seq = next_seq_++;
  records_[seq] = ProbeRecord{node_.sim().Now(), std::nullopt};
  ByteWriter w(12);
  w.WriteU32(seq);
  w.WriteU64(static_cast<uint64_t>(node_.sim().Now().nanos()));
  socket_->SendTo(config_.target, config_.port, w.Take());
}

void ProbeSender::OnEcho(const std::vector<uint8_t>& data) {
  ByteReader r(data);
  const uint32_t seq = r.ReadU32();
  if (!r.ok()) {
    return;
  }
  auto it = records_.find(seq);
  if (it == records_.end() || it->second.echoed_at.has_value()) {
    return;  // Unknown or duplicate echo.
  }
  it->second.echoed_at = node_.sim().Now();
  ++received_;
}

uint64_t ProbeSender::TotalLost() const {
  uint64_t lost = 0;
  for (const auto& [seq, rec] : records_) {
    if (!rec.echoed_at.has_value()) {
      ++lost;
    }
  }
  return lost;
}

uint64_t ProbeSender::LostInWindow(Time from, Time to) const {
  uint64_t lost = 0;
  for (const auto& [seq, rec] : records_) {
    if (rec.sent_at >= from && rec.sent_at < to && !rec.echoed_at.has_value()) {
      ++lost;
    }
  }
  return lost;
}

std::vector<Duration> ProbeSender::RttsInWindow(Time from, Time to) const {
  std::vector<Duration> rtts;
  for (const auto& [seq, rec] : records_) {
    if (rec.sent_at >= from && rec.sent_at < to && rec.echoed_at.has_value()) {
      rtts.push_back(rec.Rtt());
    }
  }
  return rtts;
}

}  // namespace msn
