// Movement detection and automatic interface selection — the paper's §6
// future work ("we plan to experiment with techniques for determining when
// to switch between networks") made concrete.
//
// The detector monitors the reachability of each candidate attachment's
// gateway with periodic pings and keeps an exponentially weighted loss
// estimate per link. Policy:
//
//   * every candidate has a static preference (wired beats wireless);
//   * the detector switches to the best *usable* candidate — hot switch if
//     the target device is already up, cold switch otherwise;
//   * hysteresis: a link must stay good (or bad) for several consecutive
//     probes before triggering a switch, so a single dropped radio frame
//     does not bounce the host between networks.
//
// It also exposes the paper's other §6 idea: upper layers can subscribe to
// attachment changes and learn the new link's characteristics (bandwidth,
// probe RTT) to adapt their behaviour.
#ifndef MSN_SRC_MIP_MOVEMENT_DETECTOR_H_
#define MSN_SRC_MIP_MOVEMENT_DETECTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mip/mobile_host.h"
#include "src/node/icmp.h"
#include "src/telemetry/metrics.h"

namespace msn {

// What upper layers learn when connectivity changes (paper §6: "Bandwidth,
// latency, bit error rates ... can all differ significantly from one type
// of network to another").
struct LinkCharacteristics {
  std::string device_name;
  uint64_t bandwidth_bps = 0;
  Duration last_probe_rtt;
  double loss_estimate = 0.0;  // EWMA in [0, 1].
};

class MovementDetector {
 public:
  struct Candidate {
    MobileHost::Attachment attachment;
    // Higher wins among usable candidates (e.g. wired 10, radio 1).
    int preference = 0;
  };

  struct Config {
    Duration probe_interval = Milliseconds(500);
    Duration probe_timeout = Milliseconds(400);
    // EWMA weight of the newest probe result.
    double ewma_alpha = 0.3;
    // A link is usable below this loss estimate, dead above.
    double usable_threshold = 0.4;
    // Consecutive probe rounds a change must persist before switching.
    int hysteresis_rounds = 3;
    // Switch to a higher-preference link when it becomes usable (not just
    // when the current one dies).
    bool upgrade_when_available = true;
    // Debounce: after any switch completes, suppress further switches for
    // this long. A short link blackout then rides out on retransmission
    // instead of triggering a spurious (and expensive) cold switch.
    Duration switch_cooldown = Seconds(2);
    // Ping-pong guard: once attached, stay on the cell at least this long
    // before any *voluntary* switch (upgrade, or failover while the current
    // device is still physically up). A host parked exactly at the
    // usable-threshold boundary otherwise oscillates between two cells on
    // every EWMA wiggle. Zero disables the guard. Blind failover off a
    // device that is actually down is always exempt.
    Duration min_residency;
    // Signal-aware policy (fed by MobilityDriver::ReportSignal): when on, a
    // link whose last reported RSSI is below rssi_floor_dbm counts as
    // unusable even while its probes still succeed, so the detector hands
    // off *before* walking out of coverage.
    bool use_signal = false;
    double rssi_floor_dbm = -85.0;
    // Optional: per-link loss/RTT/RSSI gauges under "mh.movedet.*".
    MetricsRegistry* metrics = nullptr;
  };

  using AttachmentChangeHandler =
      std::function<void(const LinkCharacteristics& now_using, bool registered)>;

  MovementDetector(MobileHost& mobile, Config config);
  ~MovementDetector();

  MovementDetector(const MovementDetector&) = delete;
  MovementDetector& operator=(const MovementDetector&) = delete;

  void AddCandidate(const Candidate& candidate);
  void Start();
  void Stop();

  // Upper-layer notification hook (paper §6).
  void SetAttachmentChangeHandler(AttachmentChangeHandler handler) {
    change_handler_ = std::move(handler);
  }

  // Loss estimate for a candidate's device, by name. Returns 1.0 if unknown.
  double LossEstimate(const std::string& device_name) const;
  const Candidate* current() const { return current_; }

  // Signal feed (typically from the mobility driver): latest RSSI for a
  // candidate's device. Unknown device names are ignored.
  void ReportSignal(const std::string& device_name, double rssi_dbm);

  struct Counters {
    uint64_t probes_sent = 0;
    uint64_t switches = 0;
    uint64_t upgrades = 0;
    uint64_t failovers = 0;
    // Switches vetoed by the post-switch cooldown window.
    uint64_t suppressed_switches = 0;
    // Voluntary switches vetoed by the min_residency ping-pong guard.
    uint64_t pingpong_suppressed = 0;
    // Re-attachments through the current link after a registration timeout
    // left the MH detached (the protocol itself never retries).
    uint64_t reattaches = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Tracked {
    Candidate candidate;
    std::unique_ptr<Pinger> pinger;
    double loss_ewma = 1.0;  // Pessimistic until proven reachable.
    Duration last_rtt;
    int rounds_usable = 0;
    int rounds_dead = 0;
    bool probe_outstanding = false;
    double rssi_dbm = 0.0;
    bool have_rssi = false;
  };

  void ProbeRound();
  void Evaluate();
  void SwitchTo(Tracked& target, bool upgrade);
  bool IsUsable(const Tracked& t) const {
    if (config_.use_signal && t.have_rssi && t.rssi_dbm < config_.rssi_floor_dbm) {
      return false;  // Fading signal marks the link unusable pre-emptively.
    }
    return t.loss_ewma < config_.usable_threshold;
  }
  LinkCharacteristics Characterize(const Tracked& t) const;

  MobileHost& mobile_;
  Config config_;
  std::vector<std::unique_ptr<Tracked>> tracked_;
  Candidate* current_ = nullptr;
  std::unique_ptr<PeriodicTask> task_;
  AttachmentChangeHandler change_handler_;
  Counters counters_;
  bool switching_ = false;
  // Evaluate() will not switch again before this instant.
  Time cooldown_until_;
  // When the current attachment completed; anchors the min_residency guard.
  Time attached_since_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_MOVEMENT_DETECTOR_H_
