#include "src/mobility/link_quality.h"

#include <algorithm>
#include <cmath>

namespace msn {
namespace {

// Position of `distance_m` across the [good, range_m] ramp, clamped to [0, 1].
double RampFraction(const RadioParams& params, double distance_m) {
  const double good = params.range_m * std::clamp(params.good_range_fraction, 0.0, 1.0);
  if (distance_m <= good) {
    return 0.0;
  }
  if (params.range_m <= good) {
    return 1.0;  // Degenerate ramp: hard coverage edge.
  }
  return std::clamp((distance_m - good) / (params.range_m - good), 0.0, 1.0);
}

}  // namespace

double RssiDbm(const RadioParams& params, double distance_m) {
  const double d = std::max(distance_m, 1.0);
  return params.tx_power_dbm - params.reference_loss_db -
         10.0 * params.path_loss_exponent * std::log10(d);
}

double LossAtDistance(const RadioParams& params, double distance_m) {
  if (distance_m >= params.range_m) {
    return 1.0;
  }
  const double u = RampFraction(params, distance_m);
  return u * u * (3.0 - 2.0 * u);  // Smoothstep: monotone, C1 at both ends.
}

Duration LatencyAtDistance(const RadioParams& params, double distance_m) {
  return MillisecondsF(params.edge_latency.ToMillisF() * RampFraction(params, distance_m));
}

}  // namespace msn
