# Empty dependencies file for bench_addr_switch.
# This may be replaced when dependencies are built.
