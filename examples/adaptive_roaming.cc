// Adaptive roaming: the paper's §6 future work in action.
//
//  * A MovementDetector monitors both interfaces and switches automatically:
//    when the wired network dies the host fails over to the radio; when the
//    wire returns it upgrades back. ("We plan to experiment with techniques
//    for determining when to switch between networks.")
//  * A telemetry application subscribes to attachment-change notifications
//    and adapts its send rate to the new link's bandwidth — the paper's
//    proposal to "inform upper-layer network protocols and some applications
//    of these changes so they can adjust their behaviors accordingly".
//  * A PacketCapture on the mobile host records the hand-offs to a .pcap
//    file you can open in Wireshark.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/mip/movement_detector.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/tracing/pcap.h"
#include "src/util/assert.h"

using namespace msn;

int main() {
  std::printf("=== Adaptive roaming: automatic interface selection (paper S6) ===\n\n");

  Testbed tb;
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  tb.ForceRadioUp();
  tb.mh->stack().ConfigureAddress(tb.mh_radio, Ipv4Address(36, 134, 0, 70), SubnetMask(16));

  // Telemetry sink on the correspondent.
  UdpSocket sink(tb.ch->stack());
  MSN_CHECK(sink.Bind(5555));
  uint64_t received = 0;
  sink.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++received; });

  // Telemetry source on the mobile host (unbound socket: home role).
  UdpSocket reporter(tb.mh->stack());
  MSN_CHECK(reporter.Bind(0));
  Duration report_interval = Milliseconds(100);
  uint64_t reports_sent = 0;
  std::unique_ptr<PeriodicTask> report_task;
  auto restart_reporting = [&](Duration interval) {
    report_interval = interval;
    report_task = std::make_unique<PeriodicTask>(tb.sim, interval, [&] {
      ++reports_sent;
      reporter.SendTo(tb.ch_address(), 5555, std::vector<uint8_t>(100, 0x42));
    });
    report_task->Start();
  };
  restart_reporting(Milliseconds(100));

  // Movement detection with upper-layer notification.
  MovementDetector::Config mc;
  mc.probe_interval = Milliseconds(500);
  mc.hysteresis_rounds = 3;
  MovementDetector detector(*tb.mobile, mc);
  detector.AddCandidate({tb.WiredAttachment(50), /*preference=*/10});
  detector.AddCandidate({tb.WirelessAttachment(70), /*preference=*/1});
  detector.SetAttachmentChangeHandler([&](const LinkCharacteristics& link, bool registered) {
    std::printf("  [detector] now on %s (%.0f kb/s, probe RTT %.1f ms, registered=%s)\n",
                link.device_name.c_str(), static_cast<double>(link.bandwidth_bps) / 1000.0,
                link.last_probe_rtt.ToMillisF(), registered ? "yes" : "no");
    // Paper S6: the application adapts to the new link's characteristics.
    const double reports_per_sec = std::max(
        0.5, static_cast<double>(link.bandwidth_bps) * 0.02 / (100.0 * 8.0));
    std::printf("  [telemetry] adapting rate: %.1f reports/s\n", reports_per_sec);
    restart_reporting(SecondsF(1.0 / reports_per_sec));
  });
  detector.Start();

  // Capture the hand-offs.
  PacketCapture capture;
  capture.Attach(tb.sim, tb.mh_eth);
  capture.Attach(tb.sim, tb.mh_radio);

  std::printf("t=0s: on the wire, telemetry at 10 reports/s\n");
  tb.RunFor(Seconds(5));

  std::printf("\nt=5s: the wired network fails (cable yanked)...\n");
  tb.MoveMhEthernetTo(nullptr);
  tb.RunFor(Seconds(15));

  std::printf("\nt=20s: the wired network returns...\n");
  tb.MoveMhEthernetTo(tb.net8.get());
  tb.RunFor(Seconds(15));

  std::printf("\nResults after 35 s:\n");
  std::printf("  switches: %llu (failovers %llu, upgrades %llu), probes %llu\n",
              static_cast<unsigned long long>(detector.counters().switches),
              static_cast<unsigned long long>(detector.counters().failovers),
              static_cast<unsigned long long>(detector.counters().upgrades),
              static_cast<unsigned long long>(detector.counters().probes_sent));
  std::printf("  telemetry: %llu sent, %llu received at the sink\n",
              static_cast<unsigned long long>(reports_sent),
              static_cast<unsigned long long>(received));
  std::printf("  final link: %s; loss estimates eth0=%.2f strip0=%.2f\n",
              tb.mobile->attachment().device->name().c_str(),
              detector.LossEstimate("eth0"), detector.LossEstimate("strip0"));

  const std::string pcap_path = "/tmp/mosquitonet_roaming.pcap";
  if (capture.WritePcapFile(pcap_path)) {
    std::printf("  packet capture: %zu frames written to %s (open in Wireshark)\n",
                capture.size(), pcap_path.c_str());
  }
  std::printf("\nNo operator intervention: detection, switching, registration, and\n"
              "application adaptation were all automatic.\n");
  return 0;
}
