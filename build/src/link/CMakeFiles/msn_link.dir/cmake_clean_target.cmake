file(REMOVE_RECURSE
  "libmsn_link.a"
)
