# Empty dependencies file for bench_ha_scaling.
# This may be replaced when dependencies are built.
