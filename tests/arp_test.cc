// Unit tests for ARP: resolution, retries, proxy ARP, gratuitous ARP, and
// cache maintenance — the mechanisms the home agent's interception relies on.
#include <gtest/gtest.h>

#include "src/node/node.h"
#include "src/sim/simulator.h"

namespace msn {
namespace {

class ArpFixture : public ::testing::Test {
 protected:
  ArpFixture()
      : sim_(3), seg_(sim_, "seg", EthernetMediumParams()), a_(sim_, "a"), b_(sim_, "b"),
        c_(sim_, "c") {
    a_dev_ = a_.AddEthernet("eth0", &seg_);
    b_dev_ = b_.AddEthernet("eth0", &seg_);
    c_dev_ = c_.AddEthernet("eth0", &seg_);
    for (NetDevice* dev : {static_cast<NetDevice*>(a_dev_), static_cast<NetDevice*>(b_dev_),
                           static_cast<NetDevice*>(c_dev_)}) {
      dev->ForceUp();
    }
    a_.ConfigureInterface(a_dev_, "10.0.0.1/24");
    b_.ConfigureInterface(b_dev_, "10.0.0.2/24");
    c_.ConfigureInterface(c_dev_, "10.0.0.3/24");
  }

  Simulator sim_;
  BroadcastMedium seg_;
  Node a_, b_, c_;
  EthernetDevice* a_dev_;
  EthernetDevice* b_dev_;
  EthernetDevice* c_dev_;
};

TEST_F(ArpFixture, BasicResolution) {
  std::optional<MacAddress> resolved;
  a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 2),
                           [&](std::optional<MacAddress> mac) { resolved = mac; });
  sim_.Run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, b_dev_->mac());
  // And the responder learned the requester's mapping (it was the target).
  EXPECT_EQ(b_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 1)), a_dev_->mac());
}

TEST_F(ArpFixture, CachedResolutionIsSynchronous) {
  a_.stack().arp().AddStaticEntry(Ipv4Address(10, 0, 0, 2), b_dev_->mac());
  bool called = false;
  a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 2),
                           [&](std::optional<MacAddress> mac) {
                             called = true;
                             EXPECT_EQ(*mac, b_dev_->mac());
                           });
  EXPECT_TRUE(called);
  EXPECT_EQ(a_.stack().arp().counters().requests_sent, 0u);
}

TEST_F(ArpFixture, RetriesThenFails) {
  std::optional<MacAddress> resolved = MacAddress::FromId(77);
  a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 99),
                           [&](std::optional<MacAddress> mac) { resolved = mac; });
  sim_.Run();
  EXPECT_FALSE(resolved.has_value());
  EXPECT_EQ(a_.stack().arp().counters().requests_sent,
            static_cast<uint64_t>(ArpService::kMaxRetries));
}

TEST_F(ArpFixture, ConcurrentResolutionsShareOneExchange) {
  int callbacks = 0;
  for (int i = 0; i < 3; ++i) {
    a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 2),
                             [&](std::optional<MacAddress> mac) {
                               EXPECT_TRUE(mac.has_value());
                               ++callbacks;
                             });
  }
  sim_.Run();
  EXPECT_EQ(callbacks, 3);
  EXPECT_EQ(a_.stack().arp().counters().requests_sent, 1u);
}

TEST_F(ArpFixture, ProxyArpAnswersForAbsentHost) {
  // b proxies for 10.0.0.50 (as a home agent proxies for an away MH).
  b_.stack().arp().AddProxyEntry(b_dev_, Ipv4Address(10, 0, 0, 50));
  std::optional<MacAddress> resolved;
  a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 50),
                           [&](std::optional<MacAddress> mac) { resolved = mac; });
  sim_.Run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, b_dev_->mac());
  EXPECT_EQ(b_.stack().arp().counters().proxy_replies_sent, 1u);

  b_.stack().arp().RemoveProxyEntry(b_dev_, Ipv4Address(10, 0, 0, 50));
  EXPECT_FALSE(b_.stack().arp().IsProxying(b_dev_, Ipv4Address(10, 0, 0, 50)));
}

TEST_F(ArpFixture, GratuitousArpUpdatesExistingEntriesOnly) {
  // a has an entry for 10.0.0.2 -> b; c has none.
  a_.stack().arp().AddStaticEntry(Ipv4Address(10, 0, 0, 2), b_dev_->mac());

  // b announces that 10.0.0.2 now maps to a *different* MAC (as the HA does
  // when it takes over a mobile host's address).
  const MacAddress new_mac = c_dev_->mac();
  ArpMessage announce;
  announce.op = ArpOp::kReply;
  announce.sender_mac = new_mac;
  announce.sender_ip = Ipv4Address(10, 0, 0, 2);
  announce.target_mac = MacAddress::Broadcast();
  announce.target_ip = Ipv4Address(10, 0, 0, 2);
  EthernetFrame frame;
  frame.src = c_dev_->mac();
  frame.dst = MacAddress::Broadcast();
  frame.ethertype = EtherType::kArp;
  frame.payload = announce.Serialize();
  c_dev_->Transmit(frame);
  sim_.Run();

  // a's stale entry was voided (updated); c (no prior entry) stays clean.
  EXPECT_EQ(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)), new_mac);
  EXPECT_FALSE(b_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 1)).has_value());
}

TEST_F(ArpFixture, SendGratuitousArpHelper) {
  a_.stack().arp().AddStaticEntry(Ipv4Address(10, 0, 0, 2), MacAddress::FromId(999));
  b_.stack().arp().SendGratuitousArp(b_dev_, Ipv4Address(10, 0, 0, 2));
  sim_.Run();
  EXPECT_EQ(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)), b_dev_->mac());
  EXPECT_EQ(b_.stack().arp().counters().gratuitous_sent, 1u);
}

TEST_F(ArpFixture, EntriesExpire) {
  a_.stack().arp().set_entry_lifetime(Seconds(10));
  std::optional<MacAddress> resolved;
  a_.stack().arp().Resolve(a_dev_, Ipv4Address(10, 0, 0, 2),
                           [&](std::optional<MacAddress> mac) { resolved = mac; });
  sim_.Run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_TRUE(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)).has_value());
  sim_.RunFor(Seconds(11));
  EXPECT_FALSE(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)).has_value());
}

TEST_F(ArpFixture, RemoveEntry) {
  a_.stack().arp().AddStaticEntry(Ipv4Address(10, 0, 0, 2), b_dev_->mac());
  a_.stack().arp().RemoveEntry(Ipv4Address(10, 0, 0, 2));
  EXPECT_FALSE(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)).has_value());
}

TEST_F(ArpFixture, FlushClearsCache) {
  a_.stack().arp().AddStaticEntry(Ipv4Address(10, 0, 0, 2), b_dev_->mac());
  a_.stack().arp().Flush();
  EXPECT_FALSE(a_.stack().arp().CachedLookup(Ipv4Address(10, 0, 0, 2)).has_value());
}

}  // namespace
}  // namespace msn
