// Wire formats: IPv4, UDP, ICMP, and ARP headers with real network-byte-order
// serialization and Internet checksums. Encapsulation (IP-in-IP, protocol 4)
// genuinely prepends a 20-byte outer header, so header overhead measured by
// the benchmarks is emergent rather than assumed.
#ifndef MSN_SRC_NET_HEADERS_H_
#define MSN_SRC_NET_HEADERS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/net/address.h"
#include "src/net/packet.h"
#include "src/util/byte_buffer.h"

namespace msn {

// IP protocol numbers used in this system.
enum class IpProto : uint8_t {
  kIcmp = 1,
  kIpIp = 4,  // IP-within-IP encapsulation (the tunnel protocol).
  kTcp = 6,   // Used by tcplite.
  kUdp = 17,
};

const char* IpProtoName(IpProto proto);

// IPv4 header, fixed 20 bytes (options unsupported, as in the paper's use).
struct Ipv4Header {
  static constexpr size_t kSize = 20;
  static constexpr uint8_t kDefaultTtl = 64;

  uint8_t tos = 0;
  uint16_t total_length = 0;  // Header + payload, filled by Serialize helpers.
  uint16_t identification = 0;
  // Fragmentation fields (RFC 791). `fragment_offset` is in 8-byte units.
  bool dont_fragment = false;
  bool more_fragments = false;
  uint16_t fragment_offset = 0;
  uint8_t ttl = kDefaultTtl;
  IpProto protocol = IpProto::kUdp;
  Ipv4Address src;
  Ipv4Address dst;

  // Serializes with a freshly computed header checksum.
  void Serialize(ByteWriter& w) const;
  // Serializes straight into `out` (>= kSize bytes), checksum included. The
  // allocation-free variant the zero-copy datapath uses to patch wire images
  // in place.
  void SerializeTo(uint8_t* out) const;
  // Parses and verifies the header checksum. Returns nullopt on truncation,
  // bad version, or checksum failure.
  [[nodiscard]] static std::optional<Ipv4Header> Parse(ByteReader& r);

  bool IsFragment() const { return more_fragments || fragment_offset != 0; }

  std::string ToString() const;
};

// Builds a complete IPv4 datagram (header + payload bytes).
[[nodiscard]] std::vector<uint8_t> BuildIpv4Datagram(const Ipv4Header& header,
                                       const std::vector<uint8_t>& payload);

// Builds the wire image as a pool-backed Packet with headroom for later
// encapsulation. `header.total_length` is filled in, as in BuildIpv4Datagram.
[[nodiscard]] Packet BuildIpv4Packet(Ipv4Header& header, std::span<const uint8_t> payload);

// A parsed IPv4 datagram: header plus an owned payload copy. The zero-copy
// forwarding path never materializes one of these; they serve the endpoint
// and test paths where owning the bytes is the point.
struct Ipv4Datagram {
  Ipv4Header header;
  std::vector<uint8_t> payload;

  [[nodiscard]] static std::optional<Ipv4Datagram> Parse(std::span<const uint8_t> bytes);
  [[nodiscard]] std::vector<uint8_t> Serialize() const {
    return BuildIpv4Datagram(header, payload);
  }
};

// UDP header (8 bytes) + payload. Checksum covers the RFC 768 pseudo-header.
struct UdpDatagram {
  static constexpr size_t kHeaderSize = 8;

  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::vector<uint8_t> payload;

  // Serializes with the pseudo-header checksum for the given address pair.
  [[nodiscard]] std::vector<uint8_t> Serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const;
  // Parses and verifies the checksum against the given address pair.
  [[nodiscard]] static std::optional<UdpDatagram> Parse(std::span<const uint8_t> bytes,
                                                        Ipv4Address src_ip, Ipv4Address dst_ip);
};

// ICMP message types used by the system.
enum class IcmpType : uint8_t {
  kEchoReply = 0,
  kDestinationUnreachable = 3,
  // Sent by a router that forwarded a packet back out its arrival interface:
  // the host has a better first hop on its own subnet (RFC 792).
  kRedirect = 5,
  kEchoRequest = 8,
};

// Destination-unreachable codes we generate.
enum class IcmpUnreachableCode : uint8_t {
  kNetUnreachable = 0,
  kHostUnreachable = 1,
  kPortUnreachable = 3,
  // Datagram exceeds the next hop's MTU and DF is set (RFC 1191 path-MTU
  // discovery signal).
  kFragmentationNeeded = 4,
  // Sent by routers enforcing transit-traffic filtering; this is the signal
  // the mobile host uses to fall back from the triangle-route optimization.
  kAdminProhibited = 13,
};

struct IcmpMessage {
  static constexpr size_t kHeaderSize = 8;

  IcmpType type = IcmpType::kEchoRequest;
  uint8_t code = 0;
  // For echo: identifier (high 16) and sequence (low 16). For unreachable: 0.
  uint32_t rest = 0;
  // For echo: user data. For unreachable: the offending IP header + 8 bytes.
  std::vector<uint8_t> payload;

  uint16_t echo_id() const { return static_cast<uint16_t>(rest >> 16); }
  uint16_t echo_seq() const { return static_cast<uint16_t>(rest & 0xffff); }
  static uint32_t MakeEchoRest(uint16_t id, uint16_t seq) {
    return (static_cast<uint32_t>(id) << 16) | seq;
  }

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<IcmpMessage> Parse(std::span<const uint8_t> bytes);
};

// ARP for IPv4-over-Ethernet (RFC 826).
enum class ArpOp : uint16_t {
  kRequest = 1,
  kReply = 2,
};

struct ArpMessage {
  static constexpr size_t kSize = 28;

  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // Zero in requests.
  Ipv4Address target_ip;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<ArpMessage> Parse(std::span<const uint8_t> bytes);

  std::string ToString() const;
};

}  // namespace msn

#endif  // MSN_SRC_NET_HEADERS_H_
