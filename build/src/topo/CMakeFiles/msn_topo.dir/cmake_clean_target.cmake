file(REMOVE_RECURSE
  "libmsn_topo.a"
)
