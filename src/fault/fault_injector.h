// Deterministic fault injection for a BroadcastMedium.
//
// A FaultInjector installs itself as the medium's fault hook and applies a
// composable set of fault models to every frame delivery: Gilbert-Elliott
// burst loss, frame duplication, reordering (extra queued latency), bit
// corruption (caught downstream by the IP/UDP checksums), and timed link
// blackouts. All randomness flows from the simulator's seeded Rng, so a chaos
// run with the same seed produces the same event trace bit-for-bit.
//
// Injectors are usually driven by a FaultSchedule (fault_schedule.h) rather
// than poked directly, so a scenario reads as a declarative list of timed
// fault events.
#ifndef MSN_SRC_FAULT_FAULT_INJECTOR_H_
#define MSN_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/link/medium.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

// Two-state Markov loss model: the channel alternates between a good state
// (low loss) and a bad/burst state (high loss). State transitions are drawn
// once per frame delivery, which on a busy medium approximates the
// continuous-time chain well enough for protocol testing.
struct GilbertElliottParams {
  double p_enter_burst = 0.05;  // P(good -> bad) per frame.
  double p_exit_burst = 0.25;   // P(bad -> good) per frame.
  double loss_good = 0.0;       // Loss probability while in the good state.
  double loss_bad = 1.0;        // Loss probability while in the burst state.
};

// Which fault models are active and how aggressive they are. All
// probabilities are per (frame, receiver) delivery.
struct FaultProfile {
  std::optional<GilbertElliottParams> burst_loss;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  // A reordered frame is delayed by uniform [0, reorder_extra_latency] on top
  // of the medium's own latency draw, letting later frames overtake it.
  Duration reorder_extra_latency = Milliseconds(200);
  double corrupt_probability = 0.0;
};

class FaultInjector {
 public:
  // With a registry, injected-event accounting lands under
  // "fault.<medium>.*"; otherwise in a private registry, so counters()
  // behaves identically either way.
  FaultInjector(Simulator& sim, BroadcastMedium& medium, MetricsRegistry* metrics = nullptr);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetProfile(const FaultProfile& profile) { profile_ = profile; }
  void ClearProfile() { profile_ = FaultProfile{}; }
  const FaultProfile& profile() const { return profile_; }

  // Blackout: every frame on the medium is dropped until EndBlackout(). Models
  // a radio shadow or an unplugged segment; unlike Detach, devices keep their
  // addresses and routes, so recovery exercises the retransmission paths.
  void StartBlackout();
  void EndBlackout();
  // Convenience: StartBlackout now, EndBlackout after `length`. Calling again
  // before the previous window ends extends it (generation-guarded).
  void BlackoutFor(Duration length);

  bool blackout_active() const { return blackout_active_; }
  bool in_burst() const { return in_burst_; }
  const std::string& medium_name() const { return medium_.name(); }

  // Snapshot of the injector's accounting; the live values are
  // registry-backed counters named "fault.<medium>.<field>".
  struct Counters {
    uint64_t frames_seen = 0;
    uint64_t burst_drops = 0;
    uint64_t blackout_drops = 0;
    uint64_t duplicates = 0;
    uint64_t reorders = 0;
    uint64_t corruptions = 0;
  };
  Counters counters() const;

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef frames_seen;
    CounterRef burst_drops;
    CounterRef blackout_drops;
    CounterRef duplicates;
    CounterRef reorders;
    CounterRef corruptions;
  };

  [[nodiscard]] FaultVerdict OnFrame(LinkDevice* target, EthernetFrame& frame);

  Simulator& sim_;
  BroadcastMedium& medium_;
  FaultProfile profile_;
  bool in_burst_ = false;
  bool blackout_active_ = false;
  uint64_t blackout_generation_ = 0;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
};

}  // namespace msn

#endif  // MSN_SRC_FAULT_FAULT_INJECTOR_H_
