#!/usr/bin/env python3
"""Validate BENCH_*.json files against the msn-bench-v1 schema.

Stdlib-only checker used by the CI bench-smoke job (and handy locally):

    python3 tools/validate_bench_json.py out/BENCH_*.json

Exit status is non-zero if any file fails validation. The schema is
documented in src/telemetry/export.h; this script is intentionally strict
about structure (required keys, types, section shapes) and lenient about
content (benches may add params/rows/summaries freely).
"""

import json
import math
import sys

SCHEMA = "msn-bench-v1"
NUMBER = (int, float)
METRIC_TYPES = {"counter", "gauge", "histogram"}
# Mirror of METRIC_NAMESPACES in tools/msn_lint.py: the first dot-path segment
# every exported metric name must start with ("check" covers the fuzzer's
# oracle metrics).
METRIC_NAMESPACES = {
    "burst", "check", "dev", "fault", "flow_cache", "ha", "ip", "link", "mh",
    "mobility", "packet", "pool", "repl", "tcp",
}
# Mirror of the sub-namespace registries in tools/msn_lint.py. Indexed
# prefixes name one instance per numeric index ("ha.shard.3.bindings"):
# the segment after the prefix must be all digits, followed by at least one
# noun segment. All-digit segments anywhere else are rejected so that
# per-instance metric families must be registered before they are exported.
INDEXED_METRIC_SUBNAMESPACES = {
    "ha.shard.", "ha.backup.shard.",
}
FLAT_METRIC_SUBNAMESPACES = {
    "ha.admission.", "ha.backup.admission.",
}


def metric_numeric_segments_ok(name):
    for prefix in INDEXED_METRIC_SUBNAMESPACES:
        if name.startswith(prefix):
            index, _, noun = name[len(prefix):].partition(".")
            return (index.isdigit() and noun != "" and
                    not any(seg.isdigit() for seg in noun.split(".")))
    return not any(seg.isdigit() for seg in name.split("."))
HISTOGRAM_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")
SUMMARY_BASE_FIELDS = ("count", "mean", "stddev", "min", "max")


class ValidationError(Exception):
    pass


def fail(path, msg):
    raise ValidationError(f"{path}: {msg}")


def require(cond, path, msg):
    if not cond:
        fail(path, msg)


def check_number(value, path, what):
    require(isinstance(value, NUMBER) and not isinstance(value, bool), path,
            f"{what} must be a number, got {type(value).__name__}")
    require(math.isfinite(value), path, f"{what} must be finite, got {value!r}")


def check_scalar(value, path, what):
    if isinstance(value, bool) or isinstance(value, str):
        return
    check_number(value, path, what)


def check_summary(summary, path):
    require(isinstance(summary, dict), path, "summary must be an object")
    require(isinstance(summary.get("name"), str) and summary["name"], path,
            "summary needs a non-empty string 'name'")
    require(isinstance(summary.get("unit"), str), path,
            "summary needs a string 'unit'")
    for field in SUMMARY_BASE_FIELDS:
        require(field in summary, path, f"summary missing '{field}'")
        check_number(summary[field], path, f"summary '{field}'")
    # Percentiles are optional (RunningStats-only summaries omit them) but
    # must arrive as a complete, ordered set when present.
    has_pcts = [p for p in ("p50", "p95", "p99") if p in summary]
    if has_pcts:
        require(len(has_pcts) == 3, path,
                "summary percentiles must be all of p50/p95/p99 or none")
        for p in has_pcts:
            check_number(summary[p], path, f"summary '{p}'")
        require(summary["p50"] <= summary["p95"] <= summary["p99"], path,
                "summary percentiles must be non-decreasing")


def check_row(row, path):
    require(isinstance(row, dict), path, "row must be an object")
    require(isinstance(row.get("label"), str) and row["label"], path,
            "row needs a non-empty string 'label'")
    values = row.get("values")
    require(isinstance(values, dict), path, "row needs an object 'values'")
    for key, value in values.items():
        require(isinstance(key, str) and key, path, "row value keys must be strings")
        check_scalar(value, path, f"row value '{key}'")


def check_metric(metric, path):
    require(isinstance(metric, dict), path, "metric must be an object")
    name = metric.get("name")
    require(isinstance(name, str) and name, path,
            "metric needs a non-empty string 'name'")
    require(name.split(".", 1)[0] in METRIC_NAMESPACES, path,
            f"metric '{name}' namespace {name.split('.', 1)[0]!r} is not one of "
            f"{sorted(METRIC_NAMESPACES)}")
    require(metric_numeric_segments_ok(name), path,
            f"metric '{name}' has an all-digit segment outside the index "
            "position of a registered indexed sub-namespace "
            f"({sorted(INDEXED_METRIC_SUBNAMESPACES)})")
    mtype = metric.get("type")
    require(mtype in METRIC_TYPES, path,
            f"metric '{name}' has unknown type {mtype!r}")
    if mtype == "histogram":
        for field in HISTOGRAM_FIELDS:
            require(field in metric, path, f"histogram '{name}' missing '{field}'")
            check_number(metric[field], path, f"histogram '{name}' field '{field}'")
        require(metric["min"] <= metric["max"], path,
                f"histogram '{name}' has min > max")
        require(metric["p50"] <= metric["p95"] <= metric["p99"], path,
                f"histogram '{name}' percentiles must be non-decreasing")
    else:
        require("value" in metric, path, f"metric '{name}' missing 'value'")
        check_number(metric["value"], path, f"metric '{name}' value")


def check_series(series, path):
    require(isinstance(series, dict), path, "series entry must be an object")
    metric = series.get("metric")
    require(isinstance(metric, str) and metric, path,
            "series needs a non-empty string 'metric'")
    check_number(series.get("interval_ms"), path, f"series '{metric}' interval_ms")
    require(series["interval_ms"] > 0, path,
            f"series '{metric}' interval_ms must be positive")
    points = series.get("points")
    require(isinstance(points, list), path, f"series '{metric}' needs a 'points' list")
    last_t = -math.inf
    for i, point in enumerate(points):
        require(isinstance(point, list) and len(point) == 2, path,
                f"series '{metric}' point {i} must be a [t_ms, value] pair")
        check_number(point[0], path, f"series '{metric}' point {i} t_ms")
        check_number(point[1], path, f"series '{metric}' point {i} value")
        require(point[0] >= last_t, path,
                f"series '{metric}' timestamps must be non-decreasing")
        last_t = point[0]


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)

    require(isinstance(doc, dict), path, "top level must be an object")
    require(doc.get("schema") == SCHEMA, path,
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"], path,
            "needs a non-empty string 'bench'")
    require(isinstance(doc.get("title"), str) and doc["title"], path,
            "needs a non-empty string 'title'")
    require(isinstance(doc.get("seed"), int) and not isinstance(doc["seed"], bool),
            path, "'seed' must be an integer")
    require(isinstance(doc.get("smoke"), bool), path, "'smoke' must be a boolean")

    expected_name = f"BENCH_{doc['bench']}.json"
    base = path.rsplit("/", 1)[-1]
    require(base == expected_name, path,
            f"file should be named {expected_name} for bench {doc['bench']!r}")

    params = doc.get("params")
    require(isinstance(params, dict), path, "'params' must be an object")
    for key, value in params.items():
        check_scalar(value, path, f"param '{key}'")

    for section, checker in (("summaries", check_summary), ("rows", check_row),
                             ("metrics", check_metric), ("series", check_series)):
        entries = doc.get(section)
        require(isinstance(entries, list), path, f"'{section}' must be a list")
        for entry in entries:
            checker(entry, path)

    # Metric names must be unique and sorted per AddMetrics() call; across
    # calls uniqueness still has to hold for downstream tooling.
    names = [m["name"] for m in doc["metrics"]]
    require(len(names) == len(set(names)), path, "duplicate metric names")

    return len(doc["metrics"]), len(doc["rows"]), len(doc["series"])


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} BENCH_*.json [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            n_metrics, n_rows, n_series = validate(path)
        except (OSError, json.JSONDecodeError, ValidationError) as err:
            print(f"FAIL  {path}: {err}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok    {path} ({n_metrics} metrics, {n_rows} rows, "
                  f"{n_series} series)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
