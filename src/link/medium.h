// Shared transmission media.
//
// A BroadcastMedium joins any number of attached devices into one broadcast
// domain: an Ethernet segment or a Metricom radio cell, differing only in
// parameters (propagation latency, jitter, random frame loss). Delivery is by
// destination MAC; broadcast frames reach every attached device but the
// sender.
#ifndef MSN_SRC_LINK_MEDIUM_H_
#define MSN_SRC_LINK_MEDIUM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/frame.h"
#include "src/sim/simulator.h"

namespace msn {

class LinkDevice;

struct MediumParams {
  // One-way propagation + medium access latency.
  Duration latency = Microseconds(50);
  // Absolute stddev of per-frame latency jitter.
  Duration latency_jitter = Duration();
  // Independent per-frame loss probability (radio frames do occasionally
  // vanish; the paper observed one such drop during the hot-switch runs).
  double drop_probability = 0.0;
};

class BroadcastMedium {
 public:
  BroadcastMedium(Simulator& sim, std::string name, MediumParams params);

  BroadcastMedium(const BroadcastMedium&) = delete;
  BroadcastMedium& operator=(const BroadcastMedium&) = delete;

  void Attach(LinkDevice* device);
  void Detach(LinkDevice* device);

  // Called by an attached device once its serialization delay has elapsed.
  void FrameFromDevice(LinkDevice* sender, const EthernetFrame& frame);

  const std::string& name() const { return name_; }
  const MediumParams& params() const { return params_; }
  void set_params(const MediumParams& p) { params_ = p; }

  struct Counters {
    uint64_t frames_carried = 0;
    uint64_t frames_dropped = 0;  // Random medium loss.
    uint64_t frames_unmatched = 0;  // No attached device with that MAC.
  };
  const Counters& counters() const { return counters_; }

 private:
  void DeliverAfterLatency(LinkDevice* target, const EthernetFrame& frame);
  Duration DrawLatency();

  Simulator& sim_;
  std::string name_;
  MediumParams params_;
  std::vector<LinkDevice*> devices_;
  Counters counters_;
};

}  // namespace msn

#endif  // MSN_SRC_LINK_MEDIUM_H_
