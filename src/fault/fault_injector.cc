#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/util/logging.h"

namespace msn {

FaultInjector::FaultInjector(Simulator& sim, BroadcastMedium& medium, MetricsRegistry* metrics)
    : sim_(sim), medium_(medium) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string prefix = "fault." + medium_.name() + ".";
  counters_.frames_seen = metrics->GetCounterRef(prefix + "frames_seen");
  counters_.burst_drops = metrics->GetCounterRef(prefix + "burst_drops");
  counters_.blackout_drops = metrics->GetCounterRef(prefix + "blackout_drops");
  counters_.duplicates = metrics->GetCounterRef(prefix + "duplicates");
  counters_.reorders = metrics->GetCounterRef(prefix + "reorders");
  counters_.corruptions = metrics->GetCounterRef(prefix + "corruptions");
  medium_.SetFaultHook(
      [this](LinkDevice* target, EthernetFrame& frame) { return OnFrame(target, frame); });
}

FaultInjector::~FaultInjector() { medium_.ClearFaultHook(); }

FaultInjector::Counters FaultInjector::counters() const {
  Counters c;
  c.frames_seen = counters_.frames_seen;
  c.burst_drops = counters_.burst_drops;
  c.blackout_drops = counters_.blackout_drops;
  c.duplicates = counters_.duplicates;
  c.reorders = counters_.reorders;
  c.corruptions = counters_.corruptions;
  return c;
}

void FaultInjector::StartBlackout() {
  blackout_active_ = true;
  MSN_DEBUG("fault", "%s: blackout begins", medium_.name().c_str());
}

void FaultInjector::EndBlackout() {
  blackout_active_ = false;
  MSN_DEBUG("fault", "%s: blackout ends", medium_.name().c_str());
}

void FaultInjector::BlackoutFor(Duration length) {
  StartBlackout();
  const uint64_t generation = ++blackout_generation_;
  sim_.Schedule(length, [this, generation] {
    if (generation == blackout_generation_ && blackout_active_) {
      EndBlackout();
    }
  });
}

FaultVerdict FaultInjector::OnFrame(LinkDevice* /*target*/, EthernetFrame& frame) {
  ++counters_.frames_seen;
  FaultVerdict verdict;

  if (blackout_active_) {
    ++counters_.blackout_drops;
    verdict.drop = true;
    return verdict;
  }

  if (profile_.burst_loss.has_value()) {
    const GilbertElliottParams& ge = *profile_.burst_loss;
    // Advance the Markov chain one step, then draw loss from the new state.
    if (in_burst_) {
      if (sim_.rng().Bernoulli(ge.p_exit_burst)) in_burst_ = false;
    } else {
      if (sim_.rng().Bernoulli(ge.p_enter_burst)) in_burst_ = true;
    }
    const double loss = in_burst_ ? ge.loss_bad : ge.loss_good;
    if (loss > 0.0 && sim_.rng().Bernoulli(loss)) {
      ++counters_.burst_drops;
      verdict.drop = true;
      return verdict;
    }
  }

  if (profile_.corrupt_probability > 0.0 && !frame.payload.empty() &&
      sim_.rng().Bernoulli(profile_.corrupt_probability)) {
    // Flip one random bit; the IP header / UDP checksums downstream must
    // catch it and count it as drop_bad_packet.
    const size_t byte = static_cast<size_t>(
        sim_.rng().UniformInt(uint64_t{0}, uint64_t{frame.payload.size() - 1}));
    const int bit = static_cast<int>(sim_.rng().UniformInt(uint64_t{0}, uint64_t{7}));
    // MutableData: the corrupt copy must not bleed into the shared broadcast
    // buffer other receivers (or duplicates) deliver from.
    frame.payload.MutableData()[byte] ^= static_cast<uint8_t>(1u << bit);
    ++counters_.corruptions;
  }

  if (profile_.duplicate_probability > 0.0 &&
      sim_.rng().Bernoulli(profile_.duplicate_probability)) {
    verdict.duplicates = 1;
    ++counters_.duplicates;
  }

  if (profile_.reorder_probability > 0.0 &&
      sim_.rng().Bernoulli(profile_.reorder_probability)) {
    const double extra_ns = sim_.rng().UniformDouble(
        0.0, static_cast<double>(profile_.reorder_extra_latency.nanos()));
    verdict.extra_latency = Duration::FromNanos(static_cast<int64_t>(extra_ns));
    ++counters_.reorders;
  }

  return verdict;
}

}  // namespace msn
