#include "src/node/routing_table.h"

#include <algorithm>
#include <cstdio>

#include "src/link/net_device.h"

namespace msn {

std::string RouteEntry::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-18s via %-15s dev %-8s src %-15s metric %d",
                dest.ToString().c_str(),
                gateway.IsAny() ? "*" : gateway.ToString().c_str(),
                device != nullptr ? device->name().c_str() : "-",
                pref_src.IsAny() ? "*" : pref_src.ToString().c_str(), metric);
  return buf;
}

void RoutingTable::Add(const RouteEntry& entry) {
  entries_.push_back(entry);
  NotifyChanged();
}

size_t RoutingTable::Remove(const Subnet& dest, NetDevice* device) {
  return RemoveWhere([&](const RouteEntry& e) {
    return e.dest == dest && (device == nullptr || e.device == device);
  });
}

size_t RoutingTable::RemoveWhere(const std::function<bool(const RouteEntry&)>& pred) {
  const size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), pred), entries_.end());
  const size_t removed = before - entries_.size();
  if (removed > 0) {
    NotifyChanged();
  }
  return removed;
}

size_t RoutingTable::RemoveForDevice(NetDevice* device) {
  return RemoveWhere([device](const RouteEntry& e) { return e.device == device; });
}

void RoutingTable::Clear() {
  const bool changed = !entries_.empty();
  entries_.clear();
  if (changed) {
    NotifyChanged();
  }
}

std::optional<RouteEntry> RoutingTable::Lookup(Ipv4Address dst) const {
  const RouteEntry* best = nullptr;
  for (const RouteEntry& e : entries_) {
    if (!e.dest.Contains(dst)) {
      continue;
    }
    if (best == nullptr || e.dest.prefix_len() > best->dest.prefix_len() ||
        (e.dest.prefix_len() == best->dest.prefix_len() && e.metric < best->metric)) {
      best = &e;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return *best;
}

std::string RoutingTable::ToString() const {
  std::string out;
  for (const RouteEntry& e : entries_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace msn
