# Empty dependencies file for tcplite_test.
# This may be replaced when dependencies are built.
