// Registry-backed probes over the packet datapath's global accounting.
//
// Packet (src/net) and BufferPool (src/util) keep raw structs-of-uint64
// because their layers must not depend on telemetry. This shim registers
// probe gauges over those structs so benches and scenarios can sample
// "pool.*" / "packet.*" like any other metric and have them land in
// BENCH_*.json via BenchReport::AddMetrics.
#ifndef MSN_SRC_TELEMETRY_PACKET_PROBES_H_
#define MSN_SRC_TELEMETRY_PACKET_PROBES_H_

#include "src/telemetry/metrics.h"

namespace msn {

class Simulator;

// Registers gauges over Packet::stats() (packet.copies, packet.cow_breaks,
// packet.allocations), DefaultBufferPool().stats() (pool.hits, pool.misses,
// pool.oversize, pool.released, pool.discarded, pool.outstanding,
// pool.free_blocks, pool.batch_acquires, pool.batch_releases) and
// DefaultPacketArena().stats() (pool.arena_node_allocs, pool.arena_recycled,
// pool.arena_refills, pool.arena_drains, pool.arena_free_nodes). Safe to
// call more than once on the same registry: probes are rebound, not
// duplicated.
void RegisterPacketPathProbes(MetricsRegistry& registry);

// Registers gauges over the simulator's event-queue immediate-lane stats
// (burst.lane_scheduled, burst.heap_scheduled): how many events took the
// O(1) same-instant lane versus the O(log n) heap. The simulator must
// outlive the registry's last Collect.
void RegisterBurstProbes(MetricsRegistry& registry, Simulator& sim);

}  // namespace msn

#endif  // MSN_SRC_TELEMETRY_PACKET_PROBES_H_
