#include "src/mip/foreign_agent.h"
#include "src/util/assert.h"

#include "src/mip/mobile_host.h"
#include "src/util/logging.h"

namespace msn {

ForeignAgent::ForeignAgent(Node& node, Config config) : node_(node), config_(config) {
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(kMipRegistrationPort)) << "fa registration port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnRegistrationTraffic(data, meta);
      });

  tunnel_ = std::make_unique<IpIpTunnelEndpoint>(node_.stack());
  tunnel_->SetInspector([this](const Ipv4Header& outer, const Ipv4Datagram& inner) {
    return OnTunnelPacket(outer, inner);
  });

  advertiser_ = std::make_unique<PeriodicTask>(node_.sim(), config_.advertisement_interval,
                                               [this] { SendAdvertisement(); });
  advertiser_->Start();
}

ForeignAgent::~ForeignAgent() = default;

void ForeignAgent::SendAdvertisement() {
  AgentAdvertisement adv;
  adv.agent_address = config_.address;
  adv.lifetime_sec =
      static_cast<uint16_t>(config_.advertisement_interval.nanos() / 1000000000 * 3);
  UdpSocket::SendExtras extras;
  extras.force_device = config_.device;
  extras.force_broadcast_mac = true;
  ++counters_.advertisements_sent;
  socket_->SendToWithExtras(Ipv4Address::Broadcast(), kMipRegistrationPort, adv.Serialize(),
                            extras);
}

void ForeignAgent::OnRegistrationTraffic(const std::vector<uint8_t>& data,
                                         const UdpSocket::Metadata& meta) {
  if (data.empty()) {
    return;
  }
  switch (static_cast<MipMessageType>(data[0])) {
    case MipMessageType::kRegistrationRequest: {
      auto request = RegistrationRequest::Parse(data);
      if (request) {
        RelayRequest(*request, meta);
      }
      return;
    }
    case MipMessageType::kRegistrationReply: {
      auto reply = RegistrationReply::Parse(data);
      if (reply) {
        RelayReply(*reply);
      }
      return;
    }
    case MipMessageType::kBindingUpdate: {
      auto update = BindingUpdate::Parse(data);
      if (update) {
        HandleBindingUpdate(*update);
      }
      return;
    }
    case MipMessageType::kAgentAdvertisement:
      return;  // Our own broadcast looping back via another FA; ignore.
  }
}

void ForeignAgent::RelayRequest(const RegistrationRequest& request,
                                const UdpSocket::Metadata& meta) {
  if (request.care_of_address != config_.address) {
    return;  // Not asking for our services.
  }
  if (meta.link_src.IsZero()) {
    return;  // Cannot learn the visitor's hardware address.
  }
  // Record (provisionally) the visitor; confirmed when the HA accepts.
  Visitor visitor;
  visitor.mac = meta.link_src;
  visitor.reply_port = meta.src_port;
  visitor.registered_at = node_.sim().Now();
  visitors_[request.home_address] = visitor;
  forwards_.erase(request.home_address);  // Back with us: stop forwarding.

  ++counters_.requests_relayed;
  MSN_DEBUG("mip-fa", "%s: relaying %s", node_.name().c_str(), request.ToString().c_str());
  socket_->SendTo(request.home_agent, kMipRegistrationPort, request.Serialize());
}

void ForeignAgent::RelayReply(const RegistrationReply& reply) {
  auto it = visitors_.find(reply.home_address);
  if (it == visitors_.end()) {
    return;
  }
  ++counters_.replies_relayed;
  if (!reply.accepted() || reply.lifetime_sec == 0) {
    // Denied or deregistered: forget the visitor after relaying the reply.
    // (Deregistration via an FA is unusual; the MH normally deregisters from
    // home, but handle it for completeness.)
  }
  // Frame the reply straight to the visitor's MAC: it has no routable
  // address on this network.
  UdpDatagram dg;
  dg.src_port = kMipRegistrationPort;
  dg.dst_port = it->second.reply_port;
  dg.payload = reply.Serialize();
  Ipv4Datagram ip;
  ip.header.protocol = IpProto::kUdp;
  ip.header.src = config_.address;
  ip.header.dst = reply.home_address;
  ip.payload = dg.Serialize(config_.address, reply.home_address);

  IpStack::SendOptions opts;
  opts.force_device = config_.device;
  opts.force_dst_mac = it->second.mac;
  node_.stack().SendDatagram(ip.header.src, ip.header.dst, IpProto::kUdp, ip.payload, opts);
  if (!reply.accepted()) {
    visitors_.erase(it);
  }
}

void ForeignAgent::HandleBindingUpdate(const BindingUpdate& update) {
  ++counters_.binding_updates_received;

  if (update.new_care_of.IsAny()) {
    // Smooth hand-off: the visitor announced its departure before knowing
    // its new care-of address. Buffer its packets until the home agent tells
    // us where it went.
    auto it = visitors_.find(update.home_address);
    if (it == visitors_.end() || !config_.forward_after_departure) {
      return;
    }
    MSN_INFO("mip-fa", "%s: visitor %s departing; buffering", node_.name().c_str(),
             update.home_address.ToString().c_str());
    visitors_.erase(it);
    ForwardEntry entry;
    entry.new_care_of = Ipv4Address::Any();
    entry.expires = node_.sim().Now() + config_.forward_grace;
    forwards_[update.home_address] = std::move(entry);
    return;
  }

  // The binding moved. Flush any smooth-handoff buffer and forward late
  // packets for the grace period.
  visitors_.erase(update.home_address);
  if (!config_.forward_after_departure || update.new_care_of == config_.address) {
    forwards_.erase(update.home_address);
    return;
  }
  MSN_INFO("mip-fa", "%s: visitor %s moved to %s", node_.name().c_str(),
           update.home_address.ToString().c_str(), update.new_care_of.ToString().c_str());
  ForwardEntry& entry = forwards_[update.home_address];
  std::vector<Ipv4Datagram> buffered = std::move(entry.buffered);
  entry.buffered.clear();
  entry.new_care_of = update.new_care_of;
  entry.expires = node_.sim().Now() + Seconds(update.grace_sec);
  for (const Ipv4Datagram& inner : buffered) {
    ++counters_.packets_forwarded_after_departure;
    const Ipv4Datagram retunneled =
        EncapsulateIpIp(inner, config_.address, update.new_care_of);
    node_.stack().SendPreformedDatagram(retunneled, /*forwarding=*/false);
  }
}

void ForeignAgent::DeliverToVisitor(const Visitor& visitor, const Ipv4Datagram& dg) {
  EthernetFrame frame;
  frame.dst = visitor.mac;
  frame.src = config_.device->mac();
  frame.ethertype = EtherType::kIpv4;
  frame.payload = dg.Serialize();
  config_.device->Transmit(frame);
}

bool ForeignAgent::OnTunnelPacket(const Ipv4Header& outer, const Ipv4Datagram& inner) {
  (void)outer;
  auto visitor = visitors_.find(inner.header.dst);
  if (visitor != visitors_.end()) {
    ++counters_.packets_delivered;
    DeliverToVisitor(visitor->second, inner);
    return false;  // Handled; do not re-inject.
  }
  auto forward = forwards_.find(inner.header.dst);
  if (forward != forwards_.end()) {
    if (forward->second.expires < node_.sim().Now()) {
      counters_.packets_buffer_dropped += forward->second.buffered.size();
      forwards_.erase(forward);
    } else if (forward->second.new_care_of.IsAny()) {
      // Departing visitor whose new location is still unknown: buffer.
      if (forward->second.buffered.size() < kMaxBufferedPackets) {
        ++counters_.packets_buffered;
        forward->second.buffered.push_back(inner);
      } else {
        ++counters_.packets_buffer_dropped;
      }
      return false;
    } else {
      // Late packet for a departed visitor: re-tunnel to the new care-of
      // address (paper §5.1: "it can forward the packets to the mobile
      // host's new care-of address").
      ++counters_.packets_forwarded_after_departure;
      const Ipv4Datagram retunneled =
          EncapsulateIpIp(inner, config_.address, forward->second.new_care_of);
      node_.stack().SendPreformedDatagram(retunneled, /*forwarding=*/false);
      return false;
    }
  }
  ++counters_.packets_dropped_unknown_visitor;
  return false;  // Tunnel packets at an FA never re-inject locally.
}

void DiscoverAndAttachViaForeignAgent(MobileHost& mobile, NetDevice* device, Duration timeout,
                                      std::function<void(bool)> done) {
  // Shared discovery state, alive until a decision is made.
  struct Discovery {
    std::unique_ptr<AgentAdvertisementListener> listener;
    bool decided = false;
  };
  auto state = std::make_shared<Discovery>();
  Simulator& sim = mobile.node().sim();

  state->listener = std::make_unique<AgentAdvertisementListener>(
      mobile.node(),
      [state, &mobile, device, done](const AgentAdvertisement& adv, MacAddress fa_mac) {
        (void)fa_mac;
        if (state->decided) {
          return;
        }
        state->decided = true;
        MSN_INFO("mip-mh", "%s: discovered foreign agent %s", mobile.node().name().c_str(),
                 adv.agent_address.ToString().c_str());
        mobile.AttachViaForeignAgent(device, adv.agent_address, done);
        // Destroy the listener outside its own callback.
        mobile.node().sim().Schedule(Duration(), [state] { state->listener.reset(); });
      });

  sim.Schedule(timeout, [state, done] {
    if (state->decided) {
      return;
    }
    state->decided = true;
    state->listener.reset();
    if (done) {
      done(false);
    }
  });
}

AgentAdvertisementListener::AgentAdvertisementListener(Node& node, Handler handler)
    : handler_(std::move(handler)) {
  socket_ = std::make_unique<UdpSocket>(node.stack());
  MSN_CHECK(socket_->Bind(kMipRegistrationPort)) << "fa relay registration port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        auto adv = AgentAdvertisement::Parse(data);
        if (adv && handler_) {
          handler_(*adv, meta.link_src);
        }
      });
}

}  // namespace msn
