#include "src/tracing/pcap.h"

#include <cstdio>

#include "src/net/headers.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace msn {
namespace {

// Little-endian writers (pcap files are conventionally host-endian; we fix
// little-endian and use the standard magic so readers byte-swap as needed).
void PutU16Le(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32Le(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32Le(const std::vector<uint8_t>& in, size_t at) {
  return static_cast<uint32_t>(in[at]) | (static_cast<uint32_t>(in[at + 1]) << 8) |
         (static_cast<uint32_t>(in[at + 2]) << 16) | (static_cast<uint32_t>(in[at + 3]) << 24);
}

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr size_t kEthernetHeaderLen = 14;

}  // namespace

std::string CapturedFrame::Summary() const {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "%12.6f %-8s %s ", timestamp.ToSecondsF(),
                device_name.c_str(),
                direction == NetDevice::TapDirection::kTransmit ? "Tx" : "Rx");
  std::string out = prefix;
  if (frame.ethertype == EtherType::kArp) {
    auto arp = ArpMessage::Parse(frame.payload.span());
    out += arp ? arp->ToString() : "ARP (malformed)";
  } else if (auto dg = Ipv4Datagram::Parse(frame.payload.span())) {
    out += "IP ";
    out += dg->header.ToString();
    if (dg->header.protocol == IpProto::kIpIp) {
      auto inner = Ipv4Datagram::Parse(dg->payload);
      if (inner) {
        out += "  [inner: ";
        out += inner->header.ToString();
        out += "]";
      }
    }
  } else {
    out += "IP (malformed)";
  }
  if (!note.empty()) {
    out += "  [";
    out += note;
    out += "]";
  }
  return out;
}

PacketCapture::~PacketCapture() { DetachAll(); }

void PacketCapture::Attach(Simulator& sim, NetDevice* device) {
  device->SetTap([this, &sim, device](const EthernetFrame& frame,
                                      NetDevice::TapDirection dir) {
    frames_.push_back(CapturedFrame{sim.Now(), device->name(), dir, frame, /*note=*/""});
  });
  tapped_.push_back(device);
}

void PacketCapture::AttachMediumDrops(Simulator& sim, BroadcastMedium* medium) {
  medium->SetDropTap([this, &sim, medium](const EthernetFrame& frame,
                                          FrameDropReason reason) {
    const char* note = "dropped";
    switch (reason) {
      case FrameDropReason::kRandomLoss:
        note = "dropped: random-loss";
        break;
      case FrameDropReason::kFaultInjected:
        note = "dropped: fault";
        break;
      case FrameDropReason::kUnmatched:
        note = "dropped: unmatched";
        break;
    }
    frames_.push_back(CapturedFrame{sim.Now(), medium->name(),
                                    NetDevice::TapDirection::kReceive, frame, note});
  });
  tapped_media_.push_back(medium);
}

void PacketCapture::DetachAll() {
  for (NetDevice* device : tapped_) {
    device->ClearTap();
  }
  tapped_.clear();
  for (BroadcastMedium* medium : tapped_media_) {
    medium->ClearDropTap();
  }
  tapped_media_.clear();
}

std::string PacketCapture::Render() const {
  std::string out;
  for (const CapturedFrame& f : frames_) {
    out += f.Summary();
    out += '\n';
  }
  return out;
}

std::vector<uint8_t> PacketCapture::ToPcapBytes() const {
  std::vector<uint8_t> out;
  // Global header.
  PutU32Le(out, kPcapMagic);
  PutU16Le(out, 2);   // Version major.
  PutU16Le(out, 4);   // Version minor.
  PutU32Le(out, 0);   // Thiszone.
  PutU32Le(out, 0);   // Sigfigs.
  PutU32Le(out, 65535);  // Snaplen.
  PutU32Le(out, kLinkTypeEthernet);

  for (const CapturedFrame& f : frames_) {
    const int64_t ns = f.timestamp.nanos();
    PutU32Le(out, static_cast<uint32_t>(ns / 1000000000));
    PutU32Le(out, static_cast<uint32_t>((ns % 1000000000) / 1000));
    const uint32_t caplen = static_cast<uint32_t>(kEthernetHeaderLen + f.frame.payload.size());
    PutU32Le(out, caplen);
    PutU32Le(out, caplen);
    // Synthesized Ethernet II header.
    out.insert(out.end(), f.frame.dst.bytes().begin(), f.frame.dst.bytes().end());
    out.insert(out.end(), f.frame.src.bytes().begin(), f.frame.src.bytes().end());
    const uint16_t ethertype = static_cast<uint16_t>(f.frame.ethertype);
    out.push_back(static_cast<uint8_t>(ethertype >> 8));  // Network order on the wire.
    out.push_back(static_cast<uint8_t>(ethertype & 0xff));
    out.insert(out.end(), f.frame.payload.begin(), f.frame.payload.end());
  }
  return out;
}

bool PacketCapture::WritePcapFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const std::vector<uint8_t> bytes = ToPcapBytes();
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  std::fclose(file);
  return ok;
}

int PacketCapture::CountPcapRecords(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 24 || GetU32Le(bytes, 0) != kPcapMagic ||
      GetU32Le(bytes, 20) != kLinkTypeEthernet) {
    return -1;
  }
  size_t at = 24;
  int records = 0;
  while (at + 16 <= bytes.size()) {
    const uint32_t caplen = GetU32Le(bytes, at + 8);
    const uint32_t origlen = GetU32Le(bytes, at + 12);
    if (caplen != origlen || at + 16 + caplen > bytes.size()) {
      return -1;
    }
    at += 16 + caplen;
    ++records;
  }
  return at == bytes.size() ? records : -1;
}

}  // namespace msn
