#include "src/mip/vif.h"

namespace msn {

VirtualInterface::VirtualInterface(Simulator& sim, std::string name)
    : NetDevice(sim, std::move(name), MacAddress::Zero()) {
  set_bring_up_time(Duration());
  set_mtu(65535);
  ForceUp();
}

bool VirtualInterface::Transmit(const EthernetFrame& frame) {
  if (frame.ethertype != EtherType::kIpv4 || !encap_handler_) {
    return false;
  }
  auto dg = Ipv4Datagram::Parse(frame.payload);
  if (!dg) {
    return false;
  }
  ++packets_encapsulated_;
  encap_handler_(*dg);
  return true;
}

void VirtualInterface::SendToMedium(const EthernetFrame& frame) {
  (void)frame;  // Unreachable: Transmit never enqueues.
}

}  // namespace msn
