// Unit tests for DHCP: message formats, lease lifecycle, reassignment
// avoidance, retries, and integration with the mobile host's foreign attach.
#include <gtest/gtest.h>

#include "src/dhcp/dhcp.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

TEST(DhcpMessageTest, RoundTrip) {
  DhcpMessage msg;
  msg.op = DhcpOp::kOffer;
  msg.xid = 0xcafebabe;
  msg.client_mac = MacAddress::FromId(42);
  msg.yiaddr = Ipv4Address(36, 8, 0, 100);
  msg.server = Ipv4Address(36, 8, 0, 1);
  msg.gateway = Ipv4Address(36, 8, 0, 1);
  msg.prefix_len = 16;
  msg.lease_sec = 600;

  auto bytes = msg.Serialize();
  ASSERT_EQ(bytes.size(), DhcpMessage::kSize);
  auto parsed = DhcpMessage::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, DhcpOp::kOffer);
  EXPECT_EQ(parsed->xid, 0xcafebabeu);
  EXPECT_EQ(parsed->client_mac, MacAddress::FromId(42));
  EXPECT_EQ(parsed->yiaddr, Ipv4Address(36, 8, 0, 100));
  EXPECT_EQ(parsed->prefix_len, 16);
  EXPECT_EQ(parsed->lease_sec, 600u);
}

TEST(DhcpMessageTest, RejectsBadOpAndTruncation) {
  DhcpMessage msg;
  auto bytes = msg.Serialize();
  bytes[0] = 0;
  EXPECT_FALSE(DhcpMessage::Parse(bytes).has_value());
  bytes[0] = 7;
  EXPECT_FALSE(DhcpMessage::Parse(bytes).has_value());
  bytes[0] = 1;
  bytes.resize(10);
  EXPECT_FALSE(DhcpMessage::Parse(bytes).has_value());
}

class DhcpFixture : public ::testing::Test {
 protected:
  DhcpFixture() {
    TestbedConfig cfg;
    cfg.seed = 21;
    cfg.realistic_delays = false;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    // Put the MH's Ethernet on net 36.8 and bring it up, unconfigured.
    tb_->mh->stack().routes().RemoveForDevice(tb_->mh_eth);
    tb_->mh->stack().UnconfigureAddress(tb_->mh_eth);
    tb_->MoveMhEthernetTo(tb_->net8.get());
    tb_->ForceEthUp();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(DhcpFixture, AcquireLease) {
  DhcpClient client(*tb_->mh, tb_->mh_eth);
  std::optional<DhcpLease> lease;
  client.Acquire([&](std::optional<DhcpLease> l) { lease = l; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(Testbed::Net8().Contains(lease->address));
  EXPECT_EQ(lease->gateway, Testbed::RouterOn8());
  EXPECT_EQ(lease->mask.prefix_len(), 16);
  EXPECT_EQ(tb_->dhcp_net8->active_leases(), 1u);
  EXPECT_EQ(tb_->dhcp_net8->counters().acks, 1u);
}

TEST_F(DhcpFixture, SameClientKeepsItsAddress) {
  DhcpClient client(*tb_->mh, tb_->mh_eth);
  Ipv4Address first;
  client.Acquire([&](std::optional<DhcpLease> l) { first = l->address; });
  tb_->RunFor(Seconds(2));
  Ipv4Address second;
  client.Acquire([&](std::optional<DhcpLease> l) { second = l->address; });
  tb_->RunFor(Seconds(2));
  EXPECT_EQ(first, second);
  EXPECT_EQ(tb_->dhcp_net8->active_leases(), 1u);
}

TEST_F(DhcpFixture, ReassignmentAvoidance) {
  // Paper §5.1: a well-written server avoids reassigning a released address
  // for as long as possible. Release an address and verify the next
  // allocation to a *different* client gets a different one.
  DhcpClient client(*tb_->mh, tb_->mh_eth);
  Ipv4Address first;
  client.Acquire([&](std::optional<DhcpLease> l) { first = l->address; });
  tb_->RunFor(Seconds(2));
  client.Release();
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(tb_->dhcp_net8->active_leases(), 0u);
  // The released address went to the back of the free list.
  EXPECT_NE(tb_->dhcp_net8->PeekNextFree(), first);
}

TEST_F(DhcpFixture, AcquisitionTimesOutWithoutServer) {
  tb_->dhcp_net8.reset();  // Kill the server.
  DhcpClient::Config cc;
  cc.retry_interval = Milliseconds(500);
  cc.max_retries = 2;
  DhcpClient client(*tb_->mh, tb_->mh_eth, cc);
  bool completed = false;
  bool got_lease = true;
  client.Acquire([&](std::optional<DhcpLease> l) {
    completed = true;
    got_lease = l.has_value();
  });
  tb_->RunFor(Seconds(5));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_lease);
}

TEST_F(DhcpFixture, AutoRenewalRefreshesLease) {
  DhcpServer::Config sc;
  sc.device = static_cast<NetDevice*>(tb_->router->FindDevice("eth8"));
  sc.subnet = Testbed::Net8();
  sc.gateway = Testbed::RouterOn8();
  sc.lease_time = Seconds(10);
  tb_->dhcp_net8 = std::make_unique<DhcpServer>(*tb_->router, sc);
  // Two servers now answer (old default one was replaced) — reset first.
  // (The ctor above replaced the unique_ptr, destroying the old server.)

  DhcpClient client(*tb_->mh, tb_->mh_eth);
  std::optional<DhcpLease> lease;
  client.Acquire([&](std::optional<DhcpLease> l) { lease = l; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(lease.has_value());
  // Renewals at half lease time keep the lease alive well past its original
  // expiry.
  tb_->RunFor(Seconds(30));
  EXPECT_GE(client.renewals(), 2u);
  EXPECT_EQ(tb_->dhcp_net8->active_leases(), 1u);
}

TEST_F(DhcpFixture, PoolExhaustion) {
  DhcpServer::Config sc;
  sc.device = static_cast<NetDevice*>(tb_->router->FindDevice("eth8"));
  sc.subnet = Testbed::Net8();
  sc.gateway = Testbed::RouterOn8();
  sc.pool_size = 1;
  tb_->dhcp_net8 = std::make_unique<DhcpServer>(*tb_->router, sc);

  DhcpClient first(*tb_->mh, tb_->mh_eth);
  std::optional<DhcpLease> lease1;
  first.Acquire([&](std::optional<DhcpLease> l) { lease1 = l; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(lease1.has_value());

  // A second client (distinct MAC) on the same segment gets nothing.
  Node other(tb_->sim, "other");
  EthernetDevice* odev = other.AddEthernet("eth0", tb_->net8.get());
  odev->ForceUp();
  DhcpClient::Config cc;
  cc.retry_interval = Milliseconds(500);
  cc.max_retries = 1;
  DhcpClient second(other, odev, cc);
  bool completed = false;
  bool got = true;
  second.Acquire([&](std::optional<DhcpLease> l) {
    completed = true;
    got = l.has_value();
  });
  tb_->RunFor(Seconds(5));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got);
  EXPECT_GE(tb_->dhcp_net8->counters().pool_exhausted, 1u);
}

TEST_F(DhcpFixture, DhcpDrivenForeignAttach) {
  // The full paper flow: acquire a care-of address via DHCP, then register
  // it with the home agent.
  DhcpClient client(*tb_->mh, tb_->mh_eth);
  bool attached = false;
  client.Acquire([&](std::optional<DhcpLease> lease) {
    ASSERT_TRUE(lease.has_value());
    MobileHost::Attachment att;
    att.device = tb_->mh_eth;
    att.care_of = lease->address;
    att.mask = lease->mask;
    att.gateway = lease->gateway;
    tb_->mobile->AttachForeign(att, [&](bool ok) { attached = ok; });
  });
  tb_->RunFor(Seconds(5));
  EXPECT_TRUE(attached);
  EXPECT_TRUE(tb_->mobile->registered());
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(Testbed::Net8().Contains(binding->care_of));
}

}  // namespace
}  // namespace msn
