// Invariant oracles for fuzz runs (DESIGN.md §13).
//
// An OracleSuite watches one scenario execution — sampling live state on a
// periodic tick and auditing final state when the run ends — and records every
// invariant violation it can prove. The invariants are chosen so that a
// violation indicates a protocol bug, never an unlucky scenario: checks that
// faults or movement could legitimately trip are gated on windows the spec
// proves quiet, or on the run settling cleanly (all faults over, a final move
// with a long tail).
//
// Oracles:
//   ttl-loop            any IP stack counted a TTL-expired drop => a
//                       forwarding loop exists somewhere.
//   binding-table       the HA never holds more than one binding for the
//                       single mobile host, and its "ha.bindings" gauge
//                       agrees with the table.
//   binding-agreement   terminal MH registration state and the HA binding
//                       table tell the same story.
//   registration-liveness  a cleanly settling run ends in the state its last
//                       movement step promises (registered away / at home).
//   stale-tunnel        once home and deregistered, the HA stops tunneling.
//   probe-conservation  every probe is accounted for (echoed or lost), and
//                       none is lost during an interval that was provably
//                       quiet end to end.
//   tcp-delivery        the TCP-lite receiver saw exactly the bytes sent, in
//                       order, no duplicates; a settling run completes the
//                       transfer.
//   mpt-fallback        a triangle probe leaves the policy table in the
//                       correct verified state (kTriangle on success,
//                       kTunnelHome fallback on failure), and a transit
//                       filter always forces the fallback.
//   counter-consistency cross-component counter inequalities (decap <=
//                       tunneled, MH accepts <= HA accepts, ...).
//   coverage-continuity (mobility runs) while some cell offers clean
//                       coverage for a long continuous stretch, the MH must
//                       not stay unable to communicate: motion plus
//                       signal-driven handoff always finds a way back.
//   shard-consistency   the sharded binding table's internal invariants hold
//                       (every binding and queued request lives in the shard
//                       its home address hashes to), and each shard's
//                       exported bindings gauge tracks its table exactly.
//   fleet-convergence   (overload runs) every synthetic registration client
//                       reaches a terminal state, none gives up on a
//                       fault-free run, and none is terminally denied unless
//                       the scenario injected duplicate frames.
#ifndef MSN_SRC_CHECK_ORACLES_H_
#define MSN_SRC_CHECK_ORACLES_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/check/scenario_gen.h"
#include "src/check/traffic.h"
#include "src/fault/fault_injector.h"
#include "src/topo/testbed.h"

namespace msn {

class RegistrationLoadGenerator;

struct OracleReport {
  struct Violation {
    std::string detail;  // First occurrence, human-readable.
    uint64_t count = 0;
  };

  // Keyed by oracle name; std::map so ToString() is deterministically
  // ordered. Repeat violations of one oracle bump the count but keep the
  // first detail, so reports stay small and byte-stable.
  std::map<std::string, Violation> violations;
  uint64_t checks = 0;

  void Add(const std::string& oracle, const std::string& detail);
  [[nodiscard]] bool failed() const { return !violations.empty(); }
  [[nodiscard]] std::string ToString() const;
};

// True when the scenario guarantees convergence: every fault window is over
// at least one second before the final movement step, and the run continues
// at least ten seconds past it. Only then do the terminal-state oracles
// (registration-liveness, binding-agreement, tcp completion) apply.
[[nodiscard]] bool SettlesCleanly(const ScenarioSpec& spec);

class OracleSuite {
 public:
  // Tick interval the fuzzer drives OnTick() at; quiet-window margins below
  // assume it.
  static constexpr Duration kTickInterval = Milliseconds(500);

  struct Media {
    FaultInjector* home = nullptr;
    FaultInjector* wired = nullptr;
    FaultInjector* radio = nullptr;
  };

  OracleSuite(Testbed& testbed, const ScenarioSpec& spec, const TrafficHarness& traffic,
              Media media);

  OracleSuite(const OracleSuite&) = delete;
  OracleSuite& operator=(const OracleSuite&) = delete;

  // Mobility runs: attach the driver so the coverage-continuity oracle can
  // see per-cell link quality. Call before Begin().
  void AttachMobility(const MobilityDriver* driver) { mobility_ = driver; }

  // Overload runs: attach the registration fleet so the fleet-convergence
  // oracle can audit its terminal ledger. Call before Begin().
  void AttachFleet(const RegistrationLoadGenerator* fleet) { fleet_ = fleet; }

  // Marks the movement-script start time: spec event offsets are interpreted
  // relative to it. Call immediately before MovementScript::Run().
  void Begin();

  // Periodic live checks + quiet-interval bookkeeping.
  void OnTick();

  // Terminal checks; also exports "check.*" counters into the testbed
  // registry. Call once, after the simulation ran to spec.duration.
  void Finish();

  const OracleReport& report() const { return report_; }

 private:
  // A spec event window during which probe loss is explainable (movement or
  // fault activity, with margins).
  struct NoisyWindow {
    Duration from;
    Duration to;
  };

  [[nodiscard]] bool QuietNow() const;
  [[nodiscard]] bool InNoisyWindow(Duration offset) const;
  void CloseQuietStretch(Time end);
  void CheckQuietProbeLoss();
  void ShardOracles();
  void FlowCacheCoherenceOracle();
  void FinalStateOracles();
  void TrafficOracles();
  void CounterOracles();
  void FleetOracles();

  Testbed& tb_;
  ScenarioSpec spec_;
  const TrafficHarness& traffic_;
  Media media_;
  OracleReport report_;

  bool settles_ = false;
  std::vector<NoisyWindow> noisy_;  // Sorted by `from`.
  Time start_;                      // Sim time of Begin().

  // Quiet-interval tracking for the probe-conservation oracle.
  std::optional<Time> quiet_since_;
  std::vector<std::pair<Time, Time>> quiet_stretches_;

  // Stale-tunnel oracle: HA tunneled-packet count sampled once the settled
  // at-home state is reached.
  std::optional<uint64_t> stale_tunnel_marker_;

  // coverage-continuity (mobility runs): consecutive ticks with some cell in
  // deep coverage, and consecutive ticks with the MH unable to communicate.
  // Long streaks of both at once mean the signal-driven handoff loop broke.
  const MobilityDriver* mobility_ = nullptr;
  int covered_ticks_ = 0;
  int disconnected_ticks_ = 0;

  // fleet-convergence (overload runs): the synthetic registration fleet.
  const RegistrationLoadGenerator* fleet_ = nullptr;
};

}  // namespace msn

#endif  // MSN_SRC_CHECK_ORACLES_H_
