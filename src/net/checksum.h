// The Internet checksum (RFC 1071): 16-bit one's-complement sum of
// one's-complement 16-bit words.
#ifndef MSN_SRC_NET_CHECKSUM_H_
#define MSN_SRC_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msn {

// Accumulates the checksum over several byte ranges (e.g. pseudo-header then
// payload). Fold() produces the final complemented 16-bit checksum.
class InternetChecksum {
 public:
  void Add(const uint8_t* data, size_t len);
  void Add(const std::vector<uint8_t>& data) { Add(data.data(), data.size()); }
  void AddU16(uint16_t v);
  void AddU32(uint32_t v);

  // Final checksum value (already complemented, ready to write to the wire).
  uint16_t Fold() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;  // True if an odd byte is pending pairing.
  uint8_t pending_ = 0;
};

// One-shot checksum over a single buffer.
uint16_t ComputeInternetChecksum(const uint8_t* data, size_t len);
uint16_t ComputeInternetChecksum(const std::vector<uint8_t>& data);

// Verifies a buffer whose checksum field is included: the folded sum over the
// whole buffer must be zero.
bool VerifyInternetChecksum(const uint8_t* data, size_t len);

}  // namespace msn

#endif  // MSN_SRC_NET_CHECKSUM_H_
