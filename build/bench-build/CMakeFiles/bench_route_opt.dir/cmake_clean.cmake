file(REMOVE_RECURSE
  "../bench/bench_route_opt"
  "../bench/bench_route_opt.pdb"
  "CMakeFiles/bench_route_opt.dir/bench_route_opt.cc.o"
  "CMakeFiles/bench_route_opt.dir/bench_route_opt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
