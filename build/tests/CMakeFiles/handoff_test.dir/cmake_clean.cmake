file(REMOVE_RECURSE
  "CMakeFiles/handoff_test.dir/handoff_test.cc.o"
  "CMakeFiles/handoff_test.dir/handoff_test.cc.o.d"
  "handoff_test"
  "handoff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
