// The metrics registry: named counters, gauges, and log-bucketed latency
// histograms.
//
// Every layer of the system (home agent, mobile host, IP stacks, media,
// fault injectors) registers its counters here so that one registry holds a
// complete, uniformly named picture of a run — the observability substrate
// the benchmark exporter (export.h) and the time-series sampler
// (time_series.h) read from.
//
// Naming convention: dot-separated, component first, instance next, field
// last — "ha.requests_received", "ip.mh.drop_no_route",
// "link.net8.frames_dropped", "dev.mh.eth0.queue_depth". Iteration order is
// always name-sorted, so exports are deterministic.
//
// Histograms use multiplicative (log) buckets with a configurable relative
// error bound: an observation x lands in bucket ceil(log_gamma(x)) with
// gamma = (1+e)/(1-e), and the bucket's representative value is off from any
// sample it holds by at most a factor of (1±e). Quantile estimates therefore
// carry a *guaranteed* relative error bound against the exact nearest-rank
// percentile (validated in tests/telemetry_test.cc against Percentile()).
#ifndef MSN_SRC_TELEMETRY_METRICS_H_
#define MSN_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace msn {

enum class MetricType { kCounter, kGauge, kHistogram };
const char* MetricTypeName(MetricType type);

// Deterministic, locale-independent number rendering shared by every
// exporter: integers print without a decimal point ("42"), everything else
// as shortest-ish round-trippable decimal ("7.39", "0.00123"). Identical
// inputs always produce identical bytes, which is what makes exported series
// diffable.
std::string FormatMetricValue(double value);

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// A handle to a registry-owned Counter that behaves like the plain uint64_t
// field it replaced: components migrated onto the registry keep their
// `++counters_.field` / `counters_.field += n` call sites unchanged, and
// snapshot accessors read through the implicit conversion. Null-safe: a
// default-constructed (unwired) handle counts nothing and reads zero.
class CounterRef {
 public:
  CounterRef() = default;
  explicit CounterRef(Counter* counter) : counter_(counter) {}

  CounterRef& operator++() {
    if (counter_ != nullptr) {
      counter_->Add(1);
    }
    return *this;
  }
  CounterRef& operator+=(uint64_t n) {
    if (counter_ != nullptr) {
      counter_->Add(n);
    }
    return *this;
  }
  operator uint64_t() const { return counter_ != nullptr ? counter_->value() : 0; }

 private:
  Counter* counter_ = nullptr;
};

// A value that can go up and down (binding count, queue depth). A gauge may
// instead carry a probe callback, in which case reads evaluate the probe —
// handy for sampling a quantity the owner never pushes (bytes received so
// far, live queue depth). Probe owners must outlive every read.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  void SetProbe(std::function<double()> probe) { probe_ = std::move(probe); }
  bool has_probe() const { return static_cast<bool>(probe_); }
  double value() const { return probe_ ? probe_() : value_; }

 private:
  double value_ = 0.0;
  std::function<double()> probe_;
};

// Log-bucketed histogram for non-negative observations (latencies in ms,
// sizes in bytes). Quantile estimates are within `relative_error` of the
// exact nearest-rank sample value; min/max/sum/count are exact.
class Histogram {
 public:
  static constexpr double kDefaultRelativeError = 0.01;
  // Observations at or below this land in the zero bucket (estimate 0).
  static constexpr double kMinTrackable = 1e-9;

  explicit Histogram(double relative_error = kDefaultRelativeError);

  // Records one observation. Negative values count as zero.
  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double relative_error() const { return relative_error_; }
  size_t bucket_count() const { return buckets_.size() + (zero_count_ > 0 ? 1 : 0); }

  // Nearest-rank quantile estimate; `p` in [0, 100]. p <= 0 returns the exact
  // min, p >= 100 the exact max; estimates are clamped into [min, max].
  [[nodiscard]] double Quantile(double p) const;

 private:
  int32_t BucketIndex(double value) const;
  double BucketEstimate(int32_t index) const;

  double relative_error_;
  double gamma_;
  double log_gamma_;
  uint64_t zero_count_ = 0;
  std::map<int32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// One metric's exported state. For counters and gauges `value` is the scalar
// reading; for histograms it is the observation count and `histogram` holds
// the distribution.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
  std::optional<HistogramSnapshot> histogram;
};

// Owns metrics by name. Get* calls create on first use and return the same
// instance thereafter; requesting an existing name as a different type is a
// programming error and aborts. Not thread-safe (the simulator is
// single-threaded by design).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  CounterRef GetCounterRef(const std::string& name) { return CounterRef(&GetCounter(name)); }
  Gauge& GetGauge(const std::string& name);
  // Creates (or rebinds) a gauge whose reads call `probe`.
  Gauge& GetProbeGauge(const std::string& name, std::function<double()> probe);
  Histogram& GetHistogram(const std::string& name,
                          double relative_error = Histogram::kDefaultRelativeError);

  bool Contains(const std::string& name) const;
  [[nodiscard]] std::optional<MetricType> TypeOf(const std::string& name) const;
  // Scalar reading used by the sampler: counter/gauge value; histogram count.
  [[nodiscard]] std::optional<double> ReadValue(const std::string& name) const;
  [[nodiscard]] const Histogram* FindHistogram(const std::string& name) const;

  size_t size() const { return metrics_.size(); }
  // Name-sorted.
  std::vector<std::string> Names() const;
  std::vector<MetricSnapshot> Snapshot() const;

  // Oracle snapshot: every metric under `prefix` ("" = all) as a name-sorted
  // scalar map (counter/gauge value; histogram count). Invariant oracles diff
  // two of these to reason about what a run segment did — the map form makes
  // "counter X never moved between checkpoints" a lookup, not a scan.
  [[nodiscard]] std::map<std::string, double> ScalarSnapshot(
      const std::string& prefix = std::string()) const;

  // Drops a metric (used when a short-lived probe owner unbinds itself).
  void Remove(const std::string& name) { metrics_.erase(name); }

 private:
  struct Entry {
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, MetricType type);

  // std::map so iteration (and therefore every export) is name-sorted.
  std::map<std::string, Entry> metrics_;
};

}  // namespace msn

#endif  // MSN_SRC_TELEMETRY_METRICS_H_
