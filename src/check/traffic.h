// The fuzzer's traffic mix: everything a ScenarioSpec's TrafficSpec asks for,
// wired into a Testbed and tracked well enough for the invariant oracles to
// audit afterwards.
//
//   - a correspondent-side UDP probe stream against the home address (the
//     paper's Figure 6 measurement harness), echoed by the mobile host;
//   - an optional TCP-lite transfer from the mobile host to the correspondent
//     with a position-derived byte pattern, so the receiver can prove
//     in-order, duplicate-free delivery byte by byte;
//   - optional periodic pings of the home address;
//   - an optional one-shot triangle-route probe, with the policy-table state
//     captured at the moment the probe resolves.
#ifndef MSN_SRC_CHECK_TRAFFIC_H_
#define MSN_SRC_CHECK_TRAFFIC_H_

#include <cstdint>
#include <memory>

#include "src/check/scenario_gen.h"
#include "src/mip/policy_table.h"
#include "src/node/icmp.h"
#include "src/tcplite/tcplite.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {

// The byte the TCP-lite transfer carries at stream position `i`. The period
// (251, prime) is coprime to every power-of-two segment size, so a dropped,
// duplicated, or reordered segment misaligns the pattern immediately.
inline uint8_t TcpPatternByte(uint64_t i) {
  return static_cast<uint8_t>((i * 31 + 7) % 251);
}

class TrafficHarness {
 public:
  static constexpr uint16_t kProbePort = 4207;
  static constexpr uint16_t kTcpPort = 5001;

  struct TcpStats {
    bool client_connected = false;
    bool connect_failed = false;  // RST during handshake; never expected.
    bool client_closed = false;
    bool server_closed = false;
    uint64_t server_received = 0;
    // Every received byte matched TcpPatternByte(position). Checked
    // incrementally, so one duplicated or misordered delivered byte latches
    // this false forever.
    bool pattern_ok = true;
  };

  struct PingStats {
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t failed = 0;
  };

  struct TriangleResult {
    bool attempted = false;  // The scheduled probe moment arrived.
    bool fired = false;      // MH was registered, so the probe actually ran.
    bool done = false;       // Probe callback resolved.
    bool ok = false;
    bool on_radio = false;   // Fired while attached via the lossy radio.
    MobilePolicy policy_after = MobilePolicy::kTunnelHome;
  };

  TrafficHarness(Testbed& testbed, const ScenarioSpec& spec);
  ~TrafficHarness();

  TrafficHarness(const TrafficHarness&) = delete;
  TrafficHarness& operator=(const TrafficHarness&) = delete;

  // Call once, after Testbed::StartMobileAtHome() and before the movement
  // script runs. Probe/ping streams start immediately; the TCP client
  // connects one second in; the triangle probe fires at its scheduled time.
  void Start();

  const ProbeSender& probes() const { return *probe_sender_; }
  const TcpStats& tcp() const { return tcp_stats_; }
  const PingStats& pings() const { return ping_stats_; }
  const TriangleResult& triangle() const { return triangle_; }

 private:
  void StartTcp();
  void FireTrianglePr();

  Testbed& tb_;
  ScenarioSpec spec_;

  std::unique_ptr<ProbeEchoServer> echo_server_;  // On the mobile host.
  std::unique_ptr<ProbeSender> probe_sender_;     // On the correspondent.

  std::unique_ptr<TcpLite> mh_tcp_;
  std::unique_ptr<TcpLite> ch_tcp_;
  TcpStats tcp_stats_;

  std::unique_ptr<Pinger> pinger_;  // On the correspondent.
  std::unique_ptr<PeriodicTask> ping_task_;
  PingStats ping_stats_;

  TriangleResult triangle_;
};

}  // namespace msn

#endif  // MSN_SRC_CHECK_TRAFFIC_H_
