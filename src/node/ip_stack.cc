#include "src/node/ip_stack.h"

#include <algorithm>
#include <utility>

#include "src/link/net_device.h"
#include "src/net/checksum.h"
#include "src/net/datapath_tuning.h"
#include "src/node/flow_cache.h"
#include "src/node/udp.h"
#include "src/util/assert.h"
#include "src/util/byte_buffer.h"
#include "src/util/logging.h"

namespace msn {

namespace {

// Inline dispatch for internal zero-delay pipeline stages. When the stage
// completes at the current instant and nothing else is due at this instant,
// the scheduled continuation would be the very next event popped — running it
// inline is order-identical and skips the event-queue round trip, which is
// most of the per-packet cost in calibration-free runs. Any same-time event
// pending, or any nonzero delay, falls back to the scheduler. Never used for
// the first SendDatagram stage: applications observe that asynchrony.
template <typename Fn>
void DispatchStage(Simulator& sim, Time fire, Fn&& fn) {
  if (GlobalDatapathTuning().inline_pipeline && fire == sim.Now() &&
      sim.NextEventTime() > sim.Now()) {
    std::forward<Fn>(fn)();
    return;
  }
  sim.ScheduleAt(fire, std::forward<Fn>(fn));
}

}  // namespace

IpStack::IpStack(Simulator& sim, std::string node_name, MetricsRegistry* metrics)
    : sim_(sim), node_name_(std::move(node_name)),
      arp_(std::make_unique<ArpService>(sim, *this)),
      reassembly_(std::make_unique<ReassemblyService>(sim)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string prefix = "ip." + node_name_ + ".";
  counters_.datagrams_sent = metrics->GetCounterRef(prefix + "datagrams_sent");
  counters_.datagrams_delivered = metrics->GetCounterRef(prefix + "datagrams_delivered");
  counters_.datagrams_forwarded = metrics->GetCounterRef(prefix + "datagrams_forwarded");
  counters_.drop_no_route = metrics->GetCounterRef(prefix + "drop_no_route");
  counters_.drop_arp_failure = metrics->GetCounterRef(prefix + "drop_arp_failure");
  counters_.drop_ttl = metrics->GetCounterRef(prefix + "drop_ttl");
  counters_.drop_filtered = metrics->GetCounterRef(prefix + "drop_filtered");
  counters_.drop_no_handler = metrics->GetCounterRef(prefix + "drop_no_handler");
  counters_.drop_bad_packet = metrics->GetCounterRef(prefix + "drop_bad_packet");
  counters_.drop_device = metrics->GetCounterRef(prefix + "drop_device");
  counters_.drop_not_for_us = metrics->GetCounterRef(prefix + "drop_not_for_us");
  counters_.icmp_echo_replies_sent = metrics->GetCounterRef(prefix + "icmp_echo_replies_sent");
  counters_.icmp_errors_sent = metrics->GetCounterRef(prefix + "icmp_errors_sent");
  counters_.icmp_redirects_sent = metrics->GetCounterRef(prefix + "icmp_redirects_sent");
  counters_.icmp_redirects_accepted =
      metrics->GetCounterRef(prefix + "icmp_redirects_accepted");
  counters_.fragments_sent = metrics->GetCounterRef(prefix + "fragments_sent");
  counters_.drop_fragmentation_needed =
      metrics->GetCounterRef(prefix + "drop_fragmentation_needed");
  flow_cache_ = std::make_unique<FlowCache>(GlobalDatapathTuning().flow_cache_capacity,
                                            *metrics, node_name_);
  // Route changes of any provenance (ifconfig, redirects, tests poking
  // routes() directly) orphan cached decisions without the mutator's help.
  routes_.SetChangeListener([this] { InvalidateFlowCache(); });
}

IpStack::~IpStack() = default;

IpStack::Counters IpStack::counters() const {
  Counters c;
  c.datagrams_sent = counters_.datagrams_sent;
  c.datagrams_delivered = counters_.datagrams_delivered;
  c.datagrams_forwarded = counters_.datagrams_forwarded;
  c.drop_no_route = counters_.drop_no_route;
  c.drop_arp_failure = counters_.drop_arp_failure;
  c.drop_ttl = counters_.drop_ttl;
  c.drop_filtered = counters_.drop_filtered;
  c.drop_no_handler = counters_.drop_no_handler;
  c.drop_bad_packet = counters_.drop_bad_packet;
  c.drop_device = counters_.drop_device;
  c.drop_not_for_us = counters_.drop_not_for_us;
  c.icmp_echo_replies_sent = counters_.icmp_echo_replies_sent;
  c.icmp_errors_sent = counters_.icmp_errors_sent;
  c.icmp_redirects_sent = counters_.icmp_redirects_sent;
  c.icmp_redirects_accepted = counters_.icmp_redirects_accepted;
  c.fragments_sent = counters_.fragments_sent;
  c.drop_fragmentation_needed = counters_.drop_fragmentation_needed;
  return c;
}

// --- Interfaces ---------------------------------------------------------------

void IpStack::AddInterface(NetDevice* device) {
  if (FindInterface(device) != nullptr) {
    return;
  }
  interfaces_.push_back(InterfaceEntry{device, Ipv4Address::Any(), SubnetMask(0), false});
  device->SetReceiveHandler([this](NetDevice& dev, EthernetFrame&& frame) {
    ReceiveFrame(dev, std::move(frame));
  });
}

void IpStack::RemoveInterface(NetDevice* device) {
  UnconfigureAddress(device);
  routes_.RemoveForDevice(device);
  interfaces_.erase(std::remove_if(interfaces_.begin(), interfaces_.end(),
                                   [device](const InterfaceEntry& e) {
                                     return e.device == device;
                                   }),
                    interfaces_.end());
  // The route listener may not have fired (device had no routes), but cached
  // decisions can still point at the vanished device.
  InvalidateFlowCache();
}

IpStack::InterfaceEntry* IpStack::FindInterface(NetDevice* device) {
  for (InterfaceEntry& e : interfaces_) {
    if (e.device == device) {
      return &e;
    }
  }
  return nullptr;
}

const IpStack::InterfaceEntry* IpStack::FindInterface(NetDevice* device) const {
  for (const InterfaceEntry& e : interfaces_) {
    if (e.device == device) {
      return &e;
    }
  }
  return nullptr;
}

void IpStack::ConfigureAddress(NetDevice* device, Ipv4Address addr, SubnetMask mask) {
  InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr) {
    AddInterface(device);
    entry = FindInterface(device);
  }
  if (entry->configured) {
    routes_.Remove(Subnet(entry->addr, entry->mask), device);
  }
  entry->addr = addr;
  entry->mask = mask;
  entry->configured = true;
  // The connected-subnet route, as ifconfig installs.
  routes_.Add(RouteEntry{Subnet(addr, mask), Ipv4Address::Any(), device, addr, 0});
  MSN_DEBUG("ip", "%s: %s configured %s/%d", node_name_.c_str(), device->name().c_str(),
            addr.ToString().c_str(), mask.prefix_len());
}

void IpStack::UnconfigureAddress(NetDevice* device) {
  InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return;
  }
  routes_.Remove(Subnet(entry->addr, entry->mask), device);
  entry->addr = Ipv4Address::Any();
  entry->mask = SubnetMask(0);
  entry->configured = false;
}

std::optional<Ipv4Address> IpStack::GetInterfaceAddress(NetDevice* device) const {
  const InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return std::nullopt;
  }
  return entry->addr;
}

std::optional<Subnet> IpStack::GetInterfaceSubnet(NetDevice* device) const {
  const InterfaceEntry* entry = FindInterface(device);
  if (entry == nullptr || !entry->configured) {
    return std::nullopt;
  }
  return Subnet(entry->addr, entry->mask);
}

bool IpStack::IsLocalAddress(Ipv4Address addr) const {
  for (const InterfaceEntry& e : interfaces_) {
    if (e.configured && e.addr == addr) {
      return true;
    }
  }
  return false;
}

std::vector<NetDevice*> IpStack::Interfaces() const {
  std::vector<NetDevice*> out;
  out.reserve(interfaces_.size());
  for (const InterfaceEntry& e : interfaces_) {
    out.push_back(e.device);
  }
  return out;
}

bool IpStack::IsBroadcastFor(Ipv4Address addr) const {
  if (addr.IsBroadcast()) {
    return true;
  }
  for (const InterfaceEntry& e : interfaces_) {
    if (e.configured && Subnet(e.addr, e.mask).BroadcastAddress() == addr &&
        e.mask.prefix_len() < 32) {
      return true;
    }
  }
  return false;
}

// --- Routing -------------------------------------------------------------------

std::optional<RouteDecision> IpStack::LookupUncached(const RouteQuery& query,
                                                     CounterRef*& policy_counter,
                                                     uint64_t*& policy_hits) {
  policy_counter = nullptr;
  policy_hits = nullptr;
  // The mobility hook: the paper's enhanced ip_rt_route() consults the Mobile
  // Policy Table first and falls through to the normal table.
  if (route_override_) {
    if (auto decision = route_override_(query)) {
      policy_counter = decision->policy_counter;
      policy_hits = decision->policy_hits;
      if (!decision->defer_to_table) {
        return decision;
      }
      // kDirect local role: the policy accounting sticks, the forwarding
      // answer comes from the normal table below.
    }
  }
  auto entry = routes_.Lookup(query.dst);
  if (!entry) {
    return std::nullopt;
  }
  RouteDecision decision;
  decision.device = entry->device;
  decision.next_hop = entry->gateway;
  if (!query.src_hint.IsAny()) {
    decision.src = query.src_hint;
  } else if (!entry->pref_src.IsAny()) {
    decision.src = entry->pref_src;
  } else {
    decision.src = GetInterfaceAddress(entry->device).value_or(Ipv4Address::Any());
  }
  decision.policy_counter = policy_counter;
  decision.policy_hits = policy_hits;
  return decision;
}

std::optional<RouteDecision> IpStack::RouteLookup(const RouteQuery& query) {
  CounterRef* policy_counter = nullptr;
  uint64_t* policy_hits = nullptr;
  // Only destination-determined queries may use the cache: forwarded packets
  // never consult src_hint, and for local sends the mobile-host override's
  // local-role exemption branches on it — those are answered under the
  // canonical src_hint = Any and the bound source substituted on the way
  // out, while non-Any local queries (override-exempt by definition) go
  // straight to the tables.
  const bool eligible = GlobalDatapathTuning().flow_cache &&
                        (query.forwarding || query.src_hint.IsAny());
  std::optional<RouteDecision> decision;
  if (!eligible) {
    decision = LookupUncached(query, policy_counter, policy_hits);
  } else if (const FlowCache::Value* hit =
                 flow_cache_->Find(query.dst, query.forwarding)) {
    decision = hit->decision;
    policy_counter = hit->policy_counter;
    policy_hits = hit->policy_hits;
    if (decision && !query.src_hint.IsAny()) {
      decision->src = query.src_hint;
    }
  } else {
    RouteQuery canonical = query;
    canonical.src_hint = Ipv4Address::Any();
    decision = LookupUncached(canonical, policy_counter, policy_hits);
    flow_cache_->Insert(query.dst, query.forwarding,
                        FlowCache::Value{decision, policy_counter, policy_hits});
    if (decision && !query.src_hint.IsAny()) {
      decision->src = query.src_hint;
    }
  }
  // Per-packet policy accounting happens here — once per non-advisory query,
  // identically for cached and uncached answers.
  if (!query.advisory) {
    if (policy_counter != nullptr) {
      ++*policy_counter;
    }
    if (policy_hits != nullptr) {
      ++*policy_hits;
    }
  }
  if (decision) {
    decision->defer_to_table = false;
  }
  return decision;
}

std::optional<RouteDecision> IpStack::RouteLookupUncached(const RouteQuery& query) {
  CounterRef* policy_counter = nullptr;
  uint64_t* policy_hits = nullptr;
  auto decision = LookupUncached(query, policy_counter, policy_hits);
  if (decision) {
    decision->defer_to_table = false;
  }
  return decision;
}

void IpStack::InvalidateFlowCache() { flow_cache_->Invalidate(); }

// --- Delay model ------------------------------------------------------------------

Duration IpStack::DrawDelay(Duration mean, Duration jitter) {
  if (mean.nanos() <= 0) {
    return Duration();
  }
  const double ns = sim_.rng().NormalAtLeast(static_cast<double>(mean.nanos()),
                                             static_cast<double>(jitter.nanos()),
                                             static_cast<double>(mean.nanos()) * 0.25);
  return Duration::FromNanos(static_cast<int64_t>(ns));
}

Time IpStack::PipelineDelay(Time& busy_until, Duration mean, Duration jitter) {
  const Time start = std::max(sim_.Now(), busy_until);
  const Time done = start + DrawDelay(mean, jitter);
  busy_until = done;
  return done;
}

// --- Send path -----------------------------------------------------------------

void IpStack::SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::vector<uint8_t> payload, SendOptions opts) {
  Ipv4Header header;
  header.src = src;
  header.dst = dst;
  header.protocol = proto;
  header.ttl = opts.ttl;
  header.identification = next_ip_id_++;
  // The wire image is built exactly once here; every later stage (routing,
  // queueing, transmission, forwarding at each hop) shares or patches it.
  Packet wire = BuildIpv4Packet(header, payload);
  ++counters_.datagrams_sent;
  const Time fire = PipelineDelay(send_pipe_busy_, delays_.send_mean, delays_.send_jitter);
  sim_.ScheduleAt(fire, [this, header, wire = std::move(wire), opts]() mutable {
    DoSend(header, std::move(wire), /*forwarding=*/false, opts);
  });
}

void IpStack::SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::vector<uint8_t> payload) {
  SendDatagram(src, dst, proto, std::move(payload), SendOptions{});
}

void IpStack::SendPreformedDatagram(const Ipv4Datagram& dg, bool forwarding) {
  Ipv4Header header = dg.header;
  Packet wire = BuildIpv4Packet(header, dg.payload);
  DoSend(header, std::move(wire), forwarding, SendOptions{});
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::SendPreformedPacket(const Ipv4Header& header, Packet wire, bool forwarding) {
  MSN_ASSERT(header.total_length == wire.size())
      << "preformed packet wire/header length mismatch";
  DoSend(header, std::move(wire), forwarding, SendOptions{});
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::DoSend(Ipv4Header header, Packet wire, bool forwarding, SendOptions opts) {
  const Ipv4Address dst = header.dst;

  if (opts.force_device != nullptr) {
    TransmitViaDevice(opts.force_device, header, std::move(wire), dst, opts.force_dst_mac);
    return;
  }

  // Packets to one of our own addresses short-circuit to local delivery.
  if (IsLocalAddress(dst) || dst.IsLoopback()) {
    const Time fire =
        PipelineDelay(deliver_pipe_busy_, delays_.deliver_mean, delays_.deliver_jitter);
    sim_.ScheduleAt(
        fire, [this, header, payload = wire.Slice(Ipv4Header::kSize,
                                                  wire.size() - Ipv4Header::kSize)] {
          Deliver(header, payload, nullptr, MacAddress::Zero());
        });
    return;
  }

  RouteQuery query{dst, header.src, forwarding};
  auto decision = RouteLookup(query);
  if (!decision || decision->device == nullptr) {
    ++counters_.drop_no_route;
    MSN_DEBUG("ip", "%s: no route to %s", node_name_.c_str(), dst.ToString().c_str());
    return;
  }
  if (!forwarding && header.src.IsAny()) {
    header.src = decision->src;
    if (header.src.IsAny() && !opts.allow_unconfigured_source) {
      ++counters_.drop_no_route;
      return;
    }
    // Source selection changed the header: rewrite the wire image in place
    // (the buffer is unshared this early, so no copy happens).
    header.SerializeTo(wire.MutableData());
  }
  TransmitViaDevice(decision->device, header, std::move(wire),
                    decision->EffectiveNextHop(dst), opts.force_dst_mac);
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::TransmitViaDevice(NetDevice* device, const Ipv4Header& header, Packet wire,
                                Ipv4Address next_hop,
                                std::optional<MacAddress> force_dst_mac) {
  if (device == nullptr) {
    ++counters_.drop_device;
    return;
  }

  // The MAC is usually known synchronously (forced, broadcast, loopback, or
  // an ARP cache hit); resolving it first keeps the common single-packet
  // path free of both the pieces vector and the std::function callback that
  // ArpService::Resolve would otherwise materialize on every forwarded
  // packet.
  const std::optional<MacAddress> fast_mac =
      ResolveDstMacFast(device, next_hop, force_dst_mac);

  // Fragment datagrams exceeding the egress MTU; with DF set, drop and
  // signal path-MTU discovery instead. Fragmentation is the one egress path
  // that still materializes owned copies; it is rare and off the fast path.
  if (wire.size() > device->mtu()) {
    if (header.dont_fragment) {
      ++counters_.drop_fragmentation_needed;
      SendIcmpError(header, wire.span().subspan(Ipv4Header::kSize),
                    IcmpUnreachableCode::kFragmentationNeeded);
      return;
    }
    Ipv4Datagram dg;
    dg.header = header;
    dg.payload.assign(wire.begin() + Ipv4Header::kSize, wire.end());
    std::vector<Packet> pieces;
    for (const Ipv4Datagram& piece : FragmentDatagram(dg, device->mtu())) {
      Ipv4Header piece_header = piece.header;
      pieces.push_back(BuildIpv4Packet(piece_header, piece.payload));
    }
    counters_.fragments_sent += pieces.size();
    if (fast_mac.has_value()) {
      for (Packet& piece : pieces) {
        TransmitFrame(device, std::move(piece), *fast_mac);
      }
      return;
    }
    arp_->Resolve(device, next_hop,
                  [this, device, pieces = std::move(pieces)](
                      std::optional<MacAddress> mac) mutable {
                    if (!mac) {
                      ++counters_.drop_arp_failure;
                      return;
                    }
                    for (Packet& piece : pieces) {
                      TransmitFrame(device, std::move(piece), *mac);
                    }
                  });
    return;
  }

  if (fast_mac.has_value()) {
    TransmitFrame(device, std::move(wire), *fast_mac);
    return;
  }
  arp_->Resolve(device, next_hop,
                [this, device, wire = std::move(wire)](std::optional<MacAddress> mac) mutable {
                  if (!mac) {
                    ++counters_.drop_arp_failure;
                    return;
                  }
                  TransmitFrame(device, std::move(wire), *mac);
                });
}

std::optional<MacAddress> IpStack::ResolveDstMacFast(NetDevice* device, Ipv4Address next_hop,
                                                     std::optional<MacAddress> force_dst_mac) {
  if (force_dst_mac.has_value()) {
    return force_dst_mac;
  }
  if (next_hop.IsBroadcast() || IsBroadcastFor(next_hop)) {
    return MacAddress::Broadcast();
  }
  if (device->bandwidth_bps() == 0 && device->mac().IsZero()) {
    // Loopback-style device: no link addressing.
    return MacAddress::Zero();
  }
  return arp_->CachedLookup(next_hop);
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::TransmitFrame(NetDevice* device, Packet wire, MacAddress dst_mac) {
  EthernetFrame frame;
  frame.dst = dst_mac;
  frame.src = device->mac();
  frame.ethertype = EtherType::kIpv4;
  frame.payload = std::move(wire);
  if (!device->Transmit(frame)) {
    ++counters_.drop_device;
  }
}

// --- Receive path ---------------------------------------------------------------

void IpStack::ReceiveFrame(NetDevice& device, EthernetFrame&& frame) {
  switch (frame.ethertype) {
    case EtherType::kArp:
      arp_->HandleFrame(&device, frame);
      return;
    case EtherType::kIpv4:
      HandleIpv4Frame(device, std::move(frame));
      return;
  }
}

void IpStack::HandleIpv4Frame(NetDevice& device, EthernetFrame&& frame) {
  // Parse (and checksum-verify) the header only; the frame's buffer itself
  // flows onward. Taking the payload by move matters: when nothing else
  // holds the frame (plain unicast, no tap), the wire image reaches Forward
  // uniquely owned and the TTL patch needs no copy at all.
  ByteReader r(frame.payload.data(), frame.payload.size());
  auto header = Ipv4Header::Parse(r);
  if (!header || header->total_length < Ipv4Header::kSize ||
      header->total_length > frame.payload.size()) {
    ++counters_.drop_bad_packet;
    return;
  }
  Packet wire = std::move(frame.payload);
  wire.TrimTo(header->total_length);
  InjectReceivedPacket(*header, std::move(wire), &device, frame.src);
}

void IpStack::InjectReceivedDatagram(const Ipv4Datagram& dg, NetDevice* ingress,
                                     MacAddress link_src) {
  Ipv4Header header = dg.header;
  Packet wire = BuildIpv4Packet(header, dg.payload);
  InjectReceivedPacket(header, std::move(wire), ingress, link_src);
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::InjectReceivedPacket(const Ipv4Header& header, Packet wire, NetDevice* ingress,
                                   MacAddress link_src) {
  const Ipv4Address dst = header.dst;
  if (IsLocalAddress(dst) || dst.IsBroadcast() || IsBroadcastFor(dst) || dst.IsLoopback()) {
    if (header.IsFragment()) {
      // Reassemble fragments destined to us; forwarded fragments pass
      // through untouched (routers do not reassemble). Reassembly owns its
      // bytes, so fragments drop out of the zero-copy path here.
      Ipv4Datagram fragment;
      fragment.header = header;
      fragment.payload.assign(wire.begin() + Ipv4Header::kSize, wire.end());
      std::optional<Ipv4Datagram> whole = reassembly_->Add(fragment);
      if (!whole.has_value()) {
        return;  // Waiting for more fragments.
      }
      const Time fire =
          PipelineDelay(deliver_pipe_busy_, delays_.deliver_mean, delays_.deliver_jitter);
      DispatchStage(sim_, fire, [this, whole_header = whole->header,
                                 payload = Packet(std::move(whole->payload)), ingress, link_src] {
        Deliver(whole_header, payload, ingress, link_src);
      });
      return;
    }
    // Non-fragments skip reassembly entirely (Add returns them unchanged)
    // and deliver a zero-copy view of the payload bytes.
    const Time fire =
        PipelineDelay(deliver_pipe_busy_, delays_.deliver_mean, delays_.deliver_jitter);
    DispatchStage(
        sim_, fire, [this, header, payload = wire.Slice(Ipv4Header::kSize,
                                                        wire.size() - Ipv4Header::kSize),
                     ingress, link_src] { Deliver(header, payload, ingress, link_src); });
    return;
  }
  if (forwarding_enabled_) {
    Forward(header, std::move(wire), ingress);
    return;
  }
  ++counters_.drop_not_for_us;
}

// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
void IpStack::Forward(Ipv4Header header, Packet wire, NetDevice* ingress) {
  if (header.ttl <= 1) {
    ++counters_.drop_ttl;
    return;
  }
  header.ttl -= 1;
  {
    // Patch TTL and checksum in the wire image via the RFC 1624 incremental
    // update: the per-hop cost is four byte writes, not a reserialization.
    // MutableData copies first iff the buffer is shared (duplicate in
    // flight, pcap tap holding the frame) — exactly when a private copy is
    // semantically required.
    uint8_t* b = wire.MutableData();
    const uint16_t old_word = static_cast<uint16_t>((static_cast<uint16_t>(b[8]) << 8) | b[9]);
    b[8] = header.ttl;
    const uint16_t new_word = static_cast<uint16_t>((static_cast<uint16_t>(b[8]) << 8) | b[9]);
    const uint16_t old_sum =
        static_cast<uint16_t>((static_cast<uint16_t>(b[10]) << 8) | b[11]);
    const uint16_t new_sum = IncrementalChecksumUpdate(old_sum, old_word, new_word);
    b[10] = static_cast<uint8_t>(new_sum >> 8);
    b[11] = static_cast<uint8_t>(new_sum & 0xff);
  }
  if (forward_filter_ && !forward_filter_(header, ingress)) {
    // Transit-traffic filtering: the security-conscious-router behaviour that
    // breaks the triangle-route optimization (paper §3.2).
    ++counters_.drop_filtered;
    MSN_DEBUG("ip", "%s: filtered transit packet %s", node_name_.c_str(),
              header.ToString().c_str());
    SendIcmpError(header, wire.span().subspan(Ipv4Header::kSize),
                  IcmpUnreachableCode::kAdminProhibited);
    return;
  }
  // RFC 792 redirect: if we would forward this packet back out its arrival
  // interface toward a gateway on the sender's own subnet, tell the sender
  // about the shorter path (and still forward the packet).
  if (send_redirects_ && ingress != nullptr) {
    RouteQuery query{header.dst, header.src, /*forwarding=*/true, /*advisory=*/true};
    if (auto decision = RouteLookup(query)) {
      const auto ingress_subnet = GetInterfaceSubnet(ingress);
      if (decision->device == ingress && ingress_subnet &&
          ingress_subnet->Contains(header.src)) {
        const Ipv4Address better_hop = decision->EffectiveNextHop(header.dst);
        IcmpMessage redirect;
        redirect.type = IcmpType::kRedirect;
        redirect.code = 1;  // Redirect for host.
        redirect.rest = better_hop.value();
        ByteWriter w;
        header.Serialize(w);
        const std::span<const uint8_t> payload = wire.span().subspan(Ipv4Header::kSize);
        const size_t copy = std::min<size_t>(8, payload.size());
        w.WriteBytes(payload.data(), copy);
        redirect.payload = w.Take();
        ++counters_.icmp_redirects_sent;
        SendIcmp(header.src, redirect,
                 GetInterfaceAddress(ingress).value_or(Ipv4Address::Any()));
      }
    }
  }

  ++counters_.datagrams_forwarded;
  const Time fire =
      PipelineDelay(forward_pipe_busy_, delays_.forward_mean, delays_.forward_jitter);
  DispatchStage(sim_, fire, [this, header, wire = std::move(wire)]() mutable {
    DoSend(header, std::move(wire), /*forwarding=*/true, SendOptions{});
  });
}

void IpStack::Deliver(const Ipv4Header& header, const Packet& payload, NetDevice* ingress,
                      MacAddress link_src) {
  ++counters_.datagrams_delivered;
  switch (header.protocol) {
    case IpProto::kIcmp:
      HandleIcmp(header, payload, ingress);
      return;
    case IpProto::kUdp:
      HandleUdp(header, payload, ingress, link_src);
      return;
    default:
      break;
  }
  auto it = protocol_handlers_.find(header.protocol);
  if (it != protocol_handlers_.end()) {
    it->second(header, payload, ingress);
    return;
  }
  ++counters_.drop_no_handler;
}

void IpStack::RegisterProtocolHandler(IpProto proto, ProtocolHandler handler) {
  protocol_handlers_[proto] = std::move(handler);
}

void IpStack::UnregisterProtocolHandler(IpProto proto) { protocol_handlers_.erase(proto); }

// --- ICMP -----------------------------------------------------------------------

void IpStack::HandleIcmp(const Ipv4Header& header, const Packet& payload,
                         NetDevice* ingress) {
  (void)ingress;
  auto msg = IcmpMessage::Parse(payload.span());
  if (!msg) {
    ++counters_.drop_bad_packet;
    return;
  }
  switch (msg->type) {
    case IcmpType::kEchoRequest: {
      // Answer with the address the request was sent to, so replies to the
      // home address remain subject to mobile-IP policy on a mobile host.
      IcmpMessage reply;
      reply.type = IcmpType::kEchoReply;
      reply.code = 0;
      reply.rest = msg->rest;
      reply.payload = msg->payload;
      ++counters_.icmp_echo_replies_sent;
      SendIcmp(header.src, reply, header.dst);
      return;
    }
    case IcmpType::kEchoReply: {
      auto it = echo_listeners_.find(msg->echo_id());
      if (it != echo_listeners_.end()) {
        it->second(header, *msg);
      }
      return;
    }
    case IcmpType::kRedirect: {
      if (!accept_redirects_) {
        return;
      }
      ByteReader r(msg->payload);
      auto offending = Ipv4Header::Parse(r);
      if (!offending) {
        return;
      }
      const Ipv4Address better_hop(msg->rest);
      // The redirect must come from the gateway we are currently using, and
      // the new hop must be on a directly connected subnet.
      RouteQuery query{offending->dst, Ipv4Address::Any(), /*forwarding=*/false,
                       /*advisory=*/true};
      auto current = RouteLookup(query);
      if (!current || current->EffectiveNextHop(offending->dst) != header.src) {
        return;
      }
      const auto subnet = GetInterfaceSubnet(current->device);
      if (!subnet || !subnet->Contains(better_hop)) {
        return;
      }
      routes_.Add(RouteEntry{Subnet(offending->dst, SubnetMask(32)), better_hop,
                             current->device, Ipv4Address::Any(), 0});
      ++counters_.icmp_redirects_accepted;
      MSN_DEBUG("ip", "%s: redirect %s via %s", node_name_.c_str(),
                offending->dst.ToString().c_str(), better_hop.ToString().c_str());
      return;
    }
    case IcmpType::kDestinationUnreachable: {
      // Extract the offending packet's header from the ICMP payload.
      ByteReader r(msg->payload);
      auto offending = Ipv4Header::Parse(r);
      if (offending) {
        if (icmp_error_handler_) {
          icmp_error_handler_(*msg, *offending);
        }
        // If the offending packet was one of our echo requests, tell the
        // pinger: this is how the mobile host learns a triangle-route probe
        // was administratively filtered.
        if (offending->protocol == IpProto::kIcmp && r.remaining() >= 8) {
          r.Skip(4);  // Inner ICMP type, code, checksum.
          const uint16_t echo_id = r.ReadU16();
          auto it = echo_listeners_.find(echo_id);
          if (it != echo_listeners_.end()) {
            it->second(header, *msg);
          }
        }
      }
      return;
    }
  }
}

void IpStack::SendIcmp(Ipv4Address dst, const IcmpMessage& msg, Ipv4Address src) {
  SendDatagram(src, dst, IpProto::kIcmp, msg.Serialize());
}

void IpStack::SendIcmpError(const Ipv4Header& offending, std::span<const uint8_t> payload,
                            IcmpUnreachableCode code) {
  if (offending.protocol == IpProto::kIcmp) {
    // Avoid error storms: only report errors for echo requests, never for
    // other ICMP messages.
    auto inner = IcmpMessage::Parse(payload);
    if (!inner || inner->type != IcmpType::kEchoRequest) {
      return;
    }
  }
  IcmpMessage err;
  err.type = IcmpType::kDestinationUnreachable;
  err.code = static_cast<uint8_t>(code);
  err.rest = 0;
  // RFC 792: the offending IP header plus the first 8 payload bytes.
  ByteWriter w;
  offending.Serialize(w);
  const size_t copy = std::min<size_t>(8, payload.size());
  if (copy > 0) {
    w.WriteBytes(payload.data(), copy);
  }
  err.payload = w.Take();
  ++counters_.icmp_errors_sent;
  SendIcmp(offending.src, err);
}

void IpStack::RegisterEchoListener(
    uint16_t id, std::function<void(const Ipv4Header&, const IcmpMessage&)> cb) {
  echo_listeners_[id] = std::move(cb);
}

void IpStack::UnregisterEchoListener(uint16_t id) { echo_listeners_.erase(id); }

// --- UDP ------------------------------------------------------------------------

void IpStack::HandleUdp(const Ipv4Header& header, const Packet& payload, NetDevice* ingress,
                        MacAddress link_src) {
  auto dg = UdpDatagram::Parse(payload.span(), header.src, header.dst);
  if (!dg) {
    ++counters_.drop_bad_packet;
    return;
  }
  auto it = udp_sockets_.find(dg->dst_port);
  if (it == udp_sockets_.end() || it->second.empty()) {
    if (!header.dst.IsBroadcast() && !IsBroadcastFor(header.dst)) {
      SendIcmpError(header, payload.span(), IcmpUnreachableCode::kPortUnreachable);
    }
    return;
  }
  DispatchUdp(it->second, header, *dg, ingress, link_src);
}

void IpStack::DispatchUdp(const std::vector<UdpSocket*>& sockets, const Ipv4Header& header,
                          const UdpDatagram& dg, NetDevice* ingress, MacAddress link_src) {
  UdpSocket::Metadata meta;
  meta.src = header.src;
  meta.src_port = dg.src_port;
  meta.dst = header.dst;
  meta.ingress = ingress;
  meta.link_src = link_src;

  const bool broadcast = header.dst.IsBroadcast() || IsBroadcastFor(header.dst);
  if (broadcast) {
    // Broadcasts reach every socket on the port (DHCP relies on this).
    for (UdpSocket* socket : sockets) {
      socket->Deliver(dg.payload, meta);
    }
    return;
  }
  // Unicast: prefer a socket bound to exactly this destination address, then
  // fall back to an unbound (wildcard) socket.
  UdpSocket* exact = nullptr;
  UdpSocket* wildcard = nullptr;
  for (UdpSocket* socket : sockets) {
    if (socket->bound_source() == header.dst) {
      exact = socket;
      break;
    }
    if (socket->bound_source().IsAny() && wildcard == nullptr) {
      wildcard = socket;
    }
  }
  UdpSocket* chosen = exact != nullptr ? exact : wildcard;
  if (chosen != nullptr) {
    chosen->Deliver(dg.payload, meta);
  }
}

bool IpStack::BindUdpSocket(uint16_t port, UdpSocket* socket) {
  auto& list = udp_sockets_[port];
  if (std::find(list.begin(), list.end(), socket) != list.end()) {
    return true;
  }
  list.push_back(socket);
  return true;
}

void IpStack::UnbindUdpSocket(uint16_t port, UdpSocket* socket) {
  auto it = udp_sockets_.find(port);
  if (it == udp_sockets_.end()) {
    return;
  }
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), socket), list.end());
  if (list.empty()) {
    udp_sockets_.erase(it);
  }
}

uint16_t IpStack::AllocateEphemeralPort() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const uint16_t port = next_ephemeral_port_;
    next_ephemeral_port_ = next_ephemeral_port_ == 65535 ? 49152 : next_ephemeral_port_ + 1;
    if (udp_sockets_.find(port) == udp_sockets_.end()) {
      return port;
    }
  }
  return 0;
}

}  // namespace msn
