#include "src/util/byte_buffer.h"

#include <cstdio>

namespace msn {

void ByteWriter::WriteU8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
}

void ByteWriter::WriteU32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 24));
  buf_.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
}

void ByteWriter::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v >> 32));
  WriteU32(static_cast<uint32_t>(v & 0xffffffffu));
}

void ByteWriter::WriteBytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::WriteBytes(const std::vector<uint8_t>& data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::WriteString(const std::string& s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::WriteZeros(size_t count) { buf_.insert(buf_.end(), count, 0); }

void ByteWriter::PatchU16(size_t offset, uint16_t v) {
  if (offset + 2 > buf_.size()) {
    return;
  }
  buf_[offset] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<uint8_t>(v & 0xff);
}

bool ByteReader::Ensure(size_t n) {
  if (!ok_ || pos_ + n > len_) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::ReadU8() {
  if (!Ensure(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::ReadU16() {
  if (!Ensure(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::ReadU32() {
  if (!Ensure(4)) {
    return 0;
  }
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::ReadU64() {
  uint64_t hi = ReadU32();
  uint64_t lo = ReadU32();
  return (hi << 32) | lo;
}

std::vector<uint8_t> ByteReader::ReadBytes(size_t len) {
  if (!Ensure(len)) {
    return {};
  }
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::vector<uint8_t> ByteReader::ReadRemaining() {
  std::vector<uint8_t> out(data_ + pos_, data_ + len_);
  pos_ = len_;
  return out;
}

std::span<const uint8_t> ByteReader::ReadSpan(size_t len) {
  if (!Ensure(len)) {
    return {};
  }
  std::span<const uint8_t> out(data_ + pos_, len);
  pos_ += len;
  return out;
}

std::span<const uint8_t> ByteReader::RemainingSpan() {
  std::span<const uint8_t> out(data_ + pos_, len_ - pos_);
  pos_ = len_;
  return out;
}

void ByteReader::Skip(size_t len) {
  if (Ensure(len)) {
    pos_ += len;
  }
}

std::string HexDump(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 3);
  char tmp[4];
  for (size_t i = 0; i < len; ++i) {
    std::snprintf(tmp, sizeof(tmp), "%02x", data[i]);
    if (i != 0) {
      out.push_back(' ');
    }
    out += tmp;
  }
  return out;
}

std::string HexDump(const std::vector<uint8_t>& data) {
  return HexDump(data.data(), data.size());
}

}  // namespace msn
