# Empty dependencies file for msn_mip.
# This may be replaced when dependencies are built.
