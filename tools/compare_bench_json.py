#!/usr/bin/env python3
"""Compare a candidate BENCH_*.json against a checked-in baseline.

Stdlib-only regression gate used by the CI perf-smoke step (and handy
locally):

    python3 tools/compare_bench_json.py baseline.json candidate.json

Two kinds of checks, keyed off how msn-bench-v1 serializes values:

  * Determinism: every baseline row must exist in the candidate (same
    label), and integer row values — the deterministic counts such as
    hops_forwarded, delivered, events_executed, packet_copies — must match
    exactly. Simulation results for a fixed seed are not allowed to drift.
    Float row values are timing-derived (wall_ms, pps) and are skipped at
    row granularity.

  * Performance: every baseline summary must exist in the candidate, and
    its mean may not regress by more than --tolerance (default 10%). The
    direction of "worse" comes from the summary unit: time-like and
    count-like units (ns, ms, copies, ...) regress upward, throughput-like
    units (pps, eps, ...) regress downward. A zero baseline mean for a
    lower-is-better unit allows the candidate up to --zero-slack (default
    1.0) instead of a ratio.

Exit status: 0 on pass, 1 on any regression or structural mismatch.
"""

import argparse
import json
import sys

SCHEMA = "msn-bench-v1"

# Units where a larger mean is a regression. Everything else (pps, eps,
# ops, ratios) is treated as throughput: smaller is a regression.
LOWER_IS_BETTER_UNITS = {
    "ns", "us", "ms", "s", "sec", "seconds", "copies", "allocs",
    "bytes", "events", "drops",
}

# Row-value keys that are wall-clock-derived even when a whole-valued double
# happens to serialize without a fractional part. These are never gated at
# row granularity; their means go through the summary tolerance instead.
TIMING_KEY_TOKENS = (
    "wall", "pps", "eps", "per_sec", "per_hop", "ns_", "_ns", "_ms", "ms_",
    "rate", "latency",
)


def is_timing_key(key):
    lowered = key.lower()
    return any(token in lowered for token in TIMING_KEY_TOKENS)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: schema must be {SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    return doc


def is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def compare_rows(base, cand):
    """Yields error strings for deterministic (integer) row mismatches."""
    cand_rows = {}
    for row in cand.get("rows", []):
        cand_rows[row["label"]] = row.get("values", {})
    for row in base.get("rows", []):
        label = row["label"]
        if label not in cand_rows:
            yield f"row '{label}' missing from candidate"
            continue
        cand_values = cand_rows[label]
        for key, value in row.get("values", {}).items():
            if not is_int(value) or is_timing_key(key):
                continue  # Timing-derived; gated via summaries instead.
            if key not in cand_values:
                yield f"row '{label}' value '{key}' missing from candidate"
            elif cand_values[key] != value:
                yield (f"row '{label}' value '{key}' changed: "
                       f"{value} -> {cand_values[key]} "
                       "(deterministic counts must match exactly)")


def compare_summaries(base, cand, tolerance, zero_slack):
    """Yields (status, message) pairs; status is 'ok' or 'fail'."""
    cand_summaries = {s["name"]: s for s in cand.get("summaries", [])}
    for summary in base.get("summaries", []):
        name = summary["name"]
        if name not in cand_summaries:
            yield "fail", f"summary '{name}' missing from candidate"
            continue
        unit = summary.get("unit", "")
        base_mean = summary["mean"]
        cand_mean = cand_summaries[name]["mean"]
        lower_better = unit in LOWER_IS_BETTER_UNITS
        arrow = f"{base_mean:g} -> {cand_mean:g} {unit}".strip()
        if lower_better:
            if base_mean == 0:
                ok = cand_mean <= zero_slack
                limit = f"zero baseline, slack {zero_slack:g}"
            else:
                ok = cand_mean <= base_mean * (1.0 + tolerance)
                limit = f"limit {base_mean * (1.0 + tolerance):g}"
        else:
            ok = cand_mean >= base_mean * (1.0 - tolerance)
            limit = f"floor {base_mean * (1.0 - tolerance):g}"
        status = "ok" if ok else "fail"
        yield status, f"summary '{name}': {arrow} ({limit})"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline BENCH json")
    parser.add_argument("candidate", help="freshly produced BENCH json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional mean regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--zero-slack", type=float, default=1.0,
                        help="allowed absolute mean when a lower-is-better "
                             "baseline mean is zero (default 1.0)")
    args = parser.parse_args(argv[1:])

    base = load(args.baseline)
    cand = load(args.candidate)
    failures = 0

    if base.get("bench") != cand.get("bench"):
        print(f"FAIL  bench name mismatch: {base.get('bench')!r} vs "
              f"{cand.get('bench')!r}", file=sys.stderr)
        return 1
    if base.get("smoke") != cand.get("smoke"):
        print("FAIL  comparing smoke and non-smoke runs "
              f"(baseline smoke={base.get('smoke')}, "
              f"candidate smoke={cand.get('smoke')})", file=sys.stderr)
        return 1

    for error in compare_rows(base, cand):
        print(f"FAIL  {error}", file=sys.stderr)
        failures += 1

    for status, message in compare_summaries(base, cand, args.tolerance,
                                             args.zero_slack):
        if status == "fail":
            print(f"FAIL  {message}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok    {message}")

    name = base.get("bench")
    if failures:
        print(f"FAIL  {name}: {failures} regression(s) vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"ok    {name}: no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
