// The Address Resolution Protocol service of a host.
//
// Beyond ordinary request/reply resolution with a pending-packet queue, this
// implements the two mechanisms the MosquitoNet home agent depends on:
//
//  * Proxy ARP   — the HA answers ARP requests for a registered mobile host's
//                  home address with its own MAC, so it intercepts the MH's
//                  packets while the MH is away (paper §3.1).
//  * Gratuitous ARP — broadcast announcement that updates *existing* cache
//                  entries on other hosts, voiding stale mappings when a
//                  binding changes or the MH returns home (paper §3.1).
#ifndef MSN_SRC_NODE_ARP_H_
#define MSN_SRC_NODE_ARP_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/net/frame.h"
#include "src/net/headers.h"
#include "src/sim/simulator.h"

namespace msn {

class IpStack;
class NetDevice;

class ArpService {
 public:
  using ResolveCallback = std::function<void(std::optional<MacAddress>)>;

  ArpService(Simulator& sim, IpStack& stack);

  // Resolves `ip` on `device`. Invokes `cb` immediately if cached; otherwise
  // sends up to `kMaxRetries` requests one second apart and fails with
  // nullopt if none is answered.
  void Resolve(NetDevice* device, Ipv4Address ip, ResolveCallback cb);

  // Handles an incoming ARP frame (request or reply) on `device`.
  void HandleFrame(NetDevice* device, const EthernetFrame& frame);

  void AddStaticEntry(Ipv4Address ip, MacAddress mac);
  void RemoveEntry(Ipv4Address ip);
  // Registers `ip` for proxying: ARP requests asking for `ip` on `device`
  // are answered with the device's own MAC (the home agent's interception
  // mechanism).
  void AddProxyEntry(NetDevice* device, Ipv4Address ip);
  void RemoveProxyEntry(NetDevice* device, Ipv4Address ip);
  bool IsProxying(NetDevice* device, Ipv4Address ip) const;

  // Broadcasts a gratuitous ARP binding `ip` to the device's MAC. Receivers
  // that already have an entry for `ip` overwrite it (stale-entry voiding).
  void SendGratuitousArp(NetDevice* device, Ipv4Address ip);

  // Gratuitous ARP with retransmissions (RFC 2002 §4.6: the announcement
  // rides an unreliable broadcast, so mobility agents repeat it). A repeat is
  // skipped once the claim stops being true — the device went down, or the
  // address is neither proxied nor configured here any more — so a stale
  // repeat can never clobber the next owner's announcement.
  static constexpr int kGratuitousRepeats = 3;
  static constexpr Duration kGratuitousSpacing = Milliseconds(400);
  void AnnounceGratuitousArp(NetDevice* device, Ipv4Address ip);

  [[nodiscard]] std::optional<MacAddress> CachedLookup(Ipv4Address ip) const;
  void Flush();
  // Entries expire this long after last refresh.
  void set_entry_lifetime(Duration d) { entry_lifetime_ = d; }

  struct Counters {
    uint64_t requests_sent = 0;
    uint64_t replies_sent = 0;
    uint64_t proxy_replies_sent = 0;
    uint64_t gratuitous_sent = 0;
    uint64_t resolutions_failed = 0;
    uint64_t cache_updates = 0;
  };
  const Counters& counters() const { return counters_; }

  static constexpr int kMaxRetries = 3;
  static constexpr Duration kRetryInterval = Seconds(1);

 private:
  struct CacheEntry {
    MacAddress mac;
    Time expires;
  };
  struct PendingResolution {
    NetDevice* device;
    int attempts = 0;
    std::vector<ResolveCallback> callbacks;
    EventId retry_event;
  };

  void SendRequest(NetDevice* device, Ipv4Address ip);
  void ScheduleGratuitousRepeat(NetDevice* device, Ipv4Address ip, int remaining);
  void RetryOrFail(Ipv4Address ip);
  void InsertCacheEntry(Ipv4Address ip, MacAddress mac);
  void TransmitArp(NetDevice* device, const ArpMessage& msg, MacAddress dst);

  Simulator& sim_;
  IpStack& stack_;
  // Hash maps are safe here only because nothing traverses them: lookups are
  // point queries (find/erase) and expiry is checked lazily per lookup, so
  // bucket order can never reach the wire. Any future sweep (cache aging,
  // pending-timeout scan) must use sorted traversal — msn_analyze's
  // determinism/unordered-iteration rule flags the loop if one appears.
  std::unordered_map<Ipv4Address, CacheEntry> cache_;
  std::unordered_map<Ipv4Address, PendingResolution> pending_;
  // Proxy set keyed by (device, ip); a HA typically proxies on one interface.
  std::map<std::pair<NetDevice*, Ipv4Address>, bool> proxies_;
  Duration entry_lifetime_ = Seconds(120);
  Counters counters_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_ARP_H_
