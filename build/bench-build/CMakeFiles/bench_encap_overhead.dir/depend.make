# Empty dependencies file for bench_encap_overhead.
# This may be replaced when dependencies are built.
