// Ablation A1 (paper §5.1, "Packet loss"): do foreign agents reduce packet
// loss during hand-off?
//
// The paper's argument: without an FA, packets the home agent sent before it
// learned the new care-of address arrive at the old network and die; an FA in
// the old network that learns of the move can forward them instead. The
// benefit is proportional to the HA -> old-network pipe depth, so we place
// the old attachment behind the slow radio subnet (deep pipe) and cold-switch
// the mobile host to the wired network while a correspondent streams probes.
//
// Reported: probes lost per trial with FA departure-forwarding ON vs OFF, and
// how many late packets the FA salvaged. The paper ultimately keeps its
// FA-less design ("unless ... our potentially higher packet loss is a severe
// handicap, we will stick to our simple implementation") — this table
// quantifies how small the benefit is.
#include <cstdio>
#include <vector>

#include "src/mip/foreign_agent.h"
#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct TrialResult {
  bool ok = false;
  uint64_t lost = 0;
  uint64_t salvaged = 0;
};

TrialResult RunTrial(bool forwarding, uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  // Deepen the radio pipe: a congested cell with higher latency makes the
  // in-flight window (the quantity under test) clearly visible.
  MediumParams radio = RadioMediumParams();
  radio.latency = Milliseconds(200);
  radio.latency_jitter = Milliseconds(15);
  tb.radio134->set_params(radio);
  // A fast-bring-up wired card minimizes the common-mode outage so the
  // differential is dominated by in-flight packets.
  tb.mh_eth->set_bring_up_time(Milliseconds(150));
  tb.StartMobileAtHome();

  // Foreign agent on the radio subnet.
  Node fa_node(tb.sim, "fa");
  StripRadioDevice* fa_dev = fa_node.AddRadio("radio0", tb.radio134.get());
  fa_dev->ForceUp();
  fa_node.ConfigureInterface(fa_dev, "36.134.0.2/16");
  fa_node.AddDefaultRoute(Testbed::RouterOn134(), fa_dev);
  fa_node.stack().set_forwarding_enabled(true);
  ForeignAgent::Config fc;
  fc.address = Ipv4Address(36, 134, 0, 2);
  fc.device = fa_dev;
  fc.forward_after_departure = forwarding;
  ForeignAgent fa(fa_node, fc);

  // The MH attaches via the FA over the radio (no co-located address).
  tb.mh->stack().routes().RemoveForDevice(tb.mh_eth);
  tb.mh->stack().UnconfigureAddress(tb.mh_eth);
  tb.MoveMhEthernetTo(nullptr);
  tb.ForceRadioUp();
  bool attached = false;
  tb.mobile->AttachViaForeignAgent(tb.mh_radio, fc.address,
                                   [&](bool ok) { attached = ok; });
  tb.RunFor(Seconds(10));
  if (!attached) {
    return {};
  }

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(100)});
  sender.Start();
  // Random phase between the probe stream and the switch instant.
  tb.RunFor(Seconds(3) + Microseconds(static_cast<int64_t>(
                             tb.sim.rng().UniformInt(uint64_t{0}, uint64_t{99999}))));

  // Cold switch to the wired network with a co-located care-of address.
  tb.MoveMhEthernetTo(tb.net8.get());
  bool switched = false;
  tb.mobile->ColdSwitchTo(tb.WiredAttachment(50), [&](bool ok) { switched = ok; });
  tb.RunFor(Seconds(8));
  sender.Stop();
  tb.RunFor(Seconds(3));
  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }
  if (!switched) {
    return {};
  }

  TrialResult result;
  result.ok = true;
  result.lost = sender.TotalLost();
  result.salvaged = fa.counters().packets_forwarded_after_departure;
  return result;
}

int Main() {
  const int kTrials = BenchIterations(10, 2);
  const uint64_t kBaseSeed = 9000;

  std::printf("==============================================================\n");
  std::printf("A1 ablation: foreign-agent forwarding after departure\n");
  std::printf("(paper S5.1 'Packet loss'); MH leaves a slow radio network\n");
  std::printf("served by an FA; CH probes every 100 ms; %d trials per config\n", kTrials);
  std::printf("==============================================================\n\n");

  BenchReport report("fa_ablation",
                     "A1: foreign-agent departure forwarding vs FA-less hand-off loss");
  report.set_seed(kBaseSeed);
  report.AddParam("trials_per_config", kTrials);
  report.AddParam("probe_interval_ms", 100);

  IntHistogram with_fwd, without_fwd;
  std::vector<double> on_losses, off_losses, salvaged_v;
  for (int i = 0; i < kTrials; ++i) {
    const bool last = i == kTrials - 1;
    const TrialResult on =
        RunTrial(true, kBaseSeed + static_cast<uint64_t>(i), last ? &report : nullptr);
    const TrialResult off = RunTrial(false, kBaseSeed + static_cast<uint64_t>(i), nullptr);
    if (!on.ok || !off.ok) {
      std::printf("  trial %d failed to settle\n", i + 1);
      continue;
    }
    with_fwd.Add(static_cast<int64_t>(on.lost));
    without_fwd.Add(static_cast<int64_t>(off.lost));
    on_losses.push_back(static_cast<double>(on.lost));
    off_losses.push_back(static_cast<double>(off.lost));
    salvaged_v.push_back(static_cast<double>(on.salvaged));
  }
  RunningStats salvaged;
  for (double v : salvaged_v) {
    salvaged.Add(v);
  }

  std::printf("probes lost per trial, FA forwarding ON:\n%s\n",
              with_fwd.Render("lost").c_str());
  std::printf("probes lost per trial, FA forwarding OFF:\n%s\n",
              without_fwd.Render("lost").c_str());
  std::printf("late packets salvaged by the FA per trial: %s\n\n",
              salvaged.Summary(1).c_str());

  RunningStats on_stats, off_stats;
  for (double v : on_losses) on_stats.Add(v);
  for (double v : off_losses) off_stats.Add(v);
  const double on_mean = on_stats.mean();
  const double off_mean = off_stats.mean();

  report.AddSummary("lost_forwarding_on", "probes", on_losses);
  report.AddSummary("lost_forwarding_off", "probes", off_losses);
  report.AddSummary("salvaged_by_fa", "packets", salvaged_v);
  report.AddRow("loss_delta",
                {{"off_mean", off_mean}, {"on_mean", on_mean},
                 {"delta", off_mean - on_mean}});

  std::printf("%-44s | %-16s | %s\n", "claim (paper S5.1)", "expected", "measured");
  std::printf("%.44s-+-%.16s-+-%.16s\n", "---------------------------------------------",
              "----------------", "----------------");
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.1f vs %.1f lost", off_mean, on_mean);
  std::printf("%-44s | %-16s | %s\n", "FAs somewhat reduce hand-off loss", "modest delta", buf);
  std::printf("%-44s | %-16s | %.1f pkts/trial\n",
              "benefit limited to in-flight packets", "a few packets", salvaged.mean());
  std::printf("\nShape check: the delta is real but small — supporting the paper's\n"
              "choice to keep the basic protocol FA-free and rely on end-to-end\n"
              "recovery (S5.1's end-to-end argument).\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
