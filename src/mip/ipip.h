// IP-within-IP encapsulation (IP protocol 4) and the tunnel endpoint that
// decapsulates received tunnel packets and re-injects the inner datagram.
//
// The paper implements VIF and the IPIP processing module "as one module for
// efficiency" (Figure 4); here they are two small classes sharing these
// helpers. Encapsulation genuinely prepends a 20-byte outer IPv4 header, so
// tunnel overhead is measurable on the wire.
#ifndef MSN_SRC_MIP_IPIP_H_
#define MSN_SRC_MIP_IPIP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "src/net/headers.h"
#include "src/node/ip_stack.h"

namespace msn {

// Wraps `inner` in an outer IPv4 header (protocol 4) addressed outer_src ->
// outer_dst with a fresh TTL.
[[nodiscard]] Ipv4Datagram EncapsulateIpIp(const Ipv4Datagram& inner, Ipv4Address outer_src,
                             Ipv4Address outer_dst);

// Zero-copy encapsulation: prepends the 20-byte outer header directly to the
// inner wire image (allocation-free when the Packet has headroom and sole
// ownership). Fills `outer_header` with the parsed form of the prepended
// header; the return value is the complete outer wire image, ready for
// IpStack::SendPreformedPacket.
// msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
[[nodiscard]] Packet EncapsulateIpIpPacket(Ipv4Header& outer_header, Packet inner_wire,
                                           Ipv4Address outer_src, Ipv4Address outer_dst);

// Extracts the inner datagram from an IPIP payload. Returns nullopt if the
// payload is not a valid IPv4 datagram.
[[nodiscard]] std::optional<Ipv4Datagram> DecapsulateIpIp(
    std::span<const uint8_t> outer_payload);

// Registers as the protocol-4 handler on a stack. Each received tunnel packet
// is decapsulated and the inner datagram re-injected into the stack's receive
// path (delivered locally on a mobile host; forwarded onward on a home
// agent). An optional inspector sees (outer header, inner datagram) first and
// may veto re-injection by returning false.
class IpIpTunnelEndpoint {
 public:
  using Inspector = std::function<bool(const Ipv4Header& outer, const Ipv4Datagram& inner)>;

  explicit IpIpTunnelEndpoint(IpStack& stack);
  ~IpIpTunnelEndpoint();

  IpIpTunnelEndpoint(const IpIpTunnelEndpoint&) = delete;
  IpIpTunnelEndpoint& operator=(const IpIpTunnelEndpoint&) = delete;

  void SetInspector(Inspector inspector) { inspector_ = std::move(inspector); }

  uint64_t packets_decapsulated() const { return packets_decapsulated_; }
  uint64_t decapsulation_errors() const { return decapsulation_errors_; }

 private:
  void OnIpIp(const Ipv4Header& header, const Packet& payload, NetDevice* ingress);

  IpStack& stack_;
  Inspector inspector_;
  uint64_t packets_decapsulated_ = 0;
  uint64_t decapsulation_errors_ = 0;
  // Current nesting level while unwrapping tunnel-in-tunnel packets; bounds
  // the indirect recursion through InjectReceivedDatagram.
  int decap_depth_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_IPIP_H_
