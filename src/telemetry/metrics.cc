#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace msn {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string FormatMetricValue(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

Histogram::Histogram(double relative_error) {
  // Clamp into a sane range: gamma must stay > 1 and the index range finite.
  relative_error_ = std::min(std::max(relative_error, 1e-4), 0.5);
  gamma_ = (1.0 + relative_error_) / (1.0 - relative_error_);
  log_gamma_ = std::log(gamma_);
}

int32_t Histogram::BucketIndex(double value) const {
  return static_cast<int32_t>(std::ceil(std::log(value) / log_gamma_));
}

double Histogram::BucketEstimate(int32_t index) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; the harmonic midpoint
  // 2*gamma^i/(gamma+1) is within a factor (1 +/- e) of every point inside.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void Histogram::Record(double value) {
  const double v = value < 0.0 ? 0.0 : value;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (v <= kMinTrackable) {
    ++zero_count_;
  } else {
    ++buckets_[BucketIndex(v)];
  }
}

double Histogram::Quantile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (p <= 0.0) {
    return min_;
  }
  if (p >= 100.0) {
    return max_;
  }
  // Nearest-rank: the smallest sample whose cumulative count reaches rank.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  if (rank <= zero_count_) {
    return std::max(0.0, min_);
  }
  uint64_t cumulative = zero_count_;
  for (const auto& [index, bucket_count] : buckets_) {
    cumulative += bucket_count;
    if (cumulative >= rank) {
      return std::min(std::max(BucketEstimate(index), min_), max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Entry& e = GetEntry(name, MetricType::kCounter);
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Entry& e = GetEntry(name, MetricType::kGauge);
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Gauge& MetricsRegistry::GetProbeGauge(const std::string& name, std::function<double()> probe) {
  Gauge& g = GetGauge(name);
  g.SetProbe(std::move(probe));
  return g;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, double relative_error) {
  Entry& e = GetEntry(name, MetricType::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(relative_error);
  }
  return *e.histogram;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name, MetricType type) {
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else if (it->second.type != type) {
    std::fprintf(stderr, "MetricsRegistry: metric '%s' requested as %s but registered as %s\n",
                 name.c_str(), MetricTypeName(type), MetricTypeName(it->second.type));
    std::abort();
  }
  return it->second;
}

bool MetricsRegistry::Contains(const std::string& name) const {
  return metrics_.find(name) != metrics_.end();
}

std::optional<MetricType> MetricsRegistry::TypeOf(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    return std::nullopt;
  }
  return it->second.type;
}

std::optional<double> MetricsRegistry::ReadValue(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    return std::nullopt;
  }
  const Entry& e = it->second;
  switch (e.type) {
    case MetricType::kCounter:
      return e.counter ? static_cast<double>(e.counter->value()) : 0.0;
    case MetricType::kGauge:
      return e.gauge ? e.gauge->value() : 0.0;
    case MetricType::kHistogram:
      return e.histogram ? static_cast<double>(e.histogram->count()) : 0.0;
  }
  return std::nullopt;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != MetricType::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    names.push_back(name);
  }
  return names;
}

std::map<std::string, double> MetricsRegistry::ScalarSnapshot(const std::string& prefix) const {
  std::map<std::string, double> out;
  // std::map iteration is name-sorted; the prefix range could be found with
  // lower_bound, but registries are small and oracles sample at a coarse
  // interval, so the simple scan keeps this obviously correct.
  for (const auto& [name, entry] : metrics_) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (auto value = ReadValue(name); value.has_value()) {
      out.emplace(name, *value);
    }
  }
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot s;
    s.name = name;
    s.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        s.value = entry.counter ? static_cast<double>(entry.counter->value()) : 0.0;
        break;
      case MetricType::kGauge:
        s.value = entry.gauge ? entry.gauge->value() : 0.0;
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        s.value = static_cast<double>(h.count());
        HistogramSnapshot hs;
        hs.count = h.count();
        hs.sum = h.sum();
        hs.mean = h.mean();
        hs.min = h.min();
        hs.max = h.max();
        hs.p50 = h.Quantile(50);
        hs.p95 = h.Quantile(95);
        hs.p99 = h.Quantile(99);
        s.histogram = hs;
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace msn
