// Experiment E5 (paper §4, last paragraph): "the software overhead in the
// registration process is small, and the home agent should be able to deal
// with a large number of mobile hosts simultaneously."
//
// We quantify that claim: N mobile hosts attach to a foreign network at the
// same instant and all register with one home agent, whose registration
// daemon processes requests serially (~1.48 ms each). We report registration
// completion latency (mean / p95 / max) and the HA's effective throughput as
// N grows.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/link/link_device.h"
#include "src/mip/home_agent.h"
#include "src/mip/mobile_host.h"
#include "src/node/node.h"
#include "src/telemetry/export.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct ScalingResult {
  int n = 0;
  int registered = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
  double ha_processing_mean_ms = 0;
  double throughput_per_sec = 0;
};

ScalingResult RunScale(int n, uint64_t seed, BenchReport* report) {
  // Declared before every component so it outlives them all.
  MetricsRegistry metrics;
  Simulator sim(seed);
  BroadcastMedium net135(sim, "net135", EthernetMediumParams(), &metrics);
  BroadcastMedium net8(sim, "net8", EthernetMediumParams(), &metrics);

  // Router + home agent (Pentium 90 class).
  Node router(sim, "router", &metrics);
  IpStack::DelayParams router_delays;
  router_delays.send_mean = MillisecondsF(0.55);
  router_delays.send_jitter = MillisecondsF(0.06);
  router_delays.deliver_mean = MillisecondsF(0.55);
  router_delays.deliver_jitter = MillisecondsF(0.06);
  router_delays.forward_mean = MillisecondsF(0.25);
  router_delays.forward_jitter = MillisecondsF(0.04);
  router.stack().set_delay_params(router_delays);
  router.stack().set_forwarding_enabled(true);
  EthernetDevice* r135 = router.AddEthernet("eth135", &net135);
  EthernetDevice* r8 = router.AddEthernet("eth8", &net8);
  r135->ForceUp();
  r8->ForceUp();
  router.ConfigureInterface(r135, "36.135.0.1/16");
  router.ConfigureInterface(r8, "36.8.0.1/16");

  HomeAgent::Config ha_config;
  ha_config.address = Ipv4Address(36, 135, 0, 1);
  ha_config.home_device = r135;
  ha_config.home_subnet = Subnet::MustParse("36.135.0.0/16");
  ha_config.metrics = &metrics;
  HomeAgent ha(router, ha_config);

  // N mobile hosts, already on the foreign segment, all registering at t=1s.
  // Only the first host reports into the shared registry — "mh.*" names are
  // per-component, and one instrumented host is representative.
  IpStack::DelayParams host_delays;
  host_delays.send_mean = MillisecondsF(1.0);
  host_delays.send_jitter = MillisecondsF(0.12);
  host_delays.deliver_mean = MillisecondsF(1.0);
  host_delays.deliver_jitter = MillisecondsF(0.12);

  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<MobileHost>> mobiles;
  std::vector<double> latencies_ms;
  int registered = 0;
  Time last_done = Time::Zero();
  const Time start_at = Time::Zero() + Seconds(1);

  for (int i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>(sim, "mh" + std::to_string(i));
    node->stack().set_delay_params(host_delays);
    EthernetDevice* eth = node->AddEthernet("eth0", &net8);
    eth->ForceUp();

    MobileHost::Config mc;
    mc.home_address = Ipv4Address(36, 135, 0, static_cast<uint8_t>(10 + i % 200));
    // Distinct home addresses across the /16.
    mc.home_address = Ipv4Address((36u << 24) | (135u << 16) | (10 + static_cast<uint32_t>(i)));
    mc.home_mask = SubnetMask(16);
    mc.home_agent = Ipv4Address(36, 135, 0, 1);
    mc.home_gateway = Ipv4Address(36, 135, 0, 1);
    mc.home_device = eth;
    if (i == 0) {
      mc.metrics = &metrics;
    }
    auto mobile = std::make_unique<MobileHost>(*node, mc);

    MobileHost::Attachment att;
    att.device = eth;
    att.care_of = Ipv4Address((36u << 24) | (8u << 16) | (100 + static_cast<uint32_t>(i)));
    att.mask = SubnetMask(16);
    att.gateway = Ipv4Address(36, 8, 0, 1);

    MobileHost* mobile_raw = mobile.get();
    sim.ScheduleAt(start_at, [mobile_raw, att, &latencies_ms, &registered, &last_done, &sim,
                              start_at] {
      mobile_raw->AttachForeign(att, [&, start_at](bool ok) {
        if (ok) {
          ++registered;
          latencies_ms.push_back((sim.Now() - start_at).ToMillisF());
          last_done = std::max(last_done, sim.Now());
        }
      });
    });

    nodes.push_back(std::move(node));
    mobiles.push_back(std::move(mobile));
  }

  sim.RunFor(Seconds(120));

  if (report != nullptr) {
    report->AddMetrics(metrics);
  }

  ScalingResult result;
  result.n = n;
  result.registered = registered;
  RunningStats stats;
  for (double v : latencies_ms) {
    stats.Add(v);
  }
  result.mean_ms = stats.mean();
  result.max_ms = stats.max();
  result.p95_ms = Percentile(latencies_ms, 95);
  result.ha_processing_mean_ms = ha.processing_stats_ms().mean();
  const double window_sec = (last_done - start_at).ToSecondsF();
  result.throughput_per_sec = window_sec > 0 ? registered / window_sec : 0;
  return result;
}

int Main() {
  std::printf("==============================================================\n");
  std::printf("E5: home agent scalability (paper S4: 'should be able to deal\n");
  std::printf("with a large number of mobile hosts simultaneously')\n");
  std::printf("N mobile hosts register at the same instant with one HA\n");
  std::printf("==============================================================\n\n");

  BenchReport report("ha_scaling",
                     "E5: one home agent serving N simultaneous registrations");
  report.set_seed(8000);

  // The tail of the sweep (200/500) exercises the "large number of mobile
  // hosts" claim at a scale the pre-zero-copy engine made impractically
  // slow; per-N seeds are unchanged, so the original rows stay
  // byte-identical.
  const std::vector<int> full_sweep = {1, 2, 5, 10, 20, 50, 100, 200, 500};
  const std::vector<int> smoke_sweep = {1, 5, 20};
  const std::vector<int>& sweep = BenchSmokeMode() ? smoke_sweep : full_sweep;
  report.AddParam("max_n", sweep.back());

  std::printf("%5s  %10s  %12s  %12s  %12s  %14s  %12s\n", "N", "registered", "mean ms",
              "p95 ms", "max ms", "HA proc ms", "regs/sec");
  for (size_t idx = 0; idx < sweep.size(); ++idx) {
    const int n = sweep[idx];
    // Snapshot the registry for the largest sweep point only.
    const bool capture = idx == sweep.size() - 1;
    const ScalingResult r =
        RunScale(n, 8000 + static_cast<uint64_t>(n), capture ? &report : nullptr);
    std::printf("%5d  %10d  %12.2f  %12.2f  %12.2f  %14.2f  %12.1f\n", r.n, r.registered,
                r.mean_ms, r.p95_ms, r.max_ms, r.ha_processing_mean_ms,
                r.throughput_per_sec);
    report.AddRow("n=" + std::to_string(n),
                  {{"n", r.n},
                   {"registered", r.registered},
                   {"latency_mean_ms", r.mean_ms},
                   {"latency_p95_ms", r.p95_ms},
                   {"latency_max_ms", r.max_ms},
                   {"ha_processing_mean_ms", r.ha_processing_mean_ms},
                   {"registrations_per_sec", r.throughput_per_sec}});
  }
  std::printf("\nShape check: per-request HA processing stays ~1.5 ms, so the HA\n"
              "sustains hundreds of registrations per second; latency grows only\n"
              "once simultaneous arrivals queue behind the single daemon.\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
