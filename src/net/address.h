// IPv4 and MAC address value types plus subnet math.
#ifndef MSN_SRC_NET_ADDRESS_H_
#define MSN_SRC_NET_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace msn {

// IPv4 address. Stored in host order internally; serialized big-endian.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_((static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
               (static_cast<uint32_t>(c) << 8) | d) {}

  // Parses dotted-quad, e.g. "36.135.0.5". Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> Parse(const std::string& s);
  // Parses or aborts; for literals in tests/examples.
  [[nodiscard]] static Ipv4Address MustParse(const std::string& s);

  static constexpr Ipv4Address Any() { return Ipv4Address(0); }
  static constexpr Ipv4Address Broadcast() { return Ipv4Address(0xffffffffu); }
  static constexpr Ipv4Address Loopback() { return Ipv4Address(127, 0, 0, 1); }

  constexpr uint32_t value() const { return value_; }
  constexpr bool IsAny() const { return value_ == 0; }
  constexpr bool IsBroadcast() const { return value_ == 0xffffffffu; }
  constexpr bool IsLoopback() const { return (value_ >> 24) == 127; }
  constexpr bool IsMulticast() const { return (value_ >> 28) == 0xe; }

  std::string ToString() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  uint32_t value_ = 0;
};

// A contiguous netmask, represented by its prefix length (0-32).
class SubnetMask {
 public:
  constexpr SubnetMask() = default;
  constexpr explicit SubnetMask(int prefix_len) : prefix_len_(prefix_len) {}

  constexpr int prefix_len() const { return prefix_len_; }
  constexpr uint32_t mask_value() const {
    return prefix_len_ == 0 ? 0u : (0xffffffffu << (32 - prefix_len_));
  }

  std::string ToString() const;  // Dotted-quad mask, e.g. "255.255.0.0".

  constexpr auto operator<=>(const SubnetMask&) const = default;

 private:
  int prefix_len_ = 0;
};

// A network prefix: base address (host bits zeroed) + mask.
class Subnet {
 public:
  constexpr Subnet() = default;
  constexpr Subnet(Ipv4Address base, SubnetMask mask)
      : base_(Ipv4Address(base.value() & mask.mask_value())), mask_(mask) {}

  // Parses "36.135.0.0/16". Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Subnet> Parse(const std::string& s);
  [[nodiscard]] static Subnet MustParse(const std::string& s);
  // The default route 0.0.0.0/0.
  static constexpr Subnet Default() { return Subnet(); }

  constexpr Ipv4Address base() const { return base_; }
  constexpr SubnetMask mask() const { return mask_; }
  constexpr int prefix_len() const { return mask_.prefix_len(); }

  constexpr bool Contains(Ipv4Address addr) const {
    return (addr.value() & mask_.mask_value()) == base_.value();
  }

  // Directed broadcast address of this subnet (all host bits set).
  constexpr Ipv4Address BroadcastAddress() const {
    return Ipv4Address(base_.value() | ~mask_.mask_value());
  }

  // Host address `index` within the subnet (index 1 = first host).
  constexpr Ipv4Address HostAt(uint32_t index) const {
    return Ipv4Address(base_.value() | index);
  }

  std::string ToString() const;  // "36.135.0.0/16".

  constexpr auto operator<=>(const Subnet&) const = default;

 private:
  Ipv4Address base_;
  SubnetMask mask_;
};

// 48-bit link-layer address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<uint8_t, 6> bytes) : bytes_(bytes) {}

  // Allocator-friendly constructor from a small integer id: 02:00:00:00:hi:lo
  // (locally administered bit set).
  static MacAddress FromId(uint32_t id);
  static constexpr MacAddress Broadcast() {
    return MacAddress(std::array<uint8_t, 6>{0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }
  static constexpr MacAddress Zero() { return MacAddress(); }

  constexpr const std::array<uint8_t, 6>& bytes() const { return bytes_; }
  constexpr bool IsBroadcast() const {
    for (uint8_t b : bytes_) {
      if (b != 0xff) {
        return false;
      }
    }
    return true;
  }
  constexpr bool IsZero() const {
    for (uint8_t b : bytes_) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const;  // "02:00:00:00:00:2a".

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<uint8_t, 6> bytes_{};
};

}  // namespace msn

template <>
struct std::hash<msn::Ipv4Address> {
  size_t operator()(const msn::Ipv4Address& a) const noexcept {
    return std::hash<uint32_t>()(a.value());
  }
};

template <>
struct std::hash<msn::MacAddress> {
  size_t operator()(const msn::MacAddress& m) const noexcept {
    uint64_t v = 0;
    for (uint8_t b : m.bytes()) {
      v = (v << 8) | b;
    }
    return std::hash<uint64_t>()(v);
  }
};

#endif  // MSN_SRC_NET_ADDRESS_H_
