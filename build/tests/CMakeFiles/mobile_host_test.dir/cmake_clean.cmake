file(REMOVE_RECURSE
  "CMakeFiles/mobile_host_test.dir/mobile_host_test.cc.o"
  "CMakeFiles/mobile_host_test.dir/mobile_host_test.cc.o.d"
  "mobile_host_test"
  "mobile_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
