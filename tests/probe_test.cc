// Unit tests for the measurement harness itself (probe stream, echo server,
// loss-window accounting) — the instruments behind E1/E2 deserve their own
// verification.
#include <gtest/gtest.h>

#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() {
    TestbedConfig cfg;
    cfg.seed = 111;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(ProbeFixture, CountsSentAndReceived) {
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(20)});
  sender.Start();
  tb_->RunFor(Seconds(1));
  sender.Stop();
  tb_->RunFor(Seconds(1));

  // First probe fires immediately, then one per 20 ms: 51 in one second.
  EXPECT_EQ(sender.sent(), 51u);
  EXPECT_EQ(sender.received(), 51u);
  EXPECT_EQ(sender.TotalLost(), 0u);
  EXPECT_EQ(echo.echoes_sent(), 51u);
}

TEST_F(ProbeFixture, RttsArePlausibleAndWindowed) {
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(50)});
  const Time start = tb_->sim.Now();
  sender.Start();
  tb_->RunFor(Seconds(1));
  sender.Stop();
  tb_->RunFor(Seconds(1));

  const auto all = sender.RttsInWindow(Time::Zero(), Time::Max());
  ASSERT_EQ(all.size(), sender.received());
  for (Duration rtt : all) {
    EXPECT_GT(rtt.ToMillisF(), 1.0);   // Kernel pipelines alone cost ~4 ms.
    EXPECT_LT(rtt.ToMillisF(), 50.0);  // Same-campus Ethernet path.
  }
  // Window halves partition the samples.
  const Time mid = start + Milliseconds(500);
  EXPECT_EQ(sender.RttsInWindow(Time::Zero(), mid).size() +
                sender.RttsInWindow(mid, Time::Max()).size(),
            all.size());
}

TEST_F(ProbeFixture, LostInWindowIsolatesAnOutage) {
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(20)});
  sender.Start();
  tb_->RunFor(Seconds(1));

  // Hard outage: the MH's device vanishes for 300 ms.
  const Time outage_start = tb_->sim.Now();
  tb_->mh_eth->TakeDown();
  tb_->RunFor(Milliseconds(300));
  tb_->ForceEthUp();
  const Time outage_end = tb_->sim.Now();
  tb_->RunFor(Seconds(1));
  sender.Stop();
  tb_->RunFor(Seconds(1));

  // ~15 probes fell in the outage; allow edge effects for in-flight probes.
  const uint64_t in_window =
      sender.LostInWindow(outage_start - Milliseconds(20), outage_end);
  EXPECT_GE(in_window, 13u);
  EXPECT_LE(in_window, 17u);
  EXPECT_EQ(sender.TotalLost(), sender.LostInWindow(Time::Zero(), Time::Max()));
  // Before the outage, nothing was lost.
  EXPECT_EQ(sender.LostInWindow(Time::Zero(), outage_start - Milliseconds(20)), 0u);
}

TEST_F(ProbeFixture, DuplicateEchoesNotDoubleCounted) {
  // Two echo servers on different ports behave independently; unknown seq
  // numbers and duplicate echoes are ignored.
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(100)});
  sender.Start();
  tb_->RunFor(Milliseconds(500));
  sender.Stop();
  tb_->RunFor(Seconds(1));
  EXPECT_LE(sender.received(), sender.sent());
  for (const auto& [seq, rec] : sender.records()) {
    if (rec.echoed_at.has_value()) {
      EXPECT_GE(*rec.echoed_at, rec.sent_at);
    }
  }
}

}  // namespace
}  // namespace msn
