# Empty dependencies file for ip_stack_test.
# This may be replaced when dependencies are built.
