// Mobility handoff benchmark: handoff rate, handoff latency, and in-flight
// probe loss as a function of walking speed and cell density (paper §6 —
// switching between networks as the host physically roams).
//
// Each run boots the testbed with the mobile host registered on the wired
// foreign subnet, then lets a random-waypoint walk roam a corridor campus of
// alternating wired drop zones and radio cells. The mobility driver turns
// distance into per-medium loss/latency/RSSI; the signal-aware movement
// detector decides every handoff — nothing is scripted. The correspondent
// (outside the campus) streams sequenced UDP probes at the home address for
// the whole run, so handoff cost shows up as probe loss.
//
// Output: a human-readable table over the speed x density sweep plus the
// unified BENCH_mobility_handoff.json report (one row per cell). Exits
// non-zero if the walks never hand off, if delivery collapses outright, or
// if the report cannot be written.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mip/movement_detector.h"
#include "src/mobility/mobility_driver.h"
#include "src/node/udp.h"
#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/util/assert.h"
#include "src/util/stats.h"

namespace msn {
namespace {

constexpr Duration kHorizon = Seconds(60);
constexpr Duration kProbeInterval = Milliseconds(50);
constexpr double kMapWidthM = 1200.0;
constexpr double kMapHeightM = 240.0;
constexpr double kWiredRangeM = 60.0;
constexpr double kRadioRangeM = 120.0;

const double kSpeedsMps[] = {2.0, 8.0, 18.0};
const int kCellCounts[] = {3, 6};

struct Cell {
  double speed_mps = 0.0;
  int cells = 0;
  int runs = 0;
  int registered_runs = 0;  // Runs ending with a live binding.
  uint64_t handoffs_signal = 0;
  uint64_t handoffs_coverage = 0;
  RunningStats handoff_ms;  // Per-run mean successful-attach latency.
  RunningStats loss_fraction;
  std::vector<double> loss_samples;
  uint64_t probes_sent = 0;
  uint64_t probes_received = 0;
};

void RunCell(Cell& cell, uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.realistic_delays = false;
  cfg.external_ch = true;  // CH traffic must not ride the campus cells.
  Testbed tb(cfg);
  FaultInjector inject_wired(tb.sim, *tb.net8, &tb.metrics);
  FaultInjector inject_radio(tb.sim, *tb.radio134, &tb.metrics);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  CampusMap map =
      CampusMap::Corridor(kMapWidthM, kMapHeightM, cell.cells, kWiredRangeM, kRadioRangeM);
  const Vec2 start = map.base_stations().front().position;
  RandomWaypointModel::Params wp;
  wp.min_speed_mps = cell.speed_mps;
  wp.max_speed_mps = cell.speed_mps;  // Constant speed: the sweep variable.
  wp.max_pause = Seconds(1);
  auto model = std::make_unique<RandomWaypointModel>(Vec2{kMapWidthM, kMapHeightM}, start, wp,
                                                     Rng(seed).Fork("walk"));

  MovementDetector::Config det_cfg;
  det_cfg.use_signal = true;
  det_cfg.min_residency = Seconds(3);
  det_cfg.metrics = &tb.metrics;
  MovementDetector detector(*tb.mobile, det_cfg);
  detector.AddCandidate({tb.WiredAttachment(50), /*preference=*/2});
  detector.AddCandidate({tb.WirelessAttachment(50), /*preference=*/1});

  MobilityDriver::Config drv_cfg;
  drv_cfg.detector = &detector;
  drv_cfg.metrics = &tb.metrics;
  MobilityDriver driver(*tb.mobile, std::move(map), std::move(model), drv_cfg);
  driver.AddBinding(tb.WiredMobilityBinding(&inject_wired, 50));
  driver.AddBinding(tb.RadioMobilityBinding(&inject_radio, 50));
  driver.Start();
  detector.Start();

  uint64_t received = 0;
  UdpSocket sink(tb.mh->stack());
  MSN_CHECK(sink.Bind(6001));
  sink.SetReceiveHandler([&](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
    (void)data;
    (void)meta;
    ++received;
  });
  uint64_t sent = 0;
  UdpSocket source(tb.ch->stack());
  MSN_CHECK(source.Bind(6000));
  PeriodicTask probes(tb.sim, kProbeInterval, [&] {
    ++sent;
    source.SendTo(Testbed::HomeAddress(), 6001, {0xca, 0xfe});
  });
  probes.Start();

  tb.RunFor(kHorizon);
  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }

  ++cell.runs;
  if (tb.mobile->registered() || tb.mobile->at_home()) {
    ++cell.registered_runs;
  }
  cell.handoffs_signal += driver.counters().handoffs_signal;
  cell.handoffs_coverage += driver.counters().handoffs_coverage;
  if (const Histogram* h = tb.metrics.FindHistogram("mh.handoff_ms");
      h != nullptr && h->count() > 0) {
    cell.handoff_ms.Add(h->mean());
  }
  const double loss =
      sent == 0 ? 0.0 : 1.0 - static_cast<double>(received) / static_cast<double>(sent);
  cell.loss_fraction.Add(loss);
  cell.loss_samples.push_back(loss);
  cell.probes_sent += sent;
  cell.probes_received += received;
}

int Main() {
  const int kRunsPerCell = BenchIterations(5, 2);

  BenchReport report("mobility_handoff",
                     "Handoff rate, latency, and probe loss over a speed x cell-density sweep");
  report.set_seed(7000);
  report.AddParam("runs_per_cell", kRunsPerCell);
  report.AddParam("horizon_ms", kHorizon.millis());
  report.AddParam("probe_interval_ms", kProbeInterval.millis());
  report.AddParam("map_width_m", kMapWidthM);
  report.AddParam("map_height_m", kMapHeightM);

  std::vector<Cell> cells;
  for (const double speed : kSpeedsMps) {
    for (const int count : kCellCounts) {
      Cell cell;
      cell.speed_mps = speed;
      cell.cells = count;
      cells.push_back(cell);
    }
  }
  bool metrics_captured = false;
  uint64_t seed = 7000;
  for (Cell& cell : cells) {
    for (int run = 0; run < kRunsPerCell; ++run) {
      const bool capture = !metrics_captured;
      metrics_captured = true;
      RunCell(cell, seed++, capture ? &report : nullptr);
    }
  }

  std::printf("=======================================================================\n");
  std::printf("Mobility handoff: random-waypoint walk over a %.0fx%.0f m corridor,\n", kMapWidthM,
              kMapHeightM);
  std::printf("CH probes the home address every %lld ms for %lld ms; %d runs/cell\n",
              static_cast<long long>(kProbeInterval.millis()),
              static_cast<long long>(kHorizon.millis()), kRunsPerCell);
  std::printf("=======================================================================\n\n");
  std::printf("speed  cells  handoffs(sig/cov)  handoff ms mean       loss mean  reg\n");
  std::printf("-----  -----  -----------------  -------------------  ----------  ---\n");
  uint64_t total_handoffs = 0;
  uint64_t total_sent = 0;
  uint64_t total_received = 0;
  for (Cell& cell : cells) {
    const uint64_t handoffs = cell.handoffs_signal + cell.handoffs_coverage;
    total_handoffs += handoffs;
    total_sent += cell.probes_sent;
    total_received += cell.probes_received;
    std::printf("%5.1f  %5d  %8llu /%7llu  %-19s  %10.3f  %d/%d\n", cell.speed_mps, cell.cells,
                static_cast<unsigned long long>(cell.handoffs_signal),
                static_cast<unsigned long long>(cell.handoffs_coverage),
                cell.handoff_ms.Summary(1).c_str(), cell.loss_fraction.mean(),
                cell.registered_runs, cell.runs);
    char label[48];
    std::snprintf(label, sizeof(label), "speed%.0f_cells%d", cell.speed_mps, cell.cells);
    report.AddRow(label, {{"speed_mps", cell.speed_mps},
                          {"cells", cell.cells},
                          {"runs", cell.runs},
                          {"registered_runs", cell.registered_runs},
                          {"handoffs_signal", cell.handoffs_signal},
                          {"handoffs_coverage", cell.handoffs_coverage},
                          {"handoff_ms_mean", cell.handoff_ms.mean()},
                          {"loss_fraction_mean", cell.loss_fraction.mean()},
                          {"probes_sent", cell.probes_sent},
                          {"probes_received", cell.probes_received}});
    report.AddSummary(label, "loss_fraction", cell.loss_samples);
  }

  std::printf(
      "\nShape check: faster walks cross cell boundaries more often, so handoffs\n"
      "rise with speed; denser corridors shrink the dead zones between cells,\n"
      "so loss falls as cell count grows at a given speed.\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  if (path.empty()) {
    return 1;
  }
  if (total_handoffs == 0) {
    std::printf("FAIL: no run ever handed off — the mobility loop is not closing\n");
    return 1;
  }
  if (total_received == 0 || total_sent == 0) {
    std::printf("FAIL: probe stream never delivered\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
