// Small statistics helpers used by the benchmark harness and tests:
// running mean/stddev (Welford), integer histograms, and percentiles.
#ifndef MSN_SRC_UTIL_STATS_H_
#define MSN_SRC_UTIL_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msn {

// Numerically stable running mean and standard deviation (Welford's method).
class RunningStats {
 public:
  void Add(double x);
  void Clear();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // "mean (stddev)" with the given printf precision, e.g. "7.39 (0.21)".
  std::string Summary(int precision = 2) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Histogram over integer-valued observations (e.g. packets lost per trial).
class IntHistogram {
 public:
  void Add(int64_t value);

  int64_t CountFor(int64_t value) const;
  int64_t total() const { return total_; }
  int64_t min_value() const;
  int64_t max_value() const;
  const std::map<int64_t, int64_t>& buckets() const { return buckets_; }

  // Multi-line rendering: one "value: count  ###" row per occupied bucket,
  // including empty buckets between min and max for a bar-chart feel
  // (mirrors the paper's Figure 6 presentation).
  std::string Render(const std::string& value_label = "value") const;

 private:
  std::map<int64_t, int64_t> buckets_;
  int64_t total_ = 0;
};

// Percentile over a sample set (nearest-rank). `p` in [0, 100].
double Percentile(std::vector<double> samples, double p);

}  // namespace msn

#endif  // MSN_SRC_UTIL_STATS_H_
