#include "src/tcplite/tcplite.h"

#include <algorithm>
#include <utility>

#include "src/net/checksum.h"
#include "src/util/assert.h"
#include "src/util/byte_buffer.h"
#include "src/util/logging.h"

namespace msn {

// --- Wire format -----------------------------------------------------------------

std::vector<uint8_t> TcpLiteSegment::Serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const {
  MSN_CHECK(payload.size() <= size_t{0xffff} - kHeaderSize)
      << "tcplite payload of " << payload.size() << " bytes would truncate the length";
  const uint16_t length = static_cast<uint16_t>(kHeaderSize + payload.size());
  ByteWriter w(length);
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU32(seq);
  w.WriteU32(ack);
  w.WriteU8(flags);
  w.WriteU8(window_segments);
  w.WriteU16(0);  // Checksum placeholder.
  w.WriteBytes(payload);

  InternetChecksum cs;
  cs.AddU32(src_ip.value());
  cs.AddU32(dst_ip.value());
  cs.AddU16(static_cast<uint16_t>(IpProto::kTcp));
  cs.AddU16(length);
  cs.Add(w.data());
  w.PatchU16(14, cs.Fold());
  return w.Take();
}

std::optional<TcpLiteSegment> TcpLiteSegment::Parse(std::span<const uint8_t> bytes,
                                                    Ipv4Address src_ip, Ipv4Address dst_ip) {
  if (bytes.size() < kHeaderSize) {
    return std::nullopt;
  }
  InternetChecksum cs;
  cs.AddU32(src_ip.value());
  cs.AddU32(dst_ip.value());
  cs.AddU16(static_cast<uint16_t>(IpProto::kTcp));
  cs.AddU16(static_cast<uint16_t>(bytes.size()));
  cs.Add(bytes.data(), bytes.size());
  if (cs.Fold() != 0) {
    return std::nullopt;
  }
  ByteReader r(bytes);
  TcpLiteSegment seg;
  seg.src_port = r.ReadU16();
  seg.dst_port = r.ReadU16();
  seg.seq = r.ReadU32();
  seg.ack = r.ReadU32();
  seg.flags = r.ReadU8();
  seg.window_segments = r.ReadU8();
  r.Skip(2);  // Checksum (verified above via the pseudo-header fold).
  const auto payload = r.RemainingSpan();
  seg.payload.assign(payload.begin(), payload.end());
  return seg;
}

// --- Connection --------------------------------------------------------------------

TcpLiteConnection::TcpLiteConnection(TcpLite& tcp, Ipv4Address remote_addr,
                                     uint16_t remote_port, uint16_t local_port,
                                     Ipv4Address bound_src)
    : tcp_(tcp), remote_addr_(remote_addr), remote_port_(remote_port),
      local_port_(local_port), bound_src_(bound_src) {}

TcpLiteConnection::~TcpLiteConnection() { CancelRto(); }

void TcpLiteConnection::StartActiveOpen(ConnectHandler handler) {
  connect_handler_ = std::move(handler);
  iss_ = static_cast<uint32_t>(tcp_.stack().sim().rng().NextU64() & 0x7fffffff);
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number.
  state_ = State::kSynSent;
  SendSegment(TcpLiteSegment::kFlagSyn, iss_, {});
  ArmRto();
}

void TcpLiteConnection::StartPassiveOpen(uint32_t remote_iss) {
  rcv_nxt_ = remote_iss + 1;
  iss_ = static_cast<uint32_t>(tcp_.stack().sim().rng().NextU64() & 0x7fffffff);
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = State::kSynReceived;
  SendSegment(TcpLiteSegment::kFlagSyn | TcpLiteSegment::kFlagAck, iss_, {});
  ArmRto();
}

void TcpLiteConnection::Send(const std::vector<uint8_t>& data) {
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished) {
    TrySendData();
  }
}

void TcpLiteConnection::Close() {
  fin_pending_ = true;
  if (state_ == State::kEstablished) {
    TrySendData();
  }
}

void TcpLiteConnection::Abort() {
  if (state_ == State::kClosed) {
    return;
  }
  SendSegment(TcpLiteSegment::kFlagRst, snd_nxt_, {});
  EnterClosed(/*notify=*/false);
}

void TcpLiteConnection::SendSegment(uint8_t flags, uint32_t seq,
                                    const std::vector<uint8_t>& payload) {
  TcpLiteSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.flags = flags;
  seg.window_segments = kWindowSegments;
  if (state_ != State::kSynSent || (flags & TcpLiteSegment::kFlagSyn) == 0) {
    seg.flags |= TcpLiteSegment::kFlagAck;
    seg.ack = rcv_nxt_;
  }
  if ((flags & TcpLiteSegment::kFlagSyn) != 0 && state_ == State::kSynSent) {
    seg.flags &= ~TcpLiteSegment::kFlagAck;  // Pure SYN carries no ACK.
    seg.ack = 0;
  }
  seg.payload = payload;
  tcp_.Transmit(*this, seg);
}

void TcpLiteConnection::SendAck() { SendSegment(TcpLiteSegment::kFlagAck, snd_nxt_, {}); }

void TcpLiteConnection::TrySendData() {
  // Go-back-N sender: window limits bytes in flight.
  const size_t window_bytes = static_cast<size_t>(kWindowSegments) * kMss;
  while (unsent_offset_ < send_buffer_.size()) {
    const size_t in_flight = static_cast<size_t>(snd_nxt_ - snd_una_);
    if (in_flight >= window_bytes) {
      break;
    }
    const size_t chunk = std::min({kMss, send_buffer_.size() - unsent_offset_,
                                   window_bytes - in_flight});
    std::vector<uint8_t> payload(send_buffer_.begin() + unsent_offset_,
                                 send_buffer_.begin() + unsent_offset_ + chunk);
    SendSegment(TcpLiteSegment::kFlagAck, snd_nxt_, payload);
    snd_nxt_ += static_cast<uint32_t>(chunk);
    unsent_offset_ += chunk;
    bytes_sent_ += chunk;
    ArmRto();
  }
  if (fin_pending_ && !fin_sent_ && unsent_offset_ == send_buffer_.size()) {
    fin_sent_ = true;
    SendSegment(TcpLiteSegment::kFlagFin | TcpLiteSegment::kFlagAck, snd_nxt_, {});
    snd_nxt_ += 1;  // FIN consumes one sequence number.
    state_ = State::kFinSent;
    ArmRto();
  }
}

void TcpLiteConnection::ArmRto() {
  if (rto_event_.valid()) {
    return;
  }
  rto_event_ = tcp_.stack().sim().Schedule(current_rto_, [this] { OnRtoExpired(); });
}

void TcpLiteConnection::CancelRto() {
  tcp_.stack().sim().Cancel(rto_event_);
  rto_event_ = EventId();
}

void TcpLiteConnection::OnRtoExpired() {
  rto_event_ = EventId();
  if (state_ == State::kClosed) {
    return;
  }
  ++retransmissions_;
  current_rto_ = std::min(current_rto_ * int64_t{2}, kMaxRto);

  switch (state_) {
    case State::kSynSent:
      SendSegment(TcpLiteSegment::kFlagSyn, iss_, {});
      break;
    case State::kSynReceived:
      SendSegment(TcpLiteSegment::kFlagSyn | TcpLiteSegment::kFlagAck, iss_, {});
      break;
    case State::kEstablished:
    case State::kFinSent: {
      // Go-back-N: resend everything outstanding, from snd_una_ up.
      const size_t unacked = static_cast<size_t>(snd_nxt_ - snd_una_);
      const size_t unacked_data = std::min(unacked, send_buffer_.size());
      size_t offset = 0;
      while (offset < unacked_data) {
        const size_t chunk = std::min(kMss, unacked_data - offset);
        std::vector<uint8_t> payload(send_buffer_.begin() + static_cast<long>(offset),
                                     send_buffer_.begin() + static_cast<long>(offset + chunk));
        SendSegment(TcpLiteSegment::kFlagAck, snd_una_ + static_cast<uint32_t>(offset),
                    payload);
        offset += chunk;
      }
      // An outstanding FIN rides one sequence number past the data.
      if (fin_sent_ && unacked > unacked_data) {
        SendSegment(TcpLiteSegment::kFlagFin | TcpLiteSegment::kFlagAck,
                    snd_una_ + static_cast<uint32_t>(unacked_data), {});
      }
      break;
    }
    case State::kClosed:
      return;
  }
  ArmRto();
}

void TcpLiteConnection::EnterEstablished(bool from_active_open) {
  state_ = State::kEstablished;
  current_rto_ = kInitialRto;
  if (from_active_open && connect_handler_) {
    ConnectHandler cb = std::move(connect_handler_);
    connect_handler_ = nullptr;
    cb(true);
  }
  TrySendData();
}

void TcpLiteConnection::EnterClosed(bool notify) {
  CancelRto();
  state_ = State::kClosed;
  if (connect_handler_) {
    ConnectHandler cb = std::move(connect_handler_);
    connect_handler_ = nullptr;
    cb(false);
  }
  if (notify && close_handler_) {
    close_handler_();
  }
}

void TcpLiteConnection::HandleSegment(const TcpLiteSegment& segment) {
  if (segment.rst()) {
    EnterClosed(/*notify=*/true);
    return;
  }

  switch (state_) {
    case State::kSynSent:
      if (segment.syn() && segment.has_ack() && segment.ack == snd_una_ + 1) {
        snd_una_ = segment.ack;
        rcv_nxt_ = segment.seq + 1;
        CancelRto();
        SendAck();
        EnterEstablished(/*from_active_open=*/true);
      }
      return;
    case State::kSynReceived:
      if (segment.has_ack() && segment.ack == snd_una_ + 1) {
        snd_una_ = segment.ack;
        CancelRto();
        EnterEstablished(/*from_active_open=*/false);
      }
      return;
    case State::kEstablished:
    case State::kFinSent:
      break;
    case State::kClosed:
      return;
  }

  // ACK processing (cumulative).
  if (segment.has_ack()) {
    const uint32_t acked = segment.ack - snd_una_;
    const uint32_t outstanding = snd_nxt_ - snd_una_;
    if (acked > 0 && acked <= outstanding) {
      // Data bytes acked excludes a possible FIN sequence number.
      size_t data_acked = acked;
      if (fin_sent_ && segment.ack == snd_nxt_) {
        data_acked -= 1;
      }
      data_acked = std::min(data_acked, send_buffer_.size());
      send_buffer_.erase(send_buffer_.begin(),
                         send_buffer_.begin() + static_cast<long>(data_acked));
      unsent_offset_ -= std::min(unsent_offset_, data_acked);
      bytes_acked_ += data_acked;
      snd_una_ = segment.ack;
      CancelRto();
      current_rto_ = kInitialRto;
      if (snd_una_ != snd_nxt_) {
        ArmRto();
      } else if (state_ == State::kFinSent && fin_sent_) {
        EnterClosed(/*notify=*/false);
        tcp_.RemoveConnection(this);
        return;
      }
      TrySendData();
    }
  }

  // In-order data delivery; anything else re-ACKs (go-back-N receiver).
  if (!segment.payload.empty()) {
    if (segment.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<uint32_t>(segment.payload.size());
      bytes_received_ += segment.payload.size();
      SendAck();
      if (data_handler_) {
        data_handler_(segment.payload);
      }
    } else {
      ++segments_out_of_order_;
      SendAck();
    }
  }

  if (segment.fin() && segment.seq == rcv_nxt_) {
    rcv_nxt_ += 1;
    SendAck();
    EnterClosed(/*notify=*/true);
    tcp_.RemoveConnection(this);
  }
}

// --- TcpLite demux -------------------------------------------------------------------

TcpLite::TcpLite(IpStack& stack) : stack_(stack) {
  stack_.RegisterProtocolHandler(
      IpProto::kTcp,
      [this](const Ipv4Header& header, const Packet& payload, NetDevice* ingress) {
        (void)ingress;
        OnDatagram(header, payload.span());
      });
}

TcpLite::~TcpLite() { stack_.UnregisterProtocolHandler(IpProto::kTcp); }

uint16_t TcpLite::AllocatePort() {
  for (int i = 0; i < 20000; ++i) {
    const uint16_t port = next_port_;
    next_port_ = next_port_ == 65000 ? 40000 : next_port_ + 1;
    bool in_use = listeners_.count(port) > 0;
    for (const auto& [key, conn] : connections_) {
      if (key.local_port == port) {
        in_use = true;
        break;
      }
    }
    if (!in_use) {
      return port;
    }
  }
  return 0;
}

void TcpLite::Listen(uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpLiteConnection* TcpLite::Connect(Ipv4Address dst, uint16_t dst_port,
                                    TcpLiteConnection::ConnectHandler on_connected,
                                    Ipv4Address bound_src) {
  const uint16_t local_port = AllocatePort();
  if (local_port == 0) {
    if (on_connected) {
      on_connected(false);
    }
    return nullptr;
  }
  auto conn = std::unique_ptr<TcpLiteConnection>(
      new TcpLiteConnection(*this, dst, dst_port, local_port, bound_src));
  TcpLiteConnection* raw = conn.get();
  connections_[ConnKey{local_port, dst.value(), dst_port}] = std::move(conn);
  raw->StartActiveOpen(std::move(on_connected));
  return raw;
}

void TcpLite::OnDatagram(const Ipv4Header& header, std::span<const uint8_t> payload) {
  auto segment = TcpLiteSegment::Parse(payload, header.src, header.dst);
  if (!segment) {
    ++counters_.bad_segments;
    return;
  }
  ++counters_.segments_received;

  const ConnKey key{segment->dst_port, header.src.value(), segment->src_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->HandleSegment(*segment);
    return;
  }

  // New connection?
  if (segment->syn() && !segment->has_ack()) {
    auto listener = listeners_.find(segment->dst_port);
    if (listener != listeners_.end()) {
      auto conn = std::unique_ptr<TcpLiteConnection>(new TcpLiteConnection(
          *this, header.src, segment->src_port, segment->dst_port, Ipv4Address::Any()));
      TcpLiteConnection* raw = conn.get();
      connections_[key] = std::move(conn);
      raw->StartPassiveOpen(segment->seq);
      listener->second(raw);
      return;
    }
  }
  if (!segment->rst()) {
    SendReset(header, *segment);
  }
}

void TcpLite::Transmit(TcpLiteConnection& conn, const TcpLiteSegment& segment) {
  // Like UDP, the checksum needs the final source address; consult the route
  // lookup (mobility override included) when the connection is unbound.
  Ipv4Address src = conn.bound_src_;
  if (src.IsAny()) {
    RouteQuery query{conn.remote_addr_, Ipv4Address::Any(), /*forwarding=*/false,
                     /*advisory=*/true};
    if (auto decision = stack_.RouteLookup(query)) {
      src = decision->src;
    }
  }
  ++counters_.segments_sent;
  stack_.SendDatagram(src, conn.remote_addr_, IpProto::kTcp,
                      segment.Serialize(src, conn.remote_addr_));
}

void TcpLite::SendReset(const Ipv4Header& header, const TcpLiteSegment& segment) {
  ++counters_.resets_sent;
  TcpLiteSegment rst;
  rst.src_port = segment.dst_port;
  rst.dst_port = segment.src_port;
  rst.seq = segment.has_ack() ? segment.ack : 0;
  rst.ack = segment.seq + static_cast<uint32_t>(segment.payload.size()) +
            (segment.syn() ? 1 : 0);
  rst.flags = TcpLiteSegment::kFlagRst | TcpLiteSegment::kFlagAck;
  stack_.SendDatagram(header.dst, header.src, IpProto::kTcp,
                      rst.Serialize(header.dst, header.src));
}

void TcpLite::RemoveConnection(TcpLiteConnection* conn) {
  // Deferred: destroying mid-callback would free the object under our feet.
  stack_.sim().Schedule(Duration(), [this, conn] {
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->second.get() == conn) {
        connections_.erase(it);
        return;
      }
    }
  });
}

}  // namespace msn
