# Empty compiler generated dependencies file for bench_device_switch.
# This may be replaced when dependencies are built.
