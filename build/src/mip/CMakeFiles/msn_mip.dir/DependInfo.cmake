
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mip/foreign_agent.cc" "src/mip/CMakeFiles/msn_mip.dir/foreign_agent.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/foreign_agent.cc.o.d"
  "/root/repo/src/mip/home_agent.cc" "src/mip/CMakeFiles/msn_mip.dir/home_agent.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/home_agent.cc.o.d"
  "/root/repo/src/mip/ipip.cc" "src/mip/CMakeFiles/msn_mip.dir/ipip.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/ipip.cc.o.d"
  "/root/repo/src/mip/messages.cc" "src/mip/CMakeFiles/msn_mip.dir/messages.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/messages.cc.o.d"
  "/root/repo/src/mip/mobile_host.cc" "src/mip/CMakeFiles/msn_mip.dir/mobile_host.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/mobile_host.cc.o.d"
  "/root/repo/src/mip/movement_detector.cc" "src/mip/CMakeFiles/msn_mip.dir/movement_detector.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/movement_detector.cc.o.d"
  "/root/repo/src/mip/policy_table.cc" "src/mip/CMakeFiles/msn_mip.dir/policy_table.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/policy_table.cc.o.d"
  "/root/repo/src/mip/vif.cc" "src/mip/CMakeFiles/msn_mip.dir/vif.cc.o" "gcc" "src/mip/CMakeFiles/msn_mip.dir/vif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/node/CMakeFiles/msn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/msn_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
