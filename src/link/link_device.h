// Concrete devices over a BroadcastMedium, plus the loopback device.
#ifndef MSN_SRC_LINK_LINK_DEVICE_H_
#define MSN_SRC_LINK_LINK_DEVICE_H_

#include <string>

#include "src/link/medium.h"
#include "src/link/net_device.h"

namespace msn {

// A device attached to a BroadcastMedium.
class LinkDevice : public NetDevice {
 public:
  LinkDevice(Simulator& sim, std::string name, MacAddress mac, uint64_t bandwidth_bps);
  ~LinkDevice() override;

  uint64_t bandwidth_bps() const override { return bandwidth_bps_; }
  void set_bandwidth_bps(uint64_t bps) { bandwidth_bps_ = bps; }

  // Attaches to (at most one) medium. Detach by attaching to nullptr.
  void AttachTo(BroadcastMedium* medium);
  BroadcastMedium* medium() const { return medium_; }

 protected:
  void SendToMedium(const EthernetFrame& frame) override;

 private:
  friend class BroadcastMedium;
  // Called from ~BroadcastMedium so a device outliving its medium never
  // touches the dead medium on its own destruction or reattachment.
  void MediumDestroyed() { medium_ = nullptr; }

  uint64_t bandwidth_bps_;
  BroadcastMedium* medium_ = nullptr;
};

// 10 Mb/s PCMCIA Ethernet (the paper's Linksys card). Bring-up models driver
// + card initialization.
class EthernetDevice : public LinkDevice {
 public:
  static constexpr uint64_t kDefaultBandwidthBps = 10'000'000;

  EthernetDevice(Simulator& sim, std::string name, MacAddress mac);
};

// Metricom radio in Starmode, driven by the STRIP driver over a 115.2 kb/s
// serial port. Nominal air rate 100 kb/s, ~30-40 kb/s achieved; we model the
// effective rate. Radio bring-up is slow (power-up + network acquisition),
// which is why cold switches to the radio lose the most probe packets.
class StripRadioDevice : public LinkDevice {
 public:
  static constexpr uint64_t kDefaultBandwidthBps = 35'000;

  StripRadioDevice(Simulator& sim, std::string name, MacAddress mac);
};

// Loopback: frames are redelivered to the same device after a tiny delay.
class LoopbackDevice : public NetDevice {
 public:
  explicit LoopbackDevice(Simulator& sim, std::string name = "lo");

  uint64_t bandwidth_bps() const override { return 0; }  // No serialization cost.

 protected:
  void SendToMedium(const EthernetFrame& frame) override;
};

// Convenience: default medium parameter sets matching the testbed.
MediumParams EthernetMediumParams();
MediumParams RadioMediumParams();

}  // namespace msn

#endif  // MSN_SRC_LINK_LINK_DEVICE_H_
