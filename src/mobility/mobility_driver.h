// Drives physical mobility into the link layer and the movement detector
// (DESIGN.md §15).
//
// Each tick the driver advances the host's mobility model, finds the nearest
// base station per bound medium, and turns distance into link quality:
//
//   * loss  -> the medium's FaultInjector, as a degenerate Gilbert-Elliott
//     profile (no burst state, loss_good = loss_bad = f(distance));
//   * latency -> the medium's base propagation latency plus an edge penalty;
//   * RSSI  -> MovementDetector::ReportSignal, so the detector's signal-aware
//     policy sees fading before the loss EWMA catches up.
//
// The driver also manages association for non-serving media: entering a
// cell's coverage force-brings the device up and configures its care-of
// address (so the detector's switch onto it can be a *hot* switch), leaving
// coverage tears it back down. The serving device is never touched — walking
// out of its cell shows up as loss, and the handoff decision stays with the
// movement detector. Handoffs are classified by what forced them: a switch
// off a medium that was still in coverage is "signal" (quality-driven), off
// a dead one is "coverage" (forced).
//
// Telemetry (all under "mobility.*"): position gauges, per-medium
// loss/RSSI gauges, per-cell residency tick counters, handoff cause
// counters.
#ifndef MSN_SRC_MOBILITY_MOBILITY_DRIVER_H_
#define MSN_SRC_MOBILITY_MOBILITY_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mip/movement_detector.h"
#include "src/mobility/campus_map.h"
#include "src/mobility/link_quality.h"
#include "src/mobility/mobility_model.h"

namespace msn {

class MobilityDriver {
 public:
  // One testbed medium the roaming host can attach through.
  struct MediumBinding {
    CellMedium cell_medium = CellMedium::kRadio;  // Which base stations apply.
    BroadcastMedium* medium = nullptr;
    FaultInjector* injector = nullptr;  // Distance-derived loss goes here.
    // The host's attachment through this medium (device, care-of, gateway).
    MobileHost::Attachment attachment;
    RadioParams quality;  // Distance -> loss/RSSI/latency mapping.
  };

  // Live per-binding quality snapshot, recomputed every tick.
  struct MediumState {
    const BaseStation* station = nullptr;  // Nearest cell; null if none placed.
    double distance_m = 0.0;
    double rssi_dbm = -200.0;
    double loss = 1.0;
    bool in_coverage = false;
  };

  struct Config {
    Duration tick = Milliseconds(250);
    // Bring non-serving devices up/down as coverage changes (hot-switch
    // enablement). Disable to drive quality only.
    bool manage_association = true;
    MovementDetector* detector = nullptr;  // Optional RSSI feed.
    MetricsRegistry* metrics = nullptr;
  };

  struct Counters {
    uint64_t ticks = 0;
    // Device changes observed on the mobile host, by cause: the previous
    // medium was still in coverage (quality-driven) vs. already dead.
    uint64_t handoffs_signal = 0;
    uint64_t handoffs_coverage = 0;
  };

  MobilityDriver(MobileHost& mobile, CampusMap map, std::unique_ptr<MobilityModel> model,
                 Config config);
  ~MobilityDriver();

  MobilityDriver(const MobilityDriver&) = delete;
  MobilityDriver& operator=(const MobilityDriver&) = delete;

  void AddBinding(const MediumBinding& binding);

  // Applies quality once immediately, then every config.tick.
  void Start();
  void Stop();

  Vec2 position() const { return model_->position(); }
  const CampusMap& map() const { return map_; }
  const MobilityModel& model() const { return *model_; }
  const Counters& counters() const { return counters_; }

  size_t binding_count() const { return bound_.size(); }
  const MediumBinding& binding(size_t i) const { return bound_[i].binding; }
  const MediumState& state(size_t i) const { return bound_[i].state; }

  // True when some bound medium currently has loss <= threshold — the
  // coverage-continuity oracle's premise that connectivity was available.
  [[nodiscard]] bool AnyDeepCoverage(double loss_threshold) const;

 private:
  struct Bound {
    MediumBinding binding;
    MediumParams base_params;  // Medium params before the driver touched them.
    MediumState state;
  };

  void Tick();
  void UpdateQuality(Bound& b);
  void ManageAssociation(Bound& b);
  void NoteHandoffs();

  MobileHost& mobile_;
  CampusMap map_;
  std::unique_ptr<MobilityModel> model_;
  Config config_;
  std::vector<Bound> bound_;
  std::unique_ptr<PeriodicTask> task_;
  Counters counters_;
  NetDevice* last_device_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
};

}  // namespace msn

#endif  // MSN_SRC_MOBILITY_MOBILITY_DRIVER_H_
