#!/usr/bin/env python3
"""msn_lint: repo-specific static analysis for the MosquitoNet reproduction.

Machine-checks the invariants the codebase is built on but a compiler cannot
see:

  layering/upward-include   Includes must follow the layer DAG
                            util -> net,sim -> telemetry -> link -> node ->
                            mip,dhcp,tcplite -> repl,tracing,fault ->
                            mobility -> topo -> check.
                            (Lower layers never include higher ones; peers at
                            the same rank never include each other.)
  header/guard              Headers use an include guard named after their
                            path (MSN_SRC_DIR_FILE_H_); #pragma once is
                            rejected for consistency.
  header/using-namespace    No `using namespace` at any scope in headers.
  telemetry/metric-name     Metric names handed to MetricsRegistry::Get* are
                            lowercase dot-paths: "<subsystem>.<noun>" (e.g.
                            "ha.bindings", "ip.mh.drop_no_route") whose first
                            segment is a registered namespace (see
                            METRIC_NAMESPACES; includes the fuzzer's "check").
  perf/frame-by-value       No EthernetFrame or Packet parameters taken by
                            value in src/ signatures — pass `const&` to read,
                            `&&` to consume. A by-value parameter silently
                            refcounts (and can later COW-copy) the packet
                            buffer; intentional ownership sinks carry an
                            inline allow stating so.

Retired rules (owned by tools/msn_analyze.py, kept here as a fallback)

  determinism/wall-clock    No wall-clock or OS time source in src/ — all time
                            flows from the simulator clock (src/sim/time.h),
                            which is what makes same-seed runs byte-identical.
  determinism/ambient-rng   No std::rand / std::random_device / <random>
                            engines in src/ — all randomness flows from the
                            seeded msn::Rng (src/util/rng.h).

  These two moved to msn_analyze's AST backend, which resolves the actual
  callee and so also catches aliases, typedefs, and using-declarations the
  regexes here cannot see. They no longer run by default; `--with-retired`
  re-enables the regex versions as a degraded fallback (msn_analyze's own
  lexical fallback reuses these exact regexes when libclang is absent).

Suppressing a finding
  Inline: append `// msn-lint: allow(<rule-id>)` to the offending line (or
  place it alone on the line above). Use sparingly and say why nearby.
  File-level: add (rule-id, path) to FILE_ALLOWLIST below with a comment.

Usage
  tools/msn_lint.py [paths...]        # default: src/
  tools/msn_lint.py --list-rules

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.
Stdlib-only by design; self-tested by tests/msn_lint_test.py (run by ctest).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- Rule catalog -----------------------------------------------------------

RULES = {
    "determinism/wall-clock": "wall-clock/OS time source used instead of the simulator clock",
    "determinism/ambient-rng": "ambient RNG used instead of the seeded msn::Rng",
    "layering/upward-include": "include does not follow the layer DAG",
    "header/guard": "missing or misnamed include guard",
    "header/using-namespace": "`using namespace` in a header",
    "telemetry/metric-name": "metric name is not a lowercase <subsystem>.<noun> dot-path",
    "perf/frame-by-value": "EthernetFrame/Packet parameter taken by value",
}

# Rules that migrated to tools/msn_analyze.py's AST backend (which resolves
# real callees through aliases/typedefs). Skipped by default; --with-retired
# runs the regex versions here as a degraded fallback.
RETIRED_RULES = {"determinism/wall-clock", "determinism/ambient-rng"}

# Human-readable rendering of LAYER_RANK, used in the docstring and the
# layering error message. tests/msn_lint_test.py asserts it matches the table.
LAYER_DAG_TEXT = ("util -> net,sim -> telemetry -> link -> node -> "
                  "mip,dhcp,tcplite -> repl,tracing,fault -> mobility -> "
                  "topo -> check")

# Layer ranks; a file may include only from strictly lower ranks or its own
# directory. Keep in sync with DESIGN.md §11's DAG diagram.
LAYER_RANK = {
    "util": 0,
    "net": 1,
    "sim": 1,
    "telemetry": 2,
    "link": 3,
    "node": 4,
    "mip": 5,
    "dhcp": 5,
    "tcplite": 5,
    "repl": 6,
    "tracing": 6,
    "fault": 6,
    "mobility": 7,
    "topo": 8,
    "check": 9,
}

# (rule-id, repo-relative path) pairs exempted wholesale. Prefer inline
# allows; use this only when a file legitimately trips a rule throughout.
FILE_ALLOWLIST: set[tuple[str, str]] = set()

ALLOW_RE = re.compile(r"//\s*msn-lint:\s*allow\(([^)]+)\)")

WALL_CLOCK_RE = re.compile(
    r"""
    std::chrono::(?:system_clock|steady_clock|high_resolution_clock)
    | \b(?:time|gettimeofday|clock_gettime|timespec_get)\s*\(
    | \bclock\s*\(\s*\)
    | \b(?:localtime|gmtime|mktime|strftime)\s*\(
    """,
    re.VERBOSE,
)

AMBIENT_RNG_RE = re.compile(
    r"""
    \bstd::rand\b
    | \bs?rand\s*\(
    | \brandom_device\b
    | \bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine
              |ranlux(?:24|48)(?:_base)?|knuth_b)\b
    """,
    re.VERBOSE,
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"src/([a-z0-9_]+)/')
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")

METRIC_CALL_RE = re.compile(
    r"Get(?:Counter|CounterRef|Gauge|ProbeGauge|Histogram)\s*\(\s*(\"(?:[^\"\\]|\\.)*\")"
    r"\s*([,)+])?"
)
METRIC_FULL_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
METRIC_PIECE_RE = re.compile(r"^[a-z0-9_.]*$")

# First dot-path segment of every metric name. Keep sorted; grow it when a new
# subsystem starts exporting metrics (the check fuzzer's oracles are the most
# recent addition).
METRIC_NAMESPACES = {
    "burst", "check", "dev", "fault", "flow_cache", "ha", "ip", "link", "mh",
    "mobility", "packet", "pool", "repl", "tcp",
}

# Registered sub-namespaces (mirrored in tools/validate_bench_json.py).
# Indexed prefixes name one instance per numeric index: the segment right
# after the prefix must be all digits, followed by at least one noun segment
# ("ha.shard.3.bindings"). All-digit segments anywhere else are rejected —
# an unregistered "<ns>.<noun>.<i>.x" family silently explodes metric
# cardinality, so per-instance families must be registered here first.
INDEXED_METRIC_SUBNAMESPACES = {
    "ha.shard.", "ha.backup.shard.",
}
# Flat sub-namespaces: documented multi-metric families with no index.
FLAT_METRIC_SUBNAMESPACES = {
    "ha.admission.", "ha.backup.admission.",
}


def metric_numeric_segments_ok(name: str) -> bool:
    """True when every all-digit segment of `name` sits exactly at the index
    position of a registered indexed sub-namespace."""
    for prefix in INDEXED_METRIC_SUBNAMESPACES:
        if name.startswith(prefix):
            index, _, noun = name[len(prefix):].partition(".")
            return (index.isdigit() and noun != "" and
                    not any(seg.isdigit() for seg in noun.split(".")))
    return not any(seg.isdigit() for seg in name.split("."))

# A parameter position: `(` or `,` then an (optionally const) bare
# EthernetFrame/Packet followed directly by a parameter name. References,
# rvalue references, and pointers break the match by construction, so
# `const Packet&`, `Packet&&`, and `Packet*` all pass. Whitespace may span
# lines (wrapped signatures).
FRAME_BY_VALUE_RE = re.compile(
    r"[(,]\s*(?:const\s+)?(EthernetFrame|Packet)\s+([A-Za-z_]\w*)\s*(?=[,)])",
    re.DOTALL,
)


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line breaks.

    Keeps column positions roughly stable by replacing stripped characters
    with spaces, so regex hits map back to real source locations.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


def allowed_lines(text: str) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the rule ids allowed on that line.

    An allow comment alone on a line also covers the line below it.
    """
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allows.setdefault(lineno, set()).update(rules)
        if line.strip().startswith("//"):  # Standalone comment: covers next line.
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows


def guard_name_for(rel_path: Path) -> str:
    return "MSN_" + re.sub(r"[^A-Za-z0-9]", "_", str(rel_path).upper()) + "_"


class Linter:
    def __init__(self, root: Path, with_retired: bool = False):
        self.root = root
        self.with_retired = with_retired
        self.violations: list[Violation] = []

    def _report(self, path: Path, rel: Path, line: int, rule: str, message: str,
                allows: dict[int, set[str]]) -> None:
        if (rule, str(rel)) in FILE_ALLOWLIST:
            return
        if rule in allows.get(line, set()):
            return
        self.violations.append(Violation(path, line, rule, message))

    def lint_file(self, path: Path) -> None:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        text = path.read_text(encoding="utf-8", errors="replace")
        allows = allowed_lines(text)
        code = strip_comments_and_strings(text)
        in_src = rel.parts[:1] == ("src",)
        layer = rel.parts[1] if in_src and len(rel.parts) > 2 else None

        if in_src:
            if self.with_retired:
                self._check_determinism(path, rel, code, allows)
            self._check_frame_by_value(path, rel, code, allows)
        if layer is not None:
            # Raw text: include paths live inside string literals, which the
            # stripper blanks out.
            self._check_layering(path, rel, layer, text, allows)
        if path.suffix == ".h" and in_src:
            self._check_header_guard(path, rel, text, code, allows)
            self._check_using_namespace(path, rel, code, allows)
        self._check_metric_names(path, rel, text, allows)

    def _check_determinism(self, path, rel, code, allows):
        for lineno, line in enumerate(code.splitlines(), start=1):
            if m := WALL_CLOCK_RE.search(line):
                self._report(path, rel, lineno, "determinism/wall-clock",
                             f"'{m.group(0).strip()}' bypasses the simulator clock; "
                             "use msn::Simulator::Now() / src/sim/time.h",
                             allows)
            if m := AMBIENT_RNG_RE.search(line):
                self._report(path, rel, lineno, "determinism/ambient-rng",
                             f"'{m.group(0).strip()}' is not seed-reproducible; "
                             "draw from the owning component's msn::Rng",
                             allows)

    def _check_frame_by_value(self, path, rel, code, allows):
        for m in FRAME_BY_VALUE_RE.finditer(code):
            type_name, param = m.group(1), m.group(2)
            lineno = code.count("\n", 0, m.start(1)) + 1
            self._report(path, rel, lineno, "perf/frame-by-value",
                         f"parameter '{type_name} {param}' is taken by value — "
                         "pass `const&` to read or `&&` to consume; if this is "
                         "an intentional ownership sink, say so with an inline "
                         "allow", allows)

    def _check_layering(self, path, rel, layer, text, allows):
        my_rank = LAYER_RANK.get(layer)
        if my_rank is None:
            return
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            dep = m.group(1)
            dep_rank = LAYER_RANK.get(dep)
            if dep_rank is None:
                self._report(path, rel, lineno, "layering/upward-include",
                             f"include of unknown layer 'src/{dep}/' — add it to "
                             "LAYER_RANK in tools/msn_lint.py and the DAG in DESIGN.md §11",
                             allows)
            elif dep != layer and dep_rank >= my_rank:
                self._report(path, rel, lineno, "layering/upward-include",
                             f"src/{layer}/ (rank {my_rank}) must not include src/{dep}/ "
                             f"(rank {dep_rank}); the DAG flows {LAYER_DAG_TEXT}",
                             allows)

    def _check_header_guard(self, path, rel, text, code, allows):
        expected = guard_name_for(rel)
        lines = code.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if PRAGMA_ONCE_RE.match(line):
                self._report(path, rel, lineno, "header/guard",
                             f"#pragma once — this repo uses include guards ({expected})",
                             allows)
                return
        ifndef_re = re.compile(r"^\s*#\s*ifndef\s+([A-Za-z0-9_]+)")
        define_re = re.compile(r"^\s*#\s*define\s+([A-Za-z0-9_]+)")
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped or not stripped.startswith("#"):
                continue
            m = ifndef_re.match(line)
            if not m:
                self._report(path, rel, lineno, "header/guard",
                             f"first preprocessor directive is not the include guard "
                             f"#ifndef {expected}", allows)
                return
            if m.group(1) != expected:
                self._report(path, rel, lineno, "header/guard",
                             f"guard {m.group(1)} should be {expected} (derived from path)",
                             allows)
                return
            # The guard's #define must follow immediately.
            rest = lines[lineno:]
            for offset, nxt in enumerate(rest, start=lineno + 1):
                if not nxt.strip():
                    continue
                d = define_re.match(nxt)
                if not d or d.group(1) != expected:
                    self._report(path, rel, offset, "header/guard",
                                 f"#ifndef {expected} not followed by #define {expected}",
                                 allows)
                return
            return
        self._report(path, rel, 1, "header/guard",
                     f"no include guard found (expected {expected})", allows)

    def _check_using_namespace(self, path, rel, code, allows):
        for lineno, line in enumerate(code.splitlines(), start=1):
            if USING_NAMESPACE_RE.search(line):
                self._report(path, rel, lineno, "header/using-namespace",
                             "`using namespace` in a header leaks into every includer",
                             allows)

    def _check_metric_names(self, path, rel, text, allows):
        if path.suffix not in (".h", ".cc"):
            return
        for m in METRIC_CALL_RE.finditer(text):
            literal = m.group(1)[1:-1]
            terminator = m.group(2)
            lineno = text.count("\n", 0, m.start()) + 1
            if terminator == "+":
                # Prefix/suffix of a concatenated name: charset only, plus a
                # namespace check when the piece pins the first segment.
                if not METRIC_PIECE_RE.match(literal):
                    self._report(path, rel, lineno, "telemetry/metric-name",
                                 f'"{literal}" — metric name pieces are lowercase '
                                 "[a-z0-9_.] only", allows)
                elif "." in literal and \
                        literal.split(".", 1)[0] not in METRIC_NAMESPACES:
                    self._report(path, rel, lineno, "telemetry/metric-name",
                                 f'"{literal}" — namespace '
                                 f'"{literal.split(".", 1)[0]}" is not registered '
                                 "in METRIC_NAMESPACES", allows)
            else:
                if not METRIC_FULL_NAME_RE.match(literal):
                    self._report(path, rel, lineno, "telemetry/metric-name",
                                 f'"{literal}" — expected "<subsystem>.<noun>" '
                                 '(lowercase dot-path, e.g. "ha.bindings")', allows)
                elif literal.split(".", 1)[0] not in METRIC_NAMESPACES:
                    self._report(path, rel, lineno, "telemetry/metric-name",
                                 f'"{literal}" — namespace '
                                 f'"{literal.split(".", 1)[0]}" is not registered '
                                 "in METRIC_NAMESPACES", allows)
                elif not metric_numeric_segments_ok(literal):
                    self._report(path, rel, lineno, "telemetry/metric-name",
                                 f'"{literal}" — all-digit segments are only '
                                 "allowed at the index position of a registered "
                                 "indexed sub-namespace "
                                 "(INDEXED_METRIC_SUBNAMESPACES)", allows)


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = (root / p) if not Path(p).is_absolute() else Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cc")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(p)
    return files


def lint_paths(root: Path, paths: list[str],
               with_retired: bool = False) -> list[Violation]:
    linter = Linter(root, with_retired=with_retired)
    for f in collect_files(root, paths):
        linter.lint_file(f)
    return linter.violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                        help="repository root (for layer/guard path derivation)")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    parser.add_argument("--with-retired", action="store_true",
                        help="also run rules retired to tools/msn_analyze.py "
                             "(degraded regex fallback)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            retired = "  [retired -> msn_analyze; --with-retired runs fallback]" \
                if rule in RETIRED_RULES else ""
            print(f"{rule:26} {desc}{retired}")
        return 0

    try:
        violations = lint_paths(Path(args.root), args.paths or ["src"],
                                with_retired=args.with_retired)
    except FileNotFoundError as e:
        print(f"msn_lint: no such path: {e}", file=sys.stderr)
        return 2

    for v in violations:
        print(v)
    if violations:
        print(f"msn_lint: {len(violations)} violation(s) in "
              f"{len({str(v.path) for v in violations})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
