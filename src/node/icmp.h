// ICMP echo client ("ping") with timeout and filtered-destination detection.
//
// The mobile host uses pings to probe whether a correspondent is reachable
// via the triangle route; a timeout or an ICMP administratively-prohibited
// error tells it the visited network filters transit traffic, and it reverts
// that destination to home-agent tunneling (paper §3.2).
#ifndef MSN_SRC_NODE_ICMP_H_
#define MSN_SRC_NODE_ICMP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/address.h"
#include "src/net/headers.h"
#include "src/sim/simulator.h"

namespace msn {

class IpStack;

class Pinger {
 public:
  struct Result {
    bool success = false;
    // The echo was answered with ICMP destination-unreachable code 13: a
    // router refused to carry the probe (transit filtering).
    bool admin_prohibited = false;
    Duration rtt;
    uint16_t seq = 0;
    Ipv4Address responder;
  };
  using Callback = std::function<void(const Result&)>;

  explicit Pinger(IpStack& stack);
  ~Pinger();

  Pinger(const Pinger&) = delete;
  Pinger& operator=(const Pinger&) = delete;

  // Sends one echo request; `cb` fires exactly once: on reply, on a matching
  // ICMP error, or on timeout.
  void Ping(Ipv4Address dst, Duration timeout, Callback cb);

  // Pins the source address of outgoing echo requests (Any = let routing and
  // mobility policy decide). The mobile host probes with its *home* address
  // to test the exact packets the triangle route would emit.
  void set_source(Ipv4Address src) { source_ = src; }

  uint16_t echo_id() const { return echo_id_; }
  int outstanding() const { return static_cast<int>(outstanding_.size()); }

  // Rewinds the process-global echo-id allocator. The testbed calls this as
  // it boots so echo identifiers on the wire depend only on the scenario,
  // not on how many simulations ran earlier in the process (the differential
  // datapath tests compare wire bytes across whole runs).
  static void ResetEchoIdAllocator();

 private:
  struct Outstanding {
    Time sent_at;
    Callback cb;
    EventId timeout_event;
  };

  void OnIcmp(const Ipv4Header& header, const IcmpMessage& msg);
  void Complete(uint16_t seq, Result result);

  IpStack& stack_;
  uint16_t echo_id_;
  uint16_t next_seq_ = 1;
  Ipv4Address source_;
  // std::map, not unordered_map: OnIcmp's oldest-probe fallback traverses
  // this container, and which probe it completes is protocol-visible (the
  // triangle-probe state machine reacts to it). Seq-ordered traversal keeps
  // same-seed runs byte-identical; msn_analyze's
  // determinism/unordered-iteration rule guards against regressing this.
  std::map<uint16_t, Outstanding> outstanding_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_ICMP_H_
