#include "src/util/logging.h"

#include <cstdio>

namespace msn {
namespace {

LogLevel g_level = LogLevel::kOff;

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%-5s] %-8s ", LogLevelName(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace msn
