#include "src/util/assert.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace msn {
namespace internal {

ContractFailure::ContractFailure(const char* macro, const char* expr, const char* file, int line) {
  stream_ << macro << " failed: " << expr << " at " << file << ":" << line;
}

ContractFailure::~ContractFailure() {
  const std::string message = stream_.str();
  // stderr directly rather than MSN_LOG: contract failures must be visible
  // even when logging is at kOff (the default in tests and benches).
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace msn
