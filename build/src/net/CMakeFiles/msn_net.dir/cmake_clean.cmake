file(REMOVE_RECURSE
  "CMakeFiles/msn_net.dir/address.cc.o"
  "CMakeFiles/msn_net.dir/address.cc.o.d"
  "CMakeFiles/msn_net.dir/checksum.cc.o"
  "CMakeFiles/msn_net.dir/checksum.cc.o.d"
  "CMakeFiles/msn_net.dir/frame.cc.o"
  "CMakeFiles/msn_net.dir/frame.cc.o.d"
  "CMakeFiles/msn_net.dir/headers.cc.o"
  "CMakeFiles/msn_net.dir/headers.cc.o.d"
  "libmsn_net.a"
  "libmsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
