#include "src/mip/messages.h"

#include <cstdio>

#include "src/util/byte_buffer.h"

namespace msn {

const char* MipReplyCodeName(MipReplyCode code) {
  switch (code) {
    case MipReplyCode::kAccepted:
      return "accepted";
    case MipReplyCode::kAcceptedNoSimultaneous:
      return "accepted (no simultaneous bindings)";
    case MipReplyCode::kDeniedMalformed:
      return "denied: malformed request";
    case MipReplyCode::kDeniedLifetimeTooLong:
      return "denied: lifetime too long";
    case MipReplyCode::kDeniedUnknownHomeAddress:
      return "denied: unknown home address";
    case MipReplyCode::kDeniedInsufficientResources:
      return "denied: insufficient resources";
    case MipReplyCode::kDeniedBadAuthenticator:
      return "denied: bad authenticator";
    case MipReplyCode::kDeniedIdentificationMismatch:
      return "denied: identification mismatch";
  }
  return "denied: unknown code";
}

bool MipReplyCodeAccepted(MipReplyCode code) {
  return code == MipReplyCode::kAccepted || code == MipReplyCode::kAcceptedNoSimultaneous;
}

namespace {

// Mobile-home authentication extension: [type=32][length=8][64-bit MAC].
constexpr uint8_t kAuthExtensionType = 32;
constexpr size_t kAuthExtensionSize = 10;

void AppendAuthExtension(std::vector<uint8_t>& bytes, uint64_t mac) {
  ByteWriter w(kAuthExtensionSize);
  w.WriteU8(kAuthExtensionType);
  w.WriteU8(8);
  w.WriteU64(mac);
  const auto ext = w.Take();
  bytes.insert(bytes.end(), ext.begin(), ext.end());
}

std::optional<uint64_t> ParseAuthExtension(ByteReader& r) {
  if (r.remaining() < kAuthExtensionSize) {
    return std::nullopt;
  }
  if (r.ReadU8() != kAuthExtensionType || r.ReadU8() != 8) {
    return std::nullopt;
  }
  const uint64_t mac = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return mac;
}

}  // namespace

std::vector<uint8_t> RegistrationRequest::SerializeBase() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(MipMessageType::kRegistrationRequest));
  w.WriteU8(flags);
  w.WriteU16(lifetime_sec);
  w.WriteU32(home_address.value());
  w.WriteU32(home_agent.value());
  w.WriteU32(care_of_address.value());
  w.WriteU64(identification);
  return w.Take();
}

void RegistrationRequest::Authenticate(const MipAuthKey& key) {
  authenticator = SipHash24(key, SerializeBase());
}

bool RegistrationRequest::VerifyAuthenticator(const MipAuthKey& key) const {
  return authenticator.has_value() && *authenticator == SipHash24(key, SerializeBase());
}

std::vector<uint8_t> RegistrationRequest::Serialize() const {
  std::vector<uint8_t> bytes = SerializeBase();
  if (authenticator.has_value()) {
    AppendAuthExtension(bytes, *authenticator);
  }
  return bytes;
}

std::optional<RegistrationRequest> RegistrationRequest::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize) {
    return std::nullopt;
  }
  if (r.ReadU8() != static_cast<uint8_t>(MipMessageType::kRegistrationRequest)) {
    return std::nullopt;
  }
  RegistrationRequest req;
  req.flags = r.ReadU8();
  req.lifetime_sec = r.ReadU16();
  req.home_address = Ipv4Address(r.ReadU32());
  req.home_agent = Ipv4Address(r.ReadU32());
  req.care_of_address = Ipv4Address(r.ReadU32());
  req.identification = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  if (r.remaining() > 0) {
    req.authenticator = ParseAuthExtension(r);
  }
  return req;
}

std::string RegistrationRequest::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "RegReq home=%s ha=%s careof=%s lifetime=%us id=%llu%s",
                home_address.ToString().c_str(), home_agent.ToString().c_str(),
                care_of_address.ToString().c_str(), lifetime_sec,
                static_cast<unsigned long long>(identification),
                IsDeregistration() ? " (deregister)" : "");
  return buf;
}

std::vector<uint8_t> RegistrationReply::SerializeBase() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(MipMessageType::kRegistrationReply));
  w.WriteU8(static_cast<uint8_t>(code));
  w.WriteU16(lifetime_sec);
  w.WriteU32(home_address.value());
  w.WriteU32(home_agent.value());
  w.WriteU64(identification);
  return w.Take();
}

void RegistrationReply::Authenticate(const MipAuthKey& key) {
  authenticator = SipHash24(key, SerializeBase());
}

bool RegistrationReply::VerifyAuthenticator(const MipAuthKey& key) const {
  return authenticator.has_value() && *authenticator == SipHash24(key, SerializeBase());
}

std::vector<uint8_t> RegistrationReply::Serialize() const {
  std::vector<uint8_t> bytes = SerializeBase();
  if (authenticator.has_value()) {
    AppendAuthExtension(bytes, *authenticator);
  }
  return bytes;
}

std::optional<RegistrationReply> RegistrationReply::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize) {
    return std::nullopt;
  }
  if (r.ReadU8() != static_cast<uint8_t>(MipMessageType::kRegistrationReply)) {
    return std::nullopt;
  }
  RegistrationReply reply;
  reply.code = static_cast<MipReplyCode>(r.ReadU8());
  reply.lifetime_sec = r.ReadU16();
  reply.home_address = Ipv4Address(r.ReadU32());
  reply.home_agent = Ipv4Address(r.ReadU32());
  reply.identification = r.ReadU64();
  if (!r.ok()) {
    return std::nullopt;
  }
  if (r.remaining() > 0) {
    reply.authenticator = ParseAuthExtension(r);
  }
  return reply;
}

std::vector<uint8_t> BindingUpdate::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(MipMessageType::kBindingUpdate));
  w.WriteU32(home_address.value());
  w.WriteU32(new_care_of.value());
  w.WriteU16(grace_sec);
  return w.Take();
}

std::optional<BindingUpdate> BindingUpdate::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize ||
      r.ReadU8() != static_cast<uint8_t>(MipMessageType::kBindingUpdate)) {
    return std::nullopt;
  }
  BindingUpdate update;
  update.home_address = Ipv4Address(r.ReadU32());
  update.new_care_of = Ipv4Address(r.ReadU32());
  update.grace_sec = r.ReadU16();
  if (!r.ok()) {
    return std::nullopt;
  }
  return update;
}

std::vector<uint8_t> AgentAdvertisement::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(MipMessageType::kAgentAdvertisement));
  w.WriteU32(agent_address.value());
  w.WriteU16(lifetime_sec);
  return w.Take();
}

std::optional<AgentAdvertisement> AgentAdvertisement::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize ||
      r.ReadU8() != static_cast<uint8_t>(MipMessageType::kAgentAdvertisement)) {
    return std::nullopt;
  }
  AgentAdvertisement adv;
  adv.agent_address = Ipv4Address(r.ReadU32());
  adv.lifetime_sec = r.ReadU16();
  if (!r.ok()) {
    return std::nullopt;
  }
  return adv;
}

std::string RegistrationReply::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "RegReply %s home=%s lifetime=%us id=%llu",
                MipReplyCodeName(code), home_address.ToString().c_str(), lifetime_sec,
                static_cast<unsigned long long>(identification));
  return buf;
}

}  // namespace msn
