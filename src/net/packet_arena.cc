#include "src/net/packet_arena.h"

#include <utility>

namespace msn {

PacketArena::PacketArena(BufferPool& pool, size_t max_free)
    : pool_(pool), max_free_(max_free) {}

PacketArena::~PacketArena() { Trim(); }

void PacketArena::Refill() {
  ++stats_.refills;
  std::vector<std::vector<uint8_t>> bufs;
  pool_.AcquireBatch(pool_.block_bytes(), kSlabNodes, bufs);
  free_.reserve(free_.size() + bufs.size());
  for (auto& buf : bufs) {
    auto* node = new PacketStorage;
    node->bytes = std::move(buf);
    node->pool = &pool_;
    node->arena = this;
    ++stats_.node_allocs;
    free_.push_back(node);
  }
  stats_.free_nodes = free_.size();
}

PacketStorage* PacketArena::Acquire(size_t size) {
  if (size > pool_.block_bytes()) {
    auto* node = new PacketStorage;
    node->bytes = pool_.Acquire(size);  // Oversize path: plain allocation.
    node->pool = &pool_;
    node->refs = 1;
    ++stats_.node_allocs;
    return node;
  }
  if (free_.empty()) {
    Refill();
  }
  PacketStorage* node = free_.back();
  free_.pop_back();
  stats_.free_nodes = free_.size();
  node->bytes.resize(size);
  node->refs = 1;
  ++stats_.recycled;
  return node;
}

void PacketArena::Recycle(PacketStorage* node) {
  if (node->bytes.capacity() != pool_.block_bytes() || free_.size() >= max_free_) {
    pool_.Release(std::move(node->bytes));
    delete node;
    return;
  }
  free_.push_back(node);
  stats_.free_nodes = free_.size();
}

void PacketArena::Trim() {
  if (free_.empty()) {
    return;
  }
  ++stats_.drains;
  std::vector<std::vector<uint8_t>> bufs;
  bufs.reserve(free_.size());
  for (PacketStorage* node : free_) {
    bufs.push_back(std::move(node->bytes));
    delete node;
  }
  free_.clear();
  free_.shrink_to_fit();
  stats_.free_nodes = 0;
  pool_.ReleaseBatch(bufs);
}

PacketArena& DefaultPacketArena() {
  static PacketArena* arena = new PacketArena(DefaultBufferPool());
  return *arena;
}

}  // namespace msn
