# Empty dependencies file for home_agent_test.
# This may be replaced when dependencies are built.
