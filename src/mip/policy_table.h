// The Mobile Policy Table (paper §3.3): per-destination routing policy for a
// mobile host away from home, consulted by the enhanced route lookup together
// with the ordinary routing table. It answers the paper's three questions —
// tunnel or direct? encapsulate? home or local source address? — as one of
// four policies.
#ifndef MSN_SRC_MIP_POLICY_TABLE_H_
#define MSN_SRC_MIP_POLICY_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/net/address.h"

namespace msn {

enum class MobilePolicy {
  // Basic protocol: encapsulate and reverse-tunnel through the home agent.
  // Always works, at the cost of the extra path and 20 encapsulation bytes.
  kTunnelHome,
  // Triangle-route optimization: send directly to the correspondent with the
  // home address as source. Fails through routers that filter transit
  // traffic (detected via probe; the table then caches a fallback).
  kTriangle,
  // Encapsulate directly to a decapsulation-capable correspondent with the
  // local care-of source in the outer header: optimal path, filter-proof,
  // still pays the encapsulation bytes.
  kEncapDirect,
  // Local role: plain packets with the care-of source. No mobility support;
  // appropriate for short-lived or local-network exchanges.
  kDirect,
};

const char* MobilePolicyName(MobilePolicy policy);

class MobilePolicyTable {
 public:
  struct Entry {
    Subnet dest;
    MobilePolicy policy = MobilePolicy::kTunnelHome;
    // Set when the policy was confirmed by a probe (triangle verified) or
    // installed as a cached fallback after a failed probe.
    bool verified = false;
    uint64_t hits = 0;
  };

  // Policy used when no entry matches. The basic protocol tunnels everything.
  MobilePolicy default_policy() const { return default_policy_; }
  void set_default_policy(MobilePolicy policy) { default_policy_ = policy; }

  // Installs or replaces the entry for `dest`.
  void Set(const Subnet& dest, MobilePolicy policy, bool verified = false);
  bool Remove(const Subnet& dest);
  void Clear();

  // Longest-prefix match; falls back to the default policy. Counts a hit on
  // the matched entry.
  [[nodiscard]] MobilePolicy Lookup(Ipv4Address dst);
  MobilePolicy LookupConst(Ipv4Address dst) const;

  // Longest-prefix matched entry without counting a hit; null when no entry
  // matches. The mutable pointer lets the route override hand &entry->hits
  // to the flow cache for centralized per-packet counting. Pointer valid
  // only until the next mutation — every mutation fires the change
  // listener, which invalidates cached decisions before the vector can
  // move.
  [[nodiscard]] Entry* MatchEntry(Ipv4Address dst);

  // Fired after every mutation (Set, Remove when an entry went away, Clear,
  // RecordFallback). Wired by MobileHost to the owning stack's flow-cache
  // invalidation.
  void SetChangeListener(std::function<void()> fn) { on_change_ = std::move(fn); }

  // Caches "this destination needs tunneling" after a failed optimization
  // probe (paper: "we can cache this information for further use in the
  // Mobile Policy Table").
  void RecordFallback(Ipv4Address dst);

  const std::vector<Entry>& entries() const { return entries_; }
  std::string ToString() const;

 private:
  const Entry* Match(Ipv4Address dst) const;
  void NotifyChanged() {
    if (on_change_) {
      on_change_();
    }
  }

  std::vector<Entry> entries_;
  MobilePolicy default_policy_ = MobilePolicy::kTunnelHome;
  std::function<void()> on_change_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_POLICY_TABLE_H_
