#include "src/fault/fault_schedule.h"

#include <utility>

#include "src/mip/home_agent.h"
#include "src/util/logging.h"

namespace msn {

FaultSchedule& FaultSchedule::At(Duration at, std::string description,
                                 std::function<void()> fn) {
  events_.push_back(Event{at, std::move(description), std::move(fn)});
  return *this;
}

FaultSchedule& FaultSchedule::Blackout(Duration at, FaultInjector& injector, Duration length) {
  return At(at, "blackout " + injector.medium_name() + " for " + length.ToString(),
            [&injector, length] { injector.BlackoutFor(length); });
}

FaultSchedule& FaultSchedule::Profile(Duration at, FaultInjector& injector,
                                      const FaultProfile& profile) {
  return At(at, "profile " + injector.medium_name(),
            [&injector, profile] { injector.SetProfile(profile); });
}

FaultSchedule& FaultSchedule::ClearProfile(Duration at, FaultInjector& injector) {
  return At(at, "clear-profile " + injector.medium_name(),
            [&injector] { injector.ClearProfile(); });
}

FaultSchedule& FaultSchedule::HaOutage(Duration at, HomeAgent& ha, Duration length,
                                       bool restart_daemon) {
  At(at, std::string("ha-outage begin") + (restart_daemon ? " (daemon restart)" : ""),
     [&ha, restart_daemon] { ha.BeginOutage(restart_daemon); });
  At(at + length, "ha-outage end", [&ha] { ha.EndOutage(); });
  return *this;
}

FaultSchedule& FaultSchedule::HaOutage(Duration at, HomeAgent& ha, Duration length,
                                       HaOutageKind kind) {
  const char* label = kind == HaOutageKind::kFailStop       ? " (fail-stop)"
                      : kind == HaOutageKind::kDaemonRestart ? " (daemon restart)"
                                                             : "";
  At(at, std::string("ha-outage begin") + label, [&ha, kind] { ha.BeginOutage(kind); });
  At(at + length, "ha-outage end", [&ha] { ha.EndOutage(); });
  return *this;
}

FaultSchedule& FaultSchedule::HaCrash(Duration at, HomeAgent& ha, Duration rejoin_after) {
  At(at, "ha-crash (fail-stop)", [&ha] { ha.BeginOutage(HaOutageKind::kFailStop); });
  if (rejoin_after.nanos() > 0) {
    At(at + rejoin_after, "ha-crash rejoin", [&ha] { ha.EndOutage(); });
  }
  return *this;
}

void FaultSchedule::Arm(Simulator& sim) {
  for (Event& event : events_) {
    // The event list outlives the armed callbacks (the schedule must outlive
    // the run), so capturing `this` and the moved-in pieces is safe.
    std::string description = event.description;
    std::function<void()> fn = std::move(event.fn);
    sim.Schedule(event.at, [this, &sim, description = std::move(description),
                            fn = std::move(fn)] {
      MSN_DEBUG("fault", "%s: %s", sim.Now().ToString().c_str(), description.c_str());
      log_.push_back(AppliedEvent{sim.Now(), description});
      fn();
    });
  }
  events_.clear();
}

std::string FaultSchedule::Trace() const {
  std::string out;
  for (const AppliedEvent& event : log_) {
    out += event.at.ToString();
    out += ' ';
    out += event.description;
    out += '\n';
  }
  return out;
}

}  // namespace msn
