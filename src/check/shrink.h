// Scenario shrinking: given a failing spec, find a minimal event list that
// still trips the same oracle.
//
// Classic delta debugging (ddmin) over the merged movement + fault event
// list: repeatedly try dropping chunks of events, keeping any candidate that
// still reproduces the original (primary) oracle violation, halving chunk
// size when no chunk can be dropped. Every candidate passes through
// NormalizeSpec first, so removals cannot manufacture invalid-by-construction
// scenarios whose spurious failures would hijack the shrink ("slippage" is
// further prevented by keying the predicate on the original oracle, not on
// failing at all). A final pass turns off traffic components the failure
// does not need.
#ifndef MSN_SRC_CHECK_SHRINK_H_
#define MSN_SRC_CHECK_SHRINK_H_

#include <cstdint>
#include <string>

#include "src/check/fuzzer.h"
#include "src/check/scenario_gen.h"

namespace msn {

struct ShrinkResult {
  ScenarioSpec minimized;
  // The oracle whose violation the shrink preserved (first violation, in
  // report order, of the original run).
  std::string oracle;
  int runs = 0;  // Scenario executions spent shrinking (including the first).
  size_t original_events = 0;
  size_t minimized_events = 0;
  // Report of the minimized scenario's run.
  OracleReport final_report;

  [[nodiscard]] std::string Summary() const;
};

// `max_runs` bounds total scenario executions. If `failing` does not actually
// fail, returns it unshrunk with runs == 1 and an empty oracle.
[[nodiscard]] ShrinkResult ShrinkScenario(const ScenarioSpec& failing,
                                          const RunOptions& options = {},
                            int max_runs = 120);

}  // namespace msn

#endif  // MSN_SRC_CHECK_SHRINK_H_
