#include "src/util/buffer_pool.h"

#include <utility>

namespace msn {

BufferPool::BufferPool(size_t block_bytes, size_t max_free)
    : block_bytes_(block_bytes), max_free_(max_free) {}

std::vector<uint8_t> BufferPool::Acquire(size_t size) {
  if (size > block_bytes_) {
    ++stats_.oversize;
    ++stats_.outstanding;
    return std::vector<uint8_t>(size);
  }
  if (!free_list_.empty()) {
    std::vector<uint8_t> buf = std::move(free_list_.back());
    free_list_.pop_back();
    buf.resize(size);
    ++stats_.hits;
    ++stats_.outstanding;
    stats_.free_blocks = free_list_.size();
    return buf;
  }
  ++stats_.misses;
  ++stats_.outstanding;
  std::vector<uint8_t> buf;
  buf.reserve(block_bytes_);
  buf.resize(size);
  return buf;
}

void BufferPool::Release(std::vector<uint8_t>&& buf) {
  ++stats_.released;
  if (stats_.outstanding > 0) {
    --stats_.outstanding;
  }
  // Exact-capacity match only: keeping oversize buffers would let the free
  // list silently pin large allocations, and undersized ones would fail the
  // next in-place resize to block size.
  if (buf.capacity() != block_bytes_ || free_list_.size() >= max_free_) {
    ++stats_.discarded;
    return;
  }
  free_list_.push_back(std::move(buf));
  stats_.free_blocks = free_list_.size();
}

void BufferPool::AcquireBatch(size_t size, size_t count,
                              std::vector<std::vector<uint8_t>>& out) {
  ++stats_.batch_acquires;
  out.reserve(out.size() + count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Acquire(size));
  }
}

void BufferPool::ReleaseBatch(std::vector<std::vector<uint8_t>>& bufs) {
  ++stats_.batch_releases;
  for (auto& buf : bufs) {
    Release(std::move(buf));
  }
  bufs.clear();
}

void BufferPool::Trim() {
  free_list_.clear();
  free_list_.shrink_to_fit();
  stats_.free_blocks = 0;
}

BufferPool& DefaultBufferPool() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace msn
