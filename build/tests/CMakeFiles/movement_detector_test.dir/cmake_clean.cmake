file(REMOVE_RECURSE
  "CMakeFiles/movement_detector_test.dir/movement_detector_test.cc.o"
  "CMakeFiles/movement_detector_test.dir/movement_detector_test.cc.o.d"
  "movement_detector_test"
  "movement_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movement_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
