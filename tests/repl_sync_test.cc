// Wire-format tests for the HA binding-sync channel (DESIGN.md §14):
// serialize/parse round-trips for all five message types, strict rejection
// of truncated or mistyped datagrams, and the standby's out-of-order
// sequence handling (never applied; healed through snapshot anti-entropy).
#include <gtest/gtest.h>

#include <vector>

#include "src/node/udp.h"
#include "src/repl/sync_messages.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

TEST(SyncMessagesTest, HeartbeatRoundTrip) {
  SyncHeartbeat hb;
  hb.epoch = 7;
  hb.role = HaRole::kStandby;
  hb.seq = 41;

  const auto bytes = hb.Serialize();
  ASSERT_EQ(bytes.size(), SyncHeartbeat::kSize);
  EXPECT_EQ(PeekSyncMessageType(bytes), SyncMessageType::kHeartbeat);

  const auto parsed = SyncHeartbeat::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 7u);
  EXPECT_EQ(parsed->role, HaRole::kStandby);
  EXPECT_EQ(parsed->seq, 41u);
}

TEST(SyncMessagesTest, MutationRoundTrip) {
  SyncMutation m;
  m.epoch = 3;
  m.seq = 12;
  m.mutation.kind = BindingMutation::Kind::kInstall;
  m.mutation.home_address = Ipv4Address(36, 135, 0, 10);
  m.mutation.care_of = Ipv4Address(36, 8, 0, 50);
  m.mutation.lifetime_sec = 300;
  m.mutation.identification = 0x0102030405060708ull;
  m.mutation.decapsulates_self = true;

  const auto bytes = m.Serialize();
  ASSERT_EQ(bytes.size(), SyncMutation::kSize);

  const auto parsed = SyncMutation::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 3u);
  EXPECT_EQ(parsed->seq, 12u);
  EXPECT_EQ(parsed->mutation.kind, BindingMutation::Kind::kInstall);
  EXPECT_EQ(parsed->mutation.home_address, Ipv4Address(36, 135, 0, 10));
  EXPECT_EQ(parsed->mutation.care_of, Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(parsed->mutation.lifetime_sec, 300u);
  EXPECT_EQ(parsed->mutation.identification, 0x0102030405060708ull);
  EXPECT_TRUE(parsed->mutation.decapsulates_self);
}

TEST(SyncMessagesTest, MutationRejectsUnknownKind) {
  SyncMutation m;
  m.mutation.kind = BindingMutation::Kind::kRemove;
  auto bytes = m.Serialize();
  bytes[17] = 0;  // Kind byte below the valid [1, 3] range.
  EXPECT_FALSE(SyncMutation::Parse(bytes).has_value());
  bytes[17] = 9;  // And above it.
  EXPECT_FALSE(SyncMutation::Parse(bytes).has_value());
}

TEST(SyncMessagesTest, AckAndSnapshotRequestRoundTrip) {
  SyncAck ack;
  ack.epoch = 2;
  ack.seq = 17;
  const auto ack_bytes = ack.Serialize();
  ASSERT_EQ(ack_bytes.size(), SyncAck::kSize);
  const auto ack_parsed = SyncAck::Parse(ack_bytes);
  ASSERT_TRUE(ack_parsed.has_value());
  EXPECT_EQ(ack_parsed->epoch, 2u);
  EXPECT_EQ(ack_parsed->seq, 17u);

  SyncSnapshotRequest req;
  req.epoch = 5;
  const auto req_bytes = req.Serialize();
  ASSERT_EQ(req_bytes.size(), SyncSnapshotRequest::kSize);
  const auto req_parsed = SyncSnapshotRequest::Parse(req_bytes);
  ASSERT_TRUE(req_parsed.has_value());
  EXPECT_EQ(req_parsed->epoch, 5u);
}

TEST(SyncMessagesTest, SnapshotRoundTrip) {
  SyncSnapshot snap;
  snap.epoch = 4;
  snap.seq = 9;
  HaBindingState::Entry entry;
  entry.home_address = Ipv4Address(36, 135, 0, 10);
  entry.care_of = Ipv4Address(36, 134, 0, 61);
  entry.lifetime_sec = 42;
  entry.identification = 77;
  entry.decapsulates_self = false;
  snap.state.bindings.push_back(entry);
  snap.state.identifications.emplace_back(Ipv4Address(36, 135, 0, 10), 77u);
  snap.state.identifications.emplace_back(Ipv4Address(36, 135, 0, 11), 99u);

  const auto bytes = snap.Serialize();
  ASSERT_EQ(bytes.size(), SyncSnapshot::kMinSize + SyncSnapshot::kBindingEntrySize +
                              2 * SyncSnapshot::kIdentEntrySize);

  const auto parsed = SyncSnapshot::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 4u);
  EXPECT_EQ(parsed->seq, 9u);
  ASSERT_EQ(parsed->state.bindings.size(), 1u);
  EXPECT_EQ(parsed->state.bindings[0].care_of, Ipv4Address(36, 134, 0, 61));
  EXPECT_EQ(parsed->state.bindings[0].lifetime_sec, 42u);
  EXPECT_FALSE(parsed->state.bindings[0].decapsulates_self);
  ASSERT_EQ(parsed->state.identifications.size(), 2u);
  EXPECT_EQ(parsed->state.identifications[1].first, Ipv4Address(36, 135, 0, 11));
  EXPECT_EQ(parsed->state.identifications[1].second, 99u);
}

TEST(SyncMessagesTest, EmptySnapshotRoundTrip) {
  SyncSnapshot snap;
  snap.epoch = 1;
  const auto bytes = snap.Serialize();
  ASSERT_EQ(bytes.size(), SyncSnapshot::kMinSize);
  const auto parsed = SyncSnapshot::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->state.bindings.empty());
  EXPECT_TRUE(parsed->state.identifications.empty());
}

TEST(SyncMessagesTest, EveryTruncationIsRejected) {
  SyncSnapshot snap;
  snap.epoch = 4;
  snap.seq = 9;
  HaBindingState::Entry entry;
  entry.home_address = Ipv4Address(36, 135, 0, 10);
  entry.care_of = Ipv4Address(36, 8, 0, 50);
  entry.lifetime_sec = 10;
  entry.identification = 1;
  snap.state.bindings.push_back(entry);
  snap.state.identifications.emplace_back(Ipv4Address(36, 135, 0, 10), 1u);
  SyncMutation m;
  m.epoch = 1;
  m.seq = 1;
  m.mutation.kind = BindingMutation::Kind::kIdentification;

  const std::vector<std::vector<uint8_t>> wires = {
      SyncHeartbeat{}.Serialize(), m.Serialize(),       SyncAck{}.Serialize(),
      SyncSnapshotRequest{}.Serialize(), snap.Serialize(),
  };
  for (const auto& full : wires) {
    for (size_t len = 0; len < full.size(); ++len) {
      const std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
      switch (static_cast<SyncMessageType>(full[0])) {
        case SyncMessageType::kHeartbeat:
          EXPECT_FALSE(SyncHeartbeat::Parse(prefix).has_value()) << len;
          break;
        case SyncMessageType::kMutation:
          EXPECT_FALSE(SyncMutation::Parse(prefix).has_value()) << len;
          break;
        case SyncMessageType::kAck:
          EXPECT_FALSE(SyncAck::Parse(prefix).has_value()) << len;
          break;
        case SyncMessageType::kSnapshotRequest:
          EXPECT_FALSE(SyncSnapshotRequest::Parse(prefix).has_value()) << len;
          break;
        case SyncMessageType::kSnapshot:
          EXPECT_FALSE(SyncSnapshot::Parse(prefix).has_value()) << len;
          break;
      }
    }
  }
}

TEST(SyncMessagesTest, MistypedDatagramsAreRejected) {
  auto hb = SyncHeartbeat{}.Serialize();
  hb[0] = static_cast<uint8_t>(SyncMessageType::kAck);
  EXPECT_FALSE(SyncHeartbeat::Parse(hb).has_value());

  auto ack = SyncAck{}.Serialize();
  ack[0] = 0x7f;  // Not a sync message at all.
  EXPECT_FALSE(SyncAck::Parse(ack).has_value());
  EXPECT_FALSE(PeekSyncMessageType(ack).has_value());
  EXPECT_FALSE(PeekSyncMessageType({}).has_value());
}

TEST(SyncMessagesTest, SnapshotRejectsCorruptCounts) {
  SyncSnapshot snap;
  snap.state.identifications.emplace_back(Ipv4Address(36, 135, 0, 10), 1u);
  auto bytes = snap.Serialize();
  // Inflate the binding count past the payload: [type][epoch 8][seq 8] puts
  // the binding-count u16 at offset 17.
  bytes[17] = 0xff;
  bytes[18] = 0xff;
  EXPECT_FALSE(SyncSnapshot::Parse(bytes).has_value());
}

// A forged in-epoch mutation with a future sequence number must never be
// applied out of order: the standby counts the gap, requests a snapshot, and
// resynchronizes from the primary's authoritative state instead.
TEST(SyncChannelTest, OutOfOrderMutationHealsThroughSnapshot) {
  TestbedConfig cfg;
  cfg.realistic_delays = false;
  cfg.with_backup_ha = true;
  cfg.mh_lifetime_sec = 30;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  ASSERT_TRUE(tb.mobile->registered());
  tb.RunFor(Seconds(1));
  ASSERT_TRUE(tb.backup_agent->HasBinding(Testbed::HomeAddress()));

  // Gapped mutation from a third host on the home net (the backup trusts the
  // channel; transport-level spoofing is out of scope for the protocol).
  SyncMutation forged;
  forged.epoch = tb.backup_agent->epoch();
  forged.seq = 99;
  forged.mutation.kind = BindingMutation::Kind::kInstall;
  forged.mutation.home_address = Testbed::HomeAddress();
  forged.mutation.care_of = Ipv4Address(36, 8, 0, 77);
  forged.mutation.lifetime_sec = 30;
  forged.mutation.identification = 424242;
  UdpSocket spoof(tb.router->stack());
  ASSERT_TRUE(spoof.Bind(4500));
  spoof.SendTo(Testbed::BackupHaAddress(), kHaSyncPort, forged.Serialize());
  tb.RunFor(Seconds(2));

  EXPECT_GE(tb.metrics.ReadValue("repl.backup.out_of_order").value_or(0), 1.0);
  EXPECT_GE(tb.metrics.ReadValue("repl.backup.snapshot_requests").value_or(0), 1.0);
  EXPECT_GE(tb.metrics.ReadValue("repl.snapshots_sent").value_or(0), 1.0);
  EXPECT_GE(tb.metrics.ReadValue("repl.backup.snapshots_applied").value_or(0), 1.0);
  // The forged care-of never landed; anti-entropy kept the replica truthful.
  const auto binding = tb.backup_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, tb.mobile->care_of());

  // A duplicate of an already-applied sequence is counted and re-acked, not
  // re-applied.
  SyncMutation dup;
  dup.epoch = tb.backup_agent->epoch();
  dup.seq = 1;
  dup.mutation.kind = BindingMutation::Kind::kIdentification;
  dup.mutation.home_address = Testbed::HomeAddress();
  dup.mutation.identification = 1;
  spoof.SendTo(Testbed::BackupHaAddress(), kHaSyncPort, dup.Serialize());
  tb.RunFor(Seconds(1));
  EXPECT_GE(tb.metrics.ReadValue("repl.backup.duplicate_mutations").value_or(0), 1.0);
}

}  // namespace
}  // namespace msn
