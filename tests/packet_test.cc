// Unit tests for the zero-copy packet datapath primitives: Packet COW
// semantics, slice aliasing, BufferPool reuse, and the RFC 1624 incremental
// checksum against a full recompute after the per-hop TTL patch.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "src/net/checksum.h"
#include "src/net/headers.h"
#include "src/net/packet.h"
#include "src/net/packet_arena.h"
#include "src/sim/event_queue.h"
#include "src/telemetry/packet_probes.h"
#include "src/util/buffer_pool.h"
#include "src/util/byte_buffer.h"

namespace msn {
namespace {

std::vector<uint8_t> Bytes(size_t n, uint8_t start = 0) {
  std::vector<uint8_t> out(n);
  std::iota(out.begin(), out.end(), start);
  return out;
}

// --- Packet: COW semantics -------------------------------------------------------

TEST(PacketTest, CopyIsRefcountedNotDeep) {
  Packet::ResetStatsForTest();
  Packet a = Packet::Copy(Bytes(64));
  const uint64_t copies_after_build = Packet::stats().copies;

  Packet b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(Packet::stats().copies, copies_after_build) << "plain copy must not copy bytes";
}

TEST(PacketTest, MutableDataOnUniqueStorageDoesNotCopy) {
  Packet::ResetStatsForTest();
  Packet p = Packet::Copy(Bytes(32));
  const uint64_t copies = Packet::stats().copies;
  const uint8_t* before = p.data();
  p.MutableData()[0] = 0xff;
  EXPECT_EQ(p.data(), before);
  EXPECT_EQ(Packet::stats().copies, copies);
  EXPECT_EQ(p[0], 0xff);
}

TEST(PacketTest, MutableDataBreaksCowWhenShared) {
  Packet::ResetStatsForTest();
  Packet a = Packet::Copy(Bytes(32));
  Packet b = a;
  const uint64_t cow_before = Packet::stats().cow_breaks;

  b.MutableData()[0] = 0xff;

  EXPECT_FALSE(a.SharesStorageWith(b));
  EXPECT_EQ(a[0], 0) << "writer isolation must not touch the original";
  EXPECT_EQ(b[0], 0xff);
  EXPECT_EQ(Packet::stats().cow_breaks, cow_before + 1);
}

TEST(PacketTest, PrependUsesHeadroomWithoutCopy) {
  Packet::ResetStatsForTest();
  Packet p = Packet::Copy(Bytes(40), /*headroom=*/20);
  ASSERT_GE(p.headroom(), 20u);
  const uint64_t copies = Packet::stats().copies;

  const std::vector<uint8_t> hdr(20, 0xab);
  p.Prepend(hdr);

  EXPECT_EQ(p.size(), 60u);
  EXPECT_EQ(p[0], 0xab);
  EXPECT_EQ(p[20], 0);  // Original first byte now behind the new header.
  EXPECT_EQ(Packet::stats().copies, copies) << "headroom prepend must be zero-copy";
}

TEST(PacketTest, PrependPastHeadroomRelocatesOnce) {
  Packet::ResetStatsForTest();
  Packet p = Packet::Copy(Bytes(16), /*headroom=*/4);
  const uint64_t copies = Packet::stats().copies;

  const std::vector<uint8_t> hdr(8, 0xcd);
  p.Prepend(hdr);

  EXPECT_EQ(p.size(), 24u);
  EXPECT_EQ(p[0], 0xcd);
  EXPECT_EQ(p[8], 0);
  EXPECT_EQ(Packet::stats().copies, copies + 1);
}

TEST(PacketTest, PrependOnSharedStorageLeavesPeerIntact) {
  Packet a = Packet::Copy(Bytes(16));
  Packet b = a;
  const std::vector<uint8_t> hdr(4, 0xee);
  b.Prepend(hdr);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(b[0], 0xee);
}

// --- Packet: slices and views ---------------------------------------------------

TEST(PacketTest, SliceSharesStorageAndAliasesBytes) {
  Packet p = Packet::Copy(Bytes(100));
  Packet mid = p.Slice(20, 50);
  EXPECT_TRUE(mid.SharesStorageWith(p));
  EXPECT_EQ(mid.size(), 50u);
  EXPECT_EQ(mid.data(), p.data() + 20);
  EXPECT_EQ(mid[0], 20);
  EXPECT_EQ(mid[49], 69);
}

TEST(PacketTest, SliceWriterIsolatesFromParent) {
  Packet p = Packet::Copy(Bytes(100));
  Packet mid = p.Slice(20, 50);
  mid.MutableData()[0] = 0xff;
  EXPECT_EQ(p[20], 20) << "mutating a shared slice must COW, not scribble on the parent";
  EXPECT_EQ(mid[0], 0xff);
}

TEST(PacketTest, StripFrontAndTrimToAreViewsOnly) {
  Packet::ResetStatsForTest();
  Packet p = Packet::Copy(Bytes(100));
  Packet peer = p;  // Keep storage shared to prove no isolation happens.
  const uint64_t copies = Packet::stats().copies;

  p.StripFront(20);  // Decap: drop the outer header.
  p.TrimTo(50);      // De-pad: keep the datagram only.

  EXPECT_EQ(p.size(), 50u);
  EXPECT_EQ(p[0], 20);
  EXPECT_TRUE(p.SharesStorageWith(peer));
  EXPECT_EQ(Packet::stats().copies, copies);
  EXPECT_GE(p.headroom(), 20u) << "stripped bytes become headroom for re-encap";
}

TEST(PacketTest, ToVectorCopiesVisibleWindowOnly) {
  Packet p = Packet::Copy(Bytes(30));
  p.StripFront(10);
  p.TrimTo(5);
  EXPECT_EQ(p.ToVector(), (std::vector<uint8_t>{10, 11, 12, 13, 14}));
}

TEST(PacketTest, VectorAdoptionIsZeroCopy) {
  Packet::ResetStatsForTest();
  Packet p(Bytes(64, 7));
  EXPECT_EQ(Packet::stats().copies, 0u);
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p[0], 7);
}

// --- BufferPool ------------------------------------------------------------------

TEST(BufferPoolTest, ReleaseThenAcquireReusesBlock) {
  BufferPool pool(/*block_bytes=*/256, /*max_free=*/8);
  auto buf = pool.Acquire(100);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.Release(std::move(buf));
  EXPECT_EQ(pool.stats().released, 1u);
  EXPECT_EQ(pool.stats().free_blocks, 1u);

  auto again = pool.Acquire(200);  // Different size, same block class.
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(again.size(), 200u);
  EXPECT_EQ(pool.stats().free_blocks, 0u);
}

TEST(BufferPoolTest, FreeListCapDiscardsExcess) {
  BufferPool pool(/*block_bytes=*/128, /*max_free=*/2);
  std::vector<std::vector<uint8_t>> bufs;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(pool.Acquire(64));
  }
  for (auto& b : bufs) {
    pool.Release(std::move(b));
  }
  EXPECT_EQ(pool.stats().free_blocks, 2u);
  EXPECT_EQ(pool.stats().discarded, 2u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPoolTest, OversizeBypassesPool) {
  BufferPool pool(/*block_bytes=*/128, /*max_free=*/4);
  auto big = pool.Acquire(4096);
  EXPECT_EQ(big.size(), 4096u);
  EXPECT_EQ(pool.stats().oversize, 1u);
  pool.Release(std::move(big));
  EXPECT_EQ(pool.stats().free_blocks, 0u) << "oversize buffers are never pooled";
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPoolTest, PacketLifecycleRecyclesThroughArena) {
  // Steady state: a dead packet's storage node parks on the arena free list
  // and the next allocation takes it back without any per-packet pool
  // traffic (the pool is only touched in slab-sized batches).
  PacketArena& arena = DefaultPacketArena();
  {
    Packet warmup = Packet::Allocate(500);
    (void)warmup;
  }
  ASSERT_GT(arena.stats().free_nodes, 0u);
  BufferPool& pool = DefaultBufferPool();
  const uint64_t pool_acquires_before = pool.stats().hits + pool.stats().misses;
  const uint64_t recycled_before = arena.stats().recycled;
  const size_t free_before = arena.stats().free_nodes;
  {
    Packet p = Packet::Allocate(500);
    EXPECT_EQ(arena.stats().free_nodes, free_before - 1);
  }
  EXPECT_EQ(arena.stats().recycled, recycled_before + 1);
  EXPECT_EQ(arena.stats().free_nodes, free_before)
      << "destroying the last Packet must park the node back on the arena";
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, pool_acquires_before)
      << "steady-state packet churn must not touch the BufferPool";
}

// --- Incremental checksum vs full recompute -------------------------------------

TEST(ChecksumTest, IncrementalTtlPatchMatchesFullRecompute) {
  // Sweep TTLs including the carry/wrap edge cases; for each, decrement in
  // the serialized image the way IpStack::Forward does and compare against a
  // from-scratch serialization at the lower TTL.
  for (int ttl = 255; ttl >= 2; --ttl) {
    Ipv4Header h;
    h.total_length = 84;
    h.identification = 0x1c49;
    h.ttl = static_cast<uint8_t>(ttl);
    h.protocol = IpProto::kUdp;
    h.src = Ipv4Address(10, 1, 2, 3);
    h.dst = Ipv4Address(10, 9, 8, 7);

    uint8_t wire[Ipv4Header::kSize];
    h.SerializeTo(wire);

    // Patch bytes 8 (TTL) and 10..11 (checksum) in place, RFC 1624 style.
    const uint16_t old_word =
        static_cast<uint16_t>((static_cast<uint16_t>(wire[8]) << 8) | wire[9]);
    wire[8] = static_cast<uint8_t>(ttl - 1);
    const uint16_t new_word =
        static_cast<uint16_t>((static_cast<uint16_t>(wire[8]) << 8) | wire[9]);
    const uint16_t old_sum =
        static_cast<uint16_t>((static_cast<uint16_t>(wire[10]) << 8) | wire[11]);
    const uint16_t new_sum = IncrementalChecksumUpdate(old_sum, old_word, new_word);
    wire[10] = static_cast<uint8_t>(new_sum >> 8);
    wire[11] = static_cast<uint8_t>(new_sum & 0xff);

    EXPECT_TRUE(VerifyInternetChecksum(wire, Ipv4Header::kSize)) << "ttl=" << ttl;

    Ipv4Header expect = h;
    expect.ttl = static_cast<uint8_t>(ttl - 1);
    uint8_t full[Ipv4Header::kSize];
    expect.SerializeTo(full);
    // The folded checksum of both images must agree (the incremental form
    // can produce the other representation of the same value only when the
    // full recompute does too, so byte equality is the right check).
    ByteReader r(wire, sizeof(wire));
    auto parsed = Ipv4Header::Parse(r);
    ASSERT_TRUE(parsed.has_value()) << "ttl=" << ttl;
    EXPECT_EQ(parsed->ttl, expect.ttl);
  }
}

TEST(ChecksumTest, IncrementalUpdateWithUnchangedWordIsIdentity) {
  // RFC 1624 eqn. 3 with m == m' must return the checksum unchanged for any
  // value reachable from a real header (0xffff is unreachable: it would
  // require every other header word to be zero).
  for (uint32_t hc = 0; hc < 0xffff; hc += 257) {
    EXPECT_EQ(IncrementalChecksumUpdate(static_cast<uint16_t>(hc), 0x1c49, 0x1c49),
              static_cast<uint16_t>(hc))
        << "hc=" << hc;
  }
}

// --- Probe gauges ----------------------------------------------------------------

TEST(PacketProbesTest, RegistersPoolAndPacketGauges) {
  MetricsRegistry registry;
  RegisterPacketPathProbes(registry);
  for (const char* name :
       {"packet.copies", "packet.cow_breaks", "packet.allocations", "pool.hits",
        "pool.misses", "pool.oversize", "pool.released", "pool.discarded",
        "pool.outstanding", "pool.free_blocks"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  Packet::ResetStatsForTest();
  Packet a = Packet::Copy(Bytes(8));
  Packet b = a;
  b.MutableData()[0] = 1;
  EXPECT_EQ(registry.ReadValue("packet.cow_breaks"), 1.0);
  // Calling again rebinds rather than aborting on duplicate names.
  RegisterPacketPathProbes(registry);
}

// --- EventQueue ordering / cancellation stress ----------------------------------

TEST(EventQueueStressTest, RandomizedOrderingAndCancellation) {
  // Fixed-seed fuzz of the slot-arena queue: thousands of events with heavy
  // timestamp collisions, a third cancelled (some twice), some rescheduled
  // from inside callbacks. Pop order must be (when, seq)-sorted and exactly
  // the non-cancelled set must fire.
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int64_t> when_dist(0, 99);  // Dense ties.

  EventQueue q;
  struct Fired {
    int64_t when;
    int id;
  };
  std::vector<Fired> fired;
  std::vector<EventId> ids;
  std::vector<int64_t> whens;
  const int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    const int64_t when = when_dist(rng);
    whens.push_back(when);
    ids.push_back(q.Schedule(Time::FromNanos(when),
                             [&fired, when, i] { fired.push_back({when, i}); }));
  }

  std::vector<bool> cancelled(kEvents, false);
  for (int i = 0; i < kEvents; i += 3) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
    EXPECT_FALSE(q.Cancel(ids[static_cast<size_t>(i)])) << "double-cancel must report false";
    cancelled[static_cast<size_t>(i)] = true;
  }

  // Rescheduling from inside a callback must not disturb ordering.
  int late_fires = 0;
  q.Schedule(Time::FromNanos(50), [&q, &late_fires] {
    q.Schedule(Time::FromNanos(200), [&late_fires] { ++late_fires; });
  });

  while (!q.empty()) {
    q.PopNext().cb();
  }

  size_t expected = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (!cancelled[static_cast<size_t>(i)]) {
      ++expected;
    }
  }
  EXPECT_EQ(fired.size(), expected);
  EXPECT_EQ(late_fires, 1);

  // (when, seq) order: timestamps non-decreasing, and FIFO within a tie
  // (schedule index strictly increasing inside each timestamp group).
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].when, fired[i].when) << "at pop " << i;
    if (fired[i - 1].when == fired[i].when) {
      EXPECT_LT(fired[i - 1].id, fired[i].id) << "FIFO tie-break broken at pop " << i;
    }
  }
  for (const Fired& f : fired) {
    EXPECT_FALSE(cancelled[static_cast<size_t>(f.id)])
        << "cancelled event " << f.id << " fired";
  }

  // Cancelling after the queue drained must be a clean no-op.
  for (int i = 1; i < kEvents; i += 97) {
    EXPECT_FALSE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
}

}  // namespace
}  // namespace msn
