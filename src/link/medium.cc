#include "src/link/medium.h"

#include <algorithm>

#include "src/link/link_device.h"
#include "src/util/logging.h"

namespace msn {

BroadcastMedium::BroadcastMedium(Simulator& sim, std::string name, MediumParams params,
                                 MetricsRegistry* metrics)
    : sim_(sim), name_(std::move(name)), params_(params) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string prefix = "link." + name_ + ".";
  counters_.frames_carried = metrics->GetCounterRef(prefix + "frames_carried");
  counters_.frames_dropped = metrics->GetCounterRef(prefix + "frames_dropped");
  counters_.frames_fault_dropped = metrics->GetCounterRef(prefix + "frames_fault_dropped");
  counters_.frames_unmatched = metrics->GetCounterRef(prefix + "frames_unmatched");
}

BroadcastMedium::~BroadcastMedium() {
  for (LinkDevice* device : devices_) {
    device->MediumDestroyed();
  }
}

BroadcastMedium::Counters BroadcastMedium::counters() const {
  Counters c;
  c.frames_carried = counters_.frames_carried;
  c.frames_dropped = counters_.frames_dropped;
  c.frames_fault_dropped = counters_.frames_fault_dropped;
  c.frames_unmatched = counters_.frames_unmatched;
  return c;
}

void BroadcastMedium::Attach(LinkDevice* device) {
  if (std::find(devices_.begin(), devices_.end(), device) == devices_.end()) {
    devices_.push_back(device);
  }
}

void BroadcastMedium::Detach(LinkDevice* device) {
  devices_.erase(std::remove(devices_.begin(), devices_.end(), device), devices_.end());
}

Duration BroadcastMedium::DrawLatency() {
  if (params_.latency_jitter.nanos() <= 0) {
    return params_.latency;
  }
  const double ns = sim_.rng().NormalAtLeast(
      static_cast<double>(params_.latency.nanos()),
      static_cast<double>(params_.latency_jitter.nanos()),
      static_cast<double>(params_.latency.nanos()) * 0.2);
  return Duration::FromNanos(static_cast<int64_t>(ns));
}

void BroadcastMedium::NotifyDrop(const EthernetFrame& frame, FrameDropReason reason) {
  if (drop_tap_) {
    drop_tap_(frame, reason);
  }
}

void BroadcastMedium::DeliverAfterLatency(LinkDevice* target, const EthernetFrame& frame) {
  if (params_.drop_probability > 0.0 && sim_.rng().Bernoulli(params_.drop_probability)) {
    ++counters_.frames_dropped;
    MSN_DEBUG("medium", "%s: dropped frame %s", name_.c_str(), frame.ToString().c_str());
    NotifyDrop(frame, FrameDropReason::kRandomLoss);
    return;
  }
  // The frame is not copied up front: a broadcast shares one immutable
  // buffer across every receiver, and each delivery callback holds only a
  // refcounted reference. The fault hook is the one mutator; when installed
  // it works on an explicit frame copy whose payload COWs on first write.
  FaultVerdict verdict;
  EthernetFrame mutated;
  if (fault_hook_) {
    mutated = frame;
    verdict = fault_hook_(target, mutated);
  }
  const EthernetFrame& delivered = fault_hook_ ? mutated : frame;
  if (verdict.drop) {
    ++counters_.frames_fault_dropped;
    MSN_DEBUG("medium", "%s: fault-dropped frame %s", name_.c_str(),
              delivered.ToString().c_str());
    NotifyDrop(delivered, FrameDropReason::kFaultInjected);
    return;
  }
  // Each copy (the original plus any injected duplicates) draws its own
  // latency, so duplicates also land out of order.
  const int copies = 1 + std::max(0, verdict.duplicates);
  for (int i = 0; i < copies; ++i) {
    sim_.Schedule(DrawLatency() + verdict.extra_latency,
                  [target, f = delivered]() mutable { target->DeliverFrame(std::move(f)); });
  }
}

void BroadcastMedium::FrameFromDevice(LinkDevice* sender, const EthernetFrame& frame) {
  ++counters_.frames_carried;
  if (frame.dst.IsBroadcast()) {
    for (LinkDevice* dev : devices_) {
      if (dev != sender) {
        DeliverAfterLatency(dev, frame);
      }
    }
    return;
  }
  bool matched = false;
  for (LinkDevice* dev : devices_) {
    if (dev != sender && dev->mac() == frame.dst) {
      DeliverAfterLatency(dev, frame);
      matched = true;
    }
  }
  if (!matched) {
    ++counters_.frames_unmatched;
    NotifyDrop(frame, FrameDropReason::kUnmatched);
  }
}

}  // namespace msn
