#include "src/mip/reg_load.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace msn {

RegistrationLoadGenerator::RegistrationLoadGenerator(Node& node, Config config)
    : node_(node), config_(std::move(config)) {
  MSN_CHECK(config_.count > 0) << "load generator needs at least one client";
  config_.care_of_span = std::max(config_.care_of_span, uint32_t{1});
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(0)) << "load generator ephemeral port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnDatagram(data, meta);
      });
  clients_.resize(config_.count);
  for (uint32_t i = 0; i < config_.count; ++i) {
    clients_[i].home = Ipv4Address(config_.first_home.value() + i);
    clients_[i].care_of =
        Ipv4Address(config_.first_care_of.value() + (i % config_.care_of_span));
    clients_[i].retransmits_left = config_.max_retransmits;
    clients_[i].resyncs_left = config_.max_resyncs;
  }
}

RegistrationLoadGenerator::~RegistrationLoadGenerator() {
  for (Client& client : clients_) {
    node_.sim().Cancel(client.retransmit_event);
  }
}

void RegistrationLoadGenerator::Start() {
  for (size_t i = 0; i < clients_.size(); ++i) {
    const Duration at =
        config_.start_delay + config_.interarrival * static_cast<int64_t>(i);
    node_.sim().Schedule(at, [this, i] { SendRequest(i, /*is_retransmit=*/false); });
  }
}

Duration RegistrationLoadGenerator::NextDelay(Client& client) {
  // Decorrelated jitter, matching MobileHost::NextRetransmitDelay: the first
  // wait is exactly the base interval, each later wait is drawn uniform from
  // [base, 3 * previous] and capped.
  if (client.backoff.nanos() <= 0) {
    client.backoff = config_.retransmit_interval;
    return client.backoff;
  }
  const double base_s = config_.retransmit_interval.ToSecondsF();
  const double prev_s = client.backoff.ToSecondsF();
  const Duration drawn = SecondsF(node_.sim().rng().UniformDouble(base_s, 3.0 * prev_s));
  client.backoff = std::min(config_.retransmit_max_interval, drawn);
  return client.backoff;
}

void RegistrationLoadGenerator::SendRequest(size_t index, bool is_retransmit) {
  Client& client = clients_[index];
  if (client.done) {
    return;
  }
  if (client.first_send == Time()) {
    client.first_send = node_.sim().Now();
  }
  if (first_send_time_ == Time()) {
    first_send_time_ = node_.sim().Now();
  }
  RegistrationRequest request;
  request.flags = kMipFlagDecapsulateSelf;
  request.lifetime_sec = config_.lifetime_sec;
  request.home_address = client.home;
  request.home_agent = config_.home_agent;
  request.care_of_address = client.care_of;
  request.identification = client.next_identification++;
  client.outstanding = request.identification;
  ++stats_.sent;
  if (is_retransmit) {
    ++stats_.retransmissions;
  }
  socket_->SendTo(config_.home_agent, kMipRegistrationPort, request.Serialize());
  client.retransmit_event =
      node_.sim().Schedule(NextDelay(client), [this, index] { OnTimeout(index); });
}

void RegistrationLoadGenerator::OnTimeout(size_t index) {
  Client& client = clients_[index];
  if (client.done) {
    return;
  }
  if (client.retransmits_left <= 0) {
    client.done = true;
    client.outstanding = 0;
    ++stats_.gave_up;
    return;
  }
  --client.retransmits_left;
  SendRequest(index, /*is_retransmit=*/true);
}

void RegistrationLoadGenerator::OnDatagram(const std::vector<uint8_t>& data,
                                           const UdpSocket::Metadata& meta) {
  (void)meta;
  auto reply = RegistrationReply::Parse(data);
  if (!reply) {
    return;
  }
  // One socket serves the whole fleet; replies demux by home address.
  const uint32_t offset = reply->home_address.value() - config_.first_home.value();
  if (offset >= clients_.size()) {
    return;
  }
  Client& client = clients_[offset];
  if (client.done || reply->identification != client.outstanding) {
    return;  // Stale or duplicate; the live request keeps retransmitting.
  }
  node_.sim().Cancel(client.retransmit_event);
  client.outstanding = 0;
  if (reply->accepted()) {
    client.done = true;
    ++stats_.accepted;
    const double completion_ms = (node_.sim().Now() - client.first_send).ToMillisF();
    completion_stats_ms_.Add(completion_ms);
    completion_samples_ms_.push_back(completion_ms);
    last_accept_time_ = node_.sim().Now();
    return;
  }
  if (reply->code == MipReplyCode::kDeniedIdentificationMismatch &&
      client.resyncs_left > 0) {
    // A restarted HA re-anchored its replay window at our denied request's
    // identification; re-send immediately with the next one, exactly as
    // MobileHost's resync path does.
    --client.resyncs_left;
    ++stats_.resyncs;
    SendRequest(offset, /*is_retransmit=*/false);
    return;
  }
  if (reply->code == MipReplyCode::kDeniedInsufficientResources) {
    // Admission shed: back off and retry without consuming the retransmit
    // budget, exactly as MobileHost does (the HA said "try again later").
    ++stats_.admission_denied;
    const size_t index = offset;
    client.retransmit_event = node_.sim().Schedule(
        NextDelay(client), [this, index] { SendRequest(index, /*is_retransmit=*/false); });
    return;
  }
  client.done = true;
  ++stats_.denied_other;
}

}  // namespace msn
