# Empty compiler generated dependencies file for msn_topo.
# This may be replaced when dependencies are built.
