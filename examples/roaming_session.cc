// Roaming session: the paper's motivating scenario (§1) — a long-lived
// connection with accumulated state (think remote login or a news reader)
// survives repeated network hand-offs without either endpoint restarting.
//
// A TCP-lite "terminal session" runs between the mobile host and a server on
// the correspondent host while the MH roams:
//
//   home Ethernet  ->  CS-department Ethernet (cold switch)
//                  ->  Metricom radio         (cold switch)
//                  ->  back home              (deregistration)
//
// Every byte typed is echoed back; at the end both sides agree on the full
// transcript even though the MH changed networks three times mid-session.
#include <cstdio>
#include <string>

#include "src/tcplite/tcplite.h"
#include "src/topo/testbed.h"

using namespace msn;

namespace {

struct Session {
  TcpLiteConnection* conn = nullptr;
  std::string transcript;   // Echo bytes received back at the MH.
  uint64_t typed = 0;

  void Type(const std::string& line) {
    typed += line.size();
    conn->Send(std::vector<uint8_t>(line.begin(), line.end()));
  }
};

void Report(Testbed& tb, const Session& session, const char* where) {
  std::printf("  [%-22s] typed %5llu B, echoed %5zu B, retransmits %llu, state %s\n", where,
              static_cast<unsigned long long>(session.typed), session.transcript.size(),
              static_cast<unsigned long long>(session.conn->retransmissions()),
              session.conn->established() ? "ESTABLISHED" : "not established");
  (void)tb;
}

}  // namespace

int main() {
  std::printf("=== Roaming remote-login session ===\n\n");
  Testbed tb;
  tb.StartMobileAtHome();

  // The "login server" on the correspondent host echoes everything.
  TcpLite server_tcp(tb.ch->stack());
  server_tcp.Listen(23, [](TcpLiteConnection* conn) {
    std::printf("  [server] accepted connection from %s:%u\n",
                conn->remote_address().ToString().c_str(), conn->remote_port());
    conn->SetDataHandler([conn](const std::vector<uint8_t>& data) { conn->Send(data); });
  });

  // The MH opens the session from home. The unbound socket means the
  // connection uses the home address — and full mobile-IP treatment away
  // from home.
  TcpLite client_tcp(tb.mh->stack());
  Session session;
  session.conn = client_tcp.Connect(tb.ch_address(), 23, [](bool ok) {
    std::printf("  [MH] connect: %s\n", ok ? "established" : "failed");
  });
  session.conn->SetDataHandler([&session](const std::vector<uint8_t>& data) {
    session.transcript.append(data.begin(), data.end());
  });
  tb.RunFor(Seconds(1));

  session.Type("make -j4 world   # kicked off at my desk\n");
  tb.RunFor(Seconds(1));
  Report(tb, session, "home 36.135");

  std::printf("\n-- carrying the laptop to the CS department (cold switch) --\n");
  tb.MoveMhEthernetTo(tb.net8.get());
  tb.mobile->ColdSwitchTo(tb.WiredAttachment(50), [](bool ok) {
    std::printf("  [MH] registered on net 36.8: %s\n", ok ? "yes" : "no");
  });
  session.Type("tail -f build.log  # typed during the switch, retransmitted as needed\n");
  tb.RunFor(Seconds(6));
  Report(tb, session, "visiting 36.8 (wired)");

  std::printf("\n-- walking out of the building onto the radio (cold switch) --\n");
  tb.mobile->ColdSwitchTo(tb.WirelessAttachment(60), [](bool ok) {
    std::printf("  [MH] registered on net 36.134: %s\n", ok ? "yes" : "no");
  });
  session.Type("grep -c error build.log\n");
  tb.RunFor(Seconds(8));
  Report(tb, session, "visiting 36.134 (radio)");

  std::printf("\n-- back at the desk (return home, deregister) --\n");
  tb.MoveMhEthernetTo(tb.net135.get());
  // The radio is still up: this is a hot return — no packets lost.
  tb.mobile->AttachHome([](bool ok) {
    std::printf("  [MH] home again, deregistered: %s\n", ok ? "yes" : "no");
  });
  session.Type("exit\n");
  tb.RunFor(Seconds(6));
  Report(tb, session, "home 36.135 again");

  std::printf("\nSession integrity: %s (%llu bytes typed, %zu echoed back)\n",
              session.typed == session.transcript.size() && session.conn->established()
                  ? "INTACT across 3 hand-offs"
                  : "BROKEN",
              static_cast<unsigned long long>(session.typed), session.transcript.size());
  std::printf("Neither the application nor the server was modified or restarted.\n");
  return 0;
}
