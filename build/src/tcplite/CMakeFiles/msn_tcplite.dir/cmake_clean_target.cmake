file(REMOVE_RECURSE
  "libmsn_tcplite.a"
)
