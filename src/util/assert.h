// Contract-checking macros for protocol invariants.
//
// MSN_CHECK(cond) is always compiled in: on failure it prints the failed
// expression, the source location, and any streamed context, then aborts.
// Use it for invariants whose violation means simulation state is corrupt
// (binding-table consistency, reassembly bounds, encapsulation depth) —
// continuing would silently produce wrong traces, which is worse than dying.
//
// MSN_ASSERT(cond) is the hot-path variant: identical semantics, but it
// compiles to nothing when MSN_ASSERTS_ENABLED is 0 (the condition is not
// evaluated; names it mentions still count as used). The build defines
// MSN_ASSERTS_ENABLED via the MSN_ASSERTS CMake option, which defaults ON in
// every build type so tests and CI always run with contracts armed; only
// explicitly configured benchmark builds turn it off.
//
// Both accept streamed context after the condition:
//
//   MSN_CHECK(offset + len <= total) << "offset=" << offset << " len=" << len;
#ifndef MSN_SRC_UTIL_ASSERT_H_
#define MSN_SRC_UTIL_ASSERT_H_

#include <sstream>

namespace msn {
namespace internal {

// Collects the streamed failure context; the destructor reports and aborts.
class ContractFailure {
 public:
  ContractFailure(const char* macro, const char* expr, const char* file, int line);
  [[noreturn]] ~ContractFailure();

  ContractFailure(const ContractFailure&) = delete;
  ContractFailure& operator=(const ContractFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Gives the check macros a `void` expression type while keeping `<<` chains
// binding tighter than the `&` (the classic glog voidify trick).
struct ContractVoidify {
  void operator&(std::ostream&) const {}
};

}  // namespace internal
}  // namespace msn

#define MSN_CHECK(cond)                                   \
  (cond) ? (void)0                                        \
         : ::msn::internal::ContractVoidify() &           \
               ::msn::internal::ContractFailure("MSN_CHECK", #cond, __FILE__, __LINE__).stream()

#ifndef MSN_ASSERTS_ENABLED
#ifdef NDEBUG
#define MSN_ASSERTS_ENABLED 0
#else
#define MSN_ASSERTS_ENABLED 1
#endif
#endif

#if MSN_ASSERTS_ENABLED
#define MSN_ASSERT(cond)                                  \
  (cond) ? (void)0                                        \
         : ::msn::internal::ContractVoidify() &           \
               ::msn::internal::ContractFailure("MSN_ASSERT", #cond, __FILE__, __LINE__).stream()
#else
// sizeof keeps the condition's names odr-used-free but "used" for -Wunused,
// without evaluating it.
#define MSN_ASSERT(cond) ((void)sizeof((cond) ? 1 : 0))
#endif

#endif  // MSN_SRC_UTIL_ASSERT_H_
