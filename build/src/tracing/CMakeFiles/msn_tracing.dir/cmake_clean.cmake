file(REMOVE_RECURSE
  "CMakeFiles/msn_tracing.dir/pcap.cc.o"
  "CMakeFiles/msn_tracing.dir/pcap.cc.o.d"
  "CMakeFiles/msn_tracing.dir/probe.cc.o"
  "CMakeFiles/msn_tracing.dir/probe.cc.o.d"
  "libmsn_tracing.a"
  "libmsn_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
