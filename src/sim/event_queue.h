// Priority queue of timed events with stable FIFO ordering for equal
// timestamps and O(log n) cancellation via generation-checked handles.
#ifndef MSN_SRC_SIM_EVENT_QUEUE_H_
#define MSN_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace msn {

// Opaque handle identifying a scheduled event. Default-constructed handles
// are invalid and cancelling them is a no-op.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventId(uint64_t seq) : seq_(seq) {}
  uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at `when`. Events scheduled for the same time fire
  // in insertion order.
  EventId Schedule(Time when, Callback cb);

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; Time::Max() when empty.
  Time NextTime() const;

  // Removes and returns the earliest pending event. Requires !empty().
  struct Entry {
    Time when;
    Callback cb;
  };
  Entry PopNext();

 private:
  struct HeapItem {
    Time when;
    uint64_t seq;
    bool operator>(const HeapItem& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void DropCancelledHead() const;

  // Min-heap of (time, seq); callbacks stored separately so cancellation is a
  // set insertion rather than a heap surgery.
  mutable std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>> heap_;
  mutable std::unordered_map<uint64_t, Callback> callbacks_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_SIM_EVENT_QUEUE_H_
