#include "src/check/fuzzer.h"

#include <memory>

#include "src/check/traffic.h"
#include "src/fault/fault_schedule.h"
#include "src/topo/scenario.h"

namespace msn {
namespace {

FaultProfile ProfileFromSpec(const FaultEventSpec& f) {
  FaultProfile profile;
  GilbertElliottParams burst;
  burst.p_enter_burst = f.p_enter_burst;
  burst.p_exit_burst = f.p_exit_burst;
  profile.burst_loss = burst;
  profile.duplicate_probability = f.duplicate_probability;
  profile.reorder_probability = f.reorder_probability;
  profile.corrupt_probability = f.corrupt_probability;
  return profile;
}

}  // namespace

std::string RunResult::FailureReport() const {
  std::string out = "=== scenario run ===\n";
  out += report.ToString();
  out += "--- scenario ---\n";
  out += spec.ToString();
  if (!movement_summary.empty()) {
    out += "--- movement ---\n";
    out += movement_summary;
  }
  if (!fault_trace.empty()) {
    out += "--- faults ---\n";
    out += fault_trace;
  }
  return out;
}

RunResult RunScenario(const ScenarioSpec& spec, const RunOptions& options) {
  TestbedConfig cfg;
  cfg.seed = spec.seed;
  cfg.transit_filter = spec.transit_filter;
  cfg.ha_on_router = spec.ha_on_router;
  cfg.external_ch = spec.external_ch;
  cfg.with_backup_ha = spec.backup_ha;
  cfg.mh_lifetime_sec = spec.lifetime_sec;
  // Calibrated mid-90s kernel delays triple the event count without changing
  // any protocol decision the oracles check; run in the fast timing regime.
  cfg.realistic_delays = false;

  Testbed tb(cfg);
  FaultInjector inject_home(tb.sim, *tb.net135, &tb.metrics);
  FaultInjector inject_wired(tb.sim, *tb.net8, &tb.metrics);
  FaultInjector inject_radio(tb.sim, *tb.radio134, &tb.metrics);
  auto injector_for = [&](FaultMedium medium) -> FaultInjector& {
    switch (medium) {
      case FaultMedium::kHome:
        return inject_home;
      case FaultMedium::kRadio:
        return inject_radio;
      case FaultMedium::kWired:
        break;
    }
    return inject_wired;
  };

  tb.StartMobileAtHome();

  TrafficHarness traffic(tb, spec);
  MovementScript script(tb);
  for (const MoveEventSpec& m : spec.moves) {
    script.Add(m.at, m.kind, m.host_index);
  }
  FaultSchedule faults;
  for (const FaultEventSpec& f : spec.faults) {
    switch (f.kind) {
      case FaultEventSpec::Kind::kBlackout:
        faults.Blackout(f.at, injector_for(f.medium), f.length);
        break;
      case FaultEventSpec::Kind::kProfile:
        faults.Profile(f.at, injector_for(f.medium), ProfileFromSpec(f));
        break;
      case FaultEventSpec::Kind::kClearProfile:
        faults.ClearProfile(f.at, injector_for(f.medium));
        break;
      case FaultEventSpec::Kind::kHaOutage:
        faults.HaOutage(f.at, *tb.home_agent, f.length, f.restart);
        break;
      case FaultEventSpec::Kind::kHaCrash:
        // length 0 = the primary never rejoins; the backup carries the run.
        faults.HaCrash(f.at, *tb.home_agent, f.length);
        break;
    }
  }
  script.WithFaults(faults);

  OracleSuite::Media media{&inject_home, &inject_wired, &inject_radio};
  OracleSuite oracles(tb, spec, traffic, media);
  PeriodicTask tick(tb.sim, OracleSuite::kTickInterval, [&oracles] { oracles.OnTick(); });
  tick.Start();

  traffic.Start();
  if (options.instrument) {
    options.instrument(tb);
  }
  oracles.Begin();
  script.Run(spec.duration);
  oracles.Finish();

  RunResult result;
  result.spec = spec;
  result.report = oracles.report();
  for (const MovementScript::Outcome& o : script.outcomes()) {
    result.movement_summary += o.Description();
    result.movement_summary += '\n';
  }
  result.fault_trace = faults.Trace();
  if (spec.traffic.probes) {
    result.probes_sent = traffic.probes().sent();
    result.probes_lost = traffic.probes().TotalLost();
  }
  return result;
}

RunResult FuzzOne(uint64_t seed, const RunOptions& options) {
  return RunScenario(GenerateScenario(seed), options);
}

}  // namespace msn
