// The host IP stack: interfaces, routing, ARP, send/receive/forward
// pipelines, and protocol demultiplexing.
//
// This is the simulation analogue of the Linux 1.2.13 networking code the
// paper modified. The paper's single kernel hook — the route lookup function
// ip_rt_route() — is exposed here as `RouteLookupOverride`: a callback
// consulted before the normal routing table that can redirect a packet to a
// different device (e.g. the encapsulating VIF) and/or rewrite its source
// address (e.g. to the mobile host's home address). All mobile-IP policy is
// injected through that one hook, mirroring the paper's design (§3.3).
#ifndef MSN_SRC_NODE_IP_STACK_H_
#define MSN_SRC_NODE_IP_STACK_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/address.h"
#include "src/net/frame.h"
#include "src/net/headers.h"
#include "src/node/arp.h"
#include "src/node/reassembly.h"
#include "src/node/routing_table.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

class FlowCache;
class NetDevice;
class UdpSocket;

// A question put to the route lookup: where should a packet to `dst` go, and
// with what source address?
struct RouteQuery {
  Ipv4Address dst;
  // Non-Any when the application explicitly bound a source address. Per the
  // paper (§3.3), such packets are "outside the scope of mobile IP": the
  // mobility override must leave them alone.
  Ipv4Address src_hint;
  // True when the query is for a forwarded (not locally originated) packet.
  bool forwarding = false;
  // True when the caller only needs the answer (e.g. source-address selection
  // before serializing a UDP checksum) and no packet is transmitted by this
  // lookup. Lets policy code keep accurate per-packet counters.
  bool advisory = false;
};

// The answer: output device, source address, and next hop to ARP for.
struct RouteDecision {
  NetDevice* device = nullptr;
  Ipv4Address src;
  // The IP the link layer should resolve: the gateway, or the destination
  // itself when on-link. Any() means "destination itself".
  Ipv4Address next_hop;

  // Per-packet policy accounting, carried out of the override and bumped
  // centrally by IpStack::RouteLookup for every non-advisory query this
  // decision answers — fresh or replayed from the flow cache, so cached
  // hits count exactly like uncached ones. Raw pointers are safe because
  // every mutation of the tables they point into invalidates the cache
  // before the pointee can move (DESIGN.md §18).
  CounterRef* policy_counter = nullptr;  // e.g. mh.*.packets_triangle_out
  uint64_t* policy_hits = nullptr;       // matched MPT entry's hit count

  // Override partial answer: the policy accounting above applies, but the
  // forwarding answer comes from the normal routing table (the MPT's
  // kDirect local role). Never escapes RouteLookup.
  bool defer_to_table = false;

  Ipv4Address EffectiveNextHop(Ipv4Address dst) const {
    return next_hop.IsAny() ? dst : next_hop;
  }
};

class IpStack {
 public:
  // `payload` is a zero-copy view into the received wire image; handlers that
  // need the bytes past the callback must copy (Packet copies are refcounted
  // and cheap, but mutation COWs).
  using ProtocolHandler = std::function<void(const Ipv4Header& header, const Packet& payload,
                                             NetDevice* ingress)>;
  using RouteLookupOverride =
      std::function<std::optional<RouteDecision>(const RouteQuery& query)>;
  // Return false to drop the packet (transit filtering); the stack then sends
  // ICMP destination-unreachable/admin-prohibited back to the source.
  using ForwardFilter = std::function<bool(const Ipv4Header& header, NetDevice* ingress)>;
  // Invoked when an ICMP error (destination unreachable) arrives, with the
  // header of the offending packet extracted from the ICMP payload.
  using IcmpErrorHandler =
      std::function<void(const IcmpMessage& icmp, const Ipv4Header& offending)>;

  // Per-packet software processing cost, modeling mid-90s kernel overhead
  // (40 MHz 486 mobile hosts, Pentium 90 router). Zero by default so unit
  // tests see exact timing; the testbed builder sets calibrated values.
  struct DelayParams {
    Duration send_mean;
    Duration send_jitter;
    Duration deliver_mean;
    Duration deliver_jitter;
    Duration forward_mean;
    Duration forward_jitter;
  };

  struct SendOptions {
    // Bypass routing and use this device (DHCP on an unconfigured interface).
    NetDevice* force_device = nullptr;
    // Bypass ARP and use this link-layer destination.
    std::optional<MacAddress> force_dst_mac;
    uint8_t ttl = Ipv4Header::kDefaultTtl;
    // Permit src = Any() (a host that does not yet have an address).
    bool allow_unconfigured_source = false;
  };

  // Snapshot of the stack's accounting; the live values are registry-backed
  // counters named "ip.<node>.<field>".
  struct Counters {
    uint64_t datagrams_sent = 0;
    uint64_t datagrams_delivered = 0;
    uint64_t datagrams_forwarded = 0;
    uint64_t drop_no_route = 0;
    uint64_t drop_arp_failure = 0;
    uint64_t drop_ttl = 0;
    uint64_t drop_filtered = 0;
    uint64_t drop_no_handler = 0;
    uint64_t drop_bad_packet = 0;
    uint64_t drop_device = 0;
    uint64_t drop_not_for_us = 0;
    uint64_t icmp_echo_replies_sent = 0;
    uint64_t icmp_errors_sent = 0;
    uint64_t icmp_redirects_sent = 0;
    uint64_t icmp_redirects_accepted = 0;
    uint64_t fragments_sent = 0;
    uint64_t drop_fragmentation_needed = 0;  // Oversized with DF set.
  };

  // Accounting lands in `metrics` when given; otherwise in a private
  // registry, so counters() behaves identically either way.
  IpStack(Simulator& sim, std::string node_name, MetricsRegistry* metrics = nullptr);
  ~IpStack();

  IpStack(const IpStack&) = delete;
  IpStack& operator=(const IpStack&) = delete;

  Simulator& sim() { return sim_; }
  const std::string& node_name() const { return node_name_; }

  // --- Interfaces -----------------------------------------------------------

  // Registers a device with the stack (hooks its receive handler). The
  // device starts with no address.
  void AddInterface(NetDevice* device);
  void RemoveInterface(NetDevice* device);

  // Assigns an address/mask and installs the connected-subnet route (what
  // `ifconfig` does). Replaces any previous address on the device.
  void ConfigureAddress(NetDevice* device, Ipv4Address addr, SubnetMask mask);
  // Removes the address and the connected route.
  void UnconfigureAddress(NetDevice* device);

  [[nodiscard]] std::optional<Ipv4Address> GetInterfaceAddress(NetDevice* device) const;
  [[nodiscard]] std::optional<Subnet> GetInterfaceSubnet(NetDevice* device) const;
  bool IsLocalAddress(Ipv4Address addr) const;
  std::vector<NetDevice*> Interfaces() const;

  // --- Routing --------------------------------------------------------------

  RoutingTable& routes() { return routes_; }
  ArpService& arp() { return *arp_; }
  ReassemblyService& reassembly() { return *reassembly_; }

  void SetRouteLookupOverride(RouteLookupOverride fn) {
    route_override_ = std::move(fn);
    InvalidateFlowCache();
  }
  void ClearRouteLookupOverride() {
    route_override_ = nullptr;
    InvalidateFlowCache();
  }

  // The paper's ip_rt_route(): override first, then the routing table —
  // fronted by the per-node flow cache when DatapathTuning enables it.
  [[nodiscard]] std::optional<RouteDecision> RouteLookup(const RouteQuery& query);

  // The uncached lookup the cache memoizes, exposed for the fuzzer's
  // flow-cache-coherence oracle (shadow compare) and the differential
  // tests. Performs no per-packet counting and never touches the cache.
  [[nodiscard]] std::optional<RouteDecision> RouteLookupUncached(const RouteQuery& query);

  // Orphans every cached route decision (O(1) generation bump). Wired to
  // every mutation a decision can depend on: route/MPT/interface changes,
  // binding churn on the home agent, attachment changes on the mobile host,
  // and override (de)installation.
  void InvalidateFlowCache();
  FlowCache& flow_cache() { return *flow_cache_; }

  // --- Send path -------------------------------------------------------------

  // Builds and sends an IPv4 datagram. Failures are counted, not returned
  // (delivery is asynchronous, as on a real host).
  void SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                    std::vector<uint8_t> payload, SendOptions opts);
  void SendDatagram(Ipv4Address src, Ipv4Address dst, IpProto proto,
                    std::vector<uint8_t> payload);

  // Re-injects a fully formed datagram into the send path, preserving its
  // header fields (used when forwarding and by tunnel endpoints). Serializes
  // once; prefer SendPreformedPacket when the wire image already exists.
  void SendPreformedDatagram(const Ipv4Datagram& dg, bool forwarding);

  // Zero-copy variant: `wire` is the complete serialized datagram and
  // `header` its parsed form (header.total_length == wire.size()). The wire
  // bytes are forwarded/transmitted without reserialization.
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void SendPreformedPacket(const Ipv4Header& header, Packet wire, bool forwarding);

  // --- Receive path -----------------------------------------------------------

  // Entry point wired to each device's receive handler. Consumes the frame:
  // for IPv4 the payload buffer flows onward into the receive/forward
  // pipeline without copying.
  void ReceiveFrame(NetDevice& device, EthernetFrame&& frame);

  // Injects a datagram into the receive path as if it had just arrived on
  // `ingress` (used by decapsulation: the inner packet "arrives" again and is
  // either delivered locally or forwarded, per the normal rules).
  void InjectReceivedDatagram(const Ipv4Datagram& dg, NetDevice* ingress,
                              MacAddress link_src = MacAddress::Zero());

  // Zero-copy variant of InjectReceivedDatagram: `wire` is the complete wire
  // image matching `header`. The receive/forward pipeline keeps the bytes
  // shared; only the per-hop TTL patch makes a copy, and only when the
  // buffer is still referenced elsewhere (e.g. a pcap tap holds the frame).
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void InjectReceivedPacket(const Ipv4Header& header, Packet wire, NetDevice* ingress,
                            MacAddress link_src = MacAddress::Zero());

  void RegisterProtocolHandler(IpProto proto, ProtocolHandler handler);
  void UnregisterProtocolHandler(IpProto proto);

  // --- Forwarding & filtering -------------------------------------------------

  void set_forwarding_enabled(bool enabled) { forwarding_enabled_ = enabled; }
  bool forwarding_enabled() const { return forwarding_enabled_; }
  void SetForwardFilter(ForwardFilter filter) { forward_filter_ = std::move(filter); }
  // Routers: send ICMP redirects when forwarding a packet back out its
  // arrival interface to a gateway on the sender's own subnet (RFC 792).
  void set_send_redirects(bool enabled) { send_redirects_ = enabled; }
  // Hosts: install a host route on receiving a redirect. The paper (S5.2)
  // notes a fully transparent mobile design would have to suppress these;
  // exposing real routes lets them work normally.
  void set_accept_redirects(bool enabled) { accept_redirects_ = enabled; }

  // --- ICMP -------------------------------------------------------------------

  // Sends an ICMP message to `dst` (source selected by routing).
  void SendIcmp(Ipv4Address dst, const IcmpMessage& msg, Ipv4Address src = Ipv4Address::Any());
  void SetIcmpErrorHandler(IcmpErrorHandler handler) { icmp_error_handler_ = std::move(handler); }
  // Echo replies/errors matching a pinger's id are routed to it (see Pinger).
  void RegisterEchoListener(uint16_t id,
                            std::function<void(const Ipv4Header&, const IcmpMessage&)> cb);
  void UnregisterEchoListener(uint16_t id);

  // --- UDP socket table (used by UdpSocket) -----------------------------------

  [[nodiscard]] bool BindUdpSocket(uint16_t port, UdpSocket* socket);
  void UnbindUdpSocket(uint16_t port, UdpSocket* socket);
  uint16_t AllocateEphemeralPort();

  // --- Knobs & stats -----------------------------------------------------------

  void set_delay_params(const DelayParams& p) { delays_ = p; }
  const DelayParams& delay_params() const { return delays_; }
  Counters counters() const;

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef datagrams_sent;
    CounterRef datagrams_delivered;
    CounterRef datagrams_forwarded;
    CounterRef drop_no_route;
    CounterRef drop_arp_failure;
    CounterRef drop_ttl;
    CounterRef drop_filtered;
    CounterRef drop_no_handler;
    CounterRef drop_bad_packet;
    CounterRef drop_device;
    CounterRef drop_not_for_us;
    CounterRef icmp_echo_replies_sent;
    CounterRef icmp_errors_sent;
    CounterRef icmp_redirects_sent;
    CounterRef icmp_redirects_accepted;
    CounterRef fragments_sent;
    CounterRef drop_fragmentation_needed;
  };
  struct InterfaceEntry {
    NetDevice* device = nullptr;
    Ipv4Address addr;
    SubnetMask mask;
    bool configured = false;
  };

  InterfaceEntry* FindInterface(NetDevice* device);
  const InterfaceEntry* FindInterface(NetDevice* device) const;

  // The real lookup behind the flow cache. Out-params receive the policy
  // counters the answer must bump per packet — also set when the answer is
  // "no route" but the override still matched an MPT entry (kDirect with no
  // table route), which a nullopt return could not carry.
  [[nodiscard]] std::optional<RouteDecision> LookupUncached(const RouteQuery& query,
                                                            CounterRef*& policy_counter,
                                                            uint64_t*& policy_hits);

  Duration DrawDelay(Duration mean, Duration jitter);
  // Kernel stages are FIFO pipelines: each packet occupies the stage for its
  // drawn cost and packets never overtake each other. Returns the absolute
  // completion time and advances the stage clock.
  Time PipelineDelay(Time& busy_until, Duration mean, Duration jitter);

  // Second half of the send path, after the kernel processing delay. The
  // internal pipeline carries (parsed header, wire image) pairs; the
  // invariant throughout is header.total_length == wire.size() and the wire
  // bytes agree with the header fields.
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void DoSend(Ipv4Header header, Packet wire, bool forwarding, SendOptions opts);
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void TransmitViaDevice(NetDevice* device, const Ipv4Header& header, Packet wire,
                         Ipv4Address next_hop, std::optional<MacAddress> force_dst_mac);
  // Destination MAC when it is known without link traffic (forced, broadcast,
  // loopback, ARP cache hit); nullopt means the caller must go through
  // ArpService::Resolve.
  [[nodiscard]] std::optional<MacAddress> ResolveDstMacFast(NetDevice* device,
                                                            Ipv4Address next_hop,
                                              std::optional<MacAddress> force_dst_mac);
  // Wraps one wire image in a link frame and hands it to the device.
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void TransmitFrame(NetDevice* device, Packet wire, MacAddress dst_mac);
  void HandleIpv4Frame(NetDevice& device, EthernetFrame&& frame);
  // msn-lint: allow(perf/frame-by-value) — ownership sink; callers move.
  void Forward(Ipv4Header header, Packet wire, NetDevice* ingress);
  void Deliver(const Ipv4Header& header, const Packet& payload, NetDevice* ingress,
               MacAddress link_src);
  void HandleIcmp(const Ipv4Header& header, const Packet& payload, NetDevice* ingress);
  void HandleUdp(const Ipv4Header& header, const Packet& payload, NetDevice* ingress,
                 MacAddress link_src);
  void DispatchUdp(const std::vector<UdpSocket*>& sockets, const Ipv4Header& header,
                   const UdpDatagram& dg, NetDevice* ingress, MacAddress link_src);
  void SendIcmpError(const Ipv4Header& offending, std::span<const uint8_t> payload,
                     IcmpUnreachableCode code);
  bool IsBroadcastFor(Ipv4Address addr) const;

  Simulator& sim_;
  std::string node_name_;
  std::vector<InterfaceEntry> interfaces_;
  std::unique_ptr<FlowCache> flow_cache_;
  RoutingTable routes_;
  std::unique_ptr<ArpService> arp_;
  std::unique_ptr<ReassemblyService> reassembly_;
  RouteLookupOverride route_override_;
  ForwardFilter forward_filter_;
  bool forwarding_enabled_ = false;
  bool send_redirects_ = false;
  bool accept_redirects_ = true;
  std::map<IpProto, ProtocolHandler> protocol_handlers_;
  // Hash maps are safe here only because nothing traverses them: delivery and
  // port allocation are point queries by port/id, and per-port fan-out order
  // comes from the inner vector (bind order), never from bucket order. A
  // future all-ports sweep must use sorted traversal — msn_analyze's
  // determinism/unordered-iteration rule flags the loop if one appears.
  std::unordered_map<uint16_t, std::vector<UdpSocket*>> udp_sockets_;
  std::unordered_map<uint16_t, std::function<void(const Ipv4Header&, const IcmpMessage&)>>
      echo_listeners_;
  IcmpErrorHandler icmp_error_handler_;
  DelayParams delays_;
  Time send_pipe_busy_;
  Time deliver_pipe_busy_;
  Time forward_pipe_busy_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
  uint16_t next_ip_id_ = 1;
  uint16_t next_ephemeral_port_ = 49152;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_IP_STACK_H_
