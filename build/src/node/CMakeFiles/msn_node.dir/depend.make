# Empty dependencies file for msn_node.
# This may be replaced when dependencies are built.
