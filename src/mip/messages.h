// Mobile IP registration protocol messages, closely following the IETF
// draft the paper based its implementation on (later RFC 2002): UDP port
// 434, a Registration Request carrying home address / home agent / care-of
// address / lifetime / identification, and a Registration Reply with a
// result code. The paper's system always uses a co-located care-of address
// (the "D" flag: decapsulation by the mobile host itself).
#ifndef MSN_SRC_MIP_MESSAGES_H_
#define MSN_SRC_MIP_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/address.h"
#include "src/util/siphash.h"

namespace msn {

// Shared secret between a mobile host and its home agent, used to compute
// the mobile-home authentication extension (the paper's §5.1: registrations
// "should be authenticated ... to protect against denial-of-service attacks
// in the form of malicious fraudulent registrations").
using MipAuthKey = SipHashKey;

// UDP port for registration traffic.
inline constexpr uint16_t kMipRegistrationPort = 434;

// Registration request flags.
inline constexpr uint8_t kMipFlagSimultaneous = 0x80;   // S: keep prior bindings.
inline constexpr uint8_t kMipFlagBroadcast = 0x40;      // B: forward broadcasts.
inline constexpr uint8_t kMipFlagDecapsulateSelf = 0x20;  // D: co-located care-of.

enum class MipMessageType : uint8_t {
  kRegistrationRequest = 1,
  kRegistrationReply = 3,
  // Extension (paper §5.1 "Packet loss" discussion): the home agent notifies
  // a mobile host's *previous* foreign agent of the new care-of address so
  // in-flight tunnel packets can be forwarded instead of lost.
  kBindingUpdate = 20,
  // Extension: foreign agent advertisement (paper §5.1: "we can extend our
  // protocol on mobile hosts so they can take advantage of any foreign
  // agents that happen to exist").
  kAgentAdvertisement = 16,
};

enum class MipReplyCode : uint8_t {
  kAccepted = 0,
  kAcceptedNoSimultaneous = 1,
  kDeniedMalformed = 70,
  kDeniedLifetimeTooLong = 69,
  kDeniedUnknownHomeAddress = 128,
  // Admission control: the HA's front end shed this request before doing any
  // authentication or identification work (queue over threshold). Explicitly
  // "try again later", so the MH backs off and retries instead of failing.
  kDeniedInsufficientResources = 130,
  kDeniedBadAuthenticator = 131,
  kDeniedIdentificationMismatch = 133,
};

const char* MipReplyCodeName(MipReplyCode code);
[[nodiscard]] bool MipReplyCodeAccepted(MipReplyCode code);

struct RegistrationRequest {
  static constexpr size_t kSize = 24;

  uint8_t flags = kMipFlagDecapsulateSelf;
  // Seconds the binding should remain valid. Zero requests deregistration.
  uint16_t lifetime_sec = 0;
  Ipv4Address home_address;
  Ipv4Address home_agent;
  Ipv4Address care_of_address;
  // Monotonically increasing per (MH, HA) pair; orders registrations and
  // rejects replays.
  uint64_t identification = 0;
  // Mobile-home authentication extension: SipHash-2-4 MAC over the fixed
  // header fields. Absent when authentication is not in use.
  std::optional<uint64_t> authenticator;

  [[nodiscard]] bool IsDeregistration() const { return lifetime_sec == 0; }

  // Computes and attaches the authenticator under `key`.
  void Authenticate(const MipAuthKey& key);
  // True iff an authenticator is present and matches `key`.
  [[nodiscard]] bool VerifyAuthenticator(const MipAuthKey& key) const;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<RegistrationRequest> Parse(const std::vector<uint8_t>& bytes);
  std::string ToString() const;

 private:
  std::vector<uint8_t> SerializeBase() const;
};

struct RegistrationReply {
  static constexpr size_t kSize = 20;

  MipReplyCode code = MipReplyCode::kAccepted;
  // Granted lifetime (may be clamped below the requested value).
  uint16_t lifetime_sec = 0;
  Ipv4Address home_address;
  Ipv4Address home_agent;
  uint64_t identification = 0;  // Echoes the request's identification.
  std::optional<uint64_t> authenticator;

  bool accepted() const { return MipReplyCodeAccepted(code); }

  void Authenticate(const MipAuthKey& key);
  [[nodiscard]] bool VerifyAuthenticator(const MipAuthKey& key) const;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<RegistrationReply> Parse(const std::vector<uint8_t>& bytes);
  std::string ToString() const;

 private:
  std::vector<uint8_t> SerializeBase() const;
};

// Sent to a mobile host's previous foreign agent around a hand-off:
//  * by the departing MH itself, with `new_care_of` = Any: "I am leaving and
//    do not yet know where to; buffer my packets" (smooth hand-off);
//  * by the home agent once the binding moves, with the real new care-of:
//    the FA flushes any buffer and forwards late tunnel packets there for
//    `grace_sec`.
struct BindingUpdate {
  static constexpr size_t kSize = 11;

  Ipv4Address home_address;
  Ipv4Address new_care_of;
  uint16_t grace_sec = 10;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<BindingUpdate> Parse(const std::vector<uint8_t>& bytes);
};

// Broadcast periodically by a foreign agent on its local segment (over UDP
// port 434); visiting mobile hosts learn the FA's address from it.
struct AgentAdvertisement {
  static constexpr size_t kSize = 7;

  Ipv4Address agent_address;
  uint16_t lifetime_sec = 3;  // Advertisement validity.

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<AgentAdvertisement> Parse(const std::vector<uint8_t>& bytes);
};

}  // namespace msn

#endif  // MSN_SRC_MIP_MESSAGES_H_
