# Empty compiler generated dependencies file for mip_messages_test.
# This may be replaced when dependencies are built.
