file(REMOVE_RECURSE
  "CMakeFiles/msn_dhcp.dir/dhcp.cc.o"
  "CMakeFiles/msn_dhcp.dir/dhcp.cc.o.d"
  "libmsn_dhcp.a"
  "libmsn_dhcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_dhcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
