// ICMP redirect behaviour (RFC 792; discussed by the paper in §5.2 as one of
// the reasons full mobility transparency is impractical: a transparent design
// would have to suppress redirects, while exposing real routes lets them
// work normally).
#include <gtest/gtest.h>

#include "src/node/icmp.h"
#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/sim/simulator.h"

namespace msn {
namespace {

// One segment with two routers:
//   a (10.0.0.2, default via r1 10.0.0.1)
//   r1: knows 10.1.0.0/24 via r2 (same segment!)  -> should redirect a to r2
//   r2 (10.0.0.3) -> owns 10.1.0.0/24 (b attached behind it)
class RedirectFixture : public ::testing::Test {
 protected:
  RedirectFixture()
      : sim_(91), seg_(sim_, "seg", EthernetMediumParams()),
        far_(sim_, "far", EthernetMediumParams()), a_(sim_, "a"), r1_(sim_, "r1"),
        r2_(sim_, "r2"), b_(sim_, "b") {
    a_dev_ = a_.AddEthernet("eth0", &seg_);
    r1_dev_ = r1_.AddEthernet("eth0", &seg_);
    r2_dev_ = r2_.AddEthernet("eth0", &seg_);
    r2_far_ = r2_.AddEthernet("eth1", &far_);
    b_dev_ = b_.AddEthernet("eth0", &far_);
    for (NetDevice* d : {static_cast<NetDevice*>(a_dev_), static_cast<NetDevice*>(r1_dev_),
                         static_cast<NetDevice*>(r2_dev_), static_cast<NetDevice*>(r2_far_),
                         static_cast<NetDevice*>(b_dev_)}) {
      d->ForceUp();
    }
    a_.ConfigureInterface(a_dev_, "10.0.0.2/24");
    r1_.ConfigureInterface(r1_dev_, "10.0.0.1/24");
    r2_.ConfigureInterface(r2_dev_, "10.0.0.3/24");
    r2_.ConfigureInterface(r2_far_, "10.1.0.1/24");
    b_.ConfigureInterface(b_dev_, "10.1.0.2/24");

    a_.AddDefaultRoute(Ipv4Address(10, 0, 0, 1), a_dev_);
    r1_.AddNetworkRoute(Subnet::MustParse("10.1.0.0/24"), Ipv4Address(10, 0, 0, 3), r1_dev_);
    b_.AddDefaultRoute(Ipv4Address(10, 1, 0, 1), b_dev_);

    r1_.stack().set_forwarding_enabled(true);
    r1_.stack().set_send_redirects(true);
    r2_.stack().set_forwarding_enabled(true);
  }

  Simulator sim_;
  BroadcastMedium seg_, far_;
  Node a_, r1_, r2_, b_;
  EthernetDevice* a_dev_;
  EthernetDevice* r1_dev_;
  EthernetDevice* r2_dev_;
  EthernetDevice* r2_far_;
  EthernetDevice* b_dev_;
};

TEST_F(RedirectFixture, RouterRedirectsAndHostLearnsRoute) {
  Pinger pinger(a_.stack());
  bool ok = false;
  pinger.Ping(Ipv4Address(10, 1, 0, 2), Seconds(2), [&](const Pinger::Result& r) {
    ok = r.success;
  });
  sim_.Run();
  ASSERT_TRUE(ok);
  // r1 forwarded the first packet out its arrival interface and redirected.
  EXPECT_GE(r1_.stack().counters().icmp_redirects_sent, 1u);
  EXPECT_GE(a_.stack().counters().icmp_redirects_accepted, 1u);
  // a now has a host route straight to r2.
  auto route = a_.stack().routes().Lookup(Ipv4Address(10, 1, 0, 2));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->gateway, Ipv4Address(10, 0, 0, 3));
  EXPECT_EQ(route->dest.prefix_len(), 32);
}

TEST_F(RedirectFixture, SubsequentTrafficBypassesFirstRouter) {
  Pinger pinger(a_.stack());
  pinger.Ping(Ipv4Address(10, 1, 0, 2), Seconds(2), nullptr);
  sim_.Run();
  const uint64_t forwarded_before = r1_.stack().counters().datagrams_forwarded;

  bool ok = false;
  pinger.Ping(Ipv4Address(10, 1, 0, 2), Seconds(2), [&](const Pinger::Result& r) {
    ok = r.success;
  });
  sim_.Run();
  EXPECT_TRUE(ok);
  // The second exchange no longer crosses r1.
  EXPECT_EQ(r1_.stack().counters().datagrams_forwarded, forwarded_before);
}

TEST_F(RedirectFixture, AcceptanceCanBeDisabled) {
  a_.stack().set_accept_redirects(false);
  Pinger pinger(a_.stack());
  bool ok = false;
  pinger.Ping(Ipv4Address(10, 1, 0, 2), Seconds(2), [&](const Pinger::Result& r) {
    ok = r.success;
  });
  sim_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(a_.stack().counters().icmp_redirects_accepted, 0u);
  auto route = a_.stack().routes().Lookup(Ipv4Address(10, 1, 0, 2));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->dest.prefix_len(), 0);  // Still only the default route.
}

TEST_F(RedirectFixture, RedirectFromWrongGatewayIgnored) {
  // Forge a redirect from a non-gateway source: must be ignored.
  IcmpMessage forged;
  forged.type = IcmpType::kRedirect;
  forged.code = 1;
  forged.rest = Ipv4Address(10, 0, 0, 3).value();
  Ipv4Header offending;
  offending.src = Ipv4Address(10, 0, 0, 2);
  offending.dst = Ipv4Address(10, 1, 0, 2);
  offending.total_length = Ipv4Header::kSize;
  ByteWriter w;
  offending.Serialize(w);
  forged.payload = w.Take();
  // Sent by b (not a's gateway).
  b_.stack().SendIcmp(Ipv4Address(10, 0, 0, 2), forged);
  sim_.Run();
  EXPECT_EQ(a_.stack().counters().icmp_redirects_accepted, 0u);
}

TEST_F(RedirectFixture, RedirectToOffSubnetHopIgnored) {
  // A redirect naming a next hop outside the local subnet must be ignored.
  IcmpMessage forged;
  forged.type = IcmpType::kRedirect;
  forged.code = 1;
  forged.rest = Ipv4Address(99, 9, 9, 9).value();
  Ipv4Header offending;
  offending.src = Ipv4Address(10, 0, 0, 2);
  offending.dst = Ipv4Address(10, 1, 0, 2);
  offending.total_length = Ipv4Header::kSize;
  ByteWriter w;
  offending.Serialize(w);
  forged.payload = w.Take();
  // Spoof the true gateway as the source.
  r1_.stack().SendIcmp(Ipv4Address(10, 0, 0, 2), forged, Ipv4Address(10, 0, 0, 1));
  sim_.Run();
  EXPECT_EQ(a_.stack().counters().icmp_redirects_accepted, 0u);
}

}  // namespace
}  // namespace msn
