// The unified benchmark export pipeline.
//
// Every bench binary builds one BenchReport and writes it as
// BENCH_<name>.json into $MSN_BENCH_JSON_DIR (default: the working
// directory). All nine benches share one schema, "msn-bench-v1":
//
//   {
//     "schema": "msn-bench-v1",
//     "bench": "addr_switch",            // short name; file is BENCH_<bench>.json
//     "title": "...",                    // one-line human description
//     "seed": 1000,                      // base RNG seed of the run
//     "smoke": false,                    // reduced-N CI smoke mode?
//     "params": {"iterations": 20, ...}, // scalar run parameters
//     "summaries": [                     // sample-set summaries (exact stats)
//       {"name": "switch_ms", "unit": "ms", "count": 20, "mean": ..,
//        "stddev": .., "min": .., "max": .., "p50": .., "p95": .., "p99": ..}
//     ],
//     "rows": [                          // per-cell/per-config result rows
//       {"label": "cold wired->wireless", "values": {"lost_mean": 4.8, ...}}
//     ],
//     "metrics": [                       // MetricsRegistry snapshot
//       {"name": "ha.requests_received", "type": "counter", "value": 12},
//       {"name": "ha.processing_ms", "type": "histogram", "count": 12,
//        "sum": .., "mean": .., "min": .., "max": .., "p50": .., "p95": ..,
//        "p99": ..}
//     ],
//     "series": [                        // TimeSeriesSampler output
//       {"metric": "tcp.goodput_bytes", "interval_ms": 1000,
//        "points": [[t_ms, value], ...]}
//     ]
//   }
//
// tools/validate_bench_json.py checks emitted files against this schema in
// the CI bench-smoke job. Percentiles in "summaries" are exact
// (util/stats.h Percentile over the retained samples); percentiles in
// "metrics" histograms carry the registry histogram's bounded relative
// error.
#ifndef MSN_SRC_TELEMETRY_EXPORT_H_
#define MSN_SRC_TELEMETRY_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/time_series.h"
#include "src/util/stats.h"

namespace msn {

// True when $MSN_BENCH_SMOKE is set (and not "0"): benches shrink their
// iteration counts so the CI smoke job finishes quickly.
bool BenchSmokeMode();
// Convenience: `full` normally, `smoke` under MSN_BENCH_SMOKE.
int BenchIterations(int full, int smoke);
// $MSN_BENCH_JSON_DIR, or "." when unset.
std::string BenchJsonDir();

// A tagged scalar for params and row values.
class JsonScalar {
 public:
  JsonScalar() : kind_(Kind::kInt), int_(0) {}
  JsonScalar(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonScalar(int i) : kind_(Kind::kInt), int_(i) {}
  JsonScalar(int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonScalar(uint64_t u) : kind_(Kind::kInt), int_(static_cast<int64_t>(u)) {}
  JsonScalar(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonScalar(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonScalar(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  // Renders as a JSON value (quoted/escaped for strings).
  std::string ToJson() const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

// Escapes a string for embedding in JSON (adds no surrounding quotes).
std::string JsonEscape(const std::string& s);

class BenchReport {
 public:
  BenchReport(std::string bench_name, std::string title);

  void set_seed(uint64_t seed) { seed_ = seed; }
  const std::string& bench_name() const { return bench_name_; }

  // Scalar run parameters; insertion order is preserved.
  void AddParam(const std::string& key, JsonScalar value);

  // Summary over a retained sample set: exact mean/stddev/min/max plus exact
  // p50/p95/p99 via Percentile().
  void AddSummary(const std::string& name, const std::string& unit,
                  const std::vector<double>& samples);
  // Summary from running stats only (no retained samples, no percentiles).
  void AddSummary(const std::string& name, const std::string& unit, const RunningStats& stats);

  // One result row (a sweep cell, a configuration, a policy).
  void AddRow(const std::string& label,
              std::vector<std::pair<std::string, JsonScalar>> values);

  // Snapshots the registry into the "metrics" section (call once, at the
  // end of the run). Multiple calls append; names stay sorted per call.
  void AddMetrics(const MetricsRegistry& registry);

  // Copies the sampler's series into the "series" section.
  void AddSeries(const TimeSeriesSampler& sampler);

  std::string ToJson() const;

  // Writes BENCH_<bench>.json into BenchJsonDir(); returns the path, or ""
  // on I/O failure.
  std::string WriteFile() const;

 private:
  struct Summary {
    std::string name;
    std::string unit;
    uint64_t count = 0;
    double mean = 0, stddev = 0, min = 0, max = 0;
    bool has_percentiles = false;
    double p50 = 0, p95 = 0, p99 = 0;
  };
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, JsonScalar>> values;
  };
  struct SeriesOut {
    std::string metric;
    double interval_ms = 0;
    std::vector<std::pair<double, double>> points;  // (t_ms, value)
  };

  std::string bench_name_;
  std::string title_;
  uint64_t seed_ = 0;
  std::vector<std::pair<std::string, JsonScalar>> params_;
  std::vector<Summary> summaries_;
  std::vector<Row> rows_;
  std::vector<MetricSnapshot> metrics_;
  std::vector<SeriesOut> series_;
};

}  // namespace msn

#endif  // MSN_SRC_TELEMETRY_EXPORT_H_
