// Hand-off behaviour: the paper's experiments as integration tests.
//
//  * Same-subnet care-of switch (§4, experiment 1): losses of 0 or 1 probe at
//    a 10 ms probe interval, because the vulnerable window is under 10 ms.
//  * Cold device switches (Figure 6): losses bounded by the interface
//    bring-up time (~1.25 s at a 250 ms probe interval -> a few packets).
//  * Hot device switches (Figure 6): no loss, both interfaces being alive.
//  * Registration timeline (Figure 7): ordered timestamps, millisecond scale.
#include <gtest/gtest.h>

#include "src/tcplite/tcplite.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class HandoffTest : public ::testing::Test {
 protected:
  void StartProbes(Duration interval) {
    echo_ = std::make_unique<ProbeEchoServer>(*tb_->mh, 7);
    sender_ = std::make_unique<ProbeSender>(
        *tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, interval});
    sender_->Start();
  }

  void BuildTestbed(uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<ProbeEchoServer> echo_;
  std::unique_ptr<ProbeSender> sender_;
};

TEST_F(HandoffTest, SameSubnetAddressSwitchLosesAtMostOneProbe) {
  BuildTestbed(7);
  tb_->StartMobileOnWired(50);
  StartProbes(Milliseconds(10));
  tb_->RunFor(Seconds(1));

  bool switched = false;
  tb_->mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, 51), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(switched);
  EXPECT_EQ(tb_->mobile->care_of(), Ipv4Address(36, 8, 0, 51));

  sender_->Stop();
  tb_->RunFor(Seconds(1));
  // Paper: 16/20 runs lost nothing, the rest lost exactly one probe.
  EXPECT_LE(sender_->TotalLost(), 1u);
}

TEST_F(HandoffTest, ColdSwitchWiredToWirelessLosesAFewProbes) {
  BuildTestbed(11);
  tb_->StartMobileOnWired(50);
  StartProbes(Milliseconds(250));
  tb_->RunFor(Seconds(2));

  bool switched = false;
  tb_->mobile->ColdSwitchTo(tb_->WirelessAttachment(60), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(6));
  ASSERT_TRUE(switched);
  ASSERT_TRUE(tb_->mobile->registered());

  sender_->Stop();
  tb_->RunFor(Seconds(2));
  // Bring-up (~1 s) + radio registration (~0.25 s RTT) at 4 probes/s: a few
  // probes die, but well under ten (paper: interval "generally less than
  // 1.25 seconds").
  EXPECT_GE(sender_->TotalLost(), 2u);
  EXPECT_LE(sender_->TotalLost(), 9u);
}

TEST_F(HandoffTest, ColdSwitchWirelessToWiredLosesAFewProbes) {
  BuildTestbed(13);
  tb_->StartMobileOnWireless(60);
  StartProbes(Milliseconds(250));
  tb_->RunFor(Seconds(2));

  // Physically move the Ethernet to the CS-department segment first.
  tb_->MoveMhEthernetTo(tb_->net8.get());
  bool switched = false;
  tb_->mobile->ColdSwitchTo(tb_->WiredAttachment(50), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(6));
  ASSERT_TRUE(switched);
  ASSERT_TRUE(tb_->mobile->registered());

  sender_->Stop();
  tb_->RunFor(Seconds(2));
  EXPECT_GE(sender_->TotalLost(), 1u);
  EXPECT_LE(sender_->TotalLost(), 9u);
}

TEST_F(HandoffTest, HotSwitchWiredToWirelessLosesNothing) {
  BuildTestbed(17);
  tb_->StartMobileOnWired(50);
  // The radio is already up and holds a care-of address: hot switch.
  tb_->ForceRadioUp();
  tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70), SubnetMask(16));

  StartProbes(Milliseconds(250));
  tb_->RunFor(Seconds(2));

  MobileHost::Attachment att = tb_->WirelessAttachment(70);
  bool switched = false;
  tb_->mobile->HotSwitchTo(att, [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(4));
  ASSERT_TRUE(switched);

  sender_->Stop();
  tb_->RunFor(Seconds(2));
  // Both interfaces stay alive: in-flight packets to the old care-of address
  // are still accepted. (Allow one loss for the radio's own random drops, as
  // the paper also observed.)
  EXPECT_LE(sender_->TotalLost(), 1u);
}

TEST_F(HandoffTest, HotSwitchWirelessToWiredLosesNothing) {
  BuildTestbed(19);
  tb_->StartMobileOnWireless(60);
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();
  tb_->mh->stack().ConfigureAddress(tb_->mh_eth, Ipv4Address(36, 8, 0, 55), SubnetMask(16));

  StartProbes(Milliseconds(250));
  tb_->RunFor(Seconds(2));

  bool switched = false;
  tb_->mobile->HotSwitchTo(tb_->WiredAttachment(55), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(4));
  ASSERT_TRUE(switched);

  sender_->Stop();
  tb_->RunFor(Seconds(2));
  EXPECT_LE(sender_->TotalLost(), 1u);
}

TEST_F(HandoffTest, RegistrationTimelineMatchesFigure7Shape) {
  BuildTestbed(23);
  tb_->StartMobileOnWired(50);

  bool switched = false;
  tb_->mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, 52), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(switched);

  const auto& tl = tb_->mobile->last_timeline();
  EXPECT_TRUE(tl.success);
  EXPECT_EQ(tl.retransmissions, 0);
  // Strictly ordered steps.
  EXPECT_LT(tl.start, tl.interface_configured);
  EXPECT_LT(tl.interface_configured, tl.route_changed);
  EXPECT_LT(tl.route_changed, tl.request_sent);
  EXPECT_LT(tl.request_sent, tl.reply_received);
  EXPECT_LT(tl.reply_received, tl.done);
  // Millisecond scale, same regime as the paper's 7.39 ms total / 4.79 ms
  // request->reply.
  EXPECT_GT(tl.Total().ToMillisF(), 4.0);
  EXPECT_LT(tl.Total().ToMillisF(), 12.0);
  EXPECT_GT(tl.RequestReply().ToMillisF(), 3.0);
  EXPECT_LT(tl.RequestReply().ToMillisF(), 7.0);
}

TEST_F(HandoffTest, TcpLiteSessionSurvivesColdSwitch) {
  BuildTestbed(29);
  tb_->StartMobileOnWired(50);

  // A long-lived "remote login": CH server, MH client via its home address.
  TcpLite ch_tcp(tb_->ch->stack());
  TcpLite mh_tcp(tb_->mh->stack());
  uint64_t server_bytes = 0;
  ch_tcp.Listen(23, [&](TcpLiteConnection* conn) {
    conn->SetDataHandler([&server_bytes, conn](const std::vector<uint8_t>& data) {
      server_bytes += data.size();
      conn->Send(data);  // Echo.
    });
  });

  uint64_t client_bytes = 0;
  TcpLiteConnection* client = mh_tcp.Connect(
      tb_->ch_address(), 23, [](bool ok) { ASSERT_TRUE(ok); });
  ASSERT_NE(client, nullptr);
  client->SetDataHandler(
      [&client_bytes](const std::vector<uint8_t>& data) { client_bytes += data.size(); });
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(client->established());

  client->Send(std::vector<uint8_t>(1000, 'a'));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(client_bytes, 1000u);

  // Cold switch to the radio mid-session.
  tb_->mobile->ColdSwitchTo(tb_->WirelessAttachment(60), nullptr);
  // Keep sending during the outage; retransmission covers the gap.
  client->Send(std::vector<uint8_t>(1000, 'b'));
  tb_->RunFor(Seconds(10));
  ASSERT_TRUE(tb_->mobile->registered());
  EXPECT_TRUE(client->established());
  EXPECT_EQ(server_bytes, 2000u);
  EXPECT_EQ(client_bytes, 2000u);

  // And back to wired.
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->mobile->ColdSwitchTo(tb_->WiredAttachment(51), nullptr);
  client->Send(std::vector<uint8_t>(1000, 'c'));
  tb_->RunFor(Seconds(10));
  EXPECT_EQ(server_bytes, 3000u);
  EXPECT_EQ(client_bytes, 3000u);
}

TEST_F(HandoffTest, TriangleRouteFallsBackUnderTransitFilter) {
  TestbedConfig cfg;
  cfg.seed = 31;
  cfg.transit_filter = true;
  // The CH must be beyond the visited subnet's router for the filter to see
  // (and drop) triangle-route packets.
  cfg.external_ch = true;
  tb_ = std::make_unique<Testbed>(cfg);
  tb_->StartMobileAtHome();
  tb_->StartMobileOnWired(50);

  // Try to enable the triangle-route optimization toward the CH.
  bool probe_ok = true;
  tb_->mobile->ProbeTriangleRoute(tb_->ch_address(), [&](bool ok) { probe_ok = ok; });
  tb_->RunFor(Seconds(5));
  EXPECT_FALSE(probe_ok);  // The filter killed the probe.
  EXPECT_EQ(tb_->mobile->counters().probe_fallbacks, 1u);
  // The fallback is cached: the policy for the CH is tunnel-home again.
  EXPECT_EQ(tb_->mobile->policy_table().LookupConst(tb_->ch_address()),
            MobilePolicy::kTunnelHome);

  // Traffic still flows (through the tunnel).
  StartProbes(Milliseconds(50));
  tb_->RunFor(Seconds(1));
  sender_->Stop();
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(sender_->TotalLost(), 0u);
}

TEST_F(HandoffTest, TriangleRouteWorksWithoutFilterAndShortensPath) {
  BuildTestbed(37);
  tb_->StartMobileOnWired(50);

  StartProbes(Milliseconds(50));
  tb_->RunFor(Seconds(1));
  const auto tunnel_rtts = sender_->RttsInWindow(Time::Zero(), tb_->sim.Now());

  bool probe_ok = false;
  tb_->mobile->ProbeTriangleRoute(tb_->ch_address(), [&](bool ok) { probe_ok = ok; });
  tb_->RunFor(Seconds(2));
  ASSERT_TRUE(probe_ok);

  const Time triangle_start = tb_->sim.Now();
  tb_->RunFor(Seconds(1));
  sender_->Stop();
  tb_->RunFor(Seconds(1));
  const auto triangle_rtts = sender_->RttsInWindow(triangle_start, Time::Max());

  ASSERT_FALSE(tunnel_rtts.empty());
  ASSERT_FALSE(triangle_rtts.empty());
  double tunnel_mean = 0, triangle_mean = 0;
  for (Duration d : tunnel_rtts) {
    tunnel_mean += d.ToMillisF();
  }
  tunnel_mean /= static_cast<double>(tunnel_rtts.size());
  for (Duration d : triangle_rtts) {
    triangle_mean += d.ToMillisF();
  }
  triangle_mean /= static_cast<double>(triangle_rtts.size());
  // The MH->CH leg no longer detours through the home agent.
  EXPECT_LT(triangle_mean, tunnel_mean);
}

}  // namespace
}  // namespace msn
