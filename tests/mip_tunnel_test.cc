// Unit tests for IP-in-IP encapsulation, the tunnel endpoint, and the VIF.
#include <gtest/gtest.h>

#include "src/mip/ipip.h"
#include "src/mip/vif.h"
#include "src/node/node.h"

namespace msn {
namespace {

Ipv4Datagram MakeInner() {
  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.header.src = Ipv4Address(36, 8, 0, 20);
  inner.header.dst = Ipv4Address(36, 135, 0, 10);
  inner.header.ttl = 60;
  inner.payload = {1, 2, 3, 4, 5};
  return inner;
}

TEST(IpIpTest, EncapsulateAddsExactlyOneHeader) {
  const Ipv4Datagram inner = MakeInner();
  const Ipv4Datagram outer =
      EncapsulateIpIp(inner, Ipv4Address(36, 135, 0, 1), Ipv4Address(36, 8, 0, 50));

  EXPECT_EQ(outer.header.protocol, IpProto::kIpIp);
  EXPECT_EQ(outer.header.src, Ipv4Address(36, 135, 0, 1));
  EXPECT_EQ(outer.header.dst, Ipv4Address(36, 8, 0, 50));
  // The paper's "20 bytes or more" encapsulation overhead: exactly 20 here.
  EXPECT_EQ(outer.Serialize().size(), inner.Serialize().size() + Ipv4Header::kSize);
}

TEST(IpIpTest, DecapsulateRecoversInnerExactly) {
  const Ipv4Datagram inner = MakeInner();
  const Ipv4Datagram outer =
      EncapsulateIpIp(inner, Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2));
  auto recovered = DecapsulateIpIp(outer.payload);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->header.src, inner.header.src);
  EXPECT_EQ(recovered->header.dst, inner.header.dst);
  EXPECT_EQ(recovered->header.ttl, inner.header.ttl);
  EXPECT_EQ(recovered->payload, inner.payload);
}

TEST(IpIpTest, DecapsulateRejectsGarbage) {
  const std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(DecapsulateIpIp(garbage).has_value());
}

TEST(IpIpTest, NestedEncapsulationUnwrapsOneLayerAtATime) {
  const Ipv4Datagram inner = MakeInner();
  const Ipv4Datagram mid =
      EncapsulateIpIp(inner, Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2));
  const Ipv4Datagram outer =
      EncapsulateIpIp(mid, Ipv4Address(3, 3, 3, 3), Ipv4Address(4, 4, 4, 4));
  auto layer1 = DecapsulateIpIp(outer.payload);
  ASSERT_TRUE(layer1.has_value());
  EXPECT_EQ(layer1->header.protocol, IpProto::kIpIp);
  auto layer2 = DecapsulateIpIp(layer1->payload);
  ASSERT_TRUE(layer2.has_value());
  EXPECT_EQ(layer2->payload, inner.payload);
}

class TunnelEndpointTest : public ::testing::Test {
 protected:
  TunnelEndpointTest() : sim_(4), node_(sim_, "host") {
    seg_ = std::make_unique<BroadcastMedium>(sim_, "seg", EthernetMediumParams());
    dev_ = node_.AddEthernet("eth0", seg_.get());
    dev_->ForceUp();
    node_.ConfigureInterface(dev_, "10.0.0.1/24");
  }

  Simulator sim_;
  std::unique_ptr<BroadcastMedium> seg_;
  Node node_;
  EthernetDevice* dev_;
};

TEST_F(TunnelEndpointTest, DecapsulatesAndDeliversInner) {
  IpIpTunnelEndpoint endpoint(node_.stack());
  int delivered = 0;
  node_.stack().RegisterProtocolHandler(
      IpProto::kTcp,
      [&](const Ipv4Header& h, const Packet&, NetDevice*) {
        EXPECT_EQ(h.dst, Ipv4Address(10, 0, 0, 1));
        ++delivered;
      });

  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kTcp;
  inner.header.src = Ipv4Address(9, 9, 9, 9);
  inner.header.dst = Ipv4Address(10, 0, 0, 1);  // Local on this node.
  inner.payload = {1};
  const Ipv4Datagram outer =
      EncapsulateIpIp(inner, Ipv4Address(8, 8, 8, 8), Ipv4Address(10, 0, 0, 1));
  node_.stack().InjectReceivedDatagram(outer, nullptr);
  sim_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(endpoint.packets_decapsulated(), 1u);
}

TEST_F(TunnelEndpointTest, InspectorCanVeto) {
  IpIpTunnelEndpoint endpoint(node_.stack());
  endpoint.SetInspector([](const Ipv4Header&, const Ipv4Datagram&) { return false; });
  int delivered = 0;
  node_.stack().RegisterProtocolHandler(
      IpProto::kTcp,
      [&](const Ipv4Header&, const Packet&, NetDevice*) { ++delivered; });

  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kTcp;
  inner.header.dst = Ipv4Address(10, 0, 0, 1);
  const Ipv4Datagram outer =
      EncapsulateIpIp(inner, Ipv4Address(8, 8, 8, 8), Ipv4Address(10, 0, 0, 1));
  node_.stack().InjectReceivedDatagram(outer, nullptr);
  sim_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(endpoint.packets_decapsulated(), 0u);
}

TEST_F(TunnelEndpointTest, CorruptInnerCounted) {
  IpIpTunnelEndpoint endpoint(node_.stack());
  Ipv4Datagram outer;
  outer.header.protocol = IpProto::kIpIp;
  outer.header.dst = Ipv4Address(10, 0, 0, 1);
  outer.payload = {1, 2, 3};  // Not a valid datagram.
  node_.stack().InjectReceivedDatagram(outer, nullptr);
  sim_.Run();
  EXPECT_EQ(endpoint.decapsulation_errors(), 1u);
}

TEST_F(TunnelEndpointTest, VifHandsDatagramToEncapHandler) {
  auto vif_owned = std::make_unique<VirtualInterface>(sim_, "vif");
  VirtualInterface* vif = vif_owned.get();
  std::optional<Ipv4Datagram> seen;
  vif->SetEncapHandler([&](const Ipv4Header& header, const Packet& wire) {
    Ipv4Datagram dg;
    dg.header = header;
    dg.payload.assign(wire.begin() + Ipv4Header::kSize, wire.end());
    seen = std::move(dg);
  });
  node_.AdoptDevice(std::move(vif_owned));

  // Route everything to 42.0.0.0/8 through the VIF.
  node_.stack().routes().Add(
      RouteEntry{Subnet::MustParse("42.0.0.0/8"), Ipv4Address::Any(), vif,
                 Ipv4Address(10, 0, 0, 1), 0});
  node_.stack().SendDatagram(Ipv4Address::Any(), Ipv4Address(42, 1, 2, 3), IpProto::kUdp,
                             {7, 7});
  sim_.Run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->header.dst, Ipv4Address(42, 1, 2, 3));
  EXPECT_EQ(seen->header.src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(seen->payload, (std::vector<uint8_t>{7, 7}));
  EXPECT_EQ(vif->packets_encapsulated(), 1u);
}

TEST_F(TunnelEndpointTest, VifWithoutHandlerDropsGracefully) {
  auto vif_owned = std::make_unique<VirtualInterface>(sim_, "vif");
  VirtualInterface* vif = vif_owned.get();
  node_.AdoptDevice(std::move(vif_owned));
  EthernetFrame frame;
  frame.ethertype = EtherType::kIpv4;
  frame.payload = {1, 2, 3};
  EXPECT_FALSE(vif->Transmit(frame));
}

TEST_F(TunnelEndpointTest, VifIsAlwaysUp) {
  VirtualInterface vif(sim_, "vif");
  EXPECT_TRUE(vif.IsUp());
  EXPECT_EQ(vif.bandwidth_bps(), 0u);
}

}  // namespace
}  // namespace msn
