// Synthetic registration load: a fleet of lightweight mobile-host stand-ins
// sharing one node and one UDP socket, used to drive a home agent to
// fleet scale (bench_ha_scaling) and to overload it on purpose (the
// fuzzer's overload stanza). Each client is ~40 bytes of state instead of a
// full Node + MobileHost, so sweeps of 100k+ registrants stay cheap.
//
// Each client sends one registration (home addresses are contiguous from
// `first_home`), retransmits with the same decorrelated-jitter schedule as
// MobileHost, treats a kDeniedInsufficientResources reply as "back off and
// try again" without consuming its retransmit budget, and answers a
// restarted HA's kDeniedIdentificationMismatch with a fresh-id re-send —
// mirroring the real host's convergence behavior under admission control
// and across daemon restarts (DESIGN.md §17).
#ifndef MSN_SRC_MIP_REG_LOAD_H_
#define MSN_SRC_MIP_REG_LOAD_H_

#include <memory>
#include <vector>

#include "src/mip/messages.h"
#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/util/stats.h"

namespace msn {

class RegistrationLoadGenerator {
 public:
  struct Config {
    Ipv4Address home_agent;
    // Client i claims home address first_home + i. The HA's home_subnet must
    // cover the whole range.
    Ipv4Address first_home;
    uint32_t count = 1;
    // Client i registers care-of address first_care_of + (i % care_of_span);
    // the span bounds the range so huge fleets reuse care-of addresses
    // rather than walking into a neighboring subnet.
    Ipv4Address first_care_of;
    uint32_t care_of_span = 60000;
    uint16_t lifetime_sec = 300;
    // Client i's first send happens at start_delay + i * interarrival; the
    // interarrival spacing is the offered load (rate = 1/interarrival).
    Duration start_delay = Seconds(1);
    Duration interarrival = Microseconds(100);
    // Retransmission policy, matching MobileHost's decorrelated jitter.
    Duration retransmit_interval = Seconds(1);
    Duration retransmit_max_interval = Seconds(8);
    int max_retransmits = 4;
    // Identification-resync budget, matching MobileHost: a restarted HA
    // denies each wiped home's first registration with a mismatch to
    // re-anchor its replay window; the client re-sends with a fresh
    // identification. One per restart, so the budget bounds restarts
    // survived, not retries.
    int max_resyncs = 8;
  };

  struct Stats {
    uint64_t sent = 0;
    uint64_t retransmissions = 0;
    uint64_t accepted = 0;
    // kDeniedInsufficientResources replies (each triggers a backoff retry).
    uint64_t admission_denied = 0;
    // kDeniedIdentificationMismatch replies answered with a fresh-id re-send.
    uint64_t resyncs = 0;
    // Any other denial (or an exhausted resync budget): terminal.
    uint64_t denied_other = 0;
    // Clients that exhausted max_retransmits without an answer.
    uint64_t gave_up = 0;
  };

  RegistrationLoadGenerator(Node& node, Config config);
  ~RegistrationLoadGenerator();

  RegistrationLoadGenerator(const RegistrationLoadGenerator&) = delete;
  RegistrationLoadGenerator& operator=(const RegistrationLoadGenerator&) = delete;

  // Schedules every client's first send. Call once.
  void Start();

  const Stats& stats() const { return stats_; }
  // First-send to accepted-reply latency per completed client, in
  // milliseconds. Includes retransmit and admission-backoff waits, so under
  // overload this is the "completion latency" the bench reports.
  const RunningStats& completion_stats_ms() const { return completion_stats_ms_; }
  // Raw completion samples (one per accepted client) for exact percentiles.
  const std::vector<double>& completion_samples_ms() const { return completion_samples_ms_; }
  // Clients whose registration was accepted.
  uint64_t completed() const { return stats_.accepted; }
  uint32_t client_count() const { return config_.count; }
  // When the first request left / the last acceptance landed (throughput
  // window); Time() until the respective event has happened.
  Time first_send_time() const { return first_send_time_; }
  Time last_accept_time() const { return last_accept_time_; }

 private:
  struct Client {
    Ipv4Address home;
    Ipv4Address care_of;
    uint64_t next_identification = 1;
    uint64_t outstanding = 0;  // 0 = nothing in flight.
    int retransmits_left = 0;
    int resyncs_left = 0;
    Duration backoff;  // Decorrelated-jitter state; zero before first wait.
    Time first_send;
    bool done = false;
    EventId retransmit_event;
  };

  void SendRequest(size_t index, bool is_retransmit);
  void OnTimeout(size_t index);
  Duration NextDelay(Client& client);
  void OnDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  std::vector<Client> clients_;
  Stats stats_;
  RunningStats completion_stats_ms_;
  std::vector<double> completion_samples_ms_;
  Time first_send_time_;
  Time last_accept_time_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_REG_LOAD_H_
