// Property-style and parameterized tests: invariants checked over random
// inputs and parameter sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/mip/ipip.h"
#include "src/mip/messages.h"
#include "src/mip/policy_table.h"
#include "src/net/checksum.h"
#include "src/net/datapath_tuning.h"
#include "src/net/headers.h"
#include "src/node/routing_table.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/rng.h"

namespace msn {
namespace {

// --- Checksum properties ------------------------------------------------------------

class ChecksumProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChecksumProperty, AppendedChecksumVerifies) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformInt(uint64_t{1}, uint64_t{300}));
    std::vector<uint8_t> data(len);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const uint16_t sum = ComputeInternetChecksum(data);
    std::vector<uint8_t> with_sum = data;
    // Checksums are computed over even alignment in practice; pad odd buffers.
    if (with_sum.size() % 2 != 0) {
      with_sum.push_back(0);
    }
    const uint16_t padded_sum =
        with_sum.size() == data.size() ? sum : ComputeInternetChecksum(with_sum);
    with_sum.push_back(static_cast<uint8_t>(padded_sum >> 8));
    with_sum.push_back(static_cast<uint8_t>(padded_sum & 0xff));
    EXPECT_TRUE(VerifyInternetChecksum(with_sum.data(), with_sum.size()));
  }
}

TEST_P(ChecksumProperty, SingleWordCorruptionAlwaysDetected) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> data(64);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const uint16_t sum = ComputeInternetChecksum(data);
    data.push_back(static_cast<uint8_t>(sum >> 8));
    data.push_back(static_cast<uint8_t>(sum & 0xff));
    ASSERT_TRUE(VerifyInternetChecksum(data.data(), data.size()));

    // Any change to one 16-bit word that alters its value is detected.
    const size_t word = static_cast<size_t>(rng.UniformInt(uint64_t{0}, uint64_t{31}));
    const uint8_t flip = static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{255}));
    std::vector<uint8_t> corrupted = data;
    corrupted[word * 2] ^= flip;
    EXPECT_FALSE(VerifyInternetChecksum(corrupted.data(), corrupted.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- Header round-trip properties ------------------------------------------------------

class HeaderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeaderProperty, Ipv4DatagramRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Ipv4Datagram dg;
    dg.header.tos = static_cast<uint8_t>(rng.NextU64());
    dg.header.identification = static_cast<uint16_t>(rng.NextU64());
    dg.header.ttl = static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{255}));
    dg.header.protocol = static_cast<IpProto>(rng.UniformInt(uint64_t{1}, uint64_t{150}));
    dg.header.src = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    dg.header.dst = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    dg.payload.resize(static_cast<size_t>(rng.UniformInt(uint64_t{0}, uint64_t{512})));
    for (auto& b : dg.payload) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    auto parsed = Ipv4Datagram::Parse(dg.Serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.tos, dg.header.tos);
    EXPECT_EQ(parsed->header.identification, dg.header.identification);
    EXPECT_EQ(parsed->header.ttl, dg.header.ttl);
    EXPECT_EQ(parsed->header.protocol, dg.header.protocol);
    EXPECT_EQ(parsed->header.src, dg.header.src);
    EXPECT_EQ(parsed->header.dst, dg.header.dst);
    EXPECT_EQ(parsed->payload, dg.payload);
  }
}

TEST_P(HeaderProperty, EncapsulationIsLossless) {
  Rng rng(GetParam() + 7);
  for (int trial = 0; trial < 100; ++trial) {
    Ipv4Datagram inner;
    inner.header.protocol = IpProto::kUdp;
    inner.header.src = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    inner.header.dst = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    inner.payload.resize(static_cast<size_t>(rng.UniformInt(uint64_t{0}, uint64_t{256})));
    for (auto& b : inner.payload) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const Ipv4Address outer_src(static_cast<uint32_t>(rng.NextU64()));
    const Ipv4Address outer_dst(static_cast<uint32_t>(rng.NextU64()));
    const Ipv4Datagram outer = EncapsulateIpIp(inner, outer_src, outer_dst);
    // Exactly one header of overhead.
    EXPECT_EQ(outer.Serialize().size(), inner.Serialize().size() + Ipv4Header::kSize);
    auto recovered = DecapsulateIpIp(outer.payload);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->Serialize(), inner.Serialize());
  }
}

TEST_P(HeaderProperty, RegistrationMessagesRoundTrip) {
  Rng rng(GetParam() + 13);
  for (int trial = 0; trial < 100; ++trial) {
    RegistrationRequest req;
    req.flags = static_cast<uint8_t>(rng.NextU64());
    req.lifetime_sec = static_cast<uint16_t>(rng.NextU64());
    req.home_address = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    req.home_agent = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    req.care_of_address = Ipv4Address(static_cast<uint32_t>(rng.NextU64()));
    req.identification = rng.NextU64();
    auto parsed = RegistrationRequest::Parse(req.Serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->flags, req.flags);
    EXPECT_EQ(parsed->lifetime_sec, req.lifetime_sec);
    EXPECT_EQ(parsed->home_address, req.home_address);
    EXPECT_EQ(parsed->care_of_address, req.care_of_address);
    EXPECT_EQ(parsed->identification, req.identification);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderProperty, ::testing::Values(11, 22, 33));

// --- Longest-prefix-match reference model ------------------------------------------------

class LpmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpmProperty, MatchesBruteForceReference) {
  Rng rng(GetParam());
  RoutingTable table;
  struct Ref {
    Subnet subnet;
    int metric;
    size_t order;
  };
  std::vector<Ref> refs;
  for (size_t i = 0; i < 40; ++i) {
    const int prefix = static_cast<int>(rng.UniformInt(uint64_t{0}, uint64_t{32}));
    const Subnet subnet(Ipv4Address(static_cast<uint32_t>(rng.NextU64())),
                        SubnetMask(prefix));
    const int metric = static_cast<int>(rng.UniformInt(uint64_t{0}, uint64_t{3}));
    table.Add(RouteEntry{subnet, Ipv4Address::Any(), nullptr, Ipv4Address::Any(), metric});
    refs.push_back(Ref{subnet, metric, i});
  }

  for (int probe = 0; probe < 500; ++probe) {
    const Ipv4Address dst(static_cast<uint32_t>(rng.NextU64()));
    // Brute-force reference: longest prefix, then lowest metric, then first
    // inserted.
    const Ref* best = nullptr;
    for (const Ref& ref : refs) {
      if (!ref.subnet.Contains(dst)) {
        continue;
      }
      if (best == nullptr || ref.subnet.prefix_len() > best->subnet.prefix_len() ||
          (ref.subnet.prefix_len() == best->subnet.prefix_len() && ref.metric < best->metric)) {
        best = &ref;
      }
    }
    auto got = table.Lookup(dst);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->dest, best->subnet);
      EXPECT_EQ(got->metric, best->metric);
    }
  }
}

TEST_P(LpmProperty, PolicyTableMatchesRoutingTableSemantics) {
  Rng rng(GetParam() + 99);
  MobilePolicyTable policy;
  RoutingTable reference;
  const MobilePolicy policies[] = {MobilePolicy::kTunnelHome, MobilePolicy::kTriangle,
                                   MobilePolicy::kEncapDirect, MobilePolicy::kDirect};
  for (int i = 0; i < 30; ++i) {
    const int prefix = static_cast<int>(rng.UniformInt(uint64_t{1}, uint64_t{32}));
    const Subnet subnet(Ipv4Address(static_cast<uint32_t>(rng.NextU64())),
                        SubnetMask(prefix));
    const MobilePolicy p = policies[rng.UniformInt(uint64_t{0}, uint64_t{3})];
    policy.Set(subnet, p);
    // Mirror into a routing table using the metric to encode the policy.
    reference.RemoveWhere([&](const RouteEntry& e) { return e.dest == subnet; });
    reference.Add(
        RouteEntry{subnet, Ipv4Address::Any(), nullptr, Ipv4Address::Any(), static_cast<int>(p)});
  }
  for (int probe = 0; probe < 500; ++probe) {
    const Ipv4Address dst(static_cast<uint32_t>(rng.NextU64()));
    auto route = reference.Lookup(dst);
    const MobilePolicy got = policy.LookupConst(dst);
    if (route.has_value()) {
      EXPECT_EQ(static_cast<int>(got), route->metric);
    } else {
      EXPECT_EQ(got, MobilePolicy::kTunnelHome);
    }
  }
}

TEST_P(LpmProperty, InsertRemoveChurnMatchesReference) {
  Rng rng(GetParam() + 7);
  MobilePolicyTable policy;
  RoutingTable reference;
  const MobilePolicy policies[] = {MobilePolicy::kTunnelHome, MobilePolicy::kTriangle,
                                   MobilePolicy::kEncapDirect, MobilePolicy::kDirect};
  std::vector<Subnet> live;
  for (int op = 0; op < 200; ++op) {
    if (!live.empty() && rng.Bernoulli(0.35)) {
      const size_t victim = rng.UniformInt(uint64_t{0}, uint64_t{live.size() - 1});
      const Subnet subnet = live[victim];
      live.erase(live.begin() + static_cast<long>(victim));
      EXPECT_TRUE(policy.Remove(subnet));
      reference.RemoveWhere([&](const RouteEntry& e) { return e.dest == subnet; });
    } else {
      const int prefix = static_cast<int>(rng.UniformInt(uint64_t{1}, uint64_t{32}));
      const Subnet subnet(Ipv4Address(static_cast<uint32_t>(rng.NextU64())),
                          SubnetMask(prefix));
      const MobilePolicy p = policies[rng.UniformInt(uint64_t{0}, uint64_t{3})];
      if (std::find(live.begin(), live.end(), subnet) == live.end()) {
        live.push_back(subnet);
      }
      policy.Set(subnet, p);
      reference.RemoveWhere([&](const RouteEntry& e) { return e.dest == subnet; });
      reference.Add(RouteEntry{subnet, Ipv4Address::Any(), nullptr, Ipv4Address::Any(),
                               static_cast<int>(p)});
    }
    // Spot-check LPM agreement after every mutation.
    for (int probe = 0; probe < 20; ++probe) {
      const Ipv4Address dst(static_cast<uint32_t>(rng.NextU64()));
      auto route = reference.Lookup(dst);
      const MobilePolicy got = policy.LookupConst(dst);
      if (route.has_value()) {
        EXPECT_EQ(static_cast<int>(got), route->metric);
      } else {
        EXPECT_EQ(got, MobilePolicy::kTunnelHome);
      }
    }
  }
}

TEST_P(LpmProperty, FallbackAlwaysTerminatesAtTunnelHome) {
  // Paper §3.3: when an optimized route (triangle or direct encapsulation)
  // fails its reachability probe, the policy fallback must land the
  // destination on kTunnelHome — from any table state, in one step, and
  // stay there (idempotent), without disturbing unrelated destinations.
  Rng rng(GetParam() + 13);
  MobilePolicyTable policy;
  const MobilePolicy policies[] = {MobilePolicy::kTunnelHome, MobilePolicy::kTriangle,
                                   MobilePolicy::kEncapDirect, MobilePolicy::kDirect};
  for (int i = 0; i < 30; ++i) {
    const int prefix = static_cast<int>(rng.UniformInt(uint64_t{1}, uint64_t{28}));
    const Subnet subnet(Ipv4Address(static_cast<uint32_t>(rng.NextU64())),
                        SubnetMask(prefix));
    policy.Set(subnet, policies[rng.UniformInt(uint64_t{0}, uint64_t{3})]);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const Ipv4Address dst(static_cast<uint32_t>(rng.NextU64()));
    const Ipv4Address witness(static_cast<uint32_t>(rng.NextU64()));
    const MobilePolicy witness_before = policy.LookupConst(witness);

    policy.RecordFallback(dst);
    EXPECT_EQ(policy.LookupConst(dst), MobilePolicy::kTunnelHome);
    policy.RecordFallback(dst);
    EXPECT_EQ(policy.LookupConst(dst), MobilePolicy::kTunnelHome);

    if (witness != dst) {
      EXPECT_EQ(policy.LookupConst(witness), witness_before)
          << "fallback for " << dst.ToString() << " disturbed "
          << witness.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperty, ::testing::Values(101, 202, 303, 404));

// --- Same-subnet switch loss sweep (paper §4 experiment 1, 20 iterations) ------------------

class AddressSwitchSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddressSwitchSweep, LosesAtMostOneProbeAt10ms) {
  TestbedConfig cfg;
  cfg.seed = GetParam();
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(10)});
  sender.Start();
  // Random phase between the probe stream and the switch.
  tb.RunFor(Milliseconds(500) + Microseconds(static_cast<int64_t>(
                                    tb.sim.rng().UniformInt(uint64_t{0}, uint64_t{9999}))));
  bool ok = false;
  tb.mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, 51), [&](bool r) { ok = r; });
  tb.RunFor(Milliseconds(500));
  sender.Stop();
  tb.RunFor(Seconds(1));
  ASSERT_TRUE(ok);
  // Paper: the vulnerable interval is under 10 ms, so at most one probe dies.
  EXPECT_LE(sender.TotalLost(), 1u);
}

INSTANTIATE_TEST_SUITE_P(TwentyIterations, AddressSwitchSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// --- Hot switch never loses (sweep over seeds) ------------------------------------------------

class HotSwitchSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HotSwitchSweep, NoLossAcrossSeeds) {
  TestbedConfig cfg;
  cfg.seed = GetParam() * 7919;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  tb.ForceRadioUp();
  tb.mh->stack().ConfigureAddress(tb.mh_radio, Ipv4Address(36, 134, 0, 70), SubnetMask(16));

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();
  tb.RunFor(Seconds(1));
  tb.mobile->HotSwitchTo(tb.WirelessAttachment(70), nullptr);
  tb.RunFor(Seconds(3));
  sender.Stop();
  tb.RunFor(Seconds(2));
  EXPECT_LE(sender.TotalLost(), 1u);  // Radio random drop tolerance.
}

INSTANTIATE_TEST_SUITE_P(TenIterations, HotSwitchSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

// --- Registration timeline statistics over repeated switches ---------------------------------

TEST(TimelineStatistics, TenSwitchesAverageNearPaperNumbers) {
  TestbedConfig cfg;
  cfg.seed = 555;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  double total_sum = 0, reqrep_sum = 0;
  const int kRuns = 10;
  for (int i = 0; i < kRuns; ++i) {
    bool ok = false;
    tb.mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, static_cast<uint8_t>(60 + (i % 2))),
                                   [&](bool r) { ok = r; });
    tb.RunFor(Seconds(2));
    ASSERT_TRUE(ok);
    total_sum += tb.mobile->last_timeline().Total().ToMillisF();
    reqrep_sum += tb.mobile->last_timeline().RequestReply().ToMillisF();
  }
  const double total_mean = total_sum / kRuns;
  const double reqrep_mean = reqrep_sum / kRuns;
  // Paper Figure 7: total 7.39 ms, request->reply 4.79 ms. Accept +-25%.
  EXPECT_GT(total_mean, 7.39 * 0.75);
  EXPECT_LT(total_mean, 7.39 * 1.25);
  EXPECT_GT(reqrep_mean, 4.79 * 0.75);
  EXPECT_LT(reqrep_mean, 4.79 * 1.25);
}

// --- Batch-ordering property ---------------------------------------------------------

// FIFO delivery order must survive the burst dequeue: whatever burst size the
// tuning picks, same-priority frames leave a zero-serialization device in
// exactly the order they were queued, within one burst and across burst
// boundaries. Each seed draws its own burst_max and clump schedule.
class BurstOrderingProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  ~BurstOrderingProperty() override { GlobalDatapathTuning().Reset(); }
};

TEST_P(BurstOrderingProperty, FifoPreservedWithinAndAcrossBursts) {
  Rng rng(GetParam());
  GlobalDatapathTuning().Reset();
  GlobalDatapathTuning().device_burst_max =
      static_cast<size_t>(rng.UniformInt(uint64_t{1}, uint64_t{8}));

  Simulator sim(GetParam());
  BroadcastMedium seg(sim, "seg", EthernetMediumParams());
  Node a(sim, "a");
  Node b(sim, "b");
  EthernetDevice* a_dev = a.AddEthernet("eth0", &seg);
  EthernetDevice* b_dev = b.AddEthernet("eth0", &seg);
  a_dev->ForceUp();
  b_dev->ForceUp();
  // Zero serialization delay: every queued frame's completion time
  // coincides, which is exactly the shape the burst drain batches.
  a_dev->set_bandwidth_bps(0);
  a.ConfigureInterface(a_dev, "10.0.0.1/24");
  b.ConfigureInterface(b_dev, "10.0.0.2/24");

  // FIFO is asserted at the transmit tap — the burst drain's output. (The
  // far-end receive order is not FIFO even without bursts: the broadcast
  // medium draws independent per-frame propagation jitter.)
  std::vector<uint16_t> transmitted;
  a_dev->SetTap([&](const EthernetFrame& frame, NetDevice::TapDirection dir) {
    if (dir != NetDevice::TapDirection::kTransmit ||
        frame.ethertype != EtherType::kIpv4) {
      return;
    }
    const auto bytes = frame.payload.ToVector();
    ASSERT_EQ(bytes.size(), Ipv4Header::kSize + 2);
    transmitted.push_back(static_cast<uint16_t>(
        (bytes[Ipv4Header::kSize] << 8) |
        bytes[Ipv4Header::kSize + 1]));
  });
  std::vector<uint16_t> received;
  b.stack().RegisterProtocolHandler(
      IpProto::kTcp, [&](const Ipv4Header&, const Packet& payload, NetDevice*) {
        const auto bytes = payload.ToVector();
        ASSERT_EQ(bytes.size(), 2u);
        received.push_back(static_cast<uint16_t>((bytes[0] << 8) | bytes[1]));
      });

  // Clumps of sends at randomized instants: several frames hit the queue in
  // one event wave (forcing multi-frame bursts and, past burst_max,
  // burst-boundary crossings), clumps land at distinct times.
  uint16_t next_seq = 0;
  Time at = Time::Zero();
  const int clumps = static_cast<int>(rng.UniformInt(uint64_t{4}, uint64_t{8}));
  for (int c = 0; c < clumps; ++c) {
    at = at + Microseconds(static_cast<int64_t>(rng.UniformInt(uint64_t{1}, uint64_t{500})));
    const int size = static_cast<int>(rng.UniformInt(uint64_t{1}, uint64_t{20}));
    sim.ScheduleAt(at, [&a, next_seq, size] {
      for (int i = 0; i < size; ++i) {
        const uint16_t seq = static_cast<uint16_t>(next_seq + i);
        a.stack().SendDatagram(
            Ipv4Address::Any(), Ipv4Address(10, 0, 0, 2), IpProto::kTcp,
            {static_cast<uint8_t>(seq >> 8), static_cast<uint8_t>(seq & 0xff)});
      }
    });
    next_seq = static_cast<uint16_t>(next_seq + size);
  }
  sim.Run();

  ASSERT_EQ(transmitted.size(), static_cast<size_t>(next_seq))
      << "device dropped or duplicated frames";
  for (uint16_t i = 0; i < next_seq; ++i) {
    ASSERT_EQ(transmitted[i], i)
        << "FIFO order broken at frame " << i << " with burst_max "
        << GlobalDatapathTuning().device_burst_max;
  }
  // Lossless medium: everything also arrives, in whatever jittered order.
  EXPECT_EQ(received.size(), static_cast<size_t>(next_seq));

  // Every data frame left through the burst path, and no burst overran the
  // configured cap.
  const NetDevice::Counters& tx = a_dev->counters();
  EXPECT_EQ(tx.tx_burst_frames, tx.tx_frames);
  EXPECT_GE(tx.tx_bursts,
            (tx.tx_frames + GlobalDatapathTuning().device_burst_max - 1) /
                GlobalDatapathTuning().device_burst_max);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstOrderingProperty,
                         ::testing::Values(7, 19, 23, 77, 1996));

}  // namespace
}  // namespace msn
