// Free-list pool of byte buffers for packet storage.
//
// Every frame that crosses a link needs one contiguous wire-image buffer.
// Allocating and freeing those per hop is the dominant allocator traffic in a
// forwarding simulation, so the pool keeps returned buffers on a free list
// and hands them back with their capacity intact. The simulation core is
// single-threaded by design (see DESIGN.md), so there is no locking.
//
// Layering: util must not depend on telemetry, so the pool exposes a raw
// stats snapshot; src/net/packet.cc registers registry-backed probe gauges
// over it.
#ifndef MSN_SRC_UTIL_BUFFER_POOL_H_
#define MSN_SRC_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msn {

class BufferPool {
 public:
  // Default block covers an Ethernet MTU frame (1500 B payload + link and
  // tunnel headers) with headroom to spare; larger requests bypass the pool.
  static constexpr size_t kDefaultBlockBytes = 2048;
  // Free-list cap: the pool retains at most this many idle blocks (32 MiB at
  // the default block size). Sized so a burst of ~10k in-flight packets —
  // the scale of the datapath benches — recycles entirely from the free
  // list; memory is only ever held after such a burst actually happened.
  static constexpr size_t kDefaultMaxFree = 16384;

  struct Stats {
    uint64_t hits = 0;       // Acquire served from the free list.
    uint64_t misses = 0;     // Acquire that had to allocate a new block.
    uint64_t oversize = 0;   // Acquire larger than a block (never pooled).
    uint64_t released = 0;   // Buffers handed back via Release.
    uint64_t discarded = 0;  // Released buffers dropped (free list full or
                             // foreign capacity).
    uint64_t outstanding = 0;  // Acquired buffers not yet released.
    size_t free_blocks = 0;    // Blocks sitting on the free list now.
    uint64_t batch_acquires = 0;  // AcquireBatch calls (bulk refills).
    uint64_t batch_releases = 0;  // ReleaseBatch calls (bulk drains).
  };

  explicit BufferPool(size_t block_bytes = kDefaultBlockBytes,
                      size_t max_free = kDefaultMaxFree);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a buffer of exactly `size` bytes (value-initialized only when
  // freshly allocated; pooled blocks carry stale bytes — callers overwrite).
  // Requests at most block_bytes() come from the free list when possible.
  [[nodiscard]] std::vector<uint8_t> Acquire(size_t size);

  // Hands a buffer back. Only buffers whose capacity matches a pool block are
  // kept; anything else (oversize or externally built) is freed here.
  void Release(std::vector<uint8_t>&& buf);

  // Bulk refill for the packet arena (src/net/packet_arena.h): appends
  // `count` block-sized buffers of `size` bytes each to `out` in one pool
  // interaction. Per-buffer hits/misses accounting is unchanged; the
  // amortization shows up in batch_acquires staying orders of magnitude
  // below hits + misses. Requires size <= block_bytes().
  void AcquireBatch(size_t size, size_t count, std::vector<std::vector<uint8_t>>& out);

  // Bulk release: drains `bufs` back to the free list in one pool
  // interaction. Same per-buffer retention rule as Release.
  void ReleaseBatch(std::vector<std::vector<uint8_t>>& bufs);

  size_t block_bytes() const { return block_bytes_; }
  const Stats& stats() const { return stats_; }

  // Drops all pooled blocks (tests; bounding peak memory between phases).
  void Trim();

 private:
  const size_t block_bytes_;
  const size_t max_free_;
  std::vector<std::vector<uint8_t>> free_list_;
  Stats stats_;
};

// The process-wide pool packet storage draws from. A function-local static so
// any static-lifetime Packet is safe regardless of construction order.
BufferPool& DefaultBufferPool();

}  // namespace msn

#endif  // MSN_SRC_UTIL_BUFFER_POOL_H_
