// Experiment E4 (paper §3.2): routing optimizations for outgoing packets.
//
// Measures, for each sending policy the paper describes, the UDP echo
// round-trip time between a visiting mobile host and a correspondent beyond
// the visited network, plus bytes on the wire (encapsulation overhead), with
// the visited network's transit filter off and on:
//
//   tunnel-home  — basic protocol: both directions via the home agent;
//   triangle     — direct to CH with home source (fails under the filter);
//   encap-direct — encapsulated direct to CH with local outer source
//                  (filter-proof, still pays 20 bytes);
//   direct       — local role (no mobility support; works but the CH replies
//                  to the care-of address, so it only suits short exchanges).
//
// Also demonstrates probe-driven fallback: with the filter on, a triangle
// probe fails with ICMP admin-prohibited and the Mobile Policy Table caches
// a tunnel fallback for that correspondent.
#include <cstdio>

#include "src/mip/ipip.h"
#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct PolicyResult {
  double rtt_ms_mean = 0;
  double rtt_ms_stddev = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
};

// Runs a UDP echo workload under one policy; CH is on the campus subnet
// (beyond the visited network's router).
PolicyResult RunPolicy(MobilePolicy policy, bool transit_filter, uint64_t seed,
                       Duration probe_window) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.external_ch = true;
  cfg.transit_filter = transit_filter;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  tb.mobile->policy_table().Set(Subnet(tb.ch_address(), SubnetMask(32)), policy);

  // encap-direct requires a correspondent with "transparent IP-in-IP
  // decapsulation capability such as is found in recent Linux development
  // kernels" (paper §3.2): equip the CH with a tunnel endpoint.
  std::unique_ptr<IpIpTunnelEndpoint> ch_decap;
  if (policy == MobilePolicy::kEncapDirect) {
    ch_decap = std::make_unique<IpIpTunnelEndpoint>(tb.ch->stack());
  }

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(50)});
  sender.Start();
  tb.RunFor(probe_window);
  sender.Stop();
  tb.RunFor(Seconds(1));

  PolicyResult result;
  result.sent = sender.sent();
  result.received = sender.received();
  RunningStats rtt;
  for (Duration d : sender.RttsInWindow(Time::Zero(), Time::Max())) {
    rtt.Add(d.ToMillisF());
  }
  result.rtt_ms_mean = rtt.mean();
  result.rtt_ms_stddev = rtt.stddev();
  return result;
}

void PrintRow(const char* name, const PolicyResult& off, const PolicyResult& on) {
  char off_buf[64], on_buf[64];
  if (off.received > 0) {
    std::snprintf(off_buf, sizeof(off_buf), "%6.2f ms (%4.2f)  %3llu/%-3llu", off.rtt_ms_mean,
                  off.rtt_ms_stddev, static_cast<unsigned long long>(off.received),
                  static_cast<unsigned long long>(off.sent));
  } else {
    std::snprintf(off_buf, sizeof(off_buf), "no echoes        %3llu/%-3llu",
                  static_cast<unsigned long long>(off.received),
                  static_cast<unsigned long long>(off.sent));
  }
  if (on.received > 0) {
    std::snprintf(on_buf, sizeof(on_buf), "%6.2f ms (%4.2f)  %3llu/%-3llu", on.rtt_ms_mean,
                  on.rtt_ms_stddev, static_cast<unsigned long long>(on.received),
                  static_cast<unsigned long long>(on.sent));
  } else {
    std::snprintf(on_buf, sizeof(on_buf), "ALL LOST         %3llu/%-3llu",
                  static_cast<unsigned long long>(on.received),
                  static_cast<unsigned long long>(on.sent));
  }
  std::printf("%-14s | %-28s | %-28s\n", name, off_buf, on_buf);
}

int Main() {
  const Duration probe_window = BenchSmokeMode() ? Seconds(1) : Seconds(3);

  std::printf("==============================================================\n");
  std::printf("E4: routing optimizations for outgoing packets (paper S3.2)\n");
  std::printf("UDP echo CH(campus) <-> MH(visiting 36.8); RTT mean (stddev),\n");
  std::printf("echoes received/sent; %.0f s of probes every 50 ms\n",
              probe_window.ToSecondsF());
  std::printf("==============================================================\n\n");

  BenchReport report("route_opt",
                     "E4: outgoing-packet routing policies vs the transit filter");
  report.set_seed(7100);
  report.AddParam("probe_window_s", probe_window.ToSecondsF());
  report.AddParam("probe_interval_ms", 50);

  std::printf("%-14s | %-28s | %-28s\n", "MH tx policy", "filter OFF", "filter ON");
  std::printf("%.14s-+-%.28s-+-%.28s\n", "--------------",
              "----------------------------", "----------------------------");
  struct Policy {
    const char* name;
    MobilePolicy policy;
  };
  const Policy policies[] = {
      {"tunnel-home", MobilePolicy::kTunnelHome},
      {"triangle", MobilePolicy::kTriangle},
      {"encap-direct", MobilePolicy::kEncapDirect},
  };
  PolicyResult tunnel_off, triangle_off;
  for (const Policy& p : policies) {
    const PolicyResult off = RunPolicy(p.policy, false, 7100, probe_window);
    const PolicyResult on = RunPolicy(p.policy, true, 7100, probe_window);
    if (p.policy == MobilePolicy::kTunnelHome) {
      tunnel_off = off;
    }
    if (p.policy == MobilePolicy::kTriangle) {
      triangle_off = off;
    }
    PrintRow(p.name, off, on);
    report.AddRow(std::string(p.name) + " filter=off",
                  {{"rtt_ms_mean", off.rtt_ms_mean},
                   {"rtt_ms_stddev", off.rtt_ms_stddev},
                   {"received", off.received},
                   {"sent", off.sent}});
    report.AddRow(std::string(p.name) + " filter=on",
                  {{"rtt_ms_mean", on.rtt_ms_mean},
                   {"rtt_ms_stddev", on.rtt_ms_stddev},
                   {"received", on.received},
                   {"sent", on.sent}});
  }
  std::printf("\n");

  // Encapsulation overhead on the wire (paper: "20 bytes or more").
  {
    Ipv4Datagram inner;
    inner.header.protocol = IpProto::kUdp;
    inner.header.src = Ipv4Address(36, 135, 0, 10);
    inner.header.dst = Ipv4Address(36, 8, 0, 20);
    inner.payload.assign(100, 0);
    const auto outer = EncapsulateIpIp(inner, Ipv4Address(36, 8, 0, 50),
                                       Ipv4Address(36, 135, 0, 1));
    std::printf("Encapsulation overhead: inner %zu B -> outer %zu B (+%zu B, paper: 20 B)\n\n",
                inner.Serialize().size(), outer.Serialize().size(),
                outer.Serialize().size() - inner.Serialize().size());
    report.AddRow("encapsulation_overhead",
                  {{"inner_bytes", static_cast<uint64_t>(inner.Serialize().size())},
                   {"outer_bytes", static_cast<uint64_t>(outer.Serialize().size())},
                   {"overhead_bytes", static_cast<uint64_t>(outer.Serialize().size() -
                                                            inner.Serialize().size())}});
  }

  // Probe-driven fallback under the filter.
  {
    TestbedConfig cfg;
    cfg.seed = 7300;
    cfg.external_ch = true;
    cfg.transit_filter = true;
    Testbed tb(cfg);
    tb.StartMobileAtHome();
    tb.StartMobileOnWired(50);
    bool probe_ok = true;
    tb.mobile->ProbeTriangleRoute(tb.ch_address(), [&](bool ok) { probe_ok = ok; });
    tb.RunFor(Seconds(5));
    std::printf("Fallback check (filter ON): triangle probe %s; cached policy for CH: %s\n",
                probe_ok ? "SUCCEEDED (unexpected)" : "failed",
                MobilePolicyName(tb.mobile->policy_table().LookupConst(tb.ch_address())));
    std::printf("  probe fallbacks recorded: %llu\n\n",
                static_cast<unsigned long long>(tb.mobile->counters().probe_fallbacks));
    report.AddRow("triangle_probe_fallback",
                  {{"probe_failed", !probe_ok},
                   {"cached_policy",
                    MobilePolicyName(tb.mobile->policy_table().LookupConst(tb.ch_address()))},
                   {"probe_fallbacks", tb.mobile->counters().probe_fallbacks}});
    report.AddMetrics(tb.metrics);
  }

  std::printf("%-44s | %-12s | %s\n", "shape check", "paper", "measured");
  std::printf("%.44s-+-%.12s-+-%.16s\n", "--------------------------------------------",
              "------------", "----------------");
  std::printf("%-44s | %-12s | %s\n", "triangle faster than tunnel (no filter)", "yes",
              triangle_off.rtt_ms_mean < tunnel_off.rtt_ms_mean ? "yes" : "NO (!)");
  std::printf("\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
