// Software-overhead calibration for the mobile-IP control path.
//
// The paper's Figure 7 decomposes a same-subnet re-registration into steps
// measured on the real testbed (Gateway Handbook 486 mobile hosts, Pentium 90
// home agent): pre-registration (configure interface + change route table),
// the request->reply latency (4.79 ms, of which 1.48 ms is home-agent
// processing), and post-registration work, totalling 7.39 ms. Each step's
// cost here is a normal distribution whose defaults are tuned so the
// simulated decomposition lands on the paper's numbers; benches may override.
#ifndef MSN_SRC_MIP_CALIBRATION_H_
#define MSN_SRC_MIP_CALIBRATION_H_

#include "src/sim/time.h"
#include "src/util/rng.h"

namespace msn {

// One calibrated step cost: a clamped normal distribution.
struct StepCost {
  Duration mean;
  Duration jitter;  // Standard deviation.

  Duration Draw(Rng& rng) const {
    const double ns = rng.NormalAtLeast(static_cast<double>(mean.nanos()),
                                        static_cast<double>(jitter.nanos()),
                                        static_cast<double>(mean.nanos()) * 0.3);
    return Duration::FromNanos(static_cast<int64_t>(ns));
  }
};

struct Calibration {
  // MH: assign the new care-of address to the interface (ifconfig path).
  StepCost interface_config{MillisecondsF(1.1), MillisecondsF(0.12)};
  // MH: delete/add routing-table entries for the new attachment.
  StepCost route_update{MillisecondsF(0.7), MillisecondsF(0.09)};
  // MH: build and hand the registration request to the socket layer.
  StepCost request_build{MillisecondsF(0.25), MillisecondsF(0.04)};
  // HA: validate request, install binding + proxy ARP, build reply.
  // Paper: 1.48 ms between receiving the request and sending the reply.
  StepCost ha_processing{MillisecondsF(1.48), MillisecondsF(0.12)};
  // HA batched registration pipeline (DESIGN.md §17): a burst of queued
  // requests pays one fixed dequeue/reply-flush overhead plus a per-request
  // marginal cost. Defaults are anchored so fixed + item == the serial
  // 1.48 ms — a two-request batch already amortizes the fixed share.
  StepCost ha_batch_fixed{MillisecondsF(0.90), MillisecondsF(0.08)};
  StepCost ha_batch_item{MillisecondsF(0.58), MillisecondsF(0.05)};
  // MH: apply the accepted registration (mobility state, policy table).
  StepCost post_registration{MillisecondsF(0.8), MillisecondsF(0.1)};

  static Calibration Default() { return Calibration{}; }
};

}  // namespace msn

#endif  // MSN_SRC_MIP_CALIBRATION_H_
