#include "src/mobility/mobility_driver.h"

#include <utility>

namespace msn {
namespace {

constexpr double kClearLossEpsilon = 1e-9;

}  // namespace

MobilityDriver::MobilityDriver(MobileHost& mobile, CampusMap map,
                               std::unique_ptr<MobilityModel> model, Config config)
    : mobile_(mobile), map_(std::move(map)), model_(std::move(model)), config_(config) {
  if (config_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    config_.metrics = owned_metrics_.get();
  }
}

MobilityDriver::~MobilityDriver() { Stop(); }

void MobilityDriver::AddBinding(const MediumBinding& binding) {
  Bound b;
  b.binding = binding;
  b.base_params = binding.medium->params();
  bound_.push_back(b);
}

void MobilityDriver::Start() {
  if (task_ == nullptr) {
    task_ = std::make_unique<PeriodicTask>(mobile_.node().sim(), config_.tick, [this] { Tick(); });
  }
  if (task_->running()) {
    return;
  }
  last_device_ = mobile_.attachment().device;
  Tick();           // Apply quality for the starting position right away.
  task_->Start();   // ...then keep ticking every config.tick.
}

void MobilityDriver::Stop() {
  if (task_ == nullptr || !task_->running()) {
    return;
  }
  task_->Stop();
  // Leave the media the way we found them.
  for (Bound& b : bound_) {
    b.binding.injector->ClearProfile();
    b.binding.medium->set_params(b.base_params);
  }
}

bool MobilityDriver::AnyDeepCoverage(double loss_threshold) const {
  for (const Bound& b : bound_) {
    if (b.state.in_coverage && b.state.loss <= loss_threshold) {
      return true;
    }
  }
  return false;
}

void MobilityDriver::Tick() {
  const Vec2 pos = map_.Clamp(model_->Advance(config_.tick));
  counters_.ticks += 1;

  MetricsRegistry& metrics = *config_.metrics;
  metrics.GetCounter("mobility.ticks").Add(1);
  metrics.GetGauge("mobility.pos_x_m").Set(pos.x);
  metrics.GetGauge("mobility.pos_y_m").Set(pos.y);

  for (Bound& b : bound_) {
    UpdateQuality(b);
    if (config_.manage_association) {
      ManageAssociation(b);
    }
  }
  NoteHandoffs();

  // Cell residency: one tick attributed to the serving device's nearest cell.
  for (const Bound& b : bound_) {
    if (b.binding.attachment.device == mobile_.attachment().device &&
        b.state.station != nullptr) {
      metrics.GetCounter("mobility.residency." + b.state.station->name).Add(1);
      break;
    }
  }
}

void MobilityDriver::UpdateQuality(Bound& b) {
  const Vec2 pos = model_->position();
  double distance_m = 0.0;
  const BaseStation* station = map_.Nearest(b.binding.cell_medium, pos, &distance_m);
  b.state.station = station;
  if (station == nullptr) {
    b.state.distance_m = 0.0;
    b.state.rssi_dbm = -200.0;
    b.state.loss = 1.0;
    b.state.in_coverage = false;
  } else {
    b.state.distance_m = distance_m;
    b.state.rssi_dbm = RssiDbm(b.binding.quality, distance_m);
    b.state.loss = LossAtDistance(b.binding.quality, distance_m);
    b.state.in_coverage = distance_m < b.binding.quality.range_m;
  }

  // Loss -> fault injector, as a degenerate (burst-free) Gilbert-Elliott
  // profile so distance shares the one FaultHook slot with scripted faults.
  if (b.state.loss <= kClearLossEpsilon) {
    b.binding.injector->ClearProfile();
  } else {
    GilbertElliottParams ge;
    ge.p_enter_burst = 0.0;
    ge.p_exit_burst = 1.0;
    ge.loss_good = b.state.loss;
    ge.loss_bad = b.state.loss;
    FaultProfile profile;
    profile.burst_loss = ge;
    b.binding.injector->SetProfile(profile);
  }

  // Range -> extra propagation latency on the medium.
  MediumParams params = b.base_params;
  params.latency = params.latency + LatencyAtDistance(b.binding.quality, b.state.distance_m);
  b.binding.medium->set_params(params);

  const char* cell_name = CellMediumName(b.binding.cell_medium);
  MetricsRegistry& metrics = *config_.metrics;
  metrics.GetGauge("mobility.loss." + std::string(cell_name)).Set(b.state.loss);
  metrics.GetGauge("mobility.rssi_dbm." + std::string(cell_name)).Set(b.state.rssi_dbm);

  if (config_.detector != nullptr) {
    config_.detector->ReportSignal(b.binding.attachment.device->name(), b.state.rssi_dbm);
  }
}

void MobilityDriver::ManageAssociation(Bound& b) {
  NetDevice* device = b.binding.attachment.device;
  if (device == nullptr || device == mobile_.attachment().device) {
    return;  // Never touch the serving device; that is the detector's call.
  }
  // Level-triggered on purpose: a cold switch elsewhere tears the previous
  // device down without the binding ever leaving coverage, so an in/out edge
  // would never re-associate it.
  IpStack& stack = mobile_.node().stack();
  if (b.state.in_coverage && !device->IsUp()) {
    // In this cell but not associated: associate, so a switch onto it is hot.
    device->ForceUp();
    stack.ConfigureAddress(device, b.binding.attachment.care_of, b.binding.attachment.mask);
  } else if (!b.state.in_coverage && device->IsUp()) {
    // Walked out: deconfigure and power down, mirroring the testbed's
    // wireless-teardown idiom.
    stack.routes().RemoveForDevice(device);
    stack.UnconfigureAddress(device);
    device->TakeDown();
  }
}

void MobilityDriver::NoteHandoffs() {
  NetDevice* current = mobile_.attachment().device;
  if (current == last_device_) {
    return;
  }
  // Classify by the state of the medium we left: still usable -> the switch
  // was signal-driven; out of coverage -> motion forced it.
  bool previous_was_covered = false;
  for (const Bound& b : bound_) {
    if (b.binding.attachment.device == last_device_) {
      previous_was_covered = b.state.in_coverage;
      break;
    }
  }
  MetricsRegistry& metrics = *config_.metrics;
  if (previous_was_covered) {
    counters_.handoffs_signal += 1;
    metrics.GetCounter("mobility.handoffs_signal").Add(1);
  } else {
    counters_.handoffs_coverage += 1;
    metrics.GetCounter("mobility.handoffs_coverage").Add(1);
  }
  last_device_ = current;
}

}  // namespace msn
