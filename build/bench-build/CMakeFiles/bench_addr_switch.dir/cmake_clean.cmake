file(REMOVE_RECURSE
  "../bench/bench_addr_switch"
  "../bench/bench_addr_switch.pdb"
  "CMakeFiles/bench_addr_switch.dir/bench_addr_switch.cc.o"
  "CMakeFiles/bench_addr_switch.dir/bench_addr_switch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_addr_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
