#include "src/mip/home_agent.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"
#include "src/util/logging.h"

namespace msn {

HomeAgent::HomeAgent(Node& node, Config config)
    : node_(node), config_(std::move(config)), role_(config_.initial_role) {
  config_.num_shards = std::clamp(config_.num_shards, uint32_t{1}, kMaxShards);
  config_.batch_max = std::max(config_.batch_max, uint32_t{1});
  MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const std::string& p = config_.metric_prefix;
  counters_.requests_received = metrics->GetCounterRef(p + "requests_received");
  counters_.registrations_accepted = metrics->GetCounterRef(p + "registrations_accepted");
  counters_.registrations_denied = metrics->GetCounterRef(p + "registrations_denied");
  counters_.deregistrations = metrics->GetCounterRef(p + "deregistrations");
  counters_.packets_tunneled = metrics->GetCounterRef(p + "packets_tunneled");
  counters_.reverse_decapsulated = metrics->GetCounterRef(p + "reverse_decapsulated");
  counters_.bindings_expired = metrics->GetCounterRef(p + "bindings_expired");
  counters_.tunnel_drops_no_binding = metrics->GetCounterRef(p + "tunnel_drops_no_binding");
  counters_.requests_dropped_outage = metrics->GetCounterRef(p + "requests_dropped_outage");
  counters_.requests_dropped_standby = metrics->GetCounterRef(p + "requests_dropped_standby");
  counters_.requests_dropped_crashed = metrics->GetCounterRef(p + "requests_dropped_crashed");
  counters_.tunnel_drops_crashed = metrics->GetCounterRef(p + "tunnel_drops_crashed");
  counters_.bindings_wiped = metrics->GetCounterRef(p + "bindings_wiped");
  counters_.resync_denials = metrics->GetCounterRef(p + "resync_denials");
  counters_.admission_denied = metrics->GetCounterRef(p + "admission.denied");
  counters_.admission_dropped = metrics->GetCounterRef(p + "admission.dropped");
  counters_.admission_superseded = metrics->GetCounterRef(p + "admission.superseded");
  bindings_gauge_ = &metrics->GetGauge(p + "bindings");
  role_gauge_ = &metrics->GetGauge(p + "role");
  processing_histogram_ = &metrics->GetHistogram(p + "processing_ms");
  batch_size_histogram_ = &metrics->GetHistogram(p + "batch_size");
  shards_.resize(config_.num_shards);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string sp = p + "shard." + std::to_string(i) + ".";
    shards_[i].queue_depth_gauge = &metrics->GetGauge(sp + "queue_depth");
    shards_[i].bindings_gauge = &metrics->GetGauge(sp + "bindings");
    shards_[i].processed = metrics->GetCounterRef(sp + "processed");
    shards_[i].batches = metrics->GetCounterRef(sp + "batches");
  }
  SetRoleGauge();

  // Registration service socket.
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(kMipRegistrationPort)) << "ha registration port";
  socket_->BindSourceAddress(config_.address);
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnRegistrationDatagram(data, meta);
      });

  // Encapsulating virtual interface (paper §3.4: the HA shares the MH's need
  // for a VIF).
  auto vif = std::make_unique<VirtualInterface>(node_.sim(), "ha-vif");
  vif->SetEncapHandler([this](const Ipv4Header& inner, const Packet& wire) {
    EncapsulateAndTunnel(inner, wire);
  });
  vif_ = static_cast<VirtualInterface*>(node_.AdoptDevice(std::move(vif)));

  // Reverse-tunnel decapsulation; inner packets are re-injected and forwarded
  // to the correspondent hosts (the node must have forwarding enabled).
  tunnel_ = std::make_unique<IpIpTunnelEndpoint>(node_.stack());
  tunnel_->SetInspector([this](const Ipv4Header& outer, const Ipv4Datagram& inner) {
    (void)outer;
    (void)inner;
    if (crashed_) {
      ++counters_.tunnel_drops_crashed;
      return false;
    }
    ++counters_.reverse_decapsulated;
    return true;
  });

  // The "special route table entry": packets for a bound home address are
  // redirected to the VIF. Installed as the route-lookup override so both
  // forwarded and locally originated packets are captured.
  node_.stack().SetRouteLookupOverride(
      [this](const RouteQuery& query) { return RouteOverride(query); });
}

HomeAgent::~HomeAgent() {
  node_.stack().ClearRouteLookupOverride();
  if (config_.home_device != nullptr) {
    for (Ipv4Address home : SortedBoundHomes()) {
      node_.stack().arp().RemoveProxyEntry(config_.home_device, home);
    }
  }
}

size_t HomeAgent::ShardIndexOf(Ipv4Address home_address) const {
  // Knuth multiplicative hash on the raw address; deterministic across
  // platforms (no std::hash).
  const uint32_t mixed = home_address.value() * 2654435761u;
  return (mixed >> 16) % shards_.size();
}

HomeAgent::Shard& HomeAgent::ShardOf(Ipv4Address home_address) {
  return shards_[ShardIndexOf(home_address)];
}

const HomeAgent::Shard& HomeAgent::ShardOf(Ipv4Address home_address) const {
  return shards_[ShardIndexOf(home_address)];
}

size_t HomeAgent::binding_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.bindings.size();
  }
  return total;
}

size_t HomeAgent::ShardBindingCount(size_t shard_index) const {
  return shards_[shard_index].bindings.size();
}

size_t HomeAgent::ShardQueueDepth(size_t shard_index) const {
  return shards_[shard_index].queue.size();
}

std::string HomeAgent::ShardConsistencyError() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    for (const auto& [home, binding] : shard.bindings) {
      if (ShardIndexOf(home) != i) {
        return home.ToString() + " stored in shard " + std::to_string(i) +
               " but hashes to shard " + std::to_string(ShardIndexOf(home));
      }
      if (binding.home_address != home) {
        return "binding keyed by " + home.ToString() + " names " +
               binding.home_address.ToString();
      }
    }
    if (shard.queued_by_home.size() != shard.queue.size()) {
      return "shard " + std::to_string(i) + " queue index holds " +
             std::to_string(shard.queued_by_home.size()) + " entries for " +
             std::to_string(shard.queue.size()) + " queued requests";
    }
    for (const auto& [home, slot] : shard.queued_by_home) {
      if (ShardIndexOf(home) != i) {
        return home.ToString() + " queued in shard " + std::to_string(i) +
               " but hashes to shard " + std::to_string(ShardIndexOf(home));
      }
      if (slot == nullptr || slot->request.home_address != home) {
        return "queue index for " + home.ToString() + " points at a stale slot";
      }
    }
  }
  return std::string();
}

std::vector<Ipv4Address> HomeAgent::SortedBoundHomes() const {
  std::vector<Ipv4Address> homes;
  homes.reserve(binding_count());
  for (const Shard& shard : shards_) {
    for (const auto& [home, binding] : shard.bindings) {
      homes.push_back(home);
    }
  }
  std::sort(homes.begin(), homes.end());
  return homes;
}

void HomeAgent::SetGlobalBindingsGauge() {
  bindings_gauge_->Set(static_cast<double>(binding_count()));
}

void HomeAgent::FlushShardQueues(CounterRef& drop_counter) {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < shard.queue.size(); ++i) {
      ++drop_counter;
    }
    shard.queue.clear();
    shard.queued_by_home.clear();
    shard.denials_in_window = 0;
    shard.queue_depth_gauge->Set(0.0);
  }
}

void HomeAgent::AuthorizeMobileHost(Ipv4Address home_address) {
  authorized_.insert(home_address);
}

void HomeAgent::SetAuthKey(Ipv4Address home_address, const MipAuthKey& key) {
  auth_keys_[home_address] = key;
}

HomeAgent::Counters HomeAgent::counters() const {
  Counters c;
  c.requests_received = counters_.requests_received;
  c.registrations_accepted = counters_.registrations_accepted;
  c.registrations_denied = counters_.registrations_denied;
  c.deregistrations = counters_.deregistrations;
  c.packets_tunneled = counters_.packets_tunneled;
  c.reverse_decapsulated = counters_.reverse_decapsulated;
  c.bindings_expired = counters_.bindings_expired;
  c.tunnel_drops_no_binding = counters_.tunnel_drops_no_binding;
  c.requests_dropped_outage = counters_.requests_dropped_outage;
  c.requests_dropped_standby = counters_.requests_dropped_standby;
  c.requests_dropped_crashed = counters_.requests_dropped_crashed;
  c.tunnel_drops_crashed = counters_.tunnel_drops_crashed;
  c.bindings_wiped = counters_.bindings_wiped;
  c.resync_denials = counters_.resync_denials;
  c.admission_denied = counters_.admission_denied;
  c.admission_dropped = counters_.admission_dropped;
  c.admission_superseded = counters_.admission_superseded;
  return c;
}

bool HomeAgent::HasBinding(Ipv4Address home_address) const {
  const Shard& shard = ShardOf(home_address);
  return shard.bindings.find(home_address) != shard.bindings.end();
}

std::optional<HomeAgent::Binding> HomeAgent::GetBinding(Ipv4Address home_address) const {
  const Shard& shard = ShardOf(home_address);
  auto it = shard.bindings.find(home_address);
  if (it == shard.bindings.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<RouteDecision> HomeAgent::RouteOverride(const RouteQuery& query) {
  // A standby holds mirrored bindings but must not intercept traffic; a
  // crashed primary still captures so the drops can be counted — on a real
  // network those frames land on the dead host's MAC and die there.
  if (role_ != HaRole::kPrimary) {
    return std::nullopt;
  }
  const Shard& shard = ShardOf(query.dst);
  auto it = shard.bindings.find(query.dst);
  if (it == shard.bindings.end()) {
    return std::nullopt;
  }
  RouteDecision decision;
  decision.device = vif_;
  decision.src = query.src_hint.IsAny() ? config_.address : query.src_hint;
  decision.next_hop = Ipv4Address::Any();
  return decision;
}

void HomeAgent::EncapsulateAndTunnel(const Ipv4Header& inner, const Packet& inner_wire) {
  Shard& shard = ShardOf(inner.dst);
  auto it = shard.bindings.find(inner.dst);
  if (it == shard.bindings.end()) {
    ++counters_.tunnel_drops_no_binding;
    return;
  }
  if (crashed_) {
    ++counters_.tunnel_drops_crashed;
    return;
  }
  ++counters_.packets_tunneled;
  ++tunneled_by_epoch_[epoch_];
  Ipv4Header outer;
  Packet wire = EncapsulateIpIpPacket(outer, inner_wire, config_.address, it->second.care_of);
  MSN_TRACE("mip-ha", "%s: tunneling %s -> careof %s", node_.name().c_str(),
            inner.ToString().c_str(), it->second.care_of.ToString().c_str());
  node_.stack().SendPreformedPacket(outer, std::move(wire), /*forwarding=*/false);
}

void HomeAgent::BeginOutage(HaOutageKind kind) {
  service_available_ = false;
  switch (kind) {
    case HaOutageKind::kService:
      MSN_WARN("mip-ha", "%s: outage begins", node_.name().c_str());
      // Queued-but-unprocessed requests die with the daemon's service; the
      // MH retransmit machinery recovers, exactly as for in-flight frames.
      FlushShardQueues(counters_.requests_dropped_outage);
      return;
    case HaOutageKind::kDaemonRestart:
      MSN_WARN("mip-ha", "%s: outage begins (daemon restart: soft state wiped)",
               node_.name().c_str());
      FlushShardQueues(counters_.requests_dropped_outage);
      WipeSoftState();
      return;
    case HaOutageKind::kFailStop:
      MSN_WARN("mip-ha", "%s: outage begins (fail-stop crash)", node_.name().c_str());
      crashed_ = true;
      FlushShardQueues(counters_.requests_dropped_crashed);
      // The dead host answers no ARP; stale neighbor caches keep sending
      // frames its way for a while, and those show up as tunnel_drops_crashed
      // because the bindings themselves are kept until rejoin.
      for (Ipv4Address home : SortedBoundHomes()) {
        RemoveServingArpState(home);
      }
      return;
  }
}

void HomeAgent::BeginOutage(bool restart_daemon) {
  BeginOutage(restart_daemon ? HaOutageKind::kDaemonRestart : HaOutageKind::kService);
}

void HomeAgent::EndOutage() {
  service_available_ = true;
  if (crashed_) {
    // Rejoin after a fail-stop crash: RAM is gone, and if a replica exists it
    // now owns the bindings — come back as a standby and resync from it
    // (HaReplicationLink requests a snapshot on the down->up transition)
    // instead of forcing every mobile host through identification resync.
    crashed_ = false;
    WipeSoftState();
    if (replication_sink_ && role_ == HaRole::kPrimary) {
      StepDown(epoch_);
    }
  }
  MSN_INFO("mip-ha", "%s: outage ends", node_.name().c_str());
}

void HomeAgent::WipeSoftState() {
  applying_peer_state_ = true;
  // Snapshot the keys first — RemoveBinding mutates the shard tables.
  for (Ipv4Address home : SortedBoundHomes()) {
    resync_required_.insert(home);
    ++counters_.bindings_wiped;
    RemoveBinding(home, /*expired=*/false);
  }
  last_identification_.clear();
  applying_peer_state_ = false;
}

void HomeAgent::Promote(uint64_t epoch) {
  MSN_WARN("mip-ha", "%s: promoted to primary (epoch %llu -> %llu, %zu bindings)",
           node_.name().c_str(), static_cast<unsigned long long>(epoch_),
           static_cast<unsigned long long>(epoch), binding_count());
  role_ = HaRole::kPrimary;
  epoch_ = epoch;
  node_.stack().InvalidateFlowCache();
  SetRoleGauge();
  // Pull home-subnet traffic here: proxy ARP plus a gratuitous announcement
  // for every mirrored binding.
  for (Ipv4Address home : SortedBoundHomes()) {
    InstallServingArpState(home);
  }
}

void HomeAgent::StepDown(uint64_t epoch) {
  MSN_WARN("mip-ha", "%s: stepping down to standby (epoch %llu -> %llu)",
           node_.name().c_str(), static_cast<unsigned long long>(epoch_),
           static_cast<unsigned long long>(epoch));
  role_ = HaRole::kStandby;
  epoch_ = epoch;
  node_.stack().InvalidateFlowCache();
  SetRoleGauge();
  // Anything still queued belongs to the new primary now.
  FlushShardQueues(counters_.requests_dropped_standby);
  for (Ipv4Address home : SortedBoundHomes()) {
    RemoveServingArpState(home);
  }
}

void HomeAgent::SetReplicationSink(ReplicationSink sink) {
  replication_sink_ = std::move(sink);
}

void HomeAgent::EmitMutation(const BindingMutation& mutation) {
  if (replication_sink_ && !applying_peer_state_) {
    replication_sink_(mutation);
  }
}

void HomeAgent::SetRoleGauge() {
  role_gauge_->Set(role_ == HaRole::kPrimary ? 1.0 : 0.0);
}

void HomeAgent::ApplyMutation(const BindingMutation& mutation) {
  applying_peer_state_ = true;
  switch (mutation.kind) {
    case BindingMutation::Kind::kInstall: {
      Binding binding;
      binding.home_address = mutation.home_address;
      binding.care_of = mutation.care_of;
      binding.expires = node_.sim().Now() + Seconds(mutation.lifetime_sec);
      binding.identification = mutation.identification;
      binding.registered_at = node_.sim().Now();
      binding.decapsulates_self = mutation.decapsulates_self;
      Shard& shard = ShardOf(mutation.home_address);
      shard.bindings[mutation.home_address] = binding;
      node_.stack().InvalidateFlowCache();
      shard.bindings_gauge->Set(static_cast<double>(shard.bindings.size()));
      SetGlobalBindingsGauge();
      last_identification_[mutation.home_address] = mutation.identification;
      resync_required_.erase(mutation.home_address);
      ScheduleExpiry(mutation.home_address, binding.expires);
      if (serving()) {
        InstallServingArpState(mutation.home_address);
      }
      break;
    }
    case BindingMutation::Kind::kRemove:
      last_identification_[mutation.home_address] = mutation.identification;
      RemoveBinding(mutation.home_address, /*expired=*/false);
      break;
    case BindingMutation::Kind::kIdentification:
      last_identification_[mutation.home_address] = mutation.identification;
      resync_required_.erase(mutation.home_address);
      break;
  }
  applying_peer_state_ = false;
}

HaBindingState HomeAgent::SnapshotState() const {
  HaBindingState state;
  const Time now = node_.sim().Now();
  state.bindings.reserve(binding_count());
  // Shard-merged and address-sorted, preserving the documented snapshot
  // order regardless of the shard layout (peers may shard differently).
  for (Ipv4Address home : SortedBoundHomes()) {
    const auto& binding = ShardOf(home).bindings.at(home);
    HaBindingState::Entry entry;
    entry.home_address = home;
    entry.care_of = binding.care_of;
    const double remaining_ms = (binding.expires - now).ToMillisF();
    const double remaining_sec = (remaining_ms + 999.0) / 1000.0;
    entry.lifetime_sec = static_cast<uint16_t>(
        std::clamp(remaining_sec, 1.0, 65535.0));
    entry.identification = binding.identification;
    entry.decapsulates_self = binding.decapsulates_self;
    state.bindings.push_back(entry);
  }
  state.identifications.reserve(last_identification_.size());
  for (const auto& [home, identification] : last_identification_) {
    state.identifications.emplace_back(home, identification);
  }
  return state;
}

void HomeAgent::AdoptState(const HaBindingState& state) {
  applying_peer_state_ = true;
  for (Ipv4Address home : SortedBoundHomes()) {
    RemoveBinding(home, /*expired=*/false);
  }
  last_identification_.clear();
  for (const auto& [home, identification] : state.identifications) {
    last_identification_[home] = identification;
  }
  for (const auto& entry : state.bindings) {
    Binding binding;
    binding.home_address = entry.home_address;
    binding.care_of = entry.care_of;
    binding.expires = node_.sim().Now() + Seconds(entry.lifetime_sec);
    binding.identification = entry.identification;
    binding.registered_at = node_.sim().Now();
    binding.decapsulates_self = entry.decapsulates_self;
    Shard& shard = ShardOf(entry.home_address);
    shard.bindings[entry.home_address] = binding;
    node_.stack().InvalidateFlowCache();
    shard.bindings_gauge->Set(static_cast<double>(shard.bindings.size()));
    ScheduleExpiry(entry.home_address, binding.expires);
    if (serving()) {
      InstallServingArpState(entry.home_address);
    }
  }
  SetGlobalBindingsGauge();
  // The replica's identification history supersedes the from-scratch resync:
  // a recovering agent that adopted a snapshot needs no one-shot denial.
  resync_required_.clear();
  applying_peer_state_ = false;
  MSN_INFO("mip-ha", "%s: adopted replica state (%zu bindings, %zu identifications)",
           node_.name().c_str(), state.bindings.size(), state.identifications.size());
}

void HomeAgent::InstallServingArpState(Ipv4Address home_address) {
  if (config_.home_device == nullptr) {
    return;
  }
  node_.stack().arp().AddProxyEntry(config_.home_device, home_address);
  node_.stack().arp().AddStaticEntry(home_address, config_.home_device->mac());
  node_.stack().arp().AnnounceGratuitousArp(config_.home_device, home_address);
}

void HomeAgent::RemoveServingArpState(Ipv4Address home_address) {
  if (config_.home_device == nullptr) {
    return;
  }
  node_.stack().arp().RemoveProxyEntry(config_.home_device, home_address);
  node_.stack().arp().RemoveEntry(home_address);
}

void HomeAgent::OnRegistrationDatagram(const std::vector<uint8_t>& data,
                                       const UdpSocket::Metadata& meta) {
  if (crashed_) {
    // Fail-stop: the whole host is gone; nothing answers on port 434.
    ++counters_.requests_dropped_crashed;
    return;
  }
  if (!service_available_) {
    // Down hard: no reply, no state change. The MH's retransmission and
    // backoff machinery is what recovers from this.
    ++counters_.requests_dropped_outage;
    return;
  }
  if (role_ != HaRole::kPrimary) {
    // A standby never answers registrations — doing so would let two agents
    // grant conflicting bindings (the split-brain the epoch rules forbid).
    ++counters_.requests_dropped_standby;
    return;
  }
  ++counters_.requests_received;
  auto request = RegistrationRequest::Parse(data);
  if (!request) {
    ++counters_.registrations_denied;
    return;  // Cannot even name the mobile host; drop silently.
  }
  // Admission front end (DESIGN.md §17). Everything here is stateless and
  // cheap — no authentication, no identification lookup — so an overloaded
  // agent sheds work at parse cost instead of collapsing under it.
  const Time arrival = node_.sim().Now();
  Shard& shard = ShardOf(request->home_address);
  auto queued = shard.queued_by_home.find(request->home_address);
  if (queued != shard.queued_by_home.end()) {
    // Retransmit-aware supersede: a newer copy from the same mobile host
    // replaces its stale queued copy in place, so a slow queue never burns
    // a batch slot answering a request the MH has already given up on.
    ++counters_.admission_superseded;
    if (request->identification >= queued->second->request.identification) {
      queued->second->request = *request;
      queued->second->meta = meta;
      queued->second->arrival = arrival;
    }
    return;
  }
  const size_t depth = shard.queue.size();
  if (config_.admission_queue_limit > 0) {
    const uint32_t drop_limit = config_.admission_drop_limit > 0
                                    ? config_.admission_drop_limit
                                    : 2 * config_.admission_queue_limit;
    if (depth + shard.denials_in_window >= drop_limit) {
      // Past the point where even a denial is worth sending: replies cost
      // socket work, so each daemon pass grants a bounded denial budget —
      // a flood cannot turn the agent into a full-time denial server.
      ++counters_.admission_dropped;
      return;
    }
    if (depth >= config_.admission_queue_limit) {
      // Explicit shed: an unauthenticated "insufficient resources" reply
      // sent before any per-MH work, telling the MH to back off and retry.
      ++shard.denials_in_window;
      ++counters_.admission_denied;
      RegistrationReply reply;
      reply.home_address = request->home_address;
      reply.home_agent = config_.address;
      reply.identification = request->identification;
      reply.lifetime_sec = 0;
      reply.code = MipReplyCode::kDeniedInsufficientResources;
      SendReply(reply, meta.src, meta.src_port);
      return;
    }
  }
  shard.queue.push_back(PendingRequest{*request, meta, arrival});
  shard.queued_by_home[request->home_address] = &shard.queue.back();
  shard.queue_depth_gauge->Set(static_cast<double>(shard.queue.size()));
  ScheduleShardBatch(ShardIndexOf(request->home_address));
}

void HomeAgent::ScheduleShardBatch(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.batch_scheduled || shard.queue.empty()) {
    return;
  }
  shard.batch_scheduled = true;
  const Time start = std::max(node_.sim().Now(), shard.busy_until);
  node_.sim().ScheduleAt(start, [this, shard_index] { RunShardBatch(shard_index); });
}

void HomeAgent::RunShardBatch(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  shard.batch_scheduled = false;
  if (crashed_ || !service_available_ || role_ != HaRole::kPrimary) {
    // The state transition that got us here already flushed the queues into
    // the matching dropped counter; a stale batch event must not process.
    return;
  }
  if (shard.queue.empty()) {
    return;
  }
  shard.denials_in_window = 0;  // Each daemon pass refreshes the denial budget.
  // Drain up to batch_max queued requests in one go. A burst pays one fixed
  // dequeue/reply-flush overhead plus a per-request marginal cost; a batch
  // of one draws the classic serial ha_processing cost so the uncontended
  // path is calibrated identically to the paper's measurement.
  const size_t batch = std::min<size_t>(config_.batch_max, shard.queue.size());
  Rng& rng = node_.sim().rng();
  Duration cost;
  if (batch == 1) {
    cost = config_.calibration.ha_processing.Draw(rng);
  } else {
    cost = config_.calibration.ha_batch_fixed.Draw(rng);
    for (size_t i = 0; i < batch; ++i) {
      cost = cost + config_.calibration.ha_batch_item.Draw(rng);
    }
  }
  shard.busy_until = node_.sim().Now() + cost;
  const Time reply_at = shard.busy_until;
  ++shard.batches;
  batch_size_histogram_->Record(static_cast<double>(batch));
  for (size_t i = 0; i < batch; ++i) {
    PendingRequest pending = shard.queue.front();
    shard.queue.pop_front();
    shard.queued_by_home.erase(pending.request.home_address);
    ++shard.processed;
    const double processing_ms = (reply_at - pending.arrival).ToMillisF();
    processing_stats_ms_.Add(processing_ms);
    processing_histogram_->Record(processing_ms);
    // Kernel state (binding, route, proxy ARP) updates promptly at dequeue;
    // the reply goes out once the batch's full processing cost has elapsed.
    // Installing the binding early keeps the packet-loss window short
    // (paper: the loss interval ends when the HA registers the new care-of
    // address, not when the reply reaches the MH).
    ProcessRequest(pending.request, pending.meta, reply_at);
  }
  shard.queue_depth_gauge->Set(static_cast<double>(shard.queue.size()));
  if (!shard.queue.empty()) {
    ScheduleShardBatch(shard_index);
  }
}

void HomeAgent::ProcessRequest(const RegistrationRequest& request,
                               const UdpSocket::Metadata& meta, Time reply_at) {
  MSN_DEBUG("mip-ha", "%s: %s", node_.name().c_str(), request.ToString().c_str());

  RegistrationReply reply;
  reply.home_address = request.home_address;
  reply.home_agent = config_.address;
  reply.identification = request.identification;
  reply.lifetime_sec = 0;

  // Validation. Explicit authorization narrows service within the home
  // subnet; it never extends it (Config: "Home addresses must fall inside
  // this subnet to be served").
  const bool known =
      config_.home_subnet.Contains(request.home_address) &&
      (authorized_.empty() || authorized_.find(request.home_address) != authorized_.end());
  const auto key = auth_keys_.find(request.home_address);
  const bool must_authenticate =
      config_.require_authentication || key != auth_keys_.end();
  if (!known) {
    reply.code = MipReplyCode::kDeniedUnknownHomeAddress;
  } else if (must_authenticate &&
             (key == auth_keys_.end() || !request.VerifyAuthenticator(key->second))) {
    reply.code = MipReplyCode::kDeniedBadAuthenticator;
  } else if (request.home_agent != config_.address) {
    reply.code = MipReplyCode::kDeniedMalformed;
  } else if (!request.IsDeregistration() &&
             (request.care_of_address.IsAny() ||
              request.care_of_address == request.home_address)) {
    // A registration must name somewhere to tunnel to; accepting an empty
    // care-of address would install a black-hole binding, and a care-of
    // equal to the home address would make the HA tunnel home-bound
    // packets back into its own intercept route forever.
    reply.code = MipReplyCode::kDeniedMalformed;
  } else if (resync_required_.erase(request.home_address) > 0) {
    // First registration after a daemon restart: deny once with a mismatch,
    // re-anchoring the replay window at this request's identification. The
    // MH's resync re-send carries a higher identification and is accepted.
    last_identification_[request.home_address] = request.identification;
    ++counters_.resync_denials;
    BindingMutation mutation;
    mutation.kind = BindingMutation::Kind::kIdentification;
    mutation.home_address = request.home_address;
    mutation.identification = request.identification;
    EmitMutation(mutation);
    reply.code = MipReplyCode::kDeniedIdentificationMismatch;
  } else {
    auto last = last_identification_.find(request.home_address);
    if (last != last_identification_.end() && request.identification <= last->second) {
      reply.code = MipReplyCode::kDeniedIdentificationMismatch;
    } else if ((request.flags & kMipFlagSimultaneous) != 0) {
      reply.code = MipReplyCode::kAcceptedNoSimultaneous;
    } else {
      reply.code = MipReplyCode::kAccepted;
    }
  }

  if (reply.accepted()) {
    last_identification_[request.home_address] = request.identification;
    if (request.IsDeregistration()) {
      ++counters_.deregistrations;
      RemoveBinding(request.home_address, /*expired=*/false);
      reply.lifetime_sec = 0;
    } else {
      const uint16_t granted =
          std::min<uint16_t>(request.lifetime_sec, config_.max_lifetime_sec);
      reply.lifetime_sec = granted;
      InstallBinding(request, granted);
    }
    ++counters_.registrations_accepted;
  } else {
    ++counters_.registrations_denied;
  }

  if (key != auth_keys_.end()) {
    reply.Authenticate(key->second);
  }
  node_.sim().ScheduleAt(reply_at, [this, reply, dst = meta.src, port = meta.src_port] {
    SendReply(reply, dst, port);
  });
}

void HomeAgent::InstallBinding(const RegistrationRequest& request,
                               uint16_t granted_lifetime_sec) {
  const Ipv4Address home = request.home_address;
  Shard& shard = ShardOf(home);
  auto it = shard.bindings.find(home);
  const Ipv4Address old_care_of =
      it != shard.bindings.end() ? it->second.care_of : Ipv4Address::Any();

  const bool old_was_foreign_agent =
      it != shard.bindings.end() && !it->second.decapsulates_self;

  Binding binding;
  binding.home_address = home;
  binding.care_of = request.care_of_address;
  binding.expires = node_.sim().Now() + Seconds(granted_lifetime_sec);
  binding.identification = request.identification;
  binding.registered_at = node_.sim().Now();
  binding.decapsulates_self = (request.flags & kMipFlagDecapsulateSelf) != 0;
  // A binding serves exactly the home address it is keyed by, and only
  // addresses inside the served subnet ever reach this point (ProcessRequest
  // rejects the rest); a violation means tunnel traffic would be delivered
  // to the wrong mobile host.
  MSN_CHECK(binding.home_address == home);
  MSN_CHECK(config_.home_subnet.Contains(home))
      << home.ToString() << " outside " << config_.home_subnet.ToString();
  MSN_ASSERT(!binding.care_of.IsAny()) << "registration with an empty care-of address";
  shard.bindings[home] = binding;
  node_.stack().InvalidateFlowCache();
  shard.bindings_gauge->Set(static_cast<double>(shard.bindings.size()));
  SetGlobalBindingsGauge();

  // Previous-FA notification: late tunnel packets still headed to the old
  // foreign agent can be forwarded to the new care-of address.
  if (config_.notify_previous_foreign_agent && old_was_foreign_agent &&
      !old_care_of.IsAny() && old_care_of != binding.care_of) {
    BindingUpdate update;
    update.home_address = home;
    update.new_care_of = binding.care_of;
    socket_->SendTo(old_care_of, kMipRegistrationPort, update.Serialize());
  }

  if (serving()) {
    // Become (or refresh as) the MH's ARP proxy and void stale neighbor
    // caches so traffic for the home address now lands on us.
    InstallServingArpState(home);
  }
  ScheduleExpiry(home, binding.expires);

  BindingMutation mutation;
  mutation.kind = BindingMutation::Kind::kInstall;
  mutation.home_address = home;
  mutation.care_of = binding.care_of;
  mutation.lifetime_sec = granted_lifetime_sec;
  mutation.identification = binding.identification;
  mutation.decapsulates_self = binding.decapsulates_self;
  EmitMutation(mutation);

  if (observer_) {
    observer_(home, old_care_of, binding.care_of);
  }
  MSN_INFO("mip-ha", "%s: binding %s -> %s (%us)", node_.name().c_str(),
           home.ToString().c_str(), binding.care_of.ToString().c_str(), granted_lifetime_sec);
}

void HomeAgent::RemoveBinding(Ipv4Address home_address, bool expired) {
  Shard& shard = ShardOf(home_address);
  auto it = shard.bindings.find(home_address);
  if (it == shard.bindings.end()) {
    return;
  }
  const Ipv4Address old_care_of = it->second.care_of;
  shard.bindings.erase(it);
  node_.stack().InvalidateFlowCache();
  shard.bindings_gauge->Set(static_cast<double>(shard.bindings.size()));
  SetGlobalBindingsGauge();
  RemoveServingArpState(home_address);
  if (expired) {
    ++counters_.bindings_expired;
  }
  BindingMutation mutation;
  mutation.kind = BindingMutation::Kind::kRemove;
  mutation.home_address = home_address;
  auto last = last_identification_.find(home_address);
  mutation.identification = last != last_identification_.end() ? last->second : 0;
  EmitMutation(mutation);
  if (observer_) {
    observer_(home_address, old_care_of, Ipv4Address::Any());
  }
  MSN_INFO("mip-ha", "%s: binding for %s removed%s", node_.name().c_str(),
           home_address.ToString().c_str(), expired ? " (expired)" : "");
}

void HomeAgent::ScheduleExpiry(Ipv4Address home_address, Time expires) {
  node_.sim().ScheduleAt(expires, [this, home_address, expires] {
    const Shard& shard = ShardOf(home_address);
    auto it = shard.bindings.find(home_address);
    if (it == shard.bindings.end() || it->second.expires > expires) {
      return;  // Removed or refreshed meanwhile.
    }
    RemoveBinding(home_address, /*expired=*/true);
  });
}

void HomeAgent::SendReply(const RegistrationReply& reply, Ipv4Address dst, uint16_t port) {
  MSN_DEBUG("mip-ha", "%s: %s -> %s:%u", node_.name().c_str(), reply.ToString().c_str(),
            dst.ToString().c_str(), port);
  socket_->SendTo(dst, port, reply.Serialize());
}

}  // namespace msn
