// The time-series sampler: snapshots selected metrics on the simulator clock
// into deterministic per-metric series.
//
// A sampler watches metrics by name and, every `interval` of simulated time,
// appends (now, scalar reading) to each watched series — counter/gauge value,
// histogram observation count. Because sampling rides the simulator's event
// queue, two runs with the same seed produce byte-identical exported series
// (ToCsv() / the exporter's JSON), which is what makes BENCH_*.json
// trajectories diffable across commits.
#ifndef MSN_SRC_TELEMETRY_TIME_SERIES_H_
#define MSN_SRC_TELEMETRY_TIME_SERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

class TimeSeriesSampler {
 public:
  struct Point {
    Time t;
    double value = 0.0;
  };
  struct Series {
    std::string metric;
    std::vector<Point> points;
  };

  TimeSeriesSampler(Simulator& sim, const MetricsRegistry& registry, Duration interval);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Adds a metric to the watch list. Watching the same name twice is a no-op.
  // A metric that does not exist yet samples as 0 until it is registered.
  void Watch(const std::string& metric_name);
  // Watches every metric currently in the registry.
  void WatchAll();

  // Takes an immediate sample, then one every interval until Stop().
  void Start();
  void Stop();
  bool running() const { return running_; }

  Duration interval() const { return interval_; }
  const std::vector<Series>& series() const { return series_; }

  // Wide CSV: "t_ms,<metric>,..." header, one row per sample tick.
  std::string ToCsv() const;

 private:
  void Sample();

  Simulator& sim_;
  const MetricsRegistry& registry_;
  Duration interval_;
  std::vector<Series> series_;
  std::unique_ptr<PeriodicTask> task_;
  bool running_ = false;
};

}  // namespace msn

#endif  // MSN_SRC_TELEMETRY_TIME_SERIES_H_
