#include "src/dhcp/dhcp.h"
#include "src/util/assert.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/util/byte_buffer.h"
#include "src/util/logging.h"

namespace msn {

// --- Wire format -------------------------------------------------------------

std::vector<uint8_t> DhcpMessage::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteU8(prefix_len);
  w.WriteU32(xid);
  w.WriteBytes(client_mac.bytes().data(), 6);
  w.WriteU32(yiaddr.value());
  w.WriteU32(server.value());
  w.WriteU32(gateway.value());
  w.WriteU32(lease_sec);
  return w.Take();
}

std::optional<DhcpMessage> DhcpMessage::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.remaining() < kSize) {
    return std::nullopt;
  }
  DhcpMessage msg;
  const uint8_t op = r.ReadU8();
  if (op < 1 || op > 6) {
    return std::nullopt;
  }
  msg.op = static_cast<DhcpOp>(op);
  msg.prefix_len = r.ReadU8();
  msg.xid = r.ReadU32();
  const auto mac = r.ReadSpan(6);
  if (mac.size() == 6) {
    std::array<uint8_t, 6> m;
    std::copy(mac.begin(), mac.end(), m.begin());
    msg.client_mac = MacAddress(m);
  }
  msg.yiaddr = Ipv4Address(r.ReadU32());
  msg.server = Ipv4Address(r.ReadU32());
  msg.gateway = Ipv4Address(r.ReadU32());
  msg.lease_sec = r.ReadU32();
  if (!r.ok() || msg.prefix_len > 32) {
    return std::nullopt;
  }
  return msg;
}

// --- Server --------------------------------------------------------------------

DhcpServer::DhcpServer(Node& node, Config config) : node_(node), config_(config) {
  for (uint32_t i = 0; i < config_.pool_size; ++i) {
    free_list_.push_back(config_.subnet.HostAt(config_.first_host_index + i));
  }
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(kDhcpServerPort)) << "dhcp server port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnDatagram(data, meta);
      });
}

DhcpServer::~DhcpServer() = default;

std::optional<Ipv4Address> DhcpServer::PeekNextFree() const {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  return free_list_.front();
}

void DhcpServer::ExpireLeases() {
  const Time now = node_.sim().Now();
  for (auto it = leases_by_mac_.begin(); it != leases_by_mac_.end();) {
    if (it->second.expires <= now) {
      // Expired addresses rejoin the *back* of the free list (reassignment
      // avoidance).
      free_list_.push_back(it->second.address);
      it = leases_by_mac_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Ipv4Address> DhcpServer::AllocateFor(MacAddress mac) {
  ExpireLeases();
  auto it = leases_by_mac_.find(mac);
  if (it != leases_by_mac_.end()) {
    return it->second.address;  // Same client keeps its address.
  }
  if (free_list_.empty()) {
    ++counters_.pool_exhausted;
    return std::nullopt;
  }
  const Ipv4Address addr = free_list_.front();
  free_list_.pop_front();
  return addr;
}

void DhcpServer::ReleaseAddress(MacAddress mac) {
  auto it = leases_by_mac_.find(mac);
  if (it == leases_by_mac_.end()) {
    return;
  }
  free_list_.push_back(it->second.address);
  leases_by_mac_.erase(it);
}

void DhcpServer::SendToClient(const DhcpMessage& msg) {
  UdpSocket::SendExtras extras;
  extras.force_device = config_.device;
  extras.force_broadcast_mac = true;
  socket_->SendToWithExtras(Ipv4Address::Broadcast(), kDhcpClientPort, msg.Serialize(), extras);
}

void DhcpServer::OnDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
  // Serve only requests arriving on our own subnet's interface: a node may
  // host one server per subnet, and broadcast delivery reaches all sockets
  // bound to port 67.
  if (meta.ingress != nullptr && meta.ingress != config_.device) {
    return;
  }
  auto msg = DhcpMessage::Parse(data);
  if (!msg) {
    return;
  }
  switch (msg->op) {
    case DhcpOp::kDiscover: {
      ++counters_.discovers;
      auto addr = AllocateFor(msg->client_mac);
      if (!addr) {
        return;  // Pool exhausted; client will time out.
      }
      // Reserve immediately with a short provisional lease.
      leases_by_mac_[msg->client_mac] =
          Lease{*addr, node_.sim().Now() + Seconds(30)};
      DhcpMessage offer;
      offer.op = DhcpOp::kOffer;
      offer.xid = msg->xid;
      offer.client_mac = msg->client_mac;
      offer.yiaddr = *addr;
      offer.server = node_.stack().GetInterfaceAddress(config_.device).value_or(
          Ipv4Address::Any());
      offer.gateway = config_.gateway;
      offer.prefix_len = static_cast<uint8_t>(config_.subnet.prefix_len());
      offer.lease_sec = static_cast<uint32_t>(config_.lease_time.nanos() / 1000000000);
      ++counters_.offers;
      SendToClient(offer);
      return;
    }
    case DhcpOp::kRequest: {
      auto it = leases_by_mac_.find(msg->client_mac);
      DhcpMessage reply;
      reply.xid = msg->xid;
      reply.client_mac = msg->client_mac;
      reply.server =
          node_.stack().GetInterfaceAddress(config_.device).value_or(Ipv4Address::Any());
      if (it == leases_by_mac_.end() || it->second.address != msg->yiaddr) {
        reply.op = DhcpOp::kNak;
        ++counters_.naks;
      } else {
        it->second.expires = node_.sim().Now() + config_.lease_time;
        reply.op = DhcpOp::kAck;
        reply.yiaddr = it->second.address;
        reply.gateway = config_.gateway;
        reply.prefix_len = static_cast<uint8_t>(config_.subnet.prefix_len());
        reply.lease_sec = static_cast<uint32_t>(config_.lease_time.nanos() / 1000000000);
        ++counters_.acks;
      }
      SendToClient(reply);
      return;
    }
    case DhcpOp::kRelease:
      ++counters_.releases;
      ReleaseAddress(msg->client_mac);
      return;
    default:
      return;  // OFFER/ACK/NAK are server->client only.
  }
}

// --- Client --------------------------------------------------------------------

DhcpClient::DhcpClient(Node& node, NetDevice* device, Config config)
    : node_(node), device_(device), config_(config) {
  socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(socket_->Bind(kDhcpClientPort)) << "dhcp client port";
  socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnDatagram(data, meta);
      });
}

DhcpClient::DhcpClient(Node& node, NetDevice* device)
    : DhcpClient(node, device, Config{}) {}

DhcpClient::~DhcpClient() {
  node_.sim().Cancel(timeout_event_);
  node_.sim().Cancel(renewal_event_);
}

void DhcpClient::Acquire(AcquireCallback done) {
  done_ = std::move(done);
  xid_ = static_cast<uint32_t>(node_.sim().rng().NextU64());
  retries_left_ = config_.max_retries;
  phase_ = Phase::kDiscovering;
  last_offer_.reset();
  SendDiscover();
}

void DhcpClient::SendDiscover() {
  DhcpMessage msg;
  msg.op = DhcpOp::kDiscover;
  msg.xid = xid_;
  msg.client_mac = device_->mac();
  UdpSocket::SendExtras extras;
  extras.force_device = device_;
  extras.force_broadcast_mac = true;
  extras.allow_unconfigured_source = true;
  socket_->SendToWithExtras(Ipv4Address::Broadcast(), kDhcpServerPort, msg.Serialize(), extras);
  node_.sim().Cancel(timeout_event_);
  timeout_event_ = node_.sim().Schedule(config_.retry_interval, [this] { OnTimeout(); });
}

void DhcpClient::SendRequest(const DhcpMessage& offer) {
  phase_ = Phase::kRequesting;
  DhcpMessage msg;
  msg.op = DhcpOp::kRequest;
  msg.xid = xid_;
  msg.client_mac = device_->mac();
  msg.yiaddr = offer.yiaddr;
  msg.server = offer.server;
  UdpSocket::SendExtras extras;
  extras.force_device = device_;
  extras.force_broadcast_mac = true;
  extras.allow_unconfigured_source = true;
  socket_->SendToWithExtras(Ipv4Address::Broadcast(), kDhcpServerPort, msg.Serialize(), extras);
  node_.sim().Cancel(timeout_event_);
  timeout_event_ = node_.sim().Schedule(config_.retry_interval, [this] { OnTimeout(); });
}

void DhcpClient::OnTimeout() {
  if (phase_ == Phase::kIdle) {
    return;
  }
  if (retries_left_ <= 0) {
    MSN_WARN("dhcp", "%s: acquisition timed out", node_.name().c_str());
    phase_ = Phase::kIdle;
    Finish(std::nullopt);
    return;
  }
  --retries_left_;
  if (phase_ == Phase::kRequesting && last_offer_) {
    SendRequest(*last_offer_);
  } else {
    phase_ = Phase::kDiscovering;
    SendDiscover();
  }
}

void DhcpClient::OnDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
  (void)meta;
  auto msg = DhcpMessage::Parse(data);
  if (!msg || msg->xid != xid_ || msg->client_mac != device_->mac()) {
    return;
  }
  switch (msg->op) {
    case DhcpOp::kOffer:
      if (phase_ != Phase::kDiscovering) {
        return;
      }
      last_offer_ = *msg;
      SendRequest(*msg);
      return;
    case DhcpOp::kAck: {
      if (phase_ != Phase::kRequesting) {
        return;
      }
      node_.sim().Cancel(timeout_event_);
      phase_ = Phase::kIdle;
      const bool is_renewal = lease_.has_value() && !done_;
      DhcpLease lease;
      lease.address = msg->yiaddr;
      lease.mask = SubnetMask(msg->prefix_len);
      lease.gateway = msg->gateway;
      lease.server = msg->server;
      lease.lease_time = Seconds(msg->lease_sec);
      lease_ = lease;
      if (is_renewal) {
        ++renewals_;
        ScheduleRenewal();
        return;
      }
      MSN_INFO("dhcp", "%s: leased %s/%u via %s", node_.name().c_str(),
               lease.address.ToString().c_str(), msg->prefix_len,
               lease.gateway.ToString().c_str());
      ScheduleRenewal();
      Finish(lease);
      return;
    }
    case DhcpOp::kNak:
      node_.sim().Cancel(timeout_event_);
      phase_ = Phase::kIdle;
      lease_.reset();
      Finish(std::nullopt);
      return;
    default:
      return;
  }
}

void DhcpClient::Finish(std::optional<DhcpLease> lease) {
  if (done_) {
    AcquireCallback cb = std::move(done_);
    done_ = nullptr;
    cb(std::move(lease));
  }
}

void DhcpClient::ScheduleRenewal() {
  node_.sim().Cancel(renewal_event_);
  if (!config_.auto_renew || !lease_ || lease_->lease_time.nanos() <= 0) {
    return;
  }
  renewal_event_ = node_.sim().Schedule(lease_->lease_time / 2, [this] {
    if (!lease_ || !last_offer_) {
      return;
    }
    // Lease refresh: part of the mobile host's *local* role (paper §5.2).
    retries_left_ = config_.max_retries;
    DhcpMessage offer = *last_offer_;
    offer.yiaddr = lease_->address;
    SendRequest(offer);
  });
}

void DhcpClient::Release() {
  node_.sim().Cancel(renewal_event_);
  if (!lease_) {
    return;
  }
  DhcpMessage msg;
  msg.op = DhcpOp::kRelease;
  msg.xid = xid_;
  msg.client_mac = device_->mac();
  msg.yiaddr = lease_->address;
  UdpSocket::SendExtras extras;
  extras.force_device = device_;
  extras.force_broadcast_mac = true;
  extras.allow_unconfigured_source = true;
  socket_->SendToWithExtras(Ipv4Address::Broadcast(), kDhcpServerPort, msg.Serialize(), extras);
  lease_.reset();
}

}  // namespace msn
