#include "src/check/traffic.h"

#include <utility>
#include <vector>

namespace msn {

TrafficHarness::TrafficHarness(Testbed& testbed, const ScenarioSpec& spec)
    : tb_(testbed), spec_(spec) {}

TrafficHarness::~TrafficHarness() = default;

void TrafficHarness::Start() {
  if (spec_.traffic.probes) {
    echo_server_ = std::make_unique<ProbeEchoServer>(*tb_.mh, kProbePort);
    ProbeSender::Config cfg;
    cfg.target = Testbed::HomeAddress();
    cfg.port = kProbePort;
    cfg.interval = spec_.traffic.probe_interval;
    probe_sender_ = std::make_unique<ProbeSender>(*tb_.ch, cfg);
    probe_sender_->Start();
  }

  if (spec_.traffic.tcp) {
    StartTcp();
  }

  if (spec_.traffic.pings) {
    pinger_ = std::make_unique<Pinger>(tb_.ch->stack());
    ping_task_ = std::make_unique<PeriodicTask>(tb_.sim, spec_.traffic.ping_interval, [this] {
      ++ping_stats_.sent;
      pinger_->Ping(Testbed::HomeAddress(), Seconds(2), [this](const Pinger::Result& r) {
        if (r.success) {
          ++ping_stats_.ok;
        } else {
          ++ping_stats_.failed;
        }
      });
    });
    ping_task_->Start();
  }

  if (spec_.traffic.probe_triangle) {
    tb_.sim.Schedule(spec_.traffic.triangle_at, [this] { FireTrianglePr(); });
  }
}

void TrafficHarness::StartTcp() {
  mh_tcp_ = std::make_unique<TcpLite>(tb_.mh->stack());
  ch_tcp_ = std::make_unique<TcpLite>(tb_.ch->stack());

  // Server side: verify the byte pattern as it arrives; a close is only
  // reported once TCP-lite has delivered the FIN in order, i.e. after every
  // byte before it.
  ch_tcp_->Listen(kTcpPort, [this](TcpLiteConnection* conn) {
    conn->SetDataHandler([this](const std::vector<uint8_t>& data) {
      for (uint8_t byte : data) {
        if (byte != TcpPatternByte(tcp_stats_.server_received)) {
          tcp_stats_.pattern_ok = false;
        }
        ++tcp_stats_.server_received;
      }
    });
    conn->SetCloseHandler([this] { tcp_stats_.server_closed = true; });
  });

  // Client side: connect from the mobile host with an unbound source, so the
  // connection gets full mobile-IP treatment (home address as source) and
  // must survive every handoff in the scenario.
  tb_.sim.Schedule(Seconds(1), [this] {
    TcpLiteConnection* conn = mh_tcp_->Connect(tb_.ch_address(), kTcpPort, [this](bool ok) {
      if (!ok) {
        tcp_stats_.connect_failed = true;
        return;
      }
      tcp_stats_.client_connected = true;
    });
    if (conn == nullptr) {
      tcp_stats_.connect_failed = true;
      return;
    }
    conn->SetCloseHandler([this] { tcp_stats_.client_closed = true; });
    // Queue the whole transfer up front (Send/Close buffer until the
    // handshake completes); TCP-lite delivers it reliably across handoffs,
    // and Close() sends FIN only after the buffer drains.
    std::vector<uint8_t> payload(spec_.traffic.tcp_bytes);
    for (uint64_t i = 0; i < payload.size(); ++i) {
      payload[i] = TcpPatternByte(i);
    }
    conn->Send(payload);
    conn->Close();
  });
}

void TrafficHarness::FireTrianglePr() {
  triangle_.attempted = true;
  if (!tb_.mobile->registered()) {
    return;  // Only meaningful away from home with a live binding.
  }
  triangle_.fired = true;
  triangle_.on_radio = tb_.mobile->attachment().device == tb_.mh_radio;
  tb_.mobile->ProbeTriangleRoute(tb_.ch_address(), [this](bool ok) {
    triangle_.done = true;
    triangle_.ok = ok;
    triangle_.policy_after = tb_.mobile->policy_table().LookupConst(tb_.ch_address());
  });
}

}  // namespace msn
