file(REMOVE_RECURSE
  "libmsn_node.a"
)
