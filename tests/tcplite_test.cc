// Unit tests for TCP-lite: handshake, data transfer, retransmission,
// teardown, resets, and loss recovery.
#include <gtest/gtest.h>

#include "src/node/node.h"
#include "src/tcplite/tcplite.h"

namespace msn {
namespace {

class TcpLiteFixture : public ::testing::Test {
 protected:
  TcpLiteFixture() : sim_(31), seg_(sim_, "seg", EthernetMediumParams()),
                     a_(sim_, "a"), b_(sim_, "b") {
    a_dev_ = a_.AddEthernet("eth0", &seg_);
    b_dev_ = b_.AddEthernet("eth0", &seg_);
    a_dev_->ForceUp();
    b_dev_->ForceUp();
    a_.ConfigureInterface(a_dev_, "10.0.0.1/24");
    b_.ConfigureInterface(b_dev_, "10.0.0.2/24");
    a_tcp_ = std::make_unique<TcpLite>(a_.stack());
    b_tcp_ = std::make_unique<TcpLite>(b_.stack());
  }

  Simulator sim_;
  BroadcastMedium seg_;
  Node a_, b_;
  EthernetDevice* a_dev_;
  EthernetDevice* b_dev_;
  std::unique_ptr<TcpLite> a_tcp_;
  std::unique_ptr<TcpLite> b_tcp_;
};

TEST(TcpLiteSegmentTest, RoundTripAndChecksum) {
  TcpLiteSegment seg;
  seg.src_port = 40000;
  seg.dst_port = 23;
  seg.seq = 12345;
  seg.ack = 6789;
  seg.flags = TcpLiteSegment::kFlagAck;
  seg.window_segments = 8;
  seg.payload = {'d', 'a', 't', 'a'};

  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  auto bytes = seg.Serialize(src, dst);
  auto parsed = TcpLiteSegment::Parse(bytes, src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 12345u);
  EXPECT_EQ(parsed->ack, 6789u);
  EXPECT_TRUE(parsed->has_ack());
  EXPECT_EQ(parsed->payload, seg.payload);

  // Wrong pseudo-header addresses fail the checksum. (Swapping src and dst
  // would cancel out — the one's-complement sum is commutative — so use a
  // genuinely different address.)
  EXPECT_FALSE(TcpLiteSegment::Parse(bytes, Ipv4Address(10, 0, 0, 3), dst).has_value());
  bytes[16] ^= 0xff;  // Corrupt the first payload byte.
  EXPECT_FALSE(TcpLiteSegment::Parse(bytes, src, dst).has_value());
}

TEST_F(TcpLiteFixture, HandshakeEstablishesBothEnds) {
  TcpLiteConnection* accepted = nullptr;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) { accepted = conn; });
  bool connected = false;
  TcpLiteConnection* client =
      a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, [&](bool ok) { connected = ok; });
  ASSERT_NE(client, nullptr);
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(connected);
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(client->established());
  EXPECT_TRUE(accepted->established());
  EXPECT_EQ(accepted->remote_address(), Ipv4Address(10, 0, 0, 1));
}

TEST_F(TcpLiteFixture, ConnectToClosedPortFails) {
  bool connected = true;
  a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 99, [&](bool ok) { connected = ok; });
  sim_.RunFor(Seconds(2));
  EXPECT_FALSE(connected);
  EXPECT_GE(b_tcp_->counters().resets_sent, 1u);
}

TEST_F(TcpLiteFixture, BulkTransferDeliversInOrder) {
  std::vector<uint8_t> received;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    conn->SetDataHandler([&](const std::vector<uint8_t>& data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(client->established());

  // 10 KiB (20 MSS) exceeds the 8-segment window: flow control is exercised.
  std::vector<uint8_t> data(10240);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i & 0xff);
  }
  client->Send(data);
  sim_.RunFor(Seconds(5));
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_EQ(client->bytes_acked(), data.size());
}

TEST_F(TcpLiteFixture, RetransmissionRecoversFromOutage) {
  std::vector<uint8_t> received;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    conn->SetDataHandler([&](const std::vector<uint8_t>& data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(client->established());

  // Sever the link mid-transfer.
  b_dev_->TakeDown();
  client->Send(std::vector<uint8_t>(2048, 'x'));
  sim_.RunFor(Seconds(3));
  EXPECT_TRUE(received.empty());

  b_dev_->ForceUp();
  sim_.RunFor(Seconds(20));
  EXPECT_EQ(received.size(), 2048u);
  EXPECT_GE(client->retransmissions(), 1u);
  EXPECT_TRUE(client->established());
}

TEST_F(TcpLiteFixture, CleanCloseNotifiesPeer) {
  bool peer_closed = false;
  TcpLiteConnection* accepted = nullptr;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    accepted = conn;
    conn->SetCloseHandler([&] { peer_closed = true; });
  });
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  sim_.RunFor(Seconds(1));
  ASSERT_NE(accepted, nullptr);

  client->Send({'b', 'y', 'e'});
  client->Close();
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(peer_closed);
}

TEST_F(TcpLiteFixture, CloseFlushesPendingData) {
  std::vector<uint8_t> received;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    conn->SetDataHandler([&](const std::vector<uint8_t>& data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  sim_.RunFor(Seconds(1));
  client->Send(std::vector<uint8_t>(5000, 'q'));
  client->Close();  // FIN must wait for the 5000 bytes.
  sim_.RunFor(Seconds(10));
  EXPECT_EQ(received.size(), 5000u);
}

TEST_F(TcpLiteFixture, AbortSendsReset) {
  bool peer_closed = false;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    conn->SetCloseHandler([&] { peer_closed = true; });
  });
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  sim_.RunFor(Seconds(1));
  client->Abort();
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(peer_closed);
}

TEST_F(TcpLiteFixture, EchoServerPattern) {
  b_tcp_->Listen(7, [](TcpLiteConnection* conn) {
    conn->SetDataHandler([conn](const std::vector<uint8_t>& data) { conn->Send(data); });
  });
  std::vector<uint8_t> echoed;
  TcpLiteConnection* client = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 7, nullptr);
  client->SetDataHandler([&](const std::vector<uint8_t>& data) {
    echoed.insert(echoed.end(), data.begin(), data.end());
  });
  sim_.RunFor(Seconds(1));
  client->Send({'e', 'c', 'h', 'o'});
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(echoed, (std::vector<uint8_t>{'e', 'c', 'h', 'o'}));
}

TEST_F(TcpLiteFixture, TwoSimultaneousConnections) {
  int conns = 0;
  uint64_t total = 0;
  b_tcp_->Listen(23, [&](TcpLiteConnection* conn) {
    ++conns;
    conn->SetDataHandler([&](const std::vector<uint8_t>& data) { total += data.size(); });
  });
  TcpLiteConnection* c1 = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  TcpLiteConnection* c2 = a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, nullptr);
  ASSERT_NE(c1->local_port(), c2->local_port());
  sim_.RunFor(Seconds(1));
  c1->Send(std::vector<uint8_t>(100, '1'));
  c2->Send(std::vector<uint8_t>(200, '2'));
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(conns, 2);
  EXPECT_EQ(total, 300u);
}

TEST_F(TcpLiteFixture, SynRetransmitsUntilPeerAppears) {
  // No listener at first; since the peer answers SYN with RST, use a downed
  // device instead to simulate silence.
  b_dev_->TakeDown();
  bool connected = false;
  a_tcp_->Connect(Ipv4Address(10, 0, 0, 2), 23, [&](bool ok) { connected = ok; });
  sim_.RunFor(Seconds(2));
  EXPECT_FALSE(connected);

  b_tcp_->Listen(23, [](TcpLiteConnection*) {});
  b_dev_->ForceUp();
  sim_.RunFor(Seconds(20));
  EXPECT_TRUE(connected);
}

}  // namespace
}  // namespace msn
