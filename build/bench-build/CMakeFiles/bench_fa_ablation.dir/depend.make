# Empty dependencies file for bench_fa_ablation.
# This may be replaced when dependencies are built.
