#include "src/node/icmp.h"

#include <utility>

#include "src/node/ip_stack.h"

namespace msn {
namespace {

// Echo identifiers are allocated from one global counter so that every Pinger
// in a simulation demultiplexes unambiguously.
uint16_t g_next_echo_id = 1;

}  // namespace

void Pinger::ResetEchoIdAllocator() { g_next_echo_id = 1; }

Pinger::Pinger(IpStack& stack) : stack_(stack), echo_id_(g_next_echo_id++) {
  if (g_next_echo_id == 0) {
    g_next_echo_id = 1;
  }
  stack_.RegisterEchoListener(
      echo_id_, [this](const Ipv4Header& header, const IcmpMessage& msg) { OnIcmp(header, msg); });
}

Pinger::~Pinger() {
  stack_.UnregisterEchoListener(echo_id_);
  for (auto& [seq, out] : outstanding_) {
    stack_.sim().Cancel(out.timeout_event);
  }
}

void Pinger::Ping(Ipv4Address dst, Duration timeout, Callback cb) {
  const uint16_t seq = next_seq_++;
  IcmpMessage req;
  req.type = IcmpType::kEchoRequest;
  req.rest = IcmpMessage::MakeEchoRest(echo_id_, seq);
  req.payload = {'m', 'o', 's', 'q', 'u', 'i', 't', 'o'};

  Outstanding out;
  out.sent_at = stack_.sim().Now();
  out.cb = std::move(cb);
  out.timeout_event = stack_.sim().Schedule(timeout, [this, seq] {
    Result result;
    result.success = false;
    result.seq = seq;
    Complete(seq, result);
  });
  outstanding_.emplace(seq, std::move(out));
  stack_.SendIcmp(dst, req, source_);
}

void Pinger::OnIcmp(const Ipv4Header& header, const IcmpMessage& msg) {
  if (msg.type == IcmpType::kEchoReply) {
    const uint16_t seq = msg.echo_seq();
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) {
      return;
    }
    Result result;
    result.success = true;
    result.seq = seq;
    result.rtt = stack_.sim().Now() - it->second.sent_at;
    result.responder = header.src;
    Complete(seq, result);
    return;
  }
  if (msg.type == IcmpType::kDestinationUnreachable) {
    // The error payload embeds the offending IP header plus the first 8 bytes
    // of its payload — for an echo request that includes id and seq.
    uint16_t seq = 0;
    bool have_seq = false;
    if (msg.payload.size() >= Ipv4Header::kSize + 8) {
      const uint8_t* p = msg.payload.data() + Ipv4Header::kSize;
      seq = static_cast<uint16_t>((p[6] << 8) | p[7]);
      have_seq = outstanding_.find(seq) != outstanding_.end();
    }
    if (!have_seq) {
      // Fall back to the oldest outstanding probe; ties go to the lowest
      // sequence number. The strict `<` over a seq-ordered map pins that:
      // when this was an unordered_map, two probes sent in the same event
      // could complete in hash-bucket order, which leaks into the
      // triangle-probe state machine and breaks same-seed reproducibility.
      if (outstanding_.empty()) {
        return;
      }
      Time oldest_time = Time::Max();
      for (const auto& [s, out] : outstanding_) {
        if (out.sent_at < oldest_time) {
          oldest_time = out.sent_at;
          seq = s;
        }
      }
    }
    Result result;
    result.success = false;
    result.admin_prohibited =
        msg.code == static_cast<uint8_t>(IcmpUnreachableCode::kAdminProhibited);
    result.seq = seq;
    result.responder = header.src;
    Complete(seq, result);
  }
}

void Pinger::Complete(uint16_t seq, Result result) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) {
    return;
  }
  stack_.sim().Cancel(it->second.timeout_event);
  Callback cb = std::move(it->second.cb);
  outstanding_.erase(it);
  if (cb) {
    cb(result);
  }
}

}  // namespace msn
