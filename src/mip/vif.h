// VIF: the virtual link-level interface that accepts packets requiring
// IP-within-IP encapsulation (paper Figure 4). A route decision naming the
// VIF as output device causes the IP layer to hand it the packet; the VIF
// passes the parsed datagram to its encapsulation handler, which wraps it and
// re-enters the IP send path as a new protocol-4 packet. The handler sets the
// outer source to a *physical* interface's address, which is what prevents a
// second encapsulation (the route lookup sees a non-mobile source).
#ifndef MSN_SRC_MIP_VIF_H_
#define MSN_SRC_MIP_VIF_H_

#include <functional>
#include <string>

#include "src/link/net_device.h"
#include "src/net/headers.h"

namespace msn {

class VirtualInterface : public NetDevice {
 public:
  // Receives the parsed inner header plus the complete inner wire image as a
  // zero-copy slice of the transmitted frame.
  using EncapHandler = std::function<void(const Ipv4Header& inner, const Packet& inner_wire)>;

  VirtualInterface(Simulator& sim, std::string name = "vif");

  void SetEncapHandler(EncapHandler handler) { encap_handler_ = std::move(handler); }

  // The IP layer transmits an already-serialized datagram; re-parse its
  // header and hand the wire image to the encapsulation handler. No
  // queueing, no serialization delay: the VIF is pure software.
  bool Transmit(const EthernetFrame& frame) override;

  uint64_t bandwidth_bps() const override { return 0; }

  uint64_t packets_encapsulated() const { return packets_encapsulated_; }

 protected:
  void SendToMedium(const EthernetFrame& frame) override;

 private:
  EncapHandler encap_handler_;
  uint64_t packets_encapsulated_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_VIF_H_
