#include "src/util/siphash.h"

namespace msn {
namespace {

inline uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

inline void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

inline uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace

uint64_t SipHash24(const SipHashKey& key, const uint8_t* data, size_t len) {
  uint64_t v0 = 0x736f6d6570736575ull ^ key.k0;
  uint64_t v1 = 0x646f72616e646f6dull ^ key.k1;
  uint64_t v2 = 0x6c7967656e657261ull ^ key.k0;
  uint64_t v3 = 0x7465646279746573ull ^ key.k1;

  const size_t whole = len & ~size_t{7};
  for (size_t i = 0; i < whole; i += 8) {
    const uint64_t m = ReadLe64(data + i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes + length in the top byte.
  uint64_t b = static_cast<uint64_t>(len & 0xff) << 56;
  for (size_t i = 0; i < (len & 7); ++i) {
    b |= static_cast<uint64_t>(data[whole + i]) << (8 * i);
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

uint64_t SipHash24(const SipHashKey& key, const std::vector<uint8_t>& data) {
  return SipHash24(key, data.data(), data.size());
}

}  // namespace msn
