// Link-layer frame passed between devices and media. The payload is a fully
// serialized network-layer packet (IPv4 datagram or ARP message) held in a
// ref-counted COW Packet, so copying a frame — into a device queue, into a
// delivery callback, to every receiver on a broadcast medium — shares the
// wire bytes instead of duplicating them.
#ifndef MSN_SRC_NET_FRAME_H_
#define MSN_SRC_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/net/address.h"
#include "src/net/packet.h"

namespace msn {

enum class EtherType : uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetFrame {
  // Header (14 B) + FCS (4 B); charged against link bandwidth.
  static constexpr size_t kOverheadBytes = 18;

  MacAddress dst;
  MacAddress src;
  EtherType ethertype = EtherType::kIpv4;
  Packet payload;

  size_t WireSize() const { return kOverheadBytes + payload.size(); }
  std::string ToString() const;
};

}  // namespace msn

#endif  // MSN_SRC_NET_FRAME_H_
