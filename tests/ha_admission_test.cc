// Admission-control unit tests for the sharded home agent (DESIGN.md §17):
// stateless denial before authentication work, the silent-drop budget,
// retransmit-aware supersede, shard consistency, and the mobile host's
// backoff-and-retry convergence once load clears.
#include <gtest/gtest.h>

#include <vector>

#include "src/mip/home_agent.h"
#include "src/mip/mobile_host.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/util/assert.h"

namespace msn {
namespace {

// Drives the HA with hand-built registration requests from a host on the
// home subnet, like HomeAgentFixture, but against a testbed whose HA runs
// with a tiny admission window so the shed paths are reachable without
// thousands of clients.
class HaAdmissionFixture : public ::testing::Test {
 protected:
  void Build(uint32_t shards, uint32_t batch_max, uint32_t admission_limit,
             uint32_t drop_limit = 0, bool require_auth = false) {
    TestbedConfig cfg;
    cfg.seed = 5;
    cfg.realistic_delays = false;  // Exact, fast control-plane behaviour.
    cfg.ha_shards = shards;
    cfg.ha_batch_max = batch_max;
    cfg.ha_admission_limit = admission_limit;
    tb_ = std::make_unique<Testbed>(cfg);
    if (drop_limit > 0 || require_auth) {
      HomeAgent::Config hc = tb_->home_agent->config();
      hc.admission_drop_limit = drop_limit;
      hc.require_authentication = require_auth;
      tb_->home_agent.reset();
      tb_->home_agent = std::make_unique<HomeAgent>(*tb_->router, hc);
    }

    prober_ = std::make_unique<Node>(tb_->sim, "prober");
    dev_ = prober_->AddEthernet("eth0", tb_->net135.get());
    dev_->ForceUp();
    prober_->ConfigureInterface(dev_, "36.135.0.77/16");
    prober_->AddDefaultRoute(Testbed::RouterOn135(), dev_);

    socket_ = std::make_unique<UdpSocket>(prober_->stack());
    MSN_CHECK(socket_->Bind(0)) << "test socket";
    socket_->SetReceiveHandler(
        [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata&) {
          auto reply = RegistrationReply::Parse(data);
          if (reply) {
            replies_.push_back(*reply);
          }
        });
  }

  RegistrationRequest MakeRequest(Ipv4Address home, Ipv4Address careof,
                                  uint64_t id) {
    RegistrationRequest req;
    req.flags = kMipFlagDecapsulateSelf;
    req.lifetime_sec = 300;
    req.home_address = home;
    req.home_agent = tb_->home_agent_address();
    req.care_of_address = careof;
    req.identification = id;
    return req;
  }

  void SendRequest(const RegistrationRequest& req) {
    socket_->SendTo(tb_->home_agent_address(), kMipRegistrationPort,
                    req.Serialize());
  }

  // Distinct home addresses inside the home subnet, clear of the MH's
  // 36.135.0.10 and the router/prober addresses.
  static Ipv4Address Home(uint32_t i) { return Ipv4Address(36, 135, 0, 100 + i); }
  static Ipv4Address CareOf(uint32_t i) { return Ipv4Address(36, 8, 0, 50 + i); }

  const RegistrationReply* ReplyFor(Ipv4Address home, uint64_t id) const {
    for (const auto& reply : replies_) {
      if (reply.home_address == home && reply.identification == id) {
        return &reply;
      }
    }
    return nullptr;
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<Node> prober_;
  EthernetDevice* dev_ = nullptr;
  std::unique_ptr<UdpSocket> socket_;
  std::vector<RegistrationReply> replies_;
};

TEST_F(HaAdmissionFixture, OverloadDeniedStatelesslyBeforeAuthentication) {
  // The HA requires authentication and no prober home has a key, yet the
  // over-limit arrival is shed with kDeniedInsufficientResources — proof the
  // admission check runs before any authentication work (a post-auth denial
  // would be kDeniedFailedAuthentication).
  Build(/*shards=*/1, /*batch_max=*/1, /*admission_limit=*/2,
        /*drop_limit=*/0, /*require_auth=*/true);

  // Burst of unauthenticated requests from distinct homes. The first is
  // dequeued by the daemon (busy ~1.48 ms), the next two fill the queue to
  // the limit, and later arrivals land in the admission filter.
  for (uint32_t i = 0; i < 5; ++i) {
    SendRequest(MakeRequest(Home(i), CareOf(i), 1));
  }
  tb_->RunFor(Seconds(1));

  const auto counters = tb_->home_agent->counters();
  EXPECT_GE(counters.admission_denied, 1u);
  EXPECT_EQ(counters.registrations_accepted, 0u);  // No key, nobody admitted.
  bool saw_admission_denial = false;
  for (const auto& reply : replies_) {
    if (reply.code == MipReplyCode::kDeniedInsufficientResources) {
      saw_admission_denial = true;
      EXPECT_EQ(reply.lifetime_sec, 0);
      EXPECT_FALSE(reply.authenticator.has_value());  // Stateless, unkeyed.
    }
  }
  EXPECT_TRUE(saw_admission_denial);
}

TEST_F(HaAdmissionFixture, DenialBudgetExhaustionDropsSilently) {
  // queue_limit 1, drop_limit 2: while the daemon chews on the first
  // request, the second fills the queue, the third is denied (pressure
  // depth 1 + denials 0 < 2), and the fourth is dropped without a reply
  // (depth 1 + denials 1 >= 2).
  Build(/*shards=*/1, /*batch_max=*/1, /*admission_limit=*/1, /*drop_limit=*/2);

  for (uint32_t i = 0; i < 4; ++i) {
    SendRequest(MakeRequest(Home(i), CareOf(i), 1));
  }
  tb_->RunFor(Seconds(1));

  const auto counters = tb_->home_agent->counters();
  EXPECT_EQ(counters.admission_denied, 1u);
  EXPECT_EQ(counters.admission_dropped, 1u);
  EXPECT_EQ(counters.registrations_accepted, 2u);
  // The denied home got exactly one reply: the admission denial. The
  // dropped home got nothing at all.
  ASSERT_NE(ReplyFor(Home(2), 1), nullptr);
  EXPECT_EQ(ReplyFor(Home(2), 1)->code,
            MipReplyCode::kDeniedInsufficientResources);
  EXPECT_EQ(ReplyFor(Home(3), 1), nullptr);
}

TEST_F(HaAdmissionFixture, RetransmitSupersedesQueuedCopyInPlace) {
  Build(/*shards=*/1, /*batch_max=*/1, /*admission_limit=*/0);

  // Filler occupies the daemon so Home(1)'s request stays queued long
  // enough for its retransmit to arrive.
  SendRequest(MakeRequest(Home(0), CareOf(0), 1));
  SendRequest(MakeRequest(Home(1), CareOf(1), 1));
  // Retransmit with a newer identification and a newer care-of address: the
  // queued copy is replaced in place, not enqueued twice.
  SendRequest(MakeRequest(Home(1), CareOf(9), 2));
  tb_->RunFor(Seconds(1));

  const auto counters = tb_->home_agent->counters();
  EXPECT_EQ(counters.admission_superseded, 1u);
  EXPECT_EQ(counters.registrations_accepted, 2u);  // Filler + one for Home(1).
  auto binding = tb_->home_agent->GetBinding(Home(1));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, CareOf(9));
  EXPECT_EQ(binding->identification, 2u);
  // The superseded copy never got its own reply.
  EXPECT_EQ(ReplyFor(Home(1), 1), nullptr);
  ASSERT_NE(ReplyFor(Home(1), 2), nullptr);
  EXPECT_TRUE(ReplyFor(Home(1), 2)->accepted());
}

TEST_F(HaAdmissionFixture, StaleRetransmitDoesNotRollBackQueuedCopy) {
  Build(/*shards=*/1, /*batch_max=*/1, /*admission_limit=*/0);

  SendRequest(MakeRequest(Home(0), CareOf(0), 1));  // Filler.
  SendRequest(MakeRequest(Home(1), CareOf(5), 7));
  // A reordered older copy must not replace the newer queued one.
  SendRequest(MakeRequest(Home(1), CareOf(1), 6));
  tb_->RunFor(Seconds(1));

  EXPECT_EQ(tb_->home_agent->counters().admission_superseded, 1u);
  auto binding = tb_->home_agent->GetBinding(Home(1));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, CareOf(5));
  EXPECT_EQ(binding->identification, 7u);
}

TEST_F(HaAdmissionFixture, ShardedTableStaysConsistent) {
  Build(/*shards=*/4, /*batch_max=*/4, /*admission_limit=*/0);
  ASSERT_EQ(tb_->home_agent->shard_count(), 4u);

  constexpr uint32_t kHomes = 12;
  for (uint32_t i = 0; i < kHomes; ++i) {
    SendRequest(MakeRequest(Home(i), CareOf(i), 1));
  }
  tb_->RunFor(Seconds(2));

  EXPECT_EQ(tb_->home_agent->binding_count(), kHomes);
  EXPECT_EQ(tb_->home_agent->counters().registrations_accepted, kHomes);
  size_t total = 0;
  for (size_t s = 0; s < tb_->home_agent->shard_count(); ++s) {
    total += tb_->home_agent->ShardBindingCount(s);
    EXPECT_EQ(tb_->home_agent->ShardQueueDepth(s), 0u);
  }
  EXPECT_EQ(total, kHomes);
  EXPECT_EQ(tb_->home_agent->ShardConsistencyError(), "");
  // Every binding is retrievable through the sharded lookup path.
  for (uint32_t i = 0; i < kHomes; ++i) {
    EXPECT_TRUE(tb_->home_agent->HasBinding(Home(i)));
  }
}

TEST_F(HaAdmissionFixture, DeniedMobileHostBacksOffAndConverges) {
  // The real MobileHost attaches to a foreign net while a prober flood
  // keeps the HA's queue at the limit. Its registration is admission-denied
  // at least once; after the flood ends, the backoff retry (which does not
  // consume the retransmit budget) lands and the MH converges.
  Build(/*shards=*/1, /*batch_max=*/1, /*admission_limit=*/2);

  // Flood: one request every 400 us for 3 s from rotating homes — arrivals
  // ~3.7x faster than the 1.48 ms/request drain, so the queue stays at the
  // limit for the whole window.
  constexpr int kFlood = 7500;
  for (int i = 0; i < kFlood; ++i) {
    const Duration at = Milliseconds(10) + Microseconds(400) * int64_t{i};
    tb_->sim.Schedule(at, [this, i] {
      SendRequest(MakeRequest(Home(i % 40), CareOf(i % 40), 1000 + i));
    });
  }

  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();
  bool attach_result = false;
  tb_->sim.Schedule(Milliseconds(500), [&] {
    tb_->mobile->AttachForeign(tb_->WiredAttachment(50),
                               [&](bool ok) { attach_result = ok; });
  });
  tb_->RunFor(Seconds(30));

  EXPECT_TRUE(attach_result);
  EXPECT_EQ(tb_->mobile->state(), MobileHost::State::kRegistered);
  EXPECT_TRUE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_GE(tb_->mobile->counters().admission_backoffs, 1u);
  EXPECT_GE(tb_->home_agent->counters().admission_denied, 1u);
  EXPECT_EQ(tb_->home_agent->ShardConsistencyError(), "");
}

}  // namespace
}  // namespace msn
