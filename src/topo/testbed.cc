#include "src/topo/testbed.h"

#include "src/node/icmp.h"
#include "src/util/logging.h"

namespace msn {

IpStack::DelayParams Testbed::SlowHostDelays() {
  IpStack::DelayParams p;
  // 40 MHz 486 subnotebook: around a millisecond of kernel path per packet.
  p.send_mean = MillisecondsF(1.0);
  p.send_jitter = MillisecondsF(0.12);
  p.deliver_mean = MillisecondsF(1.0);
  p.deliver_jitter = MillisecondsF(0.12);
  p.forward_mean = MillisecondsF(0.6);
  p.forward_jitter = MillisecondsF(0.08);
  return p;
}

IpStack::DelayParams Testbed::RouterDelays() {
  IpStack::DelayParams p;
  // Pentium 90 router / home agent.
  p.send_mean = MillisecondsF(0.55);
  p.send_jitter = MillisecondsF(0.06);
  p.deliver_mean = MillisecondsF(0.55);
  p.deliver_jitter = MillisecondsF(0.06);
  p.forward_mean = MillisecondsF(0.25);
  p.forward_jitter = MillisecondsF(0.04);
  return p;
}

Testbed::Testbed(TestbedConfig config) : sim(config.seed), config_(config) {
  // MAC assignment must depend only on the scenario, not on how many
  // testbeds this process built before: ARP payloads carry MACs, and the
  // differential datapath tests compare wire bytes across whole runs.
  Node::ResetMacAllocator();
  Pinger::ResetEchoIdAllocator();
  if (config_.with_backup_ha) {
    // The replicated pair lives on dedicated home-network hosts.
    config_.ha_on_router = false;
  }
  BuildMedia();
  BuildRouter();
  BuildMobileHost();
  BuildCorrespondent();
  if (config_.transit_filter) {
    InstallTransitFilter();
  }
}

Testbed::~Testbed() = default;

void Testbed::BuildMedia() {
  net135 = std::make_unique<BroadcastMedium>(sim, "net-36.135", EthernetMediumParams(), &metrics);
  net8 = std::make_unique<BroadcastMedium>(sim, "net-36.8", EthernetMediumParams(), &metrics);
  radio134 = std::make_unique<BroadcastMedium>(sim, "net-36.134", RadioMediumParams(), &metrics);
  MediumParams campus_params = EthernetMediumParams();
  campus_params.latency = MillisecondsF(2.0);  // A couple of campus hops away.
  campus_params.latency_jitter = MillisecondsF(0.3);
  campus = std::make_unique<BroadcastMedium>(sim, "campus", campus_params, &metrics);
}

void Testbed::BuildRouter() {
  router = std::make_unique<Node>(sim, "router", &metrics);
  if (config_.realistic_delays) {
    router->stack().set_delay_params(RouterDelays());
  }
  router->stack().set_forwarding_enabled(true);

  EthernetDevice* r135 = router->AddEthernet("eth135", net135.get());
  EthernetDevice* r8 = router->AddEthernet("eth8", net8.get());
  StripRadioDevice* r134 = router->AddRadio("radio134", radio134.get());
  EthernetDevice* rcampus = router->AddEthernet("ethcampus", campus.get());
  for (NetDevice* dev : {static_cast<NetDevice*>(r135), static_cast<NetDevice*>(r8),
                         static_cast<NetDevice*>(r134), static_cast<NetDevice*>(rcampus)}) {
    dev->ForceUp();
  }
  router->ConfigureInterface(r135, "36.135.0.1/16");
  router->ConfigureInterface(r8, "36.8.0.1/16");
  router->ConfigureInterface(r134, "36.134.0.1/16");
  router->ConfigureInterface(rcampus, "171.64.0.1/16");
  router->AddLoopback();

  // Home agent placement.
  if (config_.ha_on_router) {
    ha_address_ = RouterOn135();
    HomeAgent::Config ha_config;
    ha_config.address = ha_address_;
    ha_config.home_device = r135;
    ha_config.home_subnet = HomeSubnet();
    ha_config.calibration = config_.calibration;
    ha_config.metrics = &metrics;
    ha_config.num_shards = config_.ha_shards;
    ha_config.batch_max = config_.ha_batch_max;
    ha_config.admission_queue_limit = config_.ha_admission_limit;
    home_agent = std::make_unique<HomeAgent>(*router, ha_config);
  } else {
    ha_host = std::make_unique<Node>(sim, "ha-host", &metrics);
    if (config_.realistic_delays) {
      ha_host->stack().set_delay_params(RouterDelays());
    }
    ha_host->stack().set_forwarding_enabled(true);
    EthernetDevice* dev = ha_host->AddEthernet("eth0", net135.get());
    dev->ForceUp();
    ha_host->ConfigureInterface(dev, "36.135.0.2/16");
    ha_host->AddDefaultRoute(RouterOn135(), dev);
    ha_host->AddLoopback();
    ha_address_ = HaHostAddress();

    HomeAgent::Config ha_config;
    ha_config.address = ha_address_;
    ha_config.home_device = dev;
    ha_config.home_subnet = HomeSubnet();
    ha_config.calibration = config_.calibration;
    ha_config.metrics = &metrics;
    ha_config.num_shards = config_.ha_shards;
    ha_config.batch_max = config_.ha_batch_max;
    ha_config.admission_queue_limit = config_.ha_admission_limit;
    home_agent = std::make_unique<HomeAgent>(*ha_host, ha_config);

    if (config_.with_backup_ha) {
      backup_ha_host = std::make_unique<Node>(sim, "ha-backup", &metrics);
      if (config_.realistic_delays) {
        backup_ha_host->stack().set_delay_params(RouterDelays());
      }
      backup_ha_host->stack().set_forwarding_enabled(true);
      EthernetDevice* bdev = backup_ha_host->AddEthernet("eth0", net135.get());
      bdev->ForceUp();
      backup_ha_host->ConfigureInterface(bdev, "36.135.0.3/16");
      backup_ha_host->AddDefaultRoute(RouterOn135(), bdev);
      backup_ha_host->AddLoopback();

      HomeAgent::Config backup_config;
      backup_config.address = BackupHaAddress();
      backup_config.home_device = bdev;
      backup_config.home_subnet = HomeSubnet();
      backup_config.calibration = config_.calibration;
      backup_config.metrics = &metrics;
      backup_config.metric_prefix = "ha.backup.";
      backup_config.initial_role = HaRole::kStandby;
      backup_config.num_shards = config_.ha_shards;
      backup_config.batch_max = config_.ha_batch_max;
      backup_config.admission_queue_limit = config_.ha_admission_limit;
      backup_agent = std::make_unique<HomeAgent>(*backup_ha_host, backup_config);

      // Sync links, one per agent. Takeover timeouts are staggered so the
      // designated backup always moves first when both ends go quiet.
      HaReplicationLink::Config primary_link;
      primary_link.self = HaHostAddress();
      primary_link.peer = BackupHaAddress();
      primary_link.takeover_timeout = Milliseconds(2400);
      primary_link.metrics = &metrics;
      repl_primary = std::make_unique<HaReplicationLink>(*home_agent, primary_link);

      HaReplicationLink::Config backup_link;
      backup_link.self = BackupHaAddress();
      backup_link.peer = HaHostAddress();
      backup_link.takeover_timeout = Milliseconds(1600);
      backup_link.metrics = &metrics;
      backup_link.metric_prefix = "repl.backup.";
      repl_backup = std::make_unique<HaReplicationLink>(*backup_agent, backup_link);
    }
  }

  if (config_.with_dhcp) {
    DhcpServer::Config d8;
    d8.device = r8;
    d8.subnet = Net8();
    d8.first_host_index = 100;
    d8.pool_size = 64;
    d8.gateway = RouterOn8();
    dhcp_net8 = std::make_unique<DhcpServer>(*router, d8);

    DhcpServer::Config d134;
    d134.device = r134;
    d134.subnet = Net134();
    d134.first_host_index = 100;
    d134.pool_size = 64;
    d134.gateway = RouterOn134();
    dhcp_net134 = std::make_unique<DhcpServer>(*router, d134);
  }
}

void Testbed::BuildMobileHost() {
  mh = std::make_unique<Node>(sim, "mh", &metrics);
  if (config_.realistic_delays) {
    mh->stack().set_delay_params(SlowHostDelays());
  }
  mh->AddLoopback();
  mh_eth = mh->AddEthernet("eth0", net135.get());  // Starts at home.
  mh_radio = mh->AddRadio("strip0", radio134.get());

  MobileHost::Config mc;
  mc.home_address = HomeAddress();
  mc.home_mask = SubnetMask(16);
  mc.home_agent = ha_address_;
  mc.home_gateway = RouterOn135();
  mc.home_device = mh_eth;
  mc.lifetime_sec = config_.mh_lifetime_sec;
  mc.calibration = config_.calibration;
  mc.metrics = &metrics;
  if (config_.with_backup_ha) {
    mc.backup_home_agent = BackupHaAddress();
  }
  mobile = std::make_unique<MobileHost>(*mh, mc);
}

int Testbed::ServingAgentCount() const {
  int count = home_agent != nullptr && home_agent->serving() ? 1 : 0;
  if (backup_agent != nullptr && backup_agent->serving()) {
    ++count;
  }
  return count;
}

HomeAgent* Testbed::ServingAgent() {
  if (home_agent != nullptr && home_agent->serving()) {
    return home_agent.get();
  }
  if (backup_agent != nullptr && backup_agent->serving()) {
    return backup_agent.get();
  }
  return home_agent.get();
}

void Testbed::BuildCorrespondent() {
  ch = std::make_unique<Node>(sim, "ch", &metrics);
  if (config_.realistic_delays) {
    ch->stack().set_delay_params(SlowHostDelays());
  }
  ch->AddLoopback();
  if (config_.external_ch) {
    ch_dev = ch->AddEthernet("eth0", campus.get());
    ch_dev->ForceUp();
    ch->ConfigureInterface(ch_dev, "171.64.0.20/16");
    ch->AddDefaultRoute(RouterOnCampus(), ch_dev);
    ch_address_ = Ipv4Address(171, 64, 0, 20);
  } else {
    ch_dev = ch->AddEthernet("eth0", net8.get());
    ch_dev->ForceUp();
    ch->ConfigureInterface(ch_dev, "36.8.0.20/16");
    ch->AddDefaultRoute(RouterOn8(), ch_dev);
    ch_address_ = Ipv4Address(36, 8, 0, 20);
  }
}

void Testbed::InstallTransitFilter() {
  // Security-conscious router: traffic arriving on a *foreign* subnet's
  // interface must carry a source address local to that subnet.
  router->stack().SetForwardFilter([this](const Ipv4Header& header, NetDevice* ingress) {
    if (ingress == nullptr) {
      return true;
    }
    if (ingress->name() == "eth8") {
      return Net8().Contains(header.src);
    }
    if (ingress->name() == "radio134") {
      return Net134().Contains(header.src);
    }
    return true;  // Home subnet and campus: unfiltered.
  });
}

MobileHost::Attachment Testbed::WiredAttachment(uint32_t host_index) {
  MobileHost::Attachment att;
  att.device = mh_eth;
  att.care_of = Net8().HostAt(host_index);
  att.mask = SubnetMask(16);
  att.gateway = RouterOn8();
  return att;
}

MobileHost::Attachment Testbed::WirelessAttachment(uint32_t host_index) {
  MobileHost::Attachment att;
  att.device = mh_radio;
  att.care_of = Net134().HostAt(host_index);
  att.mask = SubnetMask(16);
  att.gateway = RouterOn134();
  return att;
}

MobilityDriver::MediumBinding Testbed::WiredMobilityBinding(FaultInjector* injector,
                                                            uint32_t host_index) {
  MobilityDriver::MediumBinding b;
  b.cell_medium = CellMedium::kWired;
  b.medium = net8.get();
  b.injector = injector;
  b.attachment = WiredAttachment(host_index);
  // Wired "cells" model office drops: short reach, clean until the edge.
  b.quality.range_m = 60.0;
  b.quality.good_range_fraction = 0.75;
  b.quality.edge_latency = MillisecondsF(0.5);
  return b;
}

MobilityDriver::MediumBinding Testbed::RadioMobilityBinding(FaultInjector* injector,
                                                            uint32_t host_index) {
  MobilityDriver::MediumBinding b;
  b.cell_medium = CellMedium::kRadio;
  b.medium = radio134.get();
  b.injector = injector;
  b.attachment = WirelessAttachment(host_index);
  b.quality.range_m = 120.0;
  b.quality.good_range_fraction = 0.6;
  b.quality.edge_latency = MillisecondsF(1.5);
  return b;
}

void Testbed::MoveMhEthernetTo(BroadcastMedium* medium) { mh_eth->AttachTo(medium); }

void Testbed::ForceRadioUp() { mh_radio->ForceUp(); }

void Testbed::ForceEthUp() { mh_eth->ForceUp(); }

void Testbed::StartMobileAtHome() {
  mh_eth->ForceUp();
  bool done = false;
  mobile->AttachHome([&done](bool ok) {
    (void)ok;
    done = true;
  });
  sim.RunFor(Milliseconds(200));
  if (!done) {
    MSN_WARN("topo", "StartMobileAtHome did not settle");
  }
}

void Testbed::StartMobileOnWired(uint32_t host_index) {
  MoveMhEthernetTo(net8.get());
  mh_eth->ForceUp();
  bool done = false;
  mobile->AttachForeign(WiredAttachment(host_index), [&done](bool ok) {
    (void)ok;
    done = true;
  });
  sim.RunFor(Seconds(8));
  if (!done || !mobile->registered()) {
    MSN_WARN("topo", "StartMobileOnWired did not settle");
  }
}

void Testbed::StartMobileOnWireless(uint32_t host_index) {
  // Tear the wired interface down (an unplugged but still-configured device
  // would leave a stale connected route shadowing the default route).
  mh->stack().routes().RemoveForDevice(mh_eth);
  mh->stack().UnconfigureAddress(mh_eth);
  mh_eth->TakeDown();
  MoveMhEthernetTo(nullptr);
  mh_radio->ForceUp();
  bool done = false;
  mobile->AttachForeign(WirelessAttachment(host_index), [&done](bool ok) {
    (void)ok;
    done = true;
  });
  sim.RunFor(Seconds(8));
  if (!done || !mobile->registered()) {
    MSN_WARN("topo", "StartMobileOnWireless did not settle");
  }
}

}  // namespace msn
