#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace msn {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Clear() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::Summary(int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", precision, mean(), precision, stddev());
  return buf;
}

void IntHistogram::Add(int64_t value) {
  ++buckets_[value];
  ++total_;
}

int64_t IntHistogram::CountFor(int64_t value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

int64_t IntHistogram::min_value() const {
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

int64_t IntHistogram::max_value() const {
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

std::string IntHistogram::Render(const std::string& value_label) const {
  std::string out;
  if (buckets_.empty()) {
    return "  (no samples)\n";
  }
  char line[160];
  for (int64_t v = min_value(); v <= max_value(); ++v) {
    const int64_t c = CountFor(v);
    std::string bar(static_cast<size_t>(c), '#');
    std::snprintf(line, sizeof(line), "  %s %3lld : %3lld  %s\n", value_label.c_str(),
                  static_cast<long long>(v), static_cast<long long>(c), bar.c_str());
    out += line;
  }
  return out;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace msn
