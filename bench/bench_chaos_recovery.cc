// Chaos recovery benchmark: time from fault-cleared to re-registered.
//
// Sweeps Gilbert-Elliott burst-loss rates against home-agent outage lengths
// (with daemon restart, so the MH must also resync identifications). For
// each cell the mobile host starts registered with a short binding lifetime;
// the outage wipes the binding mid-renewal; recovery time is measured from
// the instant the outage ends to the instant the MH is back in kRegistered
// with a matching HA binding.
//
// Output: a human-readable table plus the unified BENCH_chaos_recovery.json
// report (one row per sweep cell). Exits non-zero if any run fails to
// recover.
#include <cstdio>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct Cell {
  double loss;      // Stationary burst-loss fraction on the foreign subnet.
  Duration outage;  // HA outage length (daemon restart on recovery).
  int runs = 0;
  RunningStats recovery_ms;
  std::vector<double> recovery_samples_ms;
  uint64_t retransmissions = 0;
  uint64_t resyncs = 0;
  int failures = 0;  // Runs that never got back to kRegistered.
};

// Gilbert-Elliott parameters with the requested stationary loss fraction:
// p_enter / (p_enter + p_exit) = loss, with a fixed burst-exit rate.
GilbertElliottParams BurstParams(double loss) {
  GilbertElliottParams ge;
  ge.p_exit_burst = 0.25;
  ge.p_enter_burst = loss > 0.0 ? ge.p_exit_burst * loss / (1.0 - loss) : 0.0;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  return ge;
}

void RunCell(Cell& cell, uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.realistic_delays = false;
  cfg.mh_lifetime_sec = 5;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  if (!tb.mobile->registered()) {
    ++cell.failures;
    return;
  }

  FaultInjector injector(tb.sim, *tb.net8, &tb.metrics);
  if (cell.loss > 0.0) {
    FaultProfile profile;
    profile.burst_loss = BurstParams(cell.loss);
    injector.SetProfile(profile);
  }

  // Outage begins at 4 s (just as the first renewal goes out) and restarts
  // the daemon, so recovery needs outage-end + retransmit + resync.
  const Duration outage_start = Seconds(4);
  FaultSchedule schedule;
  schedule.HaOutage(outage_start, *tb.home_agent, cell.outage,
                    /*restart_daemon=*/true);
  schedule.Arm(tb.sim);

  const Time fault_clear = tb.sim.Now() + outage_start + cell.outage;
  const uint64_t retransmissions_before = tb.mobile->counters().retransmissions;
  const uint64_t resyncs_before = tb.mobile->counters().resyncs;

  // Poll for recovery: registered again with a consistent binding.
  Time recovered_at = Time::Zero();
  PeriodicTask poll(tb.sim, Milliseconds(10), [&] {
    if (recovered_at != Time::Zero() || tb.sim.Now() < fault_clear) {
      return;
    }
    if (tb.mobile->registered() &&
        tb.home_agent->HasBinding(Testbed::HomeAddress())) {
      recovered_at = tb.sim.Now();
    }
  });
  poll.Start();
  tb.RunFor(outage_start + cell.outage + Seconds(60));

  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }
  if (recovered_at == Time::Zero()) {
    ++cell.failures;
    return;
  }
  ++cell.runs;
  const double recovery_ms = (recovered_at - fault_clear).ToMillisF();
  cell.recovery_ms.Add(recovery_ms);
  cell.recovery_samples_ms.push_back(recovery_ms);
  cell.retransmissions +=
      tb.mobile->counters().retransmissions - retransmissions_before;
  cell.resyncs += tb.mobile->counters().resyncs - resyncs_before;
}

int Main() {
  const bool smoke = BenchSmokeMode();
  const std::vector<double> loss_rates =
      smoke ? std::vector<double>{0.0, 0.1} : std::vector<double>{0.0, 0.1, 0.3};
  const std::vector<Duration> outages =
      smoke ? std::vector<Duration>{Milliseconds(500), Milliseconds(1500)}
            : std::vector<Duration>{Milliseconds(500), Milliseconds(1500), Seconds(3)};
  const int kRunsPerCell = BenchIterations(5, 2);

  BenchReport report("chaos_recovery",
                     "Recovery time after HA daemon restarts under burst loss");
  report.set_seed(1000);
  report.AddParam("runs_per_cell", kRunsPerCell);
  report.AddParam("cells",
                  static_cast<int>(loss_rates.size() * outages.size()));

  std::vector<Cell> cells;
  bool metrics_captured = false;
  for (double loss : loss_rates) {
    for (Duration outage : outages) {
      Cell cell;
      cell.loss = loss;
      cell.outage = outage;
      for (int run = 0; run < kRunsPerCell; ++run) {
        const uint64_t seed = 1000 + static_cast<uint64_t>(loss * 100) * 37 +
                              static_cast<uint64_t>(outage.millis()) * 7 +
                              static_cast<uint64_t>(run);
        // Snapshot registry metrics (incl. fault.* counters) once, from the
        // first run of the first cell.
        const bool capture = !metrics_captured;
        metrics_captured = true;
        RunCell(cell, seed, capture ? &report : nullptr);
      }
      cells.push_back(cell);
    }
  }

  std::printf("=======================================================================\n");
  std::printf("Chaos recovery: HA outage (daemon restart) + burst loss on the wired\n");
  std::printf("foreign subnet; time from fault-cleared to re-registered, %d runs/cell\n",
              kRunsPerCell);
  std::printf("=======================================================================\n\n");
  std::printf("loss   outage_ms  recovery ms mean (stddev)       max      rtx  resyncs  fail\n");
  std::printf("-----  ---------  -------------------------  --------  -------  -------  ----\n");
  for (const Cell& cell : cells) {
    std::printf("%4.0f%%  %9lld  %-25s  %8.1f  %7llu  %7llu  %4d\n",
                cell.loss * 100.0, static_cast<long long>(cell.outage.millis()),
                cell.recovery_ms.Summary(1).c_str(), cell.recovery_ms.max(),
                static_cast<unsigned long long>(cell.retransmissions),
                static_cast<unsigned long long>(cell.resyncs), cell.failures);
    char label[64];
    std::snprintf(label, sizeof(label), "loss=%.2f outage_ms=%lld", cell.loss,
                  static_cast<long long>(cell.outage.millis()));
    report.AddRow(label, {{"loss", cell.loss},
                          {"outage_ms", cell.outage.millis()},
                          {"runs", cell.runs},
                          {"failures", cell.failures},
                          {"recovery_ms_mean", cell.recovery_ms.mean()},
                          {"recovery_ms_max", cell.recovery_ms.max()},
                          {"retransmissions", cell.retransmissions},
                          {"resyncs", cell.resyncs}});
  }

  // One pooled summary across all cells (exact percentiles).
  std::vector<double> all_recovery_ms;
  for (const Cell& cell : cells) {
    all_recovery_ms.insert(all_recovery_ms.end(), cell.recovery_samples_ms.begin(),
                           cell.recovery_samples_ms.end());
  }
  report.AddSummary("recovery_ms_all_cells", "ms", all_recovery_ms);

  std::printf(
      "\nShape check: recovery is bounded by the retransmit backoff cap (8 s)\n"
      "plus one identification-resync round trip; higher loss stretches the\n"
      "tail but never prevents recovery (fail must stay 0 across the sweep).\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());

  int total_failures = 0;
  for (const Cell& cell : cells) {
    total_failures += cell.failures;
  }
  return total_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
