#include "src/node/reassembly.h"

#include <algorithm>

#include "src/util/assert.h"

namespace msn {

// Largest payload a reassembled datagram may carry and still serialize with a
// valid 16-bit total_length. Fragments claiming bytes beyond this bound are
// hostile or corrupt (the classic "ping of death" overflow) and are dropped.
inline constexpr size_t kMaxReassembledPayload = 0xffff - Ipv4Header::kSize;

std::vector<Ipv4Datagram> FragmentDatagram(const Ipv4Datagram& dg, size_t mtu) {
  std::vector<Ipv4Datagram> fragments;
  const size_t max_payload_raw = mtu > Ipv4Header::kSize ? mtu - Ipv4Header::kSize : 8;
  // Fragment payloads (except the last) must be multiples of 8 bytes.
  const size_t max_payload = std::max<size_t>(8, max_payload_raw & ~size_t{7});

  const size_t base_offset_bytes = static_cast<size_t>(dg.header.fragment_offset) * 8;
  size_t at = 0;
  while (at < dg.payload.size()) {
    const size_t chunk = std::min(max_payload, dg.payload.size() - at);
    Ipv4Datagram fragment;
    fragment.header = dg.header;
    // The 13-bit offset field caps how far into a datagram a fragment can
    // start; beyond it the cast below would silently wrap.
    MSN_CHECK((base_offset_bytes + at) / 8 <= 0x1fff)
        << "fragment offset " << (base_offset_bytes + at) << " bytes exceeds the 13-bit field";
    fragment.header.fragment_offset =
        static_cast<uint16_t>((base_offset_bytes + at) / 8);
    const bool last_piece = at + chunk == dg.payload.size();
    // If the input was itself a middle fragment, the last piece inherits MF.
    fragment.header.more_fragments = !last_piece || dg.header.more_fragments;
    fragment.payload.assign(dg.payload.begin() + static_cast<long>(at),
                            dg.payload.begin() + static_cast<long>(at + chunk));
    fragments.push_back(std::move(fragment));
    at += chunk;
  }
  if (fragments.empty()) {
    fragments.push_back(dg);  // Zero-payload datagram.
  }
  return fragments;
}

void ReassemblyService::Expire() {
  const Time now = sim_.Now();
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->second.started + timeout_ < now) {
      ++counters_.buffers_timed_out;
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Ipv4Datagram> ReassemblyService::TryComplete(const Key& key, Buffer& buffer) {
  if (!buffer.have_first || !buffer.total_length.has_value()) {
    return std::nullopt;
  }
  // Walk the pieces checking contiguity.
  size_t covered = 0;
  for (const auto& [offset, piece] : buffer.pieces) {
    if (offset != covered) {
      return std::nullopt;  // Gap (or overlap, which we treat as a gap).
    }
    covered += piece.size();
  }
  if (covered != *buffer.total_length) {
    return std::nullopt;
  }
  // Guaranteed by the oversize rejection in Add(); a violation here means a
  // buffer was fed around that check and the datagram could not serialize.
  MSN_ASSERT(covered <= kMaxReassembledPayload) << "reassembled " << covered << " bytes";
  Ipv4Datagram whole;
  whole.header = buffer.first_header;
  whole.header.more_fragments = false;
  whole.header.fragment_offset = 0;
  whole.payload.reserve(covered);
  for (const auto& [offset, piece] : buffer.pieces) {
    whole.payload.insert(whole.payload.end(), piece.begin(), piece.end());
  }
  buffers_.erase(key);
  ++counters_.datagrams_reassembled;
  return whole;
}

std::optional<Ipv4Datagram> ReassemblyService::Add(const Ipv4Datagram& fragment) {
  if (!fragment.header.IsFragment()) {
    return fragment;
  }
  ++counters_.fragments_received;
  Expire();

  // Reject fragments whose claimed extent cannot belong to a well-formed
  // datagram before they touch a buffer.
  const size_t claimed_end =
      static_cast<size_t>(fragment.header.fragment_offset) * 8 + fragment.payload.size();
  if (claimed_end > kMaxReassembledPayload) {
    ++counters_.fragments_rejected_oversize;
    return std::nullopt;
  }

  const Key key{fragment.header.src.value(), fragment.header.dst.value(),
                fragment.header.identification,
                static_cast<uint8_t>(fragment.header.protocol)};
  auto it = buffers_.find(key);
  if (it == buffers_.end()) {
    if (buffers_.size() >= max_buffers_) {
      // Evict the oldest buffer.
      auto oldest = buffers_.begin();
      for (auto scan = buffers_.begin(); scan != buffers_.end(); ++scan) {
        if (scan->second.started < oldest->second.started) {
          oldest = scan;
        }
      }
      buffers_.erase(oldest);
      ++counters_.buffers_evicted;
    }
    Buffer buffer;
    buffer.started = sim_.Now();
    it = buffers_.emplace(key, std::move(buffer)).first;
  }

  Buffer& buffer = it->second;
  const auto offset_bytes = static_cast<uint16_t>(fragment.header.fragment_offset * 8);
  buffer.pieces[offset_bytes] = fragment.payload;
  if (fragment.header.fragment_offset == 0) {
    buffer.first_header = fragment.header;
    buffer.have_first = true;
  }
  if (!fragment.header.more_fragments) {
    buffer.total_length = static_cast<size_t>(offset_bytes) + fragment.payload.size();
  }
  return TryComplete(key, buffer);
}

}  // namespace msn
