file(REMOVE_RECURSE
  "CMakeFiles/msn_topo.dir/scenario.cc.o"
  "CMakeFiles/msn_topo.dir/scenario.cc.o.d"
  "CMakeFiles/msn_topo.dir/testbed.cc.o"
  "CMakeFiles/msn_topo.dir/testbed.cc.o.d"
  "libmsn_topo.a"
  "libmsn_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
