file(REMOVE_RECURSE
  "CMakeFiles/msn_sim.dir/event_queue.cc.o"
  "CMakeFiles/msn_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/msn_sim.dir/simulator.cc.o"
  "CMakeFiles/msn_sim.dir/simulator.cc.o.d"
  "CMakeFiles/msn_sim.dir/time.cc.o"
  "CMakeFiles/msn_sim.dir/time.cc.o.d"
  "libmsn_sim.a"
  "libmsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
