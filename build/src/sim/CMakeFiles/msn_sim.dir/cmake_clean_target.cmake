file(REMOVE_RECURSE
  "libmsn_sim.a"
)
