#include "src/link/link_device.h"

namespace msn {

LinkDevice::LinkDevice(Simulator& sim, std::string name, MacAddress mac, uint64_t bandwidth_bps)
    : NetDevice(sim, std::move(name), mac), bandwidth_bps_(bandwidth_bps) {}

LinkDevice::~LinkDevice() {
  if (medium_ != nullptr) {
    medium_->Detach(this);
  }
}

void LinkDevice::AttachTo(BroadcastMedium* medium) {
  if (medium_ != nullptr) {
    medium_->Detach(this);
  }
  medium_ = medium;
  if (medium_ != nullptr) {
    medium_->Attach(this);
  }
}

void LinkDevice::SendToMedium(const EthernetFrame& frame) {
  if (medium_ != nullptr) {
    medium_->FrameFromDevice(this, frame);
  }
}

EthernetDevice::EthernetDevice(Simulator& sim, std::string name, MacAddress mac)
    : LinkDevice(sim, std::move(name), mac, kDefaultBandwidthBps) {
  // PCMCIA card + driver initialization. Dominates wired cold-switch cost.
  set_bring_up_time(Milliseconds(600));
}

StripRadioDevice::StripRadioDevice(Simulator& sim, std::string name, MacAddress mac)
    : LinkDevice(sim, std::move(name), mac, kDefaultBandwidthBps) {
  // Radio power-up + Starmode network acquisition over the serial port.
  // Together with registration over the ~230 ms radio RTT this keeps the
  // cold-switch outage "generally less than 1.25 seconds" (paper §4).
  set_bring_up_time(Milliseconds(750));
  // STRIP frames are smaller than Ethernet's.
  set_mtu(1100);
}

LoopbackDevice::LoopbackDevice(Simulator& sim, std::string name)
    : NetDevice(sim, std::move(name), MacAddress::Zero()) {
  set_bring_up_time(Duration());
  set_mtu(65535);
}

void LoopbackDevice::SendToMedium(const EthernetFrame& frame) {
  // Init-capture so the closure member is a mutable EthernetFrame (a plain
  // copy-capture of a const& parameter would keep the const).
  sim_.Schedule(Microseconds(1),
                [this, f = frame]() mutable { DeliverFrame(std::move(f)); });
}

MediumParams EthernetMediumParams() {
  MediumParams p;
  p.latency = Microseconds(30);
  p.latency_jitter = Microseconds(5);
  p.drop_probability = 0.0;
  return p;
}

MediumParams RadioMediumParams() {
  MediumParams p;
  // One-way air latency; with ~16 ms serialization each way for a small probe
  // this yields the paper's 200-250 ms MH<->HA round trip through the radio.
  p.latency = Milliseconds(85);
  p.latency_jitter = Milliseconds(9);
  // Radios occasionally eat a frame (observed once in the paper's runs).
  p.drop_probability = 0.002;
  return p;
}

}  // namespace msn
