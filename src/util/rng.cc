#include "src/util/rng.h"

#include <cmath>

#include "src/util/siphash.h"

namespace msn {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  // Unbiased rejection sampling over the range width.
  const uint64_t range = hi - lo + 1;
  if (range == 0) {
    return NextU64();  // Full 64-bit range.
  }
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + v % range;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  return lo + static_cast<int64_t>(UniformInt(uint64_t{0}, span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (stddev <= 0.0) {
    return mean;
  }
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller transform.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::NormalAtLeast(double mean, double stddev, double floor) {
  const double v = Normal(mean, stddev);
  return v < floor ? floor : v;
}

double Rng::Exponential(double mean) {
  if (mean <= 0.0) {
    return 0.0;
  }
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Fork(std::string_view label) const {
  // Key the label hash with the parent's full state (not a drawn value, so
  // the parent stream is left untouched). SipHash gives well-mixed,
  // label-decoupled seeds even for short or similar labels.
  const SipHashKey key{s_[0] ^ s_[2], s_[1] ^ s_[3]};
  const uint64_t seed =
      SipHash24(key, reinterpret_cast<const uint8_t*>(label.data()), label.size());
  return Rng(seed);
}

}  // namespace msn
