// Extension bench: transport-level behaviour across hand-offs.
//
// The paper's motivation (§1) is that long-lived connections survive network
// switches; its future work (§6) notes the huge performance differences
// upper layers then experience (10 Mb/s Ethernet vs ~35 kb/s radio). This
// bench runs a continuous TCP-lite bulk transfer from the mobile host to a
// correspondent while the MH cold-switches wired -> radio -> wired, and
// prints the per-second goodput time-series: the connection stalls, recovers
// by retransmission, and tracks each link's capacity — without either
// endpoint ever addressing anything but the home address.
//
// The exported report carries the same time-series sampled on the simulator
// clock (probe gauges "tcp.rx_bytes_total" / "tcp.retransmissions" plus the
// mobile host's registry counters), so the stall-and-recover shape is
// machine-readable.
#include <cstdio>
#include <vector>

#include "src/tcplite/tcplite.h"
#include "src/telemetry/export.h"
#include "src/telemetry/time_series.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

int Main() {
  const int kSeconds = BenchIterations(22, 10);
  const int kFirstSwitchSec = 5;
  const int kSecondSwitchSec = BenchSmokeMode() ? 8 : 15;
  const uint64_t kSeed = 4242;

  std::printf("==============================================================\n");
  std::printf("TCP-lite bulk transfer across hand-offs (extension bench)\n");
  std::printf("MH -> CH, continuous send; cold switches at t=%ds and t=%ds\n",
              kFirstSwitchSec, kSecondSwitchSec);
  std::printf("==============================================================\n\n");

  BenchReport report("tcp_handoff",
                     "TCP-lite bulk transfer surviving cold wired/radio hand-offs");
  report.set_seed(kSeed);
  report.AddParam("duration_s", kSeconds);
  report.AddParam("first_switch_s", kFirstSwitchSec);
  report.AddParam("second_switch_s", kSecondSwitchSec);

  TestbedConfig cfg;
  cfg.seed = kSeed;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  TcpLite ch_tcp(tb.ch->stack());
  TcpLite mh_tcp(tb.mh->stack());
  uint64_t received_total = 0;
  ch_tcp.Listen(9000, [&](TcpLiteConnection* conn) {
    conn->SetDataHandler(
        [&](const std::vector<uint8_t>& data) { received_total += data.size(); });
  });

  TcpLiteConnection* client = mh_tcp.Connect(tb.ch_address(), 9000, nullptr);
  tb.RunFor(Seconds(1));
  if (client == nullptr || !client->established()) {
    std::printf("connection failed\n");
    return 1;
  }

  // Transfer state as probe gauges so the sampler can read them on the
  // simulator clock, interleaved with the registry's own counters.
  tb.metrics.GetProbeGauge("tcp.rx_bytes_total",
                           [&] { return static_cast<double>(received_total); });
  tb.metrics.GetProbeGauge("tcp.retransmissions",
                           [&] { return static_cast<double>(client->retransmissions()); });
  TimeSeriesSampler sampler(tb.sim, tb.metrics, Seconds(1));
  sampler.Watch("tcp.rx_bytes_total");
  sampler.Watch("tcp.retransmissions");
  sampler.Watch("mh.retransmissions");
  sampler.Watch("ip.mh.datagrams_sent");
  sampler.Start();

  // Keep the send buffer topped up.
  PeriodicTask feeder(tb.sim, Milliseconds(100), [&] {
    if (client->established() && client->bytes_sent() - client->bytes_acked() < 16384) {
      client->Send(std::vector<uint8_t>(4096, 'd'));
    }
  });
  feeder.Start();

  // Hand-off schedule.
  tb.sim.Schedule(Seconds(kFirstSwitchSec), [&] {
    std::printf("  -- t=%ds: cold switch to the radio (35 kb/s) --\n", kFirstSwitchSec);
    tb.mobile->ColdSwitchTo(tb.WirelessAttachment(60), nullptr);
  });
  tb.sim.Schedule(Seconds(kSecondSwitchSec), [&] {
    std::printf("  -- t=%ds: cold switch back to the wire (10 Mb/s) --\n", kSecondSwitchSec);
    tb.MoveMhEthernetTo(tb.net8.get());
    tb.mobile->ColdSwitchTo(tb.WiredAttachment(51), nullptr);
  });

  // Per-second goodput samples.
  std::printf("%6s  %14s  %12s  %s\n", "t (s)", "goodput (kb/s)", "retransmits", "link");
  uint64_t last_received = 0;
  uint64_t last_retx = 0;
  for (int second = 1; second <= kSeconds; ++second) {
    tb.RunFor(Seconds(1));
    const uint64_t delta = received_total - last_received;
    last_received = received_total;
    const uint64_t retx = client->retransmissions() - last_retx;
    last_retx = client->retransmissions();
    const char* link = tb.mobile->attachment().device == tb.mh_radio ? "radio" : "wired";
    std::printf("%6d  %14.1f  %12llu  %s\n", second,
                static_cast<double>(delta) * 8.0 / 1000.0,
                static_cast<unsigned long long>(retx), link);
  }
  feeder.Stop();
  tb.RunFor(Seconds(5));
  sampler.Stop();

  std::printf("\nTotals: %llu bytes delivered in order, %llu retransmissions,\n"
              "connection %s at the end.\n",
              static_cast<unsigned long long>(received_total),
              static_cast<unsigned long long>(client->retransmissions()),
              client->established() ? "still ESTABLISHED" : "lost");
  std::printf("\nShape check: goodput tracks the active link's capacity (Mb/s-scale\n"
              "on the wire, tens of kb/s on the radio), stalls during each cold\n"
              "switch, and recovers via retransmission alone — the end-to-end\n"
              "argument the paper invokes in S5.1.\n\n");

  report.AddRow("totals",
                {{"bytes_delivered", received_total},
                 {"retransmissions", client->retransmissions()},
                 {"established_at_end", client->established()}});
  report.AddSeries(sampler);
  report.AddMetrics(tb.metrics);

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
