// Tests for the packet capture facility: device taps, text rendering, and
// libpcap file format round-trip.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/node/icmp.h"
#include "src/topo/testbed.h"
#include "src/tracing/pcap.h"

namespace msn {
namespace {

class PcapFixture : public ::testing::Test {
 protected:
  PcapFixture() {
    TestbedConfig cfg;
    cfg.seed = 71;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
  }

  std::unique_ptr<Testbed> tb_;
  PacketCapture capture_;
};

TEST_F(PcapFixture, CapturesBothDirections) {
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  bool ok = false;
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), [&](const Pinger::Result& r) {
    ok = r.success;
  });
  tb_->RunFor(Seconds(3));
  ASSERT_TRUE(ok);

  // At least: ARP exchange pieces + echo request in + echo reply out.
  ASSERT_GE(capture_.size(), 3u);
  bool saw_rx = false, saw_tx = false;
  for (const CapturedFrame& f : capture_.frames()) {
    saw_rx |= f.direction == NetDevice::TapDirection::kReceive;
    saw_tx |= f.direction == NetDevice::TapDirection::kTransmit;
    EXPECT_EQ(f.device_name, "eth0");
  }
  EXPECT_TRUE(saw_rx);
  EXPECT_TRUE(saw_tx);
}

TEST_F(PcapFixture, SummariesNameProtocols) {
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));

  const std::string rendered = capture_.Render();
  EXPECT_NE(rendered.find("ICMP"), std::string::npos);
  EXPECT_NE(rendered.find("ARP"), std::string::npos);
  EXPECT_NE(rendered.find("36.135.0.10"), std::string::npos);
}

TEST_F(PcapFixture, TunnelPacketsShowInnerHeader) {
  tb_->StartMobileOnWired(50);
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  bool ok = false;
  pinger.Ping(Testbed::HomeAddress(), Seconds(3), [&](const Pinger::Result& r) {
    ok = r.success;
  });
  tb_->RunFor(Seconds(4));
  ASSERT_TRUE(ok);
  const std::string rendered = capture_.Render();
  EXPECT_NE(rendered.find("IPIP"), std::string::npos);
  EXPECT_NE(rendered.find("[inner:"), std::string::npos);
}

TEST_F(PcapFixture, PcapFileFormatRoundTrip) {
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));

  const auto bytes = capture_.ToPcapBytes();
  ASSERT_GE(bytes.size(), 24u);
  // Magic + linktype validated by the reader; record count matches.
  EXPECT_EQ(PacketCapture::CountPcapRecords(bytes),
            static_cast<int>(capture_.size()));
}

TEST_F(PcapFixture, PcapRejectsCorruptImages) {
  EXPECT_EQ(PacketCapture::CountPcapRecords({}), -1);
  std::vector<uint8_t> garbage(24, 0);
  EXPECT_EQ(PacketCapture::CountPcapRecords(garbage), -1);

  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));
  auto bytes = capture_.ToPcapBytes();
  bytes.pop_back();  // Truncated final record.
  EXPECT_EQ(PacketCapture::CountPcapRecords(bytes), -1);
}

TEST_F(PcapFixture, WritesFileToDisk) {
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));

  const std::string path = ::testing::TempDir() + "/msn_capture.pcap";
  ASSERT_TRUE(capture_.WritePcapFile(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(static_cast<size_t>(size), capture_.ToPcapBytes().size());
}

TEST_F(PcapFixture, ClearAndDetach) {
  capture_.Attach(tb_->sim, tb_->mh_eth);
  Pinger pinger(tb_->ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));
  ASSERT_GT(capture_.size(), 0u);
  capture_.Clear();
  EXPECT_EQ(capture_.size(), 0u);

  capture_.DetachAll();
  Pinger pinger2(tb_->ch->stack());
  pinger2.Ping(Testbed::HomeAddress(), Seconds(2), nullptr);
  tb_->RunFor(Seconds(3));
  EXPECT_EQ(capture_.size(), 0u);  // Tap removed: nothing recorded.
}

}  // namespace
}  // namespace msn
