#include "src/util/logging.h"

#include <cstdio>

namespace msn {
namespace {

LogLevel g_level = LogLevel::kOff;
LogClockFn g_clock = nullptr;
void* g_clock_ctx = nullptr;

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogClock(LogClockFn fn, void* ctx) {
  g_clock = fn;
  g_clock_ctx = ctx;
}

void* GetLogClockContext() { return g_clock_ctx; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level) {
    return;
  }
  if (g_clock != nullptr) {
    std::fprintf(stderr, "[%10.6f] ", g_clock(g_clock_ctx));
  }
  std::fprintf(stderr, "[%-5s] %-8s ", LogLevelName(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace msn
