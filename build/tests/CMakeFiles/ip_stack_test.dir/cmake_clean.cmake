file(REMOVE_RECURSE
  "CMakeFiles/ip_stack_test.dir/ip_stack_test.cc.o"
  "CMakeFiles/ip_stack_test.dir/ip_stack_test.cc.o.d"
  "ip_stack_test"
  "ip_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
