// Position -> link quality (DESIGN.md §15).
//
// Distance to the nearest base station maps onto three monotone signals the
// rest of the system consumes:
//
//   RssiDbm              log-distance path-loss received signal strength,
//                        strictly decreasing in distance — what the movement
//                        detector's signal-aware policy reads;
//   LossAtDistance       frame-loss probability, non-decreasing from ~0 deep
//                        in the cell to 1 past the coverage edge — installed
//                        into the fault injector as a degenerate
//                        Gilbert-Elliott profile (no burst state);
//   LatencyAtDistance    one-way medium latency, non-decreasing with range
//                        (edge-of-cell retransmissions at the MAC layer) —
//                        applied to the medium's base propagation latency.
//
// Monotonicity is a contract (property-tested in tests/mobility_test.cc):
// walking away from a station may only ever make the link worse.
#ifndef MSN_SRC_MOBILITY_LINK_QUALITY_H_
#define MSN_SRC_MOBILITY_LINK_QUALITY_H_

#include "src/sim/time.h"

namespace msn {

struct RadioParams {
  double tx_power_dbm = 20.0;
  // Path loss at the 1 m reference distance.
  double reference_loss_db = 40.0;
  // Log-distance path-loss exponent (2 free space, 3-4 indoor/campus).
  double path_loss_exponent = 3.0;
  // Coverage radius: loss reaches 1 here and RSSI is considered gone.
  double range_m = 120.0;
  // Within this fraction of range_m the link is clean (loss ~ 0); between it
  // and range_m loss ramps smoothly to 1.
  double good_range_fraction = 0.6;
  // Latency penalty accrued across the ramp (MAC retransmissions near the
  // cell edge): 0 at the good-range boundary, this much at range_m.
  Duration edge_latency = MillisecondsF(1.5);
};

// Received signal strength at `distance_m` from the station; strictly
// decreasing in distance. Distances under 1 m clamp to the reference point.
[[nodiscard]] double RssiDbm(const RadioParams& params, double distance_m);

// Frame-loss probability in [0, 1]; 0 inside the good range, smoothstep up
// to 1 at range_m, 1 beyond. Non-decreasing in distance.
[[nodiscard]] double LossAtDistance(const RadioParams& params, double distance_m);

// Extra one-way latency on top of the medium's base propagation latency;
// non-decreasing in distance, capped at edge_latency past range_m.
[[nodiscard]] Duration LatencyAtDistance(const RadioParams& params, double distance_m);

}  // namespace msn

#endif  // MSN_SRC_MOBILITY_LINK_QUALITY_H_
