#include "src/telemetry/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace msn {

bool BenchSmokeMode() {
  const char* v = std::getenv("MSN_BENCH_SMOKE");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

int BenchIterations(int full, int smoke) { return BenchSmokeMode() ? smoke : full; }

std::string BenchJsonDir() {
  const char* v = std::getenv("MSN_BENCH_JSON_DIR");
  return (v != nullptr && v[0] != '\0') ? v : ".";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonScalar::ToJson() const {
  switch (kind_) {
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
    }
    case Kind::kDouble:
      return FormatMetricValue(double_);
    case Kind::kString:
      return "\"" + JsonEscape(string_) + "\"";
  }
  return "null";
}

namespace {

// "key": value
std::string Field(const std::string& key, const std::string& rendered_value) {
  return "\"" + JsonEscape(key) + "\":" + rendered_value;
}

std::string NumField(const std::string& key, double v) {
  return Field(key, FormatMetricValue(v));
}

std::string ObjectOf(const std::vector<std::pair<std::string, JsonScalar>>& kv) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += Field(k, v.ToJson());
  }
  out += '}';
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string bench_name, std::string title)
    : bench_name_(std::move(bench_name)), title_(std::move(title)) {}

void BenchReport::AddParam(const std::string& key, JsonScalar value) {
  params_.emplace_back(key, std::move(value));
}

void BenchReport::AddSummary(const std::string& name, const std::string& unit,
                             const std::vector<double>& samples) {
  Summary s;
  s.name = name;
  s.unit = unit;
  RunningStats stats;
  for (double v : samples) {
    stats.Add(v);
  }
  s.count = static_cast<uint64_t>(stats.count());
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  s.has_percentiles = !samples.empty();
  if (s.has_percentiles) {
    s.p50 = Percentile(samples, 50);
    s.p95 = Percentile(samples, 95);
    s.p99 = Percentile(samples, 99);
  }
  summaries_.push_back(std::move(s));
}

void BenchReport::AddSummary(const std::string& name, const std::string& unit,
                             const RunningStats& stats) {
  Summary s;
  s.name = name;
  s.unit = unit;
  s.count = static_cast<uint64_t>(stats.count());
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  summaries_.push_back(std::move(s));
}

void BenchReport::AddRow(const std::string& label,
                         std::vector<std::pair<std::string, JsonScalar>> values) {
  rows_.push_back(Row{label, std::move(values)});
}

void BenchReport::AddMetrics(const MetricsRegistry& registry) {
  for (MetricSnapshot& s : registry.Snapshot()) {
    metrics_.push_back(std::move(s));
  }
}

void BenchReport::AddSeries(const TimeSeriesSampler& sampler) {
  for (const TimeSeriesSampler::Series& s : sampler.series()) {
    SeriesOut out;
    out.metric = s.metric;
    out.interval_ms = sampler.interval().ToMillisF();
    out.points.reserve(s.points.size());
    for (const TimeSeriesSampler::Point& p : s.points) {
      out.points.emplace_back(p.t.ToMillisF(), p.value);
    }
    series_.push_back(std::move(out));
  }
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += "  " + Field("schema", "\"msn-bench-v1\"") + ",\n";
  out += "  " + Field("bench", "\"" + JsonEscape(bench_name_) + "\"") + ",\n";
  out += "  " + Field("title", "\"" + JsonEscape(title_) + "\"") + ",\n";
  out += "  " + NumField("seed", static_cast<double>(seed_)) + ",\n";
  out += "  " + Field("smoke", BenchSmokeMode() ? "true" : "false") + ",\n";

  out += "  " + Field("params", ObjectOf(params_)) + ",\n";

  out += "  \"summaries\":[";
  for (size_t i = 0; i < summaries_.size(); ++i) {
    const Summary& s = summaries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {" + Field("name", "\"" + JsonEscape(s.name) + "\"") + "," +
           Field("unit", "\"" + JsonEscape(s.unit) + "\"") + "," +
           NumField("count", static_cast<double>(s.count)) + "," + NumField("mean", s.mean) +
           "," + NumField("stddev", s.stddev) + "," + NumField("min", s.min) + "," +
           NumField("max", s.max);
    if (s.has_percentiles) {
      out += "," + NumField("p50", s.p50) + "," + NumField("p95", s.p95) + "," +
             NumField("p99", s.p99);
    }
    out += "}";
  }
  out += summaries_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {" + Field("label", "\"" + JsonEscape(r.label) + "\"") + "," +
           Field("values", ObjectOf(r.values)) + "}";
  }
  out += rows_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"metrics\":[";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const MetricSnapshot& m = metrics_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {" + Field("name", "\"" + JsonEscape(m.name) + "\"") + "," +
           Field("type", std::string("\"") + MetricTypeName(m.type) + "\"");
    if (m.histogram.has_value()) {
      const HistogramSnapshot& h = *m.histogram;
      out += "," + NumField("count", static_cast<double>(h.count)) + "," +
             NumField("sum", h.sum) + "," + NumField("mean", h.mean) + "," +
             NumField("min", h.min) + "," + NumField("max", h.max) + "," +
             NumField("p50", h.p50) + "," + NumField("p95", h.p95) + "," +
             NumField("p99", h.p99);
    } else {
      out += "," + NumField("value", m.value);
    }
    out += "}";
  }
  out += metrics_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"series\":[";
  for (size_t i = 0; i < series_.size(); ++i) {
    const SeriesOut& s = series_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {" + Field("metric", "\"" + JsonEscape(s.metric) + "\"") + "," +
           NumField("interval_ms", s.interval_ms) + ",\"points\":[";
    for (size_t j = 0; j < s.points.size(); ++j) {
      if (j > 0) {
        out += ',';
      }
      out += "[" + FormatMetricValue(s.points[j].first) + "," +
             FormatMetricValue(s.points[j].second) + "]";
    }
    out += "]}";
  }
  out += series_.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

std::string BenchReport::WriteFile() const {
  const std::string path = BenchJsonDir() + "/BENCH_" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    std::fprintf(stderr, "BenchReport: short write to %s\n", path.c_str());
    return "";
  }
  return path;
}

}  // namespace msn
