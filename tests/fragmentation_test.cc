// IP fragmentation & reassembly: unit tests for the algorithms plus the
// mobile-IP case that motivates them — tunnel encapsulation pushing a
// datagram past the path MTU (paper §3.2: encapsulation "adds 20 bytes or
// more to the packet length").
#include <gtest/gtest.h>

#include "src/node/node.h"
#include "src/node/reassembly.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

Ipv4Datagram MakeDatagram(size_t payload_size, uint16_t id = 7) {
  Ipv4Datagram dg;
  dg.header.protocol = IpProto::kUdp;
  dg.header.src = Ipv4Address(1, 1, 1, 1);
  dg.header.dst = Ipv4Address(2, 2, 2, 2);
  dg.header.identification = id;
  dg.payload.resize(payload_size);
  for (size_t i = 0; i < payload_size; ++i) {
    dg.payload[i] = static_cast<uint8_t>(i * 13);
  }
  return dg;
}

// --- FragmentDatagram -------------------------------------------------------------

TEST(FragmentTest, SplitsAtEightByteBoundaries) {
  const Ipv4Datagram dg = MakeDatagram(3000);
  const auto fragments = FragmentDatagram(dg, 1500);
  ASSERT_EQ(fragments.size(), 3u);
  // First two carry 1480 bytes (1500 - 20, already 8-aligned).
  EXPECT_EQ(fragments[0].payload.size(), 1480u);
  EXPECT_EQ(fragments[0].header.fragment_offset, 0);
  EXPECT_TRUE(fragments[0].header.more_fragments);
  EXPECT_EQ(fragments[1].payload.size(), 1480u);
  EXPECT_EQ(fragments[1].header.fragment_offset, 185);  // 1480 / 8.
  EXPECT_TRUE(fragments[1].header.more_fragments);
  EXPECT_EQ(fragments[2].payload.size(), 40u);
  EXPECT_FALSE(fragments[2].header.more_fragments);
  // All share identity fields.
  for (const auto& f : fragments) {
    EXPECT_EQ(f.header.identification, dg.header.identification);
    EXPECT_EQ(f.header.protocol, dg.header.protocol);
    EXPECT_LE(Ipv4Header::kSize + f.payload.size(), 1500u);
  }
}

TEST(FragmentDeathTest, OffsetBeyondThirteenBitsTripsContract) {
  // A middle fragment re-fragmented near the top of the offset field: the
  // pieces past byte 65528 cannot be encoded and previously wrapped silently
  // into a low offset, corrupting reassembly at the far end.
  Ipv4Datagram dg = MakeDatagram(6000);
  dg.header.fragment_offset = 0x1f00;  // Starts at byte 63488.
  dg.header.more_fragments = true;
  EXPECT_DEATH((void)FragmentDatagram(dg, 1500), "13-bit field");
}

TEST(FragmentTest, OversizeFragmentRejectedBeforeBuffering) {
  // offset 0x1fff * 8 + payload claims bytes past the 65535-byte datagram
  // bound — the "ping of death" shape. It must be dropped up front, not
  // buffered (where completion would build an unserializable datagram).
  Simulator sim(1);
  ReassemblyService service(sim);
  Ipv4Datagram evil = MakeDatagram(200);
  evil.header.fragment_offset = 0x1fff;
  evil.header.more_fragments = false;
  EXPECT_FALSE(service.Add(evil).has_value());
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(service.counters().fragments_rejected_oversize, 1u);
  EXPECT_EQ(service.counters().fragments_received, 1u);

  // A well-formed sibling datagram still reassembles normally afterwards.
  const auto fragments = FragmentDatagram(MakeDatagram(3000, 8), 1500);
  std::optional<Ipv4Datagram> out;
  for (const auto& f : fragments) {
    out = service.Add(f);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 3000u);
}

TEST(FragmentTest, SmallDatagramUntouchedByReassemblyService) {
  Simulator sim(1);
  ReassemblyService service(sim);
  const Ipv4Datagram dg = MakeDatagram(100);
  auto out = service.Add(dg);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, dg.payload);
  EXPECT_EQ(service.counters().fragments_received, 0u);
}

TEST(FragmentTest, ReassemblyInOrder) {
  Simulator sim(1);
  ReassemblyService service(sim);
  const Ipv4Datagram dg = MakeDatagram(3000);
  const auto fragments = FragmentDatagram(dg, 1500);
  std::optional<Ipv4Datagram> whole;
  for (const auto& f : fragments) {
    whole = service.Add(f);
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, dg.payload);
  EXPECT_FALSE(whole->header.IsFragment());
  EXPECT_EQ(service.counters().datagrams_reassembled, 1u);
  EXPECT_EQ(service.pending(), 0u);
}

TEST(FragmentTest, ReassemblyOutOfOrder) {
  Simulator sim(1);
  ReassemblyService service(sim);
  const Ipv4Datagram dg = MakeDatagram(4000);
  auto fragments = FragmentDatagram(dg, 1100);
  ASSERT_GE(fragments.size(), 4u);
  // Deliver last-first.
  std::optional<Ipv4Datagram> whole;
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    whole = service.Add(*it);
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->payload, dg.payload);
}

TEST(FragmentTest, InterleavedDatagramsKeptApart) {
  Simulator sim(1);
  ReassemblyService service(sim);
  const Ipv4Datagram a = MakeDatagram(2000, 1);
  const Ipv4Datagram b = MakeDatagram(2000, 2);
  const auto fa = FragmentDatagram(a, 1500);
  const auto fb = FragmentDatagram(b, 1500);
  EXPECT_FALSE(service.Add(fa[0]).has_value());
  EXPECT_FALSE(service.Add(fb[0]).has_value());
  auto whole_b = service.Add(fb[1]);
  ASSERT_TRUE(whole_b.has_value());
  EXPECT_EQ(whole_b->payload, b.payload);
  auto whole_a = service.Add(fa[1]);
  ASSERT_TRUE(whole_a.has_value());
  EXPECT_EQ(whole_a->payload, a.payload);
}

TEST(FragmentTest, MissingFragmentTimesOut) {
  Simulator sim(1);
  ReassemblyService service(sim);
  service.set_timeout(Seconds(5));
  const auto fragments = FragmentDatagram(MakeDatagram(3000), 1500);
  EXPECT_FALSE(service.Add(fragments[0]).has_value());
  EXPECT_FALSE(service.Add(fragments[2]).has_value());  // Gap at [1].
  EXPECT_EQ(service.pending(), 1u);
  sim.RunFor(Seconds(6));
  // Feeding an unrelated fragment triggers expiry sweep.
  EXPECT_FALSE(service.Add(FragmentDatagram(MakeDatagram(2000, 99), 1500)[0]).has_value());
  EXPECT_EQ(service.counters().buffers_timed_out, 1u);
}

TEST(FragmentTest, BufferEvictionUnderPressure) {
  Simulator sim(1);
  ReassemblyService service(sim);
  service.set_max_buffers(4);
  for (uint16_t id = 0; id < 10; ++id) {
    EXPECT_FALSE(service.Add(FragmentDatagram(MakeDatagram(2000, id), 1500)[0]).has_value());
  }
  EXPECT_LE(service.pending(), 4u);
  EXPECT_GE(service.counters().buffers_evicted, 6u);
}

TEST(FragmentTest, RoundTripPropertyRandomSizes) {
  Simulator sim(77);
  ReassemblyService service(sim);
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t size = static_cast<size_t>(rng.UniformInt(uint64_t{1}, uint64_t{9000}));
    const size_t mtu = static_cast<size_t>(rng.UniformInt(uint64_t{68}, uint64_t{1500}));
    const Ipv4Datagram dg = MakeDatagram(size, static_cast<uint16_t>(trial + 1000));
    const auto fragments = FragmentDatagram(dg, mtu);
    std::optional<Ipv4Datagram> whole;
    for (const auto& f : fragments) {
      EXPECT_LE(Ipv4Header::kSize + f.payload.size(), std::max<size_t>(mtu, 28));
      whole = service.Add(f);
    }
    ASSERT_TRUE(whole.has_value()) << "size=" << size << " mtu=" << mtu;
    EXPECT_EQ(whole->payload, dg.payload);
  }
}

// --- End-to-end: tunneling over the small-MTU radio --------------------------------

TEST(FragmentE2eTest, LargeUdpThroughTunnelOverRadio) {
  TestbedConfig cfg;
  cfg.seed = 303;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWireless(60);  // Radio MTU is 1100.

  UdpSocket server(tb.mh->stack());
  ASSERT_TRUE(server.Bind(7000));
  std::vector<uint8_t> got;
  server.SetReceiveHandler(
      [&](const std::vector<uint8_t>& data, const UdpSocket::Metadata&) { got = data; });

  // 2 KiB payload: even before tunneling it exceeds the radio MTU; the
  // tunnel adds 20 more bytes on the HA->MH leg.
  std::vector<uint8_t> payload(2048);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  UdpSocket client(tb.ch->stack());
  client.SendTo(Testbed::HomeAddress(), 7000, payload);
  tb.RunFor(Seconds(5));

  EXPECT_EQ(got, payload);
  EXPECT_GE(tb.router->stack().counters().fragments_sent, 2u);
  EXPECT_GE(tb.mh->stack().reassembly().counters().datagrams_reassembled, 1u);
}

TEST(FragmentE2eTest, EncapsulationAlonePushesPastMtu) {
  // A payload sized exactly to the radio MTU fits unfragmented when plain,
  // but the 20-byte tunnel header forces fragmentation of the outer packet.
  TestbedConfig cfg;
  cfg.seed = 304;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWireless(60);

  UdpSocket server(tb.mh->stack());
  ASSERT_TRUE(server.Bind(7001));
  std::vector<uint8_t> got;
  server.SetReceiveHandler(
      [&](const std::vector<uint8_t>& data, const UdpSocket::Metadata&) { got = data; });

  // Inner datagram: 20 (IP) + 8 (UDP) + 1060 = 1088 <= 1100. Outer: 1108.
  std::vector<uint8_t> payload(1060, 0x5a);
  UdpSocket client(tb.ch->stack());
  client.SendTo(Testbed::HomeAddress(), 7001, payload);
  tb.RunFor(Seconds(5));

  EXPECT_EQ(got, payload);
  EXPECT_GE(tb.router->stack().counters().fragments_sent, 2u);
}

TEST(FragmentE2eTest, DontFragmentDropsWithIcmpSignal) {
  Simulator sim(305);
  BroadcastMedium seg(sim, "seg", EthernetMediumParams());
  Node a(sim, "a"), b(sim, "b");
  auto* ad = a.AddEthernet("eth0", &seg);
  auto* bd = b.AddEthernet("eth0", &seg);
  ad->ForceUp();
  bd->ForceUp();
  ad->set_mtu(600);
  a.ConfigureInterface(ad, "10.0.0.1/24");
  b.ConfigureInterface(bd, "10.0.0.2/24");

  bool frag_needed = false;
  a.stack().SetIcmpErrorHandler([&](const IcmpMessage& msg, const Ipv4Header&) {
    frag_needed =
        msg.code == static_cast<uint8_t>(IcmpUnreachableCode::kFragmentationNeeded);
  });

  Ipv4Datagram dg;
  dg.header.protocol = IpProto::kTcp;
  dg.header.src = Ipv4Address(10, 0, 0, 1);
  dg.header.dst = Ipv4Address(10, 0, 0, 2);
  dg.header.dont_fragment = true;
  dg.payload.resize(1000);
  a.stack().SendPreformedDatagram(dg, /*forwarding=*/false);
  sim.Run();

  EXPECT_EQ(a.stack().counters().drop_fragmentation_needed, 1u);
  EXPECT_TRUE(frag_needed);
  EXPECT_EQ(b.stack().counters().datagrams_delivered, 0u);
}

}  // namespace
}  // namespace msn
