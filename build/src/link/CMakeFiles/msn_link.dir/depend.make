# Empty dependencies file for msn_link.
# This may be replaced when dependencies are built.
