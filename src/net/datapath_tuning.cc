#include "src/net/datapath_tuning.h"

namespace msn {

DatapathTuning& GlobalDatapathTuning() {
  static DatapathTuning tuning;
  return tuning;
}

}  // namespace msn
