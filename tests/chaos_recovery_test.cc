// Chaos tests: after any scheduled fault clears, the mobile host must
// converge back to kRegistered with a consistent HA binding — eventual
// recovery as an invariant. Also covers the backoff satellite (retransmit
// rate bounded under outage) and the expiry-races-renewal satellite.
#include <gtest/gtest.h>

#include <memory>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/mip/movement_detector.h"
#include "src/node/icmp.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

class ChaosFixture : public ::testing::Test {
 protected:
  void Build(uint64_t seed, uint16_t lifetime_sec) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.realistic_delays = false;
    cfg.mh_lifetime_sec = lifetime_sec;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    tb_->StartMobileOnWired(50);
    ASSERT_TRUE(tb_->mobile->registered());
  }

  // Replaces the mobile host with one running a modified config; re-attaches
  // on the wired foreign net. (Destroy first so the old instance's teardown
  // does not unhook the new one's stack handlers.)
  void RebuildMobile(const MobileHost::Config& mc) {
    tb_->mobile.reset();
    tb_->mobile = std::make_unique<MobileHost>(*tb_->mh, mc);
    bool ok = false;
    tb_->mobile->AttachForeign(tb_->WiredAttachment(50), [&](bool r) { ok = r; });
    tb_->RunFor(Seconds(3));
    ASSERT_TRUE(ok);
  }

  bool PingCorrespondent() {
    Pinger pinger(tb_->mh->stack());
    bool ok = false;
    pinger.Ping(tb_->ch_address(), Seconds(2),
                [&](const Pinger::Result& result) { ok = result.success; });
    tb_->RunFor(Seconds(2) + Milliseconds(100));
    return ok;
  }

  std::unique_ptr<Testbed> tb_;
};

// The acceptance scenario: home-agent daemon restart (bindings wiped) inside
// an outage window, plus ~30% burst loss on the visited link. The MH must
// come back to kRegistered with the HA binding matching its care-of address
// — zero permanent binding desync — and end-to-end traffic must work.
TEST_F(ChaosFixture, RecoversFromHaRestartUnderBurstLoss) {
  Build(/*seed=*/11, /*lifetime_sec=*/5);
  FaultInjector injector(tb_->sim, *tb_->net8);

  // Stationary burst-loss fraction: p_enter / (p_enter + p_exit) = 0.3.
  FaultProfile bursty;
  bursty.burst_loss = GilbertElliottParams{0.12, 0.28, 0.0, 1.0};

  FaultSchedule schedule;
  schedule.Profile(Duration(), injector, bursty)
      .HaOutage(Milliseconds(500), *tb_->home_agent, Seconds(6),
                /*restart_daemon=*/true)
      .ClearProfile(Seconds(15), injector);
  schedule.Arm(tb_->sim);
  tb_->RunFor(Seconds(30));

  // Fault machinery actually fired.
  EXPECT_EQ(tb_->home_agent->counters().bindings_wiped, 1u);
  EXPECT_GE(tb_->home_agent->counters().requests_dropped_outage, 1u);
  EXPECT_EQ(tb_->home_agent->counters().resync_denials, 1u);
  EXPECT_GT(injector.counters().burst_drops, 0u);

  // The MH noticed: binding lapsed mid-renewal, resynced after the restart,
  // and recovered — all visible in counters.
  EXPECT_GE(tb_->mobile->counters().bindings_lost, 1u);
  EXPECT_GE(tb_->mobile->counters().resyncs, 1u);
  EXPECT_GE(tb_->mobile->counters().recoveries, 1u);
  EXPECT_GE(tb_->mobile->counters().retransmissions, 1u);

  // Eventual recovery, with zero permanent binding desync.
  EXPECT_EQ(tb_->mobile->state(), MobileHost::State::kRegistered);
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, tb_->mobile->care_of());
  EXPECT_TRUE(PingCorrespondent());
}

// Determinism of the full chaos scenario: identical seeds give identical
// traces and identical protocol counters.
TEST(ChaosDeterminismTest, SameSeedSameRecovery) {
  auto run = [] {
    TestbedConfig cfg;
    cfg.seed = 11;
    cfg.realistic_delays = false;
    cfg.mh_lifetime_sec = 5;
    Testbed tb(cfg);
    tb.StartMobileAtHome();
    tb.StartMobileOnWired(50);
    FaultInjector injector(tb.sim, *tb.net8);
    FaultProfile bursty;
    bursty.burst_loss = GilbertElliottParams{0.12, 0.28, 0.0, 1.0};
    FaultSchedule schedule;
    schedule.Profile(Duration(), injector, bursty)
        .HaOutage(Milliseconds(500), *tb.home_agent, Seconds(6),
                  /*restart_daemon=*/true)
        .ClearProfile(Seconds(15), injector);
    schedule.Arm(tb.sim);
    tb.RunFor(Seconds(30));
    struct Snapshot {
      std::string trace;
      uint64_t sent, resyncs, recoveries, retransmissions, ha_received;
      bool operator==(const Snapshot& o) const {
        return trace == o.trace && sent == o.sent && resyncs == o.resyncs &&
               recoveries == o.recoveries && retransmissions == o.retransmissions &&
               ha_received == o.ha_received;
      }
    };
    return Snapshot{schedule.Trace(), tb.mobile->counters().registrations_sent,
                    tb.mobile->counters().resyncs, tb.mobile->counters().recoveries,
                    tb.mobile->counters().retransmissions,
                    tb.home_agent->counters().requests_received};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_TRUE(first == second);
  EXPECT_FALSE(first.trace.empty());
}

// Satellite: backoff bounds the retransmit rate. During a long HA outage a
// renewing MH with decorrelated-jitter backoff sends far fewer registrations
// than the legacy fixed-interval retransmitter, and still recovers.
TEST_F(ChaosFixture, BackoffBoundsRetransmitRateDuringOutage) {
  auto sends_during_outage = [](bool backoff) {
    TestbedConfig cfg;
    cfg.seed = 13;
    cfg.realistic_delays = false;
    cfg.mh_lifetime_sec = 5;
    Testbed tb(cfg);
    tb.StartMobileAtHome();
    tb.StartMobileOnWired(50);

    MobileHost::Config mc = tb.mobile->config();
    mc.retransmit_backoff = backoff;
    tb.mobile.reset();
    tb.mobile = std::make_unique<MobileHost>(*tb.mh, mc);
    bool ok = false;
    tb.mobile->AttachForeign(tb.WiredAttachment(50), [&](bool r) { ok = r; });
    tb.RunFor(Seconds(3));
    EXPECT_TRUE(ok);

    // Outage spans many renewal retransmissions; no daemon restart.
    FaultSchedule schedule;
    schedule.HaOutage(Seconds(1), *tb.home_agent, Seconds(50));
    schedule.Arm(tb.sim);
    const uint64_t sent_before = tb.mobile->counters().registrations_sent;
    tb.RunFor(Seconds(60));
    EXPECT_EQ(tb.mobile->state(), MobileHost::State::kRegistered);
    EXPECT_GE(tb.mobile->counters().recoveries, 1u);
    return tb.mobile->counters().registrations_sent - sent_before;
  };

  const uint64_t with_backoff = sends_during_outage(true);
  const uint64_t fixed_interval = sends_during_outage(false);
  // Fixed 1 s interval: ~1 send/second across the outage. Backoff caps at
  // 8 s waits, so well under half the sends.
  EXPECT_GE(fixed_interval, 40u);
  EXPECT_LE(with_backoff, 20u);
  EXPECT_LT(with_backoff * 2, fixed_interval);
}

// Satellite: HA binding expiry racing an in-flight renewal. A link blackout
// swallows the renewal until after the HA-side lifetime runs out; the HA
// expires the binding, the MH records the loss, and once the link returns
// the still-retrying renewal re-establishes the binding.
TEST_F(ChaosFixture, BindingExpiryRacingInFlightRenewalRecovers) {
  Build(/*seed=*/17, /*lifetime_sec=*/5);
  FaultInjector injector(tb_->sim, *tb_->net8);
  const uint64_t renewals_before = tb_->mobile->counters().renewals;

  // Renewal fires at 0.8 x 5 s = 4 s after registration; black out the link
  // from 3.5 s until 7 s, well past the ~5 s expiry.
  FaultSchedule schedule;
  schedule.Blackout(Milliseconds(3500), injector, Milliseconds(3500));
  schedule.Arm(tb_->sim);
  tb_->RunFor(Seconds(20));

  // The HA expired the binding; the MH noticed and recovered.
  EXPECT_EQ(tb_->home_agent->counters().bindings_expired, 1u);
  EXPECT_EQ(tb_->mobile->counters().bindings_lost, 1u);
  EXPECT_EQ(tb_->mobile->counters().recoveries, 1u);
  // Counter consistency: exactly one expiry produced exactly one loss and
  // one recovery; renewal cycles keep running afterwards (retries within a
  // cycle count as retransmissions, not new renewals).
  EXPECT_EQ(tb_->mobile->counters().bindings_lost,
            tb_->home_agent->counters().bindings_expired);
  EXPECT_EQ(tb_->mobile->counters().recoveries,
            tb_->home_agent->counters().bindings_expired);
  EXPECT_GE(tb_->mobile->counters().renewals - renewals_before, 1u);
  EXPECT_GE(tb_->mobile->counters().retransmissions, 1u);

  EXPECT_EQ(tb_->mobile->state(), MobileHost::State::kRegistered);
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, tb_->mobile->care_of());
  EXPECT_TRUE(PingCorrespondent());
}

// Satellite: deregistration is hardened too — going home while the link is
// lossy still converges to kAtHome with the binding removed.
TEST_F(ChaosFixture, DeregistrationSurvivesBurstLoss) {
  Build(/*seed=*/21, /*lifetime_sec=*/300);
  FaultInjector injector(tb_->sim, *tb_->net135);
  FaultProfile bursty;
  bursty.burst_loss = GilbertElliottParams{0.15, 0.3, 0.0, 1.0};
  injector.SetProfile(bursty);

  tb_->MoveMhEthernetTo(tb_->net135.get());
  bool done = false;
  bool ok = false;
  tb_->mobile->AttachHome([&](bool r) {
    done = true;
    ok = r;
  });
  tb_->RunFor(Seconds(30));
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(tb_->mobile->state(), MobileHost::State::kAtHome);
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_GE(tb_->home_agent->counters().deregistrations, 1u);
}

// Movement-detector debounce: right after a switch, another dead round does
// not immediately bounce the host to a different network.
TEST_F(ChaosFixture, SwitchCooldownSuppressesImmediateReswitch) {
  Build(/*seed=*/23, /*lifetime_sec=*/300);
  tb_->ForceRadioUp();
  tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70),
                                    SubnetMask(16));

  MovementDetector::Config mc;
  mc.probe_interval = Milliseconds(500);
  mc.probe_timeout = Milliseconds(450);
  mc.hysteresis_rounds = 2;
  // Long enough that the radio's loss estimate recovers from the blackout
  // before the window lapses — the hold must outlive the transient.
  mc.switch_cooldown = Seconds(10);
  MovementDetector detector(*tb_->mobile, mc);
  detector.AddCandidate({tb_->WiredAttachment(50), /*preference=*/10});
  detector.AddCandidate({tb_->WirelessAttachment(70), /*preference=*/1});
  detector.Start();
  tb_->RunFor(Seconds(3));

  // Kill the wire: failover to radio.
  tb_->MoveMhEthernetTo(nullptr);
  tb_->RunFor(Seconds(5));
  ASSERT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
  const uint64_t switches_after_failover = detector.counters().switches;

  // Immediately kill the radio too: inside the cooldown window the detector
  // must hold (suppressed), not blind-switch back to the dead wire.
  FaultInjector radio_fault(tb_->sim, *tb_->radio134);
  radio_fault.BlackoutFor(Seconds(2));
  tb_->RunFor(Seconds(2));
  EXPECT_EQ(detector.counters().switches, switches_after_failover);
  EXPECT_GE(detector.counters().suppressed_switches, 1u);

  // Once the radio recovers and the cooldown lapses, the MH is still (or
  // again) usable on the radio.
  tb_->RunFor(Seconds(12));
  EXPECT_TRUE(tb_->mobile->registered());
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
}

}  // namespace
}  // namespace msn
