// Tests for the foreign-agent extension (paper §5.1): advertisement,
// FA-relayed registration, decapsulate-and-deliver-by-MAC, and forwarding of
// late tunnel packets after a visitor departs.
#include <gtest/gtest.h>

#include "src/mip/foreign_agent.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class ForeignAgentFixture : public ::testing::Test {
 protected:
  void Build(bool forward_after_departure, uint64_t seed = 51) {
    TestbedConfig cfg;
    cfg.seed = seed;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();

    // A foreign agent host on net 36.8.
    fa_node_ = std::make_unique<Node>(tb_->sim, "fa");
    fa_dev_ = fa_node_->AddEthernet("eth0", tb_->net8.get());
    fa_dev_->ForceUp();
    fa_node_->ConfigureInterface(fa_dev_, "36.8.0.2/16");
    fa_node_->AddDefaultRoute(Testbed::RouterOn8(), fa_dev_);
    fa_node_->stack().set_forwarding_enabled(true);

    ForeignAgent::Config fc;
    fc.address = Ipv4Address(36, 8, 0, 2);
    fc.device = fa_dev_;
    fc.forward_after_departure = forward_after_departure;
    fa_ = std::make_unique<ForeignAgent>(*fa_node_, fc);
  }

  void AttachViaFa() {
    // Move the MH's Ethernet to net 36.8; no address needed at all.
    tb_->mh->stack().routes().RemoveForDevice(tb_->mh_eth);
    tb_->mh->stack().UnconfigureAddress(tb_->mh_eth);
    tb_->MoveMhEthernetTo(tb_->net8.get());
    tb_->ForceEthUp();
    bool done = false;
    tb_->mobile->AttachViaForeignAgent(tb_->mh_eth, Ipv4Address(36, 8, 0, 2),
                                       [&](bool ok) { done = ok; });
    tb_->RunFor(Seconds(5));
    ASSERT_TRUE(done);
    ASSERT_TRUE(tb_->mobile->registered());
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<Node> fa_node_;
  EthernetDevice* fa_dev_ = nullptr;
  std::unique_ptr<ForeignAgent> fa_;
};

TEST_F(ForeignAgentFixture, AdvertisementsAreHeard) {
  Build(true);
  int heard = 0;
  AgentAdvertisementListener listener(
      *tb_->ch, [&](const AgentAdvertisement& adv, MacAddress fa_mac) {
        EXPECT_EQ(adv.agent_address, Ipv4Address(36, 8, 0, 2));
        EXPECT_EQ(fa_mac, fa_dev_->mac());
        ++heard;
      });
  tb_->RunFor(Seconds(5));
  EXPECT_GE(heard, 4);
  EXPECT_GE(fa_->counters().advertisements_sent, 4u);
}

TEST_F(ForeignAgentFixture, RegistrationRelayedThroughFa) {
  Build(true);
  AttachViaFa();
  EXPECT_TRUE(tb_->mobile->attached_via_foreign_agent());
  EXPECT_EQ(fa_->visitor_count(), 1u);
  EXPECT_TRUE(fa_->HasVisitor(Testbed::HomeAddress()));
  EXPECT_GE(fa_->counters().requests_relayed, 1u);
  EXPECT_GE(fa_->counters().replies_relayed, 1u);

  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  // The care-of address is the FA itself, and the FA decapsulates.
  EXPECT_EQ(binding->care_of, Ipv4Address(36, 8, 0, 2));
  EXPECT_FALSE(binding->decapsulates_self);
  // The MH never acquired an address on the visited network.
  EXPECT_FALSE(tb_->mh->stack().GetInterfaceAddress(tb_->mh_eth).has_value());
}

TEST_F(ForeignAgentFixture, TrafficFlowsThroughFa) {
  Build(true);
  AttachViaFa();

  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(50)});
  sender.Start();
  tb_->RunFor(Seconds(2));
  sender.Stop();
  tb_->RunFor(Seconds(1));

  EXPECT_GT(sender.received(), 30u);
  EXPECT_EQ(sender.TotalLost(), 0u);
  // Inbound went HA-tunnel -> FA -> visitor MAC.
  EXPECT_GT(fa_->counters().packets_delivered, 30u);
  // The MH itself decapsulated nothing: that is the FA's job here.
  EXPECT_EQ(tb_->mobile->counters().packets_decapsulated_in, 0u);
}

TEST_F(ForeignAgentFixture, DepartureForwardingSavesLatePackets) {
  Build(true);
  AttachViaFa();

  // The MH moves to the radio network with a co-located care-of address.
  bool switched = false;
  tb_->mobile->ColdSwitchTo(tb_->WirelessAttachment(60), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(6));
  ASSERT_TRUE(switched);
  EXPECT_FALSE(tb_->mobile->attached_via_foreign_agent());
  EXPECT_GE(fa_->counters().binding_updates_received, 1u);
  EXPECT_EQ(fa_->visitor_count(), 0u);

  // A "late" tunnel packet arrives at the FA (as if it had been in flight
  // when the binding moved): the FA re-tunnels it to the new care-of.
  UdpSocket listener(tb_->mh->stack());
  ASSERT_TRUE(listener.Bind(7777));
  int got = 0;
  listener.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++got; });

  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.header.src = tb_->ch_address();
  inner.header.dst = Testbed::HomeAddress();
  UdpDatagram udp;
  udp.src_port = 1234;
  udp.dst_port = 7777;
  udp.payload = {'l', 'a', 't', 'e'};
  inner.payload = udp.Serialize(inner.header.src, inner.header.dst);
  const Ipv4Datagram late = EncapsulateIpIp(inner, tb_->home_agent_address(),
                                            Ipv4Address(36, 8, 0, 2));
  tb_->router->stack().SendPreformedDatagram(late, /*forwarding=*/false);
  tb_->RunFor(Seconds(2));

  EXPECT_EQ(got, 1);
  EXPECT_EQ(fa_->counters().packets_forwarded_after_departure, 1u);
}

TEST_F(ForeignAgentFixture, WithoutForwardingLatePacketsDie) {
  Build(false);
  AttachViaFa();

  bool switched = false;
  tb_->mobile->ColdSwitchTo(tb_->WirelessAttachment(60), [&](bool ok) { switched = ok; });
  tb_->RunFor(Seconds(6));
  ASSERT_TRUE(switched);

  UdpSocket listener(tb_->mh->stack());
  ASSERT_TRUE(listener.Bind(7777));
  int got = 0;
  listener.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++got; });

  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.header.src = tb_->ch_address();
  inner.header.dst = Testbed::HomeAddress();
  UdpDatagram udp;
  udp.dst_port = 7777;
  inner.payload = udp.Serialize(inner.header.src, inner.header.dst);
  const Ipv4Datagram late = EncapsulateIpIp(inner, tb_->home_agent_address(),
                                            Ipv4Address(36, 8, 0, 2));
  tb_->router->stack().SendPreformedDatagram(late, /*forwarding=*/false);
  tb_->RunFor(Seconds(2));

  EXPECT_EQ(got, 0);
  EXPECT_GE(fa_->counters().packets_dropped_unknown_visitor, 1u);
}

TEST_F(ForeignAgentFixture, DiscoveryDrivenAttach) {
  Build(true);
  tb_->mh->stack().routes().RemoveForDevice(tb_->mh_eth);
  tb_->mh->stack().UnconfigureAddress(tb_->mh_eth);
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();

  bool done = false;
  bool result = false;
  DiscoverAndAttachViaForeignAgent(*tb_->mobile, tb_->mh_eth, Seconds(5), [&](bool ok) {
    done = true;
    result = ok;
  });
  tb_->RunFor(Seconds(10));
  EXPECT_TRUE(done);
  EXPECT_TRUE(result);
  EXPECT_TRUE(tb_->mobile->attached_via_foreign_agent());
  EXPECT_EQ(tb_->mobile->care_of(), Ipv4Address(36, 8, 0, 2));
}

TEST_F(ForeignAgentFixture, DiscoveryTimesOutWithoutAgent) {
  Build(true);
  fa_.reset();  // No agent advertising.
  tb_->mh->stack().routes().RemoveForDevice(tb_->mh_eth);
  tb_->mh->stack().UnconfigureAddress(tb_->mh_eth);
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();

  bool done = false;
  bool result = true;
  DiscoverAndAttachViaForeignAgent(*tb_->mobile, tb_->mh_eth, Seconds(2), [&](bool ok) {
    done = true;
    result = ok;
  });
  tb_->RunFor(Seconds(5));
  EXPECT_TRUE(done);
  EXPECT_FALSE(result);
}

TEST_F(ForeignAgentFixture, ReturnHomeFromFaMode) {
  Build(true);
  AttachViaFa();
  tb_->MoveMhEthernetTo(tb_->net135.get());
  bool done = false;
  tb_->mobile->AttachHome([&](bool ok) { done = ok; });
  tb_->RunFor(Seconds(5));
  EXPECT_TRUE(done);
  EXPECT_TRUE(tb_->mobile->at_home());
  EXPECT_FALSE(tb_->mobile->attached_via_foreign_agent());
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
}

}  // namespace
}  // namespace msn
