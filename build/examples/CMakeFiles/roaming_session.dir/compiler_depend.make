# Empty compiler generated dependencies file for roaming_session.
# This may be replaced when dependencies are built.
