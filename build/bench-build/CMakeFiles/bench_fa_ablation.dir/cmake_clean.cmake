file(REMOVE_RECURSE
  "../bench/bench_fa_ablation"
  "../bench/bench_fa_ablation.pdb"
  "CMakeFiles/bench_fa_ablation.dir/bench_fa_ablation.cc.o"
  "CMakeFiles/bench_fa_ablation.dir/bench_fa_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fa_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
