#include "src/sim/time.h"

#include <cstdio>
#include <cstdlib>

namespace msn {
namespace {

std::string FormatNanos(int64_t ns) {
  char buf[48];
  const int64_t mag = ns < 0 ? -ns : ns;
  if (mag >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) * 1e-9);
  } else if (mag >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) * 1e-6);
  } else if (mag >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatNanos(ns_); }

std::string Time::ToString() const { return FormatNanos(ns_); }

}  // namespace msn
