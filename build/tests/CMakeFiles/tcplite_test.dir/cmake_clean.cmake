file(REMOVE_RECURSE
  "CMakeFiles/tcplite_test.dir/tcplite_test.cc.o"
  "CMakeFiles/tcplite_test.dir/tcplite_test.cc.o.d"
  "tcplite_test"
  "tcplite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcplite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
