file(REMOVE_RECURSE
  "libmsn_net.a"
)
