# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for foreign_agent_test.
