// Per-node route-decision cache in front of IpStack::RouteLookup
// (DESIGN.md §18).
//
// The paper's enhanced ip_rt_route() runs two longest-prefix matches per
// packet (Mobile Policy Table, then the routing table); at 2M+ pps those
// linear scans dominate the hop cost. The flow cache memoizes the complete
// decision — output device, canonical source, next hop, and the policy
// counters the decision must bump per packet — keyed on (destination,
// forwarding bit).
//
// Correctness rests on two rules, both enforced by the owning IpStack:
//
//   1. Generation invalidation. The cache keeps one generation counter;
//      every piece of state a decision can depend on (routing-table entry,
//      MPT entry, interface address, HA binding, MH attachment/away/FA
//      state, the override itself) bumps it on mutation, which atomically
//      orphans every entry. A cached decision can therefore never outlive
//      the state that produced it — including the raw counter pointers it
//      carries, whose referents only move when a table mutates.
//
//   2. Canonical source. Entries are computed and stored under
//      src_hint = Any; a hit with a bound source substitutes the hint into
//      decision.src, which reproduces the uncached source-selection rules
//      for every eligible query. Non-forwarding queries with a bound source
//      bypass the cache entirely, because the MH override's local-role
//      exemption branches on the hint (paper §3.3).
//
// tests/flow_cache_test.cc pins the invalidation contract per hook;
// tests/datapath_diff_test.cc proves on == off end to end.
#ifndef MSN_SRC_NODE_FLOW_CACHE_H_
#define MSN_SRC_NODE_FLOW_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/net/address.h"
#include "src/node/ip_stack.h"
#include "src/telemetry/metrics.h"

namespace msn {

class FlowCache {
 public:
  // A memoized lookup result. `decision == nullopt` caches a negative
  // answer (no route) — those repeat just like positive ones.
  struct Value {
    std::optional<RouteDecision> decision;
    // Per-packet policy accounting carried out of the override; bumped by
    // IpStack::RouteLookup for every non-advisory query this value answers.
    CounterRef* policy_counter = nullptr;
    uint64_t* policy_hits = nullptr;
  };

  // Counters land in `metrics` as "flow_cache.<node>.{hits,misses,
  // invalidations}".
  FlowCache(size_t capacity, MetricsRegistry& metrics, const std::string& node_name);
  ~FlowCache();

  FlowCache(const FlowCache&) = delete;
  FlowCache& operator=(const FlowCache&) = delete;

  // Point query; null on miss or when the entry predates the last
  // invalidation. Never iterates the map (determinism: bucket order must
  // not influence behavior).
  [[nodiscard]] const Value* Find(Ipv4Address dst, bool forwarding);

  void Insert(Ipv4Address dst, bool forwarding, Value value);

  // O(1): bumps the generation, orphaning every entry at once. Orphans are
  // reclaimed lazily on re-lookup or by the capacity clear.
  void Invalidate();

  uint64_t generation() const { return generation_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  size_t entry_count() const { return map_.size(); }

 private:
  struct Entry {
    Value value;
    uint64_t generation = 0;
  };

  static uint64_t Key(Ipv4Address dst, bool forwarding) {
    return static_cast<uint64_t>(dst.value()) |
           (forwarding ? (uint64_t{1} << 32) : uint64_t{0});
  }

  const size_t capacity_;
  // Point queries and point erases only — never iterated.
  std::unordered_map<uint64_t, Entry> map_;
  uint64_t generation_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  CounterRef hits_counter_;
  CounterRef misses_counter_;
  CounterRef invalidations_counter_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_FLOW_CACHE_H_
