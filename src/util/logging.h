// Minimal leveled logging for the library. Logging is off by default so tests
// and benches stay quiet; examples turn it on to narrate what the protocol is
// doing.
#ifndef MSN_SRC_UTIL_LOGGING_H_
#define MSN_SRC_UTIL_LOGGING_H_

#include <cstdarg>
#include <string>

namespace msn {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Sets the global minimum level that is emitted. Thread-compatible (the
// simulator is single-threaded by design).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Optional clock stamped onto every log line (seconds). The simulator
// installs itself here so protocol logs carry virtual time; pass nullptr to
// detach. `ctx` disambiguates when several simulators exist in one process.
using LogClockFn = double (*)(void* ctx);
void SetLogClock(LogClockFn fn, void* ctx);
void* GetLogClockContext();

// printf-style log statement. `tag` identifies the subsystem ("mip", "arp").
void Logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

const char* LogLevelName(LogLevel level);

}  // namespace msn

#define MSN_LOG(level, tag, ...)                          \
  do {                                                    \
    if ((level) >= ::msn::GetLogLevel()) {                \
      ::msn::Logf((level), (tag), __VA_ARGS__);           \
    }                                                     \
  } while (0)

#define MSN_TRACE(tag, ...) MSN_LOG(::msn::LogLevel::kTrace, tag, __VA_ARGS__)
#define MSN_DEBUG(tag, ...) MSN_LOG(::msn::LogLevel::kDebug, tag, __VA_ARGS__)
#define MSN_INFO(tag, ...) MSN_LOG(::msn::LogLevel::kInfo, tag, __VA_ARGS__)
#define MSN_WARN(tag, ...) MSN_LOG(::msn::LogLevel::kWarning, tag, __VA_ARGS__)
#define MSN_ERROR(tag, ...) MSN_LOG(::msn::LogLevel::kError, tag, __VA_ARGS__)

#endif  // MSN_SRC_UTIL_LOGGING_H_
