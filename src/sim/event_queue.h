// Priority queue of timed events with stable FIFO ordering for equal
// timestamps and O(1) generation-checked cancellation.
//
// Callbacks are move-only, small-buffer-optimized UniqueFunctions stored
// inline in a flat slot arena indexed by the heap items — no side hash map,
// and no per-event heap allocation for callbacks that fit the inline buffer.
// The heap items themselves stay 24-byte PODs so the O(log n) sift moves
// never touch callback storage (keeping the callback inside the heap item
// measured ~3x slower on the event microbench). Cancellation bumps the
// event's slot generation and destroys the callback immediately; the
// orphaned heap item is skipped lazily when it reaches the top.
//
// Ordering contract (relied on for bit-for-bit deterministic seeded runs):
// events pop in (time, schedule order). The sequence number that breaks ties
// is assigned in Schedule call order, exactly as in the original
// priority_queue + unordered_map implementation, so pop order is identical.
//
// Immediate lane: events scheduled for exactly the timestamp currently being
// drained skip the heap and go to a FIFO side lane (the dominant pattern on
// the datapath: zero-delay pipeline continuations chained from a running
// callback). The lane is provably order-identical to the heap path — any
// heap item at the drain time predates the drain and so carries a smaller
// sequence number than every lane item, and PopNext drains heap-at-t before
// lane-at-t — but costs O(1) push/pop instead of two O(log n) sifts. Lane
// items keep their slot + generation, so Cancel semantics are unchanged.
#ifndef MSN_SRC_SIM_EVENT_QUEUE_H_
#define MSN_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/util/function.h"

namespace msn {

// Opaque handle identifying a scheduled event. Default-constructed handles
// are invalid and cancelling them is a no-op.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return handle_ != 0; }

 private:
  friend class EventQueue;
  explicit EventId(uint64_t handle) : handle_(handle) {}
  // (generation << 32) | (slot + 1); 0 is the invalid handle.
  uint64_t handle_ = 0;
};

class EventQueue {
 public:
  using Callback = UniqueFunction;

  // Enqueues `cb` to fire at `when`. Events scheduled for the same time fire
  // in insertion order.
  EventId Schedule(Time when, Callback cb);

  // Cancels a pending event. Returns true if the event was still pending.
  // The callback itself is destroyed when its heap item is popped.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; Time::Max() when empty.
  Time NextTime() const;

  // Removes and returns the earliest pending event. Requires !empty().
  struct Entry {
    Time when;
    Callback cb;
  };
  Entry PopNext();

  // Scheduling-path split since construction; feeds the burst.* probes.
  struct LaneStats {
    uint64_t lane_scheduled = 0;  // O(1) immediate-lane pushes.
    uint64_t heap_scheduled = 0;  // O(log n) heap pushes.
  };
  const LaneStats& lane_stats() const { return lane_stats_; }

 private:
  struct Item {
    Time when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  struct Slot {
    uint32_t gen = 0;
    Callback cb;
  };

  // Min-heap comparator: true when `a` fires after `b`.
  static bool After(const Item& a, const Item& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  // True when the item at the top of the heap was cancelled.
  bool TopIsTombstone() const {
    return slots_[heap_.front().slot].gen != heap_.front().gen;
  }
  void DropCancelledHead();
  void DropCancelledLaneFront();
  void PopHeapItem();
  Entry TakeItem(const Item& item);

  std::vector<Item> heap_;
  // Immediate lane: FIFO of items scheduled at exactly `lane_time_` while it
  // was the drain front. Consumed from `lane_head_`; storage resets when the
  // lane empties so it never grows past one drain wave.
  std::vector<Item> lane_;
  size_t lane_head_ = 0;
  Time lane_time_ = Time::Zero();
  bool lane_open_ = false;  // False until the first PopNext defines lane_time_.
  LaneStats lane_stats_;
  // Callback arena. A generation mismatch between a Slot and an Item marks
  // that item cancelled. Slots return to the free list as soon as the
  // generation is bumped (Cancel or pop) — stale heap items can never match
  // the reissued slot because their generation is behind.
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_SIM_EVENT_QUEUE_H_
