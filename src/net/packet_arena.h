// Arena recycler for packet storage nodes (DESIGN.md §18).
//
// PR 4 made the datapath zero-copy, which left two per-packet costs on the
// hot path: the shared_ptr control-block allocation for every Storage node
// and a BufferPool free-list transaction per wire buffer. The arena removes
// both. Packet storage is now an intrusively ref-counted PacketStorage node
// (single-threaded core: a plain uint32 refcount, no atomics), and the arena
// keeps dead nodes — header and pooled byte vector together — on a free
// list. Steady-state per-packet allocation cost is a pointer pop on acquire
// and a pointer push on release; the BufferPool is only touched in bulk, one
// AcquireBatch per slab refill and one ReleaseBatch per overflow drain.
//
// Oversize storage (beyond the pool block) and adopted producer vectors
// bypass the arena: they are heap-built, heap-freed, never recycled.
#ifndef MSN_SRC_NET_PACKET_ARENA_H_
#define MSN_SRC_NET_PACKET_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/buffer_pool.h"

namespace msn {

class PacketArena;

// One block of wire bytes plus its intrusive refcount. Reachable only
// through Packet (which owns the ref discipline) and PacketArena (which
// recycles dead nodes).
struct PacketStorage {
  std::vector<uint8_t> bytes;
  // Where the byte vector returns when the node dies outside the arena
  // (oversize blocks); null for adopted producer vectors.
  BufferPool* pool = nullptr;
  // Recycler for this node; null = heap node, deleted on last unref.
  PacketArena* arena = nullptr;
  uint32_t refs = 0;
};

class PacketArena {
 public:
  // Nodes pulled from the BufferPool per refill: one pool interaction
  // amortized over a burst of packet allocations.
  static constexpr size_t kSlabNodes = 64;
  // Free-list cap, matched to the pool's own retention bound.
  static constexpr size_t kDefaultMaxFree = BufferPool::kDefaultMaxFree;

  struct Stats {
    uint64_t node_allocs = 0;  // PacketStorage nodes heap-allocated.
    uint64_t recycled = 0;     // Acquires served from the free list.
    uint64_t refills = 0;      // Slab refills (bulk pool acquires).
    uint64_t drains = 0;       // Overflow drains (bulk pool releases).
    size_t free_nodes = 0;     // Nodes idle on the free list now.
  };

  explicit PacketArena(BufferPool& pool, size_t max_free = kDefaultMaxFree);
  ~PacketArena();

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  // Returns a node with refs == 1 and `size` visible bytes (stale contents;
  // callers overwrite). Oversize requests come back as non-recyclable heap
  // nodes drawing straight from the pool's oversize path.
  [[nodiscard]] PacketStorage* Acquire(size_t size);

  // Takes back a node whose refcount reached zero. Arena-block nodes return
  // to the free list; anything else is freed here.
  void Recycle(PacketStorage* node);

  const Stats& stats() const { return stats_; }
  BufferPool& pool() { return pool_; }

  // Returns all idle nodes' buffers to the pool in one batch and frees the
  // nodes (tests; bounding peak memory between phases).
  void Trim();

 private:
  void Refill();

  BufferPool& pool_;
  const size_t max_free_;
  std::vector<PacketStorage*> free_;
  Stats stats_;
};

// The process-wide arena packet storage draws from, layered over
// DefaultBufferPool(). Function-local static: safe for static-lifetime
// Packets regardless of construction order.
PacketArena& DefaultPacketArena();

}  // namespace msn

#endif  // MSN_SRC_NET_PACKET_ARENA_H_
