// Tests for movement detection / automatic interface selection (paper §6).
#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"
#include "src/mip/movement_detector.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

// Constant loss as a degenerate Gilbert-Elliott profile (never bursts).
FaultProfile ConstantLoss(double loss) {
  GilbertElliottParams ge;
  ge.p_enter_burst = 0.0;
  ge.p_exit_burst = 1.0;
  ge.loss_good = loss;
  ge.loss_bad = loss;
  FaultProfile profile;
  profile.burst_loss = ge;
  return profile;
}

class MovementFixture : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 61) {
    TestbedConfig cfg;
    cfg.seed = seed;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    // Hot-standby configuration: MH visits net 36.8 on the wire with the
    // radio also up and addressed.
    tb_->StartMobileOnWired(50);
    tb_->ForceRadioUp();
    tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70),
                                      SubnetMask(16));

    MovementDetector::Config mc;
    mc.probe_interval = Milliseconds(500);
    mc.probe_timeout = Milliseconds(450);
    mc.hysteresis_rounds = 3;
    detector_ = std::make_unique<MovementDetector>(*tb_->mobile, mc);
    detector_->AddCandidate({tb_->WiredAttachment(50), /*preference=*/10});
    detector_->AddCandidate({tb_->WirelessAttachment(70), /*preference=*/1});
    detector_->Start();
  }

  // Kills the wired path by detaching the MH's Ethernet from its segment.
  void KillWired() { tb_->MoveMhEthernetTo(nullptr); }
  void RestoreWired() { tb_->MoveMhEthernetTo(tb_->net8.get()); }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<MovementDetector> detector_;
};

TEST_F(MovementFixture, StableLinkCausesNoSwitching) {
  Build();
  tb_->RunFor(Seconds(10));
  EXPECT_EQ(detector_->counters().switches, 0u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
  // Both links are seen as healthy.
  EXPECT_LT(detector_->LossEstimate("eth0"), 0.1);
  EXPECT_LT(detector_->LossEstimate("strip0"), 0.25);  // Radio has rare drops.
}

TEST_F(MovementFixture, FailsOverToRadioWhenWiredDies) {
  Build();
  tb_->RunFor(Seconds(5));
  ASSERT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);

  KillWired();
  tb_->RunFor(Seconds(15));
  EXPECT_GE(detector_->counters().failovers, 1u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
  EXPECT_TRUE(tb_->mobile->registered());
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(Testbed::Net134().Contains(binding->care_of));
}

TEST_F(MovementFixture, UpgradesBackWhenWiredReturns) {
  Build();
  tb_->RunFor(Seconds(5));
  KillWired();
  tb_->RunFor(Seconds(15));
  ASSERT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);

  RestoreWired();
  tb_->RunFor(Seconds(15));
  EXPECT_GE(detector_->counters().upgrades, 1u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
  EXPECT_TRUE(tb_->mobile->registered());
}

TEST_F(MovementFixture, HysteresisSuppressesSingleDropFlapping) {
  Build();
  tb_->RunFor(Seconds(5));
  // One lost probe round must not trigger a switch.
  KillWired();
  tb_->RunFor(Milliseconds(600));  // ~1 probe round.
  RestoreWired();
  tb_->RunFor(Seconds(10));
  EXPECT_EQ(detector_->counters().switches, 0u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
}

TEST_F(MovementFixture, NotifiesUpperLayersWithLinkCharacteristics) {
  Build();
  std::vector<LinkCharacteristics> notifications;
  detector_->SetAttachmentChangeHandler(
      [&](const LinkCharacteristics& link, bool registered) {
        EXPECT_TRUE(registered);
        notifications.push_back(link);
      });
  tb_->RunFor(Seconds(5));
  KillWired();
  tb_->RunFor(Seconds(15));
  ASSERT_GE(notifications.size(), 1u);
  // The paper's §6: upper layers learn the new link's very different
  // characteristics (35 kb/s radio vs 10 Mb/s Ethernet).
  EXPECT_EQ(notifications.back().device_name, "strip0");
  EXPECT_EQ(notifications.back().bandwidth_bps, StripRadioDevice::kDefaultBandwidthBps);
  EXPECT_LT(notifications.back().loss_estimate, 0.4);
  EXPECT_GT(notifications.back().last_probe_rtt.ToMillisF(), 100.0);  // Radio RTT.
}

// A host parked at a cell boundary sees its loss estimate oscillate around
// the usable threshold. Without the min_residency guard the detector bounces
// between wired and radio on every swing; with it, switching is bounded.
class BoundaryFixture : public MovementFixture {
 protected:
  void BuildWithResidency(Duration min_residency) {
    TestbedConfig cfg;
    cfg.seed = 61;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    tb_->StartMobileOnWired(50);
    tb_->ForceRadioUp();
    tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70),
                                      SubnetMask(16));

    MovementDetector::Config mc;
    mc.probe_interval = Milliseconds(500);
    mc.probe_timeout = Milliseconds(450);
    mc.hysteresis_rounds = 3;
    mc.switch_cooldown = Milliseconds(500);  // Isolate the residency guard.
    mc.min_residency = min_residency;
    detector_ = std::make_unique<MovementDetector>(*tb_->mobile, mc);
    detector_->AddCandidate({tb_->WiredAttachment(50), /*preference=*/10});
    detector_->AddCandidate({tb_->WirelessAttachment(70), /*preference=*/1});
    detector_->Start();
  }

  // Swings the wired link's quality across the usable threshold: total loss
  // for half a period (EWMA climbs past the threshold, link reads dead), then
  // clean for half a period (EWMA decays back, link reads usable again).
  void OscillateWired(int cycles, Duration half_period) {
    FaultInjector inject(tb_->sim, *tb_->net8, &tb_->metrics);
    for (int i = 0; i < cycles; ++i) {
      inject.SetProfile(ConstantLoss(1.0));
      tb_->RunFor(half_period);
      inject.ClearProfile();
      tb_->RunFor(half_period);
    }
  }
};

TEST_F(BoundaryFixture, OscillatingQualityCausesPingPongWithoutGuard) {
  BuildWithResidency(Duration());  // Guard off.
  tb_->RunFor(Seconds(5));
  OscillateWired(5, Seconds(3));
  // Every swing is long enough to defeat hysteresis: the detector ping-pongs.
  EXPECT_GE(detector_->counters().switches, 4u);
}

TEST_F(BoundaryFixture, MinResidencySuppressesPingPong) {
  BuildWithResidency(Seconds(30));
  tb_->RunFor(Seconds(5));
  OscillateWired(5, Seconds(3));
  // The guard pins the host to its cell through the swings: at most the one
  // switch permitted when the first residency window lapses.
  EXPECT_LE(detector_->counters().switches, 1u);
  EXPECT_GE(detector_->counters().pingpong_suppressed, 1u);
  // Voluntary moves were vetoed, but the host is still on a working link.
  EXPECT_TRUE(tb_->mobile->registered());
}

// Regression: a registration that times out leaves the MH detached and the
// protocol never retries on its own. The detector must re-attach through the
// (locally usable) current link once the path to the home agent returns.
TEST_F(MovementFixture, ReattachesAfterRegistrationTimeout) {
  // The HA must live on its own home-network host (not the router) so a
  // home-subnet blackout actually severs the registration path.
  TestbedConfig cfg;
  cfg.seed = 61;
  cfg.ha_on_router = false;
  tb_ = std::make_unique<Testbed>(cfg);
  tb_->StartMobileAtHome();
  tb_->StartMobileOnWired(50);
  tb_->ForceRadioUp();
  tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70),
                                    SubnetMask(16));
  MovementDetector::Config mc;
  mc.probe_interval = Milliseconds(500);
  mc.probe_timeout = Milliseconds(450);
  mc.hysteresis_rounds = 3;
  detector_ = std::make_unique<MovementDetector>(*tb_->mobile, mc);
  detector_->AddCandidate({tb_->WiredAttachment(50), /*preference=*/10});
  detector_->AddCandidate({tb_->WirelessAttachment(70), /*preference=*/1});
  detector_->Start();

  tb_->RunFor(Seconds(3));
  ASSERT_TRUE(tb_->mobile->registered());

  // Black out the home subnet and force a fresh registration by failing the
  // MH over to the radio. The RegReq crosses net 36.135 and dies there; the
  // radio's own gateway keeps answering probes, so the link stays "usable"
  // while the registration exhausts its retransmits.
  FaultInjector inject_home(tb_->sim, *tb_->net135, &tb_->metrics);
  inject_home.SetProfile(ConstantLoss(1.0));
  KillWired();
  tb_->RunFor(Seconds(30));
  EXPECT_FALSE(tb_->mobile->registered());

  // Home subnet heals: the recovery path re-registers through the current
  // link without any physical movement.
  inject_home.ClearProfile();
  tb_->RunFor(Seconds(25));
  EXPECT_TRUE(tb_->mobile->registered());
  EXPECT_GE(detector_->counters().reattaches, 1u);
}

TEST_F(MovementFixture, TrafficContinuesAcrossAutomaticFailover) {
  Build();
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch,
                     ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();
  tb_->RunFor(Seconds(3));
  KillWired();
  tb_->RunFor(Seconds(15));
  sender.Stop();
  tb_->RunFor(Seconds(2));
  // Echoes resumed after the automatic switch; the outage is bounded by the
  // detection hysteresis (~1.5 s) plus re-registration.
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
  const uint64_t lost = sender.TotalLost();
  EXPECT_GE(sender.received(), 40u);
  EXPECT_LE(lost, 14u);
  EXPECT_GE(lost, 2u);  // The detection window is not free.
}

}  // namespace
}  // namespace msn
