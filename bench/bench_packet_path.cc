// Per-hop forwarding throughput of the packet datapath, plus the raw event
// engine: the two hot paths every other benchmark sits on.
//
// Part 1 (forwarding chain): a source pumps N datagrams through a chain of H
// forwarding routers to a sink. All model delays are zero and ARP caches are
// pre-filled, so wall-clock time measures exactly the per-hop software cost:
// frame handling, header parse, TTL/checksum update, route lookup, and the
// event engine carrying each hop. Reported as packets/sec of forwarding work
// (pps) and ns per hop.
//
// Part 2 (event engine): schedule/cancel/pop throughput of the simulator's
// event queue in isolation, with same-timestamp bursts to exercise the FIFO
// tie-break path.
//
// Wall-clock timing lives here, not in src/ (the determinism lint only
// guards the simulation core; benches measure real CPU cost by design).
// Deterministic fields (hops forwarded, delivered counts, events executed)
// are byte-identical across runs for a fixed seed; the timing-derived
// summaries (pps, ns/hop) vary with the host and are gated with a loose
// tolerance in CI (see tools/compare_bench_json.py).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/link/link_device.h"
#include "src/net/datapath_tuning.h"
#include "src/net/packet.h"
#include "src/net/packet_arena.h"
#include "src/node/flow_cache.h"
#include "src/node/node.h"
#include "src/sim/simulator.h"
#include "src/telemetry/export.h"
#include "src/telemetry/packet_probes.h"
#include "src/util/buffer_pool.h"

namespace msn {
namespace {

// An IP protocol number with no registered handler: the sink counts the
// delivery and stops, with no reply traffic and no payload parsing, so the
// measured cost is purely the per-hop datapath.
constexpr IpProto kBenchProto = static_cast<IpProto>(0xfd);

double WallSeconds(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

struct ChainResult {
  uint64_t hops_forwarded = 0;
  uint64_t delivered = 0;
  uint64_t events_executed = 0;
  uint64_t packet_copies = 0;      // Deep copies made during the run.
  uint64_t packet_cow_breaks = 0;  // Subset forced by shared storage.
  uint64_t packet_allocations = 0;
  // Flow-cache totals across every stack in the chain.
  uint64_t flow_hits = 0;
  uint64_t flow_misses = 0;
  uint64_t flow_invalidations = 0;
  // Event-engine immediate-lane and device burst-drain totals.
  uint64_t lane_scheduled = 0;
  uint64_t heap_scheduled = 0;
  uint64_t tx_bursts = 0;
  uint64_t tx_burst_frames = 0;
  double wall_sec = 0.0;
};

// Source -> H routers -> sink, every link its own broadcast medium with zero
// jitter and zero loss so the run draws no randomness at all. With `zero_bw`
// the links also serialize for free, which routes every frame through the
// device burst-drain path and every pipeline stage through the inline
// dispatcher — the pure software-overhead ceiling.
ChainResult RunForwardingChain(int hops, int packets, size_t payload_bytes, uint64_t seed,
                               bool zero_bw = false) {
  Simulator sim(seed);

  MediumParams wire;
  wire.latency = Microseconds(10);
  wire.latency_jitter = Duration();
  wire.drop_probability = 0.0;

  std::vector<std::unique_ptr<BroadcastMedium>> media;
  for (int i = 0; i <= hops; ++i) {
    media.push_back(
        std::make_unique<BroadcastMedium>(sim, "m" + std::to_string(i), wire));
  }

  auto addr = [](int net, int host) {
    return Ipv4Address(10, static_cast<uint8_t>(net), 0, static_cast<uint8_t>(host));
  };

  Node source(sim, "src");
  EthernetDevice* src_eth = source.AddEthernet("eth0", media[0].get());
  src_eth->ForceUp();
  if (zero_bw) {
    src_eth->set_bandwidth_bps(0);
  }
  src_eth->set_queue_capacity(static_cast<size_t>(packets) + 16);
  source.ConfigureInterface(src_eth, "10.0.0.10/24");
  source.AddDefaultRoute(addr(0, 1), src_eth);

  const Ipv4Address sink_addr = addr(hops, 10);
  std::vector<std::unique_ptr<Node>> routers;
  for (int i = 0; i < hops; ++i) {
    auto router = std::make_unique<Node>(sim, "r" + std::to_string(i));
    router->stack().set_forwarding_enabled(true);
    EthernetDevice* left = router->AddEthernet("left", media[i].get());
    EthernetDevice* right = router->AddEthernet("right", media[i + 1].get());
    left->ForceUp();
    right->ForceUp();
    if (zero_bw) {
      left->set_bandwidth_bps(0);
      right->set_bandwidth_bps(0);
    }
    left->set_queue_capacity(static_cast<size_t>(packets) + 16);
    right->set_queue_capacity(static_cast<size_t>(packets) + 16);
    router->ConfigureInterface(left, "10." + std::to_string(i) + ".0.1/24");
    router->ConfigureInterface(right, "10." + std::to_string(i + 1) + ".0.2/24");
    if (i + 1 < hops) {
      router->AddHostRoute(sink_addr, addr(i + 1, 1), right);
    }
    routers.push_back(std::move(router));
  }

  Node sink(sim, "sink");
  EthernetDevice* sink_eth = sink.AddEthernet("eth0", media[hops].get());
  sink_eth->ForceUp();
  if (zero_bw) {
    sink_eth->set_bandwidth_bps(0);
  }
  sink.ConfigureInterface(sink_eth, "10." + std::to_string(hops) + ".0.10/24");

  // Pre-resolve every next hop so no ARP traffic rides along.
  const Duration arp_life = Seconds(1000000);
  source.stack().arp().set_entry_lifetime(arp_life);
  source.stack().arp().AddStaticEntry(addr(0, 1), routers[0]->FindDevice("left")->mac());
  for (int i = 0; i < hops; ++i) {
    routers[i]->stack().arp().set_entry_lifetime(arp_life);
    if (i + 1 < hops) {
      routers[i]->stack().arp().AddStaticEntry(addr(i + 1, 1),
                                               routers[i + 1]->FindDevice("left")->mac());
    } else {
      routers[i]->stack().arp().AddStaticEntry(sink_addr, sink_eth->mac());
    }
  }

  std::vector<uint8_t> payload(payload_bytes);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131);
  }
  for (int i = 0; i < packets; ++i) {
    source.stack().SendDatagram(addr(0, 10), sink_addr, kBenchProto, payload);
  }

  const Packet::Stats before = Packet::stats();
  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto end = std::chrono::steady_clock::now();
  const Packet::Stats after = Packet::stats();

  ChainResult result;
  for (const auto& router : routers) {
    result.hops_forwarded += router->stack().counters().datagrams_forwarded;
  }
  result.delivered = sink.stack().counters().datagrams_delivered;
  result.events_executed = sim.events_executed();
  result.packet_copies = after.copies - before.copies;
  result.packet_cow_breaks = after.cow_breaks - before.cow_breaks;
  result.packet_allocations = after.allocations - before.allocations;
  const auto add_flow = [&result](Node& node) {
    const FlowCache& cache = node.stack().flow_cache();
    result.flow_hits += cache.hits();
    result.flow_misses += cache.misses();
    result.flow_invalidations += cache.invalidations();
  };
  add_flow(source);
  for (const auto& router : routers) {
    add_flow(*router);
  }
  add_flow(sink);
  const auto add_dev = [&result](NetDevice* device) {
    result.tx_bursts += device->counters().tx_bursts;
    result.tx_burst_frames += device->counters().tx_burst_frames;
  };
  add_dev(src_eth);
  for (const auto& router : routers) {
    add_dev(router->FindDevice("left"));
    add_dev(router->FindDevice("right"));
  }
  add_dev(sink_eth);
  result.lane_scheduled = sim.queue_lane_stats().lane_scheduled;
  result.heap_scheduled = sim.queue_lane_stats().heap_scheduled;
  result.wall_sec = WallSeconds(start, end);
  return result;
}

struct EventResult {
  uint64_t executed = 0;
  double wall_sec = 0.0;
};

// Schedule `count` events (every 8th one cancelled, every 4th sharing a
// timestamp with its neighbour to hit the FIFO tie-break), then drain.
EventResult RunEventEngine(int count, uint64_t seed) {
  Simulator sim(seed);
  uint64_t fired = 0;
  std::vector<EventId> cancellable;
  cancellable.reserve(static_cast<size_t>(count) / 8 + 1);
  for (int i = 0; i < count; ++i) {
    const int64_t us = (i % 4 == 0) ? i : i + 1;
    EventId id = sim.Schedule(Microseconds(us), [&fired] { ++fired; });
    if (i % 8 == 0) {
      cancellable.push_back(id);
    }
  }
  for (EventId id : cancellable) {
    sim.Cancel(id);
  }
  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto end = std::chrono::steady_clock::now();
  EventResult result;
  result.executed = fired;
  result.wall_sec = WallSeconds(start, end);
  return result;
}

int Main() {
  const bool smoke = BenchSmokeMode();
  const int kHops = 4;
  const int kPackets = BenchIterations(10000, 500);
  const int kReps = BenchIterations(5, 2);
  const int kEvents = BenchIterations(400000, 20000);
  const size_t kPayloadBytes = 1000;

  std::printf("==============================================================\n");
  std::printf("Packet datapath: %d-hop forwarding chain, %d packets of %zu B\n", kHops,
              kPackets, kPayloadBytes);
  std::printf("==============================================================\n\n");

  BenchReport report("packet_path",
                     "Per-hop forwarding throughput and event-engine cost");
  report.set_seed(4000);
  report.AddParam("hops", kHops);
  report.AddParam("packets", kPackets);
  report.AddParam("payload_bytes", static_cast<uint64_t>(kPayloadBytes));
  report.AddParam("reps", kReps);
  report.AddParam("event_count", kEvents);
  report.AddParam("smoke", smoke);

  std::vector<double> pps_samples;
  std::vector<double> ns_per_hop_samples;
  std::vector<double> copies_per_hop_samples;
  std::printf("%4s  %14s  %12s  %12s  %12s  %12s\n", "rep", "hops fwd", "wall ms", "pps",
              "ns/hop", "copies/hop");
  for (int rep = 0; rep < kReps; ++rep) {
    const ChainResult r =
        RunForwardingChain(kHops, kPackets, kPayloadBytes, 4000 + static_cast<uint64_t>(rep));
    const double pps = r.wall_sec > 0
                           ? static_cast<double>(r.hops_forwarded) / r.wall_sec
                           : 0.0;
    const double ns_per_hop =
        r.hops_forwarded > 0
            ? r.wall_sec * 1e9 / static_cast<double>(r.hops_forwarded)
            : 0.0;
    const double copies_per_hop =
        r.hops_forwarded > 0
            ? static_cast<double>(r.packet_copies) / static_cast<double>(r.hops_forwarded)
            : 0.0;
    pps_samples.push_back(pps);
    ns_per_hop_samples.push_back(ns_per_hop);
    copies_per_hop_samples.push_back(copies_per_hop);
    std::printf("%4d  %14llu  %12.2f  %12.0f  %12.0f  %12.3f\n", rep,
                static_cast<unsigned long long>(r.hops_forwarded), r.wall_sec * 1e3, pps,
                ns_per_hop, copies_per_hop);
    report.AddRow("chain_rep=" + std::to_string(rep),
                  {{"hops_forwarded", r.hops_forwarded},
                   {"delivered", r.delivered},
                   {"events_executed", r.events_executed},
                   {"packet_copies", r.packet_copies},
                   {"packet_cow_breaks", r.packet_cow_breaks},
                   {"packet_allocations", r.packet_allocations},
                   {"flow_cache_hits", r.flow_hits},
                   {"flow_cache_misses", r.flow_misses},
                   {"flow_cache_invalidations", r.flow_invalidations},
                   {"lane_scheduled", r.lane_scheduled},
                   {"heap_scheduled", r.heap_scheduled},
                   {"wall_ms", r.wall_sec * 1e3},
                   {"fwd_pps", pps},
                   {"ns_per_hop", ns_per_hop},
                   {"copies_per_hop", copies_per_hop}});
  }
  report.AddSummary("fwd_pps", "pps", pps_samples);
  report.AddSummary("ns_per_hop", "ns", ns_per_hop_samples);
  report.AddSummary("copies_per_hop", "copies", copies_per_hop_samples);

  // Zero-bandwidth variant: serialization is free, so every frame drains
  // through the device burst path and every pipeline stage dispatches
  // inline. This is the software-overhead ceiling the datapath tuning aims
  // at; the row set proves the burst/lane machinery actually engages
  // (tx_bursts > 0, lane_scheduled > 0).
  std::vector<double> burst_pps_samples;
  std::printf("\nBurst chain (zero-bandwidth links, burst drain + inline dispatch)\n");
  std::printf("%4s  %14s  %12s  %12s  %12s  %12s\n", "rep", "hops fwd", "wall ms", "pps",
              "bursts", "lane evts");
  for (int rep = 0; rep < kReps; ++rep) {
    const ChainResult r = RunForwardingChain(kHops, kPackets, kPayloadBytes,
                                             5000 + static_cast<uint64_t>(rep),
                                             /*zero_bw=*/true);
    const double pps = r.wall_sec > 0
                           ? static_cast<double>(r.hops_forwarded) / r.wall_sec
                           : 0.0;
    burst_pps_samples.push_back(pps);
    std::printf("%4d  %14llu  %12.2f  %12.0f  %12llu  %12llu\n", rep,
                static_cast<unsigned long long>(r.hops_forwarded), r.wall_sec * 1e3, pps,
                static_cast<unsigned long long>(r.tx_bursts),
                static_cast<unsigned long long>(r.lane_scheduled));
    report.AddRow("burst_rep=" + std::to_string(rep),
                  {{"hops_forwarded", r.hops_forwarded},
                   {"delivered", r.delivered},
                   {"events_executed", r.events_executed},
                   {"tx_bursts", r.tx_bursts},
                   {"tx_burst_frames", r.tx_burst_frames},
                   {"lane_scheduled", r.lane_scheduled},
                   {"heap_scheduled", r.heap_scheduled},
                   {"flow_cache_hits", r.flow_hits},
                   {"flow_cache_misses", r.flow_misses},
                   {"wall_ms", r.wall_sec * 1e3},
                   {"fwd_pps", pps}});
  }
  report.AddSummary("burst_fwd_pps", "pps", burst_pps_samples);

  const BufferPool::Stats pool = DefaultBufferPool().stats();
  std::printf("\npool: hits=%llu misses=%llu oversize=%llu free=%llu outstanding=%llu\n",
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.misses),
              static_cast<unsigned long long>(pool.oversize),
              static_cast<unsigned long long>(pool.free_blocks),
              static_cast<unsigned long long>(pool.outstanding));
  report.AddRow("pool", {{"hits", pool.hits},
                         {"misses", pool.misses},
                         {"oversize", pool.oversize},
                         {"released", pool.released},
                         {"discarded", pool.discarded},
                         {"free_blocks", pool.free_blocks},
                         {"outstanding", pool.outstanding},
                         {"batch_acquires", pool.batch_acquires},
                         {"batch_releases", pool.batch_releases}});

  const PacketArena::Stats arena = DefaultPacketArena().stats();
  std::printf("arena: allocs=%llu recycled=%llu refills=%llu free=%llu\n",
              static_cast<unsigned long long>(arena.node_allocs),
              static_cast<unsigned long long>(arena.recycled),
              static_cast<unsigned long long>(arena.refills),
              static_cast<unsigned long long>(arena.free_nodes));
  report.AddRow("arena", {{"node_allocs", arena.node_allocs},
                          {"recycled", arena.recycled},
                          {"refills", arena.refills},
                          {"drains", arena.drains},
                          {"free_nodes", arena.free_nodes}});

  std::vector<double> eps_samples;
  std::printf("\nEvent engine: %d scheduled (1/8 cancelled, same-time bursts)\n", kEvents);
  for (int rep = 0; rep < kReps; ++rep) {
    const EventResult r = RunEventEngine(kEvents, 9000 + static_cast<uint64_t>(rep));
    const double eps =
        r.wall_sec > 0 ? static_cast<double>(r.executed) / r.wall_sec : 0.0;
    eps_samples.push_back(eps);
    std::printf("  rep %d: %llu pops in %.2f ms (%.0f events/sec)\n", rep,
                static_cast<unsigned long long>(r.executed), r.wall_sec * 1e3, eps);
    report.AddRow("events_rep=" + std::to_string(rep),
                  {{"executed", r.executed}, {"wall_ms", r.wall_sec * 1e3}, {"eps", eps}});
  }
  report.AddSummary("event_pops_per_sec", "eps", eps_samples);

  // Cumulative datapath accounting (pool.* / packet.*) as probe gauges.
  MetricsRegistry probes;
  RegisterPacketPathProbes(probes);
  report.AddMetrics(probes);

  const std::string path = report.WriteFile();
  std::printf("\nreport: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
