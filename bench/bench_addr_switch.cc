// Experiment E1 (paper §4, first experiment): packet loss when the mobile
// host switches its care-of address to another address on the same wired
// subnet — the minimal essential software overhead of the system.
//
// Setup (as in the paper): the correspondent host sends a UDP packet to the
// mobile host every 10 ms and the MH echoes it back. The MH then switches
// care-of addresses on the visited subnet. Packets in flight during the
// interval between "old address stops being accepted" and "new binding
// installed at the home agent" are lost. The paper ran 20 iterations:
// sixteen lost no packets and four lost exactly one, bounding the interval
// under 10 ms.
#include <cstdio>
#include <vector>

#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct TrialResult {
  uint64_t lost = 0;
  double switch_total_ms = 0;
};

TrialResult RunTrial(uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(10)});
  sender.Start();
  // Random phase between the probe stream and the switch instant (in the
  // real testbed the operator's switch is not synchronized with the sender).
  tb.RunFor(Seconds(1) + Microseconds(static_cast<int64_t>(
                             tb.sim.rng().UniformInt(uint64_t{0}, uint64_t{9999}))));

  bool ok = false;
  tb.mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, 51), [&](bool r) { ok = r; });
  tb.RunFor(Seconds(1));
  sender.Stop();
  tb.RunFor(Seconds(1));

  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }
  TrialResult result;
  result.lost = ok ? sender.TotalLost() : ~0ull;
  result.switch_total_ms = tb.mobile->last_timeline().Total().ToMillisF();
  return result;
}

int Main() {
  const int kIterations = BenchIterations(20, 5);
  const uint64_t kBaseSeed = 1000;

  std::printf("==============================================================\n");
  std::printf("E1: same-subnet care-of address switch (paper Section 4)\n");
  std::printf("CH sends UDP every 10 ms; MH echoes; %d iterations\n", kIterations);
  std::printf("==============================================================\n\n");

  BenchReport report("addr_switch",
                     "E1: same-subnet care-of address switch packet loss (paper Section 4)");
  report.set_seed(kBaseSeed);
  report.AddParam("iterations", kIterations);
  report.AddParam("probe_interval_ms", 10);

  IntHistogram losses;
  std::vector<double> loss_samples, switch_samples;
  for (int i = 0; i < kIterations; ++i) {
    const bool last = i == kIterations - 1;
    const TrialResult r =
        RunTrial(kBaseSeed + static_cast<uint64_t>(i), last ? &report : nullptr);
    if (r.lost == ~0ull) {
      std::printf("  iteration %2d: REGISTRATION FAILED\n", i + 1);
      continue;
    }
    losses.Add(static_cast<int64_t>(r.lost));
    loss_samples.push_back(static_cast<double>(r.lost));
    switch_samples.push_back(r.switch_total_ms);
  }
  RunningStats switch_ms;
  for (double v : switch_samples) {
    switch_ms.Add(v);
  }

  report.AddSummary("probes_lost", "probes", loss_samples);
  report.AddSummary("switch_total_ms", "ms", switch_samples);
  report.AddRow("zero_loss_iterations",
                {{"count", losses.CountFor(0)}, {"total", losses.total()}});
  report.AddRow("one_loss_iterations",
                {{"count", losses.CountFor(1)}, {"total", losses.total()}});

  std::printf("Packets lost per iteration (histogram):\n");
  std::printf("%s\n", losses.Render("lost").c_str());
  std::printf("Address-switch total time: %s ms (mean (stddev))\n\n",
              switch_ms.Summary(2).c_str());

  std::printf("%-44s | %-16s | %s\n", "metric", "paper", "measured");
  std::printf("%.44s-+-%.16s-+-%.16s\n",
              "---------------------------------------------",
              "----------------", "----------------");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld / %lld",
                static_cast<long long>(losses.CountFor(0)),
                static_cast<long long>(losses.total()));
  std::printf("%-44s | %-16s | %s\n", "iterations with zero loss", "16 / 20", buf);
  std::snprintf(buf, sizeof(buf), "%lld / %lld",
                static_cast<long long>(losses.CountFor(1)),
                static_cast<long long>(losses.total()));
  std::printf("%-44s | %-16s | %s\n", "iterations with exactly one loss", "4 / 20", buf);
  std::printf("%-44s | %-16s | %s\n", "loss interval bound", "< 10 ms",
              losses.max_value() <= 1 ? "< 10 ms (max 1 probe lost)" : ">= 10 ms (!)");
  std::printf("\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
