# Empty compiler generated dependencies file for bench_route_opt.
# This may be replaced when dependencies are built.
