// Chaos recovery benchmark: time from fault-cleared to re-registered.
//
// Sweeps Gilbert-Elliott burst-loss rates against home-agent outage lengths
// (with daemon restart, so the MH must also resync identifications). For
// each cell the mobile host starts registered with a short binding lifetime;
// the outage wipes the binding mid-renewal; recovery time is measured from
// the instant the outage ends to the instant the MH is back in kRegistered
// with a matching HA binding.
//
// Output: a human-readable table plus one JSON line per cell
// ({"bench":"chaos_recovery",...}) for machine consumption.
#include <cstdio>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/topo/testbed.h"
#include "src/util/stats.h"

namespace msn {
namespace {

struct Cell {
  double loss;      // Stationary burst-loss fraction on the foreign subnet.
  Duration outage;  // HA outage length (daemon restart on recovery).
  int runs = 0;
  RunningStats recovery_ms;
  uint64_t retransmissions = 0;
  uint64_t resyncs = 0;
  int failures = 0;  // Runs that never got back to kRegistered.
};

// Gilbert-Elliott parameters with the requested stationary loss fraction:
// p_enter / (p_enter + p_exit) = loss, with a fixed burst-exit rate.
GilbertElliottParams BurstParams(double loss) {
  GilbertElliottParams ge;
  ge.p_exit_burst = 0.25;
  ge.p_enter_burst = loss > 0.0 ? ge.p_exit_burst * loss / (1.0 - loss) : 0.0;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  return ge;
}

void RunCell(Cell& cell, uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.realistic_delays = false;
  cfg.mh_lifetime_sec = 5;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  if (!tb.mobile->registered()) {
    ++cell.failures;
    return;
  }

  FaultInjector injector(tb.sim, *tb.net8);
  if (cell.loss > 0.0) {
    FaultProfile profile;
    profile.burst_loss = BurstParams(cell.loss);
    injector.SetProfile(profile);
  }

  // Outage begins at 4 s (just as the first renewal goes out) and restarts
  // the daemon, so recovery needs outage-end + retransmit + resync.
  const Duration outage_start = Seconds(4);
  FaultSchedule schedule;
  schedule.HaOutage(outage_start, *tb.home_agent, cell.outage,
                    /*restart_daemon=*/true);
  schedule.Arm(tb.sim);

  const Time fault_clear = tb.sim.Now() + outage_start + cell.outage;
  const uint64_t retransmissions_before = tb.mobile->counters().retransmissions;
  const uint64_t resyncs_before = tb.mobile->counters().resyncs;

  // Poll for recovery: registered again with a consistent binding.
  Time recovered_at = Time::Zero();
  PeriodicTask poll(tb.sim, Milliseconds(10), [&] {
    if (recovered_at != Time::Zero() || tb.sim.Now() < fault_clear) {
      return;
    }
    if (tb.mobile->registered() &&
        tb.home_agent->HasBinding(Testbed::HomeAddress())) {
      recovered_at = tb.sim.Now();
    }
  });
  poll.Start();
  tb.RunFor(outage_start + cell.outage + Seconds(60));

  if (recovered_at == Time::Zero()) {
    ++cell.failures;
    return;
  }
  ++cell.runs;
  cell.recovery_ms.Add((recovered_at - fault_clear).ToMillisF());
  cell.retransmissions +=
      tb.mobile->counters().retransmissions - retransmissions_before;
  cell.resyncs += tb.mobile->counters().resyncs - resyncs_before;
}

int Main() {
  const double kLossRates[] = {0.0, 0.1, 0.3};
  const Duration kOutages[] = {Milliseconds(500), Milliseconds(1500), Seconds(3)};
  const int kRunsPerCell = 5;

  std::vector<Cell> cells;
  for (double loss : kLossRates) {
    for (Duration outage : kOutages) {
      Cell cell;
      cell.loss = loss;
      cell.outage = outage;
      for (int run = 0; run < kRunsPerCell; ++run) {
        const uint64_t seed = 1000 + static_cast<uint64_t>(loss * 100) * 37 +
                              static_cast<uint64_t>(outage.millis()) * 7 +
                              static_cast<uint64_t>(run);
        RunCell(cell, seed);
      }
      cells.push_back(cell);
    }
  }

  std::printf("=======================================================================\n");
  std::printf("Chaos recovery: HA outage (daemon restart) + burst loss on the wired\n");
  std::printf("foreign subnet; time from fault-cleared to re-registered, %d runs/cell\n",
              kRunsPerCell);
  std::printf("=======================================================================\n\n");
  std::printf("loss   outage_ms  recovery ms mean (stddev)       max      rtx  resyncs  fail\n");
  std::printf("-----  ---------  -------------------------  --------  -------  -------  ----\n");
  for (const Cell& cell : cells) {
    std::printf("%4.0f%%  %9lld  %-25s  %8.1f  %7llu  %7llu  %4d\n",
                cell.loss * 100.0, static_cast<long long>(cell.outage.millis()),
                cell.recovery_ms.Summary(1).c_str(), cell.recovery_ms.max(),
                static_cast<unsigned long long>(cell.retransmissions),
                static_cast<unsigned long long>(cell.resyncs), cell.failures);
  }

  std::printf("\n");
  for (const Cell& cell : cells) {
    std::printf(
        "{\"bench\":\"chaos_recovery\",\"loss\":%.2f,\"outage_ms\":%lld,"
        "\"runs\":%d,\"failures\":%d,\"recovery_ms_mean\":%.3f,"
        "\"recovery_ms_max\":%.3f,\"retransmissions\":%llu,\"resyncs\":%llu}\n",
        cell.loss, static_cast<long long>(cell.outage.millis()), cell.runs,
        cell.failures, cell.recovery_ms.mean(), cell.recovery_ms.max(),
        static_cast<unsigned long long>(cell.retransmissions),
        static_cast<unsigned long long>(cell.resyncs));
  }

  std::printf(
      "\nShape check: recovery is bounded by the retransmit backoff cap (8 s)\n"
      "plus one identification-resync round trip; higher loss stretches the\n"
      "tail but never prevents recovery (fail must stay 0 across the sweep).\n\n");

  int total_failures = 0;
  for (const Cell& cell : cells) {
    total_failures += cell.failures;
  }
  return total_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
