// Unit tests for src/sim: time types, event queue, simulator, periodic tasks.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace msn {
namespace {

// --- Time & Duration -------------------------------------------------------------

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Milliseconds(5);
  const Duration b = Microseconds(250);
  EXPECT_EQ((a + b).nanos(), 5250000);
  EXPECT_EQ((a - b).nanos(), 4750000);
  EXPECT_EQ((a * int64_t{3}).millis(), 15);
  EXPECT_EQ((a / 5).millis(), 1);
  EXPECT_EQ((a * 0.5).micros(), 2500);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Seconds(2).ToSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(Milliseconds(7).ToMillisF(), 7.0);
  EXPECT_DOUBLE_EQ(MillisecondsF(7.39).ToMillisF(), 7.39);
  EXPECT_EQ(SecondsF(0.5).millis(), 500);
}

TEST(TimeTest, Comparisons) {
  EXPECT_LT(Milliseconds(1), Milliseconds(2));
  EXPECT_EQ(Time::Zero() + Seconds(1), Time::FromNanos(1000000000));
  EXPECT_EQ((Time::FromNanos(500) - Time::FromNanos(200)).nanos(), 300);
  EXPECT_LT(Time::Zero(), Time::Max());
}

TEST(TimeTest, ToStringAdaptiveUnits) {
  EXPECT_EQ(Nanoseconds(42).ToString(), "42ns");
  EXPECT_EQ(Microseconds(250).ToString(), "250.000us");
  EXPECT_EQ(MillisecondsF(7.39).ToString(), "7.390ms");
  EXPECT_EQ(Seconds(3).ToString(), "3.000s");
}

// --- EventQueue --------------------------------------------------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::FromNanos(30), [&] { order.push_back(3); });
  q.Schedule(Time::FromNanos(10), [&] { order.push_back(1); });
  q.Schedule(Time::FromNanos(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Time::FromNanos(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(Time::FromNanos(10), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel is a no-op.
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventId()));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(Time::FromNanos(5), [] {});
  q.Schedule(Time::FromNanos(50), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), Time::FromNanos(50));
  EXPECT_EQ(q.size(), 1u);
}

// --- Simulator ------------------------------------------------------------------------

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  Time fired_at;
  sim.Schedule(Milliseconds(10), [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, Time::Zero() + Milliseconds(10));
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(10));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Milliseconds(5), [&] {
    sim.Schedule(Duration::FromNanos(-100), [&] {
      EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(5));
    });
  });
  EXPECT_EQ(sim.Run(), 2u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.Schedule(Milliseconds(100), [&] { ++fired; });
  sim.RunUntil(Time::Zero() + Milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(50));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      sim.Schedule(Milliseconds(1), recurse);
    }
  };
  sim.Schedule(Milliseconds(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(10));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.HasPendingEvents());
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DeterministicAcrossSameSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 8; ++i) {
      values.push_back(sim.rng().NextU64());
    }
    return values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

// --- PeriodicTask ------------------------------------------------------------------------

TEST(PeriodicTaskTest, FiresAtInterval) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(10), [&] { ++fires; });
  task.Start();
  sim.RunUntil(Time::Zero() + Milliseconds(95));
  EXPECT_EQ(fires, 9);  // t = 10, 20, ..., 90.
  task.Stop();
  sim.RunFor(Milliseconds(100));
  EXPECT_EQ(fires, 9);
}

TEST(PeriodicTaskTest, StopInsideCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(5), [&] {
    if (++fires == 3) {
      task.Stop();
    }
  });
  task.Start();
  sim.RunFor(Seconds(1));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, DestructionCancelsPending) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task(sim, Milliseconds(5), [&] { ++fires; });
    task.Start();
    sim.RunFor(Milliseconds(12));
  }
  sim.RunFor(Seconds(1));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTaskTest, StartIsIdempotent) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(10), [&] { ++fires; });
  task.Start();
  task.Start();
  sim.RunUntil(Time::Zero() + Milliseconds(25));
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace msn
