// Scripted movement schedules against the Figure 5 testbed: a declarative
// timeline of attachment changes (at home / wired / wireless, hot or cold,
// address switches), executed in simulation with per-event outcomes and
// registration timelines recorded. This is the harness behind soak tests and
// multi-move roaming demos.
#ifndef MSN_SRC_TOPO_SCENARIO_H_
#define MSN_SRC_TOPO_SCENARIO_H_

#include <string>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/topo/testbed.h"

namespace msn {

class MovementScript {
 public:
  enum class Kind {
    kGoHome,          // Move the Ethernet to net 36.135 and AttachHome.
    kWiredCold,       // Cold switch onto net 36.8 (moves the cable).
    kWiredHot,        // Hot switch onto net 36.8 (device must be up).
    kWirelessCold,    // Cold switch onto net 36.134.
    kWirelessHot,     // Hot switch onto net 36.134 (radio must be up).
    kAddressSwitch,   // New care-of address on the current subnet.
  };

  struct Step {
    Duration at;             // Offset from Run() start.
    Kind kind;
    uint32_t host_index = 0; // Care-of host index where applicable.
  };

  struct Outcome {
    Step step;
    Time fired_at;
    bool completed = false;
    bool success = false;
    MobileHost::RegistrationTimeline timeline;
    std::string Description() const;
  };

  explicit MovementScript(Testbed& testbed) : tb_(testbed) {}

  MovementScript& Add(Duration at, Kind kind, uint32_t host_index = 50);
  // Convenience builders.
  MovementScript& GoHome(Duration at) { return Add(at, Kind::kGoHome); }
  MovementScript& WiredCold(Duration at, uint32_t idx = 50) {
    return Add(at, Kind::kWiredCold, idx);
  }
  MovementScript& WiredHot(Duration at, uint32_t idx = 50) {
    return Add(at, Kind::kWiredHot, idx);
  }
  MovementScript& WirelessCold(Duration at, uint32_t idx = 60) {
    return Add(at, Kind::kWirelessCold, idx);
  }
  MovementScript& WirelessHot(Duration at, uint32_t idx = 60) {
    return Add(at, Kind::kWirelessHot, idx);
  }
  MovementScript& AddressSwitch(Duration at, uint32_t idx) {
    return Add(at, Kind::kAddressSwitch, idx);
  }

  // Runs the movement script under a chaos schedule: `faults` is armed at
  // Run() start, so its offsets share the step timeline's origin. The
  // schedule must outlive the run.
  MovementScript& WithFaults(FaultSchedule& faults) {
    faults_ = &faults;
    return *this;
  }

  // Schedules all steps and runs the simulation until `until` past start.
  // Returns outcomes in step order.
  const std::vector<Outcome>& Run(Duration until);

  const std::vector<Outcome>& outcomes() const { return outcomes_; }
  int successes() const;
  int failures() const;

  static const char* KindName(Kind kind);

 private:
  void Execute(size_t index);

  Testbed& tb_;
  std::vector<Step> steps_;
  std::vector<Outcome> outcomes_;
  FaultSchedule* faults_ = nullptr;
};

}  // namespace msn

#endif  // MSN_SRC_TOPO_SCENARIO_H_
