#include "src/mobility/campus_map.h"

#include <algorithm>

namespace msn {

const char* CellMediumName(CellMedium medium) {
  switch (medium) {
    case CellMedium::kWired:
      return "wired";
    case CellMedium::kRadio:
      return "radio";
  }
  return "?";
}

Vec2 CampusMap::Clamp(Vec2 p) const {
  p.x = std::clamp(p.x, 0.0, width_m_);
  p.y = std::clamp(p.y, 0.0, height_m_);
  return p;
}

const BaseStation* CampusMap::Nearest(CellMedium medium, const Vec2& p,
                                      double* distance_m) const {
  const BaseStation* best = nullptr;
  double best_distance = 0.0;
  for (const BaseStation& station : stations_) {
    if (station.medium != medium) {
      continue;
    }
    const double d = Distance(station.position, p);
    if (best == nullptr || d < best_distance) {
      best = &station;
      best_distance = d;
    }
  }
  if (best != nullptr && distance_m != nullptr) {
    *distance_m = best_distance;
  }
  return best;
}

CampusMap CampusMap::Corridor(double width_m, double height_m, int cells,
                              double wired_range_m, double radio_range_m) {
  CampusMap map(width_m, height_m);
  if (cells <= 0) {
    return map;
  }
  const double y = height_m / 2.0;
  for (int k = 0; k < cells; ++k) {
    // Evenly spaced along the midline, half a slot in from each edge.
    const double x = width_m * (static_cast<double>(k) + 0.5) / static_cast<double>(cells);
    BaseStation station;
    station.medium = (k % 2 == 0) ? CellMedium::kWired : CellMedium::kRadio;
    station.name = std::string(CellMediumName(station.medium)) + std::to_string(k);
    station.position = {x, y};
    station.range_m = station.medium == CellMedium::kWired ? wired_range_m : radio_range_m;
    map.AddBaseStation(station);
  }
  return map;
}

}  // namespace msn
