// Standalone fuzz driver for the deterministic scenario fuzzer (DESIGN.md
// §13). Derives scenarios from sequential seeds, runs each against a fresh
// testbed with the invariant oracles watching, and on the first failure
// prints a byte-deterministic report, shrinks the scenario to a minimal
// reproducing event list, and writes the minimized scenario to a replay file.
//
//   fuzz_main --seed 1 --runs 100          # fuzz seeds 1..100
//   fuzz_main --time-budget 60             # stop after ~60s wall clock
//   fuzz_main --replay failure.scenario    # re-run a saved scenario
//
// Exit code: 0 = no violations, 1 = an oracle fired, 2 = usage/parse error.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/check/fuzzer.h"
#include "src/check/shrink.h"
#include "src/util/logging.h"

namespace {

struct Options {
  uint64_t seed = 1;
  int runs = 100;
  int time_budget_sec = 0;  // 0 = unlimited.
  int shrink_runs = 120;
  bool dump = false;  // Print the generated scenario for --seed and exit.
  std::string log_level;  // trace|debug|info|warn; empty = quiet.
  std::string replay_path;
  std::string out_path = "fuzz_failure.scenario";
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--runs N] [--time-budget SEC] [--shrink-runs N]\n"
               "          [--replay FILE] [--out FILE]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](long long* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = std::atoll(argv[++i]);
      return true;
    };
    long long v = 0;
    if (arg == "--seed" && next(&v)) {
      opts->seed = static_cast<uint64_t>(v);
    } else if (arg == "--runs" && next(&v)) {
      opts->runs = static_cast<int>(v);
    } else if (arg == "--time-budget" && next(&v)) {
      opts->time_budget_sec = static_cast<int>(v);
    } else if (arg == "--shrink-runs" && next(&v)) {
      opts->shrink_runs = static_cast<int>(v);
    } else if (arg == "--dump") {
      opts->dump = true;
    } else if (arg == "--log" && i + 1 < argc) {
      opts->log_level = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      opts->replay_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      opts->out_path = argv[++i];
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

// Prints the failure, shrinks, writes the replay artifact. Returns 1.
int HandleFailure(const msn::RunResult& result, const Options& opts) {
  std::printf("FAILURE seed=%" PRIu64 "\n%s", result.spec.seed, result.FailureReport().c_str());

  msn::ShrinkResult shrunk = msn::ShrinkScenario(result.spec, {}, opts.shrink_runs);
  std::printf("--- shrink ---\n%s", shrunk.Summary().c_str());
  std::printf("--- minimized scenario ---\n%s", shrunk.minimized.ToString().c_str());
  std::printf("--- minimized report ---\n%s", shrunk.final_report.ToString().c_str());

  std::ofstream out(opts.out_path);
  if (out) {
    out << "# minimized repro, oracle: " << shrunk.oracle << "\n"
        << shrunk.minimized.ToString();
    std::printf("replay file written to %s\n", opts.out_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", opts.out_path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    return 2;
  }

  if (!opts.log_level.empty()) {
    if (opts.log_level == "trace") {
      msn::SetLogLevel(msn::LogLevel::kTrace);
    } else if (opts.log_level == "debug") {
      msn::SetLogLevel(msn::LogLevel::kDebug);
    } else if (opts.log_level == "info") {
      msn::SetLogLevel(msn::LogLevel::kInfo);
    } else if (opts.log_level == "warn") {
      msn::SetLogLevel(msn::LogLevel::kWarning);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (opts.dump) {
    std::printf("%s", msn::GenerateScenario(opts.seed).ToString().c_str());
    return 0;
  }

  if (!opts.replay_path.empty()) {
    std::ifstream in(opts.replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opts.replay_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto spec = msn::ScenarioSpec::Parse(buffer.str(), &error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "parse error in %s: %s\n", opts.replay_path.c_str(), error.c_str());
      return 2;
    }
    msn::RunResult result = msn::RunScenario(*spec);
    std::printf("%s", result.FailureReport().c_str());
    return result.failed() ? 1 : 0;
  }

  const auto start = std::chrono::steady_clock::now();
  uint64_t total_checks = 0;
  int completed = 0;
  for (int i = 0; i < opts.runs; ++i) {
    if (opts.time_budget_sec > 0) {
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (elapsed >= std::chrono::seconds(opts.time_budget_sec)) {
        std::fprintf(stderr, "time budget exhausted after %d run(s)\n", completed);
        break;
      }
    }
    const uint64_t seed = opts.seed + static_cast<uint64_t>(i);
    msn::RunResult result = msn::FuzzOne(seed);
    ++completed;
    total_checks += result.report.checks;
    if (result.failed()) {
      return HandleFailure(result, opts);
    }
  }
  std::printf("fuzzed %d scenario(s) from seed %" PRIu64 ": %" PRIu64
              " oracle checks, 0 violations\n",
              completed, opts.seed, total_checks);
  return 0;
}
