// Minimal DHCP (RFC 1541 era, as the paper cites) for care-of address
// acquisition on foreign networks: DISCOVER / OFFER / REQUEST / ACK / NAK /
// RELEASE over UDP 67/68 broadcast.
//
// The server implements the reassignment-avoidance policy the paper leans on
// for its security argument (§5.1): released or expired addresses go to the
// back of a free queue, so "a well-written DHCP server would avoid reassigning
// the same IP address for as long as possible".
#ifndef MSN_SRC_DHCP_DHCP_H_
#define MSN_SRC_DHCP_DHCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/net/address.h"
#include "src/node/node.h"
#include "src/node/udp.h"

namespace msn {

inline constexpr uint16_t kDhcpServerPort = 67;
inline constexpr uint16_t kDhcpClientPort = 68;

enum class DhcpOp : uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 4,
  kNak = 5,
  kRelease = 6,
};

struct DhcpMessage {
  // op(1) + prefix(1) + xid(4) + mac(6) + yiaddr(4) + server(4) + gateway(4)
  // + lease(4).
  static constexpr size_t kSize = 28;

  DhcpOp op = DhcpOp::kDiscover;
  uint32_t xid = 0;          // Transaction id chosen by the client.
  MacAddress client_mac;
  Ipv4Address yiaddr;        // Offered / acknowledged address.
  Ipv4Address server;        // Server identifier.
  Ipv4Address gateway;       // Default router option.
  uint8_t prefix_len = 24;   // Subnet mask option.
  uint32_t lease_sec = 0;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<DhcpMessage> Parse(const std::vector<uint8_t>& bytes);
};

// Address lease handed to a client.
struct DhcpLease {
  Ipv4Address address;
  SubnetMask mask;
  Ipv4Address gateway;
  Ipv4Address server;
  Duration lease_time;
};

class DhcpServer {
 public:
  struct Config {
    NetDevice* device = nullptr;  // Interface serving the subnet.
    Subnet subnet;
    // Pool [first_host_index, first_host_index + pool_size).
    uint32_t first_host_index = 100;
    uint32_t pool_size = 50;
    Ipv4Address gateway;
    Duration lease_time = Seconds(600);
  };

  struct Counters {
    uint64_t discovers = 0;
    uint64_t offers = 0;
    uint64_t acks = 0;
    uint64_t naks = 0;
    uint64_t releases = 0;
    uint64_t pool_exhausted = 0;
  };

  DhcpServer(Node& node, Config config);
  ~DhcpServer();

  size_t active_leases() const { return leases_by_mac_.size(); }
  const Counters& counters() const { return counters_; }
  // For tests: the next address that would be offered to a new client.
  [[nodiscard]] std::optional<Ipv4Address> PeekNextFree() const;

 private:
  struct Lease {
    Ipv4Address address;
    Time expires;
  };

  void OnDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  [[nodiscard]] std::optional<Ipv4Address> AllocateFor(MacAddress mac);
  void ReleaseAddress(MacAddress mac);
  void ExpireLeases();
  void SendToClient(const DhcpMessage& msg);

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  std::map<MacAddress, Lease> leases_by_mac_;
  // Free addresses in least-recently-used order: reassignment avoidance.
  std::deque<Ipv4Address> free_list_;
  Counters counters_;
};

class DhcpClient {
 public:
  using AcquireCallback = std::function<void(std::optional<DhcpLease>)>;

  struct Config {
    Duration retry_interval = Seconds(2);
    int max_retries = 3;
    bool auto_renew = true;  // Re-REQUEST at half lease time (paper: the
                             // lease refresh is local-role traffic).
  };

  DhcpClient(Node& node, NetDevice* device, Config config);
  DhcpClient(Node& node, NetDevice* device);
  ~DhcpClient();

  // Runs DISCOVER -> OFFER -> REQUEST -> ACK. The device must be up; no IP
  // address is required (packets go out with source 0.0.0.0 to broadcast).
  void Acquire(AcquireCallback done);
  // Informs the server the address is no longer used.
  void Release();

  const std::optional<DhcpLease>& lease() const { return lease_; }
  uint64_t renewals() const { return renewals_; }

 private:
  enum class Phase { kIdle, kDiscovering, kRequesting };

  void SendDiscover();
  void SendRequest(const DhcpMessage& offer);
  void OnDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  void OnTimeout();
  void Finish(std::optional<DhcpLease> lease);
  void ScheduleRenewal();

  Node& node_;
  NetDevice* device_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  Phase phase_ = Phase::kIdle;
  uint32_t xid_ = 0;
  int retries_left_ = 0;
  EventId timeout_event_;
  EventId renewal_event_;
  AcquireCallback done_;
  std::optional<DhcpLease> lease_;
  std::optional<DhcpMessage> last_offer_;
  uint64_t renewals_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_DHCP_DHCP_H_
