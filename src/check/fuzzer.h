// One fuzz iteration: build the Figure 5 testbed from a ScenarioSpec, run the
// scripted movement, traffic, and fault timelines against it with the
// invariant oracles watching, and report what they found. Everything is
// derived from the spec's seed, so a run is exactly reproducible from its
// serialized scenario (or just the seed, for generated scenarios).
#ifndef MSN_SRC_CHECK_FUZZER_H_
#define MSN_SRC_CHECK_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/check/oracles.h"
#include "src/check/scenario_gen.h"

namespace msn {

struct RunOptions {
  // Invoked after the testbed boots and traffic starts, just before the
  // movement script runs. Tests use this to sabotage the system under test
  // (inject a bug) and prove the oracles catch it; the hook is deliberately
  // not part of the scenario, so shrinking preserves it across candidates.
  std::function<void(Testbed&)> instrument;
  // Invoked after the run finished (oracles done, testbed still alive).
  // The differential datapath tests use this to snapshot end-state metrics
  // before the testbed is torn down.
  std::function<void(Testbed&)> on_complete;
};

struct RunResult {
  ScenarioSpec spec;
  OracleReport report;
  // Deterministic context for failure reports.
  std::string movement_summary;  // One line per movement step outcome.
  std::string fault_trace;       // FaultSchedule::Trace().
  uint64_t probes_sent = 0;
  uint64_t probes_lost = 0;

  [[nodiscard]] bool failed() const { return report.failed(); }
  // Byte-deterministic failure report: verdicts, scenario text, timelines.
  // Two runs of the same spec produce identical bytes.
  [[nodiscard]] std::string FailureReport() const;
};

// Executes `spec` against a fresh testbed. The spec is taken as-is (callers
// that edit event lists should NormalizeSpec first).
[[nodiscard]] RunResult RunScenario(const ScenarioSpec& spec, const RunOptions& options = {});

// GenerateScenario + RunScenario.
[[nodiscard]] RunResult FuzzOne(uint64_t seed, const RunOptions& options = {});

}  // namespace msn

#endif  // MSN_SRC_CHECK_FUZZER_H_
