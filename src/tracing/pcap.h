// Packet capture: records frames crossing a device, renders a human-readable
// trace, and writes standard libpcap files (LINKTYPE_ETHERNET) that
// Wireshark/tcpdump open directly. Simulated timestamps map to pcap's
// seconds/microseconds fields.
#ifndef MSN_SRC_TRACING_PCAP_H_
#define MSN_SRC_TRACING_PCAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/link/medium.h"
#include "src/link/net_device.h"
#include "src/net/frame.h"
#include "src/sim/time.h"

namespace msn {

// One captured frame.
struct CapturedFrame {
  Time timestamp;
  std::string device_name;
  NetDevice::TapDirection direction;
  EthernetFrame frame;
  // Annotation appended to the summary, e.g. "dropped: fault". Empty for
  // ordinary delivered frames.
  std::string note;

  // tcpdump-flavoured one-liner, e.g.
  // "12.345678 eth0 Tx IP 36.8.0.20 -> 36.135.0.10 UDP 7 -> 49152 len 12".
  std::string Summary() const;
};

// Captures frames from any number of devices into memory.
class PacketCapture {
 public:
  PacketCapture() = default;
  ~PacketCapture();

  PacketCapture(const PacketCapture&) = delete;
  PacketCapture& operator=(const PacketCapture&) = delete;

  // Installs a tap on `device`. The device's previous tap (if any) is
  // replaced. Pass a Simulator so timestamps can be read.
  void Attach(Simulator& sim, NetDevice* device);
  // Records frames the medium fails to deliver, tagged with the drop reason
  // ("dropped: random-loss" / "dropped: fault" / "dropped: unmatched") so
  // chaos runs are debuggable from the trace alone. Replaces the medium's
  // previous drop tap.
  void AttachMediumDrops(Simulator& sim, BroadcastMedium* medium);
  void DetachAll();

  const std::vector<CapturedFrame>& frames() const { return frames_; }
  size_t size() const { return frames_.size(); }
  void Clear() { frames_.clear(); }

  // Multi-line text rendering of the whole capture.
  std::string Render() const;

  // Serializes the capture as a libpcap file image (magic 0xa1b2c3d4,
  // version 2.4, LINKTYPE_ETHERNET). Frames are written with a synthesized
  // 14-byte Ethernet header (dst, src, ethertype) followed by the payload.
  std::vector<uint8_t> ToPcapBytes() const;
  // Writes ToPcapBytes() to `path`. Returns false on I/O error.
  bool WritePcapFile(const std::string& path) const;

  // Parses a pcap image produced by ToPcapBytes (round-trip validation and
  // offline analysis). Returns the number of records, or -1 on bad format.
  static int CountPcapRecords(const std::vector<uint8_t>& bytes);

 private:
  std::vector<CapturedFrame> frames_;
  std::vector<NetDevice*> tapped_;
  std::vector<BroadcastMedium*> tapped_media_;
};

}  // namespace msn

#endif  // MSN_SRC_TRACING_PCAP_H_
