file(REMOVE_RECURSE
  "CMakeFiles/roaming_session.dir/roaming_session.cc.o"
  "CMakeFiles/roaming_session.dir/roaming_session.cc.o.d"
  "roaming_session"
  "roaming_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
