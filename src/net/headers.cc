#include "src/net/headers.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "src/net/checksum.h"
#include "src/util/assert.h"

namespace msn {

// Largest payload that still fits a 16-bit total_length / length field.
inline constexpr size_t kMaxIpv4Payload = 0xffff - Ipv4Header::kSize;
inline constexpr size_t kMaxUdpPayload = 0xffff - UdpDatagram::kHeaderSize;

const char* IpProtoName(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "ICMP";
    case IpProto::kIpIp:
      return "IPIP";
    case IpProto::kTcp:
      return "TCP";
    case IpProto::kUdp:
      return "UDP";
  }
  return "?";
}

void Ipv4Header::SerializeTo(uint8_t* out) const {
  out[0] = 0x45;  // Version 4, IHL 5 (20 bytes, no options).
  out[1] = tos;
  out[2] = static_cast<uint8_t>(total_length >> 8);
  out[3] = static_cast<uint8_t>(total_length);
  out[4] = static_cast<uint8_t>(identification >> 8);
  out[5] = static_cast<uint8_t>(identification);
  uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) {
    flags_frag |= 0x4000;
  }
  if (more_fragments) {
    flags_frag |= 0x2000;
  }
  out[6] = static_cast<uint8_t>(flags_frag >> 8);
  out[7] = static_cast<uint8_t>(flags_frag);
  out[8] = ttl;
  out[9] = static_cast<uint8_t>(protocol);
  out[10] = 0;  // Checksum placeholder.
  out[11] = 0;
  const uint32_t s = src.value();
  const uint32_t d = dst.value();
  out[12] = static_cast<uint8_t>(s >> 24);
  out[13] = static_cast<uint8_t>(s >> 16);
  out[14] = static_cast<uint8_t>(s >> 8);
  out[15] = static_cast<uint8_t>(s);
  out[16] = static_cast<uint8_t>(d >> 24);
  out[17] = static_cast<uint8_t>(d >> 16);
  out[18] = static_cast<uint8_t>(d >> 8);
  out[19] = static_cast<uint8_t>(d);
  const uint16_t checksum = ComputeInternetChecksum(out, kSize);
  out[10] = static_cast<uint8_t>(checksum >> 8);
  out[11] = static_cast<uint8_t>(checksum);
}

void Ipv4Header::Serialize(ByteWriter& w) const {
  const size_t start = w.size();
  w.WriteU8(0x45);  // Version 4, IHL 5 (20 bytes, no options).
  w.WriteU8(tos);
  w.WriteU16(total_length);
  w.WriteU16(identification);
  uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) {
    flags_frag |= 0x4000;
  }
  if (more_fragments) {
    flags_frag |= 0x2000;
  }
  w.WriteU16(flags_frag);
  w.WriteU8(ttl);
  w.WriteU8(static_cast<uint8_t>(protocol));
  w.WriteU16(0);  // Checksum placeholder.
  w.WriteU32(src.value());
  w.WriteU32(dst.value());
  const uint16_t checksum = ComputeInternetChecksum(w.data().data() + start, kSize);
  w.PatchU16(start + 10, checksum);
}

std::optional<Ipv4Header> Ipv4Header::Parse(ByteReader& r) {
  if (r.remaining() < kSize) {
    return std::nullopt;
  }
  Ipv4Header h;
  const uint8_t ver_ihl = r.ReadU8();
  if ((ver_ihl >> 4) != 4 || (ver_ihl & 0x0f) != 5) {
    return std::nullopt;
  }
  h.tos = r.ReadU8();
  h.total_length = r.ReadU16();
  h.identification = r.ReadU16();
  const uint16_t flags_frag = r.ReadU16();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = r.ReadU8();
  h.protocol = static_cast<IpProto>(r.ReadU8());
  const uint16_t wire_checksum = r.ReadU16();
  h.src = Ipv4Address(r.ReadU32());
  h.dst = Ipv4Address(r.ReadU32());
  if (!r.ok()) {
    return std::nullopt;
  }
  // Recompute the checksum from the parsed fields (zero checksum field).
  ByteWriter w(kSize);
  w.WriteU8(0x45);
  w.WriteU8(h.tos);
  w.WriteU16(h.total_length);
  w.WriteU16(h.identification);
  w.WriteU16(flags_frag);
  w.WriteU8(h.ttl);
  w.WriteU8(static_cast<uint8_t>(h.protocol));
  w.WriteU16(0);
  w.WriteU32(h.src.value());
  w.WriteU32(h.dst.value());
  if (ComputeInternetChecksum(w.data()) != wire_checksum) {
    return std::nullopt;
  }
  return h;
}

std::string Ipv4Header::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %s -> %s ttl=%u len=%u%s%s", IpProtoName(protocol),
                src.ToString().c_str(), dst.ToString().c_str(), ttl, total_length,
                IsFragment() ? " frag" : "", dont_fragment ? " DF" : "");
  return buf;
}

std::vector<uint8_t> BuildIpv4Datagram(const Ipv4Header& header,
                                       const std::vector<uint8_t>& payload) {
  Ipv4Header h = header;
  MSN_CHECK(payload.size() <= kMaxIpv4Payload)
      << "IPv4 payload of " << payload.size() << " bytes would truncate total_length";
  h.total_length = static_cast<uint16_t>(Ipv4Header::kSize + payload.size());
  ByteWriter w(h.total_length);
  h.Serialize(w);
  w.WriteBytes(payload);
  return w.Take();
}

Packet BuildIpv4Packet(Ipv4Header& header, std::span<const uint8_t> payload) {
  MSN_CHECK(payload.size() <= kMaxIpv4Payload)
      << "IPv4 payload of " << payload.size() << " bytes would truncate total_length";
  header.total_length = static_cast<uint16_t>(Ipv4Header::kSize + payload.size());
  Packet wire = Packet::Allocate(header.total_length);
  uint8_t* out = wire.MutableData();
  header.SerializeTo(out);
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(), out + Ipv4Header::kSize);
  }
  return wire;
}

std::optional<Ipv4Datagram> Ipv4Datagram::Parse(std::span<const uint8_t> bytes) {
  ByteReader r(bytes.data(), bytes.size());
  auto header = Ipv4Header::Parse(r);
  if (!header) {
    return std::nullopt;
  }
  if (header->total_length < Ipv4Header::kSize || header->total_length > bytes.size()) {
    return std::nullopt;
  }
  Ipv4Datagram dg;
  dg.header = *header;
  const auto payload = r.ReadSpan(header->total_length - Ipv4Header::kSize);
  if (!r.ok()) {
    return std::nullopt;
  }
  dg.payload.assign(payload.begin(), payload.end());
  return dg;
}

namespace {

// RFC 768 pseudo-header contribution for UDP checksums.
void AddUdpPseudoHeader(InternetChecksum& cs, Ipv4Address src_ip, Ipv4Address dst_ip,
                        uint16_t udp_length) {
  cs.AddU32(src_ip.value());
  cs.AddU32(dst_ip.value());
  cs.AddU16(static_cast<uint16_t>(IpProto::kUdp));
  cs.AddU16(udp_length);
}

}  // namespace

std::vector<uint8_t> UdpDatagram::Serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const {
  MSN_CHECK(payload.size() <= kMaxUdpPayload)
      << "UDP payload of " << payload.size() << " bytes would truncate the length field";
  const uint16_t length = static_cast<uint16_t>(kHeaderSize + payload.size());
  ByteWriter w(length);
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU16(length);
  w.WriteU16(0);  // Checksum placeholder.
  w.WriteBytes(payload);

  InternetChecksum cs;
  AddUdpPseudoHeader(cs, src_ip, dst_ip, length);
  cs.Add(w.data());
  uint16_t checksum = cs.Fold();
  if (checksum == 0) {
    checksum = 0xffff;  // RFC 768: transmitted zero means "no checksum".
  }
  w.PatchU16(6, checksum);
  return w.Take();
}

std::optional<UdpDatagram> UdpDatagram::Parse(std::span<const uint8_t> bytes,
                                              Ipv4Address src_ip, Ipv4Address dst_ip) {
  ByteReader r(bytes.data(), bytes.size());
  if (r.remaining() < kHeaderSize) {
    return std::nullopt;
  }
  UdpDatagram dg;
  dg.src_port = r.ReadU16();
  dg.dst_port = r.ReadU16();
  const uint16_t length = r.ReadU16();
  const uint16_t wire_checksum = r.ReadU16();
  if (length < kHeaderSize || length > bytes.size()) {
    return std::nullopt;
  }
  const auto payload = r.ReadSpan(length - kHeaderSize);
  if (!r.ok()) {
    return std::nullopt;
  }
  dg.payload.assign(payload.begin(), payload.end());
  if (wire_checksum != 0) {
    InternetChecksum cs;
    AddUdpPseudoHeader(cs, src_ip, dst_ip, length);
    cs.Add(bytes.data(), length);
    if (cs.Fold() != 0) {
      return std::nullopt;
    }
  }
  return dg;
}

std::vector<uint8_t> IcmpMessage::Serialize() const {
  ByteWriter w(kHeaderSize + payload.size());
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU8(code);
  w.WriteU16(0);  // Checksum placeholder.
  w.WriteU32(rest);
  w.WriteBytes(payload);
  w.PatchU16(2, ComputeInternetChecksum(w.data()));
  return w.Take();
}

std::optional<IcmpMessage> IcmpMessage::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    return std::nullopt;
  }
  if (!VerifyInternetChecksum(bytes.data(), bytes.size())) {
    return std::nullopt;
  }
  ByteReader r(bytes.data(), bytes.size());
  IcmpMessage msg;
  msg.type = static_cast<IcmpType>(r.ReadU8());
  msg.code = r.ReadU8();
  r.Skip(2);  // Checksum (already verified).
  msg.rest = r.ReadU32();
  const auto payload = r.RemainingSpan();
  msg.payload.assign(payload.begin(), payload.end());
  return msg;
}

std::vector<uint8_t> ArpMessage::Serialize() const {
  ByteWriter w(kSize);
  w.WriteU16(1);       // Hardware type: Ethernet.
  w.WriteU16(0x0800);  // Protocol type: IPv4.
  w.WriteU8(6);        // Hardware address length.
  w.WriteU8(4);        // Protocol address length.
  w.WriteU16(static_cast<uint16_t>(op));
  w.WriteBytes(sender_mac.bytes().data(), 6);
  w.WriteU32(sender_ip.value());
  w.WriteBytes(target_mac.bytes().data(), 6);
  w.WriteU32(target_ip.value());
  return w.Take();
}

std::optional<ArpMessage> ArpMessage::Parse(std::span<const uint8_t> bytes) {
  ByteReader r(bytes.data(), bytes.size());
  if (r.remaining() < kSize) {
    return std::nullopt;
  }
  if (r.ReadU16() != 1 || r.ReadU16() != 0x0800 || r.ReadU8() != 6 || r.ReadU8() != 4) {
    return std::nullopt;
  }
  ArpMessage msg;
  const uint16_t op = r.ReadU16();
  if (op != 1 && op != 2) {
    return std::nullopt;
  }
  msg.op = static_cast<ArpOp>(op);
  // Span views into the frame: the MAC bytes are copied into the fixed-size
  // address, never through an intermediate heap vector.
  const auto smac = r.ReadSpan(6);
  msg.sender_ip = Ipv4Address(r.ReadU32());
  const auto tmac = r.ReadSpan(6);
  msg.target_ip = Ipv4Address(r.ReadU32());
  if (!r.ok()) {
    return std::nullopt;
  }
  std::array<uint8_t, 6> m;
  std::copy(smac.begin(), smac.end(), m.begin());
  msg.sender_mac = MacAddress(m);
  std::copy(tmac.begin(), tmac.end(), m.begin());
  msg.target_mac = MacAddress(m);
  return msg;
}

std::string ArpMessage::ToString() const {
  char buf[160];
  if (op == ArpOp::kRequest) {
    std::snprintf(buf, sizeof(buf), "ARP who-has %s tell %s (%s)", target_ip.ToString().c_str(),
                  sender_ip.ToString().c_str(), sender_mac.ToString().c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "ARP %s is-at %s", sender_ip.ToString().c_str(),
                  sender_mac.ToString().c_str());
  }
  return buf;
}

}  // namespace msn
