// The Internet checksum (RFC 1071): 16-bit one's-complement sum of
// one's-complement 16-bit words.
#ifndef MSN_SRC_NET_CHECKSUM_H_
#define MSN_SRC_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msn {

// Accumulates the checksum over several byte ranges (e.g. pseudo-header then
// payload). Fold() produces the final complemented 16-bit checksum.
class InternetChecksum {
 public:
  void Add(const uint8_t* data, size_t len);
  void Add(const std::vector<uint8_t>& data) { Add(data.data(), data.size()); }
  void AddU16(uint16_t v);
  void AddU32(uint32_t v);

  // Final checksum value (already complemented, ready to write to the wire).
  [[nodiscard]] uint16_t Fold() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;  // True if an odd byte is pending pairing.
  uint8_t pending_ = 0;
};

// One-shot checksum over a single buffer.
[[nodiscard]] uint16_t ComputeInternetChecksum(const uint8_t* data, size_t len);
[[nodiscard]] uint16_t ComputeInternetChecksum(const std::vector<uint8_t>& data);

// Verifies a buffer whose checksum field is included: the folded sum over the
// whole buffer must be zero.
[[nodiscard]] bool VerifyInternetChecksum(const uint8_t* data, size_t len);

// RFC 1624 incremental update: the checksum of a buffer after one 16-bit
// word changes from `old_word` to `new_word`, without re-summing the buffer.
// This is how a router updates the header checksum for a TTL decrement;
// equivalence with a full recompute is pinned down in tests/net_test.cc.
[[nodiscard]] uint16_t IncrementalChecksumUpdate(uint16_t old_checksum, uint16_t old_word,
                                                 uint16_t new_word);

}  // namespace msn

#endif  // MSN_SRC_NET_CHECKSUM_H_
