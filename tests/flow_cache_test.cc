// Flow-cache unit tests: hit/miss behavior, centralized per-packet counting,
// and — most importantly — the invalidation contract. Every mutation a cached
// route decision can depend on must orphan the cache; the regression test at
// the bottom proves the contract is load-bearing by deliberately breaking one
// hook and watching a stale decision get served.
#include <gtest/gtest.h>

#include "src/net/datapath_tuning.h"
#include "src/node/flow_cache.h"
#include "src/node/node.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

// Restores the global datapath tuning after each test so knob changes cannot
// leak across test cases.
class TuningGuard {
 public:
  TuningGuard() : saved_(GlobalDatapathTuning()) {}
  ~TuningGuard() { GlobalDatapathTuning() = saved_; }

 private:
  DatapathTuning saved_;
};

class FlowCacheStackFixture : public ::testing::Test {
 protected:
  FlowCacheStackFixture() : sim_(7), node_(sim_, "fc") {
    dev_ = node_.AddEthernet("eth0", nullptr);
    dev2_ = node_.AddEthernet("eth1", nullptr);
    dev_->ForceUp();
    dev2_->ForceUp();
    node_.ConfigureInterface(dev_, "10.0.0.1/24");
    node_.ConfigureInterface(dev2_, "10.0.1.1/24");
    node_.AddDefaultRoute(Ipv4Address(10, 0, 0, 254), dev_);
  }

  FlowCache& cache() { return node_.stack().flow_cache(); }

  Simulator sim_;
  TuningGuard guard_;
  Node node_;
  EthernetDevice* dev_;
  EthernetDevice* dev2_;
};

TEST_F(FlowCacheStackFixture, ForwardingLookupHitsCacheSecondTime) {
  const RouteQuery q{Ipv4Address(36, 8, 0, 9), Ipv4Address(10, 0, 0, 7),
                     /*forwarding=*/true};
  const uint64_t misses_before = cache().misses();
  auto first = node_.stack().RouteLookup(q);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cache().misses(), misses_before + 1);
  const uint64_t hits_before = cache().hits();
  auto second = node_.stack().RouteLookup(q);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(cache().hits(), hits_before + 1);
  EXPECT_EQ(second->device, first->device);
  EXPECT_EQ(second->src, first->src);
  EXPECT_EQ(second->next_hop, first->next_hop);
}

TEST_F(FlowCacheStackFixture, NegativeDecisionIsCached) {
  node_.stack().routes().RemoveWhere(
      [](const RouteEntry& e) { return e.dest == Subnet::Default(); });
  const RouteQuery q{Ipv4Address(99, 1, 2, 3), Ipv4Address::Any(), /*forwarding=*/true};
  EXPECT_FALSE(node_.stack().RouteLookup(q).has_value());
  const uint64_t hits_before = cache().hits();
  EXPECT_FALSE(node_.stack().RouteLookup(q).has_value());
  EXPECT_EQ(cache().hits(), hits_before + 1) << "no-route answers must cache too";
}

TEST_F(FlowCacheStackFixture, RouteAddInvalidatesCachedDecision) {
  const Ipv4Address dst(36, 8, 0, 9);
  const RouteQuery q{dst, Ipv4Address::Any(), /*forwarding=*/true};
  auto coarse = node_.stack().RouteLookup(q);
  ASSERT_TRUE(coarse.has_value());
  EXPECT_EQ(coarse->device, dev_);

  const uint64_t invalidations_before = cache().invalidations();
  // A better (host) route out the other device — e.g. an accepted ICMP
  // redirect installs exactly this kind of entry.
  node_.stack().routes().Add(
      RouteEntry{Subnet(dst, SubnetMask(32)), Ipv4Address(10, 0, 1, 254), dev2_,
                 Ipv4Address::Any(), 0});
  EXPECT_GT(cache().invalidations(), invalidations_before);

  auto fine = node_.stack().RouteLookup(q);
  ASSERT_TRUE(fine.has_value());
  EXPECT_EQ(fine->device, dev2_) << "stale pre-redirect decision served from cache";
}

TEST_F(FlowCacheStackFixture, RouteRemoveAndClearInvalidate) {
  const uint64_t gen0 = cache().generation();
  node_.stack().routes().Remove(Subnet::Default());
  EXPECT_GT(cache().generation(), gen0);
  const uint64_t gen1 = cache().generation();
  // Removing nothing must not thrash the cache.
  node_.stack().routes().Remove(Subnet(Ipv4Address(1, 2, 3, 4), SubnetMask(32)));
  EXPECT_EQ(cache().generation(), gen1);
  node_.stack().routes().Clear();
  EXPECT_GT(cache().generation(), gen1);
}

TEST_F(FlowCacheStackFixture, InterfaceRemovalInvalidates) {
  const uint64_t gen0 = cache().generation();
  node_.stack().RemoveInterface(dev2_);
  EXPECT_GT(cache().generation(), gen0);
}

TEST_F(FlowCacheStackFixture, BoundSourceLocalQueryBypassesCache) {
  const RouteQuery bound{Ipv4Address(36, 8, 0, 9), Ipv4Address(10, 0, 0, 1),
                         /*forwarding=*/false};
  const uint64_t hits = cache().hits();
  const uint64_t misses = cache().misses();
  auto decision = node_.stack().RouteLookup(bound);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(cache().hits(), hits);
  EXPECT_EQ(cache().misses(), misses)
      << "local-role queries with a bound source must not touch the cache";
}

TEST_F(FlowCacheStackFixture, CachedHitSubstitutesBoundSource) {
  const Ipv4Address dst(36, 8, 0, 9);
  // Prime the cache under the canonical Any source.
  (void)node_.stack().RouteLookup({dst, Ipv4Address::Any(), /*forwarding=*/true});
  const RouteQuery q{dst, Ipv4Address(10, 0, 0, 77), /*forwarding=*/true};
  auto cached = node_.stack().RouteLookup(q);
  auto uncached = node_.stack().RouteLookupUncached(q);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(uncached.has_value());
  EXPECT_EQ(cached->src, uncached->src);
  EXPECT_EQ(cached->device, uncached->device);
  EXPECT_EQ(cached->next_hop, uncached->next_hop);
}

TEST_F(FlowCacheStackFixture, OverrideInstallAndClearInvalidate) {
  const uint64_t gen0 = cache().generation();
  node_.stack().SetRouteLookupOverride(
      [](const RouteQuery&) -> std::optional<RouteDecision> { return std::nullopt; });
  EXPECT_GT(cache().generation(), gen0);
  const uint64_t gen1 = cache().generation();
  node_.stack().ClearRouteLookupOverride();
  EXPECT_GT(cache().generation(), gen1);
}

TEST_F(FlowCacheStackFixture, CentralCountingIsIdenticalForCachedAndFreshAnswers) {
  MetricsRegistry registry;
  CounterRef policy_counter = registry.GetCounterRef("check.fc_policy");
  uint64_t policy_hits = 0;
  node_.stack().SetRouteLookupOverride(
      [&, this](const RouteQuery& query) -> std::optional<RouteDecision> {
        RouteDecision d;
        d.device = dev_;
        d.src = Ipv4Address(10, 0, 0, 1);
        d.next_hop = query.dst;
        d.policy_counter = &policy_counter;
        d.policy_hits = &policy_hits;
        return d;
      });
  const RouteQuery q{Ipv4Address(36, 8, 0, 9), Ipv4Address::Any(), /*forwarding=*/false};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(node_.stack().RouteLookup(q).has_value());
  }
  RouteQuery advisory = q;
  advisory.advisory = true;
  ASSERT_TRUE(node_.stack().RouteLookup(advisory).has_value());
  ASSERT_TRUE(node_.stack().RouteLookupUncached(q).has_value());
  EXPECT_EQ(static_cast<uint64_t>(policy_counter), 3u)
      << "cached hits must count exactly like fresh lookups; advisory and "
         "shadow lookups must not count";
  EXPECT_EQ(policy_hits, 3u);
  EXPECT_GT(cache().hits(), 0u) << "the counted lookups must include cache hits";
}

TEST_F(FlowCacheStackFixture, CapacityOverflowClearsDeterministically) {
  GlobalDatapathTuning().flow_cache_capacity = 2;
  Node small(sim_, "small");
  EthernetDevice* d = small.AddEthernet("eth0", nullptr);
  d->ForceUp();
  small.ConfigureInterface(d, "10.2.0.1/24");
  small.AddDefaultRoute(Ipv4Address(10, 2, 0, 254), d);
  FlowCache& fc = small.stack().flow_cache();
  for (int i = 1; i <= 5; ++i) {
    auto decision = small.stack().RouteLookup(
        {Ipv4Address(36, 8, 0, static_cast<uint8_t>(i)), Ipv4Address::Any(),
         /*forwarding=*/true});
    ASSERT_TRUE(decision.has_value());
  }
  EXPECT_LE(fc.entry_count(), 2u);
  // Answers stay correct across the clears.
  auto decision = small.stack().RouteLookup(
      {Ipv4Address(36, 8, 0, 1), Ipv4Address::Any(), /*forwarding=*/true});
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->device, d);
}

TEST_F(FlowCacheStackFixture, TuningOffBypassesCacheEntirely) {
  GlobalDatapathTuning().flow_cache = false;
  const RouteQuery q{Ipv4Address(36, 8, 0, 9), Ipv4Address::Any(), /*forwarding=*/true};
  const uint64_t hits = cache().hits();
  const uint64_t misses = cache().misses();
  ASSERT_TRUE(node_.stack().RouteLookup(q).has_value());
  ASSERT_TRUE(node_.stack().RouteLookup(q).has_value());
  EXPECT_EQ(cache().hits(), hits);
  EXPECT_EQ(cache().misses(), misses);
}

// The regression that locks the invalidation contract in place: disconnect
// one hook (the routing-table change listener — rewired to a no-op, exactly
// the bug a refactor could introduce) and the cache demonstrably serves a
// stale decision. If this test ever starts passing with the hook intact,
// the cache stopped being consulted; if invalidation regresses, the
// EXPECT_NE fires in real scenarios long before anyone reads a pcap.
TEST_F(FlowCacheStackFixture, StaleEntryServedWhenInvalidationHookBroken) {
  const Ipv4Address dst(36, 8, 0, 9);
  const RouteQuery q{dst, Ipv4Address::Any(), /*forwarding=*/true};
  ASSERT_TRUE(node_.stack().RouteLookup(q).has_value());  // Prime: default via dev_.

  // Break the hook, then install the better host route.
  node_.stack().routes().SetChangeListener(nullptr);
  node_.stack().routes().Add(
      RouteEntry{Subnet(dst, SubnetMask(32)), Ipv4Address(10, 0, 1, 254), dev2_,
                 Ipv4Address::Any(), 0});

  auto cached = node_.stack().RouteLookup(q);
  auto truth = node_.stack().RouteLookupUncached(q);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(truth.has_value());
  EXPECT_NE(cached->device, truth->device)
      << "broken hook should have produced a stale cached decision — the "
         "cache is no longer load-bearing";
  EXPECT_EQ(cached->device, dev_);
  EXPECT_EQ(truth->device, dev2_);

  // Manual invalidation restores coherence.
  node_.stack().InvalidateFlowCache();
  auto repaired = node_.stack().RouteLookup(q);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->device, truth->device);
}

// --- Mobility-driven invalidation (testbed) ---------------------------------

class FlowCacheMobilityFixture : public ::testing::Test {
 protected:
  void Build() {
    TestbedConfig cfg;
    cfg.seed = 6;
    cfg.realistic_delays = false;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
  }

  uint64_t MhGeneration() { return tb_->mh->stack().flow_cache().generation(); }
  // Default testbed collocates the home agent on the router.
  uint64_t HaGeneration() { return tb_->router->stack().flow_cache().generation(); }

  TuningGuard guard_;
  std::unique_ptr<Testbed> tb_;
};

TEST_F(FlowCacheMobilityFixture, PolicyTableChurnInvalidates) {
  Build();
  const Subnet corr(Ipv4Address(36, 70, 0, 10), SubnetMask(32));
  uint64_t gen = MhGeneration();
  tb_->mobile->policy_table().Set(corr, MobilePolicy::kTriangle, /*verified=*/true);
  EXPECT_GT(MhGeneration(), gen);
  gen = MhGeneration();
  tb_->mobile->policy_table().RecordFallback(Ipv4Address(36, 70, 0, 11));
  EXPECT_GT(MhGeneration(), gen);
  gen = MhGeneration();
  EXPECT_TRUE(tb_->mobile->policy_table().Remove(corr));
  EXPECT_GT(MhGeneration(), gen);
  gen = MhGeneration();
  tb_->mobile->policy_table().Clear();
  EXPECT_GT(MhGeneration(), gen);
  // Clearing an already-empty table must not thrash the cache.
  gen = MhGeneration();
  tb_->mobile->policy_table().Clear();
  EXPECT_EQ(MhGeneration(), gen);
}

TEST_F(FlowCacheMobilityFixture, HandoffInvalidatesMobileAndHomeAgentCaches) {
  Build();
  const uint64_t mh_gen = MhGeneration();
  const uint64_t ha_gen = HaGeneration();
  tb_->StartMobileOnWired(50);
  ASSERT_TRUE(tb_->mobile->registered());
  EXPECT_GT(MhGeneration(), mh_gen)
      << "foreign attach must orphan the mobile host's cached decisions";
  EXPECT_GT(HaGeneration(), ha_gen)
      << "binding install must orphan the home agent's cached decisions";

  // Return home: deregistration removes the binding; both caches flush again.
  const uint64_t mh_gen2 = MhGeneration();
  const uint64_t ha_gen2 = HaGeneration();
  tb_->MoveMhEthernetTo(tb_->net135.get());
  bool done = false;
  tb_->mobile->AttachHome([&](bool ok) { done = ok; });
  tb_->RunFor(Seconds(8));
  ASSERT_TRUE(done);
  EXPECT_GT(MhGeneration(), mh_gen2);
  EXPECT_GT(HaGeneration(), ha_gen2)
      << "binding removal must orphan the home agent's cached decisions";
}

TEST_F(FlowCacheMobilityFixture, TunnelTeardownInvalidates) {
  Build();
  tb_->StartMobileOnWired(50);
  ASSERT_TRUE(tb_->mobile->registered());
  const uint64_t gen = MhGeneration();
  // Destroying the mobility machinery clears the route override — the
  // moment the tunnel dies, every cached VIF decision must die with it.
  tb_->mobile.reset();
  EXPECT_GT(MhGeneration(), gen);
}

}  // namespace
}  // namespace msn
