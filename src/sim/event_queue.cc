#include "src/sim/event_queue.h"

#include <utility>

namespace msn {

EventId EventQueue::Schedule(Time when, Callback cb) {
  const uint64_t seq = next_seq_++;
  heap_.push(HeapItem{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  ++live_count_;
  return EventId(seq);
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  auto it = callbacks_.find(id.seq_);
  if (it == callbacks_.end()) {
    return false;
  }
  // The heap entry stays behind as a tombstone and is skipped lazily.
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().seq) == callbacks_.end()) {
    heap_.pop();
  }
}

Time EventQueue::NextTime() const {
  DropCancelledHead();
  if (heap_.empty()) {
    return Time::Max();
  }
  return heap_.top().when;
}

EventQueue::Entry EventQueue::PopNext() {
  DropCancelledHead();
  const HeapItem item = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(item.seq);
  Entry entry{item.when, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return entry;
}

}  // namespace msn
