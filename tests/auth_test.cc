// Registration authentication (paper §5.1: "These registrations should be
// authenticated with S-key, Kerberos, PGP, or some other similar strong
// authentication mechanism to protect against denial-of-service attacks in
// the form of malicious fraudulent registrations").
#include <gtest/gtest.h>

#include "src/mip/messages.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/util/siphash.h"

namespace msn {
namespace {

// --- SipHash primitive --------------------------------------------------------

TEST(SipHashTest, ReferenceVectors) {
  // From the SipHash reference implementation: key bytes 00..0f.
  const SipHashKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
  EXPECT_EQ(SipHash24(key, nullptr, 0), 0x726fdb47dd0e0e31ull);
  uint8_t msg[15];
  for (int i = 0; i < 15; ++i) {
    msg[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(SipHash24(key, msg, 15), 0xa129ca6149be45e5ull);
}

TEST(SipHashTest, KeyAndMessageSensitivity) {
  const SipHashKey k1{1, 2}, k2{1, 3};
  std::vector<uint8_t> msg = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NE(SipHash24(k1, msg), SipHash24(k2, msg));
  auto msg2 = msg;
  msg2[4] ^= 1;
  EXPECT_NE(SipHash24(k1, msg), SipHash24(k1, msg2));
  // Deterministic.
  EXPECT_EQ(SipHash24(k1, msg), SipHash24(k1, msg));
}

// --- Message-level authenticator -------------------------------------------------

TEST(AuthMessageTest, RequestAuthenticatorRoundTrip) {
  const MipAuthKey key{0xdead, 0xbeef};
  RegistrationRequest req;
  req.home_address = Ipv4Address(36, 135, 0, 10);
  req.care_of_address = Ipv4Address(36, 8, 0, 50);
  req.identification = 7;
  req.Authenticate(key);
  ASSERT_TRUE(req.authenticator.has_value());

  auto parsed = RegistrationRequest::Parse(req.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->authenticator.has_value());
  EXPECT_TRUE(parsed->VerifyAuthenticator(key));
  EXPECT_FALSE(parsed->VerifyAuthenticator(MipAuthKey{1, 2}));
}

TEST(AuthMessageTest, TamperedFieldFailsVerification) {
  const MipAuthKey key{11, 22};
  RegistrationRequest req;
  req.home_address = Ipv4Address(36, 135, 0, 10);
  req.care_of_address = Ipv4Address(36, 8, 0, 50);
  req.Authenticate(key);
  // The attack the paper worries about: redirect someone's traffic by
  // rewriting the care-of address in a captured registration.
  req.care_of_address = Ipv4Address(66, 6, 6, 6);
  EXPECT_FALSE(req.VerifyAuthenticator(key));
}

TEST(AuthMessageTest, UnauthenticatedMessageStillParses) {
  RegistrationRequest req;
  req.home_address = Ipv4Address(36, 135, 0, 10);
  auto parsed = RegistrationRequest::Parse(req.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->authenticator.has_value());
  EXPECT_FALSE(parsed->VerifyAuthenticator(MipAuthKey{1, 2}));
}

TEST(AuthMessageTest, ReplyAuthenticatorRoundTrip) {
  const MipAuthKey key{5, 6};
  RegistrationReply reply;
  reply.code = MipReplyCode::kAccepted;
  reply.identification = 9;
  reply.Authenticate(key);
  auto parsed = RegistrationReply::Parse(reply.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->VerifyAuthenticator(key));
}

// --- End-to-end ----------------------------------------------------------------------

class AuthFixture : public ::testing::Test {
 protected:
  void Build(bool give_mh_key, bool require_auth) {
    TestbedConfig cfg;
    cfg.seed = 99;
    cfg.realistic_delays = false;
    tb_ = std::make_unique<Testbed>(cfg);

    if (require_auth) {
      // Rebuild-free: the config knob is on the HA; recreate it.
      HomeAgent::Config hc = tb_->home_agent->config();
      hc.require_authentication = true;
      tb_->home_agent.reset();
      tb_->home_agent = std::make_unique<HomeAgent>(*tb_->router, hc);
    }
    tb_->home_agent->SetAuthKey(Testbed::HomeAddress(), key_);

    if (give_mh_key) {
      MobileHost::Config mc = tb_->mobile->config();
      mc.auth_key = key_;
      tb_->mobile.reset();
      tb_->mobile = std::make_unique<MobileHost>(*tb_->mh, mc);
    }
    tb_->StartMobileAtHome();
  }

  const MipAuthKey key_{0x1234567890abcdefull, 0xfedcba0987654321ull};
  std::unique_ptr<Testbed> tb_;
};

TEST_F(AuthFixture, AuthenticatedRegistrationAccepted) {
  Build(/*give_mh_key=*/true, /*require_auth=*/true);
  tb_->StartMobileOnWired(50);
  EXPECT_TRUE(tb_->mobile->registered());
  EXPECT_TRUE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
}

TEST_F(AuthFixture, UnauthenticatedRegistrationDenied) {
  Build(/*give_mh_key=*/false, /*require_auth=*/true);
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();
  bool result = true;
  tb_->mobile->AttachForeign(tb_->WiredAttachment(50), [&](bool ok) { result = ok; });
  tb_->RunFor(Seconds(10));
  EXPECT_FALSE(result);
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_GE(tb_->home_agent->counters().registrations_denied, 1u);
  EXPECT_GE(tb_->mobile->counters().registrations_denied, 1u);
}

TEST_F(AuthFixture, ForgedRegistrationCannotStealTraffic) {
  // The paper's denial-of-service scenario: an attacker on the visited
  // network forges a registration naming its own address as the care-of.
  Build(/*give_mh_key=*/true, /*require_auth=*/true);
  tb_->StartMobileOnWired(50);
  ASSERT_EQ(tb_->home_agent->GetBinding(Testbed::HomeAddress())->care_of,
            Ipv4Address(36, 8, 0, 50));

  Node attacker(tb_->sim, "attacker");
  EthernetDevice* adev = attacker.AddEthernet("eth0", tb_->net8.get());
  adev->ForceUp();
  attacker.ConfigureInterface(adev, "36.8.0.66/16");
  attacker.AddDefaultRoute(Testbed::RouterOn8(), adev);
  UdpSocket socket(attacker.stack());
  ASSERT_TRUE(socket.Bind(0));

  RegistrationRequest forged;
  forged.flags = kMipFlagDecapsulateSelf;
  forged.lifetime_sec = 300;
  forged.home_address = Testbed::HomeAddress();
  forged.home_agent = tb_->home_agent_address();
  forged.care_of_address = Ipv4Address(36, 8, 0, 66);
  forged.identification = 1u << 20;  // Plausibly fresh.
  // No key -> garbage authenticator.
  forged.authenticator = 0x4141414141414141ull;
  socket.SendTo(tb_->home_agent_address(), kMipRegistrationPort, forged.Serialize());
  tb_->RunFor(Seconds(2));

  // The binding still points at the legitimate mobile host.
  EXPECT_EQ(tb_->home_agent->GetBinding(Testbed::HomeAddress())->care_of,
            Ipv4Address(36, 8, 0, 50));
  EXPECT_GE(tb_->home_agent->counters().registrations_denied, 1u);
}

TEST_F(AuthFixture, KeyPresenceAloneForcesVerification) {
  // Even with require_authentication off, a host with a configured key must
  // authenticate (opportunistic enforcement).
  Build(/*give_mh_key=*/false, /*require_auth=*/false);
  tb_->MoveMhEthernetTo(tb_->net8.get());
  tb_->ForceEthUp();
  bool result = true;
  tb_->mobile->AttachForeign(tb_->WiredAttachment(50), [&](bool ok) { result = ok; });
  tb_->RunFor(Seconds(10));
  EXPECT_FALSE(result);
}

TEST_F(AuthFixture, MobileHostIgnoresForgedReply) {
  Build(/*give_mh_key=*/true, /*require_auth=*/true);
  // Sanity: full exchange works; the MH accepted only a verified reply.
  tb_->StartMobileOnWired(50);
  ASSERT_TRUE(tb_->mobile->registered());

  // Craft an unauthenticated denial matching no outstanding id: ignored.
  RegistrationReply forged;
  forged.code = MipReplyCode::kDeniedUnknownHomeAddress;
  forged.home_address = Testbed::HomeAddress();
  forged.identification = 424242;
  UdpSocket socket(tb_->ch->stack());
  ASSERT_TRUE(socket.Bind(0));
  socket.SendTo(Ipv4Address(36, 8, 0, 50), kMipRegistrationPort, forged.Serialize());
  tb_->RunFor(Seconds(2));
  EXPECT_TRUE(tb_->mobile->registered());
}

}  // namespace
}  // namespace msn
