
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/arp.cc" "src/node/CMakeFiles/msn_node.dir/arp.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/arp.cc.o.d"
  "/root/repo/src/node/icmp.cc" "src/node/CMakeFiles/msn_node.dir/icmp.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/icmp.cc.o.d"
  "/root/repo/src/node/ip_stack.cc" "src/node/CMakeFiles/msn_node.dir/ip_stack.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/ip_stack.cc.o.d"
  "/root/repo/src/node/node.cc" "src/node/CMakeFiles/msn_node.dir/node.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/node.cc.o.d"
  "/root/repo/src/node/reassembly.cc" "src/node/CMakeFiles/msn_node.dir/reassembly.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/reassembly.cc.o.d"
  "/root/repo/src/node/routing_table.cc" "src/node/CMakeFiles/msn_node.dir/routing_table.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/routing_table.cc.o.d"
  "/root/repo/src/node/udp.cc" "src/node/CMakeFiles/msn_node.dir/udp.cc.o" "gcc" "src/node/CMakeFiles/msn_node.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/msn_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
