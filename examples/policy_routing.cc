// Policy routing: the Mobile Policy Table at work (paper §3.2-3.3).
//
// A visiting mobile host talks to a correspondent beyond the local router,
// trying each transmission policy. With the visited network's transit filter
// enabled, the triangle route dies; the MH probes, detects the ICMP
// administratively-prohibited error, caches a fallback in its policy table,
// and traffic continues through the home-agent tunnel.
#include <cstdio>

#include "src/mip/ipip.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"
#include "src/util/stats.h"

using namespace msn;

namespace {

double MeasureRtt(Testbed& tb, const char* label) {
  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(50)});
  sender.Start();
  tb.RunFor(Seconds(2));
  sender.Stop();
  tb.RunFor(Seconds(1));
  RunningStats rtt;
  for (Duration d : sender.RttsInWindow(Time::Zero(), Time::Max())) {
    rtt.Add(d.ToMillisF());
  }
  std::printf("  %-34s : %llu/%llu echoes, RTT %s ms\n", label,
              static_cast<unsigned long long>(sender.received()),
              static_cast<unsigned long long>(sender.sent()),
              sender.received() > 0 ? rtt.Summary(2).c_str() : "-");
  return rtt.mean();
}

}  // namespace

int main() {
  std::printf("=== Mobile Policy Table & routing optimizations ===\n\n");
  std::printf("Scenario: MH visits net 36.8; correspondent lives beyond the campus\n"
              "router; the visited network filters transit traffic (as some\n"
              "security-conscious sites did — paper S3.2).\n\n");

  TestbedConfig cfg;
  cfg.external_ch = true;
  cfg.transit_filter = true;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  const Ipv4Address ch = tb.ch_address();

  std::printf("1. Basic protocol (default policy = tunnel through home agent):\n");
  MeasureRtt(tb, "tunnel-home");

  std::printf("\n2. Try the triangle-route optimization (home address as source,\n"
              "   straight out the local interface):\n");
  tb.mobile->policy_table().Set(Subnet(ch, SubnetMask(32)), MobilePolicy::kTriangle);
  MeasureRtt(tb, "triangle (filter drops it)");

  std::printf("\n3. The right way: probe first. The probe fails with ICMP\n"
              "   administratively-prohibited and the MPT caches a fallback:\n");
  tb.mobile->ProbeTriangleRoute(ch, [&](bool ok) {
    std::printf("  probe result: %s\n", ok ? "triangle verified" : "filtered -> fall back");
  });
  tb.RunFor(Seconds(5));
  std::printf("\n  Mobile Policy Table now:\n");
  std::printf("%s\n", tb.mobile->policy_table().ToString().c_str());
  MeasureRtt(tb, "after fallback (tunnel again)");

  std::printf("\n4. encap-direct: for decapsulation-capable correspondents, tunnel\n"
              "   straight to them with the local care-of source — filter-proof\n"
              "   and no home-agent detour:\n");
  IpIpTunnelEndpoint ch_decap(tb.ch->stack());  // CH runs a decap-capable kernel.
  tb.mobile->policy_table().Set(Subnet(ch, SubnetMask(32)), MobilePolicy::kEncapDirect);
  MeasureRtt(tb, "encap-direct (smart CH)");

  std::printf("\n5. Per-packet decisions, by the numbers:\n");
  const auto& c = tb.mobile->counters();
  std::printf("  tunneled out: %llu, triangle out: %llu, encap-direct out: %llu,\n"
              "  probes: %llu, fallbacks cached: %llu\n",
              static_cast<unsigned long long>(c.packets_tunneled_out),
              static_cast<unsigned long long>(c.packets_triangle_out),
              static_cast<unsigned long long>(c.packets_encap_direct_out),
              static_cast<unsigned long long>(c.probes_sent),
              static_cast<unsigned long long>(c.probe_fallbacks));

  std::printf("\nAll of this happened on the mobile host alone — the visited network\n"
              "provided nothing but an IP address and a (hostile) router.\n");
  return 0;
}
