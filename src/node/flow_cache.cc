#include "src/node/flow_cache.h"

#include <utility>

namespace msn {

FlowCache::FlowCache(size_t capacity, MetricsRegistry& metrics,
                     const std::string& node_name)
    : capacity_(capacity == 0 ? 1 : capacity) {
  const std::string prefix = "flow_cache." + node_name + ".";
  hits_counter_ = metrics.GetCounterRef(prefix + "hits");
  misses_counter_ = metrics.GetCounterRef(prefix + "misses");
  invalidations_counter_ = metrics.GetCounterRef(prefix + "invalidations");
}

FlowCache::~FlowCache() = default;

const FlowCache::Value* FlowCache::Find(Ipv4Address dst, bool forwarding) {
  auto it = map_.find(Key(dst, forwarding));
  if (it == map_.end()) {
    ++misses_;
    ++misses_counter_;
    return nullptr;
  }
  if (it->second.generation != generation_) {
    // Orphaned by an invalidation since it was stored; reclaim in place.
    map_.erase(it);
    ++misses_;
    ++misses_counter_;
    return nullptr;
  }
  ++hits_;
  ++hits_counter_;
  return &it->second.value;
}

void FlowCache::Insert(Ipv4Address dst, bool forwarding, Value value) {
  if (map_.size() >= capacity_) {
    // Deterministic eviction: drop everything rather than pick a victim by
    // bucket order.
    map_.clear();
  }
  map_[Key(dst, forwarding)] = Entry{std::move(value), generation_};
}

void FlowCache::Invalidate() {
  ++generation_;
  ++invalidations_;
  ++invalidations_counter_;
}

}  // namespace msn
