// Unit tests for src/sim: time types, event queue, simulator, periodic tasks.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"
#include "src/util/rng.h"

namespace msn {
namespace {

// --- Time & Duration -------------------------------------------------------------

TEST(TimeTest, DurationArithmetic) {
  const Duration a = Milliseconds(5);
  const Duration b = Microseconds(250);
  EXPECT_EQ((a + b).nanos(), 5250000);
  EXPECT_EQ((a - b).nanos(), 4750000);
  EXPECT_EQ((a * int64_t{3}).millis(), 15);
  EXPECT_EQ((a / 5).millis(), 1);
  EXPECT_EQ((a * 0.5).micros(), 2500);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Seconds(2).ToSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(Milliseconds(7).ToMillisF(), 7.0);
  EXPECT_DOUBLE_EQ(MillisecondsF(7.39).ToMillisF(), 7.39);
  EXPECT_EQ(SecondsF(0.5).millis(), 500);
}

TEST(TimeTest, Comparisons) {
  EXPECT_LT(Milliseconds(1), Milliseconds(2));
  EXPECT_EQ(Time::Zero() + Seconds(1), Time::FromNanos(1000000000));
  EXPECT_EQ((Time::FromNanos(500) - Time::FromNanos(200)).nanos(), 300);
  EXPECT_LT(Time::Zero(), Time::Max());
}

TEST(TimeTest, ToStringAdaptiveUnits) {
  EXPECT_EQ(Nanoseconds(42).ToString(), "42ns");
  EXPECT_EQ(Microseconds(250).ToString(), "250.000us");
  EXPECT_EQ(MillisecondsF(7.39).ToString(), "7.390ms");
  EXPECT_EQ(Seconds(3).ToString(), "3.000s");
}

// --- EventQueue --------------------------------------------------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::FromNanos(30), [&] { order.push_back(3); });
  q.Schedule(Time::FromNanos(10), [&] { order.push_back(1); });
  q.Schedule(Time::FromNanos(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Time::FromNanos(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(Time::FromNanos(10), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel is a no-op.
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventId()));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(Time::FromNanos(5), [] {});
  q.Schedule(Time::FromNanos(50), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), Time::FromNanos(50));
  EXPECT_EQ(q.size(), 1u);
}

// --- EventQueue immediate lane -----------------------------------------------------

TEST(EventQueueTest, ImmediateLaneCatchesSameTimeSchedules) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::FromNanos(10), [&] {
    order.push_back(0);
    // Scheduled while t=10 is draining: must land in the FIFO lane, and must
    // fire after every event that predates the drain.
    q.Schedule(Time::FromNanos(10), [&] { order.push_back(2); });
  });
  q.Schedule(Time::FromNanos(10), [&] { order.push_back(1); });
  const uint64_t heap_before = q.lane_stats().heap_scheduled;
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.lane_stats().lane_scheduled, 1u);
  EXPECT_EQ(q.lane_stats().heap_scheduled, heap_before);
}

TEST(EventQueueTest, LaneClosesWhenTimeAdvances) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::FromNanos(10), [&] {
    order.push_back(1);
    q.Schedule(Time::FromNanos(20), [&] { order.push_back(2); });  // Heap: later time.
  });
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.lane_stats().lane_scheduled, 0u);
  EXPECT_EQ(q.lane_stats().heap_scheduled, 2u);
}

TEST(EventQueueTest, CancelInLaneEvent) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Time::FromNanos(10), [&] {
    order.push_back(0);
    EventId doomed = q.Schedule(Time::FromNanos(10), [&] { order.push_back(99); });
    q.Schedule(Time::FromNanos(10), [&] { order.push_back(1); });
    EXPECT_TRUE(q.Cancel(doomed));
    EXPECT_FALSE(q.Cancel(doomed));
  });
  while (!q.empty()) {
    q.PopNext().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueTest, NextTimeSeesLiveLaneEvent) {
  EventQueue q;
  q.Schedule(Time::FromNanos(10), [&] {
    EventId doomed = q.Schedule(Time::FromNanos(10), [] {});
    q.Cancel(doomed);
    // A cancelled lane head must not hide the queue's true next time.
    EXPECT_EQ(q.NextTime(), Time::Max());
    q.Schedule(Time::FromNanos(10), [] {});
    EXPECT_EQ(q.NextTime(), Time::FromNanos(10));
  });
  while (!q.empty()) {
    q.PopNext().cb();
  }
}

// Burst-stress: drive the lane+heap queue and a naive reference queue with an
// identical random schedule/cancel/burst workload and require identical fire
// orders. Callbacks re-schedule at the draining timestamp (lane traffic, like
// a device draining a burst) and at future times (heap traffic), and cancel
// random pending events — the full mix the datapath's burst dequeue produces.
TEST(EventQueueTest, BurstStressMatchesReferenceQueue) {
  for (const uint64_t seed : {1ull, 7ull, 1996ull}) {
    // Reference: (when, seq) pairs popped by scanning for the minimum.
    struct RefEvent {
      int64_t when;
      uint64_t seq;
      int tag;
      bool live = true;
    };
    std::vector<RefEvent> ref;
    uint64_t ref_seq = 0;

    EventQueue q;
    Rng rng(seed);
    std::vector<std::pair<EventId, size_t>> cancellable;  // (id, ref index)
    std::vector<int> fired;
    std::vector<int> ref_fired;
    int64_t now = 0;
    int next_tag = 0;

    std::function<void(int64_t, int)> fire = [&](int64_t when, int tag) {
      fired.push_back(tag);
      // A third of callbacks spawn same-time work (bursts), a third spawn
      // future work, a sixth cancel something pending. The spawn budget keeps
      // the branching cascade finite.
      const double roll = rng.UniformDouble();
      if (next_tag >= 2000) {
        return;
      }
      if (roll < 0.33) {
        const int spawn = static_cast<int>(rng.UniformInt(uint64_t{1}, uint64_t{3}));
        for (int i = 0; i < spawn; ++i) {
          const int tag2 = next_tag++;
          q.Schedule(Time::FromNanos(when), [&fire, when, tag2] { fire(when, tag2); });
          ref.push_back(RefEvent{when, ref_seq++, tag2});
        }
      } else if (roll < 0.66) {
        const int64_t later = when + static_cast<int64_t>(rng.UniformInt(uint64_t{1}, uint64_t{50}));
        const int tag2 = next_tag++;
        q.Schedule(Time::FromNanos(later), [&fire, later, tag2] { fire(later, tag2); });
        ref.push_back(RefEvent{later, ref_seq++, tag2});
      } else if (roll < 0.83 && !cancellable.empty()) {
        const size_t pick = rng.UniformInt(0ull, cancellable.size() - 1);
        auto [id, ref_idx] = cancellable[pick];
        cancellable.erase(cancellable.begin() + static_cast<ptrdiff_t>(pick));
        if (q.Cancel(id)) {
          ref[ref_idx].live = false;
        }
      }
    };

    for (int i = 0; i < 40; ++i) {
      const int64_t when = static_cast<int64_t>(rng.UniformInt(uint64_t{0}, uint64_t{100}));
      const int tag = next_tag++;
      EventId id =
          q.Schedule(Time::FromNanos(when), [&fire, when, tag] { fire(when, tag); });
      ref.push_back(RefEvent{when, ref_seq++, tag});
      cancellable.emplace_back(id, ref.size() - 1);
    }

    int guard = 0;
    while (!q.empty() && guard++ < 10000) {
      EventQueue::Entry e = q.PopNext();
      now = e.when.nanos();
      e.cb();
    }
    ASSERT_LT(guard, 10000) << "runaway event cascade, seed " << seed;
    (void)now;

    // Drain the reference the slow, obviously-correct way.
    while (true) {
      size_t best = ref.size();
      for (size_t i = 0; i < ref.size(); ++i) {
        if (!ref[i].live) {
          continue;
        }
        if (best == ref.size() || ref[i].when < ref[best].when ||
            (ref[i].when == ref[best].when && ref[i].seq < ref[best].seq)) {
          best = i;
        }
      }
      if (best == ref.size()) {
        break;
      }
      ref[best].live = false;
      ref_fired.push_back(ref[best].tag);
    }

    EXPECT_EQ(fired, ref_fired) << "fire order diverged from reference, seed " << seed;
    EXPECT_GT(q.lane_stats().lane_scheduled, 0u)
        << "stress never exercised the lane, seed " << seed;
  }
}

// --- Simulator ------------------------------------------------------------------------

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  Time fired_at;
  sim.Schedule(Milliseconds(10), [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, Time::Zero() + Milliseconds(10));
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(10));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Milliseconds(5), [&] {
    sim.Schedule(Duration::FromNanos(-100), [&] {
      EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(5));
    });
  });
  EXPECT_EQ(sim.Run(), 2u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.Schedule(Milliseconds(100), [&] { ++fired; });
  sim.RunUntil(Time::Zero() + Milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(50));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      sim.Schedule(Milliseconds(1), recurse);
    }
  };
  sim.Schedule(Milliseconds(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), Time::Zero() + Milliseconds(10));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.HasPendingEvents());
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DeterministicAcrossSameSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 8; ++i) {
      values.push_back(sim.rng().NextU64());
    }
    return values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

// --- PeriodicTask ------------------------------------------------------------------------

TEST(PeriodicTaskTest, FiresAtInterval) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(10), [&] { ++fires; });
  task.Start();
  sim.RunUntil(Time::Zero() + Milliseconds(95));
  EXPECT_EQ(fires, 9);  // t = 10, 20, ..., 90.
  task.Stop();
  sim.RunFor(Milliseconds(100));
  EXPECT_EQ(fires, 9);
}

TEST(PeriodicTaskTest, StopInsideCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(5), [&] {
    if (++fires == 3) {
      task.Stop();
    }
  });
  task.Start();
  sim.RunFor(Seconds(1));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, DestructionCancelsPending) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task(sim, Milliseconds(5), [&] { ++fires; });
    task.Start();
    sim.RunFor(Milliseconds(12));
  }
  sim.RunFor(Seconds(1));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTaskTest, StartIsIdempotent) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, Milliseconds(10), [&] { ++fires; });
  task.Start();
  task.Start();
  sim.RunUntil(Time::Zero() + Milliseconds(25));
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace msn
