// Link-layer device model.
//
// A NetDevice is the simulation analogue of a Linux network interface: it has
// a MAC address, an up/down state, a transmit queue drained at the link
// bandwidth, and a bring-up latency modelling driver/hardware initialization.
// The bring-up latency is what dominates the paper's *cold switch* cost
// (Figure 6), so it is a first-class, configurable property here.
#ifndef MSN_SRC_LINK_NET_DEVICE_H_
#define MSN_SRC_LINK_NET_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/net/frame.h"
#include "src/sim/simulator.h"

namespace msn {

class Gauge;

class NetDevice {
 public:
  // Invoked when a frame arrives addressed to this device (or broadcast).
  // The frame is passed as an rvalue: the device hands over its (refcounted)
  // ownership so the stack can consume the payload without a copy. Handlers
  // that only observe may still bind it as `const EthernetFrame&`.
  using FrameHandler = std::function<void(NetDevice&, EthernetFrame&&)>;

  enum class State {
    kDown,
    kBringingUp,
    kUp,
  };

  struct Counters {
    uint64_t tx_frames = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_bytes = 0;
    uint64_t dropped_down = 0;   // Transmit attempted while interface down.
    uint64_t dropped_queue = 0;  // Transmit queue overflow.
    uint64_t dropped_rx_down = 0;  // Frame arrived while interface down.
    // Burst dequeue accounting (zero-serialization-delay devices only):
    // drain events and the frames they carried. tx_burst_frames <= tx_frames;
    // equality means every frame left in a burst.
    uint64_t tx_bursts = 0;
    uint64_t tx_burst_frames = 0;
  };

  NetDevice(Simulator& sim, std::string name, MacAddress mac);
  virtual ~NetDevice() = default;

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  const std::string& name() const { return name_; }
  MacAddress mac() const { return mac_; }
  State state() const { return state_; }
  bool IsUp() const { return state_ == State::kUp; }
  const Counters& counters() const { return counters_; }
  Simulator& sim() { return sim_; }

  // Begins bring-up; transitions to kUp after bring_up_time (with jitter) and
  // then invokes `done`. Calling BringUp on an already-up device invokes
  // `done` immediately. This is the expensive step of a cold switch.
  void BringUp(std::function<void()> done = nullptr);
  // Immediate down transition; pending transmissions are discarded.
  void TakeDown();
  // Immediate up transition with no bring-up delay (initial topology setup).
  void ForceUp() { state_ = State::kUp; }

  Duration bring_up_time() const { return bring_up_time_; }
  void set_bring_up_time(Duration d) { bring_up_time_ = d; }
  // Fractional jitter applied to bring-up time (stddev = mean * jitter).
  void set_bring_up_jitter(double j) { bring_up_jitter_ = j; }

  // Queues a frame for transmission. Returns false (and counts a drop) if the
  // device is down or the queue is full.
  virtual bool Transmit(const EthernetFrame& frame);

  // Nominal link bandwidth used for serialization delay.
  virtual uint64_t bandwidth_bps() const = 0;

  // Largest IP datagram this link carries (Ethernet: 1500; the STRIP radio
  // uses a smaller frame). Oversized datagrams are fragmented or, with DF
  // set, rejected with ICMP fragmentation-needed.
  size_t mtu() const { return mtu_; }
  void set_mtu(size_t mtu) { mtu_ = mtu; }

  // Delivery from the medium. Drops silently if the device is down. Takes
  // ownership of the frame (a refcounted handle, so callers keeping their own
  // copy just bump the count) and hands it to the receive handler.
  void DeliverFrame(EthernetFrame&& frame);

  void SetReceiveHandler(FrameHandler handler) { receive_handler_ = std::move(handler); }

  // Monitoring tap: sees every frame this device transmits or receives
  // (after the up/down check), like a packet capture on a real interface.
  enum class TapDirection { kTransmit, kReceive };
  using TapCallback = std::function<void(const EthernetFrame& frame, TapDirection dir)>;
  void SetTap(TapCallback tap) { tap_ = std::move(tap); }
  void ClearTap() { tap_ = nullptr; }

  size_t queue_capacity() const { return queue_capacity_; }
  void set_queue_capacity(size_t n) { queue_capacity_ = n; }
  size_t queue_depth() const { return queue_.size(); }

  // Mirrors the live transmit-queue depth into a registry-owned gauge
  // (telemetry: "dev.<node>.<dev>.queue_depth"). The gauge must outlive the
  // device; Node wires this up when it owns a metrics registry.
  void BindQueueDepthGauge(Gauge* gauge);

 protected:
  // Hands a fully serialized frame to the underlying medium. Called once the
  // serialization delay has elapsed.
  virtual void SendToMedium(const EthernetFrame& frame) = 0;

  Duration SerializationDelay(size_t wire_bytes) const;

  Simulator& sim_;

 private:
  void StartNextTransmission();

  std::string name_;
  MacAddress mac_;
  size_t mtu_ = 1500;
  State state_ = State::kDown;
  Duration bring_up_time_ = Milliseconds(500);
  double bring_up_jitter_ = 0.1;
  uint64_t bring_up_generation_ = 0;  // Invalidates in-flight bring-ups on TakeDown.

  std::deque<EthernetFrame> queue_;
  size_t queue_capacity_ = 128;
  bool transmitting_ = false;

  FrameHandler receive_handler_;
  TapCallback tap_;
  Counters counters_;
  Gauge* queue_depth_gauge_ = nullptr;

  void UpdateQueueDepthGauge();

 protected:
  // Lets subclasses that bypass the queue (VirtualInterface) feed the tap.
  void NotifyTap(const EthernetFrame& frame, TapDirection dir) {
    if (tap_) {
      tap_(frame, dir);
    }
  }
};

}  // namespace msn

#endif  // MSN_SRC_LINK_NET_DEVICE_H_
