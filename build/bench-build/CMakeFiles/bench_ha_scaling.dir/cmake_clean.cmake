file(REMOVE_RECURSE
  "../bench/bench_ha_scaling"
  "../bench/bench_ha_scaling.pdb"
  "CMakeFiles/bench_ha_scaling.dir/bench_ha_scaling.cc.o"
  "CMakeFiles/bench_ha_scaling.dir/bench_ha_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ha_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
