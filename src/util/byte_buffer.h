// Bounds-checked big-endian (network byte order) byte serialization helpers.
//
// All multi-byte integers written by ByteWriter and read by ByteReader are in
// network byte order, so buffers produced here are valid wire images.
#ifndef MSN_SRC_UTIL_BYTE_BUFFER_H_
#define MSN_SRC_UTIL_BYTE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace msn {

// Appends values to a growable byte vector in network byte order.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteBytes(const uint8_t* data, size_t len);
  void WriteBytes(const std::vector<uint8_t>& data);
  void WriteString(const std::string& s);  // Raw bytes, no terminator.
  // Writes `count` zero bytes (padding).
  void WriteZeros(size_t count);

  // Overwrites a previously written big-endian u16 at `offset`. Used to patch
  // checksums and length fields after the payload is known.
  void PatchU16(size_t offset, uint16_t v);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Reads values from a byte span in network byte order. All reads are bounds
// checked; after any failed read, `ok()` returns false and subsequent reads
// return zero values. Callers must check ok() before trusting results.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : data_(data.data()), len_(data.size()) {}
  explicit ByteReader(std::span<const uint8_t> data)
      : data_(data.data()), len_(data.size()) {}

  [[nodiscard]] uint8_t ReadU8();
  [[nodiscard]] uint16_t ReadU16();
  [[nodiscard]] uint32_t ReadU32();
  [[nodiscard]] uint64_t ReadU64();
  // Reads exactly `len` bytes; returns an empty vector (and clears ok) if not
  // enough bytes remain.
  [[nodiscard]] std::vector<uint8_t> ReadBytes(size_t len);
  // Reads all remaining bytes (possibly zero). Never fails.
  [[nodiscard]] std::vector<uint8_t> ReadRemaining();
  // Non-owning variants of ReadBytes/ReadRemaining: a view into the source
  // buffer, valid only while it outlives the reader. The payload-sized reads
  // on the datapath use these so parsing never copies the bytes it frames.
  [[nodiscard]] std::span<const uint8_t> ReadSpan(size_t len);
  [[nodiscard]] std::span<const uint8_t> RemainingSpan();
  void Skip(size_t len);

  [[nodiscard]] bool ok() const { return ok_; }
  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }

 private:
  bool Ensure(size_t n);

  // ByteReader is a transient stack-scoped parsing view; callers guarantee
  // the source buffer outlives it (class comment above).
  const uint8_t* data_;  // msn-analyze: allow(lifetime/packet-span)
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Renders bytes as lowercase hex separated by spaces, e.g. "de ad be ef".
[[nodiscard]] std::string HexDump(const uint8_t* data, size_t len);
[[nodiscard]] std::string HexDump(const std::vector<uint8_t>& data);

}  // namespace msn

#endif  // MSN_SRC_UTIL_BYTE_BUFFER_H_
