file(REMOVE_RECURSE
  "../bench/bench_device_switch"
  "../bench/bench_device_switch.pdb"
  "CMakeFiles/bench_device_switch.dir/bench_device_switch.cc.o"
  "CMakeFiles/bench_device_switch.dir/bench_device_switch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
