file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_test.dir/fragmentation_test.cc.o"
  "CMakeFiles/fragmentation_test.dir/fragmentation_test.cc.o.d"
  "fragmentation_test"
  "fragmentation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
