// Experiment E3 (paper Figure 7): registration time-line.
//
// The mobile host registers a new IP address on the same Ethernet subnet;
// we time every step of the switch, averaged over 10 runs with standard
// deviations in parentheses — exactly the figure's presentation:
//
//   pre-registration (configure interface + change route table)
//   request -> reply latency            (paper: 4.79 ms)
//     of which home-agent processing    (paper: 1.48 ms)
//   post-registration processing
//   total                               (paper: 7.39 ms)
#include <cstdio>
#include <vector>

#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/util/stats.h"

namespace msn {
namespace {

int Main() {
  const int kRuns = BenchIterations(10, 3);
  const uint64_t kSeed = 42;

  std::printf("==============================================================\n");
  std::printf("E3 / Figure 7: registration time-line (same-subnet switch)\n");
  std::printf("%d runs; mean (stddev) per step, milliseconds\n", kRuns);
  std::printf("==============================================================\n\n");

  BenchReport report("registration",
                     "E3 / Figure 7: registration time-line, same-subnet switch");
  report.set_seed(kSeed);
  report.AddParam("runs", kRuns);

  TestbedConfig cfg;
  cfg.seed = kSeed;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  std::vector<double> pre_v, iface_v, route_v, reqrep_v, post_v, total_v;
  int completed = 0;
  for (int i = 0; i < kRuns; ++i) {
    bool ok = false;
    tb.mobile->SwitchCareOfAddress(Ipv4Address(36, 8, 0, static_cast<uint8_t>(60 + (i % 2))),
                                   [&](bool r) { ok = r; });
    tb.RunFor(Seconds(2));
    if (!ok) {
      std::printf("  run %d: registration failed\n", i + 1);
      continue;
    }
    const auto& tl = tb.mobile->last_timeline();
    iface_v.push_back((tl.interface_configured - tl.start).ToMillisF());
    route_v.push_back((tl.route_changed - tl.interface_configured).ToMillisF());
    pre_v.push_back(tl.PreRegistration().ToMillisF());
    reqrep_v.push_back(tl.RequestReply().ToMillisF());
    post_v.push_back(tl.PostRegistration().ToMillisF());
    total_v.push_back(tl.Total().ToMillisF());
    ++completed;
  }
  RunningStats pre_ms, iface_ms, route_ms, reqrep_ms, post_ms, total_ms;
  for (double v : pre_v) pre_ms.Add(v);
  for (double v : iface_v) iface_ms.Add(v);
  for (double v : route_v) route_ms.Add(v);
  for (double v : reqrep_v) reqrep_ms.Add(v);
  for (double v : post_v) post_ms.Add(v);
  for (double v : total_v) total_ms.Add(v);
  // HA-side processing, measured at the home agent itself.
  const RunningStats& ha = tb.home_agent->processing_stats_ms();

  std::printf("step                                    measured ms     paper ms\n");
  std::printf("--------------------------------------  --------------  --------\n");
  std::printf("configure interface                     %-14s  -\n", iface_ms.Summary(2).c_str());
  std::printf("change route table                      %-14s  -\n", route_ms.Summary(2).c_str());
  std::printf("pre-registration (above two)            %-14s  ~1.8\n",
              pre_ms.Summary(2).c_str());
  std::printf("request -> reply latency                %-14s  4.79\n",
              reqrep_ms.Summary(2).c_str());
  std::printf("  home agent processing (at the HA)     %-14s  1.48\n", ha.Summary(2).c_str());
  std::printf("post-registration                       %-14s  ~0.8\n",
              post_ms.Summary(2).c_str());
  std::printf("total (start to end)                    %-14s  7.39\n",
              total_ms.Summary(2).c_str());
  std::printf("\ncompleted runs: %d / %d\n", completed, kRuns);
  std::printf("\nShape check: software overhead is milliseconds-scale; the home agent\n"
              "can therefore serve a large number of mobile hosts (see bench_ha_scaling).\n\n");

  report.AddSummary("configure_interface_ms", "ms", iface_v);
  report.AddSummary("change_route_table_ms", "ms", route_v);
  report.AddSummary("pre_registration_ms", "ms", pre_v);
  report.AddSummary("request_reply_ms", "ms", reqrep_v);
  report.AddSummary("ha_processing_ms", "ms", ha);
  report.AddSummary("post_registration_ms", "ms", post_v);
  report.AddSummary("total_ms", "ms", total_v);
  report.AddRow("completed_runs", {{"completed", completed}, {"runs", kRuns}});
  report.AddMetrics(tb.metrics);

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
