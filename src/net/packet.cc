#include "src/net/packet.h"

#include <cstdio>
#include <cstring>

#include "src/util/assert.h"
#include "src/util/buffer_pool.h"

namespace msn {

Packet::Stats Packet::stats_;

// One block of wire bytes. The vector is returned to the pool (capacity
// intact) when the last Packet referencing it goes away.
struct Packet::Storage {
  explicit Storage(std::vector<uint8_t> b, BufferPool* p = nullptr)
      : bytes(std::move(b)), pool(p) {}
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;
  ~Storage() {
    if (pool != nullptr) {
      pool->Release(std::move(bytes));
    }
  }

  std::vector<uint8_t> bytes;
  BufferPool* pool = nullptr;
};

Packet::Packet(std::vector<uint8_t> bytes) {
  len_ = bytes.size();
  storage_ = std::make_shared<Storage>(std::move(bytes));
  ++stats_.allocations;
}

Packet::Packet(std::initializer_list<uint8_t> bytes)
    : Packet(std::vector<uint8_t>(bytes)) {}

Packet Packet::Allocate(size_t size, size_t headroom) {
  BufferPool& pool = DefaultBufferPool();
  auto storage = std::make_shared<Storage>(pool.Acquire(headroom + size), &pool);
  ++stats_.allocations;
  return Packet(std::move(storage), headroom, size);
}

Packet Packet::Copy(std::span<const uint8_t> bytes, size_t headroom) {
  Packet p = Allocate(bytes.size(), headroom);
  if (!bytes.empty()) {
    std::memcpy(p.storage_->bytes.data() + p.offset_, bytes.data(), bytes.size());
  }
  ++stats_.copies;
  return p;
}

const uint8_t* Packet::Base() const {
  return storage_ ? storage_->bytes.data() : nullptr;
}

Packet Packet::Slice(size_t pos, size_t count) const {
  MSN_ASSERT(pos <= len_ && count <= len_ - pos)
      << "slice [" << pos << ", +" << count << ") out of packet of " << len_ << " bytes";
  return Packet(storage_, offset_ + pos, count);
}

std::vector<uint8_t> Packet::ToVector() const {
  return std::vector<uint8_t>(begin(), end());
}

uint8_t* Packet::MutableData() {
  if (storage_ == nullptr) {
    return nullptr;
  }
  if (storage_.use_count() > 1) {
    Isolate(offset_, /*shared=*/true);
  }
  return storage_->bytes.data() + offset_;
}

void Packet::Prepend(std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  const bool unique = storage_ != nullptr && storage_.use_count() == 1;
  if (!unique || offset_ < bytes.size()) {
    Isolate(bytes.size() + kDefaultHeadroom, storage_ != nullptr && !unique);
  }
  offset_ -= bytes.size();
  len_ += bytes.size();
  std::memcpy(storage_->bytes.data() + offset_, bytes.data(), bytes.size());
}

void Packet::StripFront(size_t n) {
  MSN_ASSERT(n <= len_) << "StripFront(" << n << ") on packet of " << len_ << " bytes";
  offset_ += n;
  len_ -= n;
}

void Packet::TrimTo(size_t n) {
  MSN_ASSERT(n <= len_) << "TrimTo(" << n << ") on packet of " << len_ << " bytes";
  len_ = n;
}

void Packet::Isolate(size_t headroom, bool shared) {
  BufferPool& pool = DefaultBufferPool();
  auto storage = std::make_shared<Storage>(pool.Acquire(headroom + len_), &pool);
  ++stats_.allocations;
  if (len_ > 0) {
    std::memcpy(storage->bytes.data() + headroom, data(), len_);
  }
  ++stats_.copies;
  if (shared) {
    ++stats_.cow_breaks;
  }
  storage_ = std::move(storage);
  offset_ = headroom;
}

std::string Packet::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Packet(%zuB, hr=%zu, refs=%ld)", len_, offset_,
                storage_use_count());
  return buf;
}

}  // namespace msn
