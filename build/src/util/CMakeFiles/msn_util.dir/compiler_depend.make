# Empty compiler generated dependencies file for msn_util.
# This may be replaced when dependencies are built.
