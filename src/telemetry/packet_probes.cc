#include "src/telemetry/packet_probes.h"

#include "src/net/packet.h"
#include "src/net/packet_arena.h"
#include "src/sim/simulator.h"
#include "src/util/buffer_pool.h"

namespace msn {

void RegisterPacketPathProbes(MetricsRegistry& registry) {
  registry.GetProbeGauge("packet.copies", [] {
    return static_cast<double>(Packet::stats().copies);
  });
  registry.GetProbeGauge("packet.cow_breaks", [] {
    return static_cast<double>(Packet::stats().cow_breaks);
  });
  registry.GetProbeGauge("packet.allocations", [] {
    return static_cast<double>(Packet::stats().allocations);
  });
  registry.GetProbeGauge("pool.hits", [] {
    return static_cast<double>(DefaultBufferPool().stats().hits);
  });
  registry.GetProbeGauge("pool.misses", [] {
    return static_cast<double>(DefaultBufferPool().stats().misses);
  });
  registry.GetProbeGauge("pool.oversize", [] {
    return static_cast<double>(DefaultBufferPool().stats().oversize);
  });
  registry.GetProbeGauge("pool.released", [] {
    return static_cast<double>(DefaultBufferPool().stats().released);
  });
  registry.GetProbeGauge("pool.discarded", [] {
    return static_cast<double>(DefaultBufferPool().stats().discarded);
  });
  registry.GetProbeGauge("pool.outstanding", [] {
    return static_cast<double>(DefaultBufferPool().stats().outstanding);
  });
  registry.GetProbeGauge("pool.free_blocks", [] {
    return static_cast<double>(DefaultBufferPool().stats().free_blocks);
  });
  registry.GetProbeGauge("pool.batch_acquires", [] {
    return static_cast<double>(DefaultBufferPool().stats().batch_acquires);
  });
  registry.GetProbeGauge("pool.batch_releases", [] {
    return static_cast<double>(DefaultBufferPool().stats().batch_releases);
  });
  registry.GetProbeGauge("pool.arena_node_allocs", [] {
    return static_cast<double>(DefaultPacketArena().stats().node_allocs);
  });
  registry.GetProbeGauge("pool.arena_recycled", [] {
    return static_cast<double>(DefaultPacketArena().stats().recycled);
  });
  registry.GetProbeGauge("pool.arena_refills", [] {
    return static_cast<double>(DefaultPacketArena().stats().refills);
  });
  registry.GetProbeGauge("pool.arena_drains", [] {
    return static_cast<double>(DefaultPacketArena().stats().drains);
  });
  registry.GetProbeGauge("pool.arena_free_nodes", [] {
    return static_cast<double>(DefaultPacketArena().stats().free_nodes);
  });
}

void RegisterBurstProbes(MetricsRegistry& registry, Simulator& sim) {
  registry.GetProbeGauge("burst.lane_scheduled", [&sim] {
    return static_cast<double>(sim.queue_lane_stats().lane_scheduled);
  });
  registry.GetProbeGauge("burst.heap_scheduled", [&sim] {
    return static_cast<double>(sim.queue_lane_stats().heap_scheduled);
  });
}

}  // namespace msn
