// Per-node motion models behind one interface (DESIGN.md §15).
//
// A MobilityModel owns a position on the campus plane and advances it in
// discrete steps. All randomness comes from an Rng handed in at construction
// (usually a labeled fork of the scenario seed), so the same seed always
// produces a byte-identical position trace — the determinism tests in
// tests/mobility_test.cc serialize traces and compare bytes.
//
// Models:
//   RandomWaypointModel  pick a uniform waypoint, walk to it at a drawn
//                        speed, pause, repeat — the classic campus-roaming
//                        workload.
//   TraceReplayModel     piecewise-linear replay of timestamped positions,
//                        loadable from a simple text format (msn-trace-v1)
//                        that ToText()/Parse() round-trip.
//   GroupMobilityModel   reference-point group mobility: the member follows
//                        an owned reference model with a bounded random-walk
//                        offset, so a fleet sharing a reference roams as a
//                        loose cluster.
#ifndef MSN_SRC_MOBILITY_MOBILITY_MODEL_H_
#define MSN_SRC_MOBILITY_MOBILITY_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/mobility/campus_map.h"
#include "src/sim/time.h"
#include "src/util/rng.h"

namespace msn {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual const char* name() const = 0;
  virtual Vec2 position() const = 0;

  // Advances the model by `dt` and returns the new position.
  virtual Vec2 Advance(Duration dt) = 0;
};

class RandomWaypointModel : public MobilityModel {
 public:
  struct Params {
    double min_speed_mps = 1.0;
    double max_speed_mps = 2.0;
    Duration min_pause;
    Duration max_pause = Seconds(2);
  };

  // Roams the rectangle [0, bounds.x] x [0, bounds.y] starting at `start`.
  RandomWaypointModel(Vec2 bounds, Vec2 start, Params params, Rng rng);

  const char* name() const override { return "waypoint"; }
  Vec2 position() const override { return position_; }
  Vec2 Advance(Duration dt) override;

 private:
  void DrawNextLeg();

  Vec2 bounds_;
  Vec2 position_;
  Params params_;
  Rng rng_;
  Vec2 waypoint_;
  double speed_mps_ = 0.0;
  Duration pause_left_;
};

class TraceReplayModel : public MobilityModel {
 public:
  struct Point {
    Duration at;  // Offset from replay start; points must be non-decreasing.
    Vec2 position;
  };

  explicit TraceReplayModel(std::vector<Point> points);

  const char* name() const override { return "trace"; }
  Vec2 position() const override { return position_; }
  // Linear interpolation between surrounding trace points; the position
  // holds at the first/last point outside the trace's time span.
  Vec2 Advance(Duration dt) override;

  const std::vector<Point>& points() const { return points_; }

  // Text serialization ("msn-trace-v1" header, one "p <t_ms> <x> <y>" line
  // per point, "end" trailer; '#' comments allowed). Parse accepts exactly
  // what ToText emits; ToText(Parse(t)) is a fixed point.
  [[nodiscard]] std::string ToText() const;
  [[nodiscard]] static std::optional<TraceReplayModel> Parse(const std::string& text,
                                                             std::string* error = nullptr);

  // Samples another model every `step` for `length`, producing a replayable
  // trace of its path (used by the fuzzer's trace-model scenarios, which
  // exercise the serialization round trip in the production path).
  static TraceReplayModel Record(MobilityModel& source, Duration length, Duration step);

 private:
  std::vector<Point> points_;
  Duration clock_;
  Vec2 position_;
};

class GroupMobilityModel : public MobilityModel {
 public:
  struct Params {
    // Member offset from the reference point is a random walk confined to
    // this radius.
    double max_offset_m = 30.0;
    double offset_step_m = 4.0;  // Max offset drift per Advance call.
  };

  GroupMobilityModel(Vec2 bounds, std::unique_ptr<MobilityModel> reference, Params params,
                     Rng rng);

  const char* name() const override { return "group"; }
  Vec2 position() const override { return position_; }
  Vec2 Advance(Duration dt) override;

 private:
  Vec2 bounds_;
  std::unique_ptr<MobilityModel> reference_;
  Params params_;
  Rng rng_;
  Vec2 offset_;
  Vec2 position_;
};

}  // namespace msn

#endif  // MSN_SRC_MOBILITY_MOBILITY_MODEL_H_
