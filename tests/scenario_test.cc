// Scenario scripting + long roaming soak tests.
#include <gtest/gtest.h>

#include "src/topo/scenario.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

TEST(ScenarioTest, SimpleRoundTripScript) {
  TestbedConfig cfg;
  cfg.seed = 81;
  Testbed tb(cfg);
  tb.StartMobileAtHome();

  MovementScript script(tb);
  script.WiredCold(Seconds(1), 50)
      .AddressSwitch(Seconds(5), 51)
      .WirelessCold(Seconds(8), 60)
      .GoHome(Seconds(14));
  const auto& outcomes = script.Run(Seconds(22));

  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.completed) << o.Description();
    EXPECT_TRUE(o.success) << o.Description();
  }
  EXPECT_EQ(script.successes(), 4);
  EXPECT_EQ(script.failures(), 0);
  EXPECT_TRUE(tb.mobile->at_home());
  EXPECT_FALSE(tb.home_agent->HasBinding(Testbed::HomeAddress()));
}

TEST(ScenarioTest, HotSwitchScriptKeepsBothInterfaces) {
  TestbedConfig cfg;
  cfg.seed = 82;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  tb.ForceRadioUp();
  tb.mh->stack().ConfigureAddress(tb.mh_radio, Ipv4Address(36, 134, 0, 70), SubnetMask(16));

  MovementScript script(tb);
  script.WirelessHot(Seconds(1), 70).WiredHot(Seconds(4), 50).WirelessHot(Seconds(7), 70);
  script.Run(Seconds(12));
  EXPECT_EQ(script.successes(), 3);
  EXPECT_TRUE(tb.mobile->registered());
  EXPECT_EQ(tb.mobile->attachment().device, tb.mh_radio);
}

// A long random-ish roaming soak: twelve moves over two simulated minutes
// with continuous probe traffic. Everything must settle, the binding must
// track every move, and total loss must stay bounded by the number of cold
// switches.
TEST(ScenarioTest, TwelveMoveSoakWithTraffic) {
  TestbedConfig cfg;
  cfg.seed = 83;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();

  MovementScript script(tb);
  script.AddressSwitch(Seconds(2), 51)
      .WirelessCold(Seconds(6), 60)
      .AddressSwitch(Seconds(14), 61)
      .WiredCold(Seconds(20), 52)
      .AddressSwitch(Seconds(26), 53)
      .AddressSwitch(Seconds(30), 54)
      .WirelessCold(Seconds(34), 62)
      .WiredCold(Seconds(44), 55)
      .AddressSwitch(Seconds(50), 56)
      .WirelessCold(Seconds(54), 63)
      .WiredCold(Seconds(64), 57)
      .GoHome(Seconds(72));
  script.Run(Seconds(90));
  sender.Stop();
  tb.RunFor(Seconds(3));

  for (const auto& o : script.outcomes()) {
    EXPECT_TRUE(o.completed && o.success) << o.Description();
  }
  EXPECT_TRUE(tb.mobile->at_home());
  EXPECT_FALSE(tb.home_agent->HasBinding(Testbed::HomeAddress()));

  // Loss budget: 6 cold switches at <= ~6 probes each, everything else ~0.
  EXPECT_GT(sender.received(), 250u);
  EXPECT_LE(sender.TotalLost(), 40u);
  // Identification strictly increased across all registrations: no denials.
  EXPECT_EQ(tb.mobile->counters().registrations_denied, 0u);
  EXPECT_EQ(tb.home_agent->counters().registrations_denied, 0u);
}

TEST(ScenarioTest, OutcomeDescriptionsReadable) {
  TestbedConfig cfg;
  cfg.seed = 84;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  MovementScript script(tb);
  script.WiredCold(Seconds(1), 50);
  script.Run(Seconds(8));
  const std::string desc = script.outcomes()[0].Description();
  EXPECT_NE(desc.find("wired-cold"), std::string::npos);
  EXPECT_NE(desc.find("ok"), std::string::npos);
}

}  // namespace
}  // namespace msn
