// Packet: a ref-counted, copy-on-write view of a wire image.
//
// A packet's bytes live in one shared Storage block (drawn from the
// BufferPool) and every Packet is an (offset, length) window onto it.
// Copying a Packet bumps a refcount; the bytes are copied only when a writer
// actually mutates shared storage (COW) or prepends past the available
// headroom. This is what makes the forwarding datapath zero-copy:
//
//   - a broadcast medium hands every receiver the same immutable buffer;
//   - IPIP decap is StripFront(20) — the inner datagram is a slice;
//   - IPIP encap serializes the outer header into reserved headroom;
//   - the per-hop TTL/checksum rewrite edits 3 bytes in place (unique
//     storage) or copies once (shared storage), never re-serializes.
//
// Mutation is only reachable through MutableData()/Prepend(), so a plain
// `const Packet&` can be passed around freely: readers can alias, writers
// pay for isolation. Single-threaded by design, like the rest of the core.
//
// Storage is an intrusively ref-counted PacketStorage node recycled through
// the PacketArena (src/net/packet_arena.h): no shared_ptr control block, no
// atomics, and no per-packet BufferPool traffic — the pool is touched once
// per arena slab, not once per packet.
//
// Accounting: every deep byte copy made by this class is counted in
// Stats::copies (with the shared-storage subset in Stats::cow_breaks); the
// bench regression gate watches copies-per-hop on the forwarding path.
#ifndef MSN_SRC_NET_PACKET_H_
#define MSN_SRC_NET_PACKET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace msn {

struct PacketStorage;

class Packet {
 public:
  // Reserved in front of pool-built packets so one level of IPIP encap (20 B
  // outer header) prepends without copying; a second level usually still
  // fits thanks to the stripped inner headroom left behind by decap.
  static constexpr size_t kDefaultHeadroom = 40;

  struct Stats {
    uint64_t copies = 0;      // Deep byte copies of packet storage.
    uint64_t cow_breaks = 0;  // Subset of copies forced by shared storage.
    uint64_t allocations = 0;  // Storage blocks created (pool or heap).
  };

  Packet() = default;

  // Manual refcount discipline over the intrusive storage node.
  Packet(const Packet& other);
  Packet& operator=(const Packet& other);
  Packet(Packet&& other) noexcept;
  Packet& operator=(Packet&& other) noexcept;
  ~Packet();

  // Adopts an existing vector as storage — zero-copy. Implicit so existing
  // `frame.payload = Serialize()` producer sites keep working.
  Packet(std::vector<uint8_t> bytes);  // NOLINT(google-explicit-constructor)
  Packet(std::initializer_list<uint8_t> bytes);

  // Pool-backed uninitialized packet of `size` bytes with `headroom` bytes
  // reserved in front for later Prepend calls. Fill via MutableData().
  [[nodiscard]] static Packet Allocate(size_t size, size_t headroom = kDefaultHeadroom);

  // Pool-backed deep copy of external bytes (counted in Stats::copies).
  [[nodiscard]] static Packet Copy(std::span<const uint8_t> bytes,
                                   size_t headroom = kDefaultHeadroom);

  // --- Read side (never copies) ---------------------------------------------

  const uint8_t* data() const { return Base() + offset_; }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + len_; }
  std::span<const uint8_t> span() const { return {data(), len_}; }

  // A zero-copy sub-view sharing this packet's storage.
  [[nodiscard]] Packet Slice(size_t pos, size_t count) const;

  // Copies the visible bytes out into a standalone vector.
  [[nodiscard]] std::vector<uint8_t> ToVector() const;

  bool SharesStorageWith(const Packet& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }
  // Bytes available in front of the view for zero-copy Prepend.
  size_t headroom() const { return offset_; }

  // --- Write side (isolates storage first when shared) ----------------------

  // Mutable pointer to the visible bytes. Breaks COW if storage is shared.
  uint8_t* MutableData();

  // Grows the view backward by `bytes.size()`, writing `bytes` in front of
  // the current first byte. Zero-copy when storage is unique and headroom
  // suffices; otherwise relocates into a fresh pool block.
  void Prepend(std::span<const uint8_t> bytes);

  // Shrinks the view in place: drop `n` front bytes / keep first `n` bytes.
  // Both are O(1) and never touch storage (decap, de-padding).
  void StripFront(size_t n);
  void TrimTo(size_t n);

  // --- Introspection --------------------------------------------------------

  static const Stats& stats() { return stats_; }
  static void ResetStatsForTest() { stats_ = Stats{}; }
  long storage_use_count() const;

  std::string ToString() const;  // "Packet(20+1480B, hr=40, refs=2)"

  friend bool operator==(const Packet& a, const Packet& b) {
    return a.span().size() == b.span().size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  // Adopts `storage` along with the reference the caller already holds (no
  // refcount bump).
  Packet(PacketStorage* storage, size_t offset, size_t len)
      : storage_(storage), offset_(offset), len_(len) {}

  const uint8_t* Base() const;
  // Drops this packet's reference, recycling the node when it was the last.
  void Unref();
  // Replaces storage_ with a unique arena-backed copy of the visible bytes,
  // keeping kDefaultHeadroom in front. `shared` routes the copy to the right
  // stats bucket.
  void Isolate(size_t headroom, bool shared);

  static Stats stats_;

  PacketStorage* storage_ = nullptr;
  size_t offset_ = 0;
  size_t len_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_NET_PACKET_H_
