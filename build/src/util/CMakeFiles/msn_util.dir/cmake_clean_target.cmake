file(REMOVE_RECURSE
  "libmsn_util.a"
)
