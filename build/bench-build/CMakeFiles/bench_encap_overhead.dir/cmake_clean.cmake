file(REMOVE_RECURSE
  "../bench/bench_encap_overhead"
  "../bench/bench_encap_overhead.pdb"
  "CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cc.o"
  "CMakeFiles/bench_encap_overhead.dir/bench_encap_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encap_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
